#!/usr/bin/env bash
# clang-tidy half of the static-analysis gate (the other half is vsgc_lint).
#
# Usage: tools/run_clang_tidy.sh [BUILD_DIR]   (default: build)
#
# Runs clang-tidy with the checked-in .clang-tidy profile over all first-party
# .cpp files and compares normalized findings against the accepted baseline in
# tools/clang_tidy_baseline.txt. The baseline is a ratchet, like the
# sim-purity ledger: findings NOT in the baseline fail (no new debt), and
# baseline entries that no longer fire also fail (delete the stale line so
# the accepted-debt count only shrinks). To accept a finding permanently,
# append its normalized line to the baseline with a justifying comment above
# it.
#
# Exits 0 (with a notice) when clang-tidy is not installed: vsgc_lint remains
# the always-on gate, and CI images without LLVM must not fail spuriously.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
BASELINE=tools/clang_tidy_baseline.txt

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "clang-tidy not installed; skipping (vsgc_lint gate still applies)"
  exit 0
fi
if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "error: $BUILD_DIR/compile_commands.json not found; configure first" >&2
  exit 2
fi

mapfile -t files < <(find src tools -name '*.cpp' | sort)

actual="$(mktemp)"
trap 'rm -f "$actual"' EXIT
# Normalize: strip the absolute prefix and column numbers so the baseline is
# stable across checkouts and minor formatting drift.
clang-tidy -p "$BUILD_DIR" --quiet "${files[@]}" 2>/dev/null \
  | grep -E '(warning|error):' \
  | sed -e "s|^$(pwd)/||" -e 's/^\([^:]*:[0-9]*\):[0-9]*:/\1:/' \
  | sort -u > "$actual" || true

accepted="$(mktemp)"
trap 'rm -f "$actual" "$accepted"' EXIT
grep -v '^#' "$BASELINE" | sed '/^$/d' | sort -u > "$accepted"

new_findings="$(comm -13 "$accepted" "$actual")"
if [ -n "$new_findings" ]; then
  echo "clang-tidy: new findings not in $BASELINE:" >&2
  echo "$new_findings" >&2
  exit 1
fi
stale_entries="$(comm -23 "$accepted" "$actual")"
if [ -n "$stale_entries" ]; then
  echo "clang-tidy: stale $BASELINE entries (finding no longer fires;" >&2
  echo "delete these lines to ratchet the accepted debt down):" >&2
  echo "$stale_entries" >&2
  exit 1
fi
echo "clang-tidy: clean against baseline ($(wc -l < "$actual") known findings)"
