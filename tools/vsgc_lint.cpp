// vsgc_lint — determinism & protocol-hygiene static analysis for this repo.
//
// Usage:
//   vsgc_lint [--root DIR] [--json FILE] [--list-rules] [FILE...]
//
// With no FILE arguments, walks DIR/{src,tools,bench,tests} (default: the
// current directory) and lints every .hpp/.cpp in sorted order. Explicit FILE
// arguments are linted as paths relative to --root, so rule scoping (which
// directories the determinism rules cover) still applies.
//
// Exit status: 0 = no unsuppressed findings, 1 = findings, 2 = usage error.
// ci.sh runs this before the build as a hard gate; --json writes the
// machine-readable artifact that tools/validate_bench_json schema-checks.
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/linter.hpp"

namespace {

int usage() {
  std::cerr << "usage: vsgc_lint [--root DIR] [--json FILE] [--list-rules] "
               "[FILE...]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string json_out;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--json" && i + 1 < argc) {
      json_out = argv[++i];
    } else if (arg == "--list-rules") {
      for (const vsgc::lint::RuleInfo& r : vsgc::lint::kRules) {
        std::cout << r.id << "\n    " << r.summary << "\n";
      }
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      return usage();
    } else {
      files.push_back(arg);
    }
  }

  vsgc::lint::Linter linter;
  if (files.empty()) {
    vsgc::lint::lint_tree(linter, root);
  } else {
    for (const std::string& rel : files) {
      std::ifstream in(std::filesystem::path(root) / rel, std::ios::binary);
      if (!in) {
        std::cerr << "vsgc_lint: cannot read " << rel << "\n";
        return 2;
      }
      std::ostringstream buf;
      buf << in.rdbuf();
      linter.lint_source(rel, buf.str());
    }
    linter.finalize();
  }

  for (const vsgc::lint::Finding& f : linter.findings()) {
    if (f.suppressed) {
      std::cout << f.file << ":" << f.line << ": [" << f.rule
                << "] suppressed — " << f.justification << "\n";
    } else {
      std::cout << f.file << ":" << f.line << ": [" << f.rule << "] "
                << f.message << "\n";
    }
  }
  std::cout << "vsgc_lint: " << linter.files_scanned() << " files, "
            << linter.unsuppressed_count() << " finding(s), "
            << linter.suppressed_count() << " suppressed\n";

  if (!json_out.empty()) {
    std::ofstream out(json_out, std::ios::binary);
    if (!out) {
      std::cerr << "vsgc_lint: cannot write " << json_out << "\n";
      return 2;
    }
    out << linter.to_json(root).dump_pretty() << "\n";
  }
  return linter.unsuppressed_count() == 0 ? 0 : 1;
}
