// vsgc_lint — determinism, protocol-hygiene, and architecture-conformance
// static analysis for this repo.
//
// Usage:
//   vsgc_lint [--root DIR] [--json FILE] [--deps-json FILE] [--dot FILE]
//             [--ledger FILE] [--list-rules] [FILE...]
//
// With no FILE arguments, walks DIR/{src,tools,bench,tests} (default: the
// current directory) and lints every .hpp/.cpp in sorted order. Explicit FILE
// arguments are linted as paths relative to --root, so rule scoping (which
// directories the determinism rules cover) still applies.
//
// --deps-json writes the include-graph/sim-purity artifact (LINT_deps.json),
// --dot the Graphviz module-layer diagram, and --ledger overrides the
// sim-purity ratchet ledger (default: ROOT/tools/sim_purity_ledger.txt in
// tree mode).
//
// Exit status: 0 = no unsuppressed findings, 1 = findings, 2 = usage error.
// ci.sh runs this before the build as a hard gate; --json writes the
// machine-readable artifact that tools/validate_bench_json schema-checks.
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/linter.hpp"

namespace {

int usage() {
  std::cerr << "usage: vsgc_lint [--root DIR] [--json FILE] "
               "[--deps-json FILE] [--dot FILE] [--ledger FILE] "
               "[--list-rules] [FILE...]\n";
  return 2;
}

bool slurp(const std::filesystem::path& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  out = buf.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string json_out;
  std::string deps_json_out;
  std::string dot_out;
  std::string ledger_path;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--json" && i + 1 < argc) {
      json_out = argv[++i];
    } else if (arg == "--deps-json" && i + 1 < argc) {
      deps_json_out = argv[++i];
    } else if (arg == "--dot" && i + 1 < argc) {
      dot_out = argv[++i];
    } else if (arg == "--ledger" && i + 1 < argc) {
      ledger_path = argv[++i];
    } else if (arg == "--list-rules") {
      for (const vsgc::lint::RuleInfo& r : vsgc::lint::kRules) {
        std::cout << r.id << "\n    " << r.summary << "\n";
      }
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      return usage();
    } else {
      files.push_back(arg);
    }
  }

  vsgc::lint::Linter linter;
  if (!ledger_path.empty()) {
    std::string text;
    if (!slurp(ledger_path, text)) {
      std::cerr << "vsgc_lint: cannot read ledger " << ledger_path << "\n";
      return 2;
    }
    linter.set_sim_ledger(ledger_path, text);
  }
  if (files.empty()) {
    vsgc::lint::lint_tree(linter, root);
  } else {
    for (const std::string& rel : files) {
      std::string text;
      if (!slurp(std::filesystem::path(root) / rel, text)) {
        std::cerr << "vsgc_lint: cannot read " << rel << "\n";
        return 2;
      }
      linter.lint_source(rel, text);
    }
    linter.finalize();
  }

  for (const vsgc::lint::Finding& f : linter.findings()) {
    if (f.suppressed) {
      std::cout << f.file << ":" << f.line << ": [" << f.rule
                << "] suppressed — " << f.justification << "\n";
    } else {
      std::cout << f.file << ":" << f.line << ": [" << f.rule << "] "
                << f.message << "\n";
    }
  }
  std::cout << "vsgc_lint: " << linter.files_scanned() << " files, "
            << linter.unsuppressed_count() << " finding(s), "
            << linter.suppressed_count() << " suppressed\n";

  if (!json_out.empty()) {
    std::ofstream out(json_out, std::ios::binary);
    if (!out) {
      std::cerr << "vsgc_lint: cannot write " << json_out << "\n";
      return 2;
    }
    out << linter.to_json(root).dump_pretty() << "\n";
  }
  if (!deps_json_out.empty()) {
    std::ofstream out(deps_json_out, std::ios::binary);
    if (!out) {
      std::cerr << "vsgc_lint: cannot write " << deps_json_out << "\n";
      return 2;
    }
    out << linter.deps_json(root).dump_pretty() << "\n";
  }
  if (!dot_out.empty()) {
    std::ofstream out(dot_out, std::ios::binary);
    if (!out) {
      std::cerr << "vsgc_lint: cannot write " << dot_out << "\n";
      return 2;
    }
    out << linter.deps_dot();
  }
  return linter.unsuppressed_count() == 0 ? 0 : 1;
}
