// Schema checker for machine-readable CI artifacts (used by ci.sh).
//
// Usage: validate_bench_json FILE [FILE...]
// Exits 0 iff every file parses as JSON and matches its schema: BENCH_*.json
// run artifacts (schema documented in src/obs/artifact.hpp) by default, the
// vsgc_lint findings artifact when the document carries "tool": "vsgc_lint",
// or the include-graph artifact (LINT_deps.json) when it carries
// "tool": "vsgc_deps". Prints one line per file.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace {

using vsgc::obs::JsonValue;

struct Check {
  bool ok = true;
  std::vector<std::string> problems;

  void require(bool cond, const std::string& what) {
    if (!cond) {
      ok = false;
      problems.push_back(what);
    }
  }
};

/// Schema of tools/vsgc_lint --json output (lint::Linter::to_json).
Check validate_lint(const JsonValue& root) {
  Check c;
  const JsonValue* version = root.find("schema_version");
  c.require(version != nullptr && version->is_int() && version->as_int() == 1,
            "missing field 'schema_version' == 1");
  const JsonValue* lint_root = root.find("root");
  c.require(lint_root != nullptr && lint_root->is_string(),
            "missing string field 'root'");
  for (const char* field : {"files_scanned", "unsuppressed", "suppressed"}) {
    const JsonValue* v = root.find(field);
    c.require(v != nullptr && v->is_int() && v->as_int() >= 0,
              std::string("missing non-negative integer '") + field + "'");
  }
  const JsonValue* findings = root.find("findings");
  c.require(findings != nullptr && findings->is_array(),
            "missing array field 'findings'");
  if (findings == nullptr || !findings->is_array()) return c;
  std::int64_t suppressed = 0;
  for (std::size_t i = 0; i < findings->size(); ++i) {
    const JsonValue& row = findings->at(i);
    const std::string at = "findings[" + std::to_string(i) + "]";
    c.require(row.is_object(), at + " is not an object");
    if (!row.is_object()) continue;
    for (const char* field : {"file", "rule", "message"}) {
      const JsonValue* v = row.find(field);
      c.require(v != nullptr && v->is_string() && !v->as_string().empty(),
                at + " missing non-empty string '" + field + "'");
    }
    const JsonValue* line = row.find("line");
    c.require(line != nullptr && line->is_int() && line->as_int() >= 1,
              at + " missing 1-based integer 'line'");
    const JsonValue* sup = row.find("suppressed");
    c.require(sup != nullptr && sup->is_bool(),
              at + " missing boolean 'suppressed'");
    if (sup != nullptr && sup->is_bool() && sup->as_bool()) {
      ++suppressed;
      const JsonValue* just = row.find("justification");
      c.require(just != nullptr && just->is_string() &&
                    !just->as_string().empty(),
                at + " suppressed without a non-empty 'justification'");
    }
  }
  const JsonValue* sup_total = root.find("suppressed");
  const JsonValue* unsup_total = root.find("unsuppressed");
  if (sup_total != nullptr && sup_total->is_int() && unsup_total != nullptr &&
      unsup_total->is_int()) {
    c.require(sup_total->as_int() == suppressed,
              "'suppressed' disagrees with the findings array");
    c.require(unsup_total->as_int() + suppressed ==
                  static_cast<std::int64_t>(findings->size()),
              "'unsuppressed' + 'suppressed' != findings count");
  }
  return c;
}

/// Schema of tools/vsgc_lint --deps-json output (LINT_deps.json,
/// lint::deps_to_json): the include-graph/sim-purity artifact the ci.sh
/// architecture gates read.
Check validate_deps(const JsonValue& root) {
  Check c;
  const JsonValue* version = root.find("schema_version");
  c.require(version != nullptr && version->is_int() && version->as_int() == 1,
            "missing field 'schema_version' == 1");
  const JsonValue* deps_root = root.find("root");
  c.require(deps_root != nullptr && deps_root->is_string(),
            "missing string field 'root'");
  for (const char* field : {"files", "internal_edges", "external_includes",
                            "cycles", "layer_violations"}) {
    const JsonValue* v = root.find(field);
    c.require(v != nullptr && v->is_int() && v->as_int() >= 0,
              std::string("missing non-negative integer '") + field + "'");
  }
  const JsonValue* modules = root.find("modules");
  c.require(modules != nullptr && modules->is_array() && modules->size() > 0,
            "missing non-empty array field 'modules'");
  if (modules != nullptr && modules->is_array()) {
    for (std::size_t i = 0; i < modules->size(); ++i) {
      const JsonValue& row = modules->at(i);
      const std::string at = "modules[" + std::to_string(i) + "]";
      c.require(row.is_object(), at + " is not an object");
      if (!row.is_object()) continue;
      const JsonValue* name = row.find("name");
      c.require(name != nullptr && name->is_string() &&
                    !name->as_string().empty(),
                at + " missing non-empty string 'name'");
      const JsonValue* rank = row.find("rank");
      c.require(rank != nullptr && rank->is_int(),
                at + " missing integer 'rank'");
      const JsonValue* files = row.find("files");
      c.require(files != nullptr && files->is_int() && files->as_int() >= 1,
                at + " missing integer 'files' >= 1");
    }
  }
  const JsonValue* edges = root.find("module_edges");
  c.require(edges != nullptr && edges->is_array(),
            "missing array field 'module_edges'");
  if (edges != nullptr && edges->is_array()) {
    for (std::size_t i = 0; i < edges->size(); ++i) {
      const JsonValue& row = edges->at(i);
      const std::string at = "module_edges[" + std::to_string(i) + "]";
      c.require(row.is_object(), at + " is not an object");
      if (!row.is_object()) continue;
      for (const char* field : {"from", "to"}) {
        const JsonValue* v = row.find(field);
        c.require(v != nullptr && v->is_string() && !v->as_string().empty(),
                  at + " missing non-empty string '" + field + "'");
      }
      const JsonValue* count = row.find("count");
      c.require(count != nullptr && count->is_int() && count->as_int() >= 1,
                at + " missing integer 'count' >= 1");
    }
  }
  const JsonValue* sim = root.find("sim_purity");
  c.require(sim != nullptr && sim->is_object(),
            "missing object field 'sim_purity'");
  if (sim != nullptr && sim->is_object()) {
    for (const char* field : {"entries", "ledgered", "unledgered", "stale"}) {
      const JsonValue* v = sim->find(field);
      c.require(v != nullptr && v->is_int() && v->as_int() >= 0,
                std::string("missing non-negative integer 'sim_purity.") +
                    field + "'");
    }
    const JsonValue* entries = sim->find("entries");
    const JsonValue* ledgered = sim->find("ledgered");
    const JsonValue* unledgered = sim->find("unledgered");
    if (entries != nullptr && entries->is_int() && ledgered != nullptr &&
        ledgered->is_int() && unledgered != nullptr && unledgered->is_int()) {
      c.require(entries->as_int() ==
                    ledgered->as_int() + unledgered->as_int(),
                "'sim_purity.entries' != ledgered + unledgered");
    }
  }
  return c;
}

/// Extra schema for the wall-clock perf bench (BENCH_simperf.json): the CI
/// perf gates read these fields, so their absence must fail loudly rather
/// than silently passing a gate against a missing number.
void validate_simperf(const JsonValue& results, Check& c) {
  std::size_t kernel_legacy = 0, kernel_new = 0, sweep_jobs1 = 0,
              sweep_hw = 0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const JsonValue& row = results.at(i);
    if (!row.is_object()) continue;
    const std::string at = "results[" + std::to_string(i) + "]";
    const JsonValue* kase = row.find("case");
    c.require(kase != nullptr && kase->is_string(),
              at + " missing string 'case'");
    if (kase == nullptr || !kase->is_string()) continue;
    const std::string name = kase->as_string();
    const JsonValue* wall = row.find("wall_seconds");
    c.require(wall != nullptr && wall->is_number() && wall->as_double() > 0,
              at + " missing positive 'wall_seconds'");
    const JsonValue* eps = row.find("events_per_sec");
    c.require(eps != nullptr && eps->is_number() && eps->as_double() > 0,
              at + " missing positive 'events_per_sec'");
    if (name == "kernel_legacy" || name == "kernel_new") {
      name == "kernel_legacy" ? ++kernel_legacy : ++kernel_new;
      const JsonValue* allocs = row.find("allocations");
      c.require(allocs != nullptr && allocs->is_int() &&
                    allocs->as_int() >= 0,
                at + " missing non-negative 'allocations'");
      if (name == "kernel_new") {
        const JsonValue* sp = row.find("speedup_vs_legacy");
        c.require(sp != nullptr && sp->is_number() && sp->as_double() > 0,
                  at + " missing positive 'speedup_vs_legacy'");
      }
    } else if (name == "sweep_jobs1" || name == "sweep_hw") {
      name == "sweep_jobs1" ? ++sweep_jobs1 : ++sweep_hw;
      const JsonValue* jobs = row.find("jobs");
      c.require(jobs != nullptr && jobs->is_int() && jobs->as_int() >= 1,
                at + " missing integer 'jobs' >= 1");
      const JsonValue* sps = row.find("seeds_per_sec");
      c.require(sps != nullptr && sps->is_number() && sps->as_double() > 0,
                at + " missing positive 'seeds_per_sec'");
      if (name == "sweep_hw") {
        const JsonValue* sp = row.find("speedup_vs_jobs1");
        c.require(sp != nullptr && sp->is_number() && sp->as_double() > 0,
                  at + " missing positive 'speedup_vs_jobs1'");
      }
    } else {
      c.require(false, at + " unknown simperf case '" + name + "'");
    }
  }
  c.require(kernel_legacy == 1 && kernel_new == 1,
            "simperf needs exactly one kernel_legacy and one kernel_new row");
  c.require(sweep_jobs1 == 1 && sweep_hw == 1,
            "simperf needs exactly one sweep_jobs1 and one sweep_hw row");
}

/// Schema for BENCH_throughput.json: E2 group-size rows (no "case" field)
/// plus exactly one fanin_batching_off / fanin_batching_on pair. The CI
/// batching gate reads msgs_per_sec, the byte-overhead columns, and the
/// on-row's batching_speedup from here, so absence must fail loudly.
void validate_throughput(const JsonValue& results, Check& c) {
  std::size_t fanin_off = 0, fanin_on = 0, group_rows = 0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const JsonValue& row = results.at(i);
    if (!row.is_object()) continue;
    const std::string at = "results[" + std::to_string(i) + "]";
    const JsonValue* kase = row.find("case");
    if (kase == nullptr) {
      // E2 full-stack row, keyed by group size.
      ++group_rows;
      const JsonValue* gs = row.find("group_size");
      c.require(gs != nullptr && gs->is_int() && gs->as_int() >= 2,
                at + " missing integer 'group_size' >= 2");
      const JsonValue* pb = row.find("payload_bytes");
      c.require(pb != nullptr && pb->is_int() && pb->as_int() > 0,
                at + " missing positive integer 'payload_bytes'");
      for (const char* field : {"msgs_per_sec", "avg_latency_ms",
                                "sender_bytes_per_msg",
                                "overhead_bytes_per_msg"}) {
        const JsonValue* v = row.find(field);
        c.require(v != nullptr && v->is_number() && v->as_double() > 0,
                  at + " missing positive '" + field + "'");
      }
      continue;
    }
    c.require(kase->is_string(), at + " 'case' is not a string");
    if (!kase->is_string()) continue;
    const std::string name = kase->as_string();
    if (name == "fanin_batching_off" || name == "fanin_batching_on") {
      name == "fanin_batching_off" ? ++fanin_off : ++fanin_on;
      for (const char* field :
           {"wall_seconds", "msgs_per_sec", "entries_per_frame",
            "bytes_per_msg", "overhead_bytes_per_msg"}) {
        const JsonValue* v = row.find(field);
        c.require(v != nullptr && v->is_number() && v->as_double() > 0,
                  at + " missing positive '" + field + "'");
      }
      for (const char* field : {"frames_sent", "acks_standalone",
                                "acks_piggybacked", "ooo_dropped",
                                "sim_events"}) {
        const JsonValue* v = row.find(field);
        c.require(v != nullptr && v->is_int() && v->as_int() >= 0,
                  at + " missing non-negative integer '" + field + "'");
      }
      if (name == "fanin_batching_on") {
        const JsonValue* sp = row.find("batching_speedup");
        c.require(sp != nullptr && sp->is_number() && sp->as_double() > 0,
                  at + " missing positive 'batching_speedup'");
      }
    } else {
      c.require(false, at + " unknown throughput case '" + name + "'");
    }
  }
  c.require(group_rows > 0, "throughput needs at least one group-size row");
  c.require(fanin_off == 1 && fanin_on == 1,
            "throughput needs exactly one fanin_batching_off and one "
            "fanin_batching_on row");
}

/// Schema for tools/vsgc_trace --json output (BENCH_tracelat.json,
/// obs::append_tracelat_results): exactly one "summary" row plus per-phase
/// "msg_phase"/"view_phase" rows with known phase names. The CI trace gate
/// reads orphan counts from here, so absence must fail loudly.
void validate_tracelat(const JsonValue& results, Check& c) {
  std::size_t summaries = 0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const JsonValue& row = results.at(i);
    if (!row.is_object()) continue;
    const std::string at = "results[" + std::to_string(i) + "]";
    const JsonValue* kind = row.find("row");
    c.require(kind != nullptr && kind->is_string(),
              at + " missing string 'row'");
    if (kind == nullptr || !kind->is_string()) continue;
    const std::string name = kind->as_string();
    if (name == "summary") {
      ++summaries;
      for (const char* field :
           {"messages", "legs_expected", "legs_delivered", "orphans",
            "orphans_unexplained", "retransmit_packets", "forward_copies",
            "view_changes", "end_at_us"}) {
        const JsonValue* v = row.find(field);
        c.require(v != nullptr && v->is_int() && v->as_int() >= 0,
                  at + " missing non-negative integer '" + field + "'");
      }
    } else if (name == "msg_phase" || name == "view_phase") {
      const JsonValue* phase = row.find("phase");
      c.require(phase != nullptr && phase->is_string(),
                at + " missing string 'phase'");
      if (phase != nullptr && phase->is_string()) {
        const std::string p = phase->as_string();
        const bool known =
            name == "msg_phase"
                ? (p == "sender_queue" || p == "wire" || p == "gate" ||
                   p == "end_to_end")
                : (p == "blocking" || p == "sync_send" ||
                   p == "membership_wait" || p == "install_wait" ||
                   p == "end_to_end");
        c.require(known, at + " unknown " + name + " phase '" + p + "'");
      }
      for (const char* field :
           {"count", "p50_us", "p95_us", "p99_us", "max_us"}) {
        const JsonValue* v = row.find(field);
        c.require(v != nullptr && v->is_int() && v->as_int() >= 0,
                  at + " missing non-negative integer '" + field + "'");
      }
    } else {
      c.require(false, at + " unknown tracelat row '" + name + "'");
    }
  }
  c.require(summaries == 1, "tracelat needs exactly one summary row");
}

/// Schema for BENCH_scale.json (bench_scale, the E12 N-sweep): at least two
/// "sweep" rows with strictly increasing n, exactly one "fit" row per gated
/// metric, and exactly one "determinism" row that must report identical
/// same-seed traces. The CI sublinear gate reads the fit exponents from
/// here, so absence must fail loudly.
void validate_scale(const JsonValue& results, Check& c) {
  std::size_t sweeps = 0, determinism = 0;
  std::size_t fit_latency = 0, fit_resident = 0;
  std::int64_t last_n = 0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const JsonValue& row = results.at(i);
    if (!row.is_object()) continue;
    const std::string at = "results[" + std::to_string(i) + "]";
    const JsonValue* kase = row.find("case");
    c.require(kase != nullptr && kase->is_string(),
              at + " missing string 'case'");
    if (kase == nullptr || !kase->is_string()) continue;
    const std::string name = kase->as_string();
    if (name == "sweep") {
      ++sweeps;
      const JsonValue* n = row.find("n");
      c.require(n != nullptr && n->is_int() && n->as_int() > 0,
                at + " missing positive integer 'n'");
      if (n != nullptr && n->is_int()) {
        c.require(n->as_int() > last_n,
                  at + " sweep rows must have strictly increasing 'n'");
        last_n = n->as_int();
      }
      const JsonValue* groups = row.find("groups");
      c.require(groups != nullptr && groups->is_int() &&
                    groups->as_int() >= 2,
                at + " missing integer 'groups' >= 2");
      for (const char* field : {"view_change_ms", "flash_join_ms",
                                "msgs_per_sec", "bytes_per_msg",
                                "resident_bytes_per_member"}) {
        const JsonValue* v = row.find(field);
        c.require(v != nullptr && v->is_number() && v->as_double() > 0,
                  at + " missing positive '" + field + "'");
      }
      for (const char* field : {"deliveries", "waves", "checker_tolerated",
                                "sack_runs_sent", "sack_suppressed"}) {
        const JsonValue* v = row.find(field);
        c.require(v != nullptr && v->is_int() && v->as_int() >= 0,
                  at + " missing non-negative integer '" + field + "'");
      }
    } else if (name == "fit") {
      const JsonValue* metric = row.find("metric");
      c.require(metric != nullptr && metric->is_string(),
                at + " missing string 'metric'");
      if (metric != nullptr && metric->is_string()) {
        const std::string m = metric->as_string();
        if (m == "view_change_ms") ++fit_latency;
        else if (m == "resident_bytes_per_member") ++fit_resident;
        else c.require(false, at + " unknown fit metric '" + m + "'");
      }
      const JsonValue* exp = row.find("exponent");
      c.require(exp != nullptr && exp->is_number(),
                at + " missing numeric 'exponent'");
      const JsonValue* sub = row.find("sublinear");
      c.require(sub != nullptr && sub->is_bool(),
                at + " missing boolean 'sublinear'");
    } else if (name == "determinism") {
      ++determinism;
      const JsonValue* ident = row.find("identical");
      c.require(ident != nullptr && ident->is_bool(),
                at + " missing boolean 'identical'");
      // Not a perf number but an invariant: same-seed scale runs must replay
      // byte-identically, so a false here is a schema-level failure.
      if (ident != nullptr && ident->is_bool()) {
        c.require(ident->as_bool(),
                  at + " same-seed determinism check reported divergence");
      }
      const JsonValue* bytes = row.find("trace_bytes");
      c.require(bytes != nullptr && bytes->is_int() && bytes->as_int() > 0,
                at + " missing positive integer 'trace_bytes'");
    } else {
      c.require(false, at + " unknown scale case '" + name + "'");
    }
  }
  c.require(sweeps >= 2, "scale needs at least two sweep rows");
  c.require(fit_latency == 1 && fit_resident == 1,
            "scale needs exactly one fit row per gated metric "
            "(view_change_ms, resident_bytes_per_member)");
  c.require(determinism == 1, "scale needs exactly one determinism row");
}

/// True iff metrics.histograms carries a histogram with this exact name.
bool has_histogram(const JsonValue& root, const std::string& name) {
  const JsonValue* metrics = root.find("metrics");
  if (metrics == nullptr || !metrics->is_object()) return false;
  const JsonValue* hists = metrics->find("histograms");
  if (hists == nullptr || !hists->is_array()) return false;
  for (const JsonValue& row : hists->items()) {
    const JsonValue* n = row.find("name");
    if (n != nullptr && n->is_string() && n->as_string() == name) return true;
  }
  return false;
}

Check validate(const JsonValue& root) {
  Check c;
  c.require(root.is_object(), "document is not a JSON object");
  if (!root.is_object()) return c;

  const JsonValue* tool = root.find("tool");
  if (tool != nullptr && tool->is_string() &&
      tool->as_string() == "vsgc_lint") {
    return validate_lint(root);
  }
  if (tool != nullptr && tool->is_string() &&
      tool->as_string() == "vsgc_deps") {
    return validate_deps(root);
  }

  const JsonValue* bench = root.find("bench");
  c.require(bench != nullptr && bench->is_string() &&
                !bench->as_string().empty(),
            "missing non-empty string field 'bench'");

  const JsonValue* version = root.find("schema_version");
  c.require(version != nullptr && version->is_int() && version->as_int() == 1,
            "missing field 'schema_version' == 1");

  const JsonValue* config = root.find("config");
  c.require(config != nullptr && config->is_object(),
            "missing object field 'config'");

  const JsonValue* results = root.find("results");
  c.require(results != nullptr && results->is_array(),
            "missing array field 'results'");
  if (results != nullptr && results->is_array()) {
    c.require(results->size() > 0, "'results' is empty");
    for (std::size_t i = 0; i < results->size(); ++i) {
      c.require(results->at(i).is_object(),
                "'results[" + std::to_string(i) + "]' is not an object");
    }
    if (bench != nullptr && bench->is_string() &&
        bench->as_string() == "simperf") {
      validate_simperf(*results, c);
    }
    if (bench != nullptr && bench->is_string() &&
        bench->as_string() == "tracelat") {
      validate_tracelat(*results, c);
    }
    if (bench != nullptr && bench->is_string() &&
        bench->as_string() == "throughput") {
      validate_throughput(*results, c);
    }
    if (bench != nullptr && bench->is_string() &&
        bench->as_string() == "scale") {
      validate_scale(*results, c);
    }
  }

  // Benches that enable lifecycle spans must export the span histograms the
  // per-phase breakdowns are derived from (ISSUE 6 acceptance).
  if (bench != nullptr && bench->is_string()) {
    if (bench->as_string() == "throughput") {
      c.require(has_histogram(root, "span.msg.e2e_us"),
                "throughput artifact missing histogram 'span.msg.e2e_us'");
    } else if (bench->as_string() == "view_change") {
      c.require(has_histogram(root, "span.view.e2e_us"),
                "view_change artifact missing histogram 'span.view.e2e_us'");
    }
  }

  const JsonValue* metrics = root.find("metrics");
  c.require(metrics != nullptr && metrics->is_object(),
            "missing object field 'metrics'");
  if (metrics != nullptr && metrics->is_object()) {
    for (const char* section : {"counters", "gauges", "histograms"}) {
      const JsonValue* arr = metrics->find(section);
      c.require(arr != nullptr && arr->is_array(),
                std::string("missing array field 'metrics.") + section + "'");
      if (arr == nullptr || !arr->is_array()) continue;
      for (const JsonValue& row : arr->items()) {
        c.require(row.find("name") != nullptr && row.find("name")->is_string(),
                  std::string("metrics.") + section + " row without 'name'");
        c.require(row.find("labels") != nullptr &&
                      row.find("labels")->is_object(),
                  std::string("metrics.") + section + " row without 'labels'");
      }
    }
  }

  const JsonValue* sim = root.find("sim");
  c.require(sim != nullptr && sim->is_object(), "missing object field 'sim'");
  if (sim != nullptr && sim->is_object()) {
    for (const char* field :
         {"events_executed", "peak_queue_depth", "sim_time_us"}) {
      const JsonValue* v = sim->find(field);
      c.require(v != nullptr && v->is_int() && v->as_int() >= 0,
                std::string("missing non-negative integer 'sim.") + field +
                    "'");
    }
    for (const char* field :
         {"wall_time_seconds", "events_per_wall_second",
          "wall_seconds_per_sim_second"}) {
      const JsonValue* v = sim->find(field);
      c.require(v != nullptr && v->is_number(),
                std::string("missing numeric 'sim.") + field + "'");
    }
  }
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: validate_bench_json FILE [FILE...]\n";
    return 2;
  }
  bool all_ok = true;
  for (int i = 1; i < argc; ++i) {
    std::ifstream in(argv[i], std::ios::binary);
    if (!in) {
      std::cerr << argv[i] << ": cannot open\n";
      all_ok = false;
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string error;
    const JsonValue root = JsonValue::parse(buf.str(), &error);
    if (root.is_null() && !error.empty()) {
      std::cerr << argv[i] << ": JSON parse error: " << error << "\n";
      all_ok = false;
      continue;
    }
    const Check c = validate(root);
    if (c.ok) {
      const JsonValue* results = root.find("results");
      const JsonValue* findings = root.find("findings");
      const JsonValue* modules = root.find("modules");
      std::cout << argv[i] << ": OK (";
      if (results != nullptr) {
        std::cout << results->size() << " results)\n";
      } else if (findings != nullptr) {
        std::cout << findings->size() << " lint findings)\n";
      } else {
        std::cout << (modules != nullptr ? modules->size() : 0)
                  << " modules)\n";
      }
    } else {
      all_ok = false;
      std::cerr << argv[i] << ": INVALID\n";
      for (const std::string& p : c.problems) {
        std::cerr << "  - " << p << "\n";
      }
    }
  }
  return all_ok ? 0 : 1;
}
