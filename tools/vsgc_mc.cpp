// vsgc_mc: bounded model checker for the GCS stack (DESIGN.md §7).
//
// Runs a small fixed scenario (racing sends + a graceful leave triggering a
// view change, with optional fault decision slots) under the controllable-
// nondeterminism seams of sim::Simulator and net::Network, and explores the
// schedule space with delay-bounded iterative deepening: level d enumerates
// every schedule at d deviations from the default execution. State-hash
// dedup collapses pick-vector prefixes that decode to the same consumed
// choice sequence. A --walks mode does a seeded random walk over the same
// choice points instead (PR 2's seed-sweep discipline).
//
// On any checker violation it writes a self-contained repro bundle:
//
//   <out>/<label>/scenario.json       the scenario configuration
//   <out>/<label>/schedule.json       the violating ScheduleScript
//   <out>/<label>/schedule.min.json   greedily minimized schedule
//   <out>/<label>/trace.jsonl         full JSONL trace of the failing run
//   <out>/<label>/trace.min.jsonl     trace of the minimized run
//   <out>/<label>/violation.txt       the violation messages
//
// Replay: --replay <bundle-dir> re-executes a bundle (minimized schedule if
// present) and verifies the violation reproduces with a byte-identical
// JSONL trace.
//
// Self-test: --inject-bug puts a forged duplicate delivery on the fault
// menu; with --expect-violation the exit code is 0 only if the explorer
// found it, the minimizer shrank it, and the minimized bundle replays to a
// byte-identical violating trace — the CI pipeline check.
//
// Every run writes a BENCH_mc.json artifact ($VSGC_BENCH_OUT) with the
// schedules explored/deduped, choice points consumed, per-level breakdown,
// and aggregated simulator stats.
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "mc/explorer.hpp"
#include "obs/artifact.hpp"
#include "obs/json.hpp"
#include "obs/trace_recorder.hpp"
#include "sim/batch.hpp"

namespace vsgc {
namespace {

namespace fs = std::filesystem;

struct CliConfig {
  mc::ScenarioConfig scenario;
  mc::ExploreConfig explore;
  bool random_walk = false;
  std::uint64_t walk_lo = 0;
  std::uint64_t walk_hi = 199;
  std::string out_dir = "mc-out";
  bool minimize = true;
  bool expect_violation = false;
  std::string replay_dir;  // non-empty: replay a bundle instead of exploring
};

std::string render_trace(const std::vector<spec::Event>& trace) {
  std::ostringstream os;
  obs::write_jsonl(trace, os);
  return os.str();
}

void write_text(const fs::path& path, const std::string& text) {
  std::ofstream os(path, std::ios::binary);
  os << text;
}

void write_json(const fs::path& path, const obs::JsonValue& j) {
  std::ofstream os(path, std::ios::binary);
  j.write_pretty(os);
  os << '\n';
}

bool read_json(const fs::path& path, obs::JsonValue* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::stringstream text;
  text << in.rdbuf();
  std::string error;
  *out = obs::JsonValue::parse(text.str(), &error);
  return error.empty();
}

/// Writes the bundle; returns true if the (minimized) schedule still replays
/// to a violation — i.e. the bundle is actionable.
bool emit_bundle(const CliConfig& cfg, const mc::RunResult& failed) {
  const fs::path dir =
      fs::path(cfg.out_dir) / ("seed" + std::to_string(cfg.scenario.seed));
  fs::create_directories(dir);
  write_json(dir / "scenario.json", cfg.scenario.to_json());
  write_json(dir / "schedule.json", failed.script.to_json());
  write_text(dir / "trace.jsonl", render_trace(failed.trace));

  std::ostringstream violation;
  violation << failed.what << "\n";
  bool reproduces = false;
  if (cfg.minimize) {
    const std::vector<std::uint32_t> min_picks =
        mc::minimize_schedule(cfg.scenario, failed.script.picks());
    const mc::RunResult min_run = mc::run_scenario(cfg.scenario, min_picks);
    reproduces = min_run.violation;
    write_json(dir / "schedule.min.json", min_run.script.to_json());
    write_text(dir / "trace.min.jsonl", render_trace(min_run.trace));
    violation << "minimized: " << failed.script.deviations() << " -> "
              << min_run.script.deviations() << " deviation(s)\n";
    violation << "minimized violation: "
              << (min_run.violation ? min_run.what : "(did not reproduce)")
              << "\n";
  } else {
    reproduces =
        mc::run_scenario(cfg.scenario, failed.script.picks()).violation;
  }
  write_text(dir / "violation.txt", violation.str());
  std::cerr << "  repro bundle: " << dir.string() << "\n";
  return reproduces;
}

int replay_bundle(const CliConfig& cfg) {
  const fs::path dir = cfg.replay_dir;
  obs::JsonValue scenario_json;
  mc::ScenarioConfig sc;
  if (!read_json(dir / "scenario.json", &scenario_json) ||
      !mc::ScenarioConfig::from_json(scenario_json, &sc)) {
    std::cerr << "cannot parse " << (dir / "scenario.json").string() << "\n";
    return 2;
  }
  fs::path script_path = dir / "schedule.min.json";
  fs::path trace_path = dir / "trace.min.jsonl";
  if (!fs::exists(script_path)) {
    script_path = dir / "schedule.json";
    trace_path = dir / "trace.jsonl";
  }
  obs::JsonValue script_json;
  mc::ScheduleScript script;
  if (!read_json(script_path, &script_json) ||
      !mc::ScheduleScript::from_json(script_json, &script)) {
    std::cerr << "cannot parse " << script_path.string() << "\n";
    return 2;
  }

  const mc::RunResult result = mc::run_scenario(sc, script.picks());
  bool byte_identical = false;
  {
    std::ifstream in(trace_path, std::ios::binary);
    std::stringstream stored;
    stored << in.rdbuf();
    byte_identical = in && stored.str() == render_trace(result.trace);
  }
  if (result.violation) {
    std::cout << "replay of " << script_path.string()
              << " reproduces the violation:\n  " << result.what << "\n"
              << "  trace vs " << trace_path.filename().string() << ": "
              << (byte_identical ? "byte-identical" : "DIFFERS") << "\n";
    const bool ok = byte_identical;
    return cfg.expect_violation ? (ok ? 0 : 1) : 1;
  }
  std::cout << "replay of " << script_path.string() << " ran clean\n";
  return cfg.expect_violation ? 1 : 0;
}

void print_stats(const mc::ExploreStats& stats, const char* mode) {
  std::cout << mode << ": " << stats.runs << " run(s), " << stats.deduped
            << " deduped, " << stats.choice_points
            << " choice points consumed, " << stats.unique_traces
            << " unique trace(s)\n";
  for (const auto& l : stats.levels) {
    std::cout << "  depth " << l.depth << ": " << l.runs << " run(s), "
              << l.deduped << " deduped, " << l.enqueued << " enqueued\n";
  }
  if (stats.frontier_exhausted) {
    std::cout << "  frontier exhausted (complete within the delay bound)\n";
  }
  if (stats.budget_exhausted) {
    std::cout << "  run budget exhausted before the frontier\n";
  }
}

void write_artifact(const CliConfig& cfg, const mc::ExploreStats& stats,
                    bool violation_found) {
  obs::BenchArtifact artifact("mc");
  artifact.config("scenario") = cfg.scenario.to_json();
  artifact.config("max_deviations") = cfg.explore.max_deviations;
  artifact.config("max_runs") = cfg.explore.max_runs;
  artifact.config("horizon") = cfg.explore.horizon;
  artifact.config("mode") = cfg.random_walk ? "random_walk" : "explore";
  obs::JsonValue& row = artifact.add_result();
  row = stats.to_json();
  row["violation_found"] = violation_found;
  artifact.tally(stats.sim_stats, stats.sim_time);
  const std::string path = artifact.write_file();
  if (!path.empty()) std::cout << "artifact: " << path << "\n";
}

int usage() {
  std::cerr <<
      "usage: vsgc_mc [--clients N] [--servers M] [--seed S] [--messages K]\n"
      "               [--no-leave] [--fault-slots N] [--drop P]\n"
      "               [--jitter MICROS] [--max-deviations D] [--max-runs N]\n"
      "               [--horizon H] [--inject-bug] [--corrupt]\n"
      "               [--walks LO:HI]\n"
      "  --corrupt  add the state-corruption family to the fault menu and\n"
      "             run the eventual-safety checker bundle; with\n"
      "             --inject-bug the planted action becomes an unrecoverable\n"
      "             view-epoch wedge\n"
      "               [--out DIR] [--no-minimize] [--expect-violation]\n"
      "               [--jobs N]\n"
      "  --jobs N   run N schedules in parallel (0 = all hardware threads);\n"
      "             stats, bundles and exit code are identical for every N\n"
      "       vsgc_mc --replay BUNDLE_DIR [--expect-violation]\n";
  return 2;
}

}  // namespace
}  // namespace vsgc

int main(int argc, char** argv) {
  using namespace vsgc;
  CliConfig cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--clients") {
      cfg.scenario.clients = std::atoi(value().c_str());
    } else if (arg == "--servers") {
      cfg.scenario.servers = std::atoi(value().c_str());
    } else if (arg == "--seed") {
      cfg.scenario.seed = std::strtoull(value().c_str(), nullptr, 10);
    } else if (arg == "--messages") {
      cfg.scenario.messages = std::atoi(value().c_str());
    } else if (arg == "--no-leave") {
      cfg.scenario.trigger_leave = false;
    } else if (arg == "--fault-slots") {
      cfg.scenario.fault_slots = std::atoi(value().c_str());
    } else if (arg == "--drop") {
      cfg.scenario.drop = std::atof(value().c_str());
    } else if (arg == "--jitter") {
      cfg.scenario.jitter = std::atoll(value().c_str());
    } else if (arg == "--max-deviations") {
      cfg.explore.max_deviations = std::atoi(value().c_str());
    } else if (arg == "--max-runs") {
      cfg.explore.max_runs = std::strtoull(value().c_str(), nullptr, 10);
    } else if (arg == "--horizon") {
      cfg.explore.horizon =
          static_cast<std::size_t>(std::strtoull(value().c_str(), nullptr, 10));
    } else if (arg == "--inject-bug") {
      cfg.scenario.inject_bug = true;
    } else if (arg == "--corrupt") {
      cfg.scenario.corruption = true;
    } else if (arg == "--walks") {
      const std::string v = value();
      const auto colon = v.find(':');
      if (colon == std::string::npos) {
        cfg.walk_lo = cfg.walk_hi = std::strtoull(v.c_str(), nullptr, 10);
      } else {
        cfg.walk_lo = std::strtoull(v.substr(0, colon).c_str(), nullptr, 10);
        cfg.walk_hi = std::strtoull(v.substr(colon + 1).c_str(), nullptr, 10);
      }
      cfg.random_walk = true;
    } else if (arg == "--out") {
      cfg.out_dir = value();
    } else if (arg == "--no-minimize") {
      cfg.minimize = false;
    } else if (arg == "--expect-violation") {
      cfg.expect_violation = true;
    } else if (arg == "--replay") {
      cfg.replay_dir = value();
    } else if (arg == "--jobs") {
      cfg.explore.jobs = static_cast<std::size_t>(
          std::strtoull(value().c_str(), nullptr, 10));
    } else {
      return usage();
    }
  }

  if (!cfg.replay_dir.empty()) return replay_bundle(cfg);

  // A planted bug needs at least one fault decision point to land on.
  if (cfg.scenario.inject_bug && cfg.scenario.fault_slots == 0) {
    cfg.scenario.fault_slots = 1;
  }

  mc::Explorer explorer(cfg.scenario, cfg.explore);
  const auto wall_start = std::chrono::steady_clock::now();
  const std::optional<mc::RunResult> found =
      cfg.random_walk ? explorer.random_walk(cfg.walk_lo, cfg.walk_hi)
                      : explorer.explore();
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  print_stats(explorer.stats(), cfg.random_walk ? "random walk" : "explore");
  // Throughput summary (stderr, wall-clock — not part of the deterministic
  // stdout contract the CI jobs-independence check compares).
  if (wall_seconds > 0.0) {
    std::ostringstream tp;
    tp.setf(std::ios::fixed);
    tp.precision(2);
    tp << "[throughput] " << explorer.stats().runs << " runs in "
       << wall_seconds << "s — "
       << (static_cast<double>(explorer.stats().runs) / wall_seconds)
       << " runs/sec, "
       << (static_cast<double>(explorer.stats().sim_stats.events_executed) /
           wall_seconds / 1e6)
       << "M events/sec, jobs="
       << (cfg.explore.jobs == 0 ? sim::BatchRunner::hardware_jobs()
                                 : cfg.explore.jobs);
    std::cerr << tp.str() << "\n";
  }
  write_artifact(cfg, explorer.stats(), found.has_value());

  if (!found.has_value()) {
    std::cout << "no violation found\n";
    return cfg.expect_violation ? 1 : 0;
  }
  std::cout << "VIOLATION after " << explorer.stats().runs << " run(s) ("
            << found->script.deviations() << " deviation(s)):\n  "
            << found->what << "\n";
  const bool actionable = emit_bundle(cfg, *found);
  if (cfg.expect_violation) return actionable ? 0 : 1;
  return 1;
}
