// vsgc_stress: seeded stress fuzzer for the full GCS stack.
//
// Sweeps a range of seeds; for each seed it builds an app::World with every
// spec checker attached, drives a sim::FailureInjector churn schedule
// against it, then runs the stabilize-and-check-liveness epilogue (Property
// 4.2): heal everything, recover everyone, require reconvergence, send a
// probe, and check the recorded trace with the liveness checker.
//
// On any checker violation (safety thrown mid-run, or the liveness epilogue
// failing) it writes a self-contained repro bundle:
//
//   <out>/seed<N>/config.json        world + policy configuration
//   <out>/seed<N>/fault_script.json  the full fault schedule that failed
//   <out>/seed<N>/fault_script.min.json  greedily minimized schedule
//   <out>/seed<N>/trace.jsonl        full JSONL trace of the failing run
//   <out>/seed<N>/trace.min.jsonl    trace of the minimized run
//   <out>/seed<N>/violation.txt      the violation messages
//
// and a greedy fault-script minimizer re-runs the seed with ops elided one
// at a time, keeping every elision that preserves the violation — shrinking
// a ~50-op schedule to the handful of faults that matter.
//
// Replay: --replay <bundle-dir> re-executes a bundle (the minimized script
// if present) and reports whether the violation reproduces.
//
// Self-test: --inject-bug <step> arms a deliberate endpoint bug (a forged
// duplicate delivery) at the given churn step; with --expect-violation the
// exit code is 0 only if the bug was caught, minimized, and the minimized
// bundle replays to a violation — the CI pipeline check.
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "app/world.hpp"
#include "obs/artifact.hpp"
#include "obs/json.hpp"
#include "obs/trace_recorder.hpp"
#include "sim/batch.hpp"
#include "sim/failure_injector.hpp"
#include "spec/liveness_checker.hpp"
#include "util/assert.hpp"

namespace vsgc {
namespace {

namespace fs = std::filesystem;

struct StressConfig {
  std::uint64_t seed_lo = 0;
  std::uint64_t seed_hi = 49;
  int clients = 4;
  int servers = 1;
  int steps = 25;
  double drop = 0.0;
  bool two_tier = false;
  gcs::ForwardingKind forwarding = gcs::ForwardingKind::kMinCopies;
  /// State-corruption mode (DESIGN.md §12): the churn policy draws corruption
  /// ops, the world attaches the eventual-safety checker bundle (violations
  /// tolerated inside eventual_window after an injection), and --inject-bug
  /// plants the unrecoverable kBugCorruptWedge instead of the dup-delivery
  /// forgery. Both fields round-trip through config.json so bundle replay and
  /// the minimizer judge every script subset under the *same* window bound.
  bool corrupt = false;
  sim::Time eventual_window = 30 * sim::kSecond;
  int bug_at_step = -1;
  std::string out_dir = "stress-out";
  bool minimize = true;
  bool expect_violation = false;
  std::string replay_dir;  // non-empty: replay a bundle instead of sweeping
  std::size_t jobs = 1;    // parallel sweep workers; 0 = hardware threads
};

obs::JsonValue config_json(const StressConfig& cfg, std::uint64_t seed) {
  obs::JsonValue j = obs::JsonValue::object();
  j["seed"] = seed;
  j["clients"] = cfg.clients;
  j["servers"] = cfg.servers;
  j["steps"] = cfg.steps;
  j["drop"] = cfg.drop;
  j["two_tier"] = cfg.two_tier;
  j["forwarding"] =
      cfg.forwarding == gcs::ForwardingKind::kSimple ? "simple" : "mincopies";
  j["bug_at_step"] = cfg.bug_at_step;
  j["corrupt"] = cfg.corrupt;
  j["eventual_window"] = cfg.eventual_window;
  return j;
}

bool config_from_json(const obs::JsonValue& j, StressConfig* cfg,
                      std::uint64_t* seed) {
  const obs::JsonValue* s = j.find("seed");
  if (s == nullptr || !s->is_int()) return false;
  *seed = static_cast<std::uint64_t>(s->as_int());
  if (const auto* v = j.find("clients")) cfg->clients = static_cast<int>(v->as_int());
  if (const auto* v = j.find("servers")) cfg->servers = static_cast<int>(v->as_int());
  if (const auto* v = j.find("steps")) cfg->steps = static_cast<int>(v->as_int());
  if (const auto* v = j.find("drop")) cfg->drop = v->as_double();
  if (const auto* v = j.find("two_tier")) cfg->two_tier = v->as_bool();
  if (const auto* v = j.find("bug_at_step")) {
    cfg->bug_at_step = static_cast<int>(v->as_int());
  }
  if (const auto* v = j.find("corrupt")) cfg->corrupt = v->as_bool();
  if (const auto* v = j.find("eventual_window")) {
    cfg->eventual_window = v->as_int();
  }
  if (const auto* v = j.find("forwarding")) {
    cfg->forwarding = v->as_string() == "simple" ? gcs::ForwardingKind::kSimple
                                                 : gcs::ForwardingKind::kMinCopies;
  }
  return true;
}

app::WorldConfig world_config(const StressConfig& cfg, std::uint64_t seed) {
  app::WorldConfig wc;
  wc.num_clients = cfg.clients;
  wc.num_servers = cfg.servers;
  wc.seed = seed;
  wc.forwarding = cfg.forwarding;
  wc.net.drop_probability = cfg.drop;
  wc.eventual_checkers = cfg.corrupt;
  wc.eventual_window = cfg.eventual_window;
  if (cfg.two_tier) {
    wc.sync_routing.mode = gcs::SyncRouting::Mode::kTwoTier;
    const int half = (cfg.clients + 1) / 2;
    for (int i = 0; i < cfg.clients; ++i) {
      wc.sync_routing.leader_of[ProcessId{static_cast<std::uint32_t>(i + 1)}] =
          ProcessId{static_cast<std::uint32_t>(i < half ? 1 : half + 1)};
    }
  }
  return wc;
}

sim::FailureInjector::Policy make_policy(const StressConfig& cfg) {
  sim::FailureInjector::Policy policy;
  policy.steps = cfg.steps;
  policy.base_drop = cfg.drop;
  policy.bug_at_step = cfg.bug_at_step;
  if (cfg.corrupt) {
    policy.w_corrupt = 6;
    policy.bug_is_corruption = true;
  }
  return policy;
}

struct RunResult {
  bool violation = false;
  std::string what;
  sim::FaultScript script;       ///< ops actually applied
  std::vector<spec::Event> trace;
  sim::Simulator::Stats sim_stats;  ///< kernel counters at end of run
  sim::Time sim_time = 0;           ///< final simulated clock
  double wall_seconds = 0.0;        ///< host time for this run (summary only)
};

/// One full execution: generate mode when `replay` is null, otherwise replay
/// of `*replay` with `elide` skipped. Any safety/liveness failure lands in
/// the result instead of propagating.
RunResult run_one(const StressConfig& cfg, std::uint64_t seed,
                  const sim::FaultScript* replay = nullptr,
                  const std::set<std::size_t>& elide = {}) {
  RunResult result;
  app::World w(world_config(cfg, seed));
  sim::FailureInjector injector(w.fault_target(), make_policy(cfg), seed);
  try {
    w.start();
    if (!w.run_until_converged(w.all_members(), 10 * sim::kSecond)) {
      throw InvariantViolation("initial convergence failed (before faults)");
    }
    if (replay != nullptr) injector.replay(*replay, elide);
    else injector.run_churn();

    // Stabilize-and-check-liveness epilogue (Property 4.2).
    injector.stabilize();
    if (!w.run_until_converged(w.all_members(), 60 * sim::kSecond)) {
      throw InvariantViolation(
          "liveness: no reconvergence within 60s after stabilization");
    }
    w.client(0).send("stress-probe-" + std::to_string(seed));
    w.run_for(3 * sim::kSecond);
    w.check_transport_bounded();
    w.finalize_checkers();
    if (!spec::LivenessChecker::check(w.trace().recorded())) {
      throw InvariantViolation(
          "liveness: membership did not stabilize in the recorded trace");
    }
  } catch (const InvariantViolation& e) {
    result.violation = true;
    result.what = e.what();
  }
  result.script = injector.script();
  result.trace = w.trace().recorded();
  result.sim_stats = w.sim().stats();
  result.sim_time = w.sim().now();
  return result;
}

/// Greedy fault-script minimizer: repeatedly try eliding each op; keep an
/// elision whenever the violation persists. Loops to a fixpoint (max 3
/// passes) so an op unlocked by a later removal still gets elided.
std::set<std::size_t> minimize(const StressConfig& cfg, std::uint64_t seed,
                               const sim::FaultScript& script) {
  std::set<std::size_t> elided;
  for (int pass = 0; pass < 3; ++pass) {
    bool changed = false;
    for (std::size_t i = 0; i < script.ops.size(); ++i) {
      if (elided.contains(i)) continue;
      std::set<std::size_t> trial = elided;
      trial.insert(i);
      if (run_one(cfg, seed, &script, trial).violation) {
        elided = std::move(trial);
        changed = true;
      }
    }
    if (!changed) break;
  }
  return elided;
}

void write_text(const fs::path& path, const std::string& text) {
  std::ofstream os(path, std::ios::binary);
  os << text;
}

void write_json(const fs::path& path, const obs::JsonValue& j) {
  std::ofstream os(path, std::ios::binary);
  j.write_pretty(os);
  os << '\n';
}

void write_trace(const fs::path& path, const std::vector<spec::Event>& trace) {
  std::ofstream os(path, std::ios::binary);
  obs::write_jsonl(trace, os);
}

sim::FaultScript subset(const sim::FaultScript& script,
                        const std::set<std::size_t>& elided) {
  sim::FaultScript out;
  out.seed = script.seed;
  for (std::size_t i = 0; i < script.ops.size(); ++i) {
    if (!elided.contains(i)) out.ops.push_back(script.ops[i]);
  }
  return out;
}

/// Writes the bundle; returns true if the minimized script still replays to
/// a violation (the bundle is actionable).
bool emit_bundle(const StressConfig& cfg, std::uint64_t seed,
                 const RunResult& failed) {
  const fs::path dir = fs::path(cfg.out_dir) / ("seed" + std::to_string(seed));
  fs::create_directories(dir);
  write_json(dir / "config.json", config_json(cfg, seed));
  write_json(dir / "fault_script.json", failed.script.to_json());
  write_trace(dir / "trace.jsonl", failed.trace);

  std::ostringstream violation;
  violation << failed.what << "\n";
  bool min_reproduces = false;
  if (cfg.minimize) {
    const std::set<std::size_t> elided = minimize(cfg, seed, failed.script);
    const sim::FaultScript min_script = subset(failed.script, elided);
    const RunResult min_run = run_one(cfg, seed, &min_script);
    min_reproduces = min_run.violation;
    write_json(dir / "fault_script.min.json", min_script.to_json());
    write_trace(dir / "trace.min.jsonl", min_run.trace);
    violation << "minimized: " << failed.script.ops.size() << " -> "
              << min_script.ops.size() << " ops\n";
    violation << "minimized violation: "
              << (min_run.violation ? min_run.what : "(did not reproduce)")
              << "\n";
  } else {
    // Without minimization the full script must still replay to a violation.
    min_reproduces = run_one(cfg, seed, &failed.script).violation;
  }
  write_text(dir / "violation.txt", violation.str());
  std::cerr << "  repro bundle: " << dir.string() << "\n";
  return min_reproduces;
}

int replay_bundle(StressConfig cfg) {
  const fs::path dir = cfg.replay_dir;
  std::ifstream cfg_in(dir / "config.json");
  std::stringstream cfg_text;
  cfg_text << cfg_in.rdbuf();
  std::string error;
  const obs::JsonValue cfg_json_v = obs::JsonValue::parse(cfg_text.str(), &error);
  std::uint64_t seed = 0;
  if (!config_from_json(cfg_json_v, &cfg, &seed)) {
    std::cerr << "cannot parse " << (dir / "config.json").string() << "\n";
    return 2;
  }
  fs::path script_path = dir / "fault_script.min.json";
  if (!fs::exists(script_path)) script_path = dir / "fault_script.json";
  std::ifstream script_in(script_path);
  std::stringstream script_text;
  script_text << script_in.rdbuf();
  sim::FaultScript script;
  if (!sim::FaultScript::from_json(
          obs::JsonValue::parse(script_text.str(), &error), &script)) {
    std::cerr << "cannot parse " << script_path.string() << "\n";
    return 2;
  }
  const RunResult result = run_one(cfg, seed, &script);
  if (result.violation) {
    std::cout << "replay of " << script_path.string()
              << " reproduces the violation:\n  " << result.what << "\n";
    return cfg.expect_violation ? 0 : 1;
  }
  std::cout << "replay of " << script_path.string() << " ran clean\n";
  return cfg.expect_violation ? 1 : 0;
}

int usage() {
  std::cerr <<
      "usage: vsgc_stress [--seeds LO:HI] [--clients N] [--servers M]\n"
      "                   [--steps K] [--drop P] [--two-tier] [--corrupt]\n"
      "                   [--eventual-window SECONDS]\n"
      "                   [--forwarding simple|mincopies] [--out DIR]\n"
      "                   [--no-minimize] [--inject-bug STEP]\n"
      "                   [--expect-violation] [--jobs N]\n"
      "  --jobs N   run N seeds in parallel (0 = all hardware threads);\n"
      "             output is identical for every N\n"
      "       vsgc_stress --replay BUNDLE_DIR [--expect-violation]\n";
  return 2;
}

}  // namespace
}  // namespace vsgc

int main(int argc, char** argv) {
  using namespace vsgc;
  StressConfig cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--seeds") {
      const std::string v = value();
      const auto colon = v.find(':');
      if (colon == std::string::npos) {
        cfg.seed_lo = cfg.seed_hi = std::strtoull(v.c_str(), nullptr, 10);
      } else {
        cfg.seed_lo = std::strtoull(v.substr(0, colon).c_str(), nullptr, 10);
        cfg.seed_hi = std::strtoull(v.substr(colon + 1).c_str(), nullptr, 10);
      }
    } else if (arg == "--clients") {
      cfg.clients = std::atoi(value().c_str());
    } else if (arg == "--servers") {
      cfg.servers = std::atoi(value().c_str());
    } else if (arg == "--steps") {
      cfg.steps = std::atoi(value().c_str());
    } else if (arg == "--drop") {
      cfg.drop = std::atof(value().c_str());
    } else if (arg == "--two-tier") {
      cfg.two_tier = true;
    } else if (arg == "--corrupt") {
      cfg.corrupt = true;
    } else if (arg == "--eventual-window") {
      cfg.eventual_window = std::atoi(value().c_str()) * sim::kSecond;
    } else if (arg == "--forwarding") {
      cfg.forwarding = value() == "simple" ? gcs::ForwardingKind::kSimple
                                           : gcs::ForwardingKind::kMinCopies;
    } else if (arg == "--out") {
      cfg.out_dir = value();
    } else if (arg == "--no-minimize") {
      cfg.minimize = false;
    } else if (arg == "--inject-bug") {
      cfg.bug_at_step = std::atoi(value().c_str());
    } else if (arg == "--expect-violation") {
      cfg.expect_violation = true;
    } else if (arg == "--replay") {
      cfg.replay_dir = value();
    } else if (arg == "--jobs") {
      cfg.jobs = static_cast<std::size_t>(std::strtoull(value().c_str(), nullptr, 10));
    } else {
      return usage();
    }
  }

  if (!cfg.replay_dir.empty()) return replay_bundle(cfg);
  if (cfg.seed_hi < cfg.seed_lo) return usage();

  const std::uint64_t seeds = cfg.seed_hi - cfg.seed_lo + 1;

  // Parallel sweep: one fully isolated World per seed on the batch engine.
  // Results are merged (printed, tallied, bundled) strictly in seed order, so
  // stdout/stderr and every bundle are byte-identical for any --jobs value.
  const auto wall_start = std::chrono::steady_clock::now();
  sim::BatchRunner runner(cfg.jobs);
  const std::vector<RunResult> results = runner.map<RunResult>(
      static_cast<std::size_t>(seeds), [&](std::size_t i) {
        const auto t0 = std::chrono::steady_clock::now();
        RunResult r = run_one(cfg, cfg.seed_lo + i);
        r.wall_seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                .count();
        return r;
      });
  const double sweep_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  std::uint64_t violations = 0;
  std::uint64_t actionable = 0;
  std::uint64_t total_events = 0;
  double serial_seconds = 0.0;
  obs::BenchArtifact artifact("stress");
  artifact.config("seeds") = seeds;
  artifact.config("jobs") = static_cast<std::uint64_t>(runner.jobs());
  artifact.config("clients") = cfg.clients;
  artifact.config("servers") = cfg.servers;
  artifact.config("steps") = cfg.steps;
  for (std::uint64_t seed = cfg.seed_lo; seed <= cfg.seed_hi; ++seed) {
    const RunResult& result = results[seed - cfg.seed_lo];
    total_events += result.sim_stats.events_executed;
    serial_seconds += result.wall_seconds;
    artifact.tally(result.sim_stats, result.sim_time);
    if (!result.violation) {
      std::cout << "seed " << seed << ": ok (" << result.script.ops.size()
                << " fault ops)\n";
      continue;
    }
    ++violations;
    std::cout << "seed " << seed << ": VIOLATION\n  " << result.what << "\n";
    if (emit_bundle(cfg, seed, result)) ++actionable;
  }

  // Throughput summary (stderr, wall-clock — deliberately not part of the
  // deterministic stdout contract).
  if (sweep_seconds > 0.0) {
    std::ostringstream sweep;
    sweep.setf(std::ios::fixed);
    sweep.precision(2);
    sweep << "[sweep] " << seeds << " seeds in " << sweep_seconds << "s — "
          << (static_cast<double>(seeds) / sweep_seconds) << " seeds/sec, "
          << (static_cast<double>(total_events) / sweep_seconds / 1e6)
          << "M events/sec, jobs=" << runner.jobs();
    if (runner.jobs() > 1 && sweep_seconds > 0.0) {
      sweep << ", est. speedup vs --jobs 1: "
            << (serial_seconds / sweep_seconds) << "x";
    }
    std::cerr << sweep.str() << "\n";
  }
  artifact.write_file();

  std::cout << "\n" << seeds << " seeds, " << violations << " violation(s)";
  if (violations > 0) std::cout << ", " << actionable << " minimized+replayed";
  std::cout << "\n";

  if (cfg.expect_violation) {
    // Self-test mode: success means the pipeline caught the planted bug AND
    // the (minimized) bundle replays to the violation.
    return violations > 0 && actionable == violations ? 0 : 1;
  }
  return violations == 0 ? 0 : 1;
}
