// vsgc_trace: causal span analysis of recorded executions (DESIGN.md §10).
//
// Two modes share the analysis pipeline:
//
//   vsgc_trace <trace.jsonl> [options]
//     Parse a JSONL trace (obs::TraceRecorder format), reconstruct every
//     message lifecycle and view-change span, and report per-phase latency
//     percentiles, queue-wait vs wire-time decomposition, the slowest
//     deliveries with their critical path, and orphan detection — expected
//     deliveries that never happened, classified as legitimate (crash,
//     exclusion by the view-change cut, trace truncation) or as a genuine
//     virtual-synchrony loss ("unexplained").
//
//   vsgc_trace --record [options]
//     Build a seeded app::World with lifecycle spans on, drive a paced
//     message workload (optionally under FailureInjector churn), record the
//     trace, and analyze it — the self-contained form the CI gate uses.
//
// The report is byte-deterministic: integers only, exact nearest-rank
// percentiles, fixed ordering — same seed => identical bytes. --json DIR
// additionally writes BENCH_tracelat.json under the bench-artifact schema
// (validated by tools/validate_bench_json).
//
// Gates: --check-no-orphans fails unless every expected delivery completed
// (the fault-free contract); --check-clean fails only on "unexplained"
// orphans (the churn contract: losses must be attributable to faults).
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "app/world.hpp"
#include "obs/artifact.hpp"
#include "obs/span.hpp"
#include "obs/trace_recorder.hpp"
#include "sim/failure_injector.hpp"

namespace vsgc {
namespace {

struct Options {
  std::string input;       ///< JSONL path (analyze mode)
  bool record = false;
  std::string report_path; ///< empty: stdout
  std::string json_dir;    ///< empty: no BENCH_tracelat.json
  std::string jsonl_path;  ///< record mode: also dump the recorded trace
  int top = 5;
  bool check_no_orphans = false;
  bool check_clean = false;
  // Record-mode workload shape.
  std::uint64_t seed = 1;
  int clients = 4;
  int servers = 1;
  int messages = 40;
  bool churn = false;
  bool two_tier = false;
};

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " <trace.jsonl> [options]\n"
      << "       " << argv0 << " --record [options]\n"
      << "options:\n"
      << "  --report FILE       write the span report to FILE (default: stdout)\n"
      << "  --json DIR          write BENCH_tracelat.json into DIR\n"
      << "  --jsonl FILE        (record) also write the recorded trace JSONL\n"
      << "  --top K             slowest-delivery listing depth (default 5)\n"
      << "  --check-no-orphans  fail unless every expected delivery completed\n"
      << "  --check-clean       fail on 'unexplained' orphans only\n"
      << "  --seed N            (record) world + injector seed (default 1)\n"
      << "  --clients N         (record) client processes (default 4)\n"
      << "  --servers N         (record) membership servers (default 1)\n"
      << "  --messages N        (record) paced app messages (default 40)\n"
      << "  --churn             (record) drive FailureInjector churn\n"
      << "  --two-tier          (record) two-tier sync-message routing\n";
  return 2;
}

bool parse_args(int argc, char** argv, Options* opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << flag << " needs a value\n";
        return nullptr;
      }
      return argv[++i];
    };
    if (a == "--record") {
      opt->record = true;
    } else if (a == "--report") {
      const char* v = next("--report");
      if (v == nullptr) return false;
      opt->report_path = v;
    } else if (a == "--json") {
      const char* v = next("--json");
      if (v == nullptr) return false;
      opt->json_dir = v;
    } else if (a == "--jsonl") {
      const char* v = next("--jsonl");
      if (v == nullptr) return false;
      opt->jsonl_path = v;
    } else if (a == "--top") {
      const char* v = next("--top");
      if (v == nullptr) return false;
      opt->top = std::atoi(v);
    } else if (a == "--check-no-orphans") {
      opt->check_no_orphans = true;
    } else if (a == "--check-clean") {
      opt->check_clean = true;
    } else if (a == "--seed") {
      const char* v = next("--seed");
      if (v == nullptr) return false;
      opt->seed = std::strtoull(v, nullptr, 10);
    } else if (a == "--clients") {
      const char* v = next("--clients");
      if (v == nullptr) return false;
      opt->clients = std::atoi(v);
    } else if (a == "--servers") {
      const char* v = next("--servers");
      if (v == nullptr) return false;
      opt->servers = std::atoi(v);
    } else if (a == "--messages") {
      const char* v = next("--messages");
      if (v == nullptr) return false;
      opt->messages = std::atoi(v);
    } else if (a == "--churn") {
      opt->churn = true;
    } else if (a == "--two-tier") {
      opt->two_tier = true;
    } else if (!a.empty() && a[0] != '-' && opt->input.empty()) {
      opt->input = a;
    } else {
      std::cerr << "unknown argument: " << a << "\n";
      return false;
    }
  }
  if (!opt->record && opt->input.empty()) return false;
  if (opt->record && !opt->input.empty()) {
    std::cerr << "--record and a trace file are mutually exclusive\n";
    return false;
  }
  return true;
}

/// Record mode: seeded world, paced workload, optional churn, quiesce.
/// Returns false if the world never converged (nothing useful to analyze).
bool record_trace(const Options& opt, std::vector<spec::Event>* events,
                  obs::BenchArtifact* art) {
  app::WorldConfig wc;
  wc.num_clients = opt.clients;
  wc.num_servers = opt.servers;
  wc.seed = opt.seed;
  wc.record_trace = true;
  wc.lifecycle_spans = true;
  wc.attach_checkers = true;
  if (opt.two_tier) {
    wc.sync_routing.mode = gcs::SyncRouting::Mode::kTwoTier;
    const int half = (opt.clients + 1) / 2;
    for (int i = 0; i < opt.clients; ++i) {
      wc.sync_routing.leader_of[ProcessId{static_cast<std::uint32_t>(i + 1)}] =
          ProcessId{static_cast<std::uint32_t>(i < half ? 1 : half + 1)};
    }
  }
  app::World world(wc);
  world.start();
  if (!world.run_until_converged(world.all_members(), 10 * sim::kSecond)) {
    std::cerr << "vsgc_trace: world failed to converge before the workload\n";
    return false;
  }

  if (opt.churn) {
    // Churn first, then stabilize and reconverge; the paced workload below
    // runs over the healed group, and the injector's own kTraffic ops give
    // the faulted window in-flight messages to orphan.
    sim::FailureInjector::Policy policy;
    policy.steps = 20;
    sim::FailureInjector injector(world.fault_target(), policy, opt.seed);
    injector.run_churn();
    injector.stabilize();
    if (!world.run_until_converged(world.all_members(), 30 * sim::kSecond)) {
      std::cerr << "vsgc_trace: world failed to reconverge after churn\n";
      return false;
    }
  }

  for (int m = 0; m < opt.messages; ++m) {
    world.client(m % opt.clients).send("trace-msg-" + std::to_string(m));
    world.run_for(2 * sim::kMillisecond);
  }
  // Quiesce: everything still in flight drains (retransmission timeout is
  // 20ms by default; leave a wide margin so fault-free runs fully settle).
  world.run_for(1 * sim::kSecond);

  *events = world.trace().recorded();
  if (art != nullptr) art->tally(world.sim());
  return true;
}

}  // namespace
}  // namespace vsgc

int main(int argc, char** argv) {
  using namespace vsgc;
  Options opt;
  if (!parse_args(argc, argv, &opt)) return usage(argv[0]);

  obs::BenchArtifact art("tracelat");
  art.config("mode") = opt.record ? "record" : "analyze";
  if (opt.record) {
    art.config("seed") = static_cast<std::int64_t>(opt.seed);
    art.config("clients") = opt.clients;
    art.config("servers") = opt.servers;
    art.config("messages") = opt.messages;
    art.config("churn") = opt.churn;
    art.config("routing") = opt.two_tier ? "two_tier" : "direct";
  } else {
    art.config("input") = opt.input;
  }

  std::vector<spec::Event> events;
  if (opt.record) {
    if (!record_trace(opt, &events, &art)) return 2;
    if (!opt.jsonl_path.empty()) {
      std::ofstream ofs(opt.jsonl_path, std::ios::binary);
      if (!ofs) {
        std::cerr << "vsgc_trace: cannot write " << opt.jsonl_path << "\n";
        return 2;
      }
      obs::write_jsonl(events, ofs);
    }
  } else {
    std::ifstream ifs(opt.input, std::ios::binary);
    if (!ifs) {
      std::cerr << "vsgc_trace: cannot open " << opt.input << "\n";
      return 2;
    }
    if (!obs::read_jsonl(ifs, &events)) {
      std::cerr << "vsgc_trace: malformed JSONL in " << opt.input << "\n";
      return 2;
    }
  }

  const obs::TraceAnalysis analysis = obs::analyze(events);

  // The report (byte-deterministic; see DESIGN.md §10).
  if (opt.report_path.empty()) {
    obs::write_trace_report(analysis, std::cout, opt.top);
  } else {
    std::ofstream ofs(opt.report_path, std::ios::binary);
    if (!ofs) {
      std::cerr << "vsgc_trace: cannot write " << opt.report_path << "\n";
      return 2;
    }
    obs::write_trace_report(analysis, ofs, opt.top);
  }

  // BENCH_tracelat.json: summary + per-phase rows, plus a SpanCollector
  // replay so the artifact carries the span histograms as metrics.
  if (!opt.json_dir.empty()) {
    obs::append_tracelat_results(analysis, art);
    obs::Registry reg;
    obs::SpanCollector collector(reg);
    for (const spec::Event& ev : events) collector.on_event(ev);
    art.set_metrics(reg);
    if (!opt.record) {
      art.tally(sim::Simulator::Stats{}, analysis.end_at);
    }
    const std::string path = art.write_file(opt.json_dir);
    if (path.empty()) {
      std::cerr << "vsgc_trace: failed to write BENCH_tracelat.json\n";
      return 2;
    }
  }

  int rc = 0;
  if (opt.check_no_orphans && analysis.orphans != 0) {
    std::cerr << "vsgc_trace: --check-no-orphans FAILED: " << analysis.orphans
              << " of " << analysis.legs_expected
              << " expected deliveries missing\n";
    rc = 1;
  }
  if (opt.check_clean && analysis.unexplained() != 0) {
    std::cerr << "vsgc_trace: --check-clean FAILED: "
              << analysis.unexplained()
              << " unexplained lost deliveries (virtual synchrony violated)\n";
    rc = 1;
  }
  return rc;
}
