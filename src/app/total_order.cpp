#include "app/total_order.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/serialization.hpp"

namespace vsgc::app {

namespace {

constexpr char kDataTag = 'D';
constexpr char kOrderTag = 'O';

std::string encode_order(const std::vector<std::pair<ProcessId, std::uint64_t>>&
                             ids) {
  Encoder enc;
  enc.put_u32(static_cast<std::uint32_t>(ids.size()));
  for (const auto& [p, uid] : ids) {
    enc.put_process(p);
    enc.put_u64(uid);
  }
  return std::string(1, kOrderTag) +
         std::string(enc.bytes().begin(), enc.bytes().end());
}

std::vector<std::pair<ProcessId, std::uint64_t>> decode_order(
    const std::string& payload) {
  std::vector<std::uint8_t> bytes(payload.begin() + 1, payload.end());
  Decoder dec(bytes);
  const std::uint32_t n = dec.get_u32();
  std::vector<std::pair<ProcessId, std::uint64_t>> out;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    ProcessId p = dec.get_process();
    out.emplace_back(p, dec.get_u64());
  }
  return out;
}

}  // namespace

TotalOrder::TotalOrder(BlockingClient& client, ProcessId self)
    : client_(client), self_(self), sequencer_(self) {
  client_.on_deliver([this](ProcessId from, const gcs::AppMsg& msg) {
    handle_deliver(from, msg);
  });
  client_.on_view([this](const View& v, const std::set<ProcessId>& t) {
    handle_view(v, t);
  });
}

void TotalOrder::send(const std::string& payload) {
  client_.send(std::string(1, kDataTag) + payload);
}

void TotalOrder::handle_deliver(ProcessId from, const gcs::AppMsg& msg) {
  VSGC_REQUIRE(!msg.payload.empty(), "total order: empty wire payload");
  const MsgId id{from, msg.uid};
  if (msg.payload[0] == kDataTag) {
    data_[id] = msg.payload.substr(1);
    if (!sequenced_.contains(id)) unsequenced_.push_back(id);
    if (self_ == sequencer_) {
      // Sequence everything unsequenced so far, in arrival order.
      std::vector<MsgId> batch(unsequenced_.begin(), unsequenced_.end());
      unsequenced_.clear();
      for (const MsgId& m : batch) sequenced_.insert(m);
      if (!batch.empty()) client_.send(encode_order(batch));
    }
    try_deliver();
    return;
  }
  if (msg.payload[0] == kOrderTag) {
    for (const MsgId& m : decode_order(msg.payload)) {
      order_.push_back(m);
      sequenced_.insert(m);
      std::erase(unsequenced_, m);
    }
    try_deliver();
    return;
  }
  VSGC_REQUIRE(false, "total order: unknown payload tag");
}

void TotalOrder::try_deliver() {
  while (!order_.empty()) {
    auto it = data_.find(order_.front());
    if (it == data_.end()) return;  // data not here yet (FIFO will bring it)
    const ProcessId origin = order_.front().first;
    std::string payload = std::move(it->second);
    data_.erase(it);
    order_.pop_front();
    ++delivered_count_;
    if (deliver_) deliver_(origin, payload);
  }
}

void TotalOrder::flush_residue() {
  // At a view boundary the agreed cut has delivered the same data and order
  // messages to every transitional member, so this deterministic flush
  // (sequence first, then leftover data by (sender, uid)) yields the same
  // total order everywhere.
  try_deliver();
  order_.clear();
  std::vector<std::pair<MsgId, std::string>> residue(data_.begin(),
                                                     data_.end());
  std::sort(residue.begin(), residue.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  data_.clear();
  for (auto& [id, payload] : residue) {
    ++delivered_count_;
    if (deliver_) deliver_(id.first, payload);
  }
  unsequenced_.clear();
  sequenced_.clear();
}

void TotalOrder::handle_view(const View& v,
                             const std::set<ProcessId>& transitional) {
  flush_residue();
  sequencer_ = *v.members.begin();
  if (view_) view_(v, transitional);
}

}  // namespace vsgc::app
