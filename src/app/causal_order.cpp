#include "app/causal_order.hpp"

#include "util/assert.hpp"
#include "util/serialization.hpp"

namespace vsgc::app {

namespace {

std::string encode_stamped(const std::map<ProcessId, std::uint64_t>& clock,
                           const std::string& payload) {
  Encoder enc;
  enc.put_u32(static_cast<std::uint32_t>(clock.size()));
  for (const auto& [p, c] : clock) {
    enc.put_process(p);
    enc.put_u64(c);
  }
  enc.put_string(payload);
  return std::string(enc.bytes().begin(), enc.bytes().end());
}

std::pair<std::map<ProcessId, std::uint64_t>, std::string> decode_stamped(
    const std::string& wire) {
  std::vector<std::uint8_t> bytes(wire.begin(), wire.end());
  Decoder dec(bytes);
  std::map<ProcessId, std::uint64_t> clock;
  const std::uint32_t n = dec.get_u32();
  for (std::uint32_t i = 0; i < n; ++i) {
    ProcessId p = dec.get_process();
    clock[p] = dec.get_u64();
  }
  return {std::move(clock), dec.get_string()};
}

}  // namespace

CausalOrder::CausalOrder(BlockingClient& client, ProcessId self)
    : client_(client), self_(self) {
  client_.on_deliver([this](ProcessId from, const gcs::AppMsg& msg) {
    handle_deliver(from, msg);
  });
  client_.on_view([this](const View& v, const std::set<ProcessId>& t) {
    handle_view(v, t);
  });
}

std::size_t CausalOrder::buffered() const {
  std::size_t total = 0;
  for (const auto& [p, q] : pending_) total += q.size();
  return total;
}

void CausalOrder::send(const std::string& payload) {
  if (client_.blocked()) {
    // A clock stamped now would reference the old view; defer raw payloads
    // and stamp them fresh once the new view (with reset clocks) arrives.
    outbox_.push_back(payload);
    return;
  }
  // Stamp so that receivers must have seen everything we delivered, plus all
  // our own previous messages (own_sent_ may lead delivered_[self] when we
  // send again before our own message loops back).
  std::map<ProcessId, std::uint64_t> clock = delivered_;
  clock[self_] = ++own_sent_;
  client_.send(encode_stamped(clock, payload));
}

bool CausalOrder::deliverable(ProcessId from, const Stamped& m) const {
  for (const auto& [p, c] : m.clock) {
    const auto it = delivered_.find(p);
    const std::uint64_t have = it == delivered_.end() ? 0 : it->second;
    if (p == from) {
      if (c != have + 1) return false;  // next-in-FIFO from the sender
    } else if (c > have) {
      return false;  // missing a causal predecessor from p
    }
  }
  return true;
}

void CausalOrder::drain() {
  bool progress = true;
  while (progress) {
    progress = false;
    for (auto& [from, queue] : pending_) {
      while (!queue.empty() && deliverable(from, queue.front())) {
        Stamped m = std::move(queue.front());
        queue.pop_front();
        delivered_[from] += 1;
        ++delivered_count_;
        if (deliver_) deliver_(from, m.payload);
        progress = true;
      }
    }
  }
}

void CausalOrder::handle_deliver(ProcessId from, const gcs::AppMsg& msg) {
  auto [clock, payload] = decode_stamped(msg.payload);
  pending_[from].push_back(Stamped{std::move(clock), std::move(payload)});
  drain();
}

void CausalOrder::handle_view(const View& v,
                              const std::set<ProcessId>& transitional) {
  // Virtual Synchrony: transitional members agreed on the delivered set, so
  // any residue is flushed in (sender) order and the clocks restart.
  drain();
  for (auto& [from, queue] : pending_) {
    while (!queue.empty()) {
      Stamped m = std::move(queue.front());
      queue.pop_front();
      ++delivered_count_;
      if (deliver_) deliver_(from, m.payload);
    }
  }
  pending_.clear();
  delivered_.clear();
  own_sent_ = 0;
  if (view_) view_(v, transitional);
  std::deque<std::string> outbox;
  outbox.swap(outbox_);
  for (std::string& payload : outbox) send(payload);
}

}  // namespace vsgc::app
