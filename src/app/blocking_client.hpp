// BlockingClient: a ready-made application adapter satisfying CLIENT:SPEC
// (paper Figure 12).
//
// It answers every block() request with block_ok() and queues application
// sends issued while blocked, flushing them when the next view arrives — so
// applications built on it can never violate the blocking contract the
// service's Self Delivery liveness depends on.
#pragma once

#include <deque>
#include <functional>
#include <set>
#include <string>

#include "gcs/client.hpp"
#include "gcs/gcs_endpoint.hpp"

namespace vsgc::app {

class BlockingClient : public gcs::Client {
 public:
  using DeliverFn = std::function<void(ProcessId from, const gcs::AppMsg&)>;
  using ViewFn =
      std::function<void(const View&, const std::set<ProcessId>&)>;

  explicit BlockingClient(gcs::GcsEndpoint& endpoint) : endpoint_(endpoint) {
    endpoint_.set_client(*this);
  }

  void on_deliver(DeliverFn fn) { deliver_ = std::move(fn); }
  void on_view(ViewFn fn) { view_ = std::move(fn); }

  /// Pre-delivery hook, independent of on_deliver: runs first and may veto
  /// the application callback (return false to swallow). Fault harnesses use
  /// it to crash the process from inside the delivery callback without
  /// clobbering a handler the application installed.
  using InterceptFn = std::function<bool(ProcessId from, const gcs::AppMsg&)>;
  void set_delivery_interceptor(InterceptFn fn) { intercept_ = std::move(fn); }

  /// Send `payload` in the current view, or queue it if the service has
  /// blocked us (it will be sent in the next view). Returns true if it was
  /// sent immediately.
  bool send(std::string payload) {
    if (blocked_) {
      pending_.push_back(std::move(payload));
      return false;
    }
    endpoint_.send(std::move(payload));
    return true;
  }

  bool blocked() const { return blocked_; }
  std::size_t pending() const { return pending_.size(); }

  // gcs::Client
  void deliver(ProcessId from, const gcs::AppMsg& msg) override {
    if (intercept_ && !intercept_(from, msg)) return;
    if (deliver_) deliver_(from, msg);
  }

  void view(const View& v, const std::set<ProcessId>& transitional) override {
    blocked_ = false;
    if (view_) view_(v, transitional);
    std::deque<std::string> queued;
    queued.swap(pending_);
    for (std::string& payload : queued) send(std::move(payload));
  }

  void block() override {
    blocked_ = true;
    endpoint_.block_ok();
  }

 private:
  gcs::GcsEndpoint& endpoint_;
  DeliverFn deliver_;
  ViewFn view_;
  InterceptFn intercept_;
  bool blocked_ = false;
  std::deque<std::string> pending_;
};

}  // namespace vsgc::app
