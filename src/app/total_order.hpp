// Totally ordered multicast layered on the GCS's within-view reliable FIFO
// service — the layering the paper points at with [13] (Section 4.1.1: "FIFO
// is a basic service upon which one can build stronger services").
//
// Sequencer algorithm: the lowest-id member of the current view sequences
// every data message it delivers by multicasting order messages; all members
// deliver data messages in sequence order. Because order messages travel
// through the same virtually synchronous channel as data messages, the
// agreed cut at a view change covers both, so members transitioning together
// flush identical totally ordered prefixes; any residue of unsequenced
// data is flushed in a deterministic (sender, uid) order that all
// transitional members compute identically — Virtual Synchrony is precisely
// what makes this flush safe.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <set>
#include <string>

#include "app/blocking_client.hpp"

namespace vsgc::app {

class TotalOrder {
 public:
  using DeliverFn =
      std::function<void(ProcessId origin, const std::string& payload)>;
  using ViewFn =
      std::function<void(const View&, const std::set<ProcessId>&)>;

  TotalOrder(BlockingClient& client, ProcessId self);

  /// Multicast `payload` with total-order delivery.
  void send(const std::string& payload);

  void on_deliver(DeliverFn fn) { deliver_ = std::move(fn); }
  void on_view(ViewFn fn) { view_ = std::move(fn); }

  ProcessId sequencer() const { return sequencer_; }
  std::uint64_t delivered_count() const { return delivered_count_; }

 private:
  using MsgId = std::pair<ProcessId, std::uint64_t>;  // (sender, uid)

  void handle_deliver(ProcessId from, const gcs::AppMsg& msg);
  void handle_view(const View& v, const std::set<ProcessId>& transitional);
  void try_deliver();
  void flush_residue();

  BlockingClient& client_;
  ProcessId self_;
  DeliverFn deliver_;
  ViewFn view_;

  ProcessId sequencer_;
  std::map<MsgId, std::string> data_;     ///< received, not yet TO-delivered
  std::deque<MsgId> order_;               ///< agreed sequence, pending data
  std::deque<MsgId> unsequenced_;         ///< arrival order (sequencer duty)
  std::set<MsgId> sequenced_;             ///< ids already covered by order msgs
  std::uint64_t delivered_count_ = 0;
};

}  // namespace vsgc::app
