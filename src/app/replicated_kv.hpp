// Replicated key-value store: the paper's motivating application class —
// data replication via the state machine approach [35] over virtually
// synchronous total-order multicast (Section 4.1.2), with transitional-set
// driven state transfer (in the spirit of [4]).
//
// Protocol:
//   * Commands (set/del) are totally ordered; every replica applies them in
//     the same order, so transitional members always agree on state.
//   * On a view with newcomers (members outside the transitional set), the
//     lowest-id transitional member multicasts a MARKER; when the marker is
//     delivered (in total order), all old members' states are identical, and
//     the same member multicasts a SNAPSHOT of its state-at-marker.
//   * A newcomer ignores commands delivered before the marker (the snapshot
//     already includes their effects), buffers commands delivered after it,
//     adopts the snapshot, replays the buffer, and is then fully synced.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>

#include "app/total_order.hpp"

namespace vsgc::app {

class ReplicatedKvStore {
 public:
  ReplicatedKvStore(TotalOrder& to, ProcessId self);

  void set(const std::string& key, const std::string& value);
  void del(const std::string& key);

  const std::map<std::string, std::string>& state() const { return state_; }
  std::uint64_t version() const { return version_; }  ///< commands applied
  bool synced() const { return synced_; }

  /// Application hook fired after every applied command.
  void on_apply(std::function<void()> fn) { applied_ = std::move(fn); }

 private:
  void handle_deliver(ProcessId origin, const std::string& payload);
  void handle_view(const View& v, const std::set<ProcessId>& transitional);
  void apply(const std::string& command);

  TotalOrder& to_;
  ProcessId self_;
  std::function<void()> applied_;

  std::map<std::string, std::string> state_;
  std::uint64_t version_ = 0;
  bool synced_ = true;           ///< false while waiting for a snapshot
  bool marker_seen_ = true;      ///< newcomer: saw this view's marker
  bool snapshot_duty_ = false;   ///< we owe the view a marker + snapshot
  bool marker_sent_ = false;
  std::deque<std::string> replay_;  ///< newcomer: commands after the marker
  std::optional<std::map<std::string, std::string>> state_at_marker_;
};

}  // namespace vsgc::app
