// World: one-call construction of a complete simulated deployment — network,
// membership servers, client processes with GCS end-points and blocking
// clients, spec checkers on the trace bus (paper Figure 1's architecture).
//
// Tests, benchmarks, and examples all build on this harness.
#pragma once

#include <memory>
#include <vector>

#include "app/blocking_client.hpp"
#include "gcs/process.hpp"
#include "membership/membership_server.hpp"
#include "net/network.hpp"
#include "sim/failure_injector.hpp"
#include "sim/simulator.hpp"
#include "spec/all_checkers.hpp"
#include "spec/co_rfifo_checker.hpp"
#include "spec/eventually.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace vsgc::app {

struct WorldConfig {
  int num_clients = 3;
  int num_servers = 1;
  std::uint64_t seed = 1;
  net::Network::Config net;
  transport::CoRfifoTransport::Config transport;
  membership::MembershipServer::Config server;
  membership::MembershipClient::Config client;
  gcs::ForwardingKind forwarding = gcs::ForwardingKind::kMinCopies;
  gcs::SyncRouting sync_routing;  ///< direct by default
  bool attach_checkers = true;
  /// Attach the eventual-safety bundle (spec::AllEventualCheckers) instead of
  /// the exact one: violations are tolerated inside a bounded window after a
  /// corruption injection (DESIGN.md §12). Corruption-enabled harnesses
  /// (vsgc_stress --corrupt, the mc corruption menu) set this; exact checkers
  /// stay the default everywhere else.
  bool eventual_checkers = false;
  sim::Time eventual_window = 30 * sim::kSecond;
  bool record_trace = true;
  /// Emit the fine-grained causal span events (DESIGN.md §10) so recorded
  /// traces carry per-message lifecycles and view-change phase milestones.
  bool lifecycle_spans = false;
};

class World {
 public:
  explicit World(WorldConfig config) : config_(config) {
    network_ = std::make_unique<net::Network>(sim_, Rng(config.seed),
                                              config.net);
    if (config.record_trace) trace_.set_recording(true);
    if (config.lifecycle_spans) trace_.set_lifecycle(true);
    if (config.attach_checkers) {
      if (config.eventual_checkers) {
        eventual_ = std::make_unique<spec::AllEventualCheckers>(
            config.eventual_window);
        eventual_->attach(trace_);
      } else {
        checkers_.attach(trace_);
      }
    }

    std::set<ServerId> server_ids;
    for (int s = 0; s < config.num_servers; ++s) {
      server_ids.insert(ServerId{static_cast<std::uint32_t>(s)});
    }
    for (ServerId s : server_ids) {
      servers_.push_back(std::make_unique<membership::MembershipServer>(
          sim_, *network_, s, server_ids, config.server));
      servers_.back()->set_trace(&trace_);
    }

    for (int i = 0; i < config.num_clients; ++i) {
      const ProcessId p{static_cast<std::uint32_t>(i + 1)};
      const ServerId s{static_cast<std::uint32_t>(i % config.num_servers)};
      gcs::Process::Config pc;
      pc.transport = config.transport;
      pc.membership = config.client;
      pc.forwarding = config.forwarding;
      auto proc = std::make_unique<gcs::Process>(sim_, *network_, p, s,
                                                 &trace_, pc);
      proc->endpoint().set_sync_routing(config.sync_routing);
      // Clients become alive at their server on first heartbeat, so a
      // process that is never start()ed stays out of every view (late-join
      // tests and examples rely on this).
      servers_[s.value]->add_client(p, /*initially_alive=*/false);
      clients_.push_back(std::make_unique<BlockingClient>(proc->endpoint()));
      processes_.push_back(std::move(proc));
    }

    // Fault-injection support: the interceptor runs before any application
    // on_deliver handler, so a FailureInjector can crash a process from
    // inside its delivery callback without disturbing test wiring.
    crash_on_delivery_.assign(static_cast<std::size_t>(config.num_clients),
                              false);
    for (int i = 0; i < config.num_clients; ++i) {
      clients_[static_cast<std::size_t>(i)]->set_delivery_interceptor(
          [this, i](ProcessId, const gcs::AppMsg&) {
            if (!crash_on_delivery_[static_cast<std::size_t>(i)]) return true;
            crash_on_delivery_[static_cast<std::size_t>(i)] = false;
            processes_[static_cast<std::size_t>(i)]->crash();
            return false;  // the process is gone; swallow the delivery
          });
    }
  }

  /// Start servers and processes; run with run_for().
  void start() {
    for (auto& s : servers_) s->start();
    for (auto& p : processes_) p->start();
  }

  void run_for(sim::Time duration) { sim_.run_until(sim_.now() + duration); }

  /// True once every live process's GCS delivered the same view covering
  /// exactly the given members.
  bool converged(const std::set<ProcessId>& members) const {
    const View* seen = nullptr;
    for (const auto& p : processes_) {
      if (!members.contains(p->id())) continue;
      if (p->crashed()) return false;
      const View& cv = p->endpoint().current_view();
      if (cv.members != members) return false;
      if (seen != nullptr && !(*seen == cv)) return false;
      seen = &cv;
    }
    return seen != nullptr;
  }

  /// Run until converged(members) or the deadline; returns success.
  bool run_until_converged(const std::set<ProcessId>& members,
                           sim::Time deadline_from_now) {
    const sim::Time deadline = sim_.now() + deadline_from_now;
    while (sim_.now() < deadline) {
      run_for(10 * sim::kMillisecond);
      if (converged(members)) return true;
    }
    return converged(members);
  }

  std::set<ProcessId> all_members() const {
    std::set<ProcessId> out;
    for (const auto& p : processes_) out.insert(p->id());
    return out;
  }

  /// Assert the flow-control bounds (DESIGN.md §11) on every transport in
  /// the world: no unacked queue ever exceeded its credit window and no
  /// reorder buffer its receive window. Cheap (reads peak stats); stress and
  /// mc harnesses call it alongside the trace checkers' finalize().
  void check_transport_bounded() const {
    const auto check = [](const transport::CoRfifoTransport& t) {
      spec::CoRfifoChecker::check_bounded(
          t.self(), t.stats().peak_unacked, t.config().send_window,
          t.stats().peak_out_of_order, t.config().recv_window);
    };
    for (const auto& p : processes_) check(p->transport());
    for (const auto& s : servers_) check(s->transport());
  }

  /// Arm (or disarm) "crash inside the next delivery callback" for client i.
  void arm_crash_on_delivery(int i, bool on) {
    crash_on_delivery_.at(static_cast<std::size_t>(i)) = on;
  }

  /// The callback surface sim::FailureInjector drives. Node references use
  /// the injector's encoding (process i => i, server s => -(s+1)).
  sim::FaultTarget fault_target() {
    const auto node = [this](int v) {
      return sim::encodes_server(v)
                 ? net::node_of(ServerId{
                       static_cast<std::uint32_t>(sim::decode_server(v))})
                 : net::node_of(
                       ProcessId{static_cast<std::uint32_t>(v + 1)});
    };
    sim::FaultTarget t;
    t.sim = &sim_;
    t.trace = &trace_;
    t.num_processes = num_clients();
    t.num_servers = num_servers();
    t.process_crashed = [this](int i) { return process(i).crashed(); };
    t.crash_process = [this](int i) { process(i).crash(); };
    t.recover_process = [this](int i) { process(i).recover(); };
    t.leave_process = [this](int i) { process(i).leave(); };
    t.rejoin_process = [this](int i) { process(i).start(); };
    t.set_server_up = [this](int s, bool up) {
      network_->set_node_up(
          net::node_of(ServerId{static_cast<std::uint32_t>(s)}), up);
    };
    t.partition = [this, node](const std::vector<std::vector<int>>& groups) {
      std::vector<std::set<net::NodeId>> comps;
      for (const auto& group : groups) {
        std::set<net::NodeId> comp;
        for (int v : group) comp.insert(node(v));
        comps.push_back(std::move(comp));
      }
      network_->partition(comps);
    };
    t.set_isolated = [this, node](const std::vector<int>& nodes,
                                  bool isolated) {
      std::set<net::NodeId> slice;
      for (int v : nodes) slice.insert(node(v));
      if (isolated) network_->isolate(slice);
      else network_->deisolate(slice);
    };
    t.heal = [this] { network_->heal(); };
    t.set_link = [this, node](int a, int b, bool up, bool oneway) {
      if (oneway) network_->set_oneway_link_up(node(a), node(b), up);
      else network_->set_link_up(node(a), node(b), up);
    };
    t.set_drop = [this](double p) { network_->set_drop_probability(p); };
    t.set_latency = [this](sim::Time base, sim::Time jitter) {
      network_->set_latency(base, jitter);
    };
    t.arm_crash_in_delivery = [this](int i, bool on) {
      arm_crash_on_delivery(i, on);
    };
    t.send_traffic = [this](int i, const std::string& payload) {
      client(i).send(payload);
    };
    t.corrupt = [this, node](const sim::FaultOp& op) {
      using K = sim::FaultOp::Kind;
      gcs::Process& proc = process(op.a);
      if (proc.crashed()) return;
      switch (op.kind) {
        case K::kCorruptSeq:
          proc.transport().corrupt_outgoing_seq(node(op.b), op.v);
          break;
        case K::kCorruptAck:
          proc.transport().corrupt_ack_cursor(node(op.b), op.v);
          break;
        case K::kCorruptReliable:
          proc.transport().corrupt_drop_reliable(node(op.b));
          break;
        case K::kCorruptView:
          proc.membership().corrupt_view_floor(op.v);
          break;
        case K::kCorruptBackoff:
          proc.transport().corrupt_backoff(
              node(op.b), static_cast<std::uint32_t>(op.v));
          break;
        case K::kBugCorruptWedge:
          proc.endpoint().corrupt_view_epoch(op.v);
          break;
        default:
          break;
      }
    };
    return t;
  }

  /// End-of-execution checks, dispatching to whichever checker bundle this
  /// world attached (exact by default, eventual under `eventual_checkers`).
  void finalize_checkers() const {
    if (eventual_ != nullptr) {
      eventual_->finalize();
    } else {
      checkers_.finalize();
    }
  }

  sim::Simulator& sim() { return sim_; }
  net::Network& network() { return *network_; }
  spec::TraceBus& trace() { return trace_; }
  spec::AllCheckers& checkers() { return checkers_; }
  /// Non-null iff eventual_checkers was set (tolerance introspection).
  spec::AllEventualCheckers* eventual_checkers() { return eventual_.get(); }
  membership::MembershipServer& server(int i) { return *servers_.at(i); }
  gcs::Process& process(int i) { return *processes_.at(i); }
  BlockingClient& client(int i) { return *clients_.at(i); }
  int num_clients() const { return static_cast<int>(processes_.size()); }
  int num_servers() const { return static_cast<int>(servers_.size()); }

 private:
  WorldConfig config_;
  sim::Simulator sim_;
  /// Log lines carry simulated timestamps while this world is alive.
  ScopedSimClock log_clock_{[this] { return sim_.now(); }};
  spec::TraceBus trace_;
  spec::AllCheckers checkers_;
  std::unique_ptr<spec::AllEventualCheckers> eventual_;
  std::unique_ptr<net::Network> network_;
  std::vector<std::unique_ptr<membership::MembershipServer>> servers_;
  std::vector<std::unique_ptr<gcs::Process>> processes_;
  std::vector<std::unique_ptr<BlockingClient>> clients_;
  std::vector<bool> crash_on_delivery_;
};

}  // namespace vsgc::app
