#include "app/replicated_kv.hpp"

#include "util/assert.hpp"
#include "util/serialization.hpp"

namespace vsgc::app {

namespace {

constexpr char kCmdTag = 'C';
constexpr char kMarkerTag = 'M';
constexpr char kSnapshotTag = 'S';

std::string encode_snapshot(const std::map<std::string, std::string>& state,
                            std::uint64_t version) {
  Encoder enc;
  enc.put_u64(version);
  enc.put_u32(static_cast<std::uint32_t>(state.size()));
  for (const auto& [k, v] : state) {
    enc.put_string(k);
    enc.put_string(v);
  }
  return std::string(1, kSnapshotTag) +
         std::string(enc.bytes().begin(), enc.bytes().end());
}

std::pair<std::map<std::string, std::string>, std::uint64_t> decode_snapshot(
    const std::string& payload) {
  std::vector<std::uint8_t> bytes(payload.begin() + 1, payload.end());
  Decoder dec(bytes);
  const std::uint64_t version = dec.get_u64();
  const std::uint32_t n = dec.get_u32();
  std::map<std::string, std::string> state;
  for (std::uint32_t i = 0; i < n; ++i) {
    std::string k = dec.get_string();
    state[k] = dec.get_string();
  }
  return {std::move(state), version};
}

}  // namespace

ReplicatedKvStore::ReplicatedKvStore(TotalOrder& to, ProcessId self)
    : to_(to), self_(self) {
  to_.on_deliver([this](ProcessId origin, const std::string& payload) {
    handle_deliver(origin, payload);
  });
  to_.on_view([this](const View& v, const std::set<ProcessId>& t) {
    handle_view(v, t);
  });
}

void ReplicatedKvStore::set(const std::string& key, const std::string& value) {
  Encoder enc;
  enc.put_u8(1);
  enc.put_string(key);
  enc.put_string(value);
  to_.send(std::string(1, kCmdTag) +
           std::string(enc.bytes().begin(), enc.bytes().end()));
}

void ReplicatedKvStore::del(const std::string& key) {
  Encoder enc;
  enc.put_u8(2);
  enc.put_string(key);
  to_.send(std::string(1, kCmdTag) +
           std::string(enc.bytes().begin(), enc.bytes().end()));
}

void ReplicatedKvStore::apply(const std::string& command) {
  std::vector<std::uint8_t> bytes(command.begin() + 1, command.end());
  Decoder dec(bytes);
  const std::uint8_t op = dec.get_u8();
  if (op == 1) {
    std::string k = dec.get_string();
    state_[k] = dec.get_string();
  } else if (op == 2) {
    state_.erase(dec.get_string());
  } else {
    VSGC_REQUIRE(false, "replicated kv: unknown command op " << int(op));
  }
  ++version_;
  if (applied_) applied_();
}

void ReplicatedKvStore::handle_deliver(ProcessId origin,
                                       const std::string& payload) {
  (void)origin;
  VSGC_REQUIRE(!payload.empty(), "replicated kv: empty payload");
  switch (payload[0]) {
    case kCmdTag:
      if (synced_) {
        apply(payload);
      } else if (marker_seen_) {
        replay_.push_back(payload);  // after-marker commands: replay later
      }
      // Pre-marker commands at a newcomer are ignored: the snapshot that is
      // coming already includes their effects.
      break;
    case kMarkerTag:
      marker_seen_ = true;
      if (snapshot_duty_ && synced_) {
        // All old members' states are identical at this point in the total
        // order; capture and ship ours.
        to_.send(encode_snapshot(state_, version_));
        snapshot_duty_ = false;
      }
      break;
    case kSnapshotTag: {
      if (synced_) break;  // old members ignore the snapshot
      auto [state, version] = decode_snapshot(payload);
      state_ = std::move(state);
      version_ = version;
      synced_ = true;
      std::deque<std::string> replay;
      replay.swap(replay_);
      for (const std::string& cmd : replay) apply(cmd);
      break;
    }
    default:
      VSGC_REQUIRE(false, "replicated kv: unknown payload tag");
  }
}

void ReplicatedKvStore::handle_view(const View& v,
                                    const std::set<ProcessId>& transitional) {
  snapshot_duty_ = false;
  const bool everyone_moved_together =
      transitional.size() == v.members.size();
  if (everyone_moved_together) {
    // Virtual Synchrony at work: no state exchange needed at all — the very
    // point of the property (Section 4.1.2).
    marker_seen_ = true;
    return;
  }

  // The authoritative ("primary") component is the one the lowest-id member
  // of the new view moved from; every process can decide membership of it
  // locally: it is primary iff that lowest-id member is in its transitional
  // set. Everyone else resynchronizes from the primary component.
  const ProcessId lowest_member = *v.members.begin();
  const bool in_primary = transitional.contains(lowest_member) && synced_;

  if (in_primary) {
    marker_seen_ = true;
    if (self_ == *transitional.begin()) {
      // Lowest-id primary member runs the transfer.
      snapshot_duty_ = true;
      to_.send(std::string(1, kMarkerTag));
    }
  } else {
    synced_ = false;
    marker_seen_ = false;
    replay_.clear();
  }
}

}  // namespace vsgc::app
