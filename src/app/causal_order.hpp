// Causally ordered multicast layered on the GCS's within-view FIFO service —
// another instance of the paper's Section 4.1.1 point that FIFO is the base
// on which stronger orderings are built (the classic vector-clock scheme of
// Birman-Schiper-Stephenson).
//
// Why it can violate without this layer: CO_RFIFO gives per-SENDER FIFO, but
// retransmission delays under loss can deliver q's reply to p's message
// before p's message itself arrives (cross-sender inversion). This layer
// stamps each message with a vector clock over the current view and buffers
// deliveries until their causal predecessors arrive. Virtual Synchrony makes
// the view boundary safe: transitional members agree on the delivered set,
// so clocks can simply reset per view.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <set>
#include <string>

#include "app/blocking_client.hpp"

namespace vsgc::app {

class CausalOrder {
 public:
  using DeliverFn =
      std::function<void(ProcessId origin, const std::string& payload)>;
  using ViewFn =
      std::function<void(const View&, const std::set<ProcessId>&)>;

  CausalOrder(BlockingClient& client, ProcessId self);

  /// Multicast `payload` with causal-order delivery.
  void send(const std::string& payload);

  void on_deliver(DeliverFn fn) { deliver_ = std::move(fn); }
  void on_view(ViewFn fn) { view_ = std::move(fn); }

  std::uint64_t delivered_count() const { return delivered_count_; }
  std::size_t buffered() const;

 private:
  struct Stamped {
    std::map<ProcessId, std::uint64_t> clock;
    std::string payload;
  };

  void handle_deliver(ProcessId from, const gcs::AppMsg& msg);
  void handle_view(const View& v, const std::set<ProcessId>& transitional);
  bool deliverable(ProcessId from, const Stamped& m) const;
  void drain();

  BlockingClient& client_;
  ProcessId self_;
  DeliverFn deliver_;
  ViewFn view_;

  std::map<ProcessId, std::uint64_t> delivered_;  ///< VC of delivered msgs
  std::map<ProcessId, std::deque<Stamped>> pending_;  ///< FIFO per sender
  std::uint64_t own_sent_ = 0;  ///< our sends in this view (may lead clock)
  std::deque<std::string> outbox_;  ///< raw payloads deferred while blocked
  std::uint64_t delivered_count_ = 0;
};

}  // namespace vsgc::app
