// Metric primitives and the Registry: named counters, gauges, and
// log2-bucketed histograms with per-process labels.
//
// Design constraints (see DESIGN.md "Observability"):
//  * Zero cost when unused — nothing here touches protocol hot paths;
//    components increment metrics only when a collector subscribed.
//  * Deterministic export — metrics iterate in (name, labels) order and all
//    stored quantities are integers (simulated-time microseconds, counts,
//    bytes), so a registry dump is a pure function of the execution.
//  * Stable references — registering returns a reference that stays valid
//    for the registry's lifetime; callers cache it and pay one map lookup
//    ever, not one per increment.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <map>
#include <string>

#include "obs/json.hpp"

namespace vsgc::obs {

/// Label set attached to a metric instance, e.g. {{"process", "p1"}}.
/// std::map so iteration (and therefore export) order is deterministic.
using Labels = std::map<std::string, std::string>;

class Counter {
 public:
  void inc(std::uint64_t delta = 1) { value_ += delta; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void set(std::int64_t v) { value_ = v; }
  void max_of(std::int64_t v) { value_ = std::max(value_, v); }
  std::int64_t value() const { return value_; }

 private:
  std::int64_t value_ = 0;
};

/// Histogram over non-negative integer samples with logarithmic (power of
/// two) buckets: bucket 0 holds 0, bucket i >= 1 holds [2^(i-1), 2^i).
/// Exact count/sum/min/max are tracked alongside, so means are exact and
/// only percentiles carry bucket resolution (< 2x error).
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void observe(std::int64_t sample) {
    const std::uint64_t v = sample < 0 ? 0 : static_cast<std::uint64_t>(sample);
    ++buckets_[bucket_of(v)];
    ++count_;
    sum_ += v;
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }

  static int bucket_of(std::uint64_t v) {
    return v == 0 ? 0 : std::bit_width(v);
  }
  /// Inclusive upper bound of bucket `i` (its reported representative).
  static std::uint64_t bucket_upper(int i) {
    return i == 0 ? 0 : (std::uint64_t{1} << i) - 1;
  }

  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
  std::uint64_t max() const { return max_; }
  double mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }

  /// Upper bound of the bucket containing the q-quantile sample (q in [0,1]).
  std::uint64_t quantile(double q) const {
    if (count_ == 0) return 0;
    const std::uint64_t rank = static_cast<std::uint64_t>(
        q * static_cast<double>(count_ - 1));
    std::uint64_t seen = 0;
    for (int i = 0; i <= kBuckets; ++i) {
      seen += buckets_[i];
      if (seen > rank) return std::min(bucket_upper(i), max_);
    }
    return max_;
  }

  const std::uint64_t* buckets() const { return buckets_; }

 private:
  std::uint64_t buckets_[kBuckets + 1] = {};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = UINT64_MAX;
  std::uint64_t max_ = 0;
};

/// Owns every metric of one run. Node-based maps keep references stable.
class Registry {
 public:
  Counter& counter(const std::string& name, Labels labels = {}) {
    return counters_[Key{name, std::move(labels)}];
  }
  Gauge& gauge(const std::string& name, Labels labels = {}) {
    return gauges_[Key{name, std::move(labels)}];
  }
  Histogram& histogram(const std::string& name, Labels labels = {}) {
    return histograms_[Key{name, std::move(labels)}];
  }

  /// Deterministic JSON export:
  /// { "counters": [{"name","labels","value"}...],
  ///   "gauges":   [{"name","labels","value"}...],
  ///   "histograms": [{"name","labels","count","sum","min","max","mean",
  ///                   "p50","p90","p99"}...] }
  JsonValue to_json() const;

  /// Sum of all counters with this name across label sets (e.g. all
  /// processes), for quick assertions and table rows.
  std::uint64_t counter_total(const std::string& name) const;

 private:
  struct Key {
    std::string name;
    Labels labels;
    bool operator<(const Key& o) const {
      return name != o.name ? name < o.name : labels < o.labels;
    }
  };

  std::map<Key, Counter> counters_;
  std::map<Key, Gauge> gauges_;
  std::map<Key, Histogram> histograms_;
};

/// Conventional label set for per-process metrics.
Labels process_labels(std::uint32_t process_value);

}  // namespace vsgc::obs
