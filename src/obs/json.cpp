#include "obs/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace vsgc::obs {

JsonValue& JsonValue::operator[](const std::string& key) {
  kind_ = Kind::kObject;
  for (auto& [k, v] : members_) {
    if (k == key) return v;
  }
  members_.emplace_back(key, JsonValue());
  return members_.back().second;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

void write_json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (unsigned char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (c < 0x20 || c >= 0x7F) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << static_cast<char>(c);
        }
    }
  }
  os << '"';
}

std::string format_double(double v) {
  if (!std::isfinite(v)) return v > 0 ? "1e999" : (v < 0 ? "-1e999" : "0");
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  std::string out(buf, res.ptr);
  // Keep the token recognizable as a double on re-parse.
  if (out.find('.') == std::string::npos &&
      out.find('e') == std::string::npos &&
      out.find("inf") == std::string::npos &&
      out.find("nan") == std::string::npos) {
    out += ".0";
  }
  return out;
}

void JsonValue::write(std::ostream& os) const {
  switch (kind_) {
    case Kind::kNull: os << "null"; break;
    case Kind::kBool: os << (bool_ ? "true" : "false"); break;
    case Kind::kInt: os << int_; break;
    case Kind::kDouble: os << format_double(double_); break;
    case Kind::kString: write_json_string(os, string_); break;
    case Kind::kArray: {
      os << '[';
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) os << ',';
        items_[i].write(os);
      }
      os << ']';
      break;
    }
    case Kind::kObject: {
      os << '{';
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) os << ',';
        write_json_string(os, members_[i].first);
        os << ':';
        members_[i].second.write(os);
      }
      os << '}';
      break;
    }
  }
}

void JsonValue::write_pretty(std::ostream& os, int indent) const {
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  const std::string pad_in(static_cast<std::size_t>(indent + 1) * 2, ' ');
  switch (kind_) {
    case Kind::kArray: {
      if (items_.empty()) {
        os << "[]";
        return;
      }
      os << "[\n";
      for (std::size_t i = 0; i < items_.size(); ++i) {
        os << pad_in;
        items_[i].write_pretty(os, indent + 1);
        if (i + 1 < items_.size()) os << ',';
        os << '\n';
      }
      os << pad << ']';
      break;
    }
    case Kind::kObject: {
      if (members_.empty()) {
        os << "{}";
        return;
      }
      os << "{\n";
      for (std::size_t i = 0; i < members_.size(); ++i) {
        os << pad_in;
        write_json_string(os, members_[i].first);
        os << ": ";
        members_[i].second.write_pretty(os, indent + 1);
        if (i + 1 < members_.size()) os << ',';
        os << '\n';
      }
      os << pad << '}';
      break;
    }
    default: write(os);
  }
}

std::string JsonValue::dump() const {
  std::ostringstream os;
  write(os);
  return os.str();
}

std::string JsonValue::dump_pretty() const {
  std::ostringstream os;
  write_pretty(os);
  return os.str();
}

namespace {

class Parser {
 public:
  Parser(const std::string& text, std::string* error)
      : text_(text), error_(error) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (ok_ && pos_ != text_.size()) fail("trailing characters");
    return ok_ ? v : JsonValue();
  }

 private:
  void fail(const std::string& what) {
    if (ok_ && error_ != nullptr) {
      *error_ = what + " at offset " + std::to_string(pos_);
    }
    ok_ = false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(const char* word) {
    const std::size_t len = std::string(word).size();
    if (text_.compare(pos_, len, word) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  JsonValue parse_value() {
    skip_ws();
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return {};
    }
    const char c = text_[pos_];
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return JsonValue(parse_string());
    if (c == 't') {
      if (literal("true")) return JsonValue(true);
      fail("bad literal");
      return {};
    }
    if (c == 'f') {
      if (literal("false")) return JsonValue(false);
      fail("bad literal");
      return {};
    }
    if (c == 'n') {
      if (literal("null")) return JsonValue();
      fail("bad literal");
      return {};
    }
    return parse_number();
  }

  JsonValue parse_object() {
    JsonValue v = JsonValue::object();
    consume('{');
    skip_ws();
    if (consume('}')) return v;
    while (ok_) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        fail("expected object key");
        break;
      }
      std::string key = parse_string();
      if (!consume(':')) {
        fail("expected ':'");
        break;
      }
      v[key] = parse_value();
      if (consume(',')) continue;
      if (consume('}')) break;
      fail("expected ',' or '}'");
    }
    return v;
  }

  JsonValue parse_array() {
    JsonValue v = JsonValue::array();
    consume('[');
    skip_ws();
    if (consume(']')) return v;
    while (ok_) {
      v.push_back(parse_value());
      if (consume(',')) continue;
      if (consume(']')) break;
      fail("expected ',' or ']'");
    }
    return v;
  }

  std::string parse_string() {
    std::string out;
    ++pos_;  // opening quote
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            fail("truncated \\u escape");
            return out;
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
            else {
              fail("bad \\u escape");
              return out;
            }
          }
          // Byte-string convention: codepoints < 0x100 decode to one byte
          // (matches the writer); anything larger is UTF-8 encoded.
          if (code < 0x100) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("bad escape"); return out;
      }
    }
    fail("unterminated string");
    return out;
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    bool is_double = false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '-' || c == '+') {
        is_double = is_double || c == '.' || c == 'e' || c == 'E';
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) {
      fail("expected value");
      return {};
    }
    const std::string tok = text_.substr(start, pos_ - start);
    if (!is_double) {
      std::int64_t out = 0;
      const auto res = std::from_chars(tok.data(), tok.data() + tok.size(), out);
      if (res.ec == std::errc() && res.ptr == tok.data() + tok.size()) {
        return JsonValue(out);
      }
    }
    double out = 0;
    const auto res = std::from_chars(tok.data(), tok.data() + tok.size(), out);
    if (res.ec != std::errc() || res.ptr != tok.data() + tok.size()) {
      fail("bad number '" + tok + "'");
      return {};
    }
    return JsonValue(out);
  }

  const std::string& text_;
  std::string* error_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace

JsonValue JsonValue::parse(const std::string& text, std::string* error) {
  return Parser(text, error).parse_document();
}

}  // namespace vsgc::obs
