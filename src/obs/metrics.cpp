#include "obs/metrics.hpp"

namespace vsgc::obs {

namespace {

JsonValue labels_json(const Labels& labels) {
  JsonValue out = JsonValue::object();
  for (const auto& [k, v] : labels) out[k] = v;
  return out;
}

}  // namespace

JsonValue Registry::to_json() const {
  JsonValue root = JsonValue::object();

  JsonValue& counters = root["counters"];
  counters = JsonValue::array();
  for (const auto& [key, c] : counters_) {
    JsonValue row = JsonValue::object();
    row["name"] = key.name;
    row["labels"] = labels_json(key.labels);
    row["value"] = c.value();
    counters.push_back(std::move(row));
  }

  JsonValue& gauges = root["gauges"];
  gauges = JsonValue::array();
  for (const auto& [key, g] : gauges_) {
    JsonValue row = JsonValue::object();
    row["name"] = key.name;
    row["labels"] = labels_json(key.labels);
    row["value"] = g.value();
    gauges.push_back(std::move(row));
  }

  JsonValue& histograms = root["histograms"];
  histograms = JsonValue::array();
  for (const auto& [key, h] : histograms_) {
    JsonValue row = JsonValue::object();
    row["name"] = key.name;
    row["labels"] = labels_json(key.labels);
    row["count"] = h.count();
    row["sum"] = h.sum();
    row["min"] = h.min();
    row["max"] = h.max();
    row["mean"] = h.mean();
    row["p50"] = h.quantile(0.50);
    row["p90"] = h.quantile(0.90);
    row["p99"] = h.quantile(0.99);
    histograms.push_back(std::move(row));
  }

  return root;
}

std::uint64_t Registry::counter_total(const std::string& name) const {
  std::uint64_t total = 0;
  for (const auto& [key, c] : counters_) {
    if (key.name == name) total += c.value();
  }
  return total;
}

Labels process_labels(std::uint32_t process_value) {
  return {{"process", "p" + std::to_string(process_value)}};
}

}  // namespace vsgc::obs
