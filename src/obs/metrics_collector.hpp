// MetricsCollector: subscribes to the spec::TraceBus and derives the paper's
// headline metrics automatically — no protocol code knows it exists.
//
// Derived from the external-action trace alone (event vocabulary of
// src/spec/events.hpp):
//   * gcs.msgs_sent / gcs.msgs_delivered / gcs.payload_bytes_{sent,delivered}
//     — per-process counters of application traffic.
//   * mbr.start_changes / mbr.views / gcs.views_installed / gcs.blocks /
//     crashes / recoveries — per-process counters of control actions.
//   * gcs.view_change_latency_us — histogram, first MBRSHP.start_change of a
//     reconfiguration at p until GCS.view at p (the paper's E1 metric: should
//     track max(membership round, one client round), not their sum).
//   * mbr.round_us — histogram, MBRSHP.start_change until MBRSHP.view at p
//     (the modeled/real membership servers' round).
//   * gcs.blocking_window_us — histogram, GCS.block at p until the next
//     GCS.view at p (the E6 bounded-blocking claim).
//   * gcs.sync_rounds_per_view — histogram, number of start_change
//     notifications p consumed per installed view (1 in steady state; >1
//     under cascades the algorithm collapses).
//   * gcs.obsolete_views — counter, MBRSHP views superseded before p
//     installed them (the E5 "never delivers obsolete views" claim: ours
//     should absorb these silently; the baseline pays a view handler each).
//   * gcs.msgs_per_view — histogram, deliveries at p within one view.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "obs/metrics.hpp"
#include "spec/events.hpp"

namespace vsgc::obs {

class MetricsCollector : public spec::TraceSink {
 public:
  explicit MetricsCollector(Registry& registry) : registry_(registry) {}

  void on_event(const spec::Event& event) override;

  Registry& registry() { return registry_; }

 private:
  struct PerProcess {
    std::optional<sim::Time> change_started_at;  ///< first start_change since last install
    std::optional<sim::Time> mbr_round_started_at;
    std::optional<sim::Time> blocked_at;
    std::uint64_t start_changes_since_install = 0;
    std::uint64_t deliveries_in_view = 0;
    bool in_view = false;
    std::vector<ViewId> pending_mbr_views;  ///< announced but not yet installed
  };

  PerProcess& state(ProcessId p) { return per_process_[p]; }

  Registry& registry_;
  std::map<ProcessId, PerProcess> per_process_;
};

}  // namespace vsgc::obs
