// BenchArtifact: the shared machine-readable run artifact every bench binary
// writes next to its human-readable table (the BENCH_<name>.json perf
// trajectory required by ROADMAP.md).
//
// Schema (validated by tools/validate_bench_json.cpp, documented in README):
//   {
//     "bench": "<name>",            // artifact identity
//     "schema_version": 1,
//     "config": { ... },            // echo of the bench's parameters
//     "results": [ {...}, ... ],    // one object per measured case
//     "metrics": {                  // obs::Registry dump (counters/gauges/
//       "counters": [...], ... },   //   histograms), empty sections if unused
//     "sim": {                      // simulator instrumentation, aggregated
//       "events_executed": N,       //   over every world the bench ran
//       "peak_queue_depth": N,
//       "sim_time_us": N,
//       "wall_time_seconds": X,         // host-dependent; excluded from
//       "events_per_wall_second": X,    //   determinism comparisons
//       "wall_seconds_per_sim_second": X
//     }
//   }
// Output path: $VSGC_BENCH_OUT/BENCH_<name>.json (or ./BENCH_<name>.json).
#pragma once

#include <chrono>
#include <string>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "sim/simulator.hpp"

namespace vsgc::obs {

class BenchArtifact {
 public:
  explicit BenchArtifact(std::string name);

  /// Echo a bench parameter into the "config" section.
  JsonValue& config(const std::string& key) { return root_["config"][key]; }

  /// Append one measured case; fill the returned object with its fields.
  JsonValue& add_result() { return root_["results"].push_back(JsonValue::object()); }

  /// Fold one finished world's simulator stats into the "sim" section.
  void tally(const sim::Simulator& sim);

  /// Same, from pre-aggregated kernel stats — for drivers (e.g. the model
  /// checker) whose worlds are already destroyed when the artifact is built.
  void tally(const sim::Simulator::Stats& stats, sim::Time sim_time);

  /// Install a registry dump as the "metrics" section (replaces any prior).
  void set_metrics(const Registry& registry) {
    root_["metrics"] = registry.to_json();
  }

  const JsonValue& root() const { return root_; }

  /// Finalize wall-clock stats and write BENCH_<name>.json. Returns the path
  /// written, or an empty string on I/O failure. A non-empty `dir` overrides
  /// the $VSGC_BENCH_OUT destination (CLI tools with a --json flag).
  std::string write_file(const std::string& dir = {});

  /// Directory artifacts go to: $VSGC_BENCH_OUT or ".".
  static std::string output_dir();

 private:
  std::string name_;
  JsonValue root_;
  std::chrono::steady_clock::time_point started_;
  std::uint64_t events_executed_ = 0;
  std::uint64_t events_cancelled_ = 0;
  std::uint64_t peak_queue_depth_ = 0;
  std::int64_t sim_time_us_ = 0;
};

}  // namespace vsgc::obs
