// TraceRecorder: serializes every trace event of a simulated execution.
//
// Two export formats:
//  * JSONL — one JSON object per event, one per line, in emission order with
//    simulated timestamps. Byte-deterministic (same seed => same file), so
//    divergent seeds can be diffed post-mortem with plain `diff`, and
//    read_jsonl() parses a file back into spec::Events for replay analysis.
//  * Chrome trace (chrome://tracing / https://ui.perfetto.dev) — each process
//    is rendered as its own track with three lanes: the membership round
//    (MBRSHP.start_change -> MBRSHP.view), the view change a.k.a. VS round
//    (first start_change -> GCS.view), and the application blocking window
//    (GCS.block -> GCS.view), plus instant markers for sends/deliveries.
//    Opening a view-change timeline shows the paper's E1 claim directly: the
//    VS round OVERLAPS the membership round instead of following it.
//
// JSONL schema (field order fixed; `at` in simulated microseconds):
//   {"at":N,"type":"gcs_send","p":P,"msg":{"sender":Q,"uid":U,"payload":S}}
//   {"at":N,"type":"gcs_deliver","p":P,"q":Q,"msg":{...}}
//   {"at":N,"type":"gcs_view","p":P,"view":V,"transitional":[P...]}
//   {"at":N,"type":"gcs_block","p":P} / {"at":N,"type":"gcs_block_ok","p":P}
//   {"at":N,"type":"mbr_start_change","p":P,"cid":C,"set":[P...]}
//   {"at":N,"type":"mbr_view","p":P,"view":V}
//   {"at":N,"type":"crash","p":P} / {"at":N,"type":"recover","p":P}
//   {"at":N,"type":"fault","kind":K,"detail":D}   (sim::FailureInjector)
// Causal span events (emitted only when TraceBus::lifecycle() is on):
//   {"at":N,"type":"msg_wire_send","p":P,"sender":Q,"uid":U}
//   {"at":N,"type":"msg_recv","p":P,"from":F,"sender":Q,"uid":U,"fwd":B}
//   {"at":N,"type":"msg_forward","p":P,"sender":Q,"uid":U,"copies":K}
//   {"at":N,"type":"sync_sent","p":P,"cid":C}
//   {"at":N,"type":"sync_recv","p":P,"from":F,"cid":C}
//   {"at":N,"type":"xport_retransmit","from_node":A,"to_node":B,"packets":K}
//   {"at":N,"type":"mbr_phase","node":X,"phase":S,"round":R}
// where V = {"epoch":E,"origin":O,"members":[P...],"start_id":{"P":C,...}}.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "spec/events.hpp"

namespace vsgc::obs {

/// One trace event as a JSON object (the JSONL record, unserialized).
JsonValue event_to_json(const spec::Event& event);

/// Inverse of event_to_json. Returns false on schema mismatch.
bool event_from_json(const JsonValue& record, spec::Event* out);

class TraceRecorder : public spec::TraceSink {
 public:
  void on_event(const spec::Event& event) override {
    events_.push_back(event);
  }

  const std::vector<spec::Event>& events() const { return events_; }
  void clear() { events_.clear(); }

  void write_jsonl(std::ostream& os) const;
  /// Write a Chrome-trace/Perfetto JSON document of the recorded execution.
  void write_chrome_trace(std::ostream& os) const;

  /// Convenience: write both artifacts to files. Returns false on I/O error.
  bool write_jsonl_file(const std::string& path) const;
  bool write_chrome_trace_file(const std::string& path) const;

 private:
  std::vector<spec::Event> events_;
};

/// Parse a JSONL stream produced by write_jsonl back into events.
/// Returns false (and stops) on the first malformed line.
bool read_jsonl(std::istream& is, std::vector<spec::Event>* out);

void write_jsonl(const std::vector<spec::Event>& events, std::ostream& os);
void write_chrome_trace(const std::vector<spec::Event>& events,
                        std::ostream& os);

}  // namespace vsgc::obs
