// Minimal JSON document model used by the observability layer.
//
// One value type serves three purposes: (1) building BENCH_*.json run
// artifacts with deterministic key order (objects preserve insertion order),
// (2) parsing recorded JSONL traces back for post-mortem diffing and
// round-trip tests, and (3) validating artifacts in tools/. Serialization is
// byte-deterministic: same document => same text, across runs and machines —
// the property the determinism tests and perf-trajectory diffs rely on.
//
// Strings are treated as byte strings: bytes outside printable ASCII are
// escaped as \u00XX on output and decoded back to single bytes on input, so
// arbitrary application payloads round-trip exactly.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace vsgc::obs {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  JsonValue() : kind_(Kind::kNull) {}
  JsonValue(bool b) : kind_(Kind::kBool), bool_(b) {}
  JsonValue(int v) : kind_(Kind::kInt), int_(v) {}
  JsonValue(long v) : kind_(Kind::kInt), int_(v) {}
  JsonValue(long long v) : kind_(Kind::kInt), int_(v) {}
  JsonValue(unsigned v) : kind_(Kind::kInt), int_(static_cast<std::int64_t>(v)) {}
  JsonValue(unsigned long v)
      : kind_(Kind::kInt), int_(static_cast<std::int64_t>(v)) {}
  JsonValue(unsigned long long v)
      : kind_(Kind::kInt), int_(static_cast<std::int64_t>(v)) {}
  JsonValue(double v) : kind_(Kind::kDouble), double_(v) {}
  JsonValue(const char* s) : kind_(Kind::kString), string_(s) {}
  JsonValue(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}

  static JsonValue array() {
    JsonValue v;
    v.kind_ = Kind::kArray;
    return v;
  }
  static JsonValue object() {
    JsonValue v;
    v.kind_ = Kind::kObject;
    return v;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_int() const { return kind_ == Kind::kInt; }
  bool is_double() const { return kind_ == Kind::kDouble; }
  bool is_number() const { return is_int() || is_double(); }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool as_bool() const { return bool_; }
  std::int64_t as_int() const {
    return kind_ == Kind::kDouble ? static_cast<std::int64_t>(double_) : int_;
  }
  double as_double() const {
    return kind_ == Kind::kInt ? static_cast<double>(int_) : double_;
  }
  const std::string& as_string() const { return string_; }

  // --- Array access ---------------------------------------------------------
  std::size_t size() const {
    return is_object() ? members_.size() : items_.size();
  }
  JsonValue& push_back(JsonValue v) {
    items_.push_back(std::move(v));
    return items_.back();
  }
  const JsonValue& at(std::size_t i) const { return items_.at(i); }
  const std::vector<JsonValue>& items() const { return items_; }

  // --- Object access (insertion-ordered) ------------------------------------
  /// Get-or-insert a member; inserting keeps document order deterministic.
  JsonValue& operator[](const std::string& key);
  /// Member lookup; nullptr when absent or not an object.
  const JsonValue* find(const std::string& key) const;
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }

  /// Compact single-line serialization (used for JSONL records).
  void write(std::ostream& os) const;
  /// Pretty-printed serialization (used for BENCH_*.json artifacts).
  void write_pretty(std::ostream& os, int indent = 0) const;
  std::string dump() const;
  std::string dump_pretty() const;

  /// Parse one JSON document from `text`. On failure returns a null value and
  /// sets *error (when non-null) to a description with character offset.
  static JsonValue parse(const std::string& text, std::string* error = nullptr);

 private:
  Kind kind_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Escape `s` as a JSON string literal (including the surrounding quotes).
void write_json_string(std::ostream& os, const std::string& s);

/// Shortest round-trip formatting for doubles ("0.3", not "0.29999999...").
std::string format_double(double v);

}  // namespace vsgc::obs
