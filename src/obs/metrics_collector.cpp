#include "obs/metrics_collector.hpp"

namespace vsgc::obs {

void MetricsCollector::on_event(const spec::Event& event) {
  const sim::Time at = event.at;

  if (const auto* s = std::get_if<spec::GcsSend>(&event.body)) {
    const Labels labels = process_labels(s->p.value);
    registry_.counter("gcs.msgs_sent", labels).inc();
    registry_.counter("gcs.payload_bytes_sent", labels)
        .inc(s->msg.payload.size());
    return;
  }

  if (const auto* d = std::get_if<spec::GcsDeliver>(&event.body)) {
    const Labels labels = process_labels(d->p.value);
    registry_.counter("gcs.msgs_delivered", labels).inc();
    registry_.counter("gcs.payload_bytes_delivered", labels)
        .inc(d->msg.payload.size());
    ++state(d->p).deliveries_in_view;
    return;
  }

  if (const auto* sc = std::get_if<spec::MbrStartChange>(&event.body)) {
    registry_.counter("mbr.start_changes", process_labels(sc->p.value)).inc();
    PerProcess& st = state(sc->p);
    if (!st.change_started_at) st.change_started_at = at;
    st.mbr_round_started_at = at;
    ++st.start_changes_since_install;
    return;
  }

  if (const auto* mv = std::get_if<spec::MbrView>(&event.body)) {
    registry_.counter("mbr.views", process_labels(mv->p.value)).inc();
    PerProcess& st = state(mv->p);
    if (st.mbr_round_started_at) {
      registry_.histogram("mbr.round_us")
          .observe(at - *st.mbr_round_started_at);
      st.mbr_round_started_at.reset();
    }
    st.pending_mbr_views.push_back(mv->view.id);
    return;
  }

  if (const auto* v = std::get_if<spec::GcsView>(&event.body)) {
    const Labels labels = process_labels(v->p.value);
    registry_.counter("gcs.views_installed", labels).inc();
    PerProcess& st = state(v->p);
    if (st.change_started_at) {
      registry_.histogram("gcs.view_change_latency_us")
          .observe(at - *st.change_started_at);
      st.change_started_at.reset();
    }
    if (st.blocked_at) {
      registry_.histogram("gcs.blocking_window_us")
          .observe(at - *st.blocked_at);
      st.blocked_at.reset();
    }
    if (st.start_changes_since_install > 0) {
      registry_.histogram("gcs.sync_rounds_per_view")
          .observe(static_cast<std::int64_t>(st.start_changes_since_install));
      st.start_changes_since_install = 0;
    }
    // Every membership view announced since the last install that is not the
    // one being installed was superseded before the application saw it.
    for (ViewId pending : st.pending_mbr_views) {
      if (!(pending == v->view.id)) {
        registry_.counter("gcs.obsolete_views", labels).inc();
      }
    }
    st.pending_mbr_views.clear();
    if (st.in_view) {
      registry_.histogram("gcs.msgs_per_view").observe(
          static_cast<std::int64_t>(st.deliveries_in_view));
    }
    st.deliveries_in_view = 0;
    st.in_view = true;
    return;
  }

  if (const auto* b = std::get_if<spec::GcsBlock>(&event.body)) {
    registry_.counter("gcs.blocks", process_labels(b->p.value)).inc();
    state(b->p).blocked_at = at;
    return;
  }

  if (const auto* bo = std::get_if<spec::GcsBlockOk>(&event.body)) {
    registry_.counter("gcs.block_oks", process_labels(bo->p.value)).inc();
    return;
  }

  if (const auto* c = std::get_if<spec::Crash>(&event.body)) {
    registry_.counter("crashes", process_labels(c->p.value)).inc();
    // A crash wipes the process; half-open intervals must not pair with
    // post-recovery events.
    per_process_.erase(c->p);
    return;
  }

  if (const auto* r = std::get_if<spec::Recover>(&event.body)) {
    registry_.counter("recoveries", process_labels(r->p.value)).inc();
    return;
  }
}

}  // namespace vsgc::obs
