#include "obs/artifact.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>

namespace vsgc::obs {

BenchArtifact::BenchArtifact(std::string name)
    : name_(std::move(name)), started_(std::chrono::steady_clock::now()) {
  root_ = JsonValue::object();
  root_["bench"] = name_;
  root_["schema_version"] = 1;
  root_["config"] = JsonValue::object();
  root_["results"] = JsonValue::array();
  root_["metrics"] = Registry().to_json();
  root_["sim"] = JsonValue::object();
}

void BenchArtifact::tally(const sim::Simulator& sim) {
  tally(sim.stats(), sim.now());
}

void BenchArtifact::tally(const sim::Simulator::Stats& s, sim::Time sim_time) {
  events_executed_ += s.events_executed;
  events_cancelled_ += s.events_cancelled;
  peak_queue_depth_ = std::max(peak_queue_depth_,
                               static_cast<std::uint64_t>(s.peak_queue_depth));
  sim_time_us_ += sim_time;
}

std::string BenchArtifact::output_dir() {
  const char* dir = std::getenv("VSGC_BENCH_OUT");
  return (dir != nullptr && *dir != '\0') ? dir : ".";
}

std::string BenchArtifact::write_file(const std::string& dir) {
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started_)
          .count();
  JsonValue& sim = root_["sim"];
  sim["events_executed"] = events_executed_;
  sim["events_cancelled"] = events_cancelled_;
  sim["peak_queue_depth"] = peak_queue_depth_;
  sim["sim_time_us"] = sim_time_us_;
  sim["wall_time_seconds"] = wall;
  sim["events_per_wall_second"] =
      wall > 0 ? static_cast<double>(events_executed_) / wall : 0.0;
  const double sim_seconds = static_cast<double>(sim_time_us_) / 1e6;
  sim["wall_seconds_per_sim_second"] =
      sim_seconds > 0 ? wall / sim_seconds : 0.0;

  const std::string path =
      (dir.empty() ? output_dir() : dir) + "/BENCH_" + name_ + ".json";
  std::ofstream os(path, std::ios::binary);
  if (!os) {
    std::cerr << "obs: cannot write " << path << "\n";
    return {};
  }
  root_.write_pretty(os);
  os << '\n';
  if (!os) return {};
  std::cout << "\n[artifact] wrote " << path << "\n";
  return path;
}

}  // namespace vsgc::obs
