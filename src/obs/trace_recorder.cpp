#include "obs/trace_recorder.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <optional>
#include <ostream>
#include <sstream>

#include "net/node.hpp"

namespace vsgc::obs {

namespace {

JsonValue pid_set_json(const std::set<ProcessId>& set) {
  JsonValue arr = JsonValue::array();
  for (ProcessId p : set) arr.push_back(p.value);
  return arr;
}

bool pid_set_from_json(const JsonValue& arr, std::set<ProcessId>* out) {
  if (!arr.is_array()) return false;
  for (const JsonValue& item : arr.items()) {
    if (!item.is_int()) return false;
    out->insert(ProcessId{static_cast<std::uint32_t>(item.as_int())});
  }
  return true;
}

JsonValue view_json(const View& v) {
  JsonValue out = JsonValue::object();
  out["epoch"] = v.id.epoch;
  out["origin"] = v.id.origin;
  out["members"] = pid_set_json(v.members);
  JsonValue& sid = out["start_id"];
  sid = JsonValue::object();
  for (const auto& [p, cid] : v.start_id) {
    sid[std::to_string(p.value)] = cid.value;
  }
  return out;
}

bool view_from_json(const JsonValue& j, View* out) {
  const JsonValue* epoch = j.find("epoch");
  const JsonValue* origin = j.find("origin");
  const JsonValue* members = j.find("members");
  const JsonValue* sid = j.find("start_id");
  if (epoch == nullptr || origin == nullptr || members == nullptr ||
      sid == nullptr || !epoch->is_int() || !origin->is_int() ||
      !sid->is_object()) {
    return false;
  }
  out->id.epoch = static_cast<std::uint64_t>(epoch->as_int());
  out->id.origin = static_cast<std::uint32_t>(origin->as_int());
  if (!pid_set_from_json(*members, &out->members)) return false;
  for (const auto& [key, cid] : sid->members()) {
    if (!cid.is_int()) return false;
    out->start_id[ProcessId{
        static_cast<std::uint32_t>(std::stoul(key))}] =
        StartChangeId{static_cast<std::uint64_t>(cid.as_int())};
  }
  return true;
}

JsonValue msg_json(const gcs::AppMsg& m) {
  JsonValue out = JsonValue::object();
  out["sender"] = m.sender.value;
  out["uid"] = m.uid;
  out["payload"] = m.payload;
  return out;
}

bool msg_from_json(const JsonValue& j, gcs::AppMsg* out) {
  const JsonValue* sender = j.find("sender");
  const JsonValue* uid = j.find("uid");
  const JsonValue* payload = j.find("payload");
  if (sender == nullptr || uid == nullptr || payload == nullptr ||
      !sender->is_int() || !uid->is_int() || !payload->is_string()) {
    return false;
  }
  out->sender = ProcessId{static_cast<std::uint32_t>(sender->as_int())};
  out->uid = static_cast<std::uint64_t>(uid->as_int());
  out->payload = payload->as_string();
  return true;
}

}  // namespace

JsonValue event_to_json(const spec::Event& event) {
  JsonValue out = JsonValue::object();
  out["at"] = event.at;

  if (const auto* s = std::get_if<spec::GcsSend>(&event.body)) {
    out["type"] = "gcs_send";
    out["p"] = s->p.value;
    out["msg"] = msg_json(s->msg);
  } else if (const auto* d = std::get_if<spec::GcsDeliver>(&event.body)) {
    out["type"] = "gcs_deliver";
    out["p"] = d->p.value;
    out["q"] = d->q.value;
    out["msg"] = msg_json(d->msg);
  } else if (const auto* v = std::get_if<spec::GcsView>(&event.body)) {
    out["type"] = "gcs_view";
    out["p"] = v->p.value;
    out["view"] = view_json(v->view);
    out["transitional"] = pid_set_json(v->transitional);
  } else if (const auto* b = std::get_if<spec::GcsBlock>(&event.body)) {
    out["type"] = "gcs_block";
    out["p"] = b->p.value;
  } else if (const auto* bo = std::get_if<spec::GcsBlockOk>(&event.body)) {
    out["type"] = "gcs_block_ok";
    out["p"] = bo->p.value;
  } else if (const auto* sc = std::get_if<spec::MbrStartChange>(&event.body)) {
    out["type"] = "mbr_start_change";
    out["p"] = sc->p.value;
    out["cid"] = sc->cid.value;
    out["set"] = pid_set_json(sc->set);
  } else if (const auto* mv = std::get_if<spec::MbrView>(&event.body)) {
    out["type"] = "mbr_view";
    out["p"] = mv->p.value;
    out["view"] = view_json(mv->view);
  } else if (const auto* c = std::get_if<spec::Crash>(&event.body)) {
    out["type"] = "crash";
    out["p"] = c->p.value;
  } else if (const auto* r = std::get_if<spec::Recover>(&event.body)) {
    out["type"] = "recover";
    out["p"] = r->p.value;
  } else if (const auto* f = std::get_if<spec::FaultInjected>(&event.body)) {
    out["type"] = "fault";
    out["kind"] = f->kind;
    out["detail"] = f->detail;
  } else if (const auto* ws = std::get_if<spec::MsgWireSend>(&event.body)) {
    out["type"] = "msg_wire_send";
    out["p"] = ws->p.value;
    out["sender"] = ws->sender.value;
    out["uid"] = ws->uid;
  } else if (const auto* mr = std::get_if<spec::MsgRecv>(&event.body)) {
    out["type"] = "msg_recv";
    out["p"] = mr->p.value;
    out["from"] = mr->from.value;
    out["sender"] = mr->sender.value;
    out["uid"] = mr->uid;
    out["fwd"] = mr->forwarded;
  } else if (const auto* mf = std::get_if<spec::MsgForward>(&event.body)) {
    out["type"] = "msg_forward";
    out["p"] = mf->p.value;
    out["sender"] = mf->sender.value;
    out["uid"] = mf->uid;
    out["copies"] = mf->copies;
  } else if (const auto* ss = std::get_if<spec::SyncSent>(&event.body)) {
    out["type"] = "sync_sent";
    out["p"] = ss->p.value;
    out["cid"] = ss->cid.value;
  } else if (const auto* sr = std::get_if<spec::SyncRecv>(&event.body)) {
    out["type"] = "sync_recv";
    out["p"] = sr->p.value;
    out["from"] = sr->from.value;
    out["cid"] = sr->cid.value;
  } else if (const auto* xr = std::get_if<spec::XportRetransmit>(&event.body)) {
    out["type"] = "xport_retransmit";
    out["from_node"] = xr->from_node;
    out["to_node"] = xr->to_node;
    out["packets"] = xr->packets;
  } else if (const auto* mp = std::get_if<spec::MbrPhase>(&event.body)) {
    out["type"] = "mbr_phase";
    out["node"] = mp->node;
    out["phase"] = mp->phase;
    out["round"] = mp->round;
  }
  return out;
}

bool event_from_json(const JsonValue& record, spec::Event* out) {
  const JsonValue* at = record.find("at");
  const JsonValue* type = record.find("type");
  if (at == nullptr || type == nullptr || !at->is_int() ||
      !type->is_string()) {
    return false;
  }
  out->at = at->as_int();
  const std::string& t = type->as_string();

  if (t == "fault") {  // faults carry no process tag
    const JsonValue* kind = record.find("kind");
    const JsonValue* detail = record.find("detail");
    if (kind == nullptr || !kind->is_string() || detail == nullptr ||
        !detail->is_string()) {
      return false;
    }
    out->body = spec::FaultInjected{kind->as_string(), detail->as_string()};
    return true;
  }

  if (t == "xport_retransmit") {  // node-addressed, no process tag
    const JsonValue* from_node = record.find("from_node");
    const JsonValue* to_node = record.find("to_node");
    const JsonValue* packets = record.find("packets");
    if (from_node == nullptr || !from_node->is_int() || to_node == nullptr ||
        !to_node->is_int() || packets == nullptr || !packets->is_int()) {
      return false;
    }
    out->body = spec::XportRetransmit{
        static_cast<std::uint32_t>(from_node->as_int()),
        static_cast<std::uint32_t>(to_node->as_int()),
        static_cast<std::uint64_t>(packets->as_int())};
    return true;
  }

  if (t == "mbr_phase") {  // node-addressed, no process tag
    const JsonValue* node = record.find("node");
    const JsonValue* phase = record.find("phase");
    const JsonValue* round = record.find("round");
    if (node == nullptr || !node->is_int() || phase == nullptr ||
        !phase->is_string() || round == nullptr || !round->is_int()) {
      return false;
    }
    out->body = spec::MbrPhase{static_cast<std::uint32_t>(node->as_int()),
                               phase->as_string(),
                               static_cast<std::uint64_t>(round->as_int())};
    return true;
  }

  const JsonValue* p = record.find("p");
  if (p == nullptr || !p->is_int()) return false;
  const ProcessId pid{static_cast<std::uint32_t>(p->as_int())};

  if (t == "gcs_send") {
    spec::GcsSend body{pid, {}};
    const JsonValue* msg = record.find("msg");
    if (msg == nullptr || !msg_from_json(*msg, &body.msg)) return false;
    out->body = std::move(body);
  } else if (t == "gcs_deliver") {
    spec::GcsDeliver body{pid, {}, {}};
    const JsonValue* q = record.find("q");
    const JsonValue* msg = record.find("msg");
    if (q == nullptr || !q->is_int() || msg == nullptr ||
        !msg_from_json(*msg, &body.msg)) {
      return false;
    }
    body.q = ProcessId{static_cast<std::uint32_t>(q->as_int())};
    out->body = std::move(body);
  } else if (t == "gcs_view") {
    spec::GcsView body{pid, {}, {}};
    const JsonValue* view = record.find("view");
    const JsonValue* trans = record.find("transitional");
    if (view == nullptr || !view_from_json(*view, &body.view) ||
        trans == nullptr || !pid_set_from_json(*trans, &body.transitional)) {
      return false;
    }
    out->body = std::move(body);
  } else if (t == "gcs_block") {
    out->body = spec::GcsBlock{pid};
  } else if (t == "gcs_block_ok") {
    out->body = spec::GcsBlockOk{pid};
  } else if (t == "mbr_start_change") {
    spec::MbrStartChange body{pid, {}, {}};
    const JsonValue* cid = record.find("cid");
    const JsonValue* set = record.find("set");
    if (cid == nullptr || !cid->is_int() || set == nullptr ||
        !pid_set_from_json(*set, &body.set)) {
      return false;
    }
    body.cid = StartChangeId{static_cast<std::uint64_t>(cid->as_int())};
    out->body = std::move(body);
  } else if (t == "mbr_view") {
    spec::MbrView body{pid, {}};
    const JsonValue* view = record.find("view");
    if (view == nullptr || !view_from_json(*view, &body.view)) return false;
    out->body = std::move(body);
  } else if (t == "crash") {
    out->body = spec::Crash{pid};
  } else if (t == "recover") {
    out->body = spec::Recover{pid};
  } else if (t == "msg_wire_send") {
    const JsonValue* sender = record.find("sender");
    const JsonValue* uid = record.find("uid");
    if (sender == nullptr || !sender->is_int() || uid == nullptr ||
        !uid->is_int()) {
      return false;
    }
    out->body = spec::MsgWireSend{
        pid, ProcessId{static_cast<std::uint32_t>(sender->as_int())},
        static_cast<std::uint64_t>(uid->as_int())};
  } else if (t == "msg_recv") {
    const JsonValue* from = record.find("from");
    const JsonValue* sender = record.find("sender");
    const JsonValue* uid = record.find("uid");
    const JsonValue* fwd = record.find("fwd");
    if (from == nullptr || !from->is_int() || sender == nullptr ||
        !sender->is_int() || uid == nullptr || !uid->is_int() ||
        fwd == nullptr || !fwd->is_bool()) {
      return false;
    }
    out->body = spec::MsgRecv{
        pid, ProcessId{static_cast<std::uint32_t>(from->as_int())},
        ProcessId{static_cast<std::uint32_t>(sender->as_int())},
        static_cast<std::uint64_t>(uid->as_int()), fwd->as_bool()};
  } else if (t == "msg_forward") {
    const JsonValue* sender = record.find("sender");
    const JsonValue* uid = record.find("uid");
    const JsonValue* copies = record.find("copies");
    if (sender == nullptr || !sender->is_int() || uid == nullptr ||
        !uid->is_int() || copies == nullptr || !copies->is_int()) {
      return false;
    }
    out->body = spec::MsgForward{
        pid, ProcessId{static_cast<std::uint32_t>(sender->as_int())},
        static_cast<std::uint64_t>(uid->as_int()),
        static_cast<std::uint64_t>(copies->as_int())};
  } else if (t == "sync_sent") {
    const JsonValue* cid = record.find("cid");
    if (cid == nullptr || !cid->is_int()) return false;
    out->body = spec::SyncSent{
        pid, StartChangeId{static_cast<std::uint64_t>(cid->as_int())}};
  } else if (t == "sync_recv") {
    const JsonValue* from = record.find("from");
    const JsonValue* cid = record.find("cid");
    if (from == nullptr || !from->is_int() || cid == nullptr ||
        !cid->is_int()) {
      return false;
    }
    out->body = spec::SyncRecv{
        pid, ProcessId{static_cast<std::uint32_t>(from->as_int())},
        StartChangeId{static_cast<std::uint64_t>(cid->as_int())}};
  } else {
    return false;
  }
  return true;
}

void write_jsonl(const std::vector<spec::Event>& events, std::ostream& os) {
  for (const spec::Event& ev : events) {
    event_to_json(ev).write(os);
    os << '\n';
  }
}

bool read_jsonl(std::istream& is, std::vector<spec::Event>* out) {
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::string error;
    const JsonValue record = JsonValue::parse(line, &error);
    spec::Event ev;
    if (!record.is_object() || !event_from_json(record, &ev)) return false;
    out->push_back(std::move(ev));
  }
  return true;
}

namespace {

constexpr int kTidMembership = 0;
constexpr int kTidVs = 1;
constexpr int kTidApp = 2;
constexpr int kTidMsg = 3;     ///< per-message lifecycle span lane
constexpr int kTidXport = 4;   ///< transport retransmission lane
constexpr int kTidFaults = 0;  ///< lane on the dedicated pid-0 fault track

/// One Chrome-trace event plus its canonical sort key. Events accumulate in
/// emission order and are stable-sorted before writing: metadata records
/// first, then by (ts, pid, tid). Duration spans are only known at their
/// CLOSE time, so without the sort a span opening at t would serialize after
/// every instant in (t, close] and the file layout would depend on which
/// spans happened to be open — the sort makes the output a canonical function
/// of the event multiset, byte-identical across same-seed runs no matter how
/// spans interleave with instants and injected faults.
struct ChromeEvent {
  int rank;  ///< 0 = metadata, 1 = timed event
  sim::Time ts;
  std::uint32_t pid;
  int tid;
  JsonValue ev;
};

/// Phases used: "X" complete span (ts+dur), "i" instant, "M" metadata.
struct ChromeEmitter {
  std::vector<ChromeEvent> out;

  void span(std::uint32_t pid, int tid, const std::string& name, sim::Time ts,
            sim::Time dur) {
    JsonValue ev = JsonValue::object();
    ev["name"] = name;
    ev["ph"] = "X";
    ev["pid"] = pid;
    ev["tid"] = tid;
    ev["ts"] = ts;
    ev["dur"] = dur < 1 ? 1 : dur;  // zero-width spans vanish in the UI
    out.push_back({1, ts, pid, tid, std::move(ev)});
  }

  void instant(std::uint32_t pid, int tid, const std::string& name,
               sim::Time ts) {
    JsonValue ev = JsonValue::object();
    ev["name"] = name;
    ev["ph"] = "i";
    ev["s"] = "t";
    ev["pid"] = pid;
    ev["tid"] = tid;
    ev["ts"] = ts;
    out.push_back({1, ts, pid, tid, std::move(ev)});
  }

  void metadata(std::uint32_t pid, std::optional<int> tid,
                const std::string& what, const std::string& name) {
    JsonValue ev = JsonValue::object();
    ev["name"] = what;
    ev["ph"] = "M";
    ev["pid"] = pid;
    if (tid) ev["tid"] = *tid;
    JsonValue& args = ev["args"];
    args = JsonValue::object();
    args["name"] = name;
    out.push_back({0, 0, pid, tid.value_or(-1), std::move(ev)});
  }

  void write(std::ostream& os) {
    std::stable_sort(out.begin(), out.end(),
                     [](const ChromeEvent& a, const ChromeEvent& b) {
                       if (a.rank != b.rank) return a.rank < b.rank;
                       if (a.ts != b.ts) return a.ts < b.ts;
                       if (a.pid != b.pid) return a.pid < b.pid;
                       return a.tid < b.tid;
                     });
    JsonValue arr = JsonValue::array();
    for (ChromeEvent& e : out) arr.push_back(std::move(e.ev));
    JsonValue root = JsonValue::object();
    root["traceEvents"] = std::move(arr);
    root["displayTimeUnit"] = "ms";
    root.write_pretty(os);
    os << '\n';
  }
};

struct OpenSpans {
  std::optional<std::pair<sim::Time, std::string>> mbr_round;
  std::optional<sim::Time> view_change;
  std::optional<sim::Time> blocked;
};

/// Lifecycle milestones of one application message, for the msg span lane.
struct MsgLife {
  sim::Time submit = -1;
  sim::Time wire_send = -1;
  std::map<ProcessId, sim::Time> recv;  ///< receiver -> buffered-at time
};

}  // namespace

void write_chrome_trace(const std::vector<spec::Event>& events,
                        std::ostream& os) {
  ChromeEmitter em;

  std::map<ProcessId, OpenSpans> open;
  std::set<ProcessId> seen;
  std::set<std::uint32_t> seen_server_nodes;
  bool fault_track_named = false;
  std::map<std::pair<std::uint32_t, std::uint64_t>, MsgLife> msgs;

  auto track = [&](ProcessId p) -> OpenSpans& {
    if (seen.insert(p).second) {
      em.metadata(p.value, std::nullopt, "process_name", to_string(p));
      em.metadata(p.value, kTidMembership, "thread_name", "membership round");
      em.metadata(p.value, kTidVs, "thread_name", "view change (VS round)");
      em.metadata(p.value, kTidApp, "thread_name", "application");
      em.metadata(p.value, kTidMsg, "thread_name", "message lifecycle");
      em.metadata(p.value, kTidXport, "thread_name", "transport");
    }
    return open[p];
  };

  // Node-addressed events (retransmits, membership phases) may come from
  // membership servers, which have no process track; name one lazily.
  auto ensure_node_track = [&](std::uint32_t node) {
    const net::NodeId n{node};
    if (!net::is_server_node(n)) {
      track(net::process_of(n));
      return;
    }
    if (seen_server_nodes.insert(node).second) {
      em.metadata(node, std::nullopt, "process_name",
                  net::to_string(n) + " (membership server)");
      em.metadata(node, kTidMembership, "thread_name", "membership round");
      em.metadata(node, kTidXport, "thread_name", "transport");
    }
  };

  auto msg_label = [](ProcessId sender, std::uint64_t uid) {
    return to_string(sender) + "/" + std::to_string(uid);
  };

  for (const spec::Event& ev : events) {
    if (const auto* sc = std::get_if<spec::MbrStartChange>(&ev.body)) {
      OpenSpans& st = track(sc->p);
      if (st.mbr_round) {
        // A superseding start_change: close the old round span as obsolete.
        em.span(sc->p.value, kTidMembership,
                st.mbr_round->second + " (superseded)", st.mbr_round->first,
                ev.at - st.mbr_round->first);
      }
      st.mbr_round = {ev.at, "mbrshp round " + to_string(sc->cid)};
      if (!st.view_change) st.view_change = ev.at;
    } else if (const auto* mv = std::get_if<spec::MbrView>(&ev.body)) {
      OpenSpans& st = track(mv->p);
      if (st.mbr_round) {
        em.span(mv->p.value, kTidMembership,
                st.mbr_round->second + " -> " + to_string(mv->view.id),
                st.mbr_round->first, ev.at - st.mbr_round->first);
        st.mbr_round.reset();
      }
      em.instant(mv->p.value, kTidMembership,
                 "mbrshp view " + to_string(mv->view.id), ev.at);
    } else if (const auto* v = std::get_if<spec::GcsView>(&ev.body)) {
      OpenSpans& st = track(v->p);
      if (st.view_change) {
        em.span(v->p.value, kTidVs, "view change -> " + to_string(v->view.id),
                *st.view_change, ev.at - *st.view_change);
        st.view_change.reset();
      }
      if (st.blocked) {
        em.span(v->p.value, kTidApp, "blocked", *st.blocked,
                ev.at - *st.blocked);
        st.blocked.reset();
      }
      em.instant(v->p.value, kTidVs, "install " + to_string(v->view.id),
                 ev.at);
    } else if (const auto* b = std::get_if<spec::GcsBlock>(&ev.body)) {
      track(b->p).blocked = ev.at;
    } else if (const auto* s = std::get_if<spec::GcsSend>(&ev.body)) {
      track(s->p);
      msgs[{s->msg.sender.value, s->msg.uid}].submit = ev.at;
      em.instant(s->p.value, kTidApp,
                 "send uid=" + std::to_string(s->msg.uid), ev.at);
    } else if (const auto* d = std::get_if<spec::GcsDeliver>(&ev.body)) {
      track(d->p);
      em.instant(d->p.value, kTidApp,
                 "deliver " + to_string(d->q) + "/" +
                     std::to_string(d->msg.uid),
                 ev.at);
      // The message span lane: one outer bar per delivered copy covering
      // submit -> deliver, with the receive -> deliver gate nested inside
      // when lifecycle events recorded the buffer time.
      auto it = msgs.find({d->msg.sender.value, d->msg.uid});
      if (it != msgs.end() && it->second.submit >= 0) {
        const MsgLife& life = it->second;
        em.span(d->p.value, kTidMsg, "msg " + msg_label(d->q, d->msg.uid),
                life.submit, ev.at - life.submit);
        auto rx = life.recv.find(d->p);
        if (rx != life.recv.end()) {
          em.span(d->p.value, kTidMsg,
                  "gate " + msg_label(d->q, d->msg.uid), rx->second,
                  ev.at - rx->second);
        }
      }
    } else if (const auto* ws = std::get_if<spec::MsgWireSend>(&ev.body)) {
      track(ws->p);
      MsgLife& life = msgs[{ws->sender.value, ws->uid}];
      life.wire_send = ev.at;
      if (life.submit >= 0) {
        em.span(ws->p.value, kTidMsg,
                "queue " + msg_label(ws->sender, ws->uid), life.submit,
                ev.at - life.submit);
      }
    } else if (const auto* mr = std::get_if<spec::MsgRecv>(&ev.body)) {
      track(mr->p);
      msgs[{mr->sender.value, mr->uid}].recv.emplace(mr->p, ev.at);
    } else if (const auto* mf = std::get_if<spec::MsgForward>(&ev.body)) {
      track(mf->p);
      em.instant(mf->p.value, kTidVs,
                 "fwd " + msg_label(mf->sender, mf->uid) + " x" +
                     std::to_string(mf->copies),
                 ev.at);
    } else if (const auto* ss = std::get_if<spec::SyncSent>(&ev.body)) {
      track(ss->p);
      em.instant(ss->p.value, kTidVs, "sync sent " + to_string(ss->cid),
                 ev.at);
    } else if (const auto* sr = std::get_if<spec::SyncRecv>(&ev.body)) {
      track(sr->p);
      em.instant(sr->p.value, kTidVs,
                 "sync from " + to_string(sr->from) + " " +
                     to_string(sr->cid),
                 ev.at);
    } else if (const auto* xr = std::get_if<spec::XportRetransmit>(&ev.body)) {
      ensure_node_track(xr->from_node);
      em.instant(xr->from_node, kTidXport,
                 "rtx -> " + net::to_string(net::NodeId{xr->to_node}) + " x" +
                     std::to_string(xr->packets),
                 ev.at);
    } else if (const auto* mp = std::get_if<spec::MbrPhase>(&ev.body)) {
      ensure_node_track(mp->node);
      em.instant(mp->node, kTidMembership,
                 mp->round == 0 ? mp->phase
                                : mp->phase + " r" +
                                      std::to_string(mp->round),
                 ev.at);
    } else if (const auto* c = std::get_if<spec::Crash>(&ev.body)) {
      OpenSpans& st = track(c->p);
      st = OpenSpans{};
      em.instant(c->p.value, kTidApp, "CRASH", ev.at);
    } else if (const auto* r = std::get_if<spec::Recover>(&ev.body)) {
      track(r->p);
      em.instant(r->p.value, kTidApp, "recover", ev.at);
    } else if (const auto* f = std::get_if<spec::FaultInjected>(&ev.body)) {
      // Faults get their own track (pid 0 — real processes are 1-based) so a
      // timeline shows the injected schedule in a lane above the processes.
      if (!fault_track_named) {
        em.metadata(0, std::nullopt, "process_name", "fault injector");
        em.metadata(0, kTidFaults, "thread_name", "faults");
        fault_track_named = true;
      }
      em.instant(0, kTidFaults,
                 f->detail.empty() ? f->kind : f->kind + " " + f->detail,
                 ev.at);
    }
  }

  em.write(os);
}

void TraceRecorder::write_jsonl(std::ostream& os) const {
  obs::write_jsonl(events_, os);
}

void TraceRecorder::write_chrome_trace(std::ostream& os) const {
  obs::write_chrome_trace(events_, os);
}

bool TraceRecorder::write_jsonl_file(const std::string& path) const {
  std::ofstream os(path, std::ios::binary);
  if (!os) return false;
  write_jsonl(os);
  return static_cast<bool>(os);
}

bool TraceRecorder::write_chrome_trace_file(const std::string& path) const {
  std::ofstream os(path, std::ios::binary);
  if (!os) return false;
  write_chrome_trace(os);
  return static_cast<bool>(os);
}

}  // namespace vsgc::obs
