#include "obs/trace_recorder.hpp"

#include <fstream>
#include <map>
#include <optional>
#include <ostream>
#include <sstream>

namespace vsgc::obs {

namespace {

JsonValue pid_set_json(const std::set<ProcessId>& set) {
  JsonValue arr = JsonValue::array();
  for (ProcessId p : set) arr.push_back(p.value);
  return arr;
}

bool pid_set_from_json(const JsonValue& arr, std::set<ProcessId>* out) {
  if (!arr.is_array()) return false;
  for (const JsonValue& item : arr.items()) {
    if (!item.is_int()) return false;
    out->insert(ProcessId{static_cast<std::uint32_t>(item.as_int())});
  }
  return true;
}

JsonValue view_json(const View& v) {
  JsonValue out = JsonValue::object();
  out["epoch"] = v.id.epoch;
  out["origin"] = v.id.origin;
  out["members"] = pid_set_json(v.members);
  JsonValue& sid = out["start_id"];
  sid = JsonValue::object();
  for (const auto& [p, cid] : v.start_id) {
    sid[std::to_string(p.value)] = cid.value;
  }
  return out;
}

bool view_from_json(const JsonValue& j, View* out) {
  const JsonValue* epoch = j.find("epoch");
  const JsonValue* origin = j.find("origin");
  const JsonValue* members = j.find("members");
  const JsonValue* sid = j.find("start_id");
  if (epoch == nullptr || origin == nullptr || members == nullptr ||
      sid == nullptr || !epoch->is_int() || !origin->is_int() ||
      !sid->is_object()) {
    return false;
  }
  out->id.epoch = static_cast<std::uint64_t>(epoch->as_int());
  out->id.origin = static_cast<std::uint32_t>(origin->as_int());
  if (!pid_set_from_json(*members, &out->members)) return false;
  for (const auto& [key, cid] : sid->members()) {
    if (!cid.is_int()) return false;
    out->start_id[ProcessId{
        static_cast<std::uint32_t>(std::stoul(key))}] =
        StartChangeId{static_cast<std::uint64_t>(cid.as_int())};
  }
  return true;
}

JsonValue msg_json(const gcs::AppMsg& m) {
  JsonValue out = JsonValue::object();
  out["sender"] = m.sender.value;
  out["uid"] = m.uid;
  out["payload"] = m.payload;
  return out;
}

bool msg_from_json(const JsonValue& j, gcs::AppMsg* out) {
  const JsonValue* sender = j.find("sender");
  const JsonValue* uid = j.find("uid");
  const JsonValue* payload = j.find("payload");
  if (sender == nullptr || uid == nullptr || payload == nullptr ||
      !sender->is_int() || !uid->is_int() || !payload->is_string()) {
    return false;
  }
  out->sender = ProcessId{static_cast<std::uint32_t>(sender->as_int())};
  out->uid = static_cast<std::uint64_t>(uid->as_int());
  out->payload = payload->as_string();
  return true;
}

}  // namespace

JsonValue event_to_json(const spec::Event& event) {
  JsonValue out = JsonValue::object();
  out["at"] = event.at;

  if (const auto* s = std::get_if<spec::GcsSend>(&event.body)) {
    out["type"] = "gcs_send";
    out["p"] = s->p.value;
    out["msg"] = msg_json(s->msg);
  } else if (const auto* d = std::get_if<spec::GcsDeliver>(&event.body)) {
    out["type"] = "gcs_deliver";
    out["p"] = d->p.value;
    out["q"] = d->q.value;
    out["msg"] = msg_json(d->msg);
  } else if (const auto* v = std::get_if<spec::GcsView>(&event.body)) {
    out["type"] = "gcs_view";
    out["p"] = v->p.value;
    out["view"] = view_json(v->view);
    out["transitional"] = pid_set_json(v->transitional);
  } else if (const auto* b = std::get_if<spec::GcsBlock>(&event.body)) {
    out["type"] = "gcs_block";
    out["p"] = b->p.value;
  } else if (const auto* bo = std::get_if<spec::GcsBlockOk>(&event.body)) {
    out["type"] = "gcs_block_ok";
    out["p"] = bo->p.value;
  } else if (const auto* sc = std::get_if<spec::MbrStartChange>(&event.body)) {
    out["type"] = "mbr_start_change";
    out["p"] = sc->p.value;
    out["cid"] = sc->cid.value;
    out["set"] = pid_set_json(sc->set);
  } else if (const auto* mv = std::get_if<spec::MbrView>(&event.body)) {
    out["type"] = "mbr_view";
    out["p"] = mv->p.value;
    out["view"] = view_json(mv->view);
  } else if (const auto* c = std::get_if<spec::Crash>(&event.body)) {
    out["type"] = "crash";
    out["p"] = c->p.value;
  } else if (const auto* r = std::get_if<spec::Recover>(&event.body)) {
    out["type"] = "recover";
    out["p"] = r->p.value;
  } else if (const auto* f = std::get_if<spec::FaultInjected>(&event.body)) {
    out["type"] = "fault";
    out["kind"] = f->kind;
    out["detail"] = f->detail;
  }
  return out;
}

bool event_from_json(const JsonValue& record, spec::Event* out) {
  const JsonValue* at = record.find("at");
  const JsonValue* type = record.find("type");
  if (at == nullptr || type == nullptr || !at->is_int() ||
      !type->is_string()) {
    return false;
  }
  out->at = at->as_int();
  const std::string& t = type->as_string();

  if (t == "fault") {  // faults carry no process tag
    const JsonValue* kind = record.find("kind");
    const JsonValue* detail = record.find("detail");
    if (kind == nullptr || !kind->is_string() || detail == nullptr ||
        !detail->is_string()) {
      return false;
    }
    out->body = spec::FaultInjected{kind->as_string(), detail->as_string()};
    return true;
  }

  const JsonValue* p = record.find("p");
  if (p == nullptr || !p->is_int()) return false;
  const ProcessId pid{static_cast<std::uint32_t>(p->as_int())};

  if (t == "gcs_send") {
    spec::GcsSend body{pid, {}};
    const JsonValue* msg = record.find("msg");
    if (msg == nullptr || !msg_from_json(*msg, &body.msg)) return false;
    out->body = std::move(body);
  } else if (t == "gcs_deliver") {
    spec::GcsDeliver body{pid, {}, {}};
    const JsonValue* q = record.find("q");
    const JsonValue* msg = record.find("msg");
    if (q == nullptr || !q->is_int() || msg == nullptr ||
        !msg_from_json(*msg, &body.msg)) {
      return false;
    }
    body.q = ProcessId{static_cast<std::uint32_t>(q->as_int())};
    out->body = std::move(body);
  } else if (t == "gcs_view") {
    spec::GcsView body{pid, {}, {}};
    const JsonValue* view = record.find("view");
    const JsonValue* trans = record.find("transitional");
    if (view == nullptr || !view_from_json(*view, &body.view) ||
        trans == nullptr || !pid_set_from_json(*trans, &body.transitional)) {
      return false;
    }
    out->body = std::move(body);
  } else if (t == "gcs_block") {
    out->body = spec::GcsBlock{pid};
  } else if (t == "gcs_block_ok") {
    out->body = spec::GcsBlockOk{pid};
  } else if (t == "mbr_start_change") {
    spec::MbrStartChange body{pid, {}, {}};
    const JsonValue* cid = record.find("cid");
    const JsonValue* set = record.find("set");
    if (cid == nullptr || !cid->is_int() || set == nullptr ||
        !pid_set_from_json(*set, &body.set)) {
      return false;
    }
    body.cid = StartChangeId{static_cast<std::uint64_t>(cid->as_int())};
    out->body = std::move(body);
  } else if (t == "mbr_view") {
    spec::MbrView body{pid, {}};
    const JsonValue* view = record.find("view");
    if (view == nullptr || !view_from_json(*view, &body.view)) return false;
    out->body = std::move(body);
  } else if (t == "crash") {
    out->body = spec::Crash{pid};
  } else if (t == "recover") {
    out->body = spec::Recover{pid};
  } else {
    return false;
  }
  return true;
}

void write_jsonl(const std::vector<spec::Event>& events, std::ostream& os) {
  for (const spec::Event& ev : events) {
    event_to_json(ev).write(os);
    os << '\n';
  }
}

bool read_jsonl(std::istream& is, std::vector<spec::Event>* out) {
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::string error;
    const JsonValue record = JsonValue::parse(line, &error);
    spec::Event ev;
    if (!record.is_object() || !event_from_json(record, &ev)) return false;
    out->push_back(std::move(ev));
  }
  return true;
}

namespace {

/// Appends one Chrome-trace event object to `arr`.
/// Phases used: "X" complete span (ts+dur), "i" instant, "M" metadata.
void span(JsonValue& arr, std::uint32_t pid, int tid, const std::string& name,
          sim::Time ts, sim::Time dur) {
  JsonValue ev = JsonValue::object();
  ev["name"] = name;
  ev["ph"] = "X";
  ev["pid"] = pid;
  ev["tid"] = tid;
  ev["ts"] = ts;
  ev["dur"] = dur < 1 ? 1 : dur;  // zero-width spans vanish in the UI
  arr.push_back(std::move(ev));
}

void instant(JsonValue& arr, std::uint32_t pid, int tid,
             const std::string& name, sim::Time ts) {
  JsonValue ev = JsonValue::object();
  ev["name"] = name;
  ev["ph"] = "i";
  ev["s"] = "t";
  ev["pid"] = pid;
  ev["tid"] = tid;
  ev["ts"] = ts;
  arr.push_back(std::move(ev));
}

void metadata(JsonValue& arr, std::uint32_t pid, std::optional<int> tid,
              const std::string& what, const std::string& name) {
  JsonValue ev = JsonValue::object();
  ev["name"] = what;
  ev["ph"] = "M";
  ev["pid"] = pid;
  if (tid) ev["tid"] = *tid;
  JsonValue& args = ev["args"];
  args = JsonValue::object();
  args["name"] = name;
  arr.push_back(std::move(ev));
}

constexpr int kTidMembership = 0;
constexpr int kTidVs = 1;
constexpr int kTidApp = 2;
constexpr int kTidFaults = 0;  ///< lane on the dedicated pid-0 fault track

struct OpenSpans {
  std::optional<std::pair<sim::Time, std::string>> mbr_round;
  std::optional<sim::Time> view_change;
  std::optional<sim::Time> blocked;
};

}  // namespace

void write_chrome_trace(const std::vector<spec::Event>& events,
                        std::ostream& os) {
  // Built as a local and attached at the end: references returned by
  // operator[] are invalidated by later insertions into the same object.
  JsonValue arr = JsonValue::array();

  std::map<ProcessId, OpenSpans> open;
  std::set<ProcessId> seen;
  bool fault_track_named = false;

  auto track = [&](ProcessId p) -> OpenSpans& {
    if (seen.insert(p).second) {
      metadata(arr, p.value, std::nullopt, "process_name", to_string(p));
      metadata(arr, p.value, kTidMembership, "thread_name", "membership round");
      metadata(arr, p.value, kTidVs, "thread_name", "view change (VS round)");
      metadata(arr, p.value, kTidApp, "thread_name", "application");
    }
    return open[p];
  };

  for (const spec::Event& ev : events) {
    if (const auto* sc = std::get_if<spec::MbrStartChange>(&ev.body)) {
      OpenSpans& st = track(sc->p);
      if (st.mbr_round) {
        // A superseding start_change: close the old round span as obsolete.
        span(arr, sc->p.value, kTidMembership,
             st.mbr_round->second + " (superseded)", st.mbr_round->first,
             ev.at - st.mbr_round->first);
      }
      st.mbr_round = {ev.at, "mbrshp round " + to_string(sc->cid)};
      if (!st.view_change) st.view_change = ev.at;
    } else if (const auto* mv = std::get_if<spec::MbrView>(&ev.body)) {
      OpenSpans& st = track(mv->p);
      if (st.mbr_round) {
        span(arr, mv->p.value, kTidMembership,
             st.mbr_round->second + " -> " + to_string(mv->view.id),
             st.mbr_round->first, ev.at - st.mbr_round->first);
        st.mbr_round.reset();
      }
      instant(arr, mv->p.value, kTidMembership,
              "mbrshp view " + to_string(mv->view.id), ev.at);
    } else if (const auto* v = std::get_if<spec::GcsView>(&ev.body)) {
      OpenSpans& st = track(v->p);
      if (st.view_change) {
        span(arr, v->p.value, kTidVs,
             "view change -> " + to_string(v->view.id), *st.view_change,
             ev.at - *st.view_change);
        st.view_change.reset();
      }
      if (st.blocked) {
        span(arr, v->p.value, kTidApp, "blocked", *st.blocked,
             ev.at - *st.blocked);
        st.blocked.reset();
      }
      instant(arr, v->p.value, kTidVs, "install " + to_string(v->view.id),
              ev.at);
    } else if (const auto* b = std::get_if<spec::GcsBlock>(&ev.body)) {
      track(b->p).blocked = ev.at;
    } else if (const auto* s = std::get_if<spec::GcsSend>(&ev.body)) {
      track(s->p);
      instant(arr, s->p.value, kTidApp,
              "send uid=" + std::to_string(s->msg.uid), ev.at);
    } else if (const auto* d = std::get_if<spec::GcsDeliver>(&ev.body)) {
      track(d->p);
      instant(arr, d->p.value, kTidApp,
              "deliver " + to_string(d->q) + "/" + std::to_string(d->msg.uid),
              ev.at);
    } else if (const auto* c = std::get_if<spec::Crash>(&ev.body)) {
      OpenSpans& st = track(c->p);
      st = OpenSpans{};
      instant(arr, c->p.value, kTidApp, "CRASH", ev.at);
    } else if (const auto* r = std::get_if<spec::Recover>(&ev.body)) {
      track(r->p);
      instant(arr, r->p.value, kTidApp, "recover", ev.at);
    } else if (const auto* f = std::get_if<spec::FaultInjected>(&ev.body)) {
      // Faults get their own track (pid 0 — real processes are 1-based) so a
      // timeline shows the injected schedule in a lane above the processes.
      if (!fault_track_named) {
        metadata(arr, 0, std::nullopt, "process_name", "fault injector");
        metadata(arr, 0, kTidFaults, "thread_name", "faults");
        fault_track_named = true;
      }
      instant(arr, 0, kTidFaults,
              f->detail.empty() ? f->kind : f->kind + " " + f->detail, ev.at);
    }
  }

  JsonValue root = JsonValue::object();
  root["traceEvents"] = std::move(arr);
  root["displayTimeUnit"] = "ms";
  root.write_pretty(os);
  os << '\n';
}

void TraceRecorder::write_jsonl(std::ostream& os) const {
  obs::write_jsonl(events_, os);
}

void TraceRecorder::write_chrome_trace(std::ostream& os) const {
  obs::write_chrome_trace(events_, os);
}

bool TraceRecorder::write_jsonl_file(const std::string& path) const {
  std::ofstream os(path, std::ios::binary);
  if (!os) return false;
  write_jsonl(os);
  return static_cast<bool>(os);
}

bool TraceRecorder::write_chrome_trace_file(const std::string& path) const {
  std::ofstream os(path, std::ios::binary);
  if (!os) return false;
  write_chrome_trace(os);
  return static_cast<bool>(os);
}

}  // namespace vsgc::obs
