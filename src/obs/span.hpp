// Causal span layer (DESIGN.md §10): reconstructs per-message lifecycles and
// per-process view-change phase decompositions from the trace-event stream.
//
// Two consumers share the model:
//  * SpanCollector — a streaming TraceSink that derives per-phase latency
//    histograms into an obs::Registry while a run executes (benches attach
//    it next to MetricsCollector). Requires TraceBus::lifecycle() to be on
//    at the emitting components for the fine-grained phases.
//  * analyze() — a post-mortem pass over a recorded event vector (or a
//    re-parsed JSONL file) that builds full MsgSpan/ViewSpan structures,
//    classifies every expected-but-undelivered leg (orphan detection), and
//    feeds the byte-deterministic report of tools/vsgc_trace.
//
// Identity scheme: a message's trace id is (sender, uid) — the sender's
// ProcessId plus the sender-local sequence number assigned at submit. Both
// are carried by every message-lifecycle event, so causal chains reconstruct
// without any global coordination and deterministically across replays.
//
// Determinism: all derived quantities are integers (simulated microseconds,
// counts); percentiles are exact nearest-rank over sorted samples, never
// interpolated — so a report is a pure function of the event multiset.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "spec/events.hpp"

namespace vsgc::obs {

class BenchArtifact;

/// Deterministic message trace id: sender + sender-local sequence number.
struct MsgTraceId {
  ProcessId sender;
  std::uint64_t uid = 0;

  friend auto operator<=>(const MsgTraceId&, const MsgTraceId&) = default;
};

std::string to_string(const MsgTraceId& id);

/// Why an expected delivery leg never completed. Everything except
/// kUnexplained is a legitimate outcome under crashes/partitions or a
/// truncated trace; kUnexplained means virtual synchrony lost a delivery.
enum class OrphanKind {
  kNeverInView,      ///< receiver never installed the send view
  kReceiverCrashed,  ///< receiver crashed while in the send view
  kSenderCrashed,    ///< sender crashed before the message reached the wire
  kExcludedByCut,    ///< receiver's next view excluded the sender from T
  kInFlightAtEnd,    ///< trace ended with the receiver still in the view
  kUnexplained,      ///< receiver left the view WITH the sender in T: a loss
};
constexpr int kOrphanKinds = 6;

const char* to_string(OrphanKind kind);

/// One receiver's leg of a message span.
struct DeliveryLeg {
  ProcessId receiver;
  sim::Time recv_at = -1;     ///< -1: no lifecycle recv recorded (self leg)
  sim::Time deliver_at = -1;  ///< -1: not delivered
  bool via_forward = false;
  std::optional<OrphanKind> orphan;  ///< set iff deliver_at < 0
};

/// The full lifecycle of one application message: submit at the sender,
/// hand-off to the transport, then one leg per member of the send view.
struct MsgSpan {
  MsgTraceId id;
  sim::Time submit_at = -1;
  sim::Time wire_send_at = -1;  ///< -1: never handed to the transport
  View view;                    ///< sender's view at submit (expected set)
  std::vector<DeliveryLeg> legs;  ///< one per view member, sorted by receiver
};

/// Client-side milestones of one process installing one view. Milestones are
/// first-occurrence within the change window (opened by the first
/// MbrStartChange after the previous installation); -1 = not observed.
struct ViewSpan {
  ProcessId p;
  ViewId view;
  sim::Time start_change_at = -1;
  sim::Time block_ok_at = -1;  ///< application acknowledged the block
  sim::Time sync_sent_at = -1;  ///< cut committed + sync message multicast
  sim::Time mbr_view_at = -1;   ///< MBRSHP notification of `view`
  sim::Time installed_at = -1;  ///< GCS view delivery
};

/// Monotone phase decomposition of a ViewSpan. Milestones are clamped into
/// [start_change_at, installed_at] and telescoped, so the four phases sum to
/// `total` EXACTLY (total == installed_at - start_change_at); a milestone
/// that never occurred (e.g. sync_send in the two-round baseline) yields a
/// zero-width phase absorbed by its successor.
struct ViewPhases {
  sim::Time blocking = 0;         ///< start_change -> block_ok
  sim::Time sync_send = 0;        ///< block_ok -> sync message sent
  sim::Time membership_wait = 0;  ///< sync sent -> MBRSHP view known
  sim::Time install_wait = 0;     ///< MBRSHP view -> GCS installation
  sim::Time total = 0;
};

ViewPhases view_phases(const ViewSpan& span);

/// Exact nearest-rank percentiles of one phase's samples.
struct PhaseStats {
  std::uint64_t count = 0;
  sim::Time p50 = 0;
  sim::Time p95 = 0;
  sim::Time p99 = 0;
  sim::Time max = 0;
};

/// Sorts `samples` in place and computes exact nearest-rank percentiles.
PhaseStats phase_stats(std::vector<sim::Time>& samples);

/// Everything vsgc_trace derives from one recorded execution.
struct TraceAnalysis {
  std::vector<MsgSpan> messages;  ///< sorted by (sender, uid)
  std::vector<ViewSpan> views;    ///< in installation (event) order
  std::uint64_t events = 0;
  sim::Time end_at = 0;  ///< timestamp of the last event
  std::uint64_t legs_expected = 0;
  std::uint64_t legs_delivered = 0;
  std::uint64_t orphans = 0;
  std::uint64_t orphans_by_kind[kOrphanKinds] = {};
  std::uint64_t retransmit_packets = 0;
  std::uint64_t forward_copies = 0;
  std::uint64_t mbr_rounds = 0;        ///< server "round_start" markers
  std::uint64_t mbr_views_formed = 0;  ///< server "view_formed" markers
  std::uint64_t mbr_suspicions = 0;    ///< server "suspicion" markers
  std::uint64_t notify_drops = 0;      ///< client-suppressed notifications

  std::uint64_t unexplained() const {
    return orphans_by_kind[static_cast<int>(OrphanKind::kUnexplained)];
  }
};

/// Post-mortem causal reconstruction of a recorded execution.
TraceAnalysis analyze(const std::vector<spec::Event>& events);

/// Byte-deterministic plain-text report: accounting, per-phase percentiles,
/// queue-vs-wire decomposition, the `top_k` slowest deliveries with their
/// critical path, and every orphaned leg with its classification.
void write_trace_report(const TraceAnalysis& analysis, std::ostream& os,
                        int top_k = 5);

/// Fill a BENCH_tracelat.json artifact's "results" section: one "summary"
/// row plus one row per message/view phase (schema checked by
/// tools/validate_bench_json).
void append_tracelat_results(const TraceAnalysis& analysis,
                             BenchArtifact& artifact);

/// Streaming TraceSink deriving per-phase latency histograms into `registry`
/// as a run executes:
///   span.msg.{sender_queue_us,wire_us,gate_us,e2e_us}
///   span.view.{blocking_us,sync_send_us,membership_wait_us,install_wait_us,
///              e2e_us}
///   span.retransmit_packets / span.forward_copies (counters)
/// Histogram percentiles carry log2-bucket resolution; use analyze() when
/// exact values are required.
class SpanCollector : public spec::TraceSink {
 public:
  explicit SpanCollector(Registry& registry);

  void on_event(const spec::Event& event) override;

 private:
  struct MsgState {
    sim::Time submit = -1;
    sim::Time wire_send = -1;
    std::uint64_t expected = 0;  ///< members of the send view
    std::uint64_t delivered = 0;
    std::map<ProcessId, sim::Time> recv;
  };

  struct ProcState {
    std::uint64_t view_size = 1;  ///< members of the current view
    bool change_open = false;
    ViewSpan change;  ///< accumulating milestones (view set at install)
    std::map<ViewId, sim::Time> mbr_view_at;
  };

  Registry& reg_;
  Histogram& sender_queue_;
  Histogram& wire_;
  Histogram& gate_;
  Histogram& e2e_;
  Histogram& view_blocking_;
  Histogram& view_sync_send_;
  Histogram& view_membership_wait_;
  Histogram& view_install_wait_;
  Histogram& view_e2e_;
  Counter& retransmits_;
  Counter& forwards_;

  std::map<MsgTraceId, MsgState> msgs_;
  std::map<ProcessId, ProcState> procs_;
};

}  // namespace vsgc::obs
