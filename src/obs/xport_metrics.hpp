// Transport data-plane metrics (DESIGN.md §11): fold one CoRfifoTransport's
// frame/window stats into a Registry.
//
// Header-only on purpose: vsgc_obs does not link against vsgc_transport, but
// every consumer of this header (benches, tools, tests) already does.
//
//   xport.frame.*  — wire-frame economics: frames vs entries (batch density),
//                    piggybacked vs standalone acks, retransmissions, bytes.
//   xport.window.* — flow-control health: credit stalls, receive-window
//                    drops, and the peak queue depths the checker bounds.
#pragma once

#include "obs/metrics.hpp"
#include "transport/co_rfifo.hpp"

namespace vsgc::obs {

inline void record_xport_stats(Registry& reg, const Labels& labels,
                               const transport::CoRfifoTransport::Stats& s) {
  reg.counter("xport.frame.frames_sent", labels).inc(s.frames_sent);
  reg.counter("xport.frame.entries_sent", labels).inc(s.entries_sent);
  reg.counter("xport.frame.acks_sent", labels).inc(s.acks_sent);
  reg.counter("xport.frame.acks_piggybacked", labels)
      .inc(s.acks_piggybacked);
  reg.counter("xport.frame.retransmissions", labels).inc(s.retransmissions);
  reg.counter("xport.frame.bytes_sent", labels).inc(s.bytes_sent);
  reg.counter("xport.window.stalls", labels).inc(s.window_stalls);
  reg.counter("xport.window.ooo_dropped", labels).inc(s.ooo_dropped);
  reg.gauge("xport.window.peak_unacked", labels)
      .max_of(static_cast<std::int64_t>(s.peak_unacked));
  reg.gauge("xport.window.peak_out_of_order", labels)
      .max_of(static_cast<std::int64_t>(s.peak_out_of_order));
  reg.gauge("xport.window.peak_pending", labels)
      .max_of(static_cast<std::int64_t>(s.peak_pending));
}

}  // namespace vsgc::obs
