#include "obs/span.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>

#include "obs/artifact.hpp"

namespace vsgc::obs {

std::string to_string(const MsgTraceId& id) {
  return vsgc::to_string(id.sender) + "/" + std::to_string(id.uid);
}

const char* to_string(OrphanKind kind) {
  switch (kind) {
    case OrphanKind::kNeverInView: return "never_in_view";
    case OrphanKind::kReceiverCrashed: return "receiver_crashed";
    case OrphanKind::kSenderCrashed: return "sender_crashed";
    case OrphanKind::kExcludedByCut: return "excluded_by_cut";
    case OrphanKind::kInFlightAtEnd: return "in_flight_at_end";
    case OrphanKind::kUnexplained: return "unexplained";
  }
  return "?";
}

ViewPhases view_phases(const ViewSpan& span) {
  ViewPhases ph;
  if (span.start_change_at < 0 || span.installed_at < 0) return ph;
  // Clamped telescoping: each milestone is forced into [prev, installed_at],
  // a missing milestone (-1) collapses onto prev, so the four deltas sum to
  // installed_at - start_change_at EXACTLY.
  sim::Time prev = span.start_change_at;
  const auto step = [&](sim::Time raw) {
    sim::Time m = raw < prev ? prev : raw;
    if (m > span.installed_at) m = span.installed_at;
    const sim::Time d = m - prev;
    prev = m;
    return d;
  };
  ph.blocking = step(span.block_ok_at);
  ph.sync_send = step(span.sync_sent_at);
  ph.membership_wait = step(span.mbr_view_at);
  ph.install_wait = span.installed_at - prev;
  ph.total = span.installed_at - span.start_change_at;
  return ph;
}

PhaseStats phase_stats(std::vector<sim::Time>& samples) {
  PhaseStats s;
  s.count = samples.size();
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  const std::uint64_t n = samples.size();
  // Exact nearest-rank: rank(q) = ceil(q/100 * n), 1-based.
  const auto at_rank = [&](std::uint64_t q) {
    std::uint64_t rank = (n * q + 99) / 100;
    if (rank < 1) rank = 1;
    return samples[rank - 1];
  };
  s.p50 = at_rank(50);
  s.p95 = at_rank(95);
  s.p99 = at_rank(99);
  s.max = samples.back();
  return s;
}

// --------------------------------------------------------------------------
// Post-mortem analysis
// --------------------------------------------------------------------------

namespace {

struct MsgAcc {
  sim::Time submit = -1;
  sim::Time wire_send = -1;
  View view;
  std::map<ProcessId, std::pair<sim::Time, bool>> recv;  ///< at, forwarded
  std::map<ProcessId, sim::Time> deliver;
};

struct ProcTimeline {
  struct Installed {
    sim::Time at = 0;
    View view;
    std::set<ProcessId> transitional;
  };
  std::vector<Installed> installs;
  std::vector<sim::Time> crashes;
  View cur;  ///< current view (View::initial until the first installation)
  bool cur_init = false;

  bool change_open = false;
  ViewSpan change;
  std::map<ViewId, sim::Time> mbr_view_at;

  View& current(ProcessId p) {
    if (!cur_init) {
      cur = View::initial(p);
      cur_init = true;
    }
    return cur;
  }

  bool crashed_in(sim::Time from, sim::Time to_exclusive) const {
    for (sim::Time c : crashes) {
      if (c >= from && (to_exclusive < 0 || c <= to_exclusive)) return true;
    }
    return false;
  }
};

OrphanKind classify(const MsgAcc& m, MsgTraceId id, ProcessId receiver,
                    const ProcTimeline& rt, const ProcTimeline& st) {
  // Locate the receiver's tenure in the send view. The initial singleton
  // view is never installed through GcsView; its only member is the sender,
  // which holds it from (re)birth, so the tenure opens at submit time.
  sim::Time enter = -1;
  std::size_t next_idx = rt.installs.size();
  if (m.view.id == ViewId::zero()) {
    enter = m.submit;
    for (std::size_t i = 0; i < rt.installs.size(); ++i) {
      if (rt.installs[i].at >= m.submit) {
        next_idx = i;
        break;
      }
    }
  } else {
    bool found = false;
    for (std::size_t i = 0; i < rt.installs.size(); ++i) {
      if (rt.installs[i].view.id == m.view.id) {
        enter = rt.installs[i].at;
        next_idx = i + 1;
        found = true;
        break;
      }
    }
    if (!found) return OrphanKind::kNeverInView;
  }

  // The message is outstanding at the receiver from max(enter, submit).
  const sim::Time outstanding = enter > m.submit ? enter : m.submit;
  const bool has_next = next_idx < rt.installs.size();
  const sim::Time next_at = has_next ? rt.installs[next_idx].at : -1;

  if (rt.crashed_in(outstanding, next_at)) {
    return OrphanKind::kReceiverCrashed;
  }

  const bool sender_crashed = st.crashed_in(m.submit, -1);

  if (has_next) {
    // The receiver moved on to a successor view. Virtual synchrony only
    // obliges it to carry the message across the cut if the sender survived
    // it (sender in the transitional set) and the sender itself delivered
    // the message in the send view.
    const auto& next = rt.installs[next_idx];
    if (!next.transitional.contains(id.sender)) {
      return OrphanKind::kExcludedByCut;
    }
    if (m.deliver.contains(id.sender)) return OrphanKind::kUnexplained;
    if (sender_crashed) return OrphanKind::kSenderCrashed;
    return OrphanKind::kInFlightAtEnd;
  }

  // No successor view: the receiver stayed in the send view to trace end.
  if (sender_crashed) return OrphanKind::kSenderCrashed;
  if (m.recv.contains(receiver)) return OrphanKind::kUnexplained;
  return OrphanKind::kInFlightAtEnd;
}

}  // namespace

TraceAnalysis analyze(const std::vector<spec::Event>& events) {
  TraceAnalysis out;
  std::map<MsgTraceId, MsgAcc> msgs;
  std::map<ProcessId, ProcTimeline> procs;

  for (const spec::Event& ev : events) {
    ++out.events;
    if (ev.at > out.end_at) out.end_at = ev.at;
    const spec::EventBody& b = ev.body;

    if (const auto* e = std::get_if<spec::GcsSend>(&b)) {
      auto& proc = procs[e->p];
      MsgAcc& m = msgs[MsgTraceId{e->msg.sender, e->msg.uid}];
      m.submit = ev.at;
      m.view = proc.current(e->p);
    } else if (const auto* e = std::get_if<spec::MsgWireSend>(&b)) {
      MsgAcc& m = msgs[MsgTraceId{e->sender, e->uid}];
      if (m.wire_send < 0) m.wire_send = ev.at;
    } else if (const auto* e = std::get_if<spec::MsgRecv>(&b)) {
      MsgAcc& m = msgs[MsgTraceId{e->sender, e->uid}];
      m.recv.try_emplace(e->p, ev.at, e->forwarded);
    } else if (const auto* e = std::get_if<spec::GcsDeliver>(&b)) {
      MsgAcc& m = msgs[MsgTraceId{e->msg.sender, e->msg.uid}];
      m.deliver.try_emplace(e->p, ev.at);
    } else if (const auto* e = std::get_if<spec::GcsView>(&b)) {
      auto& proc = procs[e->p];
      proc.current(e->p) = e->view;
      proc.installs.push_back({ev.at, e->view, e->transitional});
      ViewSpan span = proc.change;
      span.p = e->p;
      span.view = e->view.id;
      span.installed_at = ev.at;
      auto mv = proc.mbr_view_at.find(e->view.id);
      span.mbr_view_at = mv == proc.mbr_view_at.end() ? -1 : mv->second;
      out.views.push_back(span);
      proc.change_open = false;
      proc.change = ViewSpan{};
      std::erase_if(proc.mbr_view_at, [&](const auto& entry) {
        return !(e->view.id < entry.first);
      });
    } else if (const auto* e = std::get_if<spec::MbrStartChange>(&b)) {
      auto& proc = procs[e->p];
      if (!proc.change_open) {
        proc.change_open = true;
        proc.change.start_change_at = ev.at;
      }
    } else if (const auto* e = std::get_if<spec::GcsBlockOk>(&b)) {
      auto& proc = procs[e->p];
      if (proc.change_open && proc.change.block_ok_at < 0) {
        proc.change.block_ok_at = ev.at;
      }
    } else if (const auto* e = std::get_if<spec::SyncSent>(&b)) {
      auto& proc = procs[e->p];
      if (proc.change_open && proc.change.sync_sent_at < 0) {
        proc.change.sync_sent_at = ev.at;
      }
    } else if (const auto* e = std::get_if<spec::MbrView>(&b)) {
      procs[e->p].mbr_view_at.try_emplace(e->view.id, ev.at);
    } else if (const auto* e = std::get_if<spec::Crash>(&b)) {
      auto& proc = procs[e->p];
      proc.crashes.push_back(ev.at);
      proc.change_open = false;
      proc.change = ViewSpan{};
      proc.mbr_view_at.clear();
      proc.current(e->p) = View::initial(e->p);
    } else if (const auto* e = std::get_if<spec::XportRetransmit>(&b)) {
      out.retransmit_packets += e->packets;
    } else if (const auto* e = std::get_if<spec::MsgForward>(&b)) {
      out.forward_copies += e->copies;
    } else if (const auto* e = std::get_if<spec::MbrPhase>(&b)) {
      if (e->phase == "round_start") ++out.mbr_rounds;
      else if (e->phase == "view_formed") ++out.mbr_views_formed;
      else if (e->phase == "suspicion") ++out.mbr_suspicions;
      else if (e->phase == "notify_drop") ++out.notify_drops;
    }
    // Recover, GcsBlock, FaultInjected, SyncRecv: no span state to update.
  }

  // Build the message spans: one leg per member of the send view, orphan
  // classification for every expected-but-missing delivery.
  for (auto& [id, m] : msgs) {
    if (m.submit < 0) continue;  // truncated trace: no GcsSend record
    MsgSpan span;
    span.id = id;
    span.submit_at = m.submit;
    span.wire_send_at = m.wire_send;
    span.view = m.view;
    const ProcTimeline& st = procs[id.sender];
    for (ProcessId r : m.view.members) {
      DeliveryLeg leg;
      leg.receiver = r;
      if (auto it = m.recv.find(r); it != m.recv.end()) {
        leg.recv_at = it->second.first;
        leg.via_forward = it->second.second;
      }
      ++out.legs_expected;
      if (auto it = m.deliver.find(r); it != m.deliver.end()) {
        leg.deliver_at = it->second;
        ++out.legs_delivered;
      } else {
        const OrphanKind kind = classify(m, id, r, procs[r], st);
        leg.orphan = kind;
        ++out.orphans;
        ++out.orphans_by_kind[static_cast<int>(kind)];
      }
      span.legs.push_back(leg);
    }
    out.messages.push_back(std::move(span));
  }
  return out;
}

// --------------------------------------------------------------------------
// Derived samples, report, artifact rows
// --------------------------------------------------------------------------

namespace {

struct PhaseSamples {
  std::vector<sim::Time> sender_queue, wire, gate, e2e;
  std::vector<sim::Time> v_blocking, v_sync, v_mbr, v_install, v_e2e;
};

PhaseSamples collect_samples(const TraceAnalysis& a) {
  PhaseSamples s;
  for (const MsgSpan& m : a.messages) {
    if (m.wire_send_at >= 0 && m.submit_at >= 0) {
      s.sender_queue.push_back(m.wire_send_at - m.submit_at);
    }
    for (const DeliveryLeg& leg : m.legs) {
      if (leg.deliver_at < 0) continue;
      s.e2e.push_back(leg.deliver_at - m.submit_at);
      if (leg.recv_at >= 0) {
        s.gate.push_back(leg.deliver_at - leg.recv_at);
        if (m.wire_send_at >= 0) {
          s.wire.push_back(leg.recv_at - m.wire_send_at);
        }
      }
    }
  }
  for (const ViewSpan& v : a.views) {
    if (v.start_change_at < 0 || v.installed_at < 0) continue;
    const ViewPhases ph = view_phases(v);
    s.v_blocking.push_back(ph.blocking);
    s.v_sync.push_back(ph.sync_send);
    s.v_mbr.push_back(ph.membership_wait);
    s.v_install.push_back(ph.install_wait);
    s.v_e2e.push_back(ph.total);
  }
  return s;
}

void phase_row(std::ostream& os, const char* name, const PhaseStats& s) {
  os << "  " << std::left << std::setw(16) << name << std::right
     << std::setw(8) << s.count << std::setw(10) << s.p50 << std::setw(10)
     << s.p95 << std::setw(10) << s.p99 << std::setw(10) << s.max << "\n";
}

void phase_header(std::ostream& os) {
  os << "  " << std::left << std::setw(16) << "phase" << std::right
     << std::setw(8) << "count" << std::setw(10) << "p50" << std::setw(10)
     << "p95" << std::setw(10) << "p99" << std::setw(10) << "max" << "\n";
}

struct SlowLeg {
  const MsgSpan* msg;
  const DeliveryLeg* leg;
  sim::Time e2e;
};

}  // namespace

void write_trace_report(const TraceAnalysis& a, std::ostream& os, int top_k) {
  PhaseSamples s = collect_samples(a);

  os << "vsgc_trace causal span report\n";
  os << "=============================\n";
  os << "events:                " << a.events << "\n";
  os << "trace end (us):        " << a.end_at << "\n";
  os << "messages:              " << a.messages.size() << "\n";
  os << "view installations:    " << a.views.size() << "\n";
  os << "membership rounds:     " << a.mbr_rounds << " started, "
     << a.mbr_views_formed << " views formed, " << a.mbr_suspicions
     << " suspicions\n";
  os << "notifications dropped: " << a.notify_drops << "\n";
  os << "retransmitted packets: " << a.retransmit_packets << "\n";
  os << "forward copies:        " << a.forward_copies << "\n";
  os << "\n";

  os << "message delivery accounting\n";
  os << "---------------------------\n";
  os << "expected legs:  " << a.legs_expected << "\n";
  os << "delivered legs: " << a.legs_delivered << "\n";
  os << "orphans:        " << a.orphans << "\n";
  for (int k = 0; k < kOrphanKinds; ++k) {
    os << "  " << std::left << std::setw(17)
       << to_string(static_cast<OrphanKind>(k)) << std::right
       << a.orphans_by_kind[k] << "\n";
  }
  os << "\n";

  os << "message phase latency (us)\n";
  os << "--------------------------\n";
  phase_header(os);
  phase_row(os, "sender_queue", phase_stats(s.sender_queue));
  phase_row(os, "wire", phase_stats(s.wire));
  phase_row(os, "gate", phase_stats(s.gate));
  phase_row(os, "end_to_end", phase_stats(s.e2e));
  os << "\n";

  os << "view-change phase latency (us)\n";
  os << "------------------------------\n";
  phase_header(os);
  phase_row(os, "blocking", phase_stats(s.v_blocking));
  phase_row(os, "sync_send", phase_stats(s.v_sync));
  phase_row(os, "membership_wait", phase_stats(s.v_mbr));
  phase_row(os, "install_wait", phase_stats(s.v_install));
  phase_row(os, "end_to_end", phase_stats(s.v_e2e));
  os << "\n";

  // Critical paths: the slowest delivered legs, decomposed. Deterministic
  // order: latency desc, then (sender, uid, receiver) asc.
  std::vector<SlowLeg> slow;
  for (const MsgSpan& m : a.messages) {
    for (const DeliveryLeg& leg : m.legs) {
      if (leg.deliver_at < 0) continue;
      slow.push_back({&m, &leg, leg.deliver_at - m.submit_at});
    }
  }
  std::sort(slow.begin(), slow.end(), [](const SlowLeg& x, const SlowLeg& y) {
    if (x.e2e != y.e2e) return x.e2e > y.e2e;
    if (x.msg->id != y.msg->id) return x.msg->id < y.msg->id;
    return x.leg->receiver < y.leg->receiver;
  });
  os << "slowest deliveries (critical path)\n";
  os << "----------------------------------\n";
  const std::size_t n_slow =
      std::min<std::size_t>(slow.size(), top_k < 0 ? 0 : top_k);
  for (std::size_t i = 0; i < n_slow; ++i) {
    const SlowLeg& sl = slow[i];
    const MsgSpan& m = *sl.msg;
    const DeliveryLeg& leg = *sl.leg;
    os << "  " << (i + 1) << ". " << to_string(m.id) << " -> "
       << vsgc::to_string(leg.receiver) << ": e2e=" << sl.e2e
       << "  submit=" << m.submit_at;
    if (m.wire_send_at >= 0) {
      os << " queue=" << (m.wire_send_at - m.submit_at);
    }
    if (leg.recv_at >= 0) {
      if (m.wire_send_at >= 0) os << " wire=" << (leg.recv_at - m.wire_send_at);
      os << " gate=" << (leg.deliver_at - leg.recv_at);
    }
    if (leg.via_forward) os << "  (forwarded)";
    os << "\n";
  }
  if (slow.empty()) os << "  (no delivered legs)\n";
  os << "\n";

  os << "orphaned legs\n";
  os << "-------------\n";
  if (a.orphans == 0) {
    os << "  (none: every expected delivery completed)\n";
    return;
  }
  std::size_t listed = 0;
  const std::size_t cap = top_k < 0 ? 0 : static_cast<std::size_t>(top_k) * 4;
  for (const MsgSpan& m : a.messages) {
    for (const DeliveryLeg& leg : m.legs) {
      if (!leg.orphan) continue;
      if (listed < cap) {
        os << "  " << to_string(m.id) << " -> "
           << vsgc::to_string(leg.receiver) << ": " << to_string(*leg.orphan)
           << "  (submitted at " << m.submit_at << " in view "
           << vsgc::to_string(m.view.id) << ")\n";
      }
      ++listed;
    }
  }
  if (listed > cap) {
    os << "  ... and " << (listed - cap) << " more\n";
  }
}

void append_tracelat_results(const TraceAnalysis& a, BenchArtifact& artifact) {
  PhaseSamples s = collect_samples(a);

  JsonValue& summary = artifact.add_result();
  summary["row"] = "summary";
  summary["messages"] = static_cast<std::int64_t>(a.messages.size());
  summary["legs_expected"] = static_cast<std::int64_t>(a.legs_expected);
  summary["legs_delivered"] = static_cast<std::int64_t>(a.legs_delivered);
  summary["orphans"] = static_cast<std::int64_t>(a.orphans);
  summary["orphans_unexplained"] = static_cast<std::int64_t>(a.unexplained());
  summary["retransmit_packets"] =
      static_cast<std::int64_t>(a.retransmit_packets);
  summary["forward_copies"] = static_cast<std::int64_t>(a.forward_copies);
  summary["view_changes"] = static_cast<std::int64_t>(a.views.size());
  summary["end_at_us"] = static_cast<std::int64_t>(a.end_at);

  const auto phase = [&](const char* row, const char* name,
                         std::vector<sim::Time>& samples) {
    const PhaseStats st = phase_stats(samples);
    JsonValue& r = artifact.add_result();
    r["row"] = row;
    r["phase"] = name;
    r["count"] = static_cast<std::int64_t>(st.count);
    r["p50_us"] = static_cast<std::int64_t>(st.p50);
    r["p95_us"] = static_cast<std::int64_t>(st.p95);
    r["p99_us"] = static_cast<std::int64_t>(st.p99);
    r["max_us"] = static_cast<std::int64_t>(st.max);
  };
  phase("msg_phase", "sender_queue", s.sender_queue);
  phase("msg_phase", "wire", s.wire);
  phase("msg_phase", "gate", s.gate);
  phase("msg_phase", "end_to_end", s.e2e);
  phase("view_phase", "blocking", s.v_blocking);
  phase("view_phase", "sync_send", s.v_sync);
  phase("view_phase", "membership_wait", s.v_mbr);
  phase("view_phase", "install_wait", s.v_install);
  phase("view_phase", "end_to_end", s.v_e2e);
}

// --------------------------------------------------------------------------
// Streaming collector
// --------------------------------------------------------------------------

SpanCollector::SpanCollector(Registry& registry)
    : reg_(registry),
      sender_queue_(registry.histogram("span.msg.sender_queue_us")),
      wire_(registry.histogram("span.msg.wire_us")),
      gate_(registry.histogram("span.msg.gate_us")),
      e2e_(registry.histogram("span.msg.e2e_us")),
      view_blocking_(registry.histogram("span.view.blocking_us")),
      view_sync_send_(registry.histogram("span.view.sync_send_us")),
      view_membership_wait_(
          registry.histogram("span.view.membership_wait_us")),
      view_install_wait_(registry.histogram("span.view.install_wait_us")),
      view_e2e_(registry.histogram("span.view.e2e_us")),
      retransmits_(registry.counter("span.retransmit_packets")),
      forwards_(registry.counter("span.forward_copies")) {}

void SpanCollector::on_event(const spec::Event& ev) {
  const spec::EventBody& b = ev.body;

  if (const auto* e = std::get_if<spec::GcsDeliver>(&b)) {
    auto it = msgs_.find(MsgTraceId{e->msg.sender, e->msg.uid});
    if (it == msgs_.end()) return;
    MsgState& m = it->second;
    if (m.submit >= 0) e2e_.observe(ev.at - m.submit);
    if (auto r = m.recv.find(e->p); r != m.recv.end()) {
      gate_.observe(ev.at - r->second);
    }
    if (++m.delivered >= m.expected) msgs_.erase(it);
    return;
  }
  if (const auto* e = std::get_if<spec::GcsSend>(&b)) {
    MsgState& m = msgs_[MsgTraceId{e->msg.sender, e->msg.uid}];
    m.submit = ev.at;
    auto it = procs_.find(e->p);
    m.expected = it == procs_.end() ? 1 : it->second.view_size;
    return;
  }
  if (const auto* e = std::get_if<spec::MsgWireSend>(&b)) {
    auto it = msgs_.find(MsgTraceId{e->sender, e->uid});
    if (it == msgs_.end()) return;
    MsgState& m = it->second;
    if (m.wire_send < 0) {
      m.wire_send = ev.at;
      if (m.submit >= 0) sender_queue_.observe(ev.at - m.submit);
    }
    return;
  }
  if (const auto* e = std::get_if<spec::MsgRecv>(&b)) {
    auto it = msgs_.find(MsgTraceId{e->sender, e->uid});
    if (it == msgs_.end()) return;
    MsgState& m = it->second;
    if (m.recv.try_emplace(e->p, ev.at).second && m.wire_send >= 0) {
      wire_.observe(ev.at - m.wire_send);
    }
    return;
  }
  if (const auto* e = std::get_if<spec::GcsView>(&b)) {
    ProcState& proc = procs_[e->p];
    proc.view_size = e->view.members.size();
    if (proc.change_open && proc.change.start_change_at >= 0) {
      ViewSpan span = proc.change;
      span.p = e->p;
      span.view = e->view.id;
      span.installed_at = ev.at;
      auto mv = proc.mbr_view_at.find(e->view.id);
      span.mbr_view_at = mv == proc.mbr_view_at.end() ? -1 : mv->second;
      const ViewPhases ph = view_phases(span);
      view_blocking_.observe(ph.blocking);
      view_sync_send_.observe(ph.sync_send);
      view_membership_wait_.observe(ph.membership_wait);
      view_install_wait_.observe(ph.install_wait);
      view_e2e_.observe(ph.total);
    }
    proc.change_open = false;
    proc.change = ViewSpan{};
    std::erase_if(proc.mbr_view_at, [&](const auto& entry) {
      return !(e->view.id < entry.first);
    });
    return;
  }
  if (const auto* e = std::get_if<spec::MbrStartChange>(&b)) {
    ProcState& proc = procs_[e->p];
    if (!proc.change_open) {
      proc.change_open = true;
      proc.change.start_change_at = ev.at;
    }
    return;
  }
  if (const auto* e = std::get_if<spec::GcsBlockOk>(&b)) {
    ProcState& proc = procs_[e->p];
    if (proc.change_open && proc.change.block_ok_at < 0) {
      proc.change.block_ok_at = ev.at;
    }
    return;
  }
  if (const auto* e = std::get_if<spec::SyncSent>(&b)) {
    ProcState& proc = procs_[e->p];
    if (proc.change_open && proc.change.sync_sent_at < 0) {
      proc.change.sync_sent_at = ev.at;
    }
    return;
  }
  if (const auto* e = std::get_if<spec::MbrView>(&b)) {
    procs_[e->p].mbr_view_at.try_emplace(e->view.id, ev.at);
    return;
  }
  if (const auto* e = std::get_if<spec::Crash>(&b)) {
    procs_.erase(e->p);
    return;
  }
  if (const auto* e = std::get_if<spec::XportRetransmit>(&b)) {
    retransmits_.inc(e->packets);
    return;
  }
  if (const auto* e = std::get_if<spec::MsgForward>(&b)) {
    forwards_.inc(e->copies);
    return;
  }
  if (const auto* e = std::get_if<spec::MbrPhase>(&b)) {
    reg_.counter("span.mbr." + e->phase).inc();
    return;
  }
}

}  // namespace vsgc::obs
