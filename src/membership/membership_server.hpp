// Dedicated membership server (the client-server architecture of [27]).
//
// Each client process attaches to exactly one server. Servers monitor their
// local clients and each other with a timeout failure detector and run a
// one-round proposal-exchange algorithm:
//
//   1. On any connectivity-estimate change, the server advances to a fresh
//      ROUND: it issues a new start_change (new locally-unique cid per local
//      client) to its alive local clients and multicasts a round-tagged
//      Proposal carrying its alive-client set and those cids to all servers
//      it deems alive. A server issues at most one proposal per round;
//      receiving a higher-round proposal makes it catch up to that round.
//   2. The round-r view forms when every server in the participant set P has
//      proposed for round r with participants == P. Because per-(server,
//      round) proposals are immutable, the view is a deterministic function
//      of (r, P): id = (r, min P), members = union of local_alive, startId =
//      union of proposal cids — every server that forms it delivers the
//      IDENTICAL view, including the identical startId map, which is what
//      the GCS virtual synchrony algorithm keys on. Disjoint partitions have
//      disjoint server sets, so concurrently formed views never collide.
//   3. If the estimate drifts mid-round, the server moves to a new round
//      with fresh start_changes, so a delivered view always reflects the
//      latest start_change sent to each local client (the MBRSHP spec,
//      Figure 2).
//
// The server never delivers an obsolete view: a formed view that no longer
// matches the current estimate triggers a new round instead of delivery.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>

#include "membership/failure_detector.hpp"
#include "membership/view.hpp"
#include "membership/wire.hpp"
#include "net/node.hpp"
#include "sim/simulator.hpp"
#include "spec/events.hpp"
#include "transport/co_rfifo.hpp"

namespace vsgc::membership {

class MembershipServer {
 public:
  struct Config {
    sim::Time heartbeat_interval = 50 * sim::kMillisecond;
    FailureDetector::Config fd;
  };

  struct Stats {
    std::uint64_t rounds_started = 0;
    std::uint64_t views_formed = 0;
    std::uint64_t proposals_sent = 0;
    std::uint64_t start_changes_sent = 0;
    std::uint64_t obsolete_views_suppressed = 0;
    std::uint64_t full_views_sent = 0;   ///< O(N) ViewDelivery messages
    std::uint64_t delta_views_sent = 0;  ///< O(churn) ViewDelta messages
    /// Wire bytes saved by delta encoding vs. sending every view in full.
    std::uint64_t view_bytes_saved = 0;
  };

  MembershipServer(sim::Simulator& sim, net::Network& network, ServerId self,
                   std::set<ServerId> all_servers, Config config);
  MembershipServer(sim::Simulator& sim, net::Network& network, ServerId self,
                   std::set<ServerId> all_servers)
      : MembershipServer(sim, network, self, std::move(all_servers), Config()) {}

  /// Pre-register a client as belonging to this server (initially down until
  /// its first heartbeat, or up immediately if `initially_alive`).
  void add_client(ProcessId p, bool initially_alive = false);

  void start();

  const Stats& stats() const { return stats_; }
  transport::CoRfifoTransport& transport() { return *transport_; }
  ServerId self() const { return self_; }

  /// Current last formed epoch (exposed for tests/benches).
  std::uint64_t last_epoch() const { return last_epoch_; }

  /// Optional span instrumentation (DESIGN.md §10): when set AND the bus has
  /// lifecycle on, the server emits spec::MbrPhase markers ("suspicion",
  /// "round_start", "view_formed") keyed by its NodeId, and the server's
  /// transport emits retransmission events. Zero-cost otherwise.
  void set_trace(spec::TraceBus* trace) {
    trace_ = trace;
    transport_->set_trace(trace);
  }

 private:
  void emit_phase(const char* phase, std::uint64_t round) {
    if (trace_ != nullptr && trace_->lifecycle()) {
      trace_->emit(sim_.now(),
                   spec::MbrPhase{net::node_of(self_).value, phase, round});
    }
  }

  struct ClientRecord {
    StartChangeId last_cid{0};
    std::set<ProcessId> last_sc_set;  ///< set in the latest start_change
    bool change_started = false;      ///< MBRSHP mode[p] == change_started
    ViewId last_view_id = ViewId::zero();
    std::uint64_t incarnation = 0;  ///< client life id from its heartbeats
    /// Delta-encoding base (DESIGN.md §13): the last view sent to this
    /// client over the reliable stream. Cleared whenever in-order receipt is
    /// no longer certain (incarnation change, client dropped from a view or
    /// the failure detector's alive set) so the next view goes out full.
    std::optional<View> last_view_sent;
  };

  void on_deliver(net::NodeId from, const std::any& payload);
  void on_raw(net::NodeId from, const std::any& payload);
  void on_estimate_change();
  /// Start (or catch up to) a round: round_ = max(round_+1, min_round,
  /// last_epoch_+1), fresh cids, start_changes, and a proposal for it.
  void reconfigure(std::uint64_t min_round = 0);
  void try_form();
  void deliver_view(const View& v);
  std::set<ProcessId> alive_local_clients() const;
  std::set<ServerId> alive_servers() const;
  std::set<ProcessId> estimate() const;
  void update_reliable_set();
  void heartbeat_tick();

  sim::Simulator& sim_;
  net::Network& network_;
  ServerId self_;
  std::set<ServerId> all_servers_;
  Config config_;
  Stats stats_;

  std::unique_ptr<transport::CoRfifoTransport> transport_;
  FailureDetector fd_;
  spec::TraceBus* trace_ = nullptr;

  std::map<ProcessId, ClientRecord> clients_;  ///< local clients
  std::map<ServerId, wire::Proposal> proposals_;  ///< highest-round per server
  std::uint64_t round_ = 0;       ///< our current agreement round
  std::uint64_t last_epoch_ = 0;  ///< epoch of the last view we formed
  std::optional<View> last_formed_;
  sim::TimerHandle heartbeat_timer_;
};

}  // namespace vsgc::membership
