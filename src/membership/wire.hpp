// Wire messages of the client-server membership protocol (our Moshe-style
// [27] implementation of the MBRSHP spec). Each carries a binary codec; the
// round-trip is validated by tests/codec_test.cpp.
#pragma once

#include <cstdint>
#include <map>
#include <set>

#include "membership/view.hpp"
#include "util/ids.hpp"
#include "util/serialization.hpp"

namespace vsgc::membership::wire {

enum class Tag : std::uint8_t {
  kStartChange = 16,
  kViewDelivery = 17,
  kProposal = 18,
  kHeartbeat = 19,
  kLeave = 20,
};

/// Server -> client: the membership service is attempting to form a new view.
struct StartChange {
  StartChangeId cid{};
  std::set<ProcessId> set{};

  void encode(Encoder& enc) const {
    enc.put_u8(static_cast<std::uint8_t>(Tag::kStartChange));
    enc.put_start_change_id(cid);
    enc.put_process_set(set);
  }

  static StartChange decode(Decoder& dec) {
    StartChange sc;
    sc.cid = dec.get_start_change_id();
    sc.set = dec.get_process_set();
    return sc;
  }

  std::size_t wire_size() const {
    Encoder enc;
    encode(enc);
    return enc.size();
  }

  friend bool operator==(const StartChange&, const StartChange&) = default;
};

/// Server -> client: the agreed-upon new view.
struct ViewDelivery {
  View view{};

  void encode(Encoder& enc) const {
    enc.put_u8(static_cast<std::uint8_t>(Tag::kViewDelivery));
    view.encode(enc);
  }

  static ViewDelivery decode(Decoder& dec) {
    return ViewDelivery{View::decode(dec)};
  }

  std::size_t wire_size() const { return 1 + view.wire_size(); }

  friend bool operator==(const ViewDelivery&, const ViewDelivery&) = default;
};

/// Server -> server: round-tagged membership proposal. A proposal doubles as
/// the proposer's connectivity estimate: `local_alive` is the set of this
/// server's clients it currently believes alive.
///
/// `round` identifies the agreement round. A server issues AT MOST ONE
/// proposal per round, so the set {proposal(s, r) | s in participants} is
/// globally unique — every server that forms the round-r view computes the
/// IDENTICAL view (id = (r, min participant), members/startId from the
/// proposals). This is what makes concurrently formed views collision-free.
struct Proposal {
  ServerId from{};
  std::uint64_t round = 0;  ///< agreement round == epoch of the formed view
  std::set<ProcessId> local_alive{};
  std::map<ProcessId, StartChangeId> cids{};  ///< latest start_change ids issued
  std::set<ServerId> participants{};        ///< servers the proposer deems alive

  void encode(Encoder& enc) const {
    enc.put_u8(static_cast<std::uint8_t>(Tag::kProposal));
    enc.put_u32(from.value);
    enc.put_u64(round);
    enc.put_process_set(local_alive);
    enc.put_u32(static_cast<std::uint32_t>(cids.size()));
    for (const auto& [p, cid] : cids) {
      enc.put_process(p);
      enc.put_start_change_id(cid);
    }
    enc.put_u32(static_cast<std::uint32_t>(participants.size()));
    for (ServerId s : participants) enc.put_u32(s.value);
  }

  static Proposal decode(Decoder& dec) {
    Proposal p;
    p.from = ServerId{dec.get_u32()};
    p.round = dec.get_u64();
    p.local_alive = dec.get_process_set();
    const std::uint32_t n = dec.get_u32();
    for (std::uint32_t i = 0; i < n; ++i) {
      ProcessId q = dec.get_process();
      p.cids[q] = dec.get_start_change_id();
    }
    const std::uint32_t m = dec.get_u32();
    for (std::uint32_t i = 0; i < m; ++i) p.participants.insert(ServerId{dec.get_u32()});
    return p;
  }

  std::size_t wire_size() const {
    Encoder enc;
    encode(enc);
    return enc.size();
  }

  friend bool operator==(const Proposal&, const Proposal&) = default;
};

/// Raw (unreliable) heartbeat; a client heartbeat doubles as attach request.
///
/// `incarnation` identifies the sender's current life (Section 8): a client
/// picks a fresh value on every start/recovery. A server that sees a client's
/// incarnation change knows the client lost its state — even if the failure
/// detector never noticed the blip — and starts a fresh membership round so
/// the client receives a new (monotonically larger) view.
struct Heartbeat {
  bool from_server = false;
  std::uint32_t id = 0;             ///< ProcessId or ServerId value
  std::uint64_t incarnation = 0;    ///< sender's life identifier

  static constexpr std::size_t kWireSize = 14;

  void encode(Encoder& enc) const {
    enc.put_u8(static_cast<std::uint8_t>(Tag::kHeartbeat));
    enc.put_u8(from_server ? 1 : 0);
    enc.put_u32(id);
    enc.put_u64(incarnation);
  }

  static Heartbeat decode(Decoder& dec) {
    Heartbeat hb;
    hb.from_server = dec.get_u8() != 0;
    hb.id = dec.get_u32();
    hb.incarnation = dec.get_u64();
    return hb;
  }

  friend bool operator==(const Heartbeat&, const Heartbeat&) = default;
};

/// Client -> server (raw): graceful departure; the server excludes the
/// client immediately instead of waiting out the failure-detector timeout.
struct Leave {
  ProcessId who{};

  static constexpr std::size_t kWireSize = 5;

  void encode(Encoder& enc) const {
    enc.put_u8(static_cast<std::uint8_t>(Tag::kLeave));
    enc.put_process(who);
  }

  static Leave decode(Decoder& dec) { return Leave{dec.get_process()}; }

  friend bool operator==(const Leave&, const Leave&) = default;
};

}  // namespace vsgc::membership::wire
