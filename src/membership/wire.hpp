// Wire messages of the client-server membership protocol (our Moshe-style
// [27] implementation of the MBRSHP spec). Each carries a binary codec; the
// round-trip is validated by tests/codec_test.cpp.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>

#include "membership/view.hpp"
#include "util/ids.hpp"
#include "util/serialization.hpp"

namespace vsgc::membership::wire {

enum class Tag : std::uint8_t {
  kStartChange = 16,
  kViewDelivery = 17,
  kProposal = 18,
  kHeartbeat = 19,
  kLeave = 20,
  kViewDelta = 21,
};

/// Server -> client: the membership service is attempting to form a new view.
struct StartChange {
  StartChangeId cid{};
  std::set<ProcessId> set{};

  void encode(Encoder& enc) const {
    enc.put_u8(static_cast<std::uint8_t>(Tag::kStartChange));
    enc.put_start_change_id(cid);
    enc.put_process_set(set);
  }

  static StartChange decode(Decoder& dec) {
    StartChange sc;
    sc.cid = dec.get_start_change_id();
    sc.set = dec.get_process_set();
    return sc;
  }

  std::size_t wire_size() const {
    Encoder enc;
    encode(enc);
    return enc.size();
  }

  friend bool operator==(const StartChange&, const StartChange&) = default;
};

/// Server -> client: the agreed-upon new view.
struct ViewDelivery {
  View view{};

  void encode(Encoder& enc) const {
    enc.put_u8(static_cast<std::uint8_t>(Tag::kViewDelivery));
    view.encode(enc);
  }

  static ViewDelivery decode(Decoder& dec) {
    return ViewDelivery{View::decode(dec)};
  }

  std::size_t wire_size() const { return 1 + view.wire_size(); }

  friend bool operator==(const ViewDelivery&, const ViewDelivery&) = default;
};

/// Server -> client: a new view expressed as a delta against the view the
/// server last sent this client (DESIGN.md §13). Clients identify views by
/// id, and CO_RFIFO delivers view notifications in order, so the server
/// knows the client's current view and can ship only the churn:
///
///   members  = base.members − leaves ∪ keys(joins)
///   start_id = base.start_id + cid_bump for survivors (the paper's servers
///              issue one fresh cid per client per round, so survivors
///              usually advance in lockstep), patched by `exceptions`,
///              absolute for joins.
///
/// Wire cost is O(churn + exceptions) instead of O(N). The server falls
/// back to a full ViewDelivery whenever it has no base for the client (new
/// attach, crash/recovery, lost unacked suffix) or the delta would not be
/// smaller; a client that cannot apply a delta (base mismatch after a lost
/// suffix) drops it and resyncs, forcing the server back to full form.
struct ViewDelta {
  ViewId id{};                 ///< the new view's id
  ViewId base{};               ///< id of the view this delta applies to
  std::uint64_t cid_bump = 0;  ///< common start-id advance for survivors
  std::set<ProcessId> leaves{};
  std::map<ProcessId, StartChangeId> joins{};
  std::map<ProcessId, StartChangeId> exceptions{};

  /// Express `next` as a delta over `base_view` (any two well-formed views).
  static ViewDelta diff(const View& base_view, const View& next) {
    ViewDelta d;
    d.id = next.id;
    d.base = base_view.id;
    for (ProcessId p : base_view.members) {
      if (!next.members.contains(p)) d.leaves.insert(p);
    }
    bool bump_set = false;
    for (ProcessId p : next.members) {
      const StartChangeId cid = next.start_id.at(p);
      if (!base_view.members.contains(p)) {
        d.joins[p] = cid;
        continue;
      }
      const std::uint64_t b = base_view.start_id.at(p).value;
      if (!bump_set && cid.value >= b) {
        // The first survivor fixes the common bump; outliers become
        // exceptions below (ordered iteration keeps this deterministic).
        d.cid_bump = cid.value - b;
        bump_set = true;
      }
      if (b + d.cid_bump != cid.value) d.exceptions[p] = cid;
    }
    return d;
  }

  /// Reconstruct the full view, or nullopt if the delta does not apply to
  /// `base_view` (id mismatch, a leave that is not a member, a join that
  /// already is one) — the client-side forged/stale-delta rejection path.
  std::optional<View> apply(const View& base_view) const {
    if (base_view.id != base) return std::nullopt;
    View v;
    v.id = id;
    v.members = base_view.members;
    for (ProcessId p : leaves) {
      if (v.members.erase(p) == 0) return std::nullopt;
    }
    for (ProcessId p : v.members) {
      v.start_id[p] =
          StartChangeId{base_view.start_id.at(p).value + cid_bump};
    }
    for (const auto& [p, cid] : exceptions) {
      auto it = v.start_id.find(p);
      if (it == v.start_id.end()) return std::nullopt;
      it->second = cid;
    }
    for (const auto& [p, cid] : joins) {
      if (!v.members.insert(p).second) return std::nullopt;
      v.start_id[p] = cid;
    }
    if (v.members.empty()) return std::nullopt;
    return v;
  }

  void encode(Encoder& enc) const {
    enc.put_u8(static_cast<std::uint8_t>(Tag::kViewDelta));
    enc.put_view_id(id);
    enc.put_view_id(base);
    enc.put_u64(cid_bump);
    enc.put_process_set(leaves);
    enc.put_u32(static_cast<std::uint32_t>(joins.size()));
    for (const auto& [p, cid] : joins) {
      enc.put_process(p);
      enc.put_start_change_id(cid);
    }
    enc.put_u32(static_cast<std::uint32_t>(exceptions.size()));
    for (const auto& [p, cid] : exceptions) {
      enc.put_process(p);
      enc.put_start_change_id(cid);
    }
  }

  static ViewDelta decode(Decoder& dec) {
    ViewDelta d;
    d.id = dec.get_view_id();
    d.base = dec.get_view_id();
    if (!(d.base < d.id)) {
      throw DecodeError("view delta must advance the view id");
    }
    d.cid_bump = dec.get_u64();
    d.leaves = dec.get_process_set();
    const std::uint32_t nj = dec.get_u32();
    for (std::uint32_t i = 0; i < nj; ++i) {
      ProcessId p = dec.get_process();
      d.joins[p] = dec.get_start_change_id();
    }
    const std::uint32_t ne = dec.get_u32();
    for (std::uint32_t i = 0; i < ne; ++i) {
      ProcessId p = dec.get_process();
      d.exceptions[p] = dec.get_start_change_id();
    }
    for (ProcessId p : d.leaves) {
      if (d.joins.contains(p)) {
        throw DecodeError("view delta joins and leaves overlap");
      }
    }
    return d;
  }

  std::size_t wire_size() const {
    Encoder enc;
    encode(enc);
    return enc.size();
  }

  friend bool operator==(const ViewDelta&, const ViewDelta&) = default;
};

/// Server -> server: round-tagged membership proposal. A proposal doubles as
/// the proposer's connectivity estimate: `local_alive` is the set of this
/// server's clients it currently believes alive.
///
/// `round` identifies the agreement round. A server issues AT MOST ONE
/// proposal per round, so the set {proposal(s, r) | s in participants} is
/// globally unique — every server that forms the round-r view computes the
/// IDENTICAL view (id = (r, min participant), members/startId from the
/// proposals). This is what makes concurrently formed views collision-free.
struct Proposal {
  ServerId from{};
  std::uint64_t round = 0;  ///< agreement round == epoch of the formed view
  std::set<ProcessId> local_alive{};
  std::map<ProcessId, StartChangeId> cids{};  ///< latest start_change ids issued
  std::set<ServerId> participants{};        ///< servers the proposer deems alive

  void encode(Encoder& enc) const {
    enc.put_u8(static_cast<std::uint8_t>(Tag::kProposal));
    enc.put_u32(from.value);
    enc.put_u64(round);
    enc.put_process_set(local_alive);
    enc.put_u32(static_cast<std::uint32_t>(cids.size()));
    for (const auto& [p, cid] : cids) {
      enc.put_process(p);
      enc.put_start_change_id(cid);
    }
    enc.put_u32(static_cast<std::uint32_t>(participants.size()));
    for (ServerId s : participants) enc.put_u32(s.value);
  }

  static Proposal decode(Decoder& dec) {
    Proposal p;
    p.from = ServerId{dec.get_u32()};
    p.round = dec.get_u64();
    p.local_alive = dec.get_process_set();
    const std::uint32_t n = dec.get_u32();
    for (std::uint32_t i = 0; i < n; ++i) {
      ProcessId q = dec.get_process();
      p.cids[q] = dec.get_start_change_id();
    }
    const std::uint32_t m = dec.get_u32();
    for (std::uint32_t i = 0; i < m; ++i) p.participants.insert(ServerId{dec.get_u32()});
    return p;
  }

  std::size_t wire_size() const {
    Encoder enc;
    encode(enc);
    return enc.size();
  }

  friend bool operator==(const Proposal&, const Proposal&) = default;
};

/// Raw (unreliable) heartbeat; a client heartbeat doubles as attach request.
///
/// `incarnation` identifies the sender's current life (Section 8): a client
/// picks a fresh value on every start/recovery. A server that sees a client's
/// incarnation change knows the client lost its state — even if the failure
/// detector never noticed the blip — and starts a fresh membership round so
/// the client receives a new (monotonically larger) view.
struct Heartbeat {
  bool from_server = false;
  std::uint32_t id = 0;             ///< ProcessId or ServerId value
  std::uint64_t incarnation = 0;    ///< sender's life identifier

  static constexpr std::size_t kWireSize = 14;

  void encode(Encoder& enc) const {
    enc.put_u8(static_cast<std::uint8_t>(Tag::kHeartbeat));
    enc.put_u8(from_server ? 1 : 0);
    enc.put_u32(id);
    enc.put_u64(incarnation);
  }

  static Heartbeat decode(Decoder& dec) {
    Heartbeat hb;
    hb.from_server = dec.get_u8() != 0;
    hb.id = dec.get_u32();
    hb.incarnation = dec.get_u64();
    return hb;
  }

  friend bool operator==(const Heartbeat&, const Heartbeat&) = default;
};

/// Client -> server (raw): graceful departure; the server excludes the
/// client immediately instead of waiting out the failure-detector timeout.
struct Leave {
  ProcessId who{};

  static constexpr std::size_t kWireSize = 5;

  void encode(Encoder& enc) const {
    enc.put_u8(static_cast<std::uint8_t>(Tag::kLeave));
    enc.put_process(who);
  }

  static Leave decode(Decoder& dec) { return Leave{dec.get_process()}; }

  friend bool operator==(const Leave&, const Leave&) = default;
};

}  // namespace vsgc::membership::wire
