#include "membership/membership_client.hpp"

#include "util/logging.hpp"

namespace vsgc::membership {

bool MembershipClient::handle(net::NodeId from, const std::any& payload) {
  if (!net::is_server_node(from)) return false;

  if (const auto* sc = std::any_cast<wire::StartChange>(&payload)) {
    if (!running_) return true;
    // Local uniqueness / monotonicity of cids (guaranteed by the server; the
    // guard protects against stale duplicates after re-attachment).
    if (!(last_cid_ < sc->cid)) {
      emit_notify_drop(sc->cid.value);
      return true;
    }
    last_cid_ = sc->cid;
    VSGC_TRACE("mbr-client", to_string(self_) << " start_change "
                                              << to_string(sc->cid));
    for (Listener* l : listeners_) l->on_start_change(sc->cid, sc->set);
    return true;
  }

  if (const auto* vd = std::any_cast<wire::ViewDelivery>(&payload)) {
    if (!running_) return true;
    const View& v = vd->view;
    // Local Monotonicity / Self Inclusion / latest-start_change guards: a
    // failed guard suppresses the notification (and marks the drop when span
    // instrumentation is on).
    if (!(last_view_id_ < v.id) || !v.contains(self_) ||
        v.start_id_of(self_) != last_cid_) {
      emit_notify_drop(v.id.epoch);
      return true;
    }
    last_view_id_ = v.id;
    last_notified_id_ = v.id;
    last_view_ = v;
    VSGC_TRACE("mbr-client", to_string(self_) << " view " << to_string(v));
    for (Listener* l : listeners_) l->on_view(v);
    return true;
  }

  if (const auto* dv = std::any_cast<wire::ViewDelta>(&payload)) {
    if (!running_) return true;
    // Delta chain integrity (DESIGN.md §13): the delta must apply to exactly
    // the view we last accepted. A mismatch means the chain broke — a view
    // notification was lost with a dropped stream suffix, or the delta is
    // forged/stale. Drop it and resync: the incarnation bump makes the
    // server discard its delta base and send the next view in full.
    std::optional<View> v;
    if (last_view_id_ == dv->base) v = dv->apply(last_view_);
    if (!v.has_value()) {
      emit_notify_drop(dv->id.epoch);
      resync();
      return true;
    }
    // Same guards as a full ViewDelivery on the reconstructed view.
    if (!(last_view_id_ < v->id) || !v->contains(self_) ||
        v->start_id_of(self_) != last_cid_) {
      emit_notify_drop(v->id.epoch);
      return true;
    }
    last_view_id_ = v->id;
    last_notified_id_ = v->id;
    last_view_ = *v;
    VSGC_TRACE("mbr-client", to_string(self_) << " view(delta) "
                                              << to_string(*v));
    for (Listener* l : listeners_) l->on_view(last_view_);
    return true;
  }

  if (std::any_cast<wire::Heartbeat>(&payload) != nullptr) return true;
  return false;
}

}  // namespace vsgc::membership
