#include "membership/membership_client.hpp"

#include "util/logging.hpp"

namespace vsgc::membership {

bool MembershipClient::handle(net::NodeId from, const std::any& payload) {
  if (!net::is_server_node(from)) return false;

  if (const auto* sc = std::any_cast<wire::StartChange>(&payload)) {
    if (!running_) return true;
    // Local uniqueness / monotonicity of cids (guaranteed by the server; the
    // guard protects against stale duplicates after re-attachment).
    if (!(last_cid_ < sc->cid)) return true;
    last_cid_ = sc->cid;
    VSGC_TRACE("mbr-client", to_string(self_) << " start_change "
                                              << to_string(sc->cid));
    for (Listener* l : listeners_) l->on_start_change(sc->cid, sc->set);
    return true;
  }

  if (const auto* vd = std::any_cast<wire::ViewDelivery>(&payload)) {
    if (!running_) return true;
    const View& v = vd->view;
    if (!(last_view_id_ < v.id)) return true;  // Local Monotonicity
    if (!v.contains(self_)) return true;       // Self Inclusion guard
    // The MBRSHP spec requires a start_change before every view; the view's
    // startId for us must be the latest cid we saw.
    if (v.start_id_of(self_) != last_cid_) return true;
    last_view_id_ = v.id;
    VSGC_TRACE("mbr-client", to_string(self_) << " view " << to_string(v));
    for (Listener* l : listeners_) l->on_view(v);
    return true;
  }

  if (std::any_cast<wire::Heartbeat>(&payload) != nullptr) return true;
  return false;
}

}  // namespace vsgc::membership
