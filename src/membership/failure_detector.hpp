// Timeout-based failure detector used by the membership servers.
//
// The paper assumes the membership service employs a failure detector whose
// output drives reconfiguration ([27]); correctness of the GCS never depends
// on FD accuracy, only liveness depends on its eventual stabilization.
#pragma once

#include <functional>
#include <map>
#include <set>

#include "net/node.hpp"
#include "sim/simulator.hpp"

namespace vsgc::membership {

class FailureDetector {
 public:
  struct Config {
    sim::Time timeout = 250 * sim::kMillisecond;
    sim::Time check_interval = 50 * sim::kMillisecond;
  };

  /// `on_change` fires whenever any monitored node's liveness flips.
  FailureDetector(sim::Simulator& sim, Config config,
                  std::function<void()> on_change)
      : sim_(sim), config_(config), on_change_(std::move(on_change)) {}

  ~FailureDetector() { stop(); }

  void monitor(net::NodeId n, bool initially_alive) {
    targets_[n] = Record{sim_.now(), initially_alive};
  }

  void forget(net::NodeId n) { targets_.erase(n); }

  /// Explicitly mark a node down (graceful leave) without waiting for the
  /// timeout; a later heard() resurrects it as usual.
  void suspect(net::NodeId n) {
    auto it = targets_.find(n);
    if (it == targets_.end() || !it->second.alive) return;
    it->second.alive = false;
    // Backdate last_heard so the node stays down until a genuinely new
    // message arrives (heard() refreshes the timestamp).
    it->second.last_heard = sim_.now() - config_.timeout;
    if (on_change_) on_change_();
  }

  /// Refresh on any message from n; resurrects a suspected node.
  void heard(net::NodeId n) {
    auto it = targets_.find(n);
    if (it == targets_.end()) return;
    it->second.last_heard = sim_.now();
    if (!it->second.alive) {
      it->second.alive = true;
      if (on_change_) on_change_();
    }
  }

  bool alive(net::NodeId n) const {
    auto it = targets_.find(n);
    return it != targets_.end() && it->second.alive;
  }

  std::set<net::NodeId> alive_set() const {
    std::set<net::NodeId> out;
    for (const auto& [n, rec] : targets_) {
      if (rec.alive) out.insert(n);
    }
    return out;
  }

  void start() {
    if (running_) return;
    running_ = true;
    arm();
  }

  void stop() {
    running_ = false;
    timer_.cancel();
  }

 private:
  struct Record {
    sim::Time last_heard = 0;
    bool alive = true;
  };

  void arm() {
    timer_ = sim_.schedule(config_.check_interval, [this]() {
      if (!running_) return;
      bool changed = false;
      for (auto& [n, rec] : targets_) {
        if (rec.alive && sim_.now() - rec.last_heard > config_.timeout) {
          rec.alive = false;
          changed = true;
        }
      }
      if (changed && on_change_) on_change_();
      if (running_) arm();
    });
  }

  sim::Simulator& sim_;
  Config config_;
  std::function<void()> on_change_;
  std::map<net::NodeId, Record> targets_;
  sim::TimerHandle timer_;
  bool running_ = false;
};

}  // namespace vsgc::membership
