#include "membership/membership_server.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/logging.hpp"

namespace vsgc::membership {

MembershipServer::MembershipServer(sim::Simulator& sim, net::Network& network,
                                   ServerId self, std::set<ServerId> all_servers,
                                   Config config)
    : sim_(sim),
      network_(network),
      self_(self),
      all_servers_(std::move(all_servers)),
      config_(config),
      fd_(sim, config.fd, [this]() { on_estimate_change(); }) {
  transport_ = std::make_unique<transport::CoRfifoTransport>(
      sim_, network_, net::node_of(self_));
  transport_->set_deliver_handler(
      [this](net::NodeId from, const std::any& payload) {
        on_deliver(from, payload);
      });
  transport_->set_raw_handler(
      [this](net::NodeId from, const std::any& payload) {
        on_raw(from, payload);
      });
  for (ServerId s : all_servers_) {
    if (s != self_) fd_.monitor(net::node_of(s), /*initially_alive=*/true);
  }
}

void MembershipServer::add_client(ProcessId p, bool initially_alive) {
  clients_.try_emplace(p);
  fd_.monitor(net::node_of(p), initially_alive);
}

void MembershipServer::start() {
  fd_.start();
  heartbeat_tick();
  // Kick off the initial round once the world is wired up.
  sim_.schedule(1, [this]() {
    reconfigure();
    try_form();
  });
}

void MembershipServer::heartbeat_tick() {
  wire::Heartbeat hb{/*from_server=*/true, self_.value};
  for (ServerId s : all_servers_) {
    if (s != self_) {
      transport_->send_raw(net::node_of(s), net::Payload(hb),
                           wire::Heartbeat::kWireSize);
    }
  }
  heartbeat_timer_ = sim_.schedule(config_.heartbeat_interval,
                                   [this]() { heartbeat_tick(); });
}

std::set<ProcessId> MembershipServer::alive_local_clients() const {
  std::set<ProcessId> out;
  for (const auto& [p, rec] : clients_) {
    if (fd_.alive(net::node_of(p))) out.insert(p);
  }
  return out;
}

std::set<ServerId> MembershipServer::alive_servers() const {
  std::set<ServerId> out = {self_};
  for (ServerId s : all_servers_) {
    if (s != self_ && fd_.alive(net::node_of(s))) out.insert(s);
  }
  return out;
}

std::set<ProcessId> MembershipServer::estimate() const {
  std::set<ProcessId> est = alive_local_clients();
  for (ServerId s : alive_servers()) {
    if (s == self_) continue;
    auto it = proposals_.find(s);
    if (it == proposals_.end()) continue;
    est.insert(it->second.local_alive.begin(), it->second.local_alive.end());
  }
  return est;
}

void MembershipServer::update_reliable_set() {
  std::set<net::NodeId> set;
  for (ServerId s : alive_servers()) set.insert(net::node_of(s));
  for (ProcessId p : alive_local_clients()) set.insert(net::node_of(p));
  transport_->set_reliable(set);
}

void MembershipServer::on_estimate_change() {
  // Span milestone: the failure detector's connectivity estimate moved —
  // this is what kicks off the round that reconfigure() opens next.
  emit_phase("suspicion", round_ + 1);
  update_reliable_set();
  reconfigure();
  try_form();
}

void MembershipServer::reconfigure(std::uint64_t min_round) {
  ++stats_.rounds_started;
  round_ = std::max({round_ + 1, min_round, last_epoch_ + 1});
  emit_phase("round_start", round_);

  const std::set<ProcessId> local = alive_local_clients();
  const std::set<ServerId> participants = alive_servers();

  // The (immutable) proposal for this round: fresh cids for local clients.
  wire::Proposal prop;
  prop.from = self_;
  prop.round = round_;
  prop.local_alive = local;
  prop.participants = participants;
  for (ProcessId p : local) {
    auto& rec = clients_[p];
    rec.last_cid = StartChangeId{rec.last_cid.value + 1};
    prop.cids[p] = rec.last_cid;
  }
  proposals_[self_] = prop;

  // start_change to every alive local client, with the current estimate.
  const std::set<ProcessId> est = estimate();
  for (ProcessId p : local) {
    auto& rec = clients_[p];
    rec.last_sc_set = est;
    rec.change_started = true;
    wire::StartChange sc{rec.last_cid, est};
    ++stats_.start_changes_sent;
    transport_->send({net::node_of(p)}, net::Payload(sc), sc.wire_size());
  }

  // Proposal to all other participant servers.
  std::set<net::NodeId> peers;
  for (ServerId s : participants) {
    if (s != self_) peers.insert(net::node_of(s));
  }
  if (!peers.empty()) {
    ++stats_.proposals_sent;
    transport_->send(peers, net::Payload(prop), prop.wire_size());
  }
}

void MembershipServer::on_raw(net::NodeId from, const std::any& payload) {
  if (const auto* leave = std::any_cast<wire::Leave>(&payload)) {
    if (!net::is_server_node(from) && clients_.contains(leave->who) &&
        net::process_of(from) == leave->who) {
      fd_.suspect(from);  // triggers on_estimate_change via the FD callback
    }
    return;
  }
  const auto* hb = std::any_cast<wire::Heartbeat>(&payload);
  if (hb == nullptr) return;
  if (!hb->from_server && !net::is_server_node(from)) {
    const ProcessId p = net::process_of(from);
    if (!clients_.contains(p)) add_client(p, /*initially_alive=*/false);
    auto& rec = clients_.at(p);
    if (rec.incarnation != hb->incarnation) {
      const bool restarted = rec.incarnation != 0;
      rec.incarnation = hb->incarnation;
      if (restarted) {
        // The client crashed and recovered without the failure detector
        // noticing (Section 8 blip). Its end-point state is gone; run a
        // fresh round so it receives a new, monotonically larger view —
        // sent in full: a delta base from its previous life is useless.
        rec.last_view_sent.reset();
        fd_.heard(from);
        reconfigure();
        try_form();
        return;
      }
    }
  }
  fd_.heard(from);
}

void MembershipServer::on_deliver(net::NodeId from, const std::any& payload) {
  fd_.heard(from);
  if (const auto* prop = std::any_cast<wire::Proposal>(&payload)) {
    auto it = proposals_.find(prop->from);
    if (it != proposals_.end() && prop->round <= it->second.round) {
      return;  // stale round
    }
    const bool membership_changed =
        it == proposals_.end() || it->second.local_alive != prop->local_alive;
    proposals_[prop->from] = *prop;
    if (prop->round > round_) {
      // A peer is ahead: catch up by proposing for its round (fresh
      // start_changes included, so the MBRSHP contract stays intact).
      reconfigure(prop->round);
    } else if (membership_changed) {
      // The global estimate moved: new round so local clients get a
      // start_change covering the new estimate before any view delivery.
      reconfigure();
    }
    try_form();
  }
}

void MembershipServer::try_form() {
  const std::set<ServerId> participants = alive_servers();

  // Our own round-`round_` proposal must reflect the current FD output and
  // local clients; otherwise this round can never legally complete.
  const auto own = proposals_.find(self_);
  if (own == proposals_.end() || own->second.round != round_ ||
      own->second.participants != participants ||
      own->second.local_alive != alive_local_clients()) {
    reconfigure();
  }

  // Round completion: every participant proposed for round_ with the same
  // participant set.
  for (ServerId s : participants) {
    auto it = proposals_.find(s);
    if (it == proposals_.end() || it->second.round != round_ ||
        it->second.participants != participants) {
      return;  // round incomplete; wait for more proposals
    }
  }
  if (last_epoch_ >= round_) return;  // this round's view already formed

  // Deterministic view from the (unique) round-`round_` proposal set.
  View v;
  for (ServerId s : participants) {
    const wire::Proposal& prop = proposals_.at(s);
    for (ProcessId p : prop.local_alive) {
      v.members.insert(p);
      v.start_id[p] = prop.cids.at(p);
    }
  }
  v.id = ViewId{round_, participants.begin()->value};
  if (v.members.empty()) return;

  // MBRSHP spec validation for our local clients: the view must reflect the
  // latest start_change each of them received. If the estimate drifted, run
  // another round instead of delivering a stale notification.
  for (const auto& [p, rec] : clients_) {
    if (!v.members.contains(p) || !fd_.alive(net::node_of(p))) continue;
    const bool ok = rec.change_started &&
                    std::includes(rec.last_sc_set.begin(), rec.last_sc_set.end(),
                                  v.members.begin(), v.members.end()) &&
                    rec.last_cid == v.start_id.at(p);
    if (!ok) {
      ++stats_.obsolete_views_suppressed;
      reconfigure();
      return;
    }
  }

  deliver_view(v);
}

void MembershipServer::deliver_view(const View& v) {
  ++stats_.views_formed;
  emit_phase("view_formed", v.id.epoch);
  last_formed_ = v;
  last_epoch_ = std::max(last_epoch_, v.id.epoch);
  const wire::ViewDelivery full{v};
  const std::size_t full_size = full.wire_size();
  for (auto& [p, rec] : clients_) {
    if (!v.members.contains(p) || !fd_.alive(net::node_of(p))) {
      // This client misses the view: an unacked suffix toward it may be
      // dropped with it from the reliable set, so in-order receipt of the
      // delta chain is no longer certain — next view goes out full.
      rec.last_view_sent.reset();
      continue;
    }
    if (!(rec.last_view_id < v.id)) continue;  // Local Monotonicity guard
    rec.last_view_id = v.id;
    rec.change_started = false;
    // Delta-encode against the last view this client received when that is
    // cheaper; fall back to the full form otherwise (DESIGN.md §13).
    bool sent_delta = false;
    if (rec.last_view_sent.has_value() && rec.last_view_sent->id < v.id) {
      const wire::ViewDelta delta = wire::ViewDelta::diff(*rec.last_view_sent, v);
      const std::size_t delta_size = delta.wire_size();
      if (delta_size < full_size) {
        ++stats_.delta_views_sent;
        stats_.view_bytes_saved += full_size - delta_size;
        transport_->send({net::node_of(p)}, net::Payload(delta), delta_size);
        sent_delta = true;
      }
    }
    if (!sent_delta) {
      ++stats_.full_views_sent;
      transport_->send({net::node_of(p)}, net::Payload(full), full_size);
    }
    rec.last_view_sent = v;
  }
  VSGC_TRACE("mbrshp", to_string(self_) << " formed " << to_string(v));
}

}  // namespace vsgc::membership
