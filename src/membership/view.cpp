#include "membership/view.hpp"

#include <sstream>

namespace vsgc {

std::string to_string(const View& v) {
  std::ostringstream os;
  os << to_string(v.id) << "{";
  bool first = true;
  for (ProcessId p : v.members) {
    if (!first) os << ",";
    first = false;
    os << to_string(p) << "@" << v.start_id_of(p).value;
  }
  os << "}";
  return os.str();
}

}  // namespace vsgc
