// Scripted membership service for deterministic tests and benchmarks.
//
// OracleMembership implements the MBRSHP automaton of Figure 2 directly: the
// test script plays the role of the nondeterministic environment, choosing
// when start_change and view actions fire and with which membership. The
// oracle enforces the spec's preconditions (fresh increasing cids, a
// start_change before every view, startId = latest cid, v.set within the
// announced set), so any test driving it produces only legal MBRSHP traces.
#pragma once

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "membership/interface.hpp"
#include "membership/view.hpp"
#include "util/assert.hpp"

namespace vsgc::membership {

class OracleMembership {
 public:
  void attach(ProcessId p, Listener& listener) {
    records_[p].listeners.push_back(&listener);
  }

  /// Issue MBRSHP.start_change_p(cid, set) to every attached process in
  /// `set`, with a fresh per-process cid. Returns the cids issued.
  std::map<ProcessId, StartChangeId> start_change(
      const std::set<ProcessId>& set) {
    std::map<ProcessId, StartChangeId> issued;
    for (ProcessId p : set) {
      auto it = records_.find(p);
      if (it == records_.end()) continue;
      issued[p] = start_change_to(p, set);
    }
    return issued;
  }

  /// Issue a start_change to a single process (partitionable scenarios).
  StartChangeId start_change_to(ProcessId p, const std::set<ProcessId>& set) {
    VSGC_REQUIRE(set.contains(p), "start_change set must include the target");
    auto& rec = records_.at(p);
    rec.last_cid = StartChangeId{rec.last_cid.value + 1};
    rec.last_set = set;
    rec.change_started = true;
    for (auto* l : rec.listeners) l->on_start_change(rec.last_cid, set);
    return rec.last_cid;
  }

  /// Form a view over `members` using each member's latest cid and deliver it
  /// to every attached member. Spec preconditions are asserted.
  View deliver_view(const std::set<ProcessId>& members) {
    const View v = make_view(members);
    for (ProcessId p : members) deliver_view_to(p, v);
    return v;
  }

  /// Build (but do not deliver) a view over `members` with the latest cids.
  View make_view(const std::set<ProcessId>& members) {
    View v;
    v.id = ViewId{++epoch_, 0};
    v.members = members;
    for (ProcessId p : members) {
      auto it = records_.find(p);
      VSGC_REQUIRE(it != records_.end(),
                   "view member " << to_string(p) << " never attached");
      v.start_id[p] = it->second.last_cid;
    }
    return v;
  }

  /// Deliver a previously built view to one process (staggered delivery).
  void deliver_view_to(ProcessId p, const View& v) {
    auto& rec = records_.at(p);
    VSGC_REQUIRE(rec.change_started,
                 "view without preceding start_change at " << to_string(p));
    VSGC_REQUIRE(rec.last_view_id < v.id, "non-monotonic oracle view");
    VSGC_REQUIRE(v.start_id_of(p) == rec.last_cid,
                 "view startId mismatch at " << to_string(p));
    VSGC_REQUIRE(
        std::includes(rec.last_set.begin(), rec.last_set.end(),
                      v.members.begin(), v.members.end()),
        "view members exceed announced start_change set at " << to_string(p));
    rec.change_started = false;
    rec.last_view_id = v.id;
    for (auto* l : rec.listeners) l->on_view(v);
  }

  StartChangeId last_cid(ProcessId p) const { return records_.at(p).last_cid; }

 private:
  struct Record {
    std::vector<Listener*> listeners;
    StartChangeId last_cid = StartChangeId::zero();
    std::set<ProcessId> last_set;
    bool change_started = false;
    ViewId last_view_id = ViewId::zero();
  };

  std::map<ProcessId, Record> records_;
  std::uint64_t epoch_ = 0;
};

}  // namespace vsgc::membership
