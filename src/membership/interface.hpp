// Client-facing membership interface (the MBRSHP automaton's output actions,
// Figure 2): start_change_p(cid, set) and view_p(v).
//
// A GCS end-point consumes this interface; it can be fed by the real
// client-server membership service (membership_client/membership_server), by
// the scripted OracleMembership used in deterministic tests, or by any other
// implementation satisfying the MBRSHP spec.
#pragma once

#include <set>

#include "membership/view.hpp"
#include "util/ids.hpp"

namespace vsgc::membership {

class Listener {
 public:
  virtual ~Listener() = default;

  /// MBRSHP.start_change_p(cid, set): the service is attempting to form a new
  /// view with the members of `set`; `cid` is locally unique and increasing.
  virtual void on_start_change(StartChangeId cid,
                               const std::set<ProcessId>& set) = 0;

  /// MBRSHP.view_p(v): the new view. v.start_id maps each member to the cid
  /// of the last start_change it received before this view.
  virtual void on_view(const View& v) = 0;
};

}  // namespace vsgc::membership
