// Client-side membership proxy.
//
// Runs at every client process, sharing the process's CO_RFIFO transport. It
// heartbeats to the process's designated membership server (the heartbeat
// doubles as an attach request) and converts incoming StartChange /
// ViewDelivery wire messages into the Listener interface consumed by the GCS
// end-point. It enforces the client side of Local Monotonicity: views with
// non-increasing identifiers (possible transiently when re-attaching after
// recovery) are dropped rather than delivered out of order.
#pragma once

#include <any>
#include <vector>

#include "membership/interface.hpp"
#include "membership/wire.hpp"
#include "net/node.hpp"
#include "sim/simulator.hpp"
#include "spec/events.hpp"
#include "transport/co_rfifo.hpp"

namespace vsgc::membership {

class MembershipClient {
 public:
  struct Config {
    sim::Time heartbeat_interval = 50 * sim::kMillisecond;
  };

  MembershipClient(sim::Simulator& sim, transport::CoRfifoTransport& transport,
                   ProcessId self, ServerId server, Config config)
      : sim_(sim),
        transport_(transport),
        self_(self),
        server_(server),
        config_(config) {}
  MembershipClient(sim::Simulator& sim, transport::CoRfifoTransport& transport,
                   ProcessId self, ServerId server)
      : MembershipClient(sim, transport, self, server, Config()) {}

  ~MembershipClient() { heartbeat_timer_.cancel(); }

  void add_listener(Listener& listener) { listeners_.push_back(&listener); }

  /// Begin heartbeating (and thereby attach to the server).
  void start() {
    if (running_) return;
    running_ = true;
    // Fresh incarnation per life (Section 8): lets the server detect a
    // crash/recovery blip even when the failure detector missed it.
    incarnation_ = static_cast<std::uint64_t>(sim_.now()) * 2 + 1;
    heartbeat_tick();
  }

  /// Returns true if the payload was a membership wire message (consumed).
  bool handle(net::NodeId from, const std::any& payload);

  /// Graceful departure: tell the server immediately (no failure-detector
  /// timeout) and stop heartbeating. start() re-attaches later.
  void leave() {
    if (!running_) return;
    wire::Leave notice{self_};
    transport_.send_raw(net::node_of(server_), net::Payload(notice),
                        wire::Leave::kWireSize);
    running_ = false;
    heartbeat_timer_.cancel();
  }

  /// Section 8 crash/recovery: state resets, but the server retains ids, so
  /// post-recovery notifications still satisfy Local Monotonicity.
  void crash() {
    running_ = false;
    heartbeat_timer_.cancel();
  }

  void recover() {
    last_view_id_ = ViewId::zero();
    last_notified_id_ = ViewId::zero();
    last_cid_ = StartChangeId::zero();
    last_view_ = View{};
    start();
  }

  /// Re-attach under a fresh heartbeat incarnation without losing the
  /// monotonicity floors. The server treats the incarnation change as a
  /// crash/recovery blip and reconfigures, forcing a fresh view — the
  /// recovery lever for detected state corruption (DESIGN.md §12): a new
  /// view is the only event that re-aligns endpoint delivery indexes after
  /// a corrupted stream lost or skipped messages mid-view.
  void resync() {
    if (!running_) return;
    ++resyncs_;
    incarnation_ += 2;  // stays odd, strictly increasing, deterministic
    heartbeat_timer_.cancel();
    heartbeat_tick();
  }

  /// State-corruption hook (sim::FaultOp::kCorruptView): overwrite the Local
  /// Monotonicity floor's epoch, resurrecting an obsolete view id (epoch 0)
  /// or a future one that would suppress every legitimate delivery. The
  /// heartbeat-path audit detects the floor/notify-history divergence and
  /// repairs it (honest code only ever moves them together).
  void corrupt_view_floor(std::uint64_t epoch) {
    last_view_id_ = ViewId{epoch, last_view_id_.origin};
  }

  /// Detected-corruption repairs performed so far (tests, stress reports).
  std::uint64_t resyncs() const { return resyncs_; }

  ProcessId self() const { return self_; }
  ServerId server() const { return server_; }

  /// Optional span instrumentation (DESIGN.md §10): when set AND the bus has
  /// lifecycle on, suppressed stale notifications emit spec::MbrPhase
  /// "notify_drop" markers. Zero-cost otherwise.
  void set_trace(spec::TraceBus* trace) { trace_ = trace; }

 private:
  void emit_notify_drop(std::uint64_t round) {
    if (trace_ != nullptr && trace_->lifecycle()) {
      trace_->emit(sim_.now(),
                   spec::MbrPhase{self_.value, "notify_drop", round});
    }
  }

  void heartbeat_tick() {
    if (!running_) return;
    if (last_view_id_ != last_notified_id_) {
      // Self-stabilization audit (DESIGN.md §12): the guard floor and the
      // notify history are only ever advanced together, so divergence means
      // the floor was corrupted. Repair it from the (uncorruptible) history
      // and bump the incarnation so the server re-forms a view — deliveries
      // the corrupted floor suppressed are gone and only a fresh view
      // reconverges this client with the group.
      last_view_id_ = last_notified_id_;
      ++resyncs_;
      incarnation_ += 2;
    }
    wire::Heartbeat hb{/*from_server=*/false, self_.value, incarnation_};
    transport_.send_raw(net::node_of(server_), net::Payload(hb),
                        wire::Heartbeat::kWireSize);
    heartbeat_timer_ = sim_.schedule(config_.heartbeat_interval,
                                     [this]() { heartbeat_tick(); });
  }

  sim::Simulator& sim_;
  transport::CoRfifoTransport& transport_;
  ProcessId self_;
  ServerId server_;
  Config config_;

  std::vector<Listener*> listeners_;
  spec::TraceBus* trace_ = nullptr;
  ViewId last_view_id_ = ViewId::zero();
  /// Shadow of last_view_id_ advanced only in the notify path — the
  /// corruption hook never touches it, making floor corruption detectable
  /// as divergence between the two (heartbeat-path audit).
  ViewId last_notified_id_ = ViewId::zero();
  /// The last view notified, kept in full as the base for incoming
  /// wire::ViewDelta notifications (DESIGN.md §13). A delta whose base does
  /// not match is dropped and answered with resync(), which makes the
  /// server fall back to a full ViewDelivery.
  View last_view_{};
  StartChangeId last_cid_ = StartChangeId::zero();
  std::uint64_t resyncs_ = 0;
  std::uint64_t incarnation_ = 0;
  bool running_ = false;
  sim::TimerHandle heartbeat_timer_;
};

}  // namespace vsgc::membership
