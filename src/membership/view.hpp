// Views, as defined in Figure 2 of the paper:
//   View : ViewId x SetOf(Proc) x (Proc -> StartChangeId)
//
// The startId component maps each member to the identifier of the last
// start_change that member received before receiving the view. Two views are
// the same iff all three components are identical — this is what lets the
// virtual synchrony algorithm skip pre-agreement on a global identifier.
#pragma once

#include <map>
#include <set>
#include <string>

#include "util/ids.hpp"
#include "util/serialization.hpp"

namespace vsgc {

struct View {
  ViewId id;
  std::set<ProcessId> members;
  std::map<ProcessId, StartChangeId> start_id;

  /// The paper's initial view v_p = <vid0, {p}, {(p -> cid0)}>.
  static View initial(ProcessId p) {
    View v;
    v.id = ViewId::zero();
    v.members = {p};
    v.start_id = {{p, StartChangeId::zero()}};
    return v;
  }

  bool contains(ProcessId p) const { return members.contains(p); }

  /// startId(p); requires p to be a member.
  StartChangeId start_id_of(ProcessId p) const {
    auto it = start_id.find(p);
    return it == start_id.end() ? StartChangeId::zero() : it->second;
  }

  // Two views are the same iff all three components are identical (paper
  // Section 3.1). The ordering is lexicographic, used only for map keys.
  friend bool operator==(const View&, const View&) = default;
  friend auto operator<=>(const View&, const View&) = default;

  void encode(Encoder& enc) const {
    enc.put_view_id(id);
    enc.put_process_set(members);
    enc.put_u32(static_cast<std::uint32_t>(start_id.size()));
    for (const auto& [p, cid] : start_id) {
      enc.put_process(p);
      enc.put_start_change_id(cid);
    }
  }

  static View decode(Decoder& dec) {
    View v;
    v.id = dec.get_view_id();
    v.members = dec.get_process_set();
    const std::uint32_t n = dec.get_u32();
    for (std::uint32_t i = 0; i < n; ++i) {
      ProcessId p = dec.get_process();
      v.start_id[p] = dec.get_start_change_id();
    }
    return v;
  }

  /// Serialized size in bytes (for benchmark byte accounting).
  std::size_t wire_size() const {
    Encoder enc;
    encode(enc);
    return enc.size();
  }
};

std::string to_string(const View& v);

}  // namespace vsgc
