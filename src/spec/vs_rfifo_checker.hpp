// Runtime checker for VS_RFIFO : SPEC (paper Figure 5) — Virtual Synchrony.
//
// Extends WvRfifoChecker exactly as VS_RFIFO:SPEC extends WV_RFIFO:SPEC: the
// first process to move from view v to view v' fixes the cut (set_cut); every
// other process making the same transition must deliver precisely that set of
// messages in v before moving. The cut is represented, as in the paper, by
// the per-sender index of the last delivered message.
#pragma once

#include <cstdint>
#include <map>
#include <utility>

#include "spec/wv_rfifo_checker.hpp"

namespace vsgc::spec {

class VsRfifoChecker : public WvRfifoChecker {
 public:
  /// Number of distinct (v, v') transitions whose cut was fixed (for tests).
  std::size_t cuts_fixed() const { return cut_.size(); }

 protected:
  void check_view(const GcsView& e) override {
    const View& old_view = current_view(e.p);
    // Snapshot of what p delivered in the old view, per sender.
    std::map<ProcessId, std::int64_t> delivered;
    for (ProcessId q : old_view.members) {
      delivered[q] = last_dlvrd_[q][e.p];
    }

    const std::pair<View, View> key{old_view, e.view};
    auto it = cut_.find(key);
    if (it == cut_.end()) {
      // set_cut(v, v', c): the first mover fixes the cut.
      cut_.emplace(key, delivered);
    } else {
      // Every later mover over the same (v, v') edge must match it exactly.
      for (ProcessId q : old_view.members) {
        const std::int64_t agreed = it->second.count(q) ? it->second.at(q) : 0;
        VSGC_REQUIRE(delivered[q] == agreed,
                     "VS_RFIFO: Virtual Synchrony violated — "
                         << to_string(e.p) << " moving "
                         << to_string(old_view.id) << " -> "
                         << to_string(e.view.id) << " delivered "
                         << delivered[q] << " messages from " << to_string(q)
                         << " but the agreed cut is " << agreed);
      }
    }
    WvRfifoChecker::check_view(e);
  }

 private:
  /// cut[(v, v')] — the agreed per-sender delivery counts for the transition.
  std::map<std::pair<View, View>, std::map<ProcessId, std::int64_t>> cut_;
};

}  // namespace vsgc::spec
