#include "spec/liveness_checker.hpp"

#include <map>
#include <set>

#include "util/assert.hpp"

namespace vsgc::spec {

namespace {

struct ProcessSummary {
  std::optional<View> final_mbr_view;
  bool mbr_event_after_view = false;  ///< start_change after the final view
  bool crashed = false;
};

std::map<ProcessId, ProcessSummary> summarize(const std::vector<Event>& trace) {
  std::map<ProcessId, ProcessSummary> out;
  for (const Event& ev : trace) {
    if (const auto* mv = std::get_if<MbrView>(&ev.body)) {
      auto& s = out[mv->p];
      s.final_mbr_view = mv->view;
      s.mbr_event_after_view = false;
    } else if (const auto* sc = std::get_if<MbrStartChange>(&ev.body)) {
      out[sc->p].mbr_event_after_view = true;
    } else if (const auto* c = std::get_if<Crash>(&ev.body)) {
      out[c->p].crashed = true;
    } else if (const auto* r = std::get_if<Recover>(&ev.body)) {
      out[r->p].crashed = false;
    }
  }
  return out;
}

}  // namespace

std::optional<View> LivenessChecker::stable_view(
    const std::vector<Event>& trace) {
  const auto summary = summarize(trace);
  for (const auto& [p, s] : summary) {
    if (!s.final_mbr_view || s.mbr_event_after_view || s.crashed) continue;
    const View& v = *s.final_mbr_view;
    bool stable = true;
    for (ProcessId q : v.members) {
      auto it = summary.find(q);
      if (it == summary.end() || !it->second.final_mbr_view ||
          it->second.mbr_event_after_view || it->second.crashed ||
          !(*it->second.final_mbr_view == v)) {
        stable = false;
        break;
      }
    }
    if (stable) return v;
  }
  return std::nullopt;
}

bool LivenessChecker::check(const std::vector<Event>& trace) {
  const std::optional<View> maybe_v = stable_view(trace);
  if (!maybe_v) return false;  // premise does not hold; nothing to assert
  const View& v = *maybe_v;

  // Conclusion 1: every member's GCS delivered v.
  std::set<ProcessId> delivered_view;
  for (const Event& ev : trace) {
    if (const auto* gv = std::get_if<GcsView>(&ev.body)) {
      if (gv->view == v) delivered_view.insert(gv->p);
    }
  }
  for (ProcessId p : v.members) {
    VSGC_REQUIRE(delivered_view.contains(p),
                 "Liveness: membership stabilized on "
                     << to_string(v.id) << " but " << to_string(p)
                     << " never delivered it");
  }

  // Conclusion 2: every message sent after GCS.view_p(v) is delivered by
  // every member of v.
  std::set<ProcessId> in_view;  // processes currently past GcsView(v)
  std::vector<std::pair<ProcessId, std::uint64_t>> sent_in_v;
  std::map<ProcessId, std::set<std::pair<ProcessId, std::uint64_t>>> delivered;
  for (const Event& ev : trace) {
    if (const auto* gv = std::get_if<GcsView>(&ev.body)) {
      if (gv->view == v) in_view.insert(gv->p);
      else in_view.erase(gv->p);
    } else if (const auto* s = std::get_if<GcsSend>(&ev.body)) {
      if (in_view.contains(s->p)) sent_in_v.emplace_back(s->p, s->msg.uid);
    } else if (const auto* d = std::get_if<GcsDeliver>(&ev.body)) {
      delivered[d->p].emplace(d->q, d->msg.uid);
    }
  }
  for (const auto& [sender, uid] : sent_in_v) {
    for (ProcessId q : v.members) {
      VSGC_REQUIRE(delivered[q].contains({sender, uid}),
                   "Liveness: message uid "
                       << uid << " sent by " << to_string(sender)
                       << " in stable view " << to_string(v.id)
                       << " was never delivered by " << to_string(q));
    }
  }
  return true;
}

}  // namespace vsgc::spec
