// Runtime checker for WV_RFIFO : SPEC (paper Figure 4).
//
// Maintains the specification automaton's state — centralized per-(sender,
// view) message queues, per-pair delivery counters, per-process current
// views — and asserts every GcsSend / GcsDeliver / GcsView event is a legal
// step:
//   * deliver_p(q, m): m is exactly msgs[q][current_view[p]] at index
//     last_dlvrd[q][p] + 1 (within-view, gap-free, FIFO, sent-view delivery);
//   * view_p(v): p ∈ v.set and v.id > current_view[p].id.
//
// Children (VsRfifoChecker, SelfChecker) extend this checker the same way
// VS_RFIFO:SPEC and SELF:SPEC extend WV_RFIFO:SPEC — extra preconditions run
// before the parent's effects (Theorem A.2's structure).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "gcs/app_msg.hpp"
#include "membership/view.hpp"
#include "spec/events.hpp"
#include "util/assert.hpp"

namespace vsgc::spec {

class WvRfifoChecker : public TraceSink {
 public:
  void on_event(const Event& event) override {
    if (const auto* s = std::get_if<GcsSend>(&event.body)) {
      check_send(*s);
      apply_send(*s);
    } else if (const auto* d = std::get_if<GcsDeliver>(&event.body)) {
      check_deliver(*d);
      apply_deliver(*d);
    } else if (const auto* v = std::get_if<GcsView>(&event.body)) {
      check_view(*v);
      apply_view(*v);
    } else if (const auto* c = std::get_if<Crash>(&event.body)) {
      apply_crash(c->p);
    } else if (const auto* r = std::get_if<Recover>(&event.body)) {
      apply_recover(r->p);
    }
  }

  const View& current_view(ProcessId p) {
    auto it = current_view_.find(p);
    if (it == current_view_.end()) {
      it = current_view_.emplace(p, View::initial(p)).first;
    }
    return it->second;
  }

 protected:
  // ---- Extension points for child specifications ----
  virtual void check_send(const GcsSend& e) { (void)e; }

  virtual void check_deliver(const GcsDeliver& e) {
    const View& cv = current_view(e.p);
    const auto& queue = msgs_[e.q][cv];
    const std::int64_t next = last_dlvrd_[e.q][e.p] + 1;
    VSGC_REQUIRE(static_cast<std::size_t>(next) <= queue.size(),
                 "WV_RFIFO: " << to_string(e.p) << " delivered from "
                              << to_string(e.q) << " message index " << next
                              << " that was never sent in view "
                              << to_string(cv));
    VSGC_REQUIRE(queue[static_cast<std::size_t>(next - 1)] == e.msg,
                 "WV_RFIFO: delivery mismatch at "
                     << to_string(e.p) << " from " << to_string(e.q)
                     << " index " << next << " (uid " << e.msg.uid << ")");
  }

  virtual void check_view(const GcsView& e) {
    const View& cv = current_view(e.p);
    VSGC_REQUIRE(e.view.contains(e.p),
                 "WV_RFIFO: Self Inclusion violated at " << to_string(e.p));
    VSGC_REQUIRE(cv.id < e.view.id, "WV_RFIFO: Local Monotonicity violated at "
                                        << to_string(e.p) << ": "
                                        << to_string(e.view.id));
    VSGC_REQUIRE(monotonicity_floor_[e.p] < e.view.id,
                 "WV_RFIFO: view id regressed across recovery at "
                     << to_string(e.p));
  }

  virtual void apply_crash(ProcessId p) { (void)p; }

  virtual void apply_recover(ProcessId p) {
    // Section 8: the algorithm restarts from initial state, but the spec
    // preserves identifier floors for Local Monotonicity; the recovered
    // process's own initial-view queue restarts empty.
    auto& floor = monotonicity_floor_[p];
    const ViewId old = current_view(p).id;
    if (floor < old) floor = old;
    current_view_.insert_or_assign(p, View::initial(p));
    msgs_[p][View::initial(p)].clear();
    for (auto& [q, per_receiver] : last_dlvrd_) per_receiver[p] = 0;
  }

  // ---- Parent effects ----
  void apply_send(const GcsSend& e) {
    msgs_[e.p][current_view(e.p)].push_back(e.msg);
  }

  void apply_deliver(const GcsDeliver& e) { ++last_dlvrd_[e.q][e.p]; }

  void apply_view(const GcsView& e) {
    for (auto& [q, per_receiver] : last_dlvrd_) per_receiver[e.p] = 0;
    last_dlvrd_[e.p][e.p] = 0;
    current_view_.insert_or_assign(e.p, e.view);
  }

  /// msgs[q][v]: the sequence of messages q's application sent in view v.
  std::map<ProcessId, std::map<View, std::vector<gcs::AppMsg>>> msgs_;
  /// last_dlvrd[q][p]: index of the last message from q delivered to p.
  std::map<ProcessId, std::map<ProcessId, std::int64_t>> last_dlvrd_;
  std::map<ProcessId, View> current_view_;
  std::map<ProcessId, ViewId> monotonicity_floor_;
};

}  // namespace vsgc::spec
