// Runtime checker for TRANS_SET : SPEC (paper Figure 6 / Property 4.1).
//
// Immediate checks at every view delivery:
//   * T ⊆ v.set ∩ previous_view.set, and p ∈ T.
//
// The inclusion/exclusion half of Property 4.1 references which view other
// processes move to v' FROM — future knowledge at delivery time (the spec
// models it with a prophecy variable). The checker therefore records every
// transition and validates mutual consistency in finalize(), which tests call
// once the execution quiesces: for any p, q that both delivered v',
//     q ∈ T_p  ⇔  prev_view(q) == prev_view(p),   for q ∈ v'.set ∩ prev_p.set.
#pragma once

#include <limits>
#include <map>
#include <set>
#include <vector>

#include "sim/time.hpp"
#include "spec/events.hpp"
#include "util/assert.hpp"

namespace vsgc::spec {

class TransSetChecker : public TraceSink {
 public:
  void on_event(const Event& event) override {
    if (const auto* v = std::get_if<GcsView>(&event.body)) {
      const View& prev = current_view(v->p);
      VSGC_REQUIRE(v->transitional.contains(v->p),
                   "TRANS_SET: transitional set at " << to_string(v->p)
                                                     << " excludes itself");
      for (ProcessId q : v->transitional) {
        VSGC_REQUIRE(v->view.contains(q) && prev.contains(q),
                     "TRANS_SET: " << to_string(q)
                                   << " outside v.set ∩ prev.set at "
                                   << to_string(v->p));
      }
      deliveries_.push_back(
          Delivery{v->p, prev, v->view, v->transitional, event.at});
      current_view_.insert_or_assign(v->p, v->view);
      return;
    }
    if (const auto* r = std::get_if<Recover>(&event.body)) {
      current_view_.insert_or_assign(r->p, View::initial(r->p));
      return;
    }
  }

  /// Cross-process half of Property 4.1; call once the execution is over.
  void finalize() const { finalize_after(std::numeric_limits<sim::Time>::min()); }

  /// Window-aware finalize (eventual-safety mode, DESIGN.md §12): view
  /// transitions recorded at or before `cutoff` straddle a tolerated
  /// corruption-recovery span and are exempt from the cross-process
  /// consistency requirement; everything later must be exact. finalize() is
  /// the cutoff = -inf special case.
  void finalize_after(sim::Time cutoff) const {
    // prev[(q, v')] = the view q moved to v' from (unique per q, v').
    std::map<std::pair<ProcessId, View>, View> prev;
    for (const Delivery& d : deliveries_) {
      prev.emplace(std::make_pair(d.p, d.view), d.previous);
    }
    for (const Delivery& d : deliveries_) {
      if (d.at <= cutoff) continue;
      for (ProcessId q : d.view.members) {
        if (!d.previous.contains(q)) continue;
        auto it = prev.find(std::make_pair(q, d.view));
        if (it == prev.end()) continue;  // q never delivered v'
        const bool moved_together = it->second == d.previous;
        VSGC_REQUIRE(
            d.transitional.contains(q) == moved_together,
            "TRANS_SET: Property 4.1 violated — at "
                << to_string(d.p) << " moving to " << to_string(d.view.id)
                << ", " << to_string(q)
                << (moved_together
                        ? " moved from the same view but is not in T"
                        : " moved from a different view but is in T"));
      }
    }
  }

  std::size_t transitions_recorded() const { return deliveries_.size(); }

 private:
  struct Delivery {
    ProcessId p;
    View previous;
    View view;
    std::set<ProcessId> transitional;
    sim::Time at = 0;
  };

  const View& current_view(ProcessId p) {
    auto it = current_view_.find(p);
    if (it == current_view_.end()) {
      it = current_view_.emplace(p, View::initial(p)).first;
    }
    return it->second;
  }

  std::map<ProcessId, View> current_view_;
  std::vector<Delivery> deliveries_;
};

}  // namespace vsgc::spec
