// Eventual-safety checker wrappers (DESIGN.md §12).
//
// "Practically-Self-Stabilizing Virtual Synchrony" (PAPERS.md) relaxes the
// paper's safety properties under transient state corruption: after an
// adversary mutates live protocol state, violations are permitted only inside
// a bounded recovery window, after which every exact property must hold
// again. Eventually<Inner> turns any exact trace checker into that eventual
// variant:
//
//   * A FaultInjected event whose kind belongs to the corruption family
//     ("corrupt_*" / "bug_corrupt_*") opens a tolerance window of `window`
//     simulated time. A later "stabilize" marker extends a still-open window
//     (recovery churn — forced view changes, stream re-homing — is part of
//     the healing the window exists to absorb), but never reopens a closed
//     one.
//   * A violation raised by the inner checker inside the window is tolerated:
//     the inner automaton is rebuilt from the full event history with the
//     corrupted span's violations swallowed, so it tracks the post-recovery
//     state instead of staying wedged on pre-corruption expectations.
//   * A violation outside any window propagates unchanged — corruption is
//     never an excuse for steady-state divergence.
//
// Exact checkers stay the default everywhere; the eventual bundle is opted
// into by corruption-enabled harnesses (World's `eventual_checkers`,
// vsgc_stress --corrupt, the mc corruption menu).
#pragma once

#include <cstdint>
#include <limits>
#include <string_view>
#include <vector>

#include "sim/time.hpp"
#include "spec/all_checkers.hpp"
#include "spec/events.hpp"
#include "util/assert.hpp"

namespace vsgc::spec {

/// True for the FaultInjected kinds that open a tolerance window: the
/// recoverable corruption family plus the deliberately unrecoverable
/// bug-corruption test hooks (those must fire *after* the window).
inline bool is_corruption_kind(std::string_view kind) {
  return kind.starts_with("corrupt_") || kind.starts_with("bug_corrupt_");
}

template <typename Inner>
class Eventually : public TraceSink {
 public:
  explicit Eventually(sim::Time window) : window_(window) {}

  void on_event(const Event& event) override {
    if (const auto* f = std::get_if<FaultInjected>(&event.body)) {
      if (is_corruption_kind(f->kind)) {
        deadline_ = event.at + window_;
      } else if (f->kind == "stabilize" && event.at <= deadline_) {
        deadline_ = event.at + window_;
      }
    }
    history_.push_back(event);
    try {
      inner_.on_event(event);
    } catch (const InvariantViolation&) {
      if (event.at > deadline_) throw;
      ++tolerated_;
      resync();
    }
  }

  /// Latest instant at which a violation is still tolerated (minimal Time
  /// when no corruption was ever injected). Eventual finalize passes this to
  /// the inner checker's window-aware end-of-run checks.
  sim::Time tolerance_deadline() const { return deadline_; }

  /// Violations swallowed inside tolerance windows so far.
  std::uint64_t tolerated() const { return tolerated_; }

  Inner& inner() { return inner_; }
  const Inner& inner() const { return inner_; }

 private:
  /// Rebuild the inner automaton over the full history, swallowing per-event
  /// violations: the replayed checker converges to the post-corruption truth
  /// (views installed, cursors advanced) instead of staying wedged on state
  /// the corrupted span invalidated.
  void resync() {
    inner_ = Inner();
    for (const Event& e : history_) {
      try {
        inner_.on_event(e);
      } catch (const InvariantViolation&) {
      }
    }
  }

  Inner inner_;
  sim::Time window_;
  sim::Time deadline_ = std::numeric_limits<sim::Time>::min();
  std::uint64_t tolerated_ = 0;
  std::vector<Event> history_;
};

/// The eventual-safety twin of AllCheckers: every deployed checker wrapped in
/// Eventually<>, sharing one tolerance window length. finalize() runs the
/// prophecy-style end-of-run checks window-aware: view transitions recorded
/// at or before the tolerance deadline are exempt from the cross-process
/// consistency requirement (they may straddle a tolerated recovery).
struct AllEventualCheckers {
  explicit AllEventualCheckers(sim::Time window)
      : mbrshp(window),
        wv_rfifo(window),
        vs_rfifo(window),
        trans_set(window),
        self(window),
        client(window) {}

  Eventually<MbrshpChecker> mbrshp;
  Eventually<WvRfifoChecker> wv_rfifo;
  Eventually<VsRfifoChecker> vs_rfifo;
  Eventually<TransSetChecker> trans_set;
  Eventually<SelfChecker> self;
  Eventually<ClientChecker> client;

  void attach(TraceBus& bus) {
    bus.subscribe(mbrshp);
    bus.subscribe(wv_rfifo);
    bus.subscribe(vs_rfifo);
    bus.subscribe(trans_set);
    bus.subscribe(self);
    bus.subscribe(client);
  }

  void finalize() const {
    trans_set.inner().finalize_after(trans_set.tolerance_deadline());
  }

  /// Violations tolerated across all wrapped checkers (stress reports).
  std::uint64_t tolerated() const {
    return mbrshp.tolerated() + wv_rfifo.tolerated() + vs_rfifo.tolerated() +
           trans_set.tolerated() + self.tolerated() + client.tolerated();
  }
};

}  // namespace vsgc::spec
