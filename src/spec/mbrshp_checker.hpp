// Runtime checker for the MBRSHP safety specification (paper Figure 2).
//
// Consumes MbrStartChange / MbrView trace events (what each client process
// actually received from the membership service) and asserts the automaton's
// preconditions:
//   * start_change: cid strictly increasing per process, p ∈ set;
//   * view: id strictly increasing per process (Local Monotonicity),
//     p ∈ v.set (Self Inclusion), v.set ⊆ the latest start_change set,
//     v.startId(p) == the latest start_change cid, and mode == change_started
//     (at least one start_change precedes every view).
//
// Section 8 adaptation: a crashed process keeps its identifier floors across
// recovery (the membership service itself never crashes), so Local
// Monotonicity must hold across crash/recovery boundaries too.
#pragma once

#include <map>
#include <set>

#include "spec/events.hpp"
#include "util/assert.hpp"

namespace vsgc::spec {

class MbrshpChecker : public TraceSink {
 public:
  void on_event(const Event& event) override {
    if (const auto* sc = std::get_if<MbrStartChange>(&event.body)) {
      auto& st = state_[sc->p];
      VSGC_REQUIRE(st.last_cid < sc->cid,
                   "MBRSHP: non-increasing start_change cid at "
                       << to_string(sc->p));
      VSGC_REQUIRE(sc->set.contains(sc->p),
                   "MBRSHP: start_change set excludes target "
                       << to_string(sc->p));
      st.last_cid = sc->cid;
      st.last_set = sc->set;
      st.change_started = true;
      return;
    }
    if (const auto* mv = std::get_if<MbrView>(&event.body)) {
      auto& st = state_[mv->p];
      const View& v = mv->view;
      VSGC_REQUIRE(st.last_view_id < v.id,
                   "MBRSHP: Local Monotonicity violated at "
                       << to_string(mv->p) << ": " << to_string(v.id));
      VSGC_REQUIRE(v.contains(mv->p), "MBRSHP: Self Inclusion violated at "
                                          << to_string(mv->p));
      VSGC_REQUIRE(st.change_started,
                   "MBRSHP: view without preceding start_change at "
                       << to_string(mv->p));
      VSGC_REQUIRE(v.start_id_of(mv->p) == st.last_cid,
                   "MBRSHP: view startId(" << to_string(mv->p)
                                           << ") != latest start_change cid");
      for (ProcessId q : v.members) {
        VSGC_REQUIRE(st.last_set.contains(q),
                     "MBRSHP: view member " << to_string(q)
                                            << " not in announced set at "
                                            << to_string(mv->p));
      }
      st.last_view_id = v.id;
      st.change_started = false;
      return;
    }
    if (const auto* rec = std::get_if<Recover>(&event.body)) {
      // recover_p() sets mbrshp.mode[p] back to normal; identifier floors
      // persist because the membership service keeps its state.
      state_[rec->p].change_started = false;
      return;
    }
  }

 private:
  struct PerProcess {
    StartChangeId last_cid = StartChangeId::zero();
    std::set<ProcessId> last_set;
    bool change_started = false;
    ViewId last_view_id = ViewId::zero();
  };

  std::map<ProcessId, PerProcess> state_;
};

}  // namespace vsgc::spec
