// Global trace-event vocabulary.
//
// Simulated executions emit these events onto a TraceBus; the specification
// automata of Section 4 (implemented as checkers in this directory) consume
// them and assert, online, that every event was legal — the runtime analogue
// of the paper's refinement proofs. Each event corresponds to an external
// action of the composed system, tagged with the process p at which it occurs.
#pragma once

#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <variant>
#include <vector>

#include "gcs/app_msg.hpp"
#include "membership/view.hpp"
#include "sim/time.hpp"
#include "util/ids.hpp"

namespace vsgc::spec {

/// GCS.send_p(m)
struct GcsSend {
  ProcessId p;
  gcs::AppMsg msg;
};

/// GCS.deliver_p(q, m)
struct GcsDeliver {
  ProcessId p;  ///< receiving process
  ProcessId q;  ///< original sender
  gcs::AppMsg msg;
};

/// GCS.view_p(v, T)
struct GcsView {
  ProcessId p;
  View view;
  std::set<ProcessId> transitional;
};

/// GCS.block_p()
struct GcsBlock {
  ProcessId p;
};

/// client.block_ok_p()
struct GcsBlockOk {
  ProcessId p;
};

/// MBRSHP.start_change_p(cid, set)
struct MbrStartChange {
  ProcessId p;
  StartChangeId cid;
  std::set<ProcessId> set;
};

/// MBRSHP.view_p(v)
struct MbrView {
  ProcessId p;
  View view;
};

/// crash_p() / recover_p() (Section 8)
struct Crash {
  ProcessId p;
};
struct Recover {
  ProcessId p;
};

/// Environment fault applied by sim::FailureInjector (partition, link
/// failure, loss spike, ...). Process crash/recovery keeps its dedicated
/// Crash/Recover events; this covers every other fault so post-mortem
/// timelines show exactly which adversarial schedule an execution ran under.
// Faults are adversarial *inputs*, not protocol actions a safety checker
// could constrain; the consumers are MetricsCollector/TraceRecorder (src/obs).
// vsgc-lint: allow(event-coverage) adversarial input metadata, consumed by src/obs timelines rather than by a spec checker
struct FaultInjected {
  std::string kind;    ///< stable op name, e.g. "partition", "link_down"
  std::string detail;  ///< human-readable arguments
};

// ---- Causal span layer (DESIGN.md §10) ----------------------------------
// Message-lifecycle and view-change phase markers. A message's deterministic
// trace id is (sender, uid): the sender's ProcessId plus its sender-local
// sequence number, assigned at submit time. These events are high-volume and
// carry no protocol meaning — they exist so obs::SpanCollector and
// tools/vsgc_trace can reconstruct causal chains post-mortem. Components
// emit them only when TraceBus::lifecycle() is on (the Registry's zero-cost
// contract: one branch when tracing is off).

/// The sender handed (sender, uid) to CO_RFIFO for multicast — the message
/// left the end-point's send buffer for the wire.
// vsgc-lint: allow(event-coverage) causal span marker, consumed by obs::SpanCollector / tools/vsgc_trace rather than by a spec checker
struct MsgWireSend {
  ProcessId p;  ///< == sender
  ProcessId sender;
  std::uint64_t uid = 0;
};

/// An application message reached p's end-point buffer off the wire.
// vsgc-lint: allow(event-coverage) causal span marker, consumed by obs::SpanCollector / tools/vsgc_trace rather than by a spec checker
struct MsgRecv {
  ProcessId p;
  ProcessId from;    ///< wire-level sender (the forwarder for forwarded copies)
  ProcessId sender;  ///< trace id: original sender
  std::uint64_t uid = 0;
  bool forwarded = false;
};

/// p forwarded (sender, uid) to `copies` destinations during a view change.
// vsgc-lint: allow(event-coverage) causal span marker, consumed by obs::SpanCollector / tools/vsgc_trace rather than by a spec checker
struct MsgForward {
  ProcessId p;
  ProcessId sender;
  std::uint64_t uid = 0;
  std::uint64_t copies = 0;
};

/// p committed its cut and multicast its synchronization message for cid.
// vsgc-lint: allow(event-coverage) causal span marker, consumed by obs::SpanCollector / tools/vsgc_trace rather than by a spec checker
struct SyncSent {
  ProcessId p;
  StartChangeId cid;
};

/// p stored q's synchronization message for cid (direct or relayed).
// vsgc-lint: allow(event-coverage) causal span marker, consumed by obs::SpanCollector / tools/vsgc_trace rather than by a spec checker
struct SyncRecv {
  ProcessId p;
  ProcessId from;
  StartChangeId cid;
};

/// A CO_RFIFO retransmission burst: `packets` re-sent from node `from_node`
/// towards `to_node` (timer fire or reset re-homing). Node values use the
/// net::NodeId encoding (servers live at net::kServerBase + s).
// vsgc-lint: allow(event-coverage) causal span marker, consumed by obs::SpanCollector / tools/vsgc_trace rather than by a spec checker
struct XportRetransmit {
  std::uint32_t from_node = 0;
  std::uint32_t to_node = 0;
  std::uint64_t packets = 0;
};

/// Membership-side view-change phase marker, keyed by node (server nodes use
/// the net::NodeId encoding so client and server markers share one type).
/// Server phases: "suspicion" (failure-detector estimate changed),
/// "round_start" (proposal round opened), "view_formed" (round completed).
/// Client phases: "notify_drop" (a stale start_change/view was suppressed by
/// the Local Monotonicity guards).
// vsgc-lint: allow(event-coverage) causal span marker, consumed by obs::SpanCollector / tools/vsgc_trace rather than by a spec checker
struct MbrPhase {
  std::uint32_t node = 0;
  std::string phase;
  std::uint64_t round = 0;  ///< agreement round / epoch (0 when not known)
};

using EventBody = std::variant<GcsSend, GcsDeliver, GcsView, GcsBlock,
                               GcsBlockOk, MbrStartChange, MbrView, Crash,
                               Recover, FaultInjected, MsgWireSend, MsgRecv,
                               MsgForward, SyncSent, SyncRecv, XportRetransmit,
                               MbrPhase>;

struct Event {
  sim::Time at = 0;
  EventBody body;
};

class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_event(const Event& event) = 0;
};

/// Fan-out bus: every component emits its external actions here; checkers,
/// statistics collectors, and (optionally) a recording log subscribe.
class TraceBus {
 public:
  void subscribe(TraceSink& sink) { sinks_.push_back(&sink); }

  void set_recording(bool on) { recording_ = on; }
  const std::vector<Event>& recorded() const { return record_; }

  /// Opt into the fine-grained causal span events (MsgWireSend, MsgRecv,
  /// SyncSent, ...). Off by default: per-packet instrumentation sites check
  /// this flag before constructing an event, so the span layer costs one
  /// branch per site when no collector wants it (DESIGN.md §10).
  void set_lifecycle(bool on) { lifecycle_ = on; }
  bool lifecycle() const { return lifecycle_; }

  void emit(sim::Time at, EventBody body) {
    Event ev{at, std::move(body)};
    if (recording_) record_.push_back(ev);
    for (TraceSink* sink : sinks_) sink->on_event(ev);
  }

 private:
  std::vector<TraceSink*> sinks_;
  std::vector<Event> record_;
  bool recording_ = false;
  bool lifecycle_ = false;
};

}  // namespace vsgc::spec
