// Global trace-event vocabulary.
//
// Simulated executions emit these events onto a TraceBus; the specification
// automata of Section 4 (implemented as checkers in this directory) consume
// them and assert, online, that every event was legal — the runtime analogue
// of the paper's refinement proofs. Each event corresponds to an external
// action of the composed system, tagged with the process p at which it occurs.
#pragma once

#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <variant>
#include <vector>

#include "gcs/app_msg.hpp"
#include "membership/view.hpp"
#include "sim/time.hpp"
#include "util/ids.hpp"

namespace vsgc::spec {

/// GCS.send_p(m)
struct GcsSend {
  ProcessId p;
  gcs::AppMsg msg;
};

/// GCS.deliver_p(q, m)
struct GcsDeliver {
  ProcessId p;  ///< receiving process
  ProcessId q;  ///< original sender
  gcs::AppMsg msg;
};

/// GCS.view_p(v, T)
struct GcsView {
  ProcessId p;
  View view;
  std::set<ProcessId> transitional;
};

/// GCS.block_p()
struct GcsBlock {
  ProcessId p;
};

/// client.block_ok_p()
struct GcsBlockOk {
  ProcessId p;
};

/// MBRSHP.start_change_p(cid, set)
struct MbrStartChange {
  ProcessId p;
  StartChangeId cid;
  std::set<ProcessId> set;
};

/// MBRSHP.view_p(v)
struct MbrView {
  ProcessId p;
  View view;
};

/// crash_p() / recover_p() (Section 8)
struct Crash {
  ProcessId p;
};
struct Recover {
  ProcessId p;
};

/// Environment fault applied by sim::FailureInjector (partition, link
/// failure, loss spike, ...). Process crash/recovery keeps its dedicated
/// Crash/Recover events; this covers every other fault so post-mortem
/// timelines show exactly which adversarial schedule an execution ran under.
// Faults are adversarial *inputs*, not protocol actions a safety checker
// could constrain; the consumers are MetricsCollector/TraceRecorder (src/obs).
// vsgc-lint: allow(event-coverage) adversarial input metadata, consumed by src/obs timelines rather than by a spec checker
struct FaultInjected {
  std::string kind;    ///< stable op name, e.g. "partition", "link_down"
  std::string detail;  ///< human-readable arguments
};

using EventBody = std::variant<GcsSend, GcsDeliver, GcsView, GcsBlock,
                               GcsBlockOk, MbrStartChange, MbrView, Crash,
                               Recover, FaultInjected>;

struct Event {
  sim::Time at = 0;
  EventBody body;
};

class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_event(const Event& event) = 0;
};

/// Fan-out bus: every component emits its external actions here; checkers,
/// statistics collectors, and (optionally) a recording log subscribe.
class TraceBus {
 public:
  void subscribe(TraceSink& sink) { sinks_.push_back(&sink); }

  void set_recording(bool on) { recording_ = on; }
  const std::vector<Event>& recorded() const { return record_; }

  void emit(sim::Time at, EventBody body) {
    Event ev{at, std::move(body)};
    if (recording_) record_.push_back(ev);
    for (TraceSink* sink : sinks_) sink->on_event(ev);
  }

 private:
  std::vector<TraceSink*> sinks_;
  std::vector<Event> record_;
  bool recording_ = false;
};

}  // namespace vsgc::spec
