// Checker for the conditional liveness Property 4.2.
//
// Property 4.2: if the membership service stabilizes — it delivers the same
// view v to every member of v and no further view/start_change notifications
// — then every member's GCS eventually delivers v, and every message sent in
// v is delivered by every member.
//
// Tests record the full event trace, run the execution to quiescence (the
// runtime analogue of "eventually" in a fair execution), and then call
// check(): it detects whether the trace's membership suffix stabilized and,
// if so, asserts the conclusions.
#pragma once

#include <optional>
#include <vector>

#include "spec/events.hpp"

namespace vsgc::spec {

class LivenessChecker {
 public:
  /// The view the membership stabilized on, if any: some view v such that
  /// every member's final membership event is the delivery of v (and the
  /// member never crashed without recovering).
  static std::optional<View> stable_view(const std::vector<Event>& trace);

  /// Assert Property 4.2's conclusions; throws InvariantViolation on failure.
  /// Returns true if the premise held (so the conclusions were checked).
  static bool check(const std::vector<Event>& trace);
};

}  // namespace vsgc::spec
