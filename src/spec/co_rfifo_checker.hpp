// Checker for the CO_RFIFO service specification (paper Figure 3).
//
// CO_RFIFO is below the GCS trace-event vocabulary, so this checker is fed
// directly by transport tests: call note_send / note_reliable / note_deliver
// around a CoRfifoTransport pair and the checker asserts the channel
// semantics:
//   * deliveries from p to q follow the send order (FIFO, no duplicates,
//     no reordering);
//   * while q stays continuously in p's reliable_set from the moment a
//     message is sent, no gap may precede that message (losses may only cut
//     a suffix of the stream, and only for non-reliable peers).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <set>

#include "net/node.hpp"
#include "util/assert.hpp"

namespace vsgc::spec {

class CoRfifoChecker {
 public:
  /// Record send_p(set, m); `uid` identifies the message.
  void note_send(net::NodeId p, const std::set<net::NodeId>& dests,
                 std::uint64_t uid) {
    for (net::NodeId q : dests) {
      channels_[{p, q}].sent.push_back(
          Entry{uid, reliable_[p].contains(q) || p == q});
    }
  }

  /// Record reliable_p(set).
  void note_reliable(net::NodeId p, const std::set<net::NodeId>& set) {
    reliable_[p] = set;
    // Messages already in flight to peers no longer in the set may now be
    // lost (suffix loss): mark them droppable.
    for (auto& [key, ch] : channels_) {
      if (key.first != p) continue;
      if (set.contains(key.second)) continue;
      for (std::size_t i = ch.next_to_deliver; i < ch.sent.size(); ++i) {
        ch.sent[i].reliable = false;
      }
    }
  }

  /// Record deliver_{p,q}(m); asserts order and gap-freedom.
  void note_deliver(net::NodeId p, net::NodeId q, std::uint64_t uid) {
    auto& ch = channels_[{p, q}];
    // Find uid at or after the delivery cursor; everything skipped must have
    // been droppable (sent while q was outside p's reliable set).
    std::size_t i = ch.next_to_deliver;
    while (i < ch.sent.size() && ch.sent[i].uid != uid) {
      VSGC_REQUIRE(!ch.sent[i].reliable,
                   "CO_RFIFO: gap before uid "
                       << uid << " on channel " << net::to_string(p) << "->"
                       << net::to_string(q) << ": reliable message uid "
                       << ch.sent[i].uid << " was skipped");
      ++i;
    }
    VSGC_REQUIRE(i < ch.sent.size(),
                 "CO_RFIFO: delivery of uid "
                     << uid << " on " << net::to_string(p) << "->"
                     << net::to_string(q)
                     << " that was never sent (or is a duplicate/reorder)");
    ch.next_to_deliver = i + 1;
  }

  /// Flow-control safety (DESIGN.md §11): the credit window bounds the
  /// sender's unacked queue and the receive window bounds the reorder
  /// buffer. Called with a transport's peak stats after a run — any
  /// excursion past the configured windows is a checker violation.
  static void check_bounded(net::NodeId at, std::uint64_t peak_unacked,
                            std::uint64_t send_window,
                            std::uint64_t peak_out_of_order,
                            std::uint64_t recv_window) {
    VSGC_REQUIRE(peak_unacked <= send_window,
                 "CO_RFIFO: unacked queue at " << net::to_string(at)
                     << " peaked at " << peak_unacked
                     << ", exceeding the credit window " << send_window);
    VSGC_REQUIRE(peak_out_of_order <= recv_window,
                 "CO_RFIFO: out-of-order buffer at " << net::to_string(at)
                     << " peaked at " << peak_out_of_order
                     << ", exceeding the receive window " << recv_window);
  }

 private:
  struct Entry {
    std::uint64_t uid;
    bool reliable;  ///< sent while the destination was in the reliable set
  };

  struct Channel {
    std::vector<Entry> sent;
    std::size_t next_to_deliver = 0;
  };

  std::map<std::pair<net::NodeId, net::NodeId>, Channel> channels_;
  std::map<net::NodeId, std::set<net::NodeId>> reliable_;
};

}  // namespace vsgc::spec
