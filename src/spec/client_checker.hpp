// Runtime checker for CLIENT : SPEC (paper Figure 12) — the blocking-client
// contract the GCS relies on for Self Delivery:
//   * block_ok only answers an outstanding block request;
//   * a blocked client never sends until the next view unblocks it.
#pragma once

#include <map>

#include "spec/events.hpp"
#include "util/assert.hpp"

namespace vsgc::spec {

class ClientChecker : public TraceSink {
 public:
  void on_event(const Event& event) override {
    if (const auto* b = std::get_if<GcsBlock>(&event.body)) {
      status_[b->p] = Status::kRequested;
    } else if (const auto* ok = std::get_if<GcsBlockOk>(&event.body)) {
      VSGC_REQUIRE(status_[ok->p] == Status::kRequested,
                   "CLIENT: block_ok without outstanding block at "
                       << to_string(ok->p));
      status_[ok->p] = Status::kBlocked;
    } else if (const auto* s = std::get_if<GcsSend>(&event.body)) {
      VSGC_REQUIRE(status_[s->p] != Status::kBlocked,
                   "CLIENT: send while blocked at " << to_string(s->p));
    } else if (const auto* v = std::get_if<GcsView>(&event.body)) {
      status_[v->p] = Status::kUnblocked;
    } else if (const auto* r = std::get_if<Recover>(&event.body)) {
      status_[r->p] = Status::kUnblocked;
    }
  }

 private:
  enum class Status { kUnblocked, kRequested, kBlocked };
  std::map<ProcessId, Status> status_;
};

}  // namespace vsgc::spec
