// Runtime checker for SELF : SPEC (paper Figure 7) — Self Delivery.
//
// Extends WvRfifoChecker with Figure 7's extra view precondition: an
// end-point may not deliver a new view before it has delivered every message
// its own application sent in the current view. This holds only when clients
// satisfy CLIENT:SPEC (Figure 12) — tests pair this checker with
// ClientChecker and a blocking client.
#pragma once

#include "spec/wv_rfifo_checker.hpp"

namespace vsgc::spec {

class SelfChecker : public WvRfifoChecker {
 protected:
  void check_view(const GcsView& e) override {
    const View& cv = current_view(e.p);
    const auto& own_queue = msgs_[e.p][cv];
    const std::int64_t own_delivered = last_dlvrd_[e.p][e.p];
    VSGC_REQUIRE(
        own_delivered == static_cast<std::int64_t>(own_queue.size()),
        "SELF: Self Delivery violated at "
            << to_string(e.p) << " moving to " << to_string(e.view.id)
            << ": delivered " << own_delivered << " of " << own_queue.size()
            << " own messages sent in " << to_string(cv.id));
    WvRfifoChecker::check_view(e);
  }
};

}  // namespace vsgc::spec
