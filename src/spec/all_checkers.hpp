// Convenience bundle: every safety checker of Section 4 plus the membership
// and client specs, wired to a TraceBus in one call. Integration and property
// tests attach this to simulated worlds so any spec violation aborts the run.
//
// The eventual-safety twin of this bundle — every checker wrapped in
// spec::Eventually<> so violations are tolerated inside a bounded window
// after a state-corruption injection — is spec::AllEventualCheckers in
// eventually.hpp (DESIGN.md §12).
#pragma once

#include "spec/client_checker.hpp"
#include "spec/liveness_checker.hpp"
#include "spec/mbrshp_checker.hpp"
#include "spec/self_checker.hpp"
#include "spec/trans_set_checker.hpp"
#include "spec/vs_rfifo_checker.hpp"
#include "spec/wv_rfifo_checker.hpp"

namespace vsgc::spec {

struct AllCheckers {
  MbrshpChecker mbrshp;
  WvRfifoChecker wv_rfifo;
  VsRfifoChecker vs_rfifo;
  TransSetChecker trans_set;
  SelfChecker self;
  ClientChecker client;

  void attach(TraceBus& bus) {
    bus.subscribe(mbrshp);
    bus.subscribe(wv_rfifo);
    bus.subscribe(vs_rfifo);
    bus.subscribe(trans_set);
    bus.subscribe(self);
    bus.subscribe(client);
  }

  /// End-of-execution checks (prophecy-style properties).
  void finalize() const { trans_set.finalize(); }
};

}  // namespace vsgc::spec
