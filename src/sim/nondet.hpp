// NondetSource: the controllable-nondeterminism seam for model checking.
//
// In a normal run every nondeterministic decision in the kernel and the
// network (same-time event tie-breaks, loss draws, jitter draws) is resolved
// by a seeded Rng or by insertion order. Installing a NondetSource turns
// each of those decisions into an explicit *choice point*: the source is
// consulted with the number of alternatives and returns the index to take.
//
// The mc layer (src/mc) provides sources that (a) force a recorded choice
// prefix and default the rest — the substrate of systematic schedule
// exploration and of byte-identical ScheduleScript replay — and (b) pick
// uniformly at random from a seed (the random-walk fallback).
//
// With no source installed (`nullptr`, the default everywhere) behavior is
// exactly the pre-existing deterministic one; the seam costs one branch.
#pragma once

#include <cstddef>

namespace vsgc::sim {

class NondetSource {
 public:
  virtual ~NondetSource() = default;

  /// Resolve one nondeterministic choice among `n` >= 2 alternatives;
  /// returns an index in [0, n). `kind` names the choice point for traces
  /// and scripts ("sim.tiebreak", "net.drop", "net.jitter", "mc.fault").
  /// Alternative 0 is always the *default* — what the uncontrolled run
  /// would do — so a delay bound counts non-zero picks.
  virtual std::size_t choose(const char* kind, std::size_t n) = 0;
};

}  // namespace vsgc::sim
