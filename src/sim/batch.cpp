#include "sim/batch.hpp"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>

namespace vsgc::sim {

std::size_t BatchRunner::hardware_jobs() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

BatchRunner::BatchRunner(std::size_t jobs)
    : jobs_(jobs == 0 ? hardware_jobs() : jobs) {}

namespace {

/// One per worker: the worker pops its own deque from the front (LIFO-ish
/// locality on its contiguous chunk), thieves pop from the back, so owner and
/// thief contend on opposite ends and a steal grabs the work farthest from
/// the owner's current position.
struct WorkerQueue {
  std::mutex mu;
  std::deque<std::size_t> items;

  bool pop_front(std::size_t& out) {
    std::lock_guard<std::mutex> lock(mu);
    if (items.empty()) return false;
    out = items.front();
    items.pop_front();
    return true;
  }

  bool pop_back(std::size_t& out) {
    std::lock_guard<std::mutex> lock(mu);
    if (items.empty()) return false;
    out = items.back();
    items.pop_back();
    return true;
  }
};

/// First-error-by-task-index capture: whichever worker hits an exception
/// records it, but a later record for a smaller index wins, so the exception
/// that escapes for_each is the one the sequential run would have thrown.
struct ErrorSlot {
  std::mutex mu;
  std::size_t index = SIZE_MAX;
  std::exception_ptr error;
  std::atomic<bool> raised{false};

  void record(std::size_t i, std::exception_ptr e) {
    std::lock_guard<std::mutex> lock(mu);
    if (i < index) {
      index = i;
      error = std::move(e);
    }
    raised.store(true, std::memory_order_release);
  }
};

}  // namespace

void BatchRunner::for_each(std::size_t count,
                           const std::function<void(std::size_t)>& fn) const {
  if (count == 0) return;
  const std::size_t workers = std::min(jobs_, count);
  if (workers <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  // Contiguous chunk per worker: worker w initially owns the index range
  // [w*count/workers, (w+1)*count/workers).
  std::deque<WorkerQueue> queues(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    const std::size_t lo = w * count / workers;
    const std::size_t hi = (w + 1) * count / workers;
    for (std::size_t i = lo; i < hi; ++i) queues[w].items.push_back(i);
  }

  ErrorSlot err;

  auto worker_loop = [&](std::size_t w) {
    auto run_one = [&](std::size_t idx) {
      try {
        fn(idx);
      } catch (...) {
        err.record(idx, std::current_exception());
      }
    };
    while (!err.raised.load(std::memory_order_acquire)) {
      std::size_t idx = 0;
      if (queues[w].pop_front(idx)) {
        run_one(idx);
        continue;
      }
      // Own chunk dry: steal a tail task from the first non-empty victim.
      bool stole = false;
      for (std::size_t off = 1; off < workers && !stole; ++off) {
        if (queues[(w + off) % workers].pop_back(idx)) {
          run_one(idx);
          stole = true;
        }
      }
      // No work anywhere — and none will appear (tasks never enqueue more).
      if (!stole) return;
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(workers - 1);
  for (std::size_t w = 1; w < workers; ++w) {
    threads.emplace_back(worker_loop, w);
  }
  worker_loop(0);
  for (std::thread& t : threads) t.join();

  if (err.error != nullptr) std::rethrow_exception(err.error);
}

}  // namespace vsgc::sim
