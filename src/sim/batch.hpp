// Parallel batch-execution engine for seed sweeps and schedule exploration.
//
// The simulation kernel is strictly single-threaded; parallelism in this repo
// exists only ACROSS worlds, never within one. BatchRunner runs N independent
// tasks (one fully isolated World/Simulator/Rng/TraceBus per task) on a
// work-stealing worker pool and leaves result merging to the caller, who
// iterates results in task-index order. Because task index — not thread
// schedule — keys every result, tool output is byte-identical for any --jobs
// value and any interleaving of workers.
//
// Determinism contract:
//   * Tasks share no mutable state. Anything a task touches (Simulator,
//     Network, Rng, TraceBus, checkers) must be constructed inside the task.
//     Process-global seams are thread-safe by construction: the Logger
//     sim-clock hook is thread-local, and everything else in src/ is
//     per-instance.
//   * Results live in a caller-indexed slot per task; no ordering between
//     sibling tasks is observable.
//   * If tasks throw, the exception thrown by the LOWEST task index is
//     rethrown after the pool drains — again independent of scheduling.
//     Remaining unstarted tasks may be skipped once a task has thrown.
//
// This file is threading code inside src/sim and still obeys the determinism
// lint: no wall-clock reads, no ambient randomness. Timing belongs to
// tools/ and bench/.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace vsgc::sim {

class BatchRunner {
 public:
  /// `jobs == 0` means "one worker per hardware thread". `jobs == 1` runs
  /// every task inline on the calling thread (no pool, no synchronization) —
  /// the reference sequential mode that parallel runs must match.
  explicit BatchRunner(std::size_t jobs);

  /// Hardware concurrency with a floor of 1 (the standard allows 0).
  static std::size_t hardware_jobs();

  std::size_t jobs() const { return jobs_; }

  /// Run `fn(0) .. fn(count-1)`, each exactly once, spread over the worker
  /// pool. Returns when all tasks have finished. Each worker owns a
  /// contiguous chunk of the index range and steals from the tail of other
  /// workers' chunks when its own runs dry.
  void for_each(std::size_t count,
                const std::function<void(std::size_t)>& fn) const;

  /// for_each that collects one result per task, returned in task-index
  /// order regardless of which worker produced which result.
  template <typename R>
  std::vector<R> map(std::size_t count,
                     const std::function<R(std::size_t)>& fn) const {
    std::vector<R> out(count);
    for_each(count, [&](std::size_t i) { out[i] = fn(i); });
    return out;
  }

 private:
  std::size_t jobs_;
};

}  // namespace vsgc::sim
