// Deterministic discrete-event simulation kernel.
//
// Every process, server, network link, and failure schedule in this
// repository runs on top of this kernel. Events at equal timestamps fire in
// insertion order, so an execution is a pure function of (code, seed).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/time.hpp"

namespace vsgc::sim {

class Simulator;

/// Cancellation handle for a scheduled event.
class TimerHandle {
 public:
  TimerHandle() = default;

  /// Cancel the event if it has not fired yet. Safe to call repeatedly.
  void cancel() {
    if (auto alive = alive_.lock()) *alive = false;
  }

  bool pending() const {
    auto alive = alive_.lock();
    return alive && *alive;
  }

 private:
  friend class Simulator;
  explicit TimerHandle(std::weak_ptr<bool> alive) : alive_(std::move(alive)) {}

  std::weak_ptr<bool> alive_;
};

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  Time now() const { return now_; }

  /// Schedule `fn` to run at now() + delay (delay >= 0).
  TimerHandle schedule(Time delay, std::function<void()> fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  TimerHandle schedule_at(Time when, std::function<void()> fn) {
    auto alive = std::make_shared<bool>(true);
    queue_.push(Event{when, next_seq_++, alive, std::move(fn)});
    return TimerHandle(alive);
  }

  /// Run events until the queue drains or `deadline` passes.
  /// Returns the number of events executed.
  std::size_t run_until(Time deadline) {
    std::size_t executed = 0;
    while (!queue_.empty() && queue_.top().when <= deadline) {
      executed += step();
    }
    if (now_ < deadline) now_ = deadline;
    return executed;
  }

  /// Run until no events remain (or the safety cap trips — runaway protection
  /// for tests). Returns the number of events executed.
  std::size_t run_to_quiescence(std::size_t max_events = 50'000'000) {
    std::size_t executed = 0;
    while (!queue_.empty()) {
      executed += step();
      if (executed > max_events) return executed;
    }
    return executed;
  }

  bool quiescent() const { return queue_.empty(); }
  std::size_t pending_events() const { return queue_.size(); }

 private:
  struct Event {
    Time when;
    std::uint64_t seq;
    std::shared_ptr<bool> alive;
    std::function<void()> fn;

    bool operator>(const Event& other) const {
      if (when != other.when) return when > other.when;
      return seq > other.seq;
    }
  };

  /// Pop and execute one event; returns 1 if a live event ran, 0 otherwise.
  std::size_t step() {
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.when > now_ ? ev.when : now_;
    if (!*ev.alive) return 0;
    // Mark consumed before running: a handler that re-arms its own timer must
    // observe the old handle as no longer pending.
    *ev.alive = false;
    ev.fn();
    return 1;
  }

  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace vsgc::sim
