// Deterministic discrete-event simulation kernel.
//
// Every process, server, network link, and failure schedule in this
// repository runs on top of this kernel. Events at equal timestamps fire in
// insertion order, so an execution is a pure function of (code, seed).
//
// Performance architecture (DESIGN.md §9): the kernel is allocation-free on
// the steady-state scheduling path. Events live in a slab arena of fixed
// 256-slot chunks threaded onto a free list; each slot embeds the callback
// in 64 bytes of inline storage (closures that do not fit fall back to one
// heap cell). The ready queue realizes (time, insertion-seq) order — the
// exact ordering the previous std::priority_queue implementation had — as
// FIFO runs per distinct timestamp (seq is assigned monotonically, so
// append order IS insertion order) threaded through the event slots, with
// an index-based 4-ary min-heap over just the distinct timestamps. Pushing
// into a live timestamp and popping within a run are O(1); the heap is only
// touched when a timestamp first appears or finally drains. Cancellation is
// by generation-counted TimerHandle: a handle names (slot, generation) and
// goes stale the moment the event fires, is cancelled, or the slot is
// reused — no reference counting anywhere on the hot path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/nondet.hpp"
#include "sim/time.hpp"
#include "util/logging.hpp"

namespace vsgc::sim {

// TimerHandle (and the Simulator forward declaration) live in sim/time.hpp —
// the lightweight surface protocol code is allowed to include. Its inline
// cancel()/pending() are defined at the bottom of this header.

/// Outcome of run_to_quiescence: how many events ran and whether the run
/// actually drained the queue or was cut off by the runaway cap. Converts to
/// the executed count so existing `std::size_t n = sim.run_to_quiescence()`
/// call sites keep working.
struct QuiescenceResult {
  std::size_t executed = 0;
  bool capped = false;  ///< the max_events safety cap fired; queue NOT drained

  operator std::size_t() const { return executed; }
};

class Simulator {
 public:
  /// Kernel instrumentation, exported through obs::BenchArtifact. Kept to
  /// plain increments on the scheduling path so it costs nothing measurable.
  struct Stats {
    std::uint64_t events_scheduled = 0;
    std::uint64_t events_executed = 0;
    std::uint64_t events_cancelled = 0;  ///< popped after TimerHandle::cancel
    std::size_t peak_queue_depth = 0;
  };

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  ~Simulator() {
    // Pending callbacks own resources (captured payload handles etc.);
    // destroy them. Cancelled slots already ran their destructor.
    for (std::uint32_t i = 0; i < slots_used_; ++i) {
      Slot& s = slot_at(i);
      if (s.state == SlotState::kPending) s.destroy(s.storage());
    }
  }

  Time now() const { return now_; }
  const Stats& stats() const { return stats_; }

  /// Install (or with nullptr remove) a controllable-nondeterminism source.
  /// While installed, every tie-break among live same-time events becomes a
  /// choice point instead of firing in insertion order. The source must
  /// outlive the simulator or be detached before it dies.
  void set_nondet(NondetSource* source) { nondet_ = source; }
  NondetSource* nondet() const { return nondet_; }

  /// Schedule `fn` to run at now() + delay (delay >= 0).
  template <typename Fn>
  TimerHandle schedule(Time delay, Fn&& fn) {
    return schedule_at(now_ + delay, std::forward<Fn>(fn));
  }

  template <typename Fn>
  TimerHandle schedule_at(Time when, Fn&& fn) {
    std::uint32_t slot;
    Slot& s = alloc_slot(slot);
    s.emplace(std::forward<Fn>(fn));
    queue_push(when, slot);
    ++stats_.events_scheduled;
    if (queue_size_ > stats_.peak_queue_depth) {
      stats_.peak_queue_depth = queue_size_;
    }
    return TimerHandle(this, slot, s.gen);
  }

  /// Run events until the queue drains or `deadline` passes.
  /// Returns the number of events executed.
  std::size_t run_until(Time deadline) {
    std::size_t executed = 0;
    while (!heap_.empty() && heap_[0].when <= deadline) {
      executed += step();
    }
    if (now_ < deadline) now_ = deadline;
    return executed;
  }

  /// Run until no events remain, or the safety cap trips — runaway protection
  /// for tests. A capped run is NOT quiescence: the result says so explicitly
  /// and a warning is logged, instead of returning a count that looks like a
  /// clean drain.
  QuiescenceResult run_to_quiescence(std::size_t max_events = 50'000'000) {
    QuiescenceResult result;
    while (!heap_.empty()) {
      if (slot_at(front_slot()).state != SlotState::kPending) {
        step();  // cancelled events are free to discard
        continue;
      }
      // Exact cap: execute at most max_events live events, checked before
      // the next step so event max_events + 1 never runs. A run of exactly
      // max_events live events drains cleanly and is not reported as capped.
      if (result.executed >= max_events) {
        result.capped = true;
        VSGC_WARN("sim", "run_to_quiescence hit the " << max_events
                         << "-event runaway cap at t=" << now_ << "us with "
                         << queue_size_ << " events still pending");
        return result;
      }
      result.executed += step();
    }
    return result;
  }

  bool quiescent() const { return heap_.empty(); }
  std::size_t pending_events() const { return queue_size_; }

 private:
  friend class TimerHandle;

  // --- Event arena -------------------------------------------------------
  //
  // Fixed-size slots in 256-slot chunks (slot addresses are stable across
  // growth, so a handler may schedule freely while its own slot is live).
  // Free slots are threaded onto a LIFO free list through `next_free`.

  enum class SlotState : std::uint8_t {
    kFree,       ///< on the free list
    kPending,    ///< scheduled, callback constructed in storage
    kCancelled,  ///< cancelled, callback destroyed; awaiting heap pop
    kExecuting,  ///< callback currently running (slot not reusable yet)
  };

  static constexpr std::size_t kInlineBytes = 64;
  static constexpr std::uint32_t kChunkSlots = 256;
  static constexpr std::uint32_t kNoSlot = 0xffffffffu;

  struct Slot {
    // Metadata first so the state/gen check, the invoke/destroy pointers and
    // the head of the callback share a cache line.
    void (*invoke)(void*) = nullptr;
    void (*destroy)(void*) = nullptr;
    std::uint32_t gen = 0;  ///< bumped on every allocation
    /// Intrusive link: free-list successor while kFree, same-timestamp FIFO
    /// successor while queued (kPending / kCancelled).
    std::uint32_t next = kNoSlot;
    SlotState state = SlotState::kFree;
    alignas(std::max_align_t) unsigned char buf[kInlineBytes];

    void* storage() { return static_cast<void*>(buf); }

    template <typename Fn>
    void emplace(Fn&& fn) {
      using T = std::decay_t<Fn>;
      if constexpr (sizeof(T) <= kInlineBytes &&
                    alignof(T) <= alignof(std::max_align_t)) {
        ::new (storage()) T(std::forward<Fn>(fn));
        invoke = [](void* p) { (*static_cast<T*>(p))(); };
        destroy = [](void* p) { static_cast<T*>(p)->~T(); };
      } else {
        // Oversized closure: one heap cell, pointer parked in the slot.
        *static_cast<T**>(storage()) = new T(std::forward<Fn>(fn));
        invoke = [](void* p) { (**static_cast<T**>(p))(); };
        destroy = [](void* p) { delete *static_cast<T**>(p); };
      }
    }
  };

  struct Chunk {
    Slot slots[kChunkSlots];
  };

  Slot& slot_at(std::uint32_t index) {
    return chunks_[index / kChunkSlots]->slots[index % kChunkSlots];
  }
  const Slot& slot_at(std::uint32_t index) const {
    return chunks_[index / kChunkSlots]->slots[index % kChunkSlots];
  }

  Slot& alloc_slot(std::uint32_t& index) {
    if (free_head_ != kNoSlot) {
      index = free_head_;
      Slot& s = slot_at(index);
      free_head_ = s.next;
      ++s.gen;
      s.state = SlotState::kPending;
      return s;
    }
    index = slots_used_++;
    if (index / kChunkSlots >= chunks_.size()) {
      chunks_.push_back(std::make_unique<Chunk>());
    }
    Slot& s = slot_at(index);
    ++s.gen;
    s.state = SlotState::kPending;
    return s;
  }

  void free_slot(Slot& s, std::uint32_t index) {
    s.state = SlotState::kFree;
    s.next = free_head_;
    free_head_ = index;
  }

  void cancel_slot(std::uint32_t index, std::uint32_t gen) {
    if (index >= slots_used_) return;
    Slot& s = slot_at(index);
    if (s.gen != gen || s.state != SlotState::kPending) return;
    s.state = SlotState::kCancelled;
    s.destroy(s.storage());  // release captured resources promptly
  }

  bool slot_pending(std::uint32_t index, std::uint32_t gen) const {
    if (index >= slots_used_) return false;
    const Slot& s = slot_at(index);
    return s.gen == gen && s.state == SlotState::kPending;
  }

  // --- Ready queue: per-timestamp FIFO runs + 4-ary min-heap of times ----
  //
  // Same-time events form a FIFO run threaded through their slots' `next`
  // links (seq is assigned monotonically, so append order is exactly
  // insertion-seq order). A Bucket names one run; the 4-ary min-heap orders
  // the distinct timestamps, one 16-byte entry each, so there are never ties
  // inside the heap. An open-addressed map (when -> bucket) makes pushing
  // into a live timestamp O(1); heap sifts happen only when a timestamp
  // first appears or finally drains.

  struct Bucket {
    Time when = 0;
    std::uint32_t head = kNoSlot;
    std::uint32_t tail = kNoSlot;
    std::uint32_t next_free = kNoSlot;  ///< bucket-pool free list
  };

  struct HeapEntry {
    Time when;
    std::uint32_t bucket;
  };

  struct PoppedEvent {
    Time when;
    std::uint32_t slot;
  };

  static std::size_t hash_time(Time when) {
    // splitmix64 finalizer: cheap and uniform over sparse timestamps.
    auto x = static_cast<std::uint64_t>(when) + 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return static_cast<std::size_t>(x ^ (x >> 31));
  }

  void map_grow() {
    const std::size_t cap = map_.empty() ? 64 : map_.size() * 2;
    map_.assign(cap, 0);
    mask_ = cap - 1;
    for (const HeapEntry& e : heap_) {
      std::size_t idx = hash_time(e.when) & mask_;
      while (map_[idx] != 0) idx = (idx + 1) & mask_;
      map_[idx] = e.bucket + 1;
    }
  }

  void map_erase(Time when) {
    std::size_t idx = hash_time(when) & mask_;
    while (buckets_[map_[idx] - 1].when != when) idx = (idx + 1) & mask_;
    // Backward-shift deletion keeps probe chains intact without tombstones.
    std::size_t hole = idx;
    std::size_t i = idx;
    for (;;) {
      i = (i + 1) & mask_;
      if (map_[i] == 0) break;
      const std::size_t home = hash_time(buckets_[map_[i] - 1].when) & mask_;
      if (((i - home) & mask_) >= ((i - hole) & mask_)) {
        map_[hole] = map_[i];
        hole = i;
      }
    }
    map_[hole] = 0;
  }

  /// Find the bucket for `when`, creating it (and its heap entry) if absent.
  std::uint32_t bucket_for(Time when) {
    if ((heap_.size() + 1) * 2 > map_.size()) map_grow();
    std::size_t idx = hash_time(when) & mask_;
    while (map_[idx] != 0) {
      const std::uint32_t b = map_[idx] - 1;
      if (buckets_[b].when == when) return b;
      idx = (idx + 1) & mask_;
    }
    std::uint32_t b;
    if (bucket_free_ != kNoSlot) {
      b = bucket_free_;
      bucket_free_ = buckets_[b].next_free;
    } else {
      b = static_cast<std::uint32_t>(buckets_.size());
      buckets_.emplace_back();
    }
    Bucket& bk = buckets_[b];
    bk.when = when;
    bk.head = bk.tail = kNoSlot;
    map_[idx] = b + 1;
    heap_push(HeapEntry{when, b});
    return b;
  }

  void queue_push(Time when, std::uint32_t slot) {
    Slot& s = slot_at(slot);
    s.next = kNoSlot;
    Bucket& bk = buckets_[bucket_for(when)];
    if (bk.tail == kNoSlot) {
      bk.head = bk.tail = slot;
    } else {
      slot_at(bk.tail).next = slot;
      bk.tail = slot;
    }
    ++queue_size_;
  }

  PoppedEvent queue_pop() {
    const HeapEntry top = heap_[0];
    Bucket& bk = buckets_[top.bucket];
    const std::uint32_t slot = bk.head;
    const std::uint32_t next = slot_at(slot).next;
    bk.head = next;
    if (next == kNoSlot) {
      // Run drained: retire the bucket and its heap entry.
      map_erase(top.when);
      bk.next_free = bucket_free_;
      bucket_free_ = top.bucket;
      heap_pop();
    }
    --queue_size_;
    return PoppedEvent{top.when, slot};
  }

  /// Slot index of the event at the queue head. Precondition: non-empty.
  std::uint32_t front_slot() const { return buckets_[heap_[0].bucket].head; }

  // Both directions sift a hole instead of swapping: the moving entry stays
  // in registers and each level costs one store, not three. Timestamps in
  // the heap are distinct, so `<` on `when` is a strict total order.
  void heap_push(HeapEntry e) {
    heap_.push_back(e);  // grow; the slot is overwritten by the sift below
    HeapEntry* h = heap_.data();
    std::size_t i = heap_.size() - 1;
    while (i > 0) {
      const std::size_t parent = (i - 1) >> 2;
      if (e.when >= h[parent].when) break;
      h[i] = h[parent];
      i = parent;
    }
    h[i] = e;
  }

  void heap_pop() {
    HeapEntry* h = heap_.data();
    const HeapEntry last = heap_.back();
    heap_.pop_back();
    const std::size_t n = heap_.size();
    if (n != 0) {
      std::size_t i = 0;
      for (;;) {
        const std::size_t first = i * 4 + 1;
        if (first >= n) break;
        const std::size_t end = first + 4 < n ? first + 4 : n;
        std::size_t best = first;
        for (std::size_t c = first + 1; c < end; ++c) {
          if (h[c].when < h[best].when) best = c;
        }
        if (h[best].when >= last.when) break;
        h[i] = h[best];
        i = best;
      }
      h[i] = last;
    }
  }

  // --- Execution ---------------------------------------------------------

  /// Pop the next event to run. Without a NondetSource this is the queue
  /// head (time order, then insertion order). With one installed, all live
  /// events tied at the head timestamp form a choice point: the source picks
  /// which fires now and the rest are re-queued (keeping their original
  /// insertion ranks, so alternative 0 reproduces the uncontrolled order).
  PoppedEvent pop_next() {
    PoppedEvent ev = queue_pop();
    if (nondet_ == nullptr ||
        slot_at(ev.slot).state != SlotState::kPending) {
      return ev;
    }
    batch_.clear();
    batch_.push_back(ev.slot);
    while (!heap_.empty() && heap_[0].when == ev.when) {
      const PoppedEvent peer = queue_pop();
      Slot& ps = slot_at(peer.slot);
      if (ps.state != SlotState::kPending) {
        ++stats_.events_cancelled;  // dead peers are discarded, never offered
        free_slot(ps, peer.slot);
        continue;
      }
      batch_.push_back(peer.slot);
    }
    std::size_t pick = 0;
    if (batch_.size() > 1) {
      pick = nondet_->choose("sim.tiebreak", batch_.size());
      if (pick >= batch_.size()) pick = batch_.size() - 1;
    }
    const std::uint32_t chosen = batch_[pick];
    for (std::size_t i = 0; i < batch_.size(); ++i) {
      // Re-queue in batch order: relative seq order among survivors is
      // preserved, so alternative 0 reproduces the uncontrolled schedule.
      if (i != pick) queue_push(ev.when, batch_[i]);
    }
    return PoppedEvent{ev.when, chosen};
  }

  /// Pop and execute one event; returns 1 if a live event ran, 0 otherwise.
  std::size_t step() {
    const PoppedEvent ev = pop_next();
    now_ = ev.when > now_ ? ev.when : now_;
    Slot& s = slot_at(ev.slot);
    if (s.state != SlotState::kPending) {
      ++stats_.events_cancelled;
      free_slot(s, ev.slot);
      return 0;
    }
    // Mark consumed before running: a handler that re-arms its own timer must
    // observe the old handle as no longer pending. The slot stays off the
    // free list while executing so nested schedules cannot reuse its storage.
    s.state = SlotState::kExecuting;
    struct Reclaim {
      Simulator* sim;
      Slot* s;  // slot addresses are stable across nested schedules
      std::uint32_t slot;
      // Destroy + free even when the callback throws (checker violations
      // propagate through run_until), so no captured resource leaks.
      ~Reclaim() {
        s->destroy(s->storage());
        sim->free_slot(*s, slot);
      }
    } reclaim{this, &s, ev.slot};
    s.invoke(s.storage());
    ++stats_.events_executed;
    return 1;
  }

  std::vector<std::unique_ptr<Chunk>> chunks_;
  std::uint32_t slots_used_ = 0;
  std::uint32_t free_head_ = kNoSlot;
  std::vector<Bucket> buckets_;        ///< bucket pool (index-stable)
  std::uint32_t bucket_free_ = kNoSlot;
  std::vector<std::uint32_t> map_;     ///< open-addressed when -> bucket + 1
  std::size_t mask_ = 0;
  std::vector<HeapEntry> heap_;        ///< 4-ary min-heap of distinct times
  std::size_t queue_size_ = 0;         ///< queued events (incl. cancelled)
  std::vector<std::uint32_t> batch_;   ///< tie-break scratch (reused)
  Time now_ = 0;
  Stats stats_;
  NondetSource* nondet_ = nullptr;
};

inline void TimerHandle::cancel() {
  if (sim_ != nullptr) sim_->cancel_slot(slot_, gen_);
}

inline bool TimerHandle::pending() const {
  return sim_ != nullptr && sim_->slot_pending(slot_, gen_);
}

}  // namespace vsgc::sim
