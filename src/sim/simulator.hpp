// Deterministic discrete-event simulation kernel.
//
// Every process, server, network link, and failure schedule in this
// repository runs on top of this kernel. Events at equal timestamps fire in
// insertion order, so an execution is a pure function of (code, seed).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/nondet.hpp"
#include "sim/time.hpp"
#include "util/logging.hpp"

namespace vsgc::sim {

class Simulator;

/// Cancellation handle for a scheduled event.
class TimerHandle {
 public:
  TimerHandle() = default;

  /// Cancel the event if it has not fired yet. Safe to call repeatedly.
  void cancel() {
    if (auto alive = alive_.lock()) *alive = false;
  }

  bool pending() const {
    auto alive = alive_.lock();
    return alive && *alive;
  }

 private:
  friend class Simulator;
  explicit TimerHandle(std::weak_ptr<bool> alive) : alive_(std::move(alive)) {}

  std::weak_ptr<bool> alive_;
};

/// Outcome of run_to_quiescence: how many events ran and whether the run
/// actually drained the queue or was cut off by the runaway cap. Converts to
/// the executed count so existing `std::size_t n = sim.run_to_quiescence()`
/// call sites keep working.
struct QuiescenceResult {
  std::size_t executed = 0;
  bool capped = false;  ///< the max_events safety cap fired; queue NOT drained

  operator std::size_t() const { return executed; }
};

class Simulator {
 public:
  /// Kernel instrumentation, exported through obs::BenchArtifact. Kept to
  /// plain increments on the scheduling path so it costs nothing measurable.
  struct Stats {
    std::uint64_t events_scheduled = 0;
    std::uint64_t events_executed = 0;
    std::uint64_t events_cancelled = 0;  ///< popped after TimerHandle::cancel
    std::size_t peak_queue_depth = 0;
  };

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  Time now() const { return now_; }
  const Stats& stats() const { return stats_; }

  /// Install (or with nullptr remove) a controllable-nondeterminism source.
  /// While installed, every tie-break among live same-time events becomes a
  /// choice point instead of firing in insertion order. The source must
  /// outlive the simulator or be detached before it dies.
  void set_nondet(NondetSource* source) { nondet_ = source; }
  NondetSource* nondet() const { return nondet_; }

  /// Schedule `fn` to run at now() + delay (delay >= 0).
  TimerHandle schedule(Time delay, std::function<void()> fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  TimerHandle schedule_at(Time when, std::function<void()> fn) {
    auto alive = std::make_shared<bool>(true);
    queue_.push(Event{when, next_seq_++, alive, std::move(fn)});
    ++stats_.events_scheduled;
    if (queue_.size() > stats_.peak_queue_depth) {
      stats_.peak_queue_depth = queue_.size();
    }
    return TimerHandle(alive);
  }

  /// Run events until the queue drains or `deadline` passes.
  /// Returns the number of events executed.
  std::size_t run_until(Time deadline) {
    std::size_t executed = 0;
    while (!queue_.empty() && queue_.top().when <= deadline) {
      executed += step();
    }
    if (now_ < deadline) now_ = deadline;
    return executed;
  }

  /// Run until no events remain, or the safety cap trips — runaway protection
  /// for tests. A capped run is NOT quiescence: the result says so explicitly
  /// and a warning is logged, instead of returning a count that looks like a
  /// clean drain.
  QuiescenceResult run_to_quiescence(std::size_t max_events = 50'000'000) {
    QuiescenceResult result;
    while (!queue_.empty()) {
      if (!*queue_.top().alive) {  // cancelled events are free to discard
        step();
        continue;
      }
      // Exact cap: execute at most max_events live events, checked before
      // the next step so event max_events + 1 never runs. A run of exactly
      // max_events live events drains cleanly and is not reported as capped.
      if (result.executed >= max_events) {
        result.capped = true;
        VSGC_WARN("sim", "run_to_quiescence hit the " << max_events
                         << "-event runaway cap at t=" << now_ << "us with "
                         << queue_.size() << " events still pending");
        return result;
      }
      result.executed += step();
    }
    return result;
  }

  bool quiescent() const { return queue_.empty(); }
  std::size_t pending_events() const { return queue_.size(); }

 private:
  struct Event {
    Time when;
    std::uint64_t seq;
    std::shared_ptr<bool> alive;
    std::function<void()> fn;

    bool operator>(const Event& other) const {
      if (when != other.when) return when > other.when;
      return seq > other.seq;
    }
  };

  /// Pop the next event to run. Without a NondetSource this is the queue
  /// head (time order, then insertion order). With one installed, all live
  /// events tied at the head timestamp form a choice point: the source picks
  /// which fires now and the rest are re-queued (keeping their original
  /// insertion ranks, so alternative 0 reproduces the uncontrolled order).
  Event pop_next() {
    Event ev = queue_.top();
    queue_.pop();
    if (nondet_ == nullptr || !*ev.alive) return ev;
    std::vector<Event> batch;
    batch.push_back(std::move(ev));
    while (!queue_.empty() && queue_.top().when == batch.front().when) {
      Event peer = queue_.top();
      queue_.pop();
      if (!*peer.alive) {  // dead peers are discarded, never offered
        ++stats_.events_cancelled;
        continue;
      }
      batch.push_back(std::move(peer));
    }
    std::size_t pick = 0;
    if (batch.size() > 1) {
      pick = nondet_->choose("sim.tiebreak", batch.size());
      if (pick >= batch.size()) pick = batch.size() - 1;
    }
    Event chosen = std::move(batch[pick]);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (i != pick) queue_.push(std::move(batch[i]));
    }
    return chosen;
  }

  /// Pop and execute one event; returns 1 if a live event ran, 0 otherwise.
  std::size_t step() {
    Event ev = pop_next();
    now_ = ev.when > now_ ? ev.when : now_;
    if (!*ev.alive) {
      ++stats_.events_cancelled;
      return 0;
    }
    // Mark consumed before running: a handler that re-arms its own timer must
    // observe the old handle as no longer pending.
    *ev.alive = false;
    ev.fn();
    ++stats_.events_executed;
    return 1;
  }

  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  Stats stats_;
  NondetSource* nondet_ = nullptr;
};

}  // namespace vsgc::sim
