// Simulated time. One tick == one microsecond of virtual time.
#pragma once

#include <cstdint>

namespace vsgc::sim {

using Time = std::int64_t;

constexpr Time kMicrosecond = 1;
constexpr Time kMillisecond = 1000 * kMicrosecond;
constexpr Time kSecond = 1000 * kMillisecond;

}  // namespace vsgc::sim
