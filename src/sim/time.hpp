// Simulated time and the lightweight timer surface. One tick == one
// microsecond of virtual time.
//
// This header is the sanctioned sim/ surface for protocol code
// (src/transport, src/gcs, src/membership): it carries only value types —
// Time, Duration, TimerHandle — and a forward declaration of Simulator, so
// a protocol automaton can hold timers and pass a `Simulator&` through
// without depending on the event-kernel internals in sim/simulator.hpp.
// The sim-purity ledger (tools/sim_purity_ledger.txt) exempts this header;
// every other sim/ include from protocol directories is ratcheted debt.
#pragma once

#include <cstdint>

namespace vsgc::sim {

using Time = std::int64_t;
using Duration = Time;

constexpr Time kMicrosecond = 1;
constexpr Time kMillisecond = 1000 * kMicrosecond;
constexpr Time kSecond = 1000 * kMillisecond;

class Simulator;

/// Cancellation handle for a scheduled event. A handle is a (slot,
/// generation) name into the simulator's event arena: copying it is free and
/// a stale handle (fired, cancelled, or slot since reused) is always safe —
/// cancel() is a no-op and pending() is false. Handles must not be used
/// after the Simulator that issued them is destroyed.
///
/// cancel()/pending() are declared inline here and defined at the bottom of
/// sim/simulator.hpp, next to the arena they poke. Holding and default-
/// constructing handles needs only this header; *calling* cancel()/pending()
/// requires simulator.hpp in the translation unit — which every runner that
/// actually drives a Simulator already has.
class TimerHandle {
 public:
  TimerHandle() = default;

  /// Cancel the event if it has not fired yet. Safe to call repeatedly.
  inline void cancel();
  inline bool pending() const;

 private:
  friend class Simulator;
  TimerHandle(Simulator* sim, std::uint32_t slot, std::uint32_t gen)
      : sim_(sim), slot_(slot), gen_(gen) {}

  Simulator* sim_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint32_t gen_ = 0;
};

}  // namespace vsgc::sim
