#include "sim/failure_injector.hpp"

#include <algorithm>
#include <limits>
#include <sstream>

#include "obs/json.hpp"
#include "util/assert.hpp"
#include "util/logging.hpp"

namespace vsgc::sim {

namespace {

struct KindName {
  FaultOp::Kind kind;
  const char* name;
};

constexpr KindName kKindNames[] = {
    {FaultOp::Kind::kCrash, "crash"},
    {FaultOp::Kind::kRecover, "recover"},
    {FaultOp::Kind::kLeave, "leave"},
    {FaultOp::Kind::kRejoin, "rejoin"},
    {FaultOp::Kind::kServerDown, "server_down"},
    {FaultOp::Kind::kServerUp, "server_up"},
    {FaultOp::Kind::kPartition, "partition"},
    {FaultOp::Kind::kWave, "wave"},
    {FaultOp::Kind::kWaveLift, "wave_lift"},
    {FaultOp::Kind::kHeal, "heal"},
    {FaultOp::Kind::kLinkDown, "link_down"},
    {FaultOp::Kind::kLinkUp, "link_up"},
    {FaultOp::Kind::kDrop, "drop"},
    {FaultOp::Kind::kLatency, "latency"},
    {FaultOp::Kind::kCrashInDelivery, "crash_in_delivery"},
    {FaultOp::Kind::kTraffic, "traffic"},
    {FaultOp::Kind::kBugDupDeliver, "bug_dup_deliver"},
    {FaultOp::Kind::kCorruptSeq, "corrupt_seq"},
    {FaultOp::Kind::kCorruptAck, "corrupt_ack"},
    {FaultOp::Kind::kCorruptReliable, "corrupt_reliable_set"},
    {FaultOp::Kind::kCorruptView, "corrupt_view_id"},
    {FaultOp::Kind::kCorruptBackoff, "corrupt_backoff"},
    {FaultOp::Kind::kBugCorruptWedge, "bug_corrupt_wedge"},
};

std::string node_ref(int v) {
  return encodes_server(v) ? "s" + std::to_string(decode_server(v))
                           : "p" + std::to_string(v);
}

std::string op_detail(const FaultOp& op) {
  std::ostringstream os;
  switch (op.kind) {
    case FaultOp::Kind::kCrash:
    case FaultOp::Kind::kRecover:
    case FaultOp::Kind::kLeave:
    case FaultOp::Kind::kRejoin:
    case FaultOp::Kind::kCrashInDelivery:
    case FaultOp::Kind::kTraffic:
      os << "p" << op.a;
      break;
    case FaultOp::Kind::kServerDown:
    case FaultOp::Kind::kServerUp:
      os << "s" << op.a;
      break;
    case FaultOp::Kind::kPartition: {
      bool first_group = true;
      for (const auto& group : op.groups) {
        if (!first_group) os << " | ";
        first_group = false;
        bool first = true;
        for (int v : group) {
          if (!first) os << " ";
          first = false;
          os << node_ref(v);
        }
      }
      break;
    }
    case FaultOp::Kind::kWave:
    case FaultOp::Kind::kWaveLift:
      if (!op.groups.empty()) {
        os << "n=" << op.groups.front().size();
        for (int v : op.groups.front()) os << " " << node_ref(v);
      }
      break;
    case FaultOp::Kind::kHeal:
    case FaultOp::Kind::kBugDupDeliver:
      break;
    case FaultOp::Kind::kLinkDown:
    case FaultOp::Kind::kLinkUp:
      os << node_ref(op.a) << (op.oneway ? "->" : "<->") << node_ref(op.b);
      break;
    case FaultOp::Kind::kDrop:
      os << "p=" << obs::format_double(op.p);
      break;
    case FaultOp::Kind::kLatency:
      os << "base=" << op.t0 << " jitter=" << op.t1;
      break;
    case FaultOp::Kind::kCorruptSeq:
    case FaultOp::Kind::kCorruptAck:
    case FaultOp::Kind::kCorruptBackoff:
      os << "p" << op.a << "->p" << op.b << " v=" << op.v;
      break;
    case FaultOp::Kind::kCorruptReliable:
      os << "p" << op.a << " drops p" << op.b;
      break;
    case FaultOp::Kind::kCorruptView:
    case FaultOp::Kind::kBugCorruptWedge:
      os << "p" << op.a << " epoch=" << op.v;
      break;
  }
  return os.str();
}

}  // namespace

const char* FaultOp::name() const {
  for (const KindName& kn : kKindNames) {
    if (kn.kind == kind) return kn.name;
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// FaultScript <-> JSON
// ---------------------------------------------------------------------------

obs::JsonValue FaultScript::to_json() const {
  obs::JsonValue root = obs::JsonValue::object();
  root["seed"] = seed;
  obs::JsonValue arr = obs::JsonValue::array();
  for (const FaultOp& op : ops) {
    obs::JsonValue j = obs::JsonValue::object();
    j["at"] = op.at;
    j["kind"] = op.name();
    switch (op.kind) {
      case FaultOp::Kind::kCrash:
      case FaultOp::Kind::kRecover:
      case FaultOp::Kind::kLeave:
      case FaultOp::Kind::kRejoin:
      case FaultOp::Kind::kServerDown:
      case FaultOp::Kind::kServerUp:
      case FaultOp::Kind::kCrashInDelivery:
        j["a"] = op.a;
        break;
      case FaultOp::Kind::kTraffic:
        j["a"] = op.a;
        j["payload"] = op.payload;
        break;
      case FaultOp::Kind::kWave:
      case FaultOp::Kind::kWaveLift:
      case FaultOp::Kind::kPartition: {
        obs::JsonValue groups = obs::JsonValue::array();
        for (const auto& group : op.groups) {
          obs::JsonValue g = obs::JsonValue::array();
          for (int v : group) g.push_back(v);
          groups.push_back(std::move(g));
        }
        j["groups"] = std::move(groups);
        break;
      }
      case FaultOp::Kind::kLinkDown:
      case FaultOp::Kind::kLinkUp:
        j["a"] = op.a;
        j["b"] = op.b;
        j["oneway"] = op.oneway;
        break;
      case FaultOp::Kind::kDrop:
        j["p"] = op.p;
        break;
      case FaultOp::Kind::kLatency:
        j["t0"] = op.t0;
        j["t1"] = op.t1;
        break;
      case FaultOp::Kind::kCorruptSeq:
      case FaultOp::Kind::kCorruptAck:
      case FaultOp::Kind::kCorruptReliable:
      case FaultOp::Kind::kCorruptBackoff:
        j["a"] = op.a;
        j["b"] = op.b;
        j["v"] = op.v;
        break;
      case FaultOp::Kind::kCorruptView:
      case FaultOp::Kind::kBugCorruptWedge:
        j["a"] = op.a;
        j["v"] = op.v;
        break;
      case FaultOp::Kind::kHeal:
      case FaultOp::Kind::kBugDupDeliver:
        break;
    }
    arr.push_back(std::move(j));
  }
  root["ops"] = std::move(arr);
  return root;
}

bool FaultScript::from_json(const obs::JsonValue& j, FaultScript* out) {
  if (!j.is_object()) return false;
  const obs::JsonValue* seed = j.find("seed");
  const obs::JsonValue* ops = j.find("ops");
  if (seed == nullptr || !seed->is_int() || ops == nullptr ||
      !ops->is_array()) {
    return false;
  }
  out->seed = static_cast<std::uint64_t>(seed->as_int());
  out->ops.clear();
  for (const obs::JsonValue& rec : ops->items()) {
    if (!rec.is_object()) return false;
    const obs::JsonValue* at = rec.find("at");
    const obs::JsonValue* kind = rec.find("kind");
    if (at == nullptr || !at->is_int() || kind == nullptr ||
        !kind->is_string()) {
      return false;
    }
    FaultOp op;
    op.at = at->as_int();
    bool known = false;
    for (const KindName& kn : kKindNames) {
      if (kind->as_string() == kn.name) {
        op.kind = kn.kind;
        known = true;
        break;
      }
    }
    if (!known) return false;
    if (const obs::JsonValue* a = rec.find("a")) {
      op.a = static_cast<int>(a->as_int());
    }
    if (const obs::JsonValue* b = rec.find("b")) {
      op.b = static_cast<int>(b->as_int());
    }
    if (const obs::JsonValue* oneway = rec.find("oneway")) {
      op.oneway = oneway->is_bool() && oneway->as_bool();
    }
    if (const obs::JsonValue* p = rec.find("p")) op.p = p->as_double();
    if (const obs::JsonValue* t0 = rec.find("t0")) op.t0 = t0->as_int();
    if (const obs::JsonValue* t1 = rec.find("t1")) op.t1 = t1->as_int();
    if (const obs::JsonValue* v = rec.find("v")) {
      op.v = static_cast<std::uint64_t>(v->as_int());
    }
    if (const obs::JsonValue* payload = rec.find("payload")) {
      if (!payload->is_string()) return false;
      op.payload = payload->as_string();
    }
    if (const obs::JsonValue* groups = rec.find("groups")) {
      if (!groups->is_array()) return false;
      for (const obs::JsonValue& g : groups->items()) {
        if (!g.is_array()) return false;
        std::vector<int> group;
        for (const obs::JsonValue& v : g.items()) {
          if (!v.is_int()) return false;
          group.push_back(static_cast<int>(v.as_int()));
        }
        op.groups.push_back(std::move(group));
      }
    }
    out->ops.push_back(std::move(op));
  }
  return true;
}

// ---------------------------------------------------------------------------
// FailureInjector
// ---------------------------------------------------------------------------

FailureInjector::FailureInjector(FaultTarget target, Policy policy,
                                 std::uint64_t seed)
    : target_(std::move(target)), policy_(policy), rng_(seed * 7919 + 13) {
  VSGC_REQUIRE(target_.sim != nullptr, "FailureInjector needs a simulator");
  script_.seed = seed;
  left_.assign(static_cast<std::size_t>(target_.num_processes), false);
  server_down_.assign(static_cast<std::size_t>(target_.num_servers), false);
}

void FailureInjector::publish(const FaultOp& op) {
  if (target_.trace == nullptr) return;
  if (op.kind == FaultOp::Kind::kTraffic) return;  // GcsSend covers traffic
  target_.trace->emit(target_.sim->now(),
                      spec::FaultInjected{op.name(), op_detail(op)});
}

void FailureInjector::apply(const FaultOp& op, bool record) {
  FaultOp applied = op;
  applied.at = target_.sim->now();
  publish(applied);
  if (record) script_.ops.push_back(applied);

  const auto crashed = [&](int i) {
    return target_.process_crashed && target_.process_crashed(i);
  };

  switch (op.kind) {
    case FaultOp::Kind::kCrash:
      if (!crashed(op.a) && target_.crash_process) target_.crash_process(op.a);
      break;
    case FaultOp::Kind::kRecover:
      if (crashed(op.a) && target_.recover_process) {
        target_.recover_process(op.a);
        // Recovery re-attaches to the membership server (Section 8), so a
        // pre-crash leave no longer holds.
        left_[static_cast<std::size_t>(op.a)] = false;
      }
      break;
    case FaultOp::Kind::kLeave:
      if (!crashed(op.a) && target_.leave_process) {
        target_.leave_process(op.a);
        left_[static_cast<std::size_t>(op.a)] = true;
      }
      break;
    case FaultOp::Kind::kRejoin:
      if (!crashed(op.a) && target_.rejoin_process) {
        target_.rejoin_process(op.a);
        left_[static_cast<std::size_t>(op.a)] = false;
      }
      break;
    case FaultOp::Kind::kServerDown:
      if (target_.set_server_up) {
        target_.set_server_up(op.a, false);
        server_down_[static_cast<std::size_t>(op.a)] = true;
      }
      break;
    case FaultOp::Kind::kServerUp:
      if (target_.set_server_up) {
        target_.set_server_up(op.a, true);
        server_down_[static_cast<std::size_t>(op.a)] = false;
      }
      break;
    case FaultOp::Kind::kPartition:
      if (target_.partition) {
        target_.partition(op.groups);
        partitioned_ = true;
      }
      break;
    case FaultOp::Kind::kWave:
      if (target_.set_isolated && !op.groups.empty()) {
        target_.set_isolated(op.groups.front(), true);
        waves_.push_back(applied);
      }
      break;
    case FaultOp::Kind::kWaveLift:
      if (target_.set_isolated && !op.groups.empty()) {
        target_.set_isolated(op.groups.front(), false);
        std::erase_if(waves_, [&](const FaultOp& w) {
          return w.groups == op.groups;
        });
      }
      break;
    case FaultOp::Kind::kHeal:
      if (target_.heal) {
        target_.heal();
        partitioned_ = false;
        downed_links_.clear();
        waves_.clear();  // Network::heal clears wave isolation too
      }
      break;
    case FaultOp::Kind::kLinkDown:
      if (target_.set_link) {
        target_.set_link(op.a, op.b, false, op.oneway);
        downed_links_.push_back(applied);
      }
      break;
    case FaultOp::Kind::kLinkUp:
      if (target_.set_link) {
        target_.set_link(op.a, op.b, true, op.oneway);
        std::erase_if(downed_links_, [&](const FaultOp& d) {
          return d.a == op.a && d.b == op.b && d.oneway == op.oneway;
        });
      }
      break;
    case FaultOp::Kind::kDrop:
      if (target_.set_drop) target_.set_drop(op.p);
      break;
    case FaultOp::Kind::kLatency:
      if (target_.set_latency) target_.set_latency(op.t0, op.t1);
      break;
    case FaultOp::Kind::kCrashInDelivery:
      if (!crashed(op.a) && target_.arm_crash_in_delivery) {
        target_.arm_crash_in_delivery(op.a, true);
      }
      break;
    case FaultOp::Kind::kTraffic:
      if (!crashed(op.a) && target_.send_traffic) {
        target_.send_traffic(op.a, op.payload);
      }
      break;
    case FaultOp::Kind::kBugDupDeliver: {
      // Deliberate "endpoint bug" for pipeline self-tests: re-emit the most
      // recent delivery, which violates WV_RFIFO's gap-free FIFO delivery.
      if (target_.trace == nullptr) break;
      const auto& recorded = target_.trace->recorded();
      for (auto it = recorded.rbegin(); it != recorded.rend(); ++it) {
        if (const auto* d = std::get_if<spec::GcsDeliver>(&it->body)) {
          const spec::GcsDeliver dup = *d;
          target_.trace->emit(target_.sim->now(), dup);
          break;
        }
      }
      break;
    }
    case FaultOp::Kind::kCorruptSeq:
    case FaultOp::Kind::kCorruptAck:
    case FaultOp::Kind::kCorruptReliable:
    case FaultOp::Kind::kCorruptView:
    case FaultOp::Kind::kCorruptBackoff:
    case FaultOp::Kind::kBugCorruptWedge:
      if (!crashed(op.a) && target_.corrupt) target_.corrupt(op);
      break;
  }
}

void FailureInjector::schedule_restore(Time at, FaultOp op) {
  op.at = at;
  pending_.push_back(PendingOp{at, std::move(op)});
  std::stable_sort(pending_.begin(), pending_.end(),
                   [](const PendingOp& x, const PendingOp& y) {
                     return x.at < y.at;
                   });
}

void FailureInjector::drain_pending(Time up_to) {
  while (!pending_.empty() && pending_.front().at <= up_to) {
    PendingOp next = std::move(pending_.front());
    pending_.erase(pending_.begin());
    if (target_.sim->now() < next.at) target_.sim->run_until(next.at);
    apply(next.op, /*record=*/true);
  }
}

bool FailureInjector::generate_step(int step) {
  if (step == policy_.bug_at_step) {
    FaultOp op;
    if (policy_.bug_is_corruption) {
      // Unrecoverable planted corruption: wedge a live process's endpoint on
      // an impossibly-high view epoch so it can never install another view.
      op.kind = FaultOp::Kind::kBugCorruptWedge;
      op.a = 0;
      for (int i = 0; i < target_.num_processes; ++i) {
        if (!target_.process_crashed || !target_.process_crashed(i)) {
          op.a = i;
          break;
        }
      }
      op.v = std::uint64_t{1} << 40;
    } else {
      op.kind = FaultOp::Kind::kBugDupDeliver;
    }
    apply(op, /*record=*/true);
    return true;
  }

  const auto crashed = [&](int i) {
    return target_.process_crashed && target_.process_crashed(i);
  };
  const auto pick_where = [&](auto&& pred) -> int {
    std::vector<int> candidates;
    for (int i = 0; i < target_.num_processes; ++i) {
      if (pred(i)) candidates.push_back(i);
    }
    if (candidates.empty()) return -1;
    return candidates[rng_.next_below(candidates.size())];
  };
  const auto random_groups = [&]() {
    const int ways =
        2 + static_cast<int>(rng_.next_below(static_cast<std::uint64_t>(
                std::max(1, policy_.max_partition_ways - 1))));
    std::vector<std::vector<int>> groups(static_cast<std::size_t>(ways));
    for (int i = 0; i < target_.num_processes; ++i) {
      groups[rng_.next_below(static_cast<std::uint64_t>(ways))].push_back(
          encode_process(i));
    }
    for (int s = 0; s < target_.num_servers; ++s) {
      groups[rng_.next_below(static_cast<std::uint64_t>(ways))].push_back(
          encode_server(s));
    }
    return groups;
  };
  const auto send_traffic_to = [&](int proc) {
    FaultOp op;
    op.kind = FaultOp::Kind::kTraffic;
    op.a = proc;
    op.payload = "churn-" + std::to_string(traffic_counter_++);
    apply(op, /*record=*/true);
  };
  // Fallback when the drawn action has no valid target: traffic keeps the
  // schedule dense instead of wasting the step.
  const auto fallback_traffic = [&]() {
    const int proc = pick_where([&](int i) {
      return !crashed(i) && !left_[static_cast<std::size_t>(i)];
    });
    if (proc < 0) return false;
    send_traffic_to(proc);
    return true;
  };

  struct Action {
    int weight;
    FaultOp::Kind kind;  // representative kind (composites special-cased)
  };
  const Action actions[] = {
      {policy_.w_traffic, FaultOp::Kind::kTraffic},
      {policy_.w_crash, FaultOp::Kind::kCrash},
      {policy_.w_recover, FaultOp::Kind::kRecover},
      {policy_.w_leave, FaultOp::Kind::kLeave},
      {policy_.w_rejoin, FaultOp::Kind::kRejoin},
      {policy_.w_partition, FaultOp::Kind::kPartition},
      {policy_.w_heal, FaultOp::Kind::kHeal},
      {policy_.w_link, FaultOp::Kind::kLinkDown},
      {policy_.w_drop_spike, FaultOp::Kind::kDrop},
      {policy_.w_delay_burst, FaultOp::Kind::kLatency},
      {target_.num_servers > 1 ? policy_.w_server_outage : 0,
       FaultOp::Kind::kServerDown},
      {policy_.w_crash_in_delivery, FaultOp::Kind::kCrashInDelivery},
      {policy_.w_partition_in_view_change, FaultOp::Kind::kLeave},  // marker
      {target_.num_processes > 1 ? policy_.w_corrupt : 0,
       FaultOp::Kind::kCorruptSeq},  // marker: sub-kind drawn below
      {target_.num_processes >= 2 ? policy_.w_wave : 0, FaultOp::Kind::kWave},
  };
  int total = 0;
  for (const Action& a : actions) total += a.weight;
  if (total == 0) return false;
  int draw = static_cast<int>(rng_.next_below(static_cast<std::uint64_t>(total)));
  int index = 0;
  for (const Action& a : actions) {
    if (draw < a.weight) break;
    draw -= a.weight;
    ++index;
  }

  FaultOp op;
  switch (index) {
    case 0:  // traffic
      return fallback_traffic();
    case 1: {  // crash
      const int proc = pick_where([&](int i) { return !crashed(i); });
      if (proc < 0) return fallback_traffic();
      op.kind = FaultOp::Kind::kCrash;
      op.a = proc;
      apply(op, true);
      return true;
    }
    case 2: {  // recover
      const int proc = pick_where([&](int i) { return crashed(i); });
      if (proc < 0) return fallback_traffic();
      op.kind = FaultOp::Kind::kRecover;
      op.a = proc;
      apply(op, true);
      return true;
    }
    case 3: {  // leave
      const int proc = pick_where([&](int i) {
        return !crashed(i) && !left_[static_cast<std::size_t>(i)];
      });
      if (proc < 0) return fallback_traffic();
      op.kind = FaultOp::Kind::kLeave;
      op.a = proc;
      apply(op, true);
      return true;
    }
    case 4: {  // rejoin
      const int proc = pick_where([&](int i) {
        return !crashed(i) && left_[static_cast<std::size_t>(i)];
      });
      if (proc < 0) return fallback_traffic();
      op.kind = FaultOp::Kind::kRejoin;
      op.a = proc;
      apply(op, true);
      return true;
    }
    case 5: {  // partition (also re-partitions an already split network)
      op.kind = FaultOp::Kind::kPartition;
      op.groups = random_groups();
      apply(op, true);
      return true;
    }
    case 6: {  // heal
      if (!partitioned_ && downed_links_.empty()) return fallback_traffic();
      op.kind = FaultOp::Kind::kHeal;
      apply(op, true);
      return true;
    }
    case 7: {  // link flap: down now, back up after a random hold
      const int total_nodes = target_.num_processes + target_.num_servers;
      if (total_nodes < 2) return fallback_traffic();
      const int ia = static_cast<int>(
          rng_.next_below(static_cast<std::uint64_t>(total_nodes)));
      int ib = static_cast<int>(
          rng_.next_below(static_cast<std::uint64_t>(total_nodes - 1)));
      if (ib >= ia) ++ib;
      const auto encode = [&](int v) {
        return v < target_.num_processes
                   ? encode_process(v)
                   : encode_server(v - target_.num_processes);
      };
      op.kind = FaultOp::Kind::kLinkDown;
      op.a = encode(ia);
      op.b = encode(ib);
      op.oneway = rng_.next_below(2) == 1;
      apply(op, true);
      FaultOp up = op;
      up.kind = FaultOp::Kind::kLinkUp;
      schedule_restore(target_.sim->now() +
                           policy_.spike_len *
                               (1 + static_cast<Time>(rng_.next_below(3))),
                       up);
      return true;
    }
    case 8: {  // drop spike
      op.kind = FaultOp::Kind::kDrop;
      op.p = policy_.spike_drop;
      apply(op, true);
      FaultOp restore;
      restore.kind = FaultOp::Kind::kDrop;
      restore.p = policy_.base_drop;
      schedule_restore(target_.sim->now() + policy_.spike_len, restore);
      return true;
    }
    case 9: {  // delay burst
      op.kind = FaultOp::Kind::kLatency;
      op.t0 = policy_.burst_latency;
      op.t1 = policy_.burst_jitter;
      apply(op, true);
      FaultOp restore;
      restore.kind = FaultOp::Kind::kLatency;
      restore.t0 = policy_.base_latency;
      restore.t1 = policy_.base_jitter;
      schedule_restore(target_.sim->now() + policy_.burst_len, restore);
      return true;
    }
    case 10: {  // server outage (keep a majority-ish: at least one server up)
      std::vector<int> up;
      for (int s = 0; s < target_.num_servers; ++s) {
        if (!server_down_[static_cast<std::size_t>(s)]) up.push_back(s);
      }
      if (up.size() < 2) return fallback_traffic();
      op.kind = FaultOp::Kind::kServerDown;
      op.a = up[rng_.next_below(up.size())];
      apply(op, true);
      FaultOp restore;
      restore.kind = FaultOp::Kind::kServerUp;
      restore.a = op.a;
      schedule_restore(target_.sim->now() +
                           policy_.spike_len *
                               (1 + static_cast<Time>(rng_.next_below(3))),
                       restore);
      return true;
    }
    case 11: {  // crash inside the next delivery callback
      const int proc = pick_where([&](int i) { return !crashed(i); });
      if (proc < 0) return fallback_traffic();
      op.kind = FaultOp::Kind::kCrashInDelivery;
      op.a = proc;
      apply(op, true);
      // A nudge of traffic so the armed crash actually has a delivery to
      // fire inside (the sender may be anyone, including the armed process).
      return fallback_traffic(), true;
    }
    case 12: {  // partition during a view change: leave, then split mid-round
      const int proc = pick_where([&](int i) {
        return !crashed(i) && !left_[static_cast<std::size_t>(i)];
      });
      if (proc < 0) return fallback_traffic();
      op.kind = FaultOp::Kind::kLeave;
      op.a = proc;
      apply(op, true);
      FaultOp split;
      split.kind = FaultOp::Kind::kPartition;
      split.groups = random_groups();
      schedule_restore(target_.sim->now() + policy_.view_change_delay, split);
      partitioned_ = true;  // the split is committed (pending)
      return true;
    }
    case 13: {  // state corruption: one of the five recoverable mutators
      const int proc = pick_where([&](int i) {
        return !crashed(i) && !left_[static_cast<std::size_t>(i)];
      });
      if (proc < 0 || target_.num_processes < 2) return fallback_traffic();
      int peer = static_cast<int>(rng_.next_below(
          static_cast<std::uint64_t>(target_.num_processes - 1)));
      if (peer >= proc) ++peer;
      op.a = proc;
      op.b = peer;
      switch (rng_.next_below(5)) {
        case 0:
          op.kind = FaultOp::Kind::kCorruptSeq;
          op.v = 1 + rng_.next_below(8);
          break;
        case 1:
          op.kind = FaultOp::Kind::kCorruptAck;
          op.v = 1 + rng_.next_below(8);
          break;
        case 2:
          op.kind = FaultOp::Kind::kCorruptReliable;
          break;
        case 3:
          // Resurrected/wrapped view-id floor: half far-future (wedges
          // delivery until the stale-drop re-sync), half back to zero.
          op.kind = FaultOp::Kind::kCorruptView;
          op.v = rng_.next_below(2) == 0 ? (std::uint64_t{1} << 40) : 0;
          break;
        default:
          // Corrupted retransmit multiplier: 0 would spin, huge would freeze.
          op.kind = FaultOp::Kind::kCorruptBackoff;
          op.v = rng_.next_below(2) == 0 ? 0 : (std::uint64_t{1} << 20);
          break;
      }
      apply(op, true);
      // A nudge of traffic so the corrupted stream actually carries data
      // (idle corrupted cursors would otherwise stay dormant for the run).
      return fallback_traffic(), true;
    }
    case 14: {  // correlated failure wave: isolate a random slice in bulk
      std::vector<int> alive;
      for (int i = 0; i < target_.num_processes; ++i) {
        if (!crashed(i)) alive.push_back(encode_process(i));
      }
      const std::size_t slice = std::max<std::size_t>(
          1, static_cast<std::size_t>(
                 static_cast<double>(alive.size()) * policy_.wave_fraction));
      if (alive.size() < 2 || slice >= alive.size()) {
        return fallback_traffic();
      }
      // Partial Fisher-Yates: the first `slice` entries become the wave.
      for (std::size_t i = 0; i < slice; ++i) {
        const std::size_t j = i + rng_.next_below(alive.size() - i);
        std::swap(alive[i], alive[j]);
      }
      alive.resize(slice);
      std::sort(alive.begin(), alive.end());
      op.kind = FaultOp::Kind::kWave;
      op.groups = {alive};
      apply(op, true);
      FaultOp lift = op;
      lift.kind = FaultOp::Kind::kWaveLift;
      schedule_restore(target_.sim->now() +
                           policy_.spike_len *
                               (1 + static_cast<Time>(rng_.next_below(3))),
                       lift);
      return true;
    }
    default:
      return fallback_traffic();
  }
}

void FailureInjector::run_churn() {
  for (int step = 0; step < policy_.steps; ++step) {
    const Time gap =
        policy_.min_gap +
        static_cast<Time>(rng_.next_below(static_cast<std::uint64_t>(
            policy_.max_gap - policy_.min_gap + 1)));
    const Time when = target_.sim->now() + gap;
    drain_pending(when);
    target_.sim->run_until(when);
    generate_step(step);
  }
  // Let the tail of the schedule (pending restores) play out.
  drain_pending(std::numeric_limits<Time>::max());
}

void FailureInjector::replay(const FaultScript& script,
                             const std::set<std::size_t>& elide) {
  for (std::size_t i = 0; i < script.ops.size(); ++i) {
    const FaultOp& op = script.ops[i];
    if (target_.sim->now() < op.at) target_.sim->run_until(op.at);
    if (elide.contains(i)) continue;
    apply(op, /*record=*/true);
  }
}

void FailureInjector::stabilize() {
  pending_.clear();
  if (target_.trace != nullptr) {
    target_.trace->emit(target_.sim->now(),
                        spec::FaultInjected{"stabilize", ""});
  }
  // Lift outstanding waves through the bulk callback first: a target whose
  // set_isolated is not Network-backed still converges, and Network-backed
  // targets are idempotent under the heal() below.
  for (const FaultOp& w : waves_) {
    if (target_.set_isolated && !w.groups.empty()) {
      target_.set_isolated(w.groups.front(), false);
    }
  }
  waves_.clear();
  if (target_.heal) target_.heal();
  partitioned_ = false;
  downed_links_.clear();
  if (target_.set_drop) target_.set_drop(policy_.base_drop);
  if (target_.set_latency) {
    target_.set_latency(policy_.base_latency, policy_.base_jitter);
  }
  for (int s = 0; s < target_.num_servers; ++s) {
    if (server_down_[static_cast<std::size_t>(s)] && target_.set_server_up) {
      target_.set_server_up(s, true);
      server_down_[static_cast<std::size_t>(s)] = false;
    }
  }
  for (int i = 0; i < target_.num_processes; ++i) {
    if (target_.arm_crash_in_delivery) target_.arm_crash_in_delivery(i, false);
    if (target_.process_crashed && target_.process_crashed(i)) {
      if (target_.recover_process) target_.recover_process(i);
      left_[static_cast<std::size_t>(i)] = false;
    } else if (left_[static_cast<std::size_t>(i)]) {
      if (target_.rejoin_process) target_.rejoin_process(i);
      left_[static_cast<std::size_t>(i)] = false;
    }
  }
}

}  // namespace vsgc::sim
