// FailureInjector: seeded, policy-driven fault scheduler (paper §8 + the
// DESIGN.md §3 "failure/partition injector" row).
//
// The injector composes the whole fault vocabulary of this repository —
// process crash/recover, graceful leave/rejoin, repeated multi-way
// partitions and heals, symmetric and asymmetric link down/up,
// drop-probability spikes, latency bursts, membership-server outages,
// crash-inside-delivery-callback, and interleaved application traffic —
// against any target (in practice app::World) through a thin callback
// surface, so it has no dependency on the protocol stack itself.
//
// Two modes share one code path:
//   * generate (run_churn): a seeded policy picks weighted random actions
//     with random gaps; every applied op is recorded into a FaultScript.
//   * replay: re-applies a recorded script, optionally with some ops elided
//     — the substrate of vsgc_stress's greedy fault-script minimizer.
// Both publish every fault on the TraceBus (spec::FaultInjected, plus the
// Crash/Recover events the endpoints emit themselves), so exported JSONL
// traces and Chrome-trace timelines show the exact adversarial schedule.
//
// Determinism: an injector run is a pure function of (target construction
// seed, policy, injector seed) — property tests assert byte-identical JSONL
// traces across same-seed runs.
#pragma once

#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/time.hpp"
#include "spec/events.hpp"
#include "util/rng.hpp"

namespace vsgc::obs {
class JsonValue;
}  // namespace vsgc::obs

namespace vsgc::sim {

/// One concrete fault (or traffic nudge) applied at a simulated time.
/// Every op is absolute and self-contained, so ANY subset of a script is a
/// valid schedule — the property the greedy minimizer relies on.
struct FaultOp {
  enum class Kind {
    kCrash,            ///< crash process a
    kRecover,          ///< recover process a
    kLeave,            ///< graceful leave of process a
    kRejoin,           ///< re-attach process a after a leave
    kServerDown,       ///< membership server a unreachable (node down)
    kServerUp,         ///< membership server a reachable again
    kPartition,        ///< multi-way partition into `groups`
    kWave,             ///< correlated failure wave: isolate groups[0] in bulk
    kWaveLift,         ///< lift a wave: de-isolate groups[0]
    kHeal,             ///< remove partition + all link failures + waves
    kLinkDown,         ///< link a->b down (both ways unless `oneway`)
    kLinkUp,           ///< link a->b back up
    kDrop,             ///< set network drop probability to `p`
    kLatency,          ///< set network base latency/jitter to t0/t1
    kCrashInDelivery,  ///< arm: process a crashes inside its next delivery
    kTraffic,          ///< process a multicasts `payload`
    kBugDupDeliver,    ///< test hook: forge a duplicate delivery trace event
    // State-corruption family (DESIGN.md §12): targeted transient mutations
    // of live protocol state. Recoverable by the stack's self-stabilization
    // paths; the eventual-safety checkers tolerate their fallout only inside
    // a bounded post-injection window.
    kCorruptSeq,       ///< bump p_a's CO_RFIFO next_seq toward p_b by `v`
    kCorruptAck,       ///< bump p_a's acked cursor toward p_b by `v`
    kCorruptReliable,  ///< drop p_b from p_a's transport reliable_set
    kCorruptView,      ///< overwrite p_a's membership view-id floor epoch = v
    kCorruptBackoff,   ///< set p_a's retransmit backoff toward p_b to `v`
    kBugCorruptWedge,  ///< test hook: unrecoverable endpoint view-epoch wedge
  };

  Time at = 0;
  Kind kind = Kind::kHeal;
  int a = -1;          ///< process/server index (see kind)
  int b = -1;          ///< second endpoint for link/corruption ops
  bool oneway = false;
  double p = 0.0;      ///< drop probability
  Time t0 = 0, t1 = 0; ///< latency base/jitter
  std::uint64_t v = 0; ///< corruption value (delta, epoch, or counter)
  std::vector<std::vector<int>> groups;  ///< partition components (encoded)
  std::string payload;

  /// Stable op name as published on the TraceBus and in scripts.
  const char* name() const;
};

/// Encoding of mixed process/server node references inside FaultOp fields
/// (partition groups and link endpoints): process i => i, server s => -(s+1).
inline int encode_process(int i) { return i; }
inline int encode_server(int s) { return -(s + 1); }
inline bool encodes_server(int v) { return v < 0; }
inline int decode_server(int v) { return -v - 1; }

/// A recorded fault schedule: replayable, serializable, minimizable.
struct FaultScript {
  std::uint64_t seed = 0;  ///< injector seed that generated it (provenance)
  std::vector<FaultOp> ops;

  obs::JsonValue to_json() const;
  static bool from_json(const obs::JsonValue& j, FaultScript* out);
};

/// The surface a deployment exposes to the injector. All callbacks must be
/// safe to invoke in any target state (guard internally and no-op instead of
/// failing), so that arbitrary script subsets replay cleanly.
struct FaultTarget {
  Simulator* sim = nullptr;
  spec::TraceBus* trace = nullptr;  ///< may be null (no fault events then)
  int num_processes = 0;
  int num_servers = 0;

  std::function<bool(int)> process_crashed;
  std::function<void(int)> crash_process;
  std::function<void(int)> recover_process;
  std::function<void(int)> leave_process;
  std::function<void(int)> rejoin_process;
  std::function<void(int, bool)> set_server_up;
  /// Partition into components of encoded node refs (see encode_process/
  /// encode_server); every node appears in exactly one component.
  std::function<void(const std::vector<std::vector<int>>&)> partition;
  /// Bulk wave isolation of encoded node refs (kWave / kWaveLift): the whole
  /// slice goes down (or comes back) in ONE call, so a 10% wave over 5k
  /// clients is O(slice) work, never O(slice x nodes) per-pair link edits.
  std::function<void(const std::vector<int>&, bool)> set_isolated;
  std::function<void()> heal;
  /// Link control between encoded node refs; `oneway` downs a->b only.
  std::function<void(int, int, bool, bool)> set_link;  // a, b, up, oneway
  std::function<void(double)> set_drop;
  std::function<void(Time, Time)> set_latency;  // base, jitter
  /// Arm (or disarm) "crash inside the next delivery callback" at process a.
  std::function<void(int, bool)> arm_crash_in_delivery;
  std::function<void(int, const std::string&)> send_traffic;
  /// Apply a state-corruption op (one of the kCorrupt*/kBugCorruptWedge
  /// kinds) to live protocol state. Must no-op gracefully when the target
  /// process is crashed or the referenced stream does not exist.
  std::function<void(const FaultOp&)> corrupt;
};

class FailureInjector {
 public:
  /// Weighted action mix and shape parameters for generate mode. Weight 0
  /// removes an action from the vocabulary (e.g. partitions in single-
  /// component tests); the defaults reproduce a broad churn mix.
  struct Policy {
    int steps = 25;                 ///< actions per run_churn()
    Time min_gap = 50 * kMillisecond;
    Time max_gap = 600 * kMillisecond;

    int w_traffic = 10;
    int w_crash = 3;
    int w_recover = 3;
    int w_leave = 1;
    int w_rejoin = 1;
    int w_partition = 2;
    int w_heal = 2;
    int w_link = 1;            ///< symmetric or one-way link flap
    int w_drop_spike = 1;
    int w_delay_burst = 1;
    int w_server_outage = 1;   ///< only effective with >= 2 servers
    int w_crash_in_delivery = 1;
    int w_partition_in_view_change = 1;  ///< leave, then partition mid-change
    /// Correlated failure wave: isolate a random `wave_fraction` slice of the
    /// processes in one bulk call, lift it after a random hold. Off by
    /// default; the scale bench turns it on to model rack/AZ failures.
    int w_wave = 0;
    double wave_fraction = 0.1;
    /// State-corruption family weight (off by default so crash/partition-only
    /// suites keep their exact-safety contract; vsgc_stress --corrupt and the
    /// mc corruption menu turn it on). One draw picks uniformly among the
    /// five recoverable corruption kinds.
    int w_corrupt = 0;

    int max_partition_ways = 3;
    double spike_drop = 0.4;
    Time spike_len = 300 * kMillisecond;
    Time burst_latency = 25 * kMillisecond;
    Time burst_jitter = 5 * kMillisecond;
    Time burst_len = 300 * kMillisecond;
    Time view_change_delay = 15 * kMillisecond;  ///< leave -> partition gap

    // Baseline the restores return to (mirror the target's network config).
    double base_drop = 0.0;
    Time base_latency = 1 * kMillisecond;
    Time base_jitter = 200;

    /// Test hook: at this churn step (if >= 0), forge a duplicate-delivery
    /// trace event — a deliberately injected "endpoint bug" that the spec
    /// checkers must catch (vsgc_stress --inject-bug, CI pipeline check).
    int bug_at_step = -1;

    /// When bug_at_step fires and this is set, plant kBugCorruptWedge (an
    /// unrecoverable view-epoch corruption that wedges reconvergence) instead
    /// of the duplicate-delivery forgery — the corruption-family variant of
    /// the pipeline self-check.
    bool bug_is_corruption = false;
  };

  FailureInjector(FaultTarget target, Policy policy, std::uint64_t seed);

  /// Generate mode: apply `policy.steps` weighted random actions separated
  /// by random gaps, advancing the target's simulator. Every applied op
  /// (including traffic and timed spike/burst restores) lands in script().
  void run_churn();

  /// Replay `script` against the target: advance the simulator to each op's
  /// time and apply it. Ops whose index is in `elide` are skipped (the
  /// minimizer's probe); time still advances identically.
  void replay(const FaultScript& script, const std::set<std::size_t>& elide = {});

  /// Apply one op at the current simulated time, recording it into script().
  /// The model checker's fault decision points (src/mc) land explorer-chosen
  /// faults mid-schedule through this; stabilize() still undoes them.
  void apply_now(const FaultOp& op) { apply(op, /*record=*/true); }

  /// Undo every outstanding fault so liveness can be checked: heal the
  /// network, restore baseline drop/latency, bring servers up, disarm
  /// delivery crashes, rejoin leavers, recover crashed processes.
  void stabilize();

  /// Everything applied so far (generate and replay both record).
  const FaultScript& script() const { return script_; }

 private:
  struct PendingOp {
    Time at;
    FaultOp op;
  };

  void apply(const FaultOp& op, bool record);
  void drain_pending(Time up_to);
  void schedule_restore(Time at, FaultOp op);
  bool generate_step(int step);
  void publish(const FaultOp& op);

  FaultTarget target_;
  Policy policy_;
  Rng rng_;
  FaultScript script_;

  // Mirror of the fault state we created (for picking valid actions and for
  // stabilize()); the target stays the source of truth for crash state.
  std::vector<bool> left_;
  std::vector<bool> server_down_;
  std::vector<FaultOp> downed_links_;
  std::vector<FaultOp> waves_;  ///< outstanding (un-lifted) kWave ops
  bool partitioned_ = false;
  std::vector<PendingOp> pending_;  ///< timed restores, sorted by time
  std::uint64_t traffic_counter_ = 0;
};

}  // namespace vsgc::sim
