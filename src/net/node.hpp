// Network node identity. Clients (GCS end-points) and membership servers all
// occupy the same flat datagram address space.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

#include "util/ids.hpp"

namespace vsgc::net {

struct NodeId {
  std::uint32_t value = 0;

  friend auto operator<=>(const NodeId&, const NodeId&) = default;
};

/// Conventional address mapping used throughout the repository: client
/// processes occupy [0, kServerBase), membership servers occupy
/// [kServerBase, ...). This keeps addressing trivial while still modeling
/// clients and servers as distinct network citizens.
constexpr std::uint32_t kServerBase = 1u << 24;

inline NodeId node_of(ProcessId p) { return NodeId{p.value}; }
inline NodeId node_of(ServerId s) { return NodeId{kServerBase + s.value}; }

inline bool is_server_node(NodeId n) { return n.value >= kServerBase; }
inline ProcessId process_of(NodeId n) { return ProcessId{n.value}; }
inline ServerId server_of(NodeId n) { return ServerId{n.value - kServerBase}; }

inline std::string to_string(NodeId n) {
  return is_server_node(n) ? vsgc::to_string(server_of(n))
                           : vsgc::to_string(process_of(n));
}

}  // namespace vsgc::net

template <>
struct std::hash<vsgc::net::NodeId> {
  std::size_t operator()(const vsgc::net::NodeId& id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value);
  }
};
