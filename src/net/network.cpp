#include "net/network.hpp"

namespace vsgc::net {

bool Network::link_up(NodeId a, NodeId b) const {
  if (down_nodes_.contains(a) || down_nodes_.contains(b)) return false;
  if (!isolated_.empty() &&
      (isolated_.contains(a) || isolated_.contains(b))) {
    return false;
  }
  if (down_links_.contains(ordered(a, b))) return false;
  if (!component_of_.empty()) {
    const auto ia = component_of_.find(a);
    const auto ib = component_of_.find(b);
    const std::uint32_t ca = ia == component_of_.end() ? 0 : ia->second;
    const std::uint32_t cb = ib == component_of_.end() ? 0 : ib->second;
    // Component 0 means "unassigned": unassigned nodes reach everyone.
    if (ca != 0 && cb != 0 && ca != cb) return false;
  }
  return true;
}

void Network::send(NodeId from, NodeId to, Payload payload,
                   std::size_t wire_size) {
  ++stats_.packets_sent;
  stats_.bytes_sent += wire_size;
  if (wire_size > stats_.max_packet_bytes) {
    stats_.max_packet_bytes = wire_size;
  }

  // Loss: an Rng draw normally; an explicit binary choice point under a
  // NondetSource. Short-circuit order matches the uncontrolled path so no
  // draw (or choice) is consumed for packets a fault already blocks.
  bool dropped = false;
  if (!can_send(from, to)) {
    dropped = true;
  } else if (config_.drop_probability > 0.0) {
    dropped = nondet_ != nullptr ? nondet_->choose("net.drop", 2) == 1
                                 : rng_.chance(config_.drop_probability);
  }
  if (dropped) {
    ++stats_.packets_dropped;
    return;
  }

  sim::Time delay = config_.base_latency;
  if (config_.jitter > 0) {
    // Under a NondetSource, jitter is abstracted to its boundary values
    // (0 or the maximum): enough to flip arrival orders, without turning
    // every packet into a jitter-sized fan-out.
    delay += nondet_ != nullptr
                 ? (nondet_->choose("net.jitter", 2) == 1 ? config_.jitter
                                                          : sim::Time{0})
                 : static_cast<sim::Time>(rng_.next_below(
                       static_cast<std::uint64_t>(config_.jitter) + 1));
  }

  sim::Time arrival = sim_.now() + delay;
  if (config_.fifo_links) {
    auto& last = last_arrival_[{from, to}];
    if (arrival <= last) arrival = last + 1;
    last = arrival;
  }

  // The delivery closure carries the refcounted handle, not the payload
  // bytes: it fits the kernel's inline event storage, so an in-flight packet
  // costs no allocation beyond the one made when the payload was wrapped.
  sim_.schedule_at(arrival, [this, from, to, payload = std::move(payload)]() {
    // Re-check destination health at arrival time: a node that crashed while
    // the packet was in flight never sees it.
    if (down_nodes_.contains(to)) {
      ++stats_.packets_dropped;
      return;
    }
    auto it = handlers_.find(to);
    if (it == handlers_.end()) {
      ++stats_.packets_dropped;
      return;
    }
    ++stats_.packets_delivered;
    it->second(from, payload.any());
  });
}

}  // namespace vsgc::net
