// Unreliable datagram network model.
//
// This is the lowest substrate: point-to-point best-effort packets with
// configurable latency, jitter, probabilistic loss, link failures, and
// partitions. CO_RFIFO (src/transport) builds its reliable FIFO service on
// top of this, exactly like the paper's implementation built on the reliable
// datagram service of [36].
#pragma once

#include <any>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <type_traits>
#include <utility>
#include <vector>

#include "net/node.hpp"
#include "sim/nondet.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace vsgc::net {

/// Refcounted immutable payload handle. A payload is wrapped into one
/// heap-allocated std::any when it enters the network layer and is shared by
/// reference count from there on: enqueueing a delivery, buffering a packet
/// for retransmission, or fanning a multicast out to N destinations copies a
/// pointer, never the payload bytes. Handlers still receive `const
/// std::any&`, so receive paths are unchanged.
class Payload {
 public:
  Payload() = default;
  // NOLINTNEXTLINE(google-explicit-constructor): std::any call sites convert.
  Payload(std::any value)
      : ptr_(std::make_shared<const std::any>(std::move(value))) {}

  /// Wrap any payload type directly (one allocation, no intermediate any).
  template <typename T,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<T>, Payload> &&
                !std::is_same_v<std::decay_t<T>, std::any>>>
  // NOLINTNEXTLINE(google-explicit-constructor): mirrors std::any's ctor.
  Payload(T&& value)
      : ptr_(std::make_shared<const std::any>(
            std::in_place_type<std::decay_t<T>>, std::forward<T>(value))) {}

  const std::any& any() const {
    static const std::any kEmpty;
    return ptr_ != nullptr ? *ptr_ : kEmpty;
  }
  bool has_value() const { return ptr_ != nullptr && ptr_->has_value(); }

 private:
  std::shared_ptr<const std::any> ptr_;
};

class Network {
 public:
  struct Config {
    sim::Time base_latency = 1 * sim::kMillisecond;
    sim::Time jitter = 200;            ///< uniform extra delay in [0, jitter]
    double drop_probability = 0.0;     ///< independent per-packet loss
    bool fifo_links = true;            ///< never reorder within one link
  };

  struct Stats {
    std::uint64_t packets_sent = 0;
    std::uint64_t packets_delivered = 0;
    std::uint64_t packets_dropped = 0;
    std::uint64_t bytes_sent = 0;
    /// Largest single datagram seen (frame-aware: batched transport frames
    /// make this grow with batch size, a direct MTU-pressure signal).
    std::uint64_t max_packet_bytes = 0;
  };

  using Handler = std::function<void(NodeId from, const std::any& payload)>;

  Network(sim::Simulator& sim, Rng rng, Config config)
      : sim_(sim), rng_(rng), config_(config) {}
  Network(sim::Simulator& sim, Rng rng) : Network(sim, rng, Config()) {}

  void attach(NodeId node, Handler handler) { handlers_[node] = std::move(handler); }

  /// Remove the handler AND every per-link bookkeeping entry that names the
  /// node, so attach/detach churn cannot grow last_arrival_ without bound.
  void detach(NodeId node) {
    handlers_.erase(node);
    std::erase_if(last_arrival_, [node](const auto& kv) {
      return kv.first.first == node || kv.first.second == node;
    });
  }

  /// Best-effort point-to-point send. `wire_size` feeds byte accounting.
  void send(NodeId from, NodeId to, Payload payload, std::size_t wire_size = 0);

  // --- Fault injection -----------------------------------------------------

  void set_node_up(NodeId node, bool up) {
    if (up) down_nodes_.erase(node);
    else down_nodes_.insert(node);
  }
  bool node_up(NodeId node) const { return !down_nodes_.contains(node); }

  /// Symmetric link control; a downed link drops packets in both directions.
  void set_link_up(NodeId a, NodeId b, bool up) {
    const auto key = ordered(a, b);
    if (up) down_links_.erase(key);
    else down_links_.insert(key);
  }

  /// Asymmetric link control: a downed one-way link drops packets from
  /// `from` to `to` only; the reverse direction is unaffected. Composes with
  /// the symmetric state — a direction is up only if neither says down.
  void set_oneway_link_up(NodeId from, NodeId to, bool up) {
    if (up) down_oneway_.erase({from, to});
    else down_oneway_.insert({from, to});
  }

  /// Partition the network into disjoint components; packets between
  /// components are dropped. Nodes not listed stay reachable to everyone.
  void partition(const std::vector<std::set<NodeId>>& components) {
    component_of_.clear();
    std::uint32_t idx = 1;
    for (const auto& comp : components) {
      for (NodeId n : comp) component_of_[n] = idx;
      ++idx;
    }
  }

  /// Bulk correlated-failure isolation: every listed node loses connectivity
  /// to the entire network (a failure wave hitting a rack / AZ slice). One
  /// set insert per node — a 10% wave over 5k clients is 500 map touches,
  /// not 500 x 5000 per-pair link edits. Composes with links/partitions; a
  /// node is reachable only if no mechanism says otherwise.
  void isolate(const std::set<NodeId>& nodes) {
    isolated_.insert(nodes.begin(), nodes.end());
  }
  /// Lift a wave: restore connectivity for the listed nodes.
  void deisolate(const std::set<NodeId>& nodes) {
    for (NodeId n : nodes) isolated_.erase(n);
  }
  bool isolated(NodeId node) const { return isolated_.contains(node); }

  /// Remove the partition, all individual (symmetric and one-way) link
  /// failures, and all wave isolation.
  void heal() {
    component_of_.clear();
    down_links_.clear();
    down_oneway_.clear();
    isolated_.clear();
  }

  bool link_up(NodeId a, NodeId b) const;
  /// Directional reachability: link_up(from, to) plus one-way link state.
  bool can_send(NodeId from, NodeId to) const {
    return link_up(from, to) && !down_oneway_.contains({from, to});
  }

  const Stats& stats() const { return stats_; }
  const Config& config() const { return config_; }
  /// FIFO-link bookkeeping entries currently held (bounded-growth tests).
  std::size_t tracked_links() const { return last_arrival_.size(); }
  void set_drop_probability(double p) { config_.drop_probability = p; }
  /// Runtime latency control (delay bursts in fault schedules).
  void set_latency(sim::Time base, sim::Time jitter) {
    config_.base_latency = base;
    config_.jitter = jitter;
  }

  /// Install (or with nullptr remove) a controllable-nondeterminism source.
  /// While installed, each per-packet loss draw (only where drop_probability
  /// > 0) becomes a binary "net.drop" choice point and each jitter draw
  /// (only where jitter > 0) a binary "net.jitter" boundary choice
  /// (min-or-max delay) — the Rng is left untouched, so detaching restores
  /// the baked random schedule exactly where it left off.
  void set_nondet(sim::NondetSource* source) { nondet_ = source; }

 private:
  static std::pair<NodeId, NodeId> ordered(NodeId a, NodeId b) {
    return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
  }

  sim::Simulator& sim_;
  Rng rng_;
  Config config_;
  Stats stats_;
  sim::NondetSource* nondet_ = nullptr;

  std::map<NodeId, Handler> handlers_;
  std::set<NodeId> down_nodes_;
  std::set<std::pair<NodeId, NodeId>> down_links_;
  std::set<std::pair<NodeId, NodeId>> down_oneway_;  ///< directional (from,to)
  std::set<NodeId> isolated_;  ///< wave-isolated nodes (bulk API)
  std::map<NodeId, std::uint32_t> component_of_;
  std::map<std::pair<NodeId, NodeId>, sim::Time> last_arrival_;
};

}  // namespace vsgc::net
