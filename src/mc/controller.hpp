// Controllers: the NondetSource implementations the explorer plugs into the
// simulator and network seams.
//
//   * ScriptController — forces a pick vector positionally and defaults
//     (pick 0) once the vector is exhausted. The empty vector is the
//     *default schedule*: every tie-break falls back to insertion order,
//     every loss draw to "delivered", every jitter draw to the minimum —
//     exactly the uncontrolled execution. DFS prefixes, minimizer probes,
//     and full-script replays are all just different pick vectors.
//   * RandomController — picks uniformly from a seeded Rng; the random-walk
//     fallback. It records what it picked, so a violating walk still yields
//     a deterministic ScheduleScript (replayed by a ScriptController).
//
// Both record every consulted choice point, which is what makes any run
// replayable: the recorded (kind, n, pick) sequence IS the schedule.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "mc/schedule_script.hpp"
#include "sim/nondet.hpp"
#include "util/rng.hpp"

namespace vsgc::mc {

/// Common recording base: derived classes decide the pick, this records it.
class RecordingController : public sim::NondetSource {
 public:
  std::size_t choose(const char* kind, std::size_t n) final {
    if (n <= 1) return 0;  // no alternatives: not a choice point
    std::uint32_t pick = pick_for(static_cast<std::uint32_t>(n));
    if (pick >= n) pick = static_cast<std::uint32_t>(n - 1);
    trace_.push_back(Choice{kind, static_cast<std::uint32_t>(n), pick});
    return pick;
  }

  /// Every choice point consumed so far, in order.
  const std::vector<Choice>& trace() const { return trace_; }
  std::size_t consumed() const { return trace_.size(); }

 protected:
  virtual std::uint32_t pick_for(std::uint32_t n) = 0;

 private:
  std::vector<Choice> trace_;
};

class ScriptController : public RecordingController {
 public:
  ScriptController() = default;
  explicit ScriptController(std::vector<std::uint32_t> forced)
      : forced_(std::move(forced)) {}
  explicit ScriptController(const ScheduleScript& script)
      : forced_(script.picks()) {}

 protected:
  std::uint32_t pick_for(std::uint32_t) override {
    const std::size_t i = consumed();
    return i < forced_.size() ? forced_[i] : 0;
  }

 private:
  std::vector<std::uint32_t> forced_;
};

class RandomController : public RecordingController {
 public:
  explicit RandomController(std::uint64_t seed) : rng_(seed * 6271 + 29) {}

 protected:
  std::uint32_t pick_for(std::uint32_t n) override {
    return static_cast<std::uint32_t>(rng_.next_below(n));
  }

 private:
  Rng rng_;
};

}  // namespace vsgc::mc
