#include "mc/explorer.hpp"

#include <algorithm>
#include <set>
#include <sstream>
#include <utility>

#include "app/world.hpp"
#include "obs/json.hpp"
#include "obs/trace_recorder.hpp"
#include "sim/batch.hpp"
#include "spec/liveness_checker.hpp"
#include "util/assert.hpp"

namespace vsgc::mc {

namespace {

/// Batch size for parallel scenario execution: enough slack over the worker
/// count that stealing can balance uneven run lengths, small enough that a
/// violation or budget stop wastes little speculative work. Chunks are always
/// additionally clamped to the remaining run budget and frontier.
std::size_t chunk_size(const sim::BatchRunner& runner) {
  return std::max<std::size_t>(runner.jobs() * 4, 1);
}

/// FNV-1a over a choice sequence: two runs with equal signatures consumed
/// identical choices and are therefore the same execution.
std::uint64_t signature(const std::vector<Choice>& choices) {
  std::uint64_t h = 1469598103934665603ULL;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  for (const Choice& c : choices) {
    for (const char ch : c.kind) mix(static_cast<unsigned char>(ch));
    mix(c.n);
    mix(c.pick);
  }
  return h;
}

std::uint64_t trace_hash(const std::vector<spec::Event>& trace) {
  std::ostringstream os;
  obs::write_jsonl(trace, os);
  const std::string text = os.str();
  std::uint64_t h = 1469598103934665603ULL;
  for (const char ch : text) {
    h ^= static_cast<unsigned char>(ch);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

// ---------------------------------------------------------------------------
// ScenarioConfig <-> JSON
// ---------------------------------------------------------------------------

obs::JsonValue ScenarioConfig::to_json() const {
  obs::JsonValue j = obs::JsonValue::object();
  j["clients"] = clients;
  j["servers"] = servers;
  j["seed"] = seed;
  j["messages"] = messages;
  j["trigger_leave"] = trigger_leave;
  j["fault_slots"] = fault_slots;
  j["slot_gap"] = slot_gap;
  j["settle"] = settle;
  j["drop"] = drop;
  j["jitter"] = jitter;
  j["inject_bug"] = inject_bug;
  j["corruption"] = corruption;
  return j;
}

bool ScenarioConfig::from_json(const obs::JsonValue& j, ScenarioConfig* out) {
  if (!j.is_object()) return false;
  const obs::JsonValue* seed = j.find("seed");
  if (seed == nullptr || !seed->is_int()) return false;
  out->seed = static_cast<std::uint64_t>(seed->as_int());
  if (const auto* v = j.find("clients")) out->clients = static_cast<int>(v->as_int());
  if (const auto* v = j.find("servers")) out->servers = static_cast<int>(v->as_int());
  if (const auto* v = j.find("messages")) out->messages = static_cast<int>(v->as_int());
  if (const auto* v = j.find("trigger_leave")) out->trigger_leave = v->as_bool();
  if (const auto* v = j.find("fault_slots")) out->fault_slots = static_cast<int>(v->as_int());
  if (const auto* v = j.find("slot_gap")) out->slot_gap = v->as_int();
  if (const auto* v = j.find("settle")) out->settle = v->as_int();
  if (const auto* v = j.find("drop")) out->drop = v->as_double();
  if (const auto* v = j.find("jitter")) out->jitter = v->as_int();
  if (const auto* v = j.find("inject_bug")) out->inject_bug = v->as_bool();
  if (const auto* v = j.find("corruption")) out->corruption = v->as_bool();
  return true;
}

obs::JsonValue ExploreStats::to_json() const {
  obs::JsonValue j = obs::JsonValue::object();
  j["runs"] = runs;
  j["deduped"] = deduped;
  j["choice_points"] = choice_points;
  j["unique_traces"] = unique_traces;
  j["violations"] = violations;
  j["depth_completed"] = depth_completed;
  j["frontier_exhausted"] = frontier_exhausted;
  j["budget_exhausted"] = budget_exhausted;
  obs::JsonValue lv = obs::JsonValue::array();
  for (const Level& l : levels) {
    obs::JsonValue row = obs::JsonValue::object();
    row["depth"] = l.depth;
    row["runs"] = l.runs;
    row["deduped"] = l.deduped;
    row["enqueued"] = l.enqueued;
    lv.push_back(std::move(row));
  }
  j["levels"] = std::move(lv);
  return j;
}

// ---------------------------------------------------------------------------
// Scenario execution
// ---------------------------------------------------------------------------

std::vector<sim::FaultOp> fault_menu(const ScenarioConfig& sc) {
  std::vector<sim::FaultOp> menu;
  for (int i = 0; i < sc.clients; ++i) {
    sim::FaultOp op;
    op.kind = sim::FaultOp::Kind::kCrash;
    op.a = i;
    menu.push_back(op);
  }
  for (int i = 0; i < sc.clients; ++i) {
    sim::FaultOp op;
    op.kind = sim::FaultOp::Kind::kLinkDown;
    op.a = sim::encode_process(i);
    op.b = sim::encode_server(0);
    op.oneway = true;  // p_i -> s0 down, reverse direction untouched
    menu.push_back(op);
  }
  if (sc.servers >= 2) {
    for (int s = 0; s < sc.servers; ++s) {
      sim::FaultOp op;
      op.kind = sim::FaultOp::Kind::kServerDown;
      op.a = s;
      menu.push_back(op);
    }
  }
  if (sc.corruption && sc.clients >= 2) {
    // One deterministic entry per recoverable corruption kind, all aimed at
    // the p0 -> p1 stream / p0's membership floor so explorations stay
    // comparable across scenarios (DESIGN.md §12).
    const auto corrupt = [&menu](sim::FaultOp::Kind kind, int b,
                                 std::uint64_t v) {
      sim::FaultOp op;
      op.kind = kind;
      op.a = 0;
      op.b = b;
      op.v = v;
      menu.push_back(op);
    };
    corrupt(sim::FaultOp::Kind::kCorruptSeq, 1, 4);
    corrupt(sim::FaultOp::Kind::kCorruptAck, 1, 3);
    corrupt(sim::FaultOp::Kind::kCorruptReliable, 1, 0);
    corrupt(sim::FaultOp::Kind::kCorruptView, -1, std::uint64_t{1} << 40);
    corrupt(sim::FaultOp::Kind::kCorruptBackoff, 1, 0);
  }
  if (sc.inject_bug) {
    sim::FaultOp op;
    if (sc.corruption) {
      // Corruption-family planted bug: wedge p0's installed view epoch so no
      // future view can be delivered — unrecoverable by design, so the
      // stabilize epilogue's reconvergence check must flag it even under the
      // eventual-safety bundle.
      op.kind = sim::FaultOp::Kind::kBugCorruptWedge;
      op.a = 0;
      op.v = std::uint64_t{1} << 40;
    } else {
      op.kind = sim::FaultOp::Kind::kBugDupDeliver;
    }
    menu.push_back(op);
  }
  return menu;
}

RunResult run_scenario(const ScenarioConfig& sc, RecordingController& ctl) {
  RunResult out;
  app::WorldConfig wc;
  wc.num_clients = sc.clients;
  wc.num_servers = sc.servers;
  wc.seed = sc.seed;
  wc.net.drop_probability = sc.drop;
  wc.net.jitter = sc.jitter;
  wc.eventual_checkers = sc.corruption;
  app::World w(wc);

  sim::FailureInjector::Policy policy;
  policy.base_drop = sc.drop;
  policy.base_jitter = sc.jitter;
  sim::FailureInjector injector(w.fault_target(), policy, sc.seed);
  const std::vector<sim::FaultOp> menu = fault_menu(sc);

  try {
    w.start();
    if (!w.run_until_converged(w.all_members(), 10 * sim::kSecond)) {
      throw InvariantViolation("initial convergence failed (before control)");
    }

    // ---- Controlled window: the schedule is now the controller's. ----
    w.sim().set_nondet(&ctl);
    w.network().set_nondet(&ctl);
    for (int m = 0; m < sc.messages; ++m) {
      sim::FaultOp op;
      op.kind = sim::FaultOp::Kind::kTraffic;
      op.a = m % sc.clients;
      op.payload = "mc-" + std::to_string(m);
      injector.apply_now(op);
    }
    if (sc.trigger_leave && sc.clients > 1) {
      sim::FaultOp op;
      op.kind = sim::FaultOp::Kind::kLeave;
      op.a = sc.clients - 1;
      injector.apply_now(op);
    }
    for (int slot = 0; slot < sc.fault_slots; ++slot) {
      w.run_for(sc.slot_gap);
      if (menu.empty()) continue;
      const std::size_t pick = ctl.choose("mc.fault", menu.size() + 1);
      if (pick > 0) injector.apply_now(menu[pick - 1]);
    }
    w.run_for(sc.settle);
    w.sim().set_nondet(nullptr);
    w.network().set_nondet(nullptr);

    // ---- Stabilize-and-check-liveness epilogue (Property 4.2). ----
    injector.stabilize();
    if (!w.run_until_converged(w.all_members(), 60 * sim::kSecond)) {
      throw InvariantViolation(
          "liveness: no reconvergence within 60s after stabilization");
    }
    w.client(0).send("mc-probe");
    w.run_for(3 * sim::kSecond);
    w.check_transport_bounded();
    w.finalize_checkers();
    if (!spec::LivenessChecker::check(w.trace().recorded())) {
      throw InvariantViolation(
          "liveness: membership did not stabilize in the recorded trace");
    }
  } catch (const InvariantViolation& e) {
    out.violation = true;
    out.what = e.what();
  }
  w.sim().set_nondet(nullptr);
  w.network().set_nondet(nullptr);
  out.script.seed = sc.seed;
  out.script.choices = ctl.trace();
  out.trace = w.trace().recorded();
  out.sim_stats = w.sim().stats();
  out.sim_time = w.sim().now();
  return out;
}

RunResult run_scenario(const ScenarioConfig& sc,
                       const std::vector<std::uint32_t>& forced) {
  ScriptController ctl(forced);
  return run_scenario(sc, ctl);
}

std::vector<std::uint32_t> minimize_schedule(
    const ScenarioConfig& sc, const std::vector<std::uint32_t>& violating) {
  std::vector<std::uint32_t> picks = violating;
  for (int pass = 0; pass < 3; ++pass) {
    bool changed = false;
    for (std::size_t i = 0; i < picks.size(); ++i) {
      if (picks[i] == 0) continue;
      std::vector<std::uint32_t> trial = picks;
      trial[i] = 0;
      if (run_scenario(sc, trial).violation) {
        picks = std::move(trial);
        changed = true;
      }
    }
    if (!changed) break;
  }
  while (!picks.empty() && picks.back() == 0) picks.pop_back();
  return picks;
}

// ---------------------------------------------------------------------------
// Explorer
// ---------------------------------------------------------------------------

std::optional<RunResult> Explorer::explore() {
  stats_ = ExploreStats{};
  std::set<std::uint64_t> seen_signatures;
  std::set<std::uint64_t> seen_traces;
  std::set<std::vector<std::uint32_t>> seen_prefixes;
  std::vector<std::vector<std::uint32_t>> level;
  level.push_back({});  // the default schedule

  const sim::BatchRunner runner(xc_.jobs);
  for (int depth = 0; depth <= xc_.max_deviations && !level.empty(); ++depth) {
    ExploreStats::Level lvl;
    lvl.depth = depth;
    std::vector<std::vector<std::uint32_t>> next;
    // Execute the frontier in order-preserving chunks: each chunk runs in
    // parallel, then merges sequentially in frontier order. A violation or
    // budget stop discards the chunk's tail, so stats and the returned run
    // are exactly what a sequential (--jobs 1) exploration produces.
    std::size_t pos = 0;
    while (pos < level.size()) {
      if (stats_.runs >= xc_.max_runs) {
        stats_.budget_exhausted = true;
        stats_.levels.push_back(lvl);
        return std::nullopt;
      }
      const std::size_t chunk = std::min(
          {level.size() - pos,
           static_cast<std::size_t>(xc_.max_runs - stats_.runs),
           chunk_size(runner)});
      std::vector<RunResult> batch = runner.map<RunResult>(
          chunk,
          [&](std::size_t i) { return run_scenario(sc_, level[pos + i]); });
      for (std::size_t b = 0; b < chunk; ++b) {
        const std::vector<std::uint32_t>& prefix = level[pos + b];
        RunResult& run = batch[b];
        ++stats_.runs;
        ++lvl.runs;
        stats_.choice_points += run.script.choices.size();
        tally(run);
        if (!seen_signatures.insert(signature(run.script.choices)).second) {
          ++stats_.deduped;
          ++lvl.deduped;
          continue;  // identical execution already explored: no new children
        }
        if (seen_traces.insert(trace_hash(run.trace)).second) {
          ++stats_.unique_traces;
        }
        if (run.violation) {
          ++stats_.violations;
          stats_.levels.push_back(lvl);
          return std::move(run);
        }
        if (depth == xc_.max_deviations) continue;  // no children past bound
        const std::size_t horizon =
            std::min(run.script.choices.size(), xc_.horizon);
        for (std::size_t i = prefix.size(); i < horizon; ++i) {
          const Choice& c = run.script.choices[i];
          for (std::uint32_t pick = 1; pick < c.n; ++pick) {
            std::vector<std::uint32_t> child;
            child.reserve(i + 1);
            for (std::size_t k = 0; k < i; ++k) {
              child.push_back(run.script.choices[k].pick);
            }
            child.push_back(pick);
            if (seen_prefixes.insert(child).second) {
              next.push_back(std::move(child));
              ++lvl.enqueued;
            } else {
              ++stats_.deduped;
              ++lvl.deduped;
            }
          }
        }
      }
      pos += chunk;
    }
    stats_.depth_completed = depth;
    stats_.levels.push_back(lvl);
    level = std::move(next);
  }
  stats_.frontier_exhausted = true;
  return std::nullopt;
}

std::optional<RunResult> Explorer::random_walk(std::uint64_t seed_lo,
                                               std::uint64_t seed_hi) {
  stats_ = ExploreStats{};
  std::set<std::uint64_t> seen_signatures;
  std::set<std::uint64_t> seen_traces;
  const sim::BatchRunner runner(xc_.jobs);
  // Same chunked discipline as explore(): parallel execution in seed order,
  // sequential merge, chunk tail discarded on violation/budget stop.
  std::uint64_t seed = seed_lo;
  while (seed <= seed_hi) {
    if (stats_.runs >= xc_.max_runs) {
      stats_.budget_exhausted = true;
      return std::nullopt;
    }
    const std::size_t chunk = static_cast<std::size_t>(
        std::min({seed_hi - seed + 1, xc_.max_runs - stats_.runs,
                  static_cast<std::uint64_t>(chunk_size(runner))}));
    std::vector<RunResult> batch =
        runner.map<RunResult>(chunk, [&](std::size_t i) {
          RandomController ctl(seed + i);
          return run_scenario(sc_, ctl);
        });
    for (std::size_t b = 0; b < chunk; ++b) {
      RunResult& run = batch[b];
      ++stats_.runs;
      stats_.choice_points += run.script.choices.size();
      tally(run);
      if (!seen_signatures.insert(signature(run.script.choices)).second) {
        ++stats_.deduped;
        continue;
      }
      if (seen_traces.insert(trace_hash(run.trace)).second) {
        ++stats_.unique_traces;
      }
      if (run.violation) {
        ++stats_.violations;
        return std::move(run);
      }
    }
    seed += chunk;
  }
  return std::nullopt;
}

}  // namespace vsgc::mc
