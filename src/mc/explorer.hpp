// Systematic schedule exploration over the deterministic simulator.
//
// A *scenario* is a small fixed workload (N-process world, racing sends, a
// graceful leave triggering a view change, optional fault decision slots)
// with every spec checker attached and a stabilize-and-check-liveness
// epilogue (Property 4.2). Between the trigger and the settle point the
// ScriptController is installed on the sim::Simulator and net::Network
// seams, so the execution is a pure function of the forced pick vector:
//
//   run_scenario(sc, {})          — the default schedule
//   run_scenario(sc, picks)      — the schedule `picks` deviations describe
//
// The explorer enumerates pick vectors with bounded iterative deepening on
// the *deviation count* (delay-bounded exploration a la CHESS): level d
// holds every schedule at distance d from the default; children of a run
// add one deviation at a choice point at or after the parent's last forced
// position (each schedule is generated once). State-hash dedup collapses
// prefixes that decode to the same consumed-choice sequence — common when a
// forced prefix outlives the choice points of the execution it lands in.
//
// Fault decision points: scenarios with fault_slots > 0 consult the same
// controller at "mc.fault" points whose alternatives are a deterministic
// menu of sim::FaultOps (crash, one-way link down, server outage, and the
// planted dup-delivery bug when armed), applied through
// sim::FailureInjector::apply_now. Default (pick 0) injects nothing, so
// faults cost deviations like any other departure from the default run.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "mc/controller.hpp"
#include "mc/schedule_script.hpp"
#include "sim/failure_injector.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"
#include "spec/events.hpp"

namespace vsgc::obs {
class JsonValue;
}  // namespace vsgc::obs

namespace vsgc::mc {

/// The fixed workload a controlled execution runs. Every field participates
/// in the JSON round-trip, so a violation bundle's scenario.json rebuilds
/// the exact world.
struct ScenarioConfig {
  int clients = 3;
  int servers = 1;
  std::uint64_t seed = 1;
  int messages = 2;           ///< racing sends issued at the trigger
  bool trigger_leave = true;  ///< last process leaves: the view change
  int fault_slots = 0;        ///< "mc.fault" decision points after trigger
  sim::Time slot_gap = 20 * sim::kMillisecond;
  sim::Time settle = 200 * sim::kMillisecond;  ///< controlled-window tail
  double drop = 0.0;     ///< > 0: every packet adds a "net.drop" choice
  sim::Time jitter = 0;  ///< > 0: every packet adds a "net.jitter" choice
  bool inject_bug = false;  ///< planted dup-delivery action on the menu
  /// State-corruption exploration (DESIGN.md §12): the fault menu gains one
  /// deterministic entry per recoverable corruption kind, and the world runs
  /// the eventual-safety checker bundle so tolerated recovery windows don't
  /// read as violations. With inject_bug, the planted action becomes the
  /// *unrecoverable* kBugCorruptWedge instead of the dup-delivery forgery.
  bool corruption = false;

  obs::JsonValue to_json() const;
  static bool from_json(const obs::JsonValue& j, ScenarioConfig* out);
};

/// Exploration bounds. Exhaustive *within* these bounds; the stats say
/// whether the frontier was exhausted or a budget cut exploration short.
struct ExploreConfig {
  int max_deviations = 2;        ///< delay bound (iterative deepening 0..d)
  std::uint64_t max_runs = 2000; ///< hard budget on executions
  std::size_t horizon = 160;     ///< only the first N choice points branch
  std::size_t jobs = 1;          ///< parallel executions (0 = hw threads).
                                 ///< Stats/results are byte-identical for
                                 ///< every value: runs execute in frontier-
                                 ///< order chunks and merge sequentially,
                                 ///< discarding whatever a sequential run
                                 ///< would never have executed.
};

struct ExploreStats {
  std::uint64_t runs = 0;           ///< executions actually performed
  std::uint64_t deduped = 0;        ///< schedules collapsed by state hash
  std::uint64_t choice_points = 0;  ///< total consumed across all runs
  std::uint64_t unique_traces = 0;  ///< distinct observable JSONL traces
  std::uint64_t violations = 0;
  int depth_completed = -1;         ///< deepest fully explored level
  bool frontier_exhausted = false;  ///< no schedules left within the bound
  bool budget_exhausted = false;    ///< max_runs cut exploration short

  // Simulator stats aggregated over every world the explorer ran (the
  // worlds themselves are destroyed inside run_scenario), so drivers can
  // fold them into a BenchArtifact "sim" section.
  sim::Simulator::Stats sim_stats;
  sim::Time sim_time = 0;

  struct Level {
    int depth = 0;
    std::uint64_t runs = 0;
    std::uint64_t deduped = 0;
    std::uint64_t enqueued = 0;  ///< children scheduled for the next level
  };
  std::vector<Level> levels;

  obs::JsonValue to_json() const;
};

/// One controlled execution, end to end.
struct RunResult {
  bool violation = false;
  std::string what;
  ScheduleScript script;  ///< every consumed choice point, in order
  std::vector<spec::Event> trace;
  sim::Simulator::Stats sim_stats;  ///< the destroyed world's kernel stats
  sim::Time sim_time = 0;           ///< simulated time at the end of the run
};

/// The deterministic fault menu a scenario's "mc.fault" points choose from
/// (alternative k on the menu is pick k+1; pick 0 injects nothing).
std::vector<sim::FaultOp> fault_menu(const ScenarioConfig& sc);

/// Run the scenario with `forced` picks (empty = default schedule).
RunResult run_scenario(const ScenarioConfig& sc,
                       const std::vector<std::uint32_t>& forced);
/// Same, with a caller-supplied controller (the random walk uses this).
RunResult run_scenario(const ScenarioConfig& sc, RecordingController& ctl);

/// Greedy schedule minimizer: reset each deviation to the default pick,
/// keeping every reset that preserves the violation; loops to a fixpoint
/// (max 3 passes) and trims trailing defaults. Same discipline as the
/// FaultScript minimizer in tools/vsgc_stress.
std::vector<std::uint32_t> minimize_schedule(
    const ScenarioConfig& sc, const std::vector<std::uint32_t>& violating);

class Explorer {
 public:
  Explorer(ScenarioConfig sc, ExploreConfig xc) : sc_(sc), xc_(xc) {}

  /// Delay-bounded iterative-deepening exploration. Returns the first
  /// violating run, if any (exploration stops there).
  std::optional<RunResult> explore();

  /// Seeded random-walk fallback over [seed_lo, seed_hi] walks (PR 2's
  /// seed-sweep discipline). Returns the first violating walk; its script
  /// replays deterministically through a ScriptController.
  std::optional<RunResult> random_walk(std::uint64_t seed_lo,
                                       std::uint64_t seed_hi);

  const ExploreStats& stats() const { return stats_; }

 private:
  void tally(const RunResult& run) {
    stats_.sim_stats.events_scheduled += run.sim_stats.events_scheduled;
    stats_.sim_stats.events_executed += run.sim_stats.events_executed;
    stats_.sim_stats.events_cancelled += run.sim_stats.events_cancelled;
    if (run.sim_stats.peak_queue_depth > stats_.sim_stats.peak_queue_depth) {
      stats_.sim_stats.peak_queue_depth = run.sim_stats.peak_queue_depth;
    }
    stats_.sim_time += run.sim_time;
  }

  ScenarioConfig sc_;
  ExploreConfig xc_;
  ExploreStats stats_;
};

}  // namespace vsgc::mc
