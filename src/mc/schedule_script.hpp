// ScheduleScript: a recorded sequence of nondeterministic choices.
//
// Every controlled execution (src/mc/controller.hpp) consumes choice points
// through the sim::NondetSource seam; the (kind, n, pick) triple of each
// consulted point is recorded in order. The resulting script is the
// schedule-space analogue of sim::FaultScript and follows the same
// discipline:
//
//   * replayable — forcing the recorded picks reproduces the execution
//     byte-identically (JSONL traces compare equal);
//   * serializable — {"seed": S, "choices": [{"kind","n","pick"}...]} JSON,
//     written into violation bundles next to the trace;
//   * minimizable — any pick vector is a valid schedule (picks are clamped
//     to the live alternative count, missing picks default to 0), so a
//     greedy minimizer can reset deviations to the default one at a time
//     and keep every reset that preserves the violation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace vsgc::obs {
class JsonValue;
}  // namespace vsgc::obs

namespace vsgc::mc {

/// One consumed choice point: `pick` of `n` alternatives at a point named
/// `kind`. pick 0 is always the default (uncontrolled) alternative.
struct Choice {
  std::string kind;
  std::uint32_t n = 0;
  std::uint32_t pick = 0;

  bool operator==(const Choice&) const = default;
};

struct ScheduleScript {
  std::uint64_t seed = 0;  ///< scenario/world seed it was recorded against
  std::vector<Choice> choices;

  /// The forced-pick vector that replays this script.
  std::vector<std::uint32_t> picks() const;
  /// Number of non-default picks — the schedule's distance from the
  /// uncontrolled execution (what the delay bound counts).
  std::size_t deviations() const;

  obs::JsonValue to_json() const;
  static bool from_json(const obs::JsonValue& j, ScheduleScript* out);
};

}  // namespace vsgc::mc
