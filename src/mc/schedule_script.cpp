#include "mc/schedule_script.hpp"

#include "obs/json.hpp"

namespace vsgc::mc {

std::vector<std::uint32_t> ScheduleScript::picks() const {
  std::vector<std::uint32_t> out;
  out.reserve(choices.size());
  for (const Choice& c : choices) out.push_back(c.pick);
  return out;
}

std::size_t ScheduleScript::deviations() const {
  std::size_t n = 0;
  for (const Choice& c : choices) n += c.pick != 0 ? 1 : 0;
  return n;
}

obs::JsonValue ScheduleScript::to_json() const {
  obs::JsonValue root = obs::JsonValue::object();
  root["seed"] = seed;
  obs::JsonValue arr = obs::JsonValue::array();
  for (const Choice& c : choices) {
    obs::JsonValue j = obs::JsonValue::object();
    j["kind"] = c.kind;
    j["n"] = c.n;
    j["pick"] = c.pick;
    arr.push_back(std::move(j));
  }
  root["choices"] = std::move(arr);
  return root;
}

bool ScheduleScript::from_json(const obs::JsonValue& j, ScheduleScript* out) {
  if (!j.is_object()) return false;
  const obs::JsonValue* seed = j.find("seed");
  const obs::JsonValue* choices = j.find("choices");
  if (seed == nullptr || !seed->is_int() || choices == nullptr ||
      !choices->is_array()) {
    return false;
  }
  out->seed = static_cast<std::uint64_t>(seed->as_int());
  out->choices.clear();
  for (const obs::JsonValue& rec : choices->items()) {
    if (!rec.is_object()) return false;
    const obs::JsonValue* kind = rec.find("kind");
    const obs::JsonValue* n = rec.find("n");
    const obs::JsonValue* pick = rec.find("pick");
    if (kind == nullptr || !kind->is_string() || n == nullptr ||
        !n->is_int() || pick == nullptr || !pick->is_int()) {
      return false;
    }
    Choice c;
    c.kind = kind->as_string();
    c.n = static_cast<std::uint32_t>(n->as_int());
    c.pick = static_cast<std::uint32_t>(pick->as_int());
    out->choices.push_back(std::move(c));
  }
  return true;
}

}  // namespace vsgc::mc
