// CO_RFIFO wire frame format (DESIGN.md §11).
//
// One Frame is the unit the transport puts on the datagram network: a fixed
// header plus zero or more consecutively-sequenced payload entries. A frame
// with entries is a data frame; a frame without entries is pure control
// (standalone cumulative ack, or a stream-reset request). Every data frame
// may additionally piggyback the sender's cumulative ack for the *reverse*
// stream, which is what lets steady bidirectional traffic run with almost no
// standalone ack packets.
//
// The flat codec below is the byte-level contract: benches account realistic
// sizes with it and the adversarial decode tests drive truncated and
// oversized-count frames through it. Inside the simulator frames travel as
// structured objects (one refcounted payload handle per entry — never a
// per-entry std::any wrap), so the codec is exercised by tests, not per
// packet on the hot path.
#pragma once

#include <cstdint>
#include <vector>

#include "util/interval_set.hpp"
#include "util/serialization.hpp"

namespace vsgc::transport::wire {

/// Modeled per-frame cost for byte accounting: flags, incarnation, sequence
/// bases, piggybacked ack, entry count, addressing — amortized over however
/// many entries the frame carries.
constexpr std::size_t kFrameHeaderBytes = 16;

/// Modeled per-entry framing cost (length prefix + sequencing share). A
/// single-entry frame therefore costs kFrameHeaderBytes + kFrameEntryBytes =
/// 24 bytes of overhead, exactly the pre-batching per-packet header.
constexpr std::size_t kFrameEntryBytes = 8;

/// Hard cap on entries per decoded frame: a forged count above this fails
/// decoding instead of driving a giant allocation.
constexpr std::size_t kMaxFrameEntries = 4096;

/// Modeled per-frame cost of the group tag when a frame targets a non-zero
/// multiplexed channel (kFlagHasGroup). Group-0 traffic pays nothing, so
/// single-group byte accounting is unchanged from PR 7.
constexpr std::size_t kGroupTagBytes = 4;

/// Modeled cost of one selective-ack run (lo, hi) when a frame carries a
/// SACK block (kFlagHasSack). FIFO steady state carries zero runs.
constexpr std::size_t kSackRunBytes = 16;

/// Cap on SACK runs per frame: beyond this the receiver falls back to the
/// cumulative ack alone (the retransmit path still converges, just with more
/// duplicate deliveries suppressed receiver-side).
constexpr std::uint32_t kMaxSackRuns = 64;

constexpr std::uint8_t kFlagHasAck = 0x1;    ///< ack_* fields are meaningful
constexpr std::uint8_t kFlagReset = 0x2;     ///< "restart this stream" request
constexpr std::uint8_t kFlagHasGroup = 0x4;  ///< group tag present (muxing)
constexpr std::uint8_t kFlagHasSack = 0x8;   ///< selective-ack runs present

/// Fixed frame header. `base_seq` numbers the first entry; entry i carries
/// sequence base_seq + i (entries in one frame are always consecutive).
/// `group` multiplexes many logical channels over one sequenced session
/// (DESIGN.md §13): all groups share one seq space, one ack stream, and one
/// retransmit budget per peer pair. `sack` lists received-but-unacked runs
/// above ack_seq so the sender can skip retransmitting across loss gaps.
struct FrameHeader {
  // vsgc-lint: allow(codec-symmetry) flags is derived on encode (presence bits ORed in) and consulted per optional field on decode; codec_test round-trips both shapes
  std::uint8_t flags = 0;
  std::uint64_t incarnation = 0;      ///< sender connection incarnation
  std::uint64_t first_seq = 1;        ///< lowest seq still retransmittable
  std::uint64_t base_seq = 0;         ///< seq of entry 0 (data frames)
  std::uint64_t ack_incarnation = 0;  ///< reverse-stream incarnation acked
  std::uint64_t ack_seq = 0;          ///< cumulative ack for reverse stream
  std::uint32_t count = 0;            ///< number of payload entries
  std::uint32_t group = 0;            ///< multiplexed channel tag
  // vsgc-lint: allow(codec-symmetry) sack is flag-gated: written once iff non-empty, read once iff kFlagHasSack — the linter sees the reserve() mention as a second write
  util::IntervalSet sack{};           ///< received runs above ack_seq

  void encode(Encoder& enc) const {
    enc.reserve(41 + 16 * sack.num_runs());
    std::uint8_t f = flags;
    if (group != 0) f |= kFlagHasGroup;
    if (!sack.empty()) f |= kFlagHasSack;
    enc.put_u8(f);
    enc.put_u64(incarnation);
    enc.put_u64(first_seq);
    enc.put_u64(base_seq);
    enc.put_u64(ack_incarnation);
    enc.put_u64(ack_seq);
    enc.put_u32(count);
    if (group != 0) enc.put_u32(group);
    if (!sack.empty()) sack.encode(enc);
  }

  // vsgc-lint: allow(codec-symmetry) token order differs because encode emits the derived flag byte before the gated fields; byte order on the wire is identical
  static FrameHeader decode(Decoder& dec) {
    FrameHeader h;
    h.flags = dec.get_u8();
    h.incarnation = dec.get_u64();
    h.first_seq = dec.get_u64();
    h.base_seq = dec.get_u64();
    h.ack_incarnation = dec.get_u64();
    h.ack_seq = dec.get_u64();
    h.count = dec.get_u32();
    if (h.flags & kFlagHasGroup) {
      h.group = dec.get_u32();
      if (h.group == 0) throw DecodeError("group flag with zero group tag");
    }
    if (h.flags & kFlagHasSack) {
      h.sack = util::IntervalSet::decode(dec, kMaxSackRuns);
      if (h.sack.empty()) throw DecodeError("sack flag with empty sack");
    }
    h.flags &= static_cast<std::uint8_t>(~(kFlagHasGroup | kFlagHasSack));
    return h;
  }

  friend bool operator==(const FrameHeader&, const FrameHeader&) = default;
};

/// A fully serializable frame: header plus raw payload bytes per entry.
struct EncodedFrame {
  // vsgc-lint: allow(codec-symmetry) encode() writes a local copy of header with count recomputed from payloads.size(); decode() reads it back symmetrically
  FrameHeader header{};
  std::vector<std::vector<std::uint8_t>> payloads{};

  void encode(Encoder& enc) const {
    FrameHeader h = header;
    h.count = static_cast<std::uint32_t>(payloads.size());
    h.encode(enc);
    for (const auto& p : payloads) enc.put_bytes(p);
  }

  /// Decodes a frame, failing cleanly (DecodeError via Decoder::need) on any
  /// truncation and on entry counts beyond kMaxFrameEntries — a forged count
  /// can never drive an out-of-bounds read or an unbounded reserve.
  static EncodedFrame decode(Decoder& dec) {
    EncodedFrame f;
    f.header = FrameHeader::decode(dec);
    if (f.header.count > kMaxFrameEntries) {
      throw DecodeError("frame entry count exceeds kMaxFrameEntries");
    }
    // Each entry needs at least its 4-byte length prefix, so `remaining / 4`
    // bounds any honest count: reserve never trusts the header alone.
    const std::size_t plausible = dec.remaining() / 4;
    f.payloads.reserve(
        f.header.count < plausible ? f.header.count : plausible);
    for (std::uint32_t i = 0; i < f.header.count; ++i) {
      f.payloads.push_back(dec.get_bytes());
    }
    return f;
  }

  friend bool operator==(const EncodedFrame&, const EncodedFrame&) = default;
};

}  // namespace vsgc::transport::wire
