// ChannelMux: many logical group channels over one CO_RFIFO session per
// peer pair (DESIGN.md §13).
//
// Without multiplexing, K groups × N members means K×N transport sessions:
// each with its own sequence space, ack stream, retransmit timer, and
// per-peer buffers. The mux shares ONE CoRfifoTransport per node across
// every group the node belongs to: frames carry a group tag
// (wire::kFlagHasGroup), the session's single FIFO stream preserves order
// within each group for free, and per-peer state is paid once — per-member
// resident state scales with peers-with-traffic, not with group count.
//
// Responsibilities:
//   * route group-tagged deliveries to the handler attached for that group;
//   * maintain the union of per-group reliable sets on the shared transport
//     (a group's endpoint asks for reliable delivery to its members; the
//     session must stay reliable toward the union of all groups' members);
//   * hand out Channel handles — a thin (transport, group) pair the
//     endpoints talk to instead of a dedicated transport.
//
// A Channel is also constructible directly from a bare transport (group 0,
// no mux): single-group deployments keep the exact PR 7 wire behaviour and
// pay zero bytes for the tag.
#pragma once

#include <any>
#include <cstdint>
#include <functional>
#include <map>
#include <set>

#include "transport/co_rfifo.hpp"
#include "util/assert.hpp"

namespace vsgc::transport {

class ChannelMux;

/// Thin sending handle: (transport, group [, mux]). Copyable; endpoints use
/// it wherever they previously held a CoRfifoTransport reference.
class Channel {
 public:
  /// Direct single-channel form: group 0 over a dedicated transport —
  /// byte-identical to pre-mux behaviour.
  /*implicit*/ Channel(CoRfifoTransport& transport)
      : transport_(&transport), mux_(nullptr), group_(0) {}

  Channel(CoRfifoTransport& transport, ChannelMux* mux, std::uint32_t group)
      : transport_(&transport), mux_(mux), group_(group) {}

  void send(const std::set<net::NodeId>& dests, net::Payload payload,
            std::size_t payload_size = 0) {
    transport_->send(dests, std::move(payload), payload_size, group_);
  }

  /// Ask for reliable gap-free delivery toward `set` on this channel. Under
  /// a mux this updates the group's slice and re-derives the union; direct
  /// channels pass straight through.
  inline void set_reliable(const std::set<net::NodeId>& set);

  /// Does this channel's reliable slice already equal `set` (and is the
  /// underlying session reliable toward all of it)? Endpoints use this as
  /// their idempotence check before re-asserting the set.
  inline bool reliable_matches(const std::set<net::NodeId>& set) const;

  CoRfifoTransport& transport() { return *transport_; }
  const CoRfifoTransport& transport() const { return *transport_; }
  std::uint32_t group() const { return group_; }

 private:
  CoRfifoTransport* transport_;
  ChannelMux* mux_;
  std::uint32_t group_;
};

class ChannelMux {
 public:
  using DeliverFn = CoRfifoTransport::DeliverFn;

  explicit ChannelMux(CoRfifoTransport& transport) : transport_(transport) {
    transport_.set_group_deliver_handler(
        [this](net::NodeId from, std::uint32_t group,
               const std::any& payload) { dispatch(from, group, payload); });
  }

  ChannelMux(const ChannelMux&) = delete;
  ChannelMux& operator=(const ChannelMux&) = delete;

  /// Open (or re-open) channel `group`, routing its deliveries to `fn`.
  /// Group 0 is reserved for untagged traffic (see set_default_handler).
  Channel open(std::uint32_t group, DeliverFn fn) {
    VSGC_REQUIRE(group != 0, "group 0 is the untagged default channel");
    channels_[group].deliver = std::move(fn);
    return Channel(transport_, this, group);
  }

  /// Handler for untagged (group-0) traffic — e.g. the membership client
  /// stream sharing the session with group channels.
  void set_default_handler(DeliverFn fn) { default_ = std::move(fn); }

  /// Replace channel `group`'s reliable slice and push the union of every
  /// group's slice to the shared transport. O(Σ slice sizes) per call —
  /// slices are group memberships (bounded by group size), never N.
  void set_group_reliable(std::uint32_t group,
                          const std::set<net::NodeId>& set) {
    channels_[group].reliable = set;
    std::set<net::NodeId> uni;
    for (const auto& [g, ch] : channels_) {
      uni.insert(ch.reliable.begin(), ch.reliable.end());
    }
    transport_.set_reliable(uni);
  }

  const std::set<net::NodeId>& group_reliable(std::uint32_t group) const {
    static const std::set<net::NodeId> kEmpty;
    auto it = channels_.find(group);
    return it == channels_.end() ? kEmpty : it->second.reliable;
  }

  /// Whole-node crash: per-group reliable slices die with the transport
  /// state; handlers stay attached for recovery.
  void on_crash() {
    for (auto& [g, ch] : channels_) ch.reliable.clear();
  }

  CoRfifoTransport& transport() { return transport_; }

  std::size_t num_channels() const { return channels_.size(); }

 private:
  struct ChannelState {
    DeliverFn deliver;
    std::set<net::NodeId> reliable;
  };

  void dispatch(net::NodeId from, std::uint32_t group,
                const std::any& payload) {
    if (group == 0) {
      if (default_) default_(from, payload);
      return;
    }
    auto it = channels_.find(group);
    // Traffic for a group we never joined (or already left): drop. The
    // sender's view of our membership is simply stale.
    if (it == channels_.end() || !it->second.deliver) return;
    it->second.deliver(from, payload);
  }

  CoRfifoTransport& transport_;
  DeliverFn default_;
  std::map<std::uint32_t, ChannelState> channels_;
};

void Channel::set_reliable(const std::set<net::NodeId>& set) {
  if (mux_ != nullptr) {
    mux_->set_group_reliable(group_, set);
  } else {
    transport_->set_reliable(set);
  }
}

bool Channel::reliable_matches(const std::set<net::NodeId>& set) const {
  if (mux_ != nullptr) {
    if (mux_->group_reliable(group_) != set) return false;
    for (net::NodeId q : set) {
      if (!transport_->reliable_set().contains(q)) return false;
    }
    return true;
  }
  return transport_->reliable_set() == set;
}

}  // namespace vsgc::transport
