#include "transport/co_rfifo.hpp"

#include "util/assert.hpp"
#include "util/logging.hpp"

namespace vsgc::transport {

CoRfifoTransport::CoRfifoTransport(sim::Simulator& sim, net::Network& network,
                                   net::NodeId self, Config config)
    : sim_(sim), network_(network), self_(self), config_(config) {
  reliable_set_ = {self};
  network_.attach(self, [this](net::NodeId from, const std::any& raw) {
    on_packet(from, raw);
  });
}

CoRfifoTransport::~CoRfifoTransport() { network_.detach(self_); }

std::uint64_t CoRfifoTransport::fresh_incarnation() {
  // Monotone across crash/recovery without stable storage: simulated time is
  // globally monotone, the counter breaks same-instant ties.
  return (static_cast<std::uint64_t>(sim_.now()) << 16) |
         (++incarnation_counter_ & 0xffff);
}

void CoRfifoTransport::send(const std::set<net::NodeId>& dests,
                            net::Payload payload, std::size_t payload_size) {
  if (crashed_) return;
  for (net::NodeId q : dests) {
    ++stats_.messages_sent;
    if (q == self_) {
      // Local loopback: still asynchronous (one scheduler hop), still FIFO.
      // Byte accounting matches a remote send (payload + header) so sync
      // traffic tables don't under-count self-addressed copies.
      stats_.bytes_sent += payload_size + kPacketHeaderBytes;
      sim_.schedule(1, [this, payload]() {
        if (crashed_ || !deliver_) {
          // A loopback in flight across our own crash is lost like any other
          // packet to a crashed node — count it instead of dropping silently.
          ++stats_.loopbacks_dropped;
          return;
        }
        ++stats_.messages_delivered;
        deliver_(self_, payload.any());
      });
      continue;
    }
    auto& out = outgoing_[q];
    if (out.incarnation == 0) out.incarnation = fresh_incarnation();
    Packet pkt;
    pkt.incarnation = out.incarnation;
    pkt.seq = out.next_seq++;
    pkt.first_seq = out.acked + 1;
    pkt.payload = payload;
    pkt.payload_size = payload_size;
    out.unacked.push_back(pkt);
    transmit(q, pkt);
    arm_retransmit(q);
  }
}

void CoRfifoTransport::transmit(net::NodeId to, const Packet& pkt) {
  stats_.bytes_sent += pkt.payload_size + kPacketHeaderBytes;
  // Wrapping the Packet costs one allocation; the payload bytes inside it are
  // shared by refcount with the unacked buffer, never copied.
  network_.send(self_, to, net::Payload(pkt),
                pkt.payload_size + kPacketHeaderBytes);
}

void CoRfifoTransport::arm_retransmit(net::NodeId to) {
  auto& out = outgoing_[to];
  if (out.retransmit_timer.pending()) return;
  out.retransmit_timer =
      sim_.schedule(config_.retransmit_timeout, [this, to]() {
        if (crashed_) return;
        auto it = outgoing_.find(to);
        if (it == outgoing_.end()) return;
        auto& out = it->second;
        if (out.unacked.empty()) return;
        if (!reliable_set_.contains(to)) return;  // abandoned connection
        std::size_t sent = 0;
        std::uint64_t resent = 0;
        for (Packet& pkt : out.unacked) {
          if (sent++ >= config_.retransmit_batch) break;
          pkt.first_seq = out.acked + 1;  // refresh prefix availability
          ++stats_.retransmissions;
          ++resent;
          transmit(to, pkt);
        }
        if (resent > 0 && trace_ != nullptr && trace_->lifecycle()) {
          trace_->emit(sim_.now(),
                       spec::XportRetransmit{self_.value, to.value, resent});
        }
        arm_retransmit(to);
      });
}

void CoRfifoTransport::set_reliable(const std::set<net::NodeId>& set) {
  if (crashed_) return;
  for (auto& [q, out] : outgoing_) {
    if (set.contains(q) || !reliable_set_.contains(q)) continue;
    // Peer dropped from the reliable set: abandon the connection. The unacked
    // suffix is lost (Figure 3's lose(p, q)); a later re-add starts fresh.
    out.unacked.clear();
    out.retransmit_timer.cancel();
    out.incarnation = 0;  // next send() to q gets a new incarnation
    out.next_seq = 1;
    out.acked = 0;
  }
  reliable_set_ = set;
  reliable_set_.insert(self_);
}

void CoRfifoTransport::on_packet(net::NodeId from, const std::any& raw) {
  if (crashed_) return;
  const auto* pkt = std::any_cast<Packet>(&raw);
  if (pkt == nullptr) {
    if (raw_) raw_(from, raw);
    return;
  }
  if (pkt->is_ack) on_ack(from, *pkt);
  else on_data(from, *pkt);
}

void CoRfifoTransport::on_ack(net::NodeId from, const Packet& pkt) {
  auto it = outgoing_.find(from);
  if (it == outgoing_.end()) return;
  auto& out = it->second;
  if (pkt.incarnation != out.incarnation) return;  // stale incarnation
  if (pkt.is_reset) {
    // The peer lost this stream's prefix (it crashed and recovered without
    // stable storage). Start a fresh incarnation, carrying the unacked
    // suffix over as the new stream's first messages — the acked prefix
    // belongs to the peer's previous life and is gone by design (Section 8).
    out.acked = 0;
    if (out.unacked.empty()) {
      out.incarnation = 0;  // next send() opens a new stream lazily
      out.next_seq = 1;
      out.retransmit_timer.cancel();
      return;
    }
    out.incarnation = fresh_incarnation();
    std::uint64_t seq = 1;
    for (Packet& p : out.unacked) {
      p.incarnation = out.incarnation;
      p.seq = seq++;
      p.first_seq = 1;
      // Re-homing the suffix re-sends packets already transmitted once:
      // recovery cost, counted like any other retransmission.
      ++stats_.retransmissions;
      transmit(from, p);
    }
    if (seq > 1 && trace_ != nullptr && trace_->lifecycle()) {
      trace_->emit(sim_.now(),
                   spec::XportRetransmit{self_.value, from.value, seq - 1});
    }
    out.next_seq = seq;
    out.retransmit_timer.cancel();
    arm_retransmit(from);
    return;
  }
  if (pkt.seq <= out.acked) return;
  out.acked = pkt.seq;
  while (!out.unacked.empty() && out.unacked.front().seq <= pkt.seq) {
    out.unacked.pop_front();
  }
  if (out.unacked.empty()) out.retransmit_timer.cancel();
}

void CoRfifoTransport::on_data(net::NodeId from, const Packet& pkt) {
  auto& in = incoming_[from];
  if (pkt.incarnation < in.incarnation) return;  // stale stream
  if (pkt.incarnation > in.incarnation) {
    if (pkt.first_seq > 1) {
      // Mid-stream continuation of an incarnation we have no state for: we
      // crashed and lost the prefix, and the sender can no longer retransmit
      // it (it was acked by our previous life). Ask for a fresh stream.
      Packet reset;
      reset.incarnation = pkt.incarnation;
      reset.seq = 0;
      reset.is_ack = true;
      reset.is_reset = true;
      ++stats_.acks_sent;
      stats_.bytes_sent += kPacketHeaderBytes;
      network_.send(self_, from, net::Payload(std::move(reset)),
                    kPacketHeaderBytes);
      return;
    }
    // Fresh connection incarnation from the peer: restart the stream.
    in.incarnation = pkt.incarnation;
    in.next_expected = 1;
    in.out_of_order.clear();
  }

  if (pkt.seq < in.next_expected) {
    ++stats_.duplicates_dropped;
  } else {
    in.out_of_order.emplace(pkt.seq, pkt);  // no-op if already buffered
    while (true) {
      auto next = in.out_of_order.find(in.next_expected);
      if (next == in.out_of_order.end()) break;
      ++stats_.messages_delivered;
      ++in.next_expected;
      Packet ready = std::move(next->second);
      in.out_of_order.erase(next);
      if (deliver_) deliver_(from, ready.payload.any());
      if (crashed_) return;  // delivery handler may have crashed us
    }
  }

  // Cumulative ack for everything contiguously received.
  Packet ack;
  ack.incarnation = in.incarnation;
  ack.seq = in.next_expected - 1;
  ack.is_ack = true;
  ++stats_.acks_sent;
  stats_.bytes_sent += kPacketHeaderBytes;
  network_.send(self_, from, net::Payload(std::move(ack)), kPacketHeaderBytes);
}

void CoRfifoTransport::crash() {
  crashed_ = true;
  for (auto& [q, out] : outgoing_) out.retransmit_timer.cancel();
  outgoing_.clear();
  incoming_.clear();
  reliable_set_ = {self_};
}

void CoRfifoTransport::recover() {
  VSGC_REQUIRE(crashed_,
               "recover() without crash at " << net::to_string(self_));
  crashed_ = false;
}

}  // namespace vsgc::transport
