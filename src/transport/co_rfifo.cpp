#include "transport/co_rfifo.hpp"

#include "util/assert.hpp"
#include "util/logging.hpp"

namespace vsgc::transport {

namespace {

std::size_t frame_wire_size(const Frame& f) {
  std::size_t bytes = wire::kFrameHeaderBytes;
  if (f.header.group != 0) bytes += wire::kGroupTagBytes;
  bytes += f.header.sack.num_runs() * wire::kSackRunBytes;
  for (const FrameEntry& e : f.entries) {
    bytes += e.payload_size + wire::kFrameEntryBytes;
  }
  return bytes;
}

void track_peak(std::uint64_t& peak, std::size_t size) {
  if (size > peak) peak = size;
}

}  // namespace

CoRfifoTransport::CoRfifoTransport(sim::Simulator& sim, net::Network& network,
                                   net::NodeId self, Config config)
    : sim_(sim), network_(network), self_(self), config_(config) {
  reliable_set_ = {self};
  network_.attach(self, [this](net::NodeId from, const std::any& raw) {
    on_packet(from, raw);
  });
}

CoRfifoTransport::~CoRfifoTransport() { network_.detach(self_); }

std::uint64_t CoRfifoTransport::fresh_incarnation() {
  // Monotone across crash/recovery without stable storage: simulated time is
  // globally monotone, the counter breaks same-instant ties.
  return (static_cast<std::uint64_t>(sim_.now()) << 16) |
         (++incarnation_counter_ & 0xffff);
}

void CoRfifoTransport::deliver_up(net::NodeId from, std::uint32_t group,
                                  const std::any& payload) {
  if (group_deliver_) {
    group_deliver_(from, group, payload);
  } else if (deliver_) {
    deliver_(from, payload);
  }
}

void CoRfifoTransport::send(const std::set<net::NodeId>& dests,
                            net::Payload payload, std::size_t payload_size,
                            std::uint32_t group) {
  if (crashed_) return;
  for (net::NodeId q : dests) {
    ++stats_.messages_sent;
    if (q == self_) {
      // Local loopback: still asynchronous (one scheduler hop), still FIFO.
      // Byte accounting matches a remote single-entry frame (payload + frame
      // header + entry header) so sync traffic tables don't under-count
      // self-addressed copies.
      stats_.bytes_sent += payload_size + kPacketHeaderBytes +
                           (group != 0 ? wire::kGroupTagBytes : 0);
      sim_.schedule(1, [this, payload, group]() {
        if (crashed_ || (!deliver_ && !group_deliver_)) {
          // A loopback in flight across our own crash is lost like any other
          // packet to a crashed node — count it instead of dropping silently.
          ++stats_.loopbacks_dropped;
          return;
        }
        ++stats_.messages_delivered;
        deliver_up(self_, group, payload.any());
      });
      continue;
    }
    auto& out = outgoing_[q];
    out.pending.push_back(FrameEntry{0, payload, payload_size, group});
    track_peak(stats_.peak_pending, out.pending.size());
    if (config_.batching) {
      schedule_flush(q);
    } else {
      flush(q);
    }
  }
}

void CoRfifoTransport::schedule_flush(net::NodeId to) {
  auto& out = outgoing_[to];
  if (out.flush_timer.pending()) return;
  out.flush_timer = sim_.schedule(config_.flush_window, [this, to]() {
    if (crashed_) return;
    flush(to);
  });
}

void CoRfifoTransport::flush(net::NodeId to) {
  auto it = outgoing_.find(to);
  if (it == outgoing_.end()) return;
  auto& out = it->second;
  out.flush_timer.cancel();
  if (audit_outgoing(to)) return;  // corrupted cursors: stream was re-homed
  const std::size_t cap = config_.batching ? config_.max_batch : 1;
  while (!out.pending.empty()) {
    if (out.unacked.size() >= config_.send_window) {
      // Zero credits: the entries stay queued until an ack frees window
      // space (handle_ack re-enters flush), bounding `unacked` per peer.
      ++stats_.window_stalls;
      break;
    }
    if (out.incarnation == 0) out.incarnation = fresh_incarnation();
    Frame f;
    f.header.incarnation = out.incarnation;
    f.header.first_seq = out.acked + 1;
    f.header.base_seq = out.next_seq;
    f.header.group = out.pending.front().group;
    const std::size_t room = config_.send_window - out.unacked.size();
    std::size_t take = out.pending.size();
    if (take > cap) take = cap;
    if (take > room) take = room;
    // A frame carries one group tag, so a multiplexed burst breaks at group
    // boundaries (group-0-only traffic never does — PR 7 framing unchanged).
    std::size_t same_group = 1;
    while (same_group < take &&
           out.pending[same_group].group == f.header.group) {
      ++same_group;
    }
    take = same_group;
    f.entries.reserve(take);
    for (std::size_t i = 0; i < take; ++i) {
      FrameEntry e = std::move(out.pending.front());
      out.pending.pop_front();
      e.seq = out.next_seq++;
      out.unacked.push_back(e);  // payload shared by refcount, not copied
      f.entries.push_back(std::move(e));
    }
    track_peak(stats_.peak_unacked, out.unacked.size());
    attach_piggyback(to, f);
    transmit_frame(to, std::move(f));
    arm_retransmit(to);
  }
}

void CoRfifoTransport::attach_piggyback(net::NodeId to, Frame& frame) {
  if (!config_.batching) return;
  auto it = incoming_.find(to);
  if (it == incoming_.end() || it->second.incarnation == 0) return;
  auto& in = it->second;
  // The ack fields are part of the fixed frame header, so carrying the
  // latest cumulative ack on every data frame is free.
  frame.header.flags |= wire::kFlagHasAck;
  frame.header.ack_incarnation = in.incarnation;
  frame.header.ack_seq = in.next_expected - 1;
  // Selective ack: the reorder buffer's received runs ride along so the
  // sender can skip retransmitting across loss gaps. Empty (zero bytes) for
  // FIFO traffic; capped at kMaxSackRuns under pathological fragmentation
  // (the cumulative ack alone still converges).
  if (!in.received.empty() && in.received.num_runs() <= wire::kMaxSackRuns) {
    frame.header.sack = in.received;
    stats_.sack_runs_sent += in.received.num_runs();
  }
  if (in.ack_due) {
    // This frame replaces a standalone ack that would otherwise go out.
    ++stats_.acks_piggybacked;
    in.ack_due = false;
    in.ack_timer.cancel();
  }
}

void CoRfifoTransport::transmit_frame(net::NodeId to, Frame frame) {
  frame.header.count = static_cast<std::uint32_t>(frame.entries.size());
  const std::size_t bytes = frame_wire_size(frame);
  stats_.bytes_sent += bytes;
  ++stats_.frames_sent;
  stats_.entries_sent += frame.entries.size();
  // Wrapping the Frame costs one allocation; the payload bytes inside its
  // entries are shared by refcount with the unacked buffer, never copied.
  network_.send(self_, to, net::Payload(std::move(frame)), bytes);
}

void CoRfifoTransport::arm_retransmit(net::NodeId to) {
  auto& out = outgoing_[to];
  if (out.unacked.empty()) return;
  if (out.retransmit_timer.pending()) return;
  if (out.backoff == 0 || out.backoff > config_.backoff_limit) {
    // Self-stabilization clamp (DESIGN.md §12): a corrupted multiplier would
    // either spin the timer at a zero interval or freeze retransmission.
    out.backoff = out.backoff == 0 ? 1 : config_.backoff_limit;
  }
  out.retransmit_timer =
      sim_.schedule(config_.retransmit_timeout * out.backoff, [this, to]() {
        if (crashed_) return;
        auto it = outgoing_.find(to);
        if (it == outgoing_.end()) return;
        auto& out = it->second;
        if (out.unacked.empty()) return;
        if (!reliable_set_.contains(to)) return;  // abandoned connection
        if (audit_outgoing(to)) return;  // corrupted cursors: re-homed
        const std::size_t cap = config_.batching ? config_.max_batch : 1;
        const std::size_t budget = config_.retransmit_batch;
        // Walk the unacked window, skipping entries the peer's SACK says it
        // already holds: one loss gap costs one re-send, not a window burst.
        // Frames break at SACK gaps and group boundaries (entries in a frame
        // are consecutive and share one group tag).
        std::size_t i = 0;
        std::size_t resent = 0;
        while (i < out.unacked.size() && resent < budget) {
          if (out.peer_sacked.contains(out.unacked[i].seq)) {
            ++stats_.sack_suppressed;
            ++i;
            continue;
          }
          Frame f;
          f.header.incarnation = out.incarnation;
          f.header.first_seq = out.acked + 1;
          f.header.base_seq = out.unacked[i].seq;
          f.header.group = out.unacked[i].group;
          std::size_t take = 1;
          while (i + take < out.unacked.size() && take < cap &&
                 resent + take < budget &&
                 out.unacked[i + take].group == f.header.group &&
                 !out.peer_sacked.contains(out.unacked[i + take].seq)) {
            ++take;
          }
          f.entries.reserve(take);
          for (std::size_t k = 0; k < take; ++k) {
            f.entries.push_back(out.unacked[i + k]);
          }
          i += take;
          resent += take;
          stats_.retransmissions += take;
          attach_piggyback(to, f);
          transmit_frame(to, std::move(f));
        }
        if (resent > 0 && trace_ != nullptr && trace_->lifecycle()) {
          trace_->emit(sim_.now(),
                       spec::XportRetransmit{self_.value, to.value, resent});
        }
        // No ack progress since the last fire: back off (capped) so a long
        // partition degenerates to a slow probe, not a duplicate storm.
        if (out.backoff < config_.backoff_limit) {
          out.backoff *= 2;
          if (out.backoff > config_.backoff_limit) {
            out.backoff = config_.backoff_limit;
          }
        }
        arm_retransmit(to);
      });
}

void CoRfifoTransport::set_reliable(const std::set<net::NodeId>& set) {
  if (crashed_) return;
  for (auto& [q, out] : outgoing_) {
    if (set.contains(q) || !reliable_set_.contains(q)) continue;
    // Peer dropped from the reliable set: abandon the connection. The unacked
    // suffix is lost (Figure 3's lose(p, q)); a later re-add starts fresh.
    out.pending.clear();
    out.unacked.clear();
    out.peer_sacked.clear();
    out.flush_timer.cancel();
    out.retransmit_timer.cancel();
    out.incarnation = 0;  // next send() to q gets a new incarnation
    out.next_seq = 1;
    out.acked = 0;
    out.backoff = 1;
  }
  reliable_set_ = set;
  reliable_set_.insert(self_);
  // A peer re-entering the set may have a live stream whose retransmit timer
  // was lost while it was outside (e.g. a corrupted reliable_set dropped it
  // and the timer body bailed on the membership check). Re-arm so in-flight
  // entries are not stranded until the next fresh send.
  for (auto& [q, out] : outgoing_) {
    if (q != self_ && reliable_set_.contains(q) && !out.unacked.empty()) {
      arm_retransmit(q);
    }
  }
}

void CoRfifoTransport::on_packet(net::NodeId from, const std::any& raw) {
  if (crashed_) return;
  const auto* frame = std::any_cast<Frame>(&raw);
  if (frame == nullptr) {
    if (raw_) raw_(from, raw);
    return;
  }
  const wire::FrameHeader& h = frame->header;
  if (h.flags & wire::kFlagReset) {
    handle_reset(from, h.ack_incarnation);
    return;
  }
  if (h.flags & wire::kFlagHasAck) {
    handle_ack(from, h.ack_incarnation, h.ack_seq, h.sack);
  }
  if (!frame->entries.empty()) handle_data(from, *frame);
}

void CoRfifoTransport::handle_ack(net::NodeId from, std::uint64_t incarnation,
                                  std::uint64_t ack_seq,
                                  const util::IntervalSet& sack) {
  auto it = outgoing_.find(from);
  if (it == outgoing_.end()) return;
  auto& out = it->second;
  if (incarnation != out.incarnation) return;  // stale incarnation
  if (ack_seq >= out.next_seq) {
    // Cumulative ack for a sequence number never sent: impossible for honest
    // cursors on both ends — one side's state is corrupted. Re-home the
    // stream under a fresh incarnation instead of trimming into garbage
    // (DESIGN.md §12).
    reset_stream(from, /*detected_corruption=*/true);
    return;
  }
  if (ack_seq < out.acked) return;  // stale/reordered: old selective info too
  if (ack_seq == out.acked) {
    // No cumulative progress, but the SACK may carry fresh reorder-buffer
    // info (the receiver is still stuck on the same gap while buffering
    // more). Merge runs — never trust one beyond our own send cursor.
    for (const auto& [lo, hi] : sack.runs()) {
      if (lo > ack_seq && hi < out.next_seq) out.peer_sacked.insert_run(lo, hi);
    }
    return;
  }
  out.acked = ack_seq;
  while (!out.unacked.empty() && out.unacked.front().seq <= ack_seq) {
    out.unacked.pop_front();
  }
  // The SACK block is the receiver's complete current reorder state above
  // the new cumulative ack: replace, then drop anything now covered.
  out.peer_sacked.clear();
  for (const auto& [lo, hi] : sack.runs()) {
    if (lo > ack_seq && hi < out.next_seq) out.peer_sacked.insert_run(lo, hi);
  }
  // Ack progress: the connection is alive again — restart backoff and the
  // timer from a clean interval.
  out.backoff = 1;
  out.retransmit_timer.cancel();
  arm_retransmit(from);
  // Freed credits may unblock window-stalled entries.
  if (!out.pending.empty()) flush(from);
}

void CoRfifoTransport::handle_reset(net::NodeId from,
                                    std::uint64_t incarnation) {
  auto it = outgoing_.find(from);
  if (it == outgoing_.end()) return;
  if (incarnation != it->second.incarnation) return;  // stale incarnation
  // The peer lost this stream's prefix (it crashed and recovered without
  // stable storage, or detected corrupted cursors). Re-home under a fresh
  // incarnation — the acked prefix belongs to the peer's previous life and
  // is gone by design (Section 8).
  reset_stream(from, /*detected_corruption=*/false);
}

void CoRfifoTransport::reset_stream(net::NodeId to, bool detected_corruption) {
  auto it = outgoing_.find(to);
  if (it == outgoing_.end()) return;
  auto& out = it->second;
  if (detected_corruption) {
    ++stats_.corruption_resets;
    if (reset_handler_) reset_handler_(to);
  }
  // Carry the unacked suffix over as the new stream's first messages. The
  // peer's selective-ack state belongs to the dead incarnation.
  out.acked = 0;
  out.peer_sacked.clear();
  out.retransmit_timer.cancel();
  out.backoff = 1;
  if (out.unacked.empty()) {
    out.incarnation = 0;  // next flush opens a new stream lazily
    out.next_seq = 1;
    if (!out.pending.empty()) flush(to);
    return;
  }
  out.incarnation = fresh_incarnation();
  std::uint64_t seq = 1;
  for (FrameEntry& e : out.unacked) e.seq = seq++;
  out.next_seq = seq;
  const std::size_t cap = config_.batching ? config_.max_batch : 1;
  const std::size_t total = out.unacked.size();
  std::size_t i = 0;
  while (i < total) {
    Frame f;
    f.header.incarnation = out.incarnation;
    f.header.first_seq = 1;
    f.header.base_seq = out.unacked[i].seq;
    f.header.group = out.unacked[i].group;
    std::size_t take = 1;
    while (i + take < total && take < cap &&
           out.unacked[i + take].group == f.header.group) {
      ++take;
    }
    f.entries.reserve(take);
    for (std::size_t k = 0; k < take; ++k) {
      f.entries.push_back(out.unacked[i + k]);
    }
    i += take;
    // Re-homing the suffix re-sends entries already transmitted once:
    // recovery cost, counted like any other retransmission.
    stats_.retransmissions += take;
    attach_piggyback(to, f);
    transmit_frame(to, std::move(f));
  }
  if (trace_ != nullptr && trace_->lifecycle()) {
    trace_->emit(sim_.now(),
                 spec::XportRetransmit{self_.value, to.value, total});
  }
  arm_retransmit(to);
  if (!out.pending.empty()) flush(to);
}

bool CoRfifoTransport::audit_outgoing(net::NodeId to) {
  auto it = outgoing_.find(to);
  if (it == outgoing_.end() || it->second.incarnation == 0) return false;
  const Outgoing& out = it->second;
  const bool consistent =
      out.acked < out.next_seq &&
      (out.unacked.empty()
           ? out.next_seq == out.acked + 1
           : out.unacked.front().seq == out.acked + 1 &&
                 out.unacked.back().seq == out.next_seq - 1);
  if (consistent) return false;
  reset_stream(to, /*detected_corruption=*/true);
  return true;
}

void CoRfifoTransport::handle_data(net::NodeId from, const Frame& frame) {
  auto& in = incoming_[from];
  const wire::FrameHeader& h = frame.header;
  if (h.incarnation < in.incarnation) return;  // stale stream
  if (h.incarnation > in.incarnation) {
    if (h.first_seq > 1) {
      // Mid-stream continuation of an incarnation we have no state for: we
      // crashed and lost the prefix, and the sender can no longer retransmit
      // it (it was acked by our previous life). Ask for a fresh stream.
      Frame reset;
      reset.header.flags = wire::kFlagReset;
      reset.header.ack_incarnation = h.incarnation;
      ++stats_.acks_sent;
      transmit_frame(from, std::move(reset));
      return;
    }
    // Fresh connection incarnation from the peer: restart the stream.
    in.incarnation = h.incarnation;
    in.next_expected = 1;
    in.out_of_order.clear();
    in.received.clear();
  } else if (h.first_seq > in.next_expected) {
    // Same incarnation, yet the sender's unacked window starts beyond our
    // cumulative ack. Impossible for honest cursors: first_seq is the
    // sender's acked+1, and we only ever acked what we delivered — so one
    // side's stream state is corrupted (e.g. a desynced ack cursor). Ask for
    // a fresh incarnation and notify the upper layer: entries the corrupted
    // cursor skipped are lost to this stream, and only a view change can
    // re-align endpoint delivery indexes (DESIGN.md §12).
    ++stats_.corruption_resets;
    Frame reset;
    reset.header.flags = wire::kFlagReset;
    reset.header.ack_incarnation = h.incarnation;
    ++stats_.acks_sent;
    transmit_frame(from, std::move(reset));
    if (reset_handler_) reset_handler_(from);
    return;
  }

  // Classify-and-deliver in one pass, bracketed by the batch hooks so
  // endpoints can absorb a whole frame before pumping once. The common case
  // — fully in-order traffic with an empty reorder buffer — delivers
  // straight from the frame and never touches the out_of_order map (no node
  // allocation per message); only genuinely reordered entries are buffered.
  if (deliver_begin_) deliver_begin_();
  for (std::size_t i = 0; i < frame.entries.size() && !crashed_; ++i) {
    const std::uint64_t seq = h.base_seq + i;
    if (seq < in.next_expected) {
      ++stats_.duplicates_dropped;
    } else if (seq >= in.next_expected + config_.recv_window) {
      // Beyond the receive window: drop instead of buffering, so a
      // reordering adversary (or a sender predating the credit window)
      // cannot grow this map without bound. The sender retransmits once
      // the cumulative ack catches up.
      ++stats_.ooo_dropped;
    } else if (seq == in.next_expected && in.out_of_order.empty()) {
      ++stats_.messages_delivered;
      ++in.next_expected;
      deliver_up(from, h.group, frame.entries[i].payload.any());
      // delivery handler may have crashed us: loop condition re-checks
    } else if (in.received.insert(seq)) {
      // Genuinely new reordered entry: buffer it. `received` is the
      // run-length twin of the buffer's key set — it classifies duplicates
      // in O(log runs) and becomes the SACK block of the next ack.
      in.out_of_order.emplace(seq, frame.entries[i]);
      track_peak(stats_.peak_out_of_order, in.out_of_order.size());
    }
  }
  // Drain entries this frame made contiguous with earlier reordered ones.
  // `received` knows the whole contiguous run in O(log runs); the map walk
  // hands each buffered payload up in order.
  if (!crashed_ && in.received.contains(in.next_expected)) {
    const std::uint64_t run_end = in.received.next_missing(in.next_expected);
    while (!crashed_ && in.next_expected < run_end) {
      auto next = in.out_of_order.find(in.next_expected);
      VSGC_REQUIRE(next != in.out_of_order.end(),
                   "reorder buffer diverged from its received-run twin");
      ++stats_.messages_delivered;
      ++in.next_expected;
      FrameEntry ready = std::move(next->second);
      in.out_of_order.erase(next);
      deliver_up(from, ready.group, ready.payload.any());
    }
    if (!crashed_) in.received.erase_below(in.next_expected);
  }
  if (deliver_end_) deliver_end_();
  // The end hook (endpoint pump → app) may also have crashed us; `in` is
  // dangling after crash() clears incoming_, so re-resolve before acking.
  if (crashed_) return;
  auto it = incoming_.find(from);
  if (it == incoming_.end()) return;
  auto& in2 = it->second;

  in2.ack_due = true;
  if (!config_.batching) {
    // Legacy behavior: one standalone cumulative ack per data frame.
    send_standalone_ack(from);
    return;
  }
  schedule_ack(from);
}

void CoRfifoTransport::schedule_ack(net::NodeId from) {
  auto& in = incoming_[from];
  if (in.ack_timer.pending()) return;
  in.ack_timer = sim_.schedule(config_.ack_delay, [this, from]() {
    if (crashed_) return;
    auto it = incoming_.find(from);
    if (it == incoming_.end()) return;
    if (!it->second.ack_due) return;  // a piggyback beat us to it
    send_standalone_ack(from);
  });
}

void CoRfifoTransport::send_standalone_ack(net::NodeId to) {
  auto it = incoming_.find(to);
  if (it == incoming_.end()) return;
  auto& in = it->second;
  Frame ack;
  ack.header.flags = wire::kFlagHasAck;
  ack.header.ack_incarnation = in.incarnation;
  ack.header.ack_seq = in.next_expected - 1;
  if (!in.received.empty() && in.received.num_runs() <= wire::kMaxSackRuns) {
    ack.header.sack = in.received;
    stats_.sack_runs_sent += in.received.num_runs();
  }
  in.ack_due = false;
  ++stats_.acks_sent;
  // A standalone ack is a header-only frame: kFrameHeaderBytes on the wire
  // (honest accounting — it carries no entry, so no per-entry cost).
  transmit_frame(to, std::move(ack));
}

bool CoRfifoTransport::corrupt_outgoing_seq(net::NodeId peer,
                                            std::uint64_t delta) {
  if (crashed_ || delta == 0) return false;
  auto it = outgoing_.find(peer);
  if (it == outgoing_.end() || it->second.incarnation == 0) return false;
  it->second.next_seq += delta;  // audit_outgoing() will catch the gap
  return true;
}

bool CoRfifoTransport::corrupt_ack_cursor(net::NodeId peer,
                                          std::uint64_t delta) {
  if (crashed_ || delta == 0) return false;
  auto it = outgoing_.find(peer);
  if (it == outgoing_.end() || it->second.incarnation == 0) return false;
  auto& out = it->second;
  // Advance the cursor as if acks arrived for entries the peer never saw,
  // trimming unacked to match — internally consistent, so the sender-side
  // audit stays blind; only the receiver's first_seq check can expose it.
  out.acked = out.acked + delta >= out.next_seq ? out.next_seq - 1
                                                : out.acked + delta;
  while (!out.unacked.empty() && out.unacked.front().seq <= out.acked) {
    out.unacked.pop_front();
  }
  return true;
}

bool CoRfifoTransport::corrupt_drop_reliable(net::NodeId peer) {
  if (crashed_ || peer == self_) return false;
  if (!reliable_set_.contains(peer)) return false;
  // Desync the set only — stream state stays, mimicking a flipped membership
  // bit. Retransmission toward `peer` silently stops until the next
  // set_reliable() re-asserts the true set and re-arms the timer.
  reliable_set_.erase(peer);
  return true;
}

bool CoRfifoTransport::corrupt_backoff(net::NodeId peer, std::uint32_t value) {
  if (crashed_) return false;
  auto it = outgoing_.find(peer);
  if (it == outgoing_.end() || it->second.incarnation == 0) return false;
  it->second.backoff = value;  // arm_retransmit() clamps before scheduling
  return true;
}

std::size_t CoRfifoTransport::resident_bytes() const {
  // Approximate heap footprint of per-peer stream state: container node and
  // element sizes, not payload bytes (payloads are refcounted and owned by
  // the application layer). bench_scale fits this against N.
  constexpr std::size_t kNodeOverhead = 4 * sizeof(void*);
  std::size_t total = sizeof(*this);
  for (const auto& [q, out] : outgoing_) {
    total += sizeof(std::pair<const net::NodeId, Outgoing>) + kNodeOverhead;
    total += (out.pending.size() + out.unacked.size()) * sizeof(FrameEntry);
    total += out.peer_sacked.resident_bytes();
  }
  for (const auto& [q, in] : incoming_) {
    total += sizeof(std::pair<const net::NodeId, Incoming>) + kNodeOverhead;
    total += in.out_of_order.size() *
             (sizeof(std::pair<const std::uint64_t, FrameEntry>) +
              kNodeOverhead);
    total += in.received.resident_bytes();
  }
  total += reliable_set_.size() * (sizeof(net::NodeId) + kNodeOverhead);
  return total;
}

void CoRfifoTransport::crash() {
  crashed_ = true;
  for (auto& [q, out] : outgoing_) {
    out.flush_timer.cancel();
    out.retransmit_timer.cancel();
  }
  for (auto& [q, in] : incoming_) in.ack_timer.cancel();
  outgoing_.clear();
  incoming_.clear();
  reliable_set_ = {self_};
}

void CoRfifoTransport::recover() {
  VSGC_REQUIRE(crashed_,
               "recover() without crash at " << net::to_string(self_));
  crashed_ = false;
}

}  // namespace vsgc::transport
