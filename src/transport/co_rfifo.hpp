// CO_RFIFO: connection-oriented reliable FIFO multicast (paper Figure 3).
//
// One CoRfifoTransport instance runs at each node; together they implement
// the centralized CO_RFIFO automaton of the paper over the unreliable
// datagram network. The transport is addressed by net::NodeId so the same
// substrate serves GCS end-points (client<->client), membership clients
// (client<->server) and membership servers (server<->server) — mirroring the
// paper's layering over the reliable datagram service of [36].
//
// Semantics provided:
//
//   * send(set, m): best-effort multicast; for destinations in reliable_set
//     the stream is gap-free FIFO (sequence numbers + cumulative acks +
//     retransmission).
//   * set_reliable(set): maintain reliable connections to `set` only. For a
//     peer removed from the set, an arbitrary suffix of in-flight messages
//     may be lost (the implementation drops the unacked suffix and abandons
//     the connection — Figure 3's lose(p, q)). Re-adding a peer starts a
//     fresh connection incarnation, so a stale stream never resumes mid-gap.
//   * crash()/recover(): Section 8 semantics — a crash wipes all transport
//     state; recovery starts new incarnations everywhere.
//
// Data plane (DESIGN.md §11): messages to the same peer coalesce into
// multi-entry wire::Frame batches inside a configurable flush window; data
// frames piggyback the reverse stream's cumulative ack (suppressing most
// standalone ack frames); a per-peer credit window bounds `unacked`, a
// receive window bounds `out_of_order`, and the retransmit timer backs off
// exponentially (reset on ack progress) so partitions don't cause duplicate
// storms.
//
// The `live_set` of the spec models real network connectivity; in this
// implementation that role is played by the vsgc::net::Network fault state,
// and the spec checker (src/spec/co_rfifo_spec) tracks it from trace events.
#pragma once

#include <any>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <set>

#include "net/network.hpp"
#include "net/node.hpp"
#include "sim/time.hpp"
#include "spec/events.hpp"
#include "transport/frame.hpp"
#include "util/ids.hpp"
#include "util/interval_set.hpp"

namespace vsgc::transport {

/// One batched entry travelling inside a Frame: the refcounted payload handle
/// plus its modeled serialized size. Sequence numbers are implicit — entry i
/// of a frame carries header.base_seq + i.
struct FrameEntry {
  std::uint64_t seq = 0;  ///< explicit in sender-side buffers for ack trims
  net::Payload payload;   ///< refcounted — copying an entry never copies bytes
  std::size_t payload_size = 0;
  std::uint32_t group = 0;  ///< multiplexed channel tag (DESIGN.md §13)
};

/// The in-simulator frame: a wire::FrameHeader plus structured entries (the
/// byte-level twin, wire::EncodedFrame, is what the codec tests exercise).
struct Frame {
  wire::FrameHeader header{};
  std::vector<FrameEntry> entries{};
};

/// Per-packet overhead of a single-entry frame (one frame header + one entry
/// header). Loopback accounting and legacy single-message byte expectations
/// are stated in terms of this constant.
constexpr std::size_t kPacketHeaderBytes =
    wire::kFrameHeaderBytes + wire::kFrameEntryBytes;

class CoRfifoTransport {
 public:
  struct Config {
    sim::Time retransmit_timeout = 20 * sim::kMillisecond;
    std::size_t retransmit_batch = 64;  ///< entries re-sent per timer fire
    /// Max retransmit-interval multiplier for exponential backoff (interval =
    /// retransmit_timeout * min(2^k, backoff_limit); 1 = fixed interval).
    std::uint32_t backoff_limit = 8;
    /// Sender-side packing: batch same-destination sends inside flush_window
    /// into one frame, and piggyback/delay acks. When false the transport
    /// degenerates to one frame per message with immediate standalone acks.
    bool batching = true;
    /// How long a message may wait for companions before its frame flushes.
    /// 0 still batches: all sends to one peer at the same sim instant share a
    /// frame (the flush fires as a zero-delay event after the current event).
    sim::Time flush_window = 0;
    std::size_t max_batch = 64;  ///< max entries per data frame
    /// How long a received data frame may wait for a reverse-direction data
    /// frame to piggyback its ack before a standalone ack frame goes out.
    sim::Time ack_delay = 0;
    /// Credit window: max unacked entries per peer. Further sends queue in
    /// `pending` until acks return credits.
    std::size_t send_window = 256;
    /// Receive window: out-of-order entries at or beyond next_expected +
    /// recv_window are dropped (counted in ooo_dropped), bounding the
    /// reorder buffer against adversarial or badly reordered traffic.
    std::size_t recv_window = 256;
  };

  struct Stats {
    std::uint64_t messages_sent = 0;  ///< upper-layer sends (per destination)
    std::uint64_t messages_delivered = 0;
    std::uint64_t retransmissions = 0;  ///< timer re-sends + reset re-homing
    std::uint64_t acks_sent = 0;        ///< standalone ack/reset frames
    std::uint64_t acks_piggybacked = 0; ///< due acks carried by data frames
    std::uint64_t duplicates_dropped = 0;
    std::uint64_t loopbacks_dropped = 0;  ///< self-sends lost to our crash
    std::uint64_t bytes_sent = 0;  ///< includes loopback payload + header
    std::uint64_t frames_sent = 0;   ///< wire frames (data, ack, reset)
    std::uint64_t entries_sent = 0;  ///< data entries across all frames
    std::uint64_t ooo_dropped = 0;   ///< entries beyond the receive window
    std::uint64_t window_stalls = 0; ///< flushes blocked on zero credits
    std::uint64_t peak_unacked = 0;        ///< max unacked entries, any peer
    std::uint64_t peak_out_of_order = 0;   ///< max reorder buffer, any peer
    std::uint64_t peak_pending = 0;        ///< max credit-stalled queue
    /// Streams reset by the self-stabilization guards (DESIGN.md §12):
    /// impossible ack/seq state detected at either end. Zero in any
    /// corruption-free execution.
    std::uint64_t corruption_resets = 0;
    std::uint64_t sack_runs_sent = 0;   ///< selective-ack runs put on the wire
    std::uint64_t sack_suppressed = 0;  ///< retransmits skipped via peer SACK
  };

  using DeliverFn =
      std::function<void(net::NodeId from, const std::any& payload)>;
  using GroupDeliverFn = std::function<void(
      net::NodeId from, std::uint32_t group, const std::any& payload)>;
  using BatchHookFn = std::function<void()>;
  using ResetFn = std::function<void(net::NodeId peer)>;

  CoRfifoTransport(sim::Simulator& sim, net::Network& network,
                   net::NodeId self, Config config);
  CoRfifoTransport(sim::Simulator& sim, net::Network& network,
                   net::NodeId self)
      : CoRfifoTransport(sim, network, self, Config()) {}
  ~CoRfifoTransport();

  CoRfifoTransport(const CoRfifoTransport&) = delete;
  CoRfifoTransport& operator=(const CoRfifoTransport&) = delete;

  /// Register the upper-layer delivery handler (gap-free FIFO per sender).
  void set_deliver_handler(DeliverFn fn) { deliver_ = std::move(fn); }

  /// Group-aware delivery handler for multiplexed channels (DESIGN.md §13):
  /// when set it takes precedence over the plain handler and additionally
  /// receives the frame's group tag, letting one shared per-peer session
  /// fan deliveries out to many logical channels (a ChannelMux installs
  /// this). FIFO order holds across the whole session, hence per group too.
  void set_group_deliver_handler(GroupDeliverFn fn) {
    group_deliver_ = std::move(fn);
  }

  /// Batch-aware delivery bracket: `begin` fires before the in-order drain of
  /// a multi-entry frame, `end` after it. Endpoints use this to defer their
  /// pump until the whole batch has been absorbed (one pump per frame rather
  /// than one per message).
  void set_batch_hooks(BatchHookFn begin, BatchHookFn end) {
    deliver_begin_ = std::move(begin);
    deliver_end_ = std::move(end);
  }

  /// Raw datagram side-channel: non-Frame payloads arriving at this node
  /// (e.g. failure-detector heartbeats) bypass the reliable machinery.
  void set_raw_handler(DeliverFn fn) { raw_ = std::move(fn); }

  /// Fire-and-forget datagram outside the reliable stream (no seq, no
  /// retransmit, no buffering). Used for heartbeats.
  void send_raw(net::NodeId to, net::Payload payload,
                std::size_t payload_size = 0) {
    if (crashed_) return;
    stats_.bytes_sent += payload_size;
    network_.send(self_, to, std::move(payload), payload_size);
  }

  /// Multicast `payload` to every destination in `dests` (self allowed; a
  /// self-destination is delivered locally after a scheduling hop). The
  /// payload is wrapped into one refcounted handle here; fan-out, unacked
  /// buffering, and retransmission all share it. `group` tags the entries
  /// with a multiplexed channel id (0 = the untagged default channel); all
  /// groups share this peer pair's single sequence space, ack stream, and
  /// retransmit budget.
  void send(const std::set<net::NodeId>& dests, net::Payload payload,
            std::size_t payload_size = 0, std::uint32_t group = 0);

  /// Maintain reliable gap-free connections to exactly `set` (plus self).
  void set_reliable(const std::set<net::NodeId>& set);
  const std::set<net::NodeId>& reliable_set() const { return reliable_set_; }

  /// Section 8: crash wipes all state and stops all activity.
  void crash();
  /// Section 8: recover with fresh incarnations; peers resynchronize.
  void recover();
  bool crashed() const { return crashed_; }

  const Stats& stats() const { return stats_; }
  const Config& config() const { return config_; }
  net::NodeId self() const { return self_; }

  /// Approximate resident heap footprint of all per-peer stream state
  /// (pending/unacked buffers, reorder runs, SACK runs). bench_scale uses
  /// this for its per-member-memory-vs-N sublinearity fit.
  std::size_t resident_bytes() const;

  /// Optional span instrumentation (DESIGN.md §10): when set AND the bus has
  /// lifecycle on, retransmission bursts emit spec::XportRetransmit events.
  /// Zero-cost otherwise (one branch per burst, not per packet).
  void set_trace(spec::TraceBus* trace) { trace_ = trace; }

  /// Fired whenever a self-stabilization guard resets a stream because it
  /// detected impossible ack/seq state (DESIGN.md §12). The upper layer uses
  /// this to force a membership re-sync: a transport reset alone cannot heal
  /// endpoint-level delivery-index drift — only a view change does.
  void set_reset_handler(ResetFn fn) { reset_handler_ = std::move(fn); }

  // State-corruption hooks (DESIGN.md §12, sim::FaultOp kCorrupt* kinds).
  // Each mutates live stream state toward `peer` and returns false when no
  // such stream exists (the injector records the op either way; a false
  // return just means the draw hit a dormant stream).
  bool corrupt_outgoing_seq(net::NodeId peer, std::uint64_t delta);
  bool corrupt_ack_cursor(net::NodeId peer, std::uint64_t delta);
  bool corrupt_drop_reliable(net::NodeId peer);
  bool corrupt_backoff(net::NodeId peer, std::uint32_t value);

 private:
  struct Outgoing {
    std::uint64_t incarnation = 0;
    std::uint64_t next_seq = 1;  ///< seq for the next new message
    std::uint64_t acked = 0;     ///< highest cumulatively acked seq
    std::deque<FrameEntry> pending;  ///< sent by app, not yet framed (no seq)
    std::deque<FrameEntry> unacked;  ///< framed and in flight / retransmittable
    /// Seqs above `acked` the peer has selectively acked (runs from its SACK
    /// blocks): the retransmit timer skips them, so one loss gap costs one
    /// re-send instead of a whole-window burst (DESIGN.md §13).
    util::IntervalSet peer_sacked;
    sim::TimerHandle flush_timer;
    sim::TimerHandle retransmit_timer;
    std::uint32_t backoff = 1;  ///< current retransmit-interval multiplier
  };

  struct Incoming {
    std::uint64_t incarnation = 0;
    std::uint64_t next_expected = 1;
    std::map<std::uint64_t, FrameEntry> out_of_order;  ///< bounded: recv_window
    /// Run-length twin of out_of_order's key set: O(log runs) duplicate
    /// classification and O(runs) SACK-block generation, where runs is the
    /// number of loss gaps — not the window size (DESIGN.md §13).
    util::IntervalSet received;
    bool ack_due = false;  ///< received data not yet acked (any frame kind)
    sim::TimerHandle ack_timer;
  };

  void on_packet(net::NodeId from, const std::any& raw);
  void handle_data(net::NodeId from, const Frame& frame);
  void handle_ack(net::NodeId from, std::uint64_t incarnation,
                  std::uint64_t ack_seq, const util::IntervalSet& sack);
  /// Route one delivered payload to the group-aware handler if installed,
  /// else the plain handler.
  void deliver_up(net::NodeId from, std::uint32_t group,
                  const std::any& payload);
  void handle_reset(net::NodeId from, std::uint64_t incarnation);
  void flush(net::NodeId to);
  void schedule_flush(net::NodeId to);
  void attach_piggyback(net::NodeId to, Frame& frame);
  void transmit_frame(net::NodeId to, Frame frame);
  void send_standalone_ack(net::NodeId to);
  void schedule_ack(net::NodeId from);
  void arm_retransmit(net::NodeId to);
  std::uint64_t fresh_incarnation();
  /// Re-home the stream to `to` under a fresh incarnation (shared by legit
  /// peer reset requests and the corruption guards). `detected_corruption`
  /// counts the reset in stats and fires the reset handler.
  void reset_stream(net::NodeId to, bool detected_corruption);
  /// Self-stabilization guard: verify the outgoing cursor invariants toward
  /// `to` (unacked spans exactly (acked, next_seq)); on violation reset the
  /// stream and return true. Holds by construction absent corruption.
  bool audit_outgoing(net::NodeId to);

  sim::Simulator& sim_;
  net::Network& network_;
  net::NodeId self_;
  Config config_;
  Stats stats_;
  DeliverFn deliver_;
  GroupDeliverFn group_deliver_;
  DeliverFn raw_;
  BatchHookFn deliver_begin_;
  BatchHookFn deliver_end_;
  ResetFn reset_handler_;
  spec::TraceBus* trace_ = nullptr;

  std::set<net::NodeId> reliable_set_;
  std::map<net::NodeId, Outgoing> outgoing_;
  std::map<net::NodeId, Incoming> incoming_;
  std::uint64_t incarnation_counter_ = 0;
  bool crashed_ = false;
};

}  // namespace vsgc::transport
