// CO_RFIFO: connection-oriented reliable FIFO multicast (paper Figure 3).
//
// One CoRfifoTransport instance runs at each node; together they implement
// the centralized CO_RFIFO automaton of the paper over the unreliable
// datagram network. The transport is addressed by net::NodeId so the same
// substrate serves GCS end-points (client<->client), membership clients
// (client<->server) and membership servers (server<->server) — mirroring the
// paper's layering over the reliable datagram service of [36].
//
// Semantics provided:
//
//   * send(set, m): best-effort multicast; for destinations in reliable_set
//     the stream is gap-free FIFO (sequence numbers + cumulative acks +
//     retransmission).
//   * set_reliable(set): maintain reliable connections to `set` only. For a
//     peer removed from the set, an arbitrary suffix of in-flight messages
//     may be lost (the implementation drops the unacked suffix and abandons
//     the connection — Figure 3's lose(p, q)). Re-adding a peer starts a
//     fresh connection incarnation, so a stale stream never resumes mid-gap.
//   * crash()/recover(): Section 8 semantics — a crash wipes all transport
//     state; recovery starts new incarnations everywhere.
//
// The `live_set` of the spec models real network connectivity; in this
// implementation that role is played by the vsgc::net::Network fault state,
// and the spec checker (src/spec/co_rfifo_spec) tracks it from trace events.
#pragma once

#include <any>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <set>

#include "net/network.hpp"
#include "net/node.hpp"
#include "sim/simulator.hpp"
#include "spec/events.hpp"
#include "util/ids.hpp"

namespace vsgc::transport {

/// Wire-level packet exchanged between transports (data or cumulative ack).
struct Packet {
  std::uint64_t incarnation = 0;  ///< sender connection incarnation
  std::uint64_t seq = 0;          ///< data: message seq; ack: cumulative seq
  std::uint64_t first_seq = 1;    ///< data: lowest seq still retransmittable
  bool is_ack = false;
  bool is_reset = false;  ///< ack only: "I lost this stream's prefix — start
                          ///< a fresh incarnation" (receiver crash recovery)
  net::Payload payload;           ///< empty for acks; refcounted — copying a
                                  ///< Packet never copies the payload bytes
  std::size_t payload_size = 0;   ///< serialized payload size (accounting)
};

/// Fixed per-packet header cost used for byte accounting (incarnation, seq,
/// flags, addressing) — roughly a UDP-borne protocol header.
constexpr std::size_t kPacketHeaderBytes = 24;

class CoRfifoTransport {
 public:
  struct Config {
    sim::Time retransmit_timeout = 20 * sim::kMillisecond;
    std::size_t retransmit_batch = 64;  ///< packets re-sent per timer fire
  };

  struct Stats {
    std::uint64_t messages_sent = 0;  ///< upper-layer sends (per destination)
    std::uint64_t messages_delivered = 0;
    std::uint64_t retransmissions = 0;  ///< timer re-sends + reset re-homing
    std::uint64_t acks_sent = 0;
    std::uint64_t duplicates_dropped = 0;
    std::uint64_t loopbacks_dropped = 0;  ///< self-sends lost to our crash
    std::uint64_t bytes_sent = 0;  ///< includes loopback payload + header
  };

  using DeliverFn =
      std::function<void(net::NodeId from, const std::any& payload)>;

  CoRfifoTransport(sim::Simulator& sim, net::Network& network,
                   net::NodeId self, Config config);
  CoRfifoTransport(sim::Simulator& sim, net::Network& network,
                   net::NodeId self)
      : CoRfifoTransport(sim, network, self, Config()) {}
  ~CoRfifoTransport();

  CoRfifoTransport(const CoRfifoTransport&) = delete;
  CoRfifoTransport& operator=(const CoRfifoTransport&) = delete;

  /// Register the upper-layer delivery handler (gap-free FIFO per sender).
  void set_deliver_handler(DeliverFn fn) { deliver_ = std::move(fn); }

  /// Raw datagram side-channel: non-Packet payloads arriving at this node
  /// (e.g. failure-detector heartbeats) bypass the reliable machinery.
  void set_raw_handler(DeliverFn fn) { raw_ = std::move(fn); }

  /// Fire-and-forget datagram outside the reliable stream (no seq, no
  /// retransmit, no buffering). Used for heartbeats.
  void send_raw(net::NodeId to, net::Payload payload,
                std::size_t payload_size = 0) {
    if (crashed_) return;
    stats_.bytes_sent += payload_size;
    network_.send(self_, to, std::move(payload), payload_size);
  }

  /// Multicast `payload` to every destination in `dests` (self allowed; a
  /// self-destination is delivered locally after a scheduling hop). The
  /// payload is wrapped into one refcounted handle here; fan-out, unacked
  /// buffering, and retransmission all share it.
  void send(const std::set<net::NodeId>& dests, net::Payload payload,
            std::size_t payload_size = 0);

  /// Maintain reliable gap-free connections to exactly `set` (plus self).
  void set_reliable(const std::set<net::NodeId>& set);
  const std::set<net::NodeId>& reliable_set() const { return reliable_set_; }

  /// Section 8: crash wipes all state and stops all activity.
  void crash();
  /// Section 8: recover with fresh incarnations; peers resynchronize.
  void recover();
  bool crashed() const { return crashed_; }

  const Stats& stats() const { return stats_; }
  net::NodeId self() const { return self_; }

  /// Optional span instrumentation (DESIGN.md §10): when set AND the bus has
  /// lifecycle on, retransmission bursts emit spec::XportRetransmit events.
  /// Zero-cost otherwise (one branch per burst, not per packet).
  void set_trace(spec::TraceBus* trace) { trace_ = trace; }

 private:
  struct Outgoing {
    std::uint64_t incarnation = 0;
    std::uint64_t next_seq = 1;  ///< seq for the next new message
    std::uint64_t acked = 0;     ///< highest cumulatively acked seq
    std::deque<Packet> unacked;
    sim::TimerHandle retransmit_timer;
  };

  struct Incoming {
    std::uint64_t incarnation = 0;
    std::uint64_t next_expected = 1;
    std::map<std::uint64_t, Packet> out_of_order;
  };

  void on_packet(net::NodeId from, const std::any& raw);
  void on_data(net::NodeId from, const Packet& pkt);
  void on_ack(net::NodeId from, const Packet& pkt);
  void transmit(net::NodeId to, const Packet& pkt);
  void arm_retransmit(net::NodeId to);
  std::uint64_t fresh_incarnation();

  sim::Simulator& sim_;
  net::Network& network_;
  net::NodeId self_;
  Config config_;
  Stats stats_;
  DeliverFn deliver_;
  DeliverFn raw_;
  spec::TraceBus* trace_ = nullptr;

  std::set<net::NodeId> reliable_set_;
  std::map<net::NodeId, Outgoing> outgoing_;
  std::map<net::NodeId, Incoming> incoming_;
  std::uint64_t incarnation_counter_ = 0;
  bool crashed_ = false;
};

}  // namespace vsgc::transport
