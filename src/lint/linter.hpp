// vsgc-lint driver: per-file token rules + cross-file protocol checks.
//
// Usage (mirrors tools/vsgc_lint.cpp):
//   Linter linter;
//   linter.lint_source("src/sim/foo.cpp", text);   // once per file
//   linter.finalize();                             // cross-file rules
//   for (const Finding& f : linter.findings()) ...
//
// Paths are repo-root-relative with forward slashes; rule scoping (which
// directories the determinism rules apply to) keys off them, so tests can
// plant fixtures at any virtual path without touching the filesystem.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "lint/rules.hpp"
#include "lint/token.hpp"
#include "obs/json.hpp"

namespace vsgc::lint {

class Linter {
 public:
  /// Lint one file's text as if it lived at `rel_path`. Per-file findings
  /// (including suppressed ones) accumulate; call finalize() once at the end.
  void lint_source(const std::string& rel_path, const std::string& text);

  /// Run cross-file rules (event-coverage) and flag unused pragmas.
  /// Must be called exactly once, after the last lint_source().
  void finalize();

  const std::vector<Finding>& findings() const { return findings_; }
  int unsuppressed_count() const;
  int suppressed_count() const;
  int files_scanned() const { return files_scanned_; }

  /// Machine-readable artifact (schema checked by tools/validate_bench_json).
  obs::JsonValue to_json(const std::string& root) const;

 private:
  struct FileRecord {
    std::vector<AllowPragma> pragmas;
    std::string text;  ///< retained only for src/spec files (event-coverage)
  };

  void apply_suppressions(const std::string& rel_path,
                          std::vector<Finding>& file_findings,
                          std::vector<AllowPragma>& pragmas);
  void check_event_coverage();

  std::vector<Finding> findings_;
  std::map<std::string, FileRecord> files_;
  int files_scanned_ = 0;
  bool finalized_ = false;
  bool event_coverage_ran_ = false;
};

/// Walk `root`'s {src,tools,bench,tests} directories (missing ones are
/// skipped), lint every .hpp/.cpp in sorted path order, and finalize.
/// Returns the number of files scanned; I/O errors are reported as findings
/// so the exit code stays the single source of truth.
int lint_tree(Linter& linter, const std::string& root);

}  // namespace vsgc::lint
