// vsgc-lint driver: per-file token rules + cross-file protocol checks.
//
// Usage (mirrors tools/vsgc_lint.cpp):
//   Linter linter;
//   linter.lint_source("src/sim/foo.cpp", text);   // once per file
//   linter.finalize();                             // cross-file rules
//   for (const Finding& f : linter.findings()) ...
//
// Paths are repo-root-relative with forward slashes; rule scoping (which
// directories the determinism rules apply to) keys off them, so tests can
// plant fixtures at any virtual path without touching the filesystem.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "lint/deps.hpp"
#include "lint/rules.hpp"
#include "lint/token.hpp"
#include "obs/json.hpp"

namespace vsgc::lint {

class Linter {
 public:
  /// Lint one file's text as if it lived at `rel_path`. Per-file findings
  /// (including suppressed ones) accumulate; call finalize() once at the end.
  void lint_source(const std::string& rel_path, const std::string& text);

  /// Run cross-file rules (event-coverage, layering/cycles, sim purity) and
  /// flag unused pragmas. Must be called exactly once, after the last
  /// lint_source().
  void finalize();

  /// Install the sim-purity ratchet ledger (lint_tree auto-loads
  /// tools/sim_purity_ledger.txt when none was set). With no ledger every
  /// sim dependency in protocol code is an unsuppressed finding.
  void set_sim_ledger(const std::string& display_path,
                      const std::string& text);
  bool has_sim_ledger() const { return ledger_set_; }

  const std::vector<Finding>& findings() const { return findings_; }
  int unsuppressed_count() const;
  int suppressed_count() const;
  int files_scanned() const { return files_scanned_; }

  /// Include-graph/sim-purity aggregates, valid after finalize().
  const DepsResult& deps() const { return deps_; }
  obs::JsonValue deps_json(const std::string& root) const {
    return deps_to_json(deps_, root);
  }
  std::string deps_dot() const { return deps_to_dot(deps_); }

  /// Machine-readable artifact (schema checked by tools/validate_bench_json).
  obs::JsonValue to_json(const std::string& root) const;

 private:
  struct FileRecord {
    std::vector<AllowPragma> pragmas;
    std::string text;  ///< retained only for src/spec files (event-coverage)
    std::vector<RawInclude> includes;
    std::vector<SimUse> sim_uses;  ///< only for sim-purity-scope files
  };

  void apply_suppressions(const std::string& rel_path,
                          std::vector<Finding>& file_findings,
                          std::vector<AllowPragma>& pragmas);
  void check_event_coverage();
  void check_architecture();

  std::vector<Finding> findings_;
  std::map<std::string, FileRecord> files_;
  int files_scanned_ = 0;
  bool finalized_ = false;
  bool event_coverage_ran_ = false;
  DepsResult deps_;
  Ledger ledger_;
  bool ledger_set_ = false;
};

/// Walk `root`'s {src,tools,bench,tests} directories (missing ones are
/// skipped), lint every .hpp/.cpp in sorted path order, and finalize.
/// Returns the number of files scanned; I/O errors are reported as findings
/// so the exit code stays the single source of truth.
int lint_tree(Linter& linter, const std::string& root);

}  // namespace vsgc::lint
