// Rule vocabulary of vsgc-lint.
//
// Three rule families (DESIGN.md §8):
//   * determinism — source constructs that would make a simulated execution
//     depend on anything other than its seed (wall clocks, ambient
//     randomness, hash/address ordering). Scoped to the protocol + simulator
//     directories; observability and test scaffolding may touch real time.
//   * protocol hygiene — wire structs fully initialized, every spec event
//     consumed by a checker, one include-guard style.
//   * architecture conformance — the include graph respects the declared
//     module layering and stays acyclic, sim dependencies in protocol code
//     are ratchet-ledgered, and wire codecs encode/decode symmetrically
//     (lint/deps.hpp).
// Every rule is suppressible at the offending line with a line comment of
// the form `vsgc-lint` + colon + ` allow(<rule>) <justification>` — except
// bad-pragma, which polices the pragmas themselves. (The marker is spelled
// out indirectly here so this very comment does not parse as a pragma.)
#pragma once

#include <array>
#include <string>
#include <string_view>

namespace vsgc::lint {

struct RuleInfo {
  std::string_view id;
  std::string_view summary;
};

inline constexpr std::array<RuleInfo, 13> kRules = {{
    {"banned-random",
     "ambient randomness (std::rand, random_device, mt19937, ...) in "
     "deterministic code; all randomness must flow through util/rng.hpp"},
    {"banned-time",
     "wall-clock time source (time(), gettimeofday, std::chrono clocks) in "
     "deterministic code; use sim::Simulator::now()"},
    {"banned-getenv",
     "environment lookup outside src/obs and src/util/logging.hpp; ambient "
     "configuration breaks replay"},
    {"unordered-iteration",
     "iteration over std::unordered_{map,set} whose body sends, schedules, "
     "or traces; hash order is not deterministic across runs"},
    {"pointer-order",
     "pointer-keyed ordered container or std::less<T*>; address order "
     "changes with ASLR"},
    {"wire-init",
     "wire/message struct member without an in-class initializer; "
     "uninitialized wire fields leak indeterminate bytes"},
    {"event-coverage",
     "spec event type not consumed by any checker reachable from "
     "src/spec/all_checkers.hpp"},
    {"layer-violation",
     "#include crosses the module-layer table (DESIGN.md §8): protocol "
     "layers depend strictly downward, observers observe, src/ never "
     "includes harness code"},
    {"include-cycle",
     "file-level #include cycle; the include graph must stay a DAG"},
    {"sim-purity",
     "sim/ include or sim-only symbol (Simulator, TimerHandle, schedule*) "
     "in protocol code not covered by tools/sim_purity_ledger.txt — the "
     "ledger is a ratchet that only shrinks"},
    {"codec-symmetry",
     "wire struct whose encode/decode disagree: a field never or multiply "
     "encoded/decoded, or decoded in a different order than encoded"},
    {"include-guard",
     "header does not start with '#pragma once' (the repo's single "
     "include-guard style)"},
    {"bad-pragma",
     "malformed, unknown-rule, justification-free, or unused "
     "vsgc-lint pragma"},
}};

inline bool is_known_rule(std::string_view id) {
  for (const RuleInfo& r : kRules) {
    if (r.id == id) return true;
  }
  return false;
}

struct Finding {
  std::string file;  ///< path relative to the lint root, forward slashes
  int line = 0;
  std::string rule;
  std::string message;
  bool suppressed = false;
  std::string justification;  ///< non-empty iff suppressed

  friend bool operator==(const Finding&, const Finding&) = default;
};

}  // namespace vsgc::lint
