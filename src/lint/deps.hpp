// Architecture-conformance passes of vsgc-lint (DESIGN.md §8):
//
//   * include graph + layering — the full #include graph over
//     {src,tools,bench,tests}, checked against the declared module-layer
//     table (layer-violation) and for file-level cycles (include-cycle),
//     with a Graphviz export of the module diagram;
//   * sim-purity ledger — every sim/ include and sim-only symbol reference
//     in protocol code (src/transport, src/gcs, src/membership), matched
//     against the ratchet-only allowlist tools/sim_purity_ledger.txt
//     (sim-purity);
//   * codec symmetry — wire structs must encode every field exactly once
//     and decode the same fields in the same order (codec-symmetry).
//
// These are pure functions over lexed token streams and repo-relative paths;
// the Linter wires them into lint_source()/finalize() so virtual-path test
// fixtures exercise them without touching the filesystem.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "lint/rules.hpp"
#include "lint/token.hpp"
#include "obs/json.hpp"

namespace vsgc::lint {

/// One #include directive as written: `spec` is the text between the quotes
/// or angle brackets. Resolution against the scanned-file set happens later.
struct RawInclude {
  int line = 0;
  std::string spec;
  bool angled = false;  ///< <...> includes are always external (std headers)
};

std::vector<RawInclude> extract_includes(const std::vector<Token>& toks);

/// One sim dependency in protocol code: kind is "include" (a sim/ header
/// other than the sanctioned sim/time.hpp surface) or "symbol" (Simulator,
/// TimerHandle, NondetSource, FailureInjector, or a schedule* call).
/// Deduplicated per (file, kind, detail); line is the first occurrence.
struct SimUse {
  int line = 0;
  std::string kind;
  std::string detail;
};

/// Protocol directories whose sim dependencies are ratcheted debt.
bool in_sim_purity_scope(std::string_view rel_path);

std::vector<SimUse> find_sim_uses(const std::vector<Token>& toks,
                                  const std::vector<RawInclude>& includes);

/// Module-layer table. Ranked modules may include same-or-lower ranks (plus
/// util and the observer layer spec); -1 = unranked (util, observers,
/// lint, harness dirs), governed by the special rules in edge_allowed().
int module_rank(std::string_view module);

/// Module of a repo-relative path: "src/gcs/..." -> "gcs", "tools/..." ->
/// "tools", etc. Empty when the path fits no known top directory.
std::string module_of(std::string_view rel_path);

bool edge_allowed(std::string_view from_module, std::string_view to_module);

/// Aggregated result of the include-graph pass, the source of truth for the
/// LINT_deps.json artifact and the dot export.
struct ModuleEdge {
  std::string from;
  std::string to;
  int count = 0;
};

struct DepsResult {
  int files = 0;
  int internal_edges = 0;     ///< quoted includes resolved inside the tree
  int external_includes = 0;  ///< angled or unresolved includes
  std::map<std::string, int> module_files;
  std::vector<ModuleEdge> module_edges;  ///< sorted (from, to)
  std::vector<std::string> cycles;       ///< "a -> b -> a" per distinct cycle
  int layer_violations = 0;              ///< found, before suppression
  int sim_entries = 0;
  int sim_ledgered = 0;
  int sim_unledgered = 0;
  int sim_stale = 0;
};

/// Build the include graph over `includes_by_file`, run the layering and
/// cycle checks, and append per-file findings (unsuppressed; the caller owns
/// pragma application). Fills the graph/cycle fields of `result`.
void analyze_includes(
    const std::map<std::string, std::vector<RawInclude>>& includes_by_file,
    std::map<std::string, std::vector<Finding>>& findings_by_file,
    DepsResult& result);

/// Parsed ratchet ledger. Lines are `<path> <kind> <detail>`; '#' comments
/// and blank lines are skipped; malformed lines become findings.
struct LedgerEntry {
  int line = 0;
  std::string file;
  std::string kind;
  std::string detail;
  bool matched = false;
};

struct Ledger {
  std::string display_path;  ///< path findings on the ledger itself anchor to
  std::vector<LedgerEntry> entries;
  std::vector<Finding> parse_findings;
};

Ledger parse_ledger(const std::string& display_path, const std::string& text);

/// Match sim uses against the ledger: ledgered uses become suppressed
/// findings, unledgered ones fail the ratchet, unmatched ledger entries are
/// stale. Fills the sim_* tallies of `result`.
void check_sim_purity(
    const std::map<std::string, std::vector<SimUse>>& uses_by_file,
    Ledger& ledger,
    std::map<std::string, std::vector<Finding>>& findings_by_file,
    DepsResult& result);

/// Codec-symmetry pass over one wire header's token stream (per-file; runs
/// from lint_source on the wire headers).
void rule_codec_symmetry(const std::string& path,
                         const std::vector<Token>& toks,
                         std::vector<Finding>& out);

/// LINT_deps.json document (schema checked by tools/validate_bench_json).
obs::JsonValue deps_to_json(const DepsResult& result, const std::string& root);

/// Graphviz digraph of the module layer diagram (modules ranked bottom-up,
/// one edge per module pair with the file-edge count as label).
std::string deps_to_dot(const DepsResult& result);

}  // namespace vsgc::lint
