// Architecture-conformance passes: include-graph layering, sim-purity
// ledger, and wire-codec symmetry. See deps.hpp for the pass contracts and
// DESIGN.md §8 for the module-layer table these passes enforce.
#include "lint/deps.hpp"

#include <algorithm>
#include <array>
#include <functional>
#include <set>
#include <sstream>
#include <utility>

namespace vsgc::lint {

namespace {

using Toks = std::vector<Token>;

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

bool is_id(const Toks& t, std::size_t i, std::string_view s) {
  return i < t.size() && t[i].kind == TokKind::kIdentifier && t[i].text == s;
}

bool is_punct(const Toks& t, std::size_t i, char c) {
  return i < t.size() && t[i].kind == TokKind::kPunct && t[i].text[0] == c;
}

/// Index just past the brace/paren that matches the opener at `open_idx`.
/// Returns t.size() when unbalanced (degrade gracefully, never throw).
std::size_t skip_balanced(const Toks& t, std::size_t open_idx, char open,
                          char close) {
  int depth = 0;
  for (std::size_t i = open_idx; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kPunct) continue;
    if (t[i].text[0] == open) ++depth;
    if (t[i].text[0] == close && --depth == 0) return i + 1;
  }
  return t.size();
}

}  // namespace

// --- include extraction -----------------------------------------------------

std::vector<RawInclude> extract_includes(const std::vector<Token>& toks) {
  std::vector<RawInclude> out;
  for (const Token& t : toks) {
    if (t.kind != TokKind::kPreprocessor) continue;
    // Directive text starts with '#'; continuations are already folded.
    std::size_t p = 1;
    while (p < t.text.size() && (t.text[p] == ' ' || t.text[p] == '\t')) ++p;
    if (t.text.compare(p, 7, "include") != 0) continue;
    const std::size_t q = t.text.find_first_of("\"<", p + 7);
    if (q == std::string::npos) continue;
    const char closer = t.text[q] == '"' ? '"' : '>';
    const std::size_t e = t.text.find(closer, q + 1);
    if (e == std::string::npos) continue;
    out.push_back({t.line, t.text.substr(q + 1, e - q - 1), closer == '>'});
  }
  return out;
}

// --- sim-purity scan --------------------------------------------------------

bool in_sim_purity_scope(std::string_view rel_path) {
  return starts_with(rel_path, "src/transport/") ||
         starts_with(rel_path, "src/gcs/") ||
         starts_with(rel_path, "src/membership/");
}

std::vector<SimUse> find_sim_uses(const std::vector<Token>& toks,
                                  const std::vector<RawInclude>& includes) {
  // sim/time.hpp is the sanctioned surface (Time/Duration/TimerHandle value
  // types); every other sim/ header pulls in the event kernel.
  static constexpr std::array<std::string_view, 4> kSimTypes = {
      "Simulator", "TimerHandle", "NondetSource", "FailureInjector"};
  static constexpr std::array<std::string_view, 4> kSchedCalls = {
      "schedule", "schedule_at", "schedule_in", "schedule_after"};

  std::vector<SimUse> out;
  std::set<std::pair<std::string, std::string>> seen;
  auto add = [&](int line, const char* kind, const std::string& detail) {
    if (seen.insert({kind, detail}).second) out.push_back({line, kind, detail});
  };

  for (const RawInclude& inc : includes) {
    if (!inc.angled && starts_with(inc.spec, "sim/") &&
        inc.spec != "sim/time.hpp") {
      add(inc.line, "include", inc.spec);
    }
  }
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdentifier) continue;
    for (std::string_view s : kSimTypes) {
      if (toks[i].text == s) add(toks[i].line, "symbol", toks[i].text);
    }
    for (std::string_view s : kSchedCalls) {
      if (toks[i].text == s && is_punct(toks, i + 1, '(')) {
        add(toks[i].line, "symbol", toks[i].text);
      }
    }
  }
  return out;
}

// --- module layer table -----------------------------------------------------

int module_rank(std::string_view module) {
  static constexpr std::array<std::pair<std::string_view, int>, 9> kRanks = {{
      {"util", 0},
      {"sim", 10},
      {"net", 20},
      {"transport", 30},
      {"membership", 40},
      {"gcs", 50},
      {"baseline", 60},
      {"app", 70},
      {"mc", 80},
  }};
  for (const auto& [name, rank] : kRanks) {
    if (module == name) return rank;
  }
  return -1;
}

std::string module_of(std::string_view rel_path) {
  if (starts_with(rel_path, "src/")) {
    const std::string_view rest = rel_path.substr(4);
    const std::size_t slash = rest.find('/');
    if (slash != std::string_view::npos) {
      return std::string(rest.substr(0, slash));
    }
    return "";
  }
  for (std::string_view top : {"tools", "tests", "bench"}) {
    if (starts_with(rel_path, std::string(top) + "/")) {
      return std::string(top);
    }
  }
  return "";
}

namespace {

bool is_harness(std::string_view m) {
  return m == "tools" || m == "tests" || m == "bench";
}

bool among(std::string_view m, std::initializer_list<std::string_view> set) {
  for (std::string_view s : set) {
    if (m == s) return true;
  }
  return false;
}

/// nullptr = the edge is allowed; otherwise the reason it is not.
const char* edge_violation(std::string_view mf, std::string_view mg) {
  if (mf.empty() || mg.empty()) return nullptr;  // unknown dirs: no verdict
  if (mf == mg) return nullptr;
  if (mg == "util") return nullptr;
  if (is_harness(mf)) {
    if (is_harness(mg)) {
      return "harness trees (tools/tests/bench) stay independent of each "
             "other";
    }
    return nullptr;  // harness code may include any src module
  }
  if (is_harness(mg)) {
    return "src/ code must never depend on harness code (tools/tests/bench)";
  }
  if (mf == "spec") {
    if (among(mg, {"sim", "net", "transport", "membership", "gcs"})) {
      return nullptr;
    }
    return "spec observes the protocol stack; it may include only "
           "util/sim/net/transport/membership/gcs";
  }
  if (mf == "obs") {
    if (among(mg, {"sim", "net", "transport", "membership", "gcs", "spec"})) {
      return nullptr;
    }
    return "obs observes; it may include only "
           "util/sim/net/transport/membership/gcs/spec";
  }
  if (mf == "lint") {
    if (mg == "obs") return nullptr;
    return "lint is dependency-free tooling; it may include only util and "
           "obs";
  }
  if (mg == "spec") {
    if (mf == "util") {
      return "util is the bottom layer; it includes nothing above itself";
    }
    return nullptr;  // the spec observer is includable by every src module
  }
  if (mg == "obs") {
    if (among(mf, {"sim", "mc"})) return nullptr;
    return "obs is includable only by sim, mc, lint, and harness code";
  }
  if (mg == "lint") return "only harness code may include lint";
  const int rf = module_rank(mf);
  const int rg = module_rank(mg);
  if (rf >= 0 && rg >= 0 && rf < rg) {
    return "protocol layers depend strictly downward";
  }
  return nullptr;
}

/// Resolve a quoted include spec against the scanned-file set: repo includes
/// are rooted at src/ (the -I path), harness files may also be named from
/// the repo root or relative to the including file. External/system headers
/// resolve to "".
std::string resolve_include(const std::set<std::string>& fileset,
                            const std::string& from, const RawInclude& inc) {
  if (inc.angled) return "";
  if (fileset.count("src/" + inc.spec) != 0) return "src/" + inc.spec;
  if (fileset.count(inc.spec) != 0) return inc.spec;
  const std::size_t slash = from.rfind('/');
  if (slash != std::string::npos) {
    const std::string sibling = from.substr(0, slash + 1) + inc.spec;
    if (fileset.count(sibling) != 0) return sibling;
  }
  return "";
}

}  // namespace

// --- include graph: layering + cycles --------------------------------------

void analyze_includes(
    const std::map<std::string, std::vector<RawInclude>>& includes_by_file,
    std::map<std::string, std::vector<Finding>>& findings_by_file,
    DepsResult& result) {
  std::set<std::string> fileset;
  for (const auto& [path, incs] : includes_by_file) fileset.insert(path);
  result.files = static_cast<int>(fileset.size());

  std::map<std::string, std::vector<std::pair<std::string, int>>> adj;
  std::map<std::pair<std::string, std::string>, int> module_edges;
  for (const auto& [from, incs] : includes_by_file) {
    const std::string mf = module_of(from);
    if (!mf.empty()) ++result.module_files[mf];
    for (const RawInclude& inc : incs) {
      const std::string to = resolve_include(fileset, from, inc);
      if (to.empty()) {
        ++result.external_includes;
        continue;
      }
      ++result.internal_edges;
      adj[from].push_back({to, inc.line});
      const std::string mg = module_of(to);
      if (!mf.empty() && !mg.empty() && mf != mg) {
        ++module_edges[{mf, mg}];
      }
      if (const char* why = edge_violation(mf, mg)) {
        ++result.layer_violations;
        findings_by_file[from].push_back(
            {from, inc.line, "layer-violation",
             "include of \"" + inc.spec + "\" reaches module '" + mg +
                 "' from module '" + mf + "': " + why,
             false, ""});
      }
    }
  }
  for (const auto& [edge, count] : module_edges) {
    result.module_edges.push_back({edge.first, edge.second, count});
  }

  // File-level cycle detection (module-level cycles like gcs <-> spec are
  // expected; the file graph must stay a DAG or builds become order-fragile).
  std::map<std::string, int> color;  // 0 white, 1 on stack, 2 done
  std::vector<std::string> stack;
  std::set<std::string> reported;
  std::function<void(const std::string&)> dfs = [&](const std::string& u) {
    color[u] = 1;
    stack.push_back(u);
    for (const auto& [v, line] : adj[u]) {
      if (color[v] == 1) {
        auto it = std::find(stack.begin(), stack.end(), v);
        std::vector<std::string> cyc(it, stack.end());
        std::rotate(cyc.begin(), std::min_element(cyc.begin(), cyc.end()),
                    cyc.end());
        std::string desc;
        for (const std::string& n : cyc) desc += n + " -> ";
        desc += cyc.front();
        if (!reported.insert(desc).second) continue;
        result.cycles.push_back(desc);
        const std::string& anchor = cyc.front();
        const std::string& next = cyc.size() > 1 ? cyc[1] : cyc.front();
        int anchor_line = 1;
        for (const auto& [t, l] : adj[anchor]) {
          if (t == next) {
            anchor_line = l;
            break;
          }
        }
        findings_by_file[anchor].push_back(
            {anchor, anchor_line, "include-cycle", "include cycle: " + desc,
             false, ""});
      } else if (color[v] == 0) {
        dfs(v);
      }
    }
    stack.pop_back();
    color[u] = 2;
  };
  for (const auto& [path, incs] : includes_by_file) {
    if (color[path] == 0) dfs(path);
  }
  std::sort(result.cycles.begin(), result.cycles.end());
}

// --- sim-purity ledger ------------------------------------------------------

Ledger parse_ledger(const std::string& display_path, const std::string& text) {
  Ledger lg;
  lg.display_path = display_path;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::istringstream fields(line);
    std::string file, kind, detail, extra;
    if (!(fields >> file)) continue;       // blank line
    if (file[0] == '#') continue;          // comment
    if (!(fields >> kind >> detail) || (fields >> extra) ||
        (kind != "include" && kind != "symbol")) {
      lg.parse_findings.push_back(
          {display_path, line_no, "sim-purity",
           "malformed ledger line; expected '<path> include|symbol <detail>'",
           false, ""});
      continue;
    }
    lg.entries.push_back({line_no, file, kind, detail, false});
  }
  return lg;
}

void check_sim_purity(
    const std::map<std::string, std::vector<SimUse>>& uses_by_file,
    Ledger& ledger,
    std::map<std::string, std::vector<Finding>>& findings_by_file,
    DepsResult& result) {
  for (const auto& [file, uses] : uses_by_file) {
    for (const SimUse& u : uses) {
      ++result.sim_entries;
      bool ledgered = false;
      for (LedgerEntry& e : ledger.entries) {
        if (e.file == file && e.kind == u.kind && e.detail == u.detail) {
          e.matched = true;
          ledgered = true;
          break;
        }
      }
      if (ledgered) {
        ++result.sim_ledgered;
        findings_by_file[file].push_back(
            {file, u.line, "sim-purity",
             "sim dependency '" + u.detail + "' (" + u.kind + ")", true,
             "ledgered in " + ledger.display_path +
                 " (ratchet: the ledger only shrinks)"});
      } else {
        ++result.sim_unledgered;
        findings_by_file[file].push_back(
            {file, u.line, "sim-purity",
             "protocol code depends on sim-only '" + u.detail + "' (" +
                 u.kind + ") not recorded in " + ledger.display_path +
                 "; the ledger only shrinks — use the sim/time.hpp surface "
                 "instead of adding sim debt",
             false, ""});
      }
    }
  }
  for (const LedgerEntry& e : ledger.entries) {
    if (e.matched) continue;
    ++result.sim_stale;
    findings_by_file[ledger.display_path].push_back(
        {ledger.display_path, e.line, "sim-purity",
         "stale ledger entry '" + e.file + " " + e.kind + " " + e.detail +
             "': the dependency is gone; delete this line to ratchet the "
             "debt down",
         false, ""});
  }
  for (const Finding& f : ledger.parse_findings) {
    findings_by_file[ledger.display_path].push_back(f);
  }
}

// --- codec symmetry ---------------------------------------------------------

namespace {

struct CodecMethod {
  bool present = false;
  int line = 0;
  std::size_t begin = 0;  ///< first token inside the body braces
  std::size_t end = 0;    ///< one past the last body token
};

struct WireStruct {
  std::string name;
  int line = 0;
  std::vector<std::pair<std::string, int>> members;  ///< (name, decl line)
  CodecMethod enc;
  CodecMethod dec;
};

/// Member/method scan for one struct body. Unlike rule_wire_init this keeps
/// the bodies of methods named encode/decode (wire-init's `static` skip
/// would swallow `static T decode(...)`) and drops static data members.
void scan_struct_body(const Toks& toks, std::size_t open, std::size_t end,
                      WireStruct& ws) {
  static constexpr std::array<std::string_view, 9> kSkipLeaders = {
      "friend", "using",  "typedef", "template", "operator",
      "enum",   "struct", "class",   "union"};
  std::size_t pos = open + 1;
  while (pos + 1 < end) {
    if ((is_id(toks, pos, "public") || is_id(toks, pos, "private") ||
         is_id(toks, pos, "protected")) &&
        is_punct(toks, pos + 1, ':')) {
      pos += 2;
      continue;
    }
    bool skip_stmt = false;
    for (std::string_view kw : kSkipLeaders) {
      if (is_id(toks, pos, kw)) skip_stmt = true;
    }
    if (skip_stmt) {
      while (pos < end && !is_punct(toks, pos, ';')) {
        if (is_punct(toks, pos, '{')) {
          pos = skip_balanced(toks, pos, '{', '}');
          continue;
        }
        ++pos;
      }
      ++pos;
      continue;
    }

    // Strip storage/qualifier leaders; static/constexpr data is not a wire
    // field.
    bool is_static = false;
    std::size_t j = pos;
    while (j < end &&
           (is_id(toks, j, "static") || is_id(toks, j, "constexpr") ||
            is_id(toks, j, "inline") || is_id(toks, j, "mutable") ||
            is_id(toks, j, "virtual"))) {
      if (is_id(toks, j, "static") || is_id(toks, j, "constexpr")) {
        is_static = true;
      }
      ++j;
    }

    // Classify by the first depth-0 punctuation: '(' => function,
    // '='/'{' => initialized member, ';' => uninitialized member.
    std::size_t last_ident = 0;
    bool found = false;
    int angle = 0;
    char what = 0;
    std::size_t stop = j;
    for (std::size_t k = j; k < end; ++k) {
      const Token& t = toks[k];
      if (t.kind == TokKind::kIdentifier) {
        if (angle == 0) {
          last_ident = k;
          found = true;
        }
        continue;
      }
      if (t.kind == TokKind::kPunct) {
        const char c = t.text[0];
        if (c == '<') ++angle;
        if (c == '>' && angle > 0) --angle;
        if (angle == 0 && (c == '(' || c == '=' || c == '{' || c == ';')) {
          what = c;
          stop = k;
          break;
        }
      }
    }
    if (what == 0) break;  // ran off the struct body; degrade gracefully

    if (what == '(') {
      const std::string fname = found ? toks[last_ident].text : "";
      std::size_t b = skip_balanced(toks, stop, '(', ')');
      while (b < end && !is_punct(toks, b, '{') && !is_punct(toks, b, ';')) {
        if (is_punct(toks, b, '(')) {
          b = skip_balanced(toks, b, '(', ')');
          continue;
        }
        ++b;
      }
      if (b < end && is_punct(toks, b, '{')) {
        const std::size_t bend = skip_balanced(toks, b, '{', '}');
        if (fname == "encode" && !ws.enc.present) {
          ws.enc = {true, toks[stop].line, b + 1, bend - 1};
        }
        if (fname == "decode" && !ws.dec.present) {
          ws.dec = {true, toks[stop].line, b + 1, bend - 1};
        }
        pos = bend;
        if (pos < end && is_punct(toks, pos, ';')) ++pos;
      } else {
        pos = b < end ? b + 1 : end;
      }
      continue;
    }

    if (found && !is_static) {
      ws.members.push_back({toks[last_ident].text, toks[last_ident].line});
    }
    std::size_t k = stop;
    while (k < end && !is_punct(toks, k, ';')) {
      if (is_punct(toks, k, '{')) {
        k = skip_balanced(toks, k, '{', '}');
        continue;
      }
      if (is_punct(toks, k, '(')) {
        k = skip_balanced(toks, k, '(', ')');
        continue;
      }
      ++k;
    }
    pos = k + 1;
  }
}

std::vector<WireStruct> scan_wire_structs(const Toks& toks) {
  std::vector<WireStruct> out;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!is_id(toks, i, "struct") && !is_id(toks, i, "class")) continue;
    if (toks[i + 1].kind != TokKind::kIdentifier) continue;
    std::size_t open = i + 2;
    bool has_body = false;
    while (open < toks.size()) {
      if (is_punct(toks, open, '{')) {
        has_body = true;
        break;
      }
      if (is_punct(toks, open, ';')) break;
      ++open;
    }
    if (!has_body) continue;
    WireStruct ws;
    ws.name = toks[i + 1].text;
    ws.line = toks[i].line;
    scan_struct_body(toks, open, skip_balanced(toks, open, '{', '}'), ws);
    out.push_back(std::move(ws));
  }
  return out;
}

/// Ordered field mentions of a codec body. The body is split into chunks at
/// statement ';' (outside parens, so classic for-headers stay whole); a
/// chunk contributes its member-name mentions iff it touches the codec
/// object (`enc`/`dec`) — guard clauses and local bookkeeping stay silent.
/// Adjacent duplicates merge, so the count-then-loop container pattern
/// (`enc.put_u32(cut.size()); for (... : cut) ...`) counts once.
std::vector<std::string> codec_sequence(
    const Toks& toks, const CodecMethod& m, std::string_view marker,
    const std::vector<std::pair<std::string, int>>& members) {
  auto is_member = [&](const std::string& s) {
    for (const auto& [name, line] : members) {
      if (name == s) return true;
    }
    return false;
  };
  std::vector<std::string> seq;
  std::size_t chunk_start = m.begin;
  int paren = 0;
  for (std::size_t i = m.begin; i <= m.end; ++i) {
    bool boundary = i == m.end;
    if (!boundary && toks[i].kind == TokKind::kPunct) {
      const char c = toks[i].text[0];
      if (c == '(') ++paren;
      if (c == ')' && paren > 0) --paren;
      if (c == ';' && paren == 0) boundary = true;
    }
    if (!boundary) continue;
    bool relevant = false;
    for (std::size_t k = chunk_start; k < i; ++k) {
      if (is_id(toks, k, marker)) {
        relevant = true;
        break;
      }
    }
    if (relevant) {
      for (std::size_t k = chunk_start; k < i; ++k) {
        if (toks[k].kind == TokKind::kIdentifier && is_member(toks[k].text)) {
          seq.push_back(toks[k].text);
        }
      }
    }
    chunk_start = i + 1;
  }
  std::vector<std::string> merged;
  for (const std::string& s : seq) {
    if (merged.empty() || merged.back() != s) merged.push_back(s);
  }
  return merged;
}

/// Aggregate-return decode (`return ViewMsg{View::decode(dec)}`): argument i
/// initializes declared field i, so each argument that touches the decoder
/// contributes that field positionally.
void positional_decode(const Toks& toks, const CodecMethod& m,
                       const std::string& struct_name,
                       const std::vector<std::pair<std::string, int>>& members,
                       std::vector<std::string>& seq) {
  for (std::size_t i = m.begin; i + 2 < m.end; ++i) {
    if (!is_id(toks, i, "return") || !is_id(toks, i + 1, struct_name) ||
        !is_punct(toks, i + 2, '{')) {
      continue;
    }
    const std::size_t close = skip_balanced(toks, i + 2, '{', '}');
    std::size_t arg_start = i + 3;
    std::size_t idx = 0;
    int depth = 0;
    auto flush = [&](std::size_t arg_end) {
      if (arg_end <= arg_start) return;
      bool relevant = false;
      for (std::size_t k = arg_start; k < arg_end; ++k) {
        if (is_id(toks, k, "dec") || is_id(toks, k, "decode")) relevant = true;
      }
      if (relevant && idx < members.size()) {
        seq.push_back(members[idx].first);
      }
      ++idx;
    };
    for (std::size_t k = i + 3; k + 1 < close; ++k) {
      if (toks[k].kind != TokKind::kPunct) continue;
      const char c = toks[k].text[0];
      if (c == '(' || c == '{') ++depth;
      if (c == ')' || c == '}') --depth;
      if (c == ',' && depth == 0) {
        flush(k);
        arg_start = k + 1;
      }
    }
    flush(close - 1);
    return;
  }
}

int count_of(const std::vector<std::string>& seq, const std::string& name) {
  return static_cast<int>(std::count(seq.begin(), seq.end(), name));
}

std::string join_fields(const std::vector<std::string>& seq) {
  std::string s = "[";
  for (std::size_t i = 0; i < seq.size(); ++i) {
    if (i != 0) s += ", ";
    s += seq[i];
  }
  return s + "]";
}

}  // namespace

void rule_codec_symmetry(const std::string& path,
                         const std::vector<Token>& toks,
                         std::vector<Finding>& out) {
  for (const WireStruct& ws : scan_wire_structs(toks)) {
    if (!ws.enc.present && !ws.dec.present) continue;
    if (ws.enc.present != ws.dec.present) {
      out.push_back({path, ws.line, "codec-symmetry",
                     "wire struct '" + ws.name + "' has " +
                         (ws.enc.present ? "encode() but no decode()"
                                         : "decode() but no encode()") +
                         "; a one-sided codec cannot round-trip",
                     false, ""});
      continue;
    }
    if (ws.members.empty()) continue;

    const std::vector<std::string> enc_seq =
        codec_sequence(toks, ws.enc, "enc", ws.members);
    std::vector<std::string> dec_seq =
        codec_sequence(toks, ws.dec, "dec", ws.members);
    if (dec_seq.empty()) {
      positional_decode(toks, ws.dec, ws.name, ws.members, dec_seq);
    }

    for (const auto& [name, line] : ws.members) {
      const int ce = count_of(enc_seq, name);
      const int cd = count_of(dec_seq, name);
      if (ce == 0) {
        out.push_back({path, line, "codec-symmetry",
                       "field '" + name + "' of wire struct '" + ws.name +
                           "' is never encoded; every wire field must be "
                           "written exactly once",
                       false, ""});
      } else if (ce > 1) {
        out.push_back({path, line, "codec-symmetry",
                       "field '" + name + "' of wire struct '" + ws.name +
                           "' is encoded " + std::to_string(ce) +
                           " times (non-consecutively); it must be written "
                           "exactly once",
                       false, ""});
      }
      if (cd == 0) {
        out.push_back({path, line, "codec-symmetry",
                       "field '" + name + "' of wire struct '" + ws.name +
                           "' is never decoded; the decoder must read every "
                           "encoded field",
                       false, ""});
      } else if (cd > 1) {
        out.push_back({path, line, "codec-symmetry",
                       "field '" + name + "' of wire struct '" + ws.name +
                           "' is decoded " + std::to_string(cd) +
                           " times (non-consecutively); it must be read "
                           "exactly once",
                       false, ""});
      }
    }

    // Order check over the fields both sides touch: the decoder must read
    // them in exactly the order the encoder wrote them.
    auto restrict_common = [&](const std::vector<std::string>& seq,
                               const std::vector<std::string>& other) {
      std::vector<std::string> r;
      for (const std::string& s : seq) {
        if (count_of(other, s) > 0) r.push_back(s);
      }
      return r;
    };
    const std::vector<std::string> enc_common =
        restrict_common(enc_seq, dec_seq);
    const std::vector<std::string> dec_common =
        restrict_common(dec_seq, enc_seq);
    if (enc_common != dec_common) {
      out.push_back({path, ws.dec.line, "codec-symmetry",
                     "decode order differs from encode order in wire struct "
                     "'" +
                         ws.name + "': encoded " + join_fields(enc_common) +
                         ", decoded " + join_fields(dec_common),
                     false, ""});
    }
  }
}

// --- artifacts --------------------------------------------------------------

obs::JsonValue deps_to_json(const DepsResult& result,
                            const std::string& root) {
  obs::JsonValue doc = obs::JsonValue::object();
  doc["tool"] = "vsgc_deps";
  doc["schema_version"] = 1;
  doc["root"] = root;
  doc["files"] = result.files;
  doc["internal_edges"] = result.internal_edges;
  doc["external_includes"] = result.external_includes;

  std::vector<std::pair<std::string, int>> mods(result.module_files.begin(),
                                                result.module_files.end());
  std::stable_sort(mods.begin(), mods.end(),
                   [](const auto& a, const auto& b) {
                     return module_rank(a.first) < module_rank(b.first);
                   });
  obs::JsonValue modules = obs::JsonValue::array();
  for (const auto& [name, files] : mods) {
    obs::JsonValue m = obs::JsonValue::object();
    m["name"] = name;
    m["rank"] = module_rank(name);
    m["files"] = files;
    modules.push_back(std::move(m));
  }
  doc["modules"] = std::move(modules);

  obs::JsonValue edges = obs::JsonValue::array();
  for (const ModuleEdge& e : result.module_edges) {
    obs::JsonValue row = obs::JsonValue::object();
    row["from"] = e.from;
    row["to"] = e.to;
    row["count"] = e.count;
    edges.push_back(std::move(row));
  }
  doc["module_edges"] = std::move(edges);

  doc["cycles"] = static_cast<int>(result.cycles.size());
  doc["layer_violations"] = result.layer_violations;
  obs::JsonValue sim = obs::JsonValue::object();
  sim["entries"] = result.sim_entries;
  sim["ledgered"] = result.sim_ledgered;
  sim["unledgered"] = result.sim_unledgered;
  sim["stale"] = result.sim_stale;
  doc["sim_purity"] = std::move(sim);
  return doc;
}

std::string deps_to_dot(const DepsResult& result) {
  // Module-level diagram of src/ only: harness edges (tests include
  // everything) would bury the layer structure the diagram exists to show.
  std::ostringstream out;
  out << "digraph vsgc_modules {\n"
      << "  rankdir = BT;\n"
      << "  node [shape=box, fontname=\"Helvetica\"];\n";
  std::vector<std::pair<std::string, int>> mods(result.module_files.begin(),
                                                result.module_files.end());
  std::stable_sort(mods.begin(), mods.end(),
                   [](const auto& a, const auto& b) {
                     return module_rank(a.first) < module_rank(b.first);
                   });
  for (const auto& [name, files] : mods) {
    if (is_harness(name)) continue;
    out << "  \"" << name << "\" [label=\"" << name;
    if (module_rank(name) >= 0) {
      out << "\\nrank " << module_rank(name);
    } else {
      out << "\\nobserver";
    }
    out << "  (" << files << " files)\"];\n";
  }
  for (const ModuleEdge& e : result.module_edges) {
    if (is_harness(e.from) || is_harness(e.to)) continue;
    out << "  \"" << e.from << "\" -> \"" << e.to << "\" [label=\" "
        << e.count << "\"];\n";
  }
  out << "}\n";
  return out.str();
}

}  // namespace vsgc::lint
