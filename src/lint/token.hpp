// Token model for the vsgc-lint C++ scanner.
//
// The linter tokenizes rather than regex-matching raw lines so that banned
// identifiers inside comments and string literals never fire, qualified names
// (`std :: rand`) survive arbitrary whitespace, and brace/paren/template
// nesting can be tracked when a rule needs structure (range-for bodies,
// struct member lists, template argument lists).
#pragma once

#include <string>
#include <vector>

namespace vsgc::lint {

enum class TokKind {
  kIdentifier,    ///< [A-Za-z_][A-Za-z0-9_]*
  kNumber,        ///< numeric literal (no interpretation)
  kString,        ///< string literal, text excludes quotes
  kChar,          ///< character literal
  kPunct,         ///< single punctuation character
  kPreprocessor,  ///< whole directive line(s), text starts with '#'
};

struct Token {
  TokKind kind;
  std::string text;
  int line = 0;  ///< 1-based line of the token's first character
};

/// An `allow(<rule>) <justification>` suppression comment (a line comment
/// whose body starts with the `vsgc-lint` marker followed by a colon).
struct AllowPragma {
  int line = 0;            ///< line the comment sits on
  std::string rule;        ///< rule id inside allow(...)
  std::string justification;
  bool parse_ok = false;   ///< false => malformed pragma (bad-pragma finding)
  std::string parse_error;
  mutable bool used = false;  ///< set when the pragma suppresses a finding
};

struct LexResult {
  std::vector<Token> tokens;       ///< comments stripped
  std::vector<AllowPragma> pragmas;
};

/// Tokenize one C++ source file. Never fails: unterminated constructs are
/// closed at end-of-file (a linter must degrade gracefully, not abort).
LexResult lex(const std::string& text);

}  // namespace vsgc::lint
