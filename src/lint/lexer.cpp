// Lightweight C++ tokenizer for vsgc-lint.
//
// Handles the constructs that matter for accurate scanning: line and block
// comments (where suppression pragmas live), ordinary and raw string
// literals, character literals, preprocessor directives (kept as one token
// each for the include-guard rule), identifiers, numbers, and punctuation.
// It deliberately does NOT build an AST: every rule below is expressible
// over the token stream plus brace/template balancing.
#include "lint/token.hpp"

#include <cctype>

namespace vsgc::lint {

namespace {

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Parse the body of a `// ...` comment for a vsgc-lint pragma.
/// Grammar: the tool-name marker plus colon, then "allow" "(" rule ")"
/// justification.
void parse_pragma(const std::string& comment, int line,
                  std::vector<AllowPragma>& out) {
  const std::string marker = "vsgc-lint:";
  const std::size_t at = comment.find(marker);
  if (at == std::string::npos) return;

  AllowPragma pragma;
  pragma.line = line;
  std::size_t i = at + marker.size();
  auto skip_ws = [&] {
    while (i < comment.size() &&
           std::isspace(static_cast<unsigned char>(comment[i]))) {
      ++i;
    }
  };
  skip_ws();
  const std::string kw = "allow";
  if (comment.compare(i, kw.size(), kw) != 0) {
    pragma.parse_error = "expected 'allow(<rule>) <justification>'";
    out.push_back(pragma);
    return;
  }
  i += kw.size();
  skip_ws();
  if (i >= comment.size() || comment[i] != '(') {
    pragma.parse_error = "expected '(' after 'allow'";
    out.push_back(pragma);
    return;
  }
  ++i;
  const std::size_t close = comment.find(')', i);
  if (close == std::string::npos) {
    pragma.parse_error = "unterminated allow(...)";
    out.push_back(pragma);
    return;
  }
  std::size_t rule_begin = i;
  std::size_t rule_end = close;
  while (rule_begin < rule_end &&
         std::isspace(static_cast<unsigned char>(comment[rule_begin]))) {
    ++rule_begin;
  }
  while (rule_end > rule_begin &&
         std::isspace(static_cast<unsigned char>(comment[rule_end - 1]))) {
    --rule_end;
  }
  pragma.rule = comment.substr(rule_begin, rule_end - rule_begin);
  i = close + 1;
  skip_ws();
  std::string just = comment.substr(i);
  while (!just.empty() &&
         std::isspace(static_cast<unsigned char>(just.back()))) {
    just.pop_back();
  }
  pragma.justification = just;
  pragma.parse_ok = true;
  out.push_back(pragma);
}

}  // namespace

LexResult lex(const std::string& text) {
  LexResult result;
  std::size_t i = 0;
  int line = 1;
  const std::size_t n = text.size();

  auto advance = [&](std::size_t count) {
    for (std::size_t k = 0; k < count && i < n; ++k, ++i) {
      if (text[i] == '\n') ++line;
    }
  };

  while (i < n) {
    const char c = text[i];

    if (c == '\n' || std::isspace(static_cast<unsigned char>(c))) {
      advance(1);
      continue;
    }

    // Line comment (possible pragma).
    if (c == '/' && i + 1 < n && text[i + 1] == '/') {
      std::size_t end = text.find('\n', i);
      if (end == std::string::npos) end = n;
      parse_pragma(text.substr(i + 2, end - i - 2), line, result.pragmas);
      advance(end - i);
      continue;
    }

    // Block comment. Pragmas are line-comment-only by design: a suppression
    // should be visually attached to the line it excuses.
    if (c == '/' && i + 1 < n && text[i + 1] == '*') {
      std::size_t end = text.find("*/", i + 2);
      end = (end == std::string::npos) ? n : end + 2;
      advance(end - i);
      continue;
    }

    // Preprocessor directive: one token per directive, continuation lines
    // folded in.
    if (c == '#') {
      std::size_t end = i;
      while (end < n) {
        std::size_t eol = text.find('\n', end);
        if (eol == std::string::npos) {
          end = n;
          break;
        }
        // Backslash-continued directive line?
        std::size_t last = eol;
        while (last > end && (text[last - 1] == '\r')) --last;
        if (last > end && text[last - 1] == '\\') {
          end = eol + 1;
          continue;
        }
        end = eol;
        break;
      }
      std::string directive = text.substr(i, end - i);
      result.tokens.push_back({TokKind::kPreprocessor, directive, line});
      advance(end - i);
      continue;
    }

    // Raw string literal R"delim( ... )delim".
    if (c == 'R' && i + 1 < n && text[i + 1] == '"') {
      std::size_t p = i + 2;
      std::string delim;
      while (p < n && text[p] != '(') delim += text[p++];
      const std::string closer = ")" + delim + "\"";
      std::size_t end = text.find(closer, p);
      end = (end == std::string::npos) ? n : end + closer.size();
      result.tokens.push_back(
          {TokKind::kString, text.substr(i, end - i), line});
      advance(end - i);
      continue;
    }

    // String / char literal with escapes.
    if (c == '"' || c == '\'') {
      const char quote = c;
      std::size_t p = i + 1;
      while (p < n && text[p] != quote) {
        if (text[p] == '\\' && p + 1 < n) ++p;
        ++p;
      }
      const std::size_t end = (p < n) ? p + 1 : n;
      result.tokens.push_back(
          {quote == '"' ? TokKind::kString : TokKind::kChar,
           text.substr(i + 1, end - i - (p < n ? 2 : 1)), line});
      advance(end - i);
      continue;
    }

    if (is_ident_start(c)) {
      std::size_t p = i;
      while (p < n && is_ident_char(text[p])) ++p;
      result.tokens.push_back(
          {TokKind::kIdentifier, text.substr(i, p - i), line});
      advance(p - i);
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t p = i;
      while (p < n && (is_ident_char(text[p]) || text[p] == '.' ||
                       ((text[p] == '+' || text[p] == '-') && p > i &&
                        (text[p - 1] == 'e' || text[p - 1] == 'E')))) {
        ++p;
      }
      result.tokens.push_back({TokKind::kNumber, text.substr(i, p - i), line});
      advance(p - i);
      continue;
    }

    result.tokens.push_back({TokKind::kPunct, std::string(1, c), line});
    advance(1);
  }
  return result;
}

}  // namespace vsgc::lint
