// Rule implementations for vsgc-lint. See rules.hpp for the rule vocabulary
// and DESIGN.md §8 for why each rule exists.
#include "lint/linter.hpp"

#include <algorithm>
#include <array>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string_view>

namespace vsgc::lint {

namespace {

using Toks = std::vector<Token>;

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

/// Directories whose code must be a pure function of the seed.
bool in_determinism_scope(std::string_view path) {
  static constexpr std::array<std::string_view, 6> kDirs = {
      "src/sim/", "src/net/", "src/gcs/", "src/membership/", "src/app/",
      "src/mc/"};
  for (std::string_view d : kDirs) {
    if (starts_with(path, d)) return true;
  }
  return false;
}

bool getenv_exempt(std::string_view path) {
  return starts_with(path, "src/obs/") || path == "src/util/logging.hpp";
}

bool is_wire_header(std::string_view path) {
  return path == "src/gcs/messages.hpp" || path == "src/membership/wire.hpp" ||
         path == "src/transport/frame.hpp";
}

bool is_id(const Toks& t, std::size_t i, std::string_view s) {
  return i < t.size() && t[i].kind == TokKind::kIdentifier && t[i].text == s;
}

bool is_punct(const Toks& t, std::size_t i, char c) {
  return i < t.size() && t[i].kind == TokKind::kPunct && t[i].text[0] == c;
}

/// Index just past the brace/paren that matches the opener at `open_idx`.
/// Returns t.size() when unbalanced (degrade gracefully, never throw).
std::size_t skip_balanced(const Toks& t, std::size_t open_idx, char open,
                          char close) {
  int depth = 0;
  for (std::size_t i = open_idx; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kPunct) continue;
    if (t[i].text[0] == open) ++depth;
    if (t[i].text[0] == close && --depth == 0) return i + 1;
  }
  return t.size();
}

// --- determinism rules ------------------------------------------------------

void rule_banned_random(const std::string& path, const Toks& toks,
                        std::vector<Finding>& out) {
  static constexpr std::array<std::string_view, 9> kBanned = {
      "rand",         "srand",        "random_device",
      "mt19937",      "mt19937_64",   "minstd_rand",
      "minstd_rand0", "ranlux24",     "random_shuffle"};
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdentifier) continue;
    for (std::string_view b : kBanned) {
      if (toks[i].text == b) {
        out.push_back({path, toks[i].line, "banned-random",
                       "'" + toks[i].text +
                           "' is ambient randomness; draw from util/rng.hpp "
                           "(vsgc::Rng) so executions replay from a seed",
                       false, ""});
      }
    }
    if (toks[i].text == "default_random_engine") {
      out.push_back({path, toks[i].line, "banned-random",
                     "'default_random_engine' is ambient randomness; use "
                     "vsgc::Rng",
                     false, ""});
    }
  }
}

void rule_banned_time(const std::string& path, const Toks& toks,
                      std::vector<Finding>& out) {
  static constexpr std::array<std::string_view, 8> kAlways = {
      "gettimeofday", "clock_gettime", "system_clock",
      "steady_clock", "high_resolution_clock",
      "localtime",    "gmtime",        "mktime"};
  // `time` and `clock` are flagged only as direct calls (`time(`), and not as
  // member accesses (`obj.clock(...)`) — vector clocks are a legitimate local
  // concept in this codebase.
  static constexpr std::array<std::string_view, 2> kCallOnly = {"time",
                                                                "clock"};
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdentifier) continue;
    for (std::string_view b : kAlways) {
      if (toks[i].text == b) {
        out.push_back({path, toks[i].line, "banned-time",
                       "'" + toks[i].text +
                           "' reads wall-clock time; simulated code must use "
                           "sim::Simulator::now()",
                       false, ""});
      }
    }
    for (std::string_view b : kCallOnly) {
      if (toks[i].text == b && is_punct(toks, i + 1, '(') &&
          !(i > 0 && (is_punct(toks, i - 1, '.') ||
                      is_punct(toks, i - 1, '>')))) {
        out.push_back({path, toks[i].line, "banned-time",
                       "'" + toks[i].text +
                           "()' reads wall-clock time; simulated code must "
                           "use sim::Simulator::now()",
                       false, ""});
      }
    }
  }
}

void rule_banned_getenv(const std::string& path, const Toks& toks,
                        std::vector<Finding>& out) {
  static constexpr std::array<std::string_view, 4> kBanned = {
      "getenv", "secure_getenv", "setenv", "putenv"};
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdentifier) continue;
    for (std::string_view b : kBanned) {
      if (toks[i].text == b) {
        out.push_back({path, toks[i].line, "banned-getenv",
                       "'" + toks[i].text +
                           "' makes behavior depend on the ambient "
                           "environment; only src/obs and util/logging.hpp "
                           "may consult it",
                       false, ""});
      }
    }
  }
}

void rule_pointer_order(const std::string& path, const Toks& toks,
                        std::vector<Finding>& out) {
  static constexpr std::array<std::string_view, 6> kOrdered = {
      "map", "set", "multimap", "multiset", "less", "greater"};
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdentifier) continue;
    bool interesting = false;
    for (std::string_view k : kOrdered) interesting |= (toks[i].text == k);
    if (!interesting || !is_punct(toks, i + 1, '<')) continue;
    if (i > 0 && is_id(toks, i - 1, "operator")) continue;
    // Scan the first template argument; a trailing '*' means the container
    // orders by pointer value, which varies run to run under ASLR.
    int depth = 1;
    std::size_t last_tok = 0;
    bool has_last = false;
    bool bailed = false;
    for (std::size_t j = i + 2; j < toks.size() && j < i + 2 + 64; ++j) {
      const Token& t = toks[j];
      if (t.kind == TokKind::kPunct) {
        const char c = t.text[0];
        if (c == '<') ++depth;
        if (c == '>' && --depth == 0) break;
        if (c == ',' && depth == 1) break;
        // Statement punctuation: this was a comparison, not a template.
        if (c == ';' || c == '{' || c == '}' || c == ')') {
          bailed = true;
          break;
        }
      }
      last_tok = j;
      has_last = true;
    }
    if (!bailed && has_last && is_punct(toks, last_tok, '*')) {
      out.push_back({path, toks[i].line, "pointer-order",
                     "'" + toks[i].text +
                         "<T*>' orders by pointer value, which changes with "
                         "ASLR; key on a stable id instead",
                     false, ""});
    }
  }
}

static constexpr std::array<std::string_view, 4> kUnorderedTypes = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset"};

bool is_unordered_type(const Toks& t, std::size_t i) {
  if (i >= t.size() || t[i].kind != TokKind::kIdentifier) return false;
  for (std::string_view u : kUnorderedTypes) {
    if (t[i].text == u) return true;
  }
  return false;
}

/// Names of variables/members declared with an unordered container type.
std::vector<std::string> unordered_decl_names(const Toks& toks) {
  std::vector<std::string> names;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!is_unordered_type(toks, i)) continue;
    std::size_t j = i + 1;
    if (is_punct(toks, j, '<')) j = skip_balanced(toks, j, '<', '>');
    while (is_punct(toks, j, '&') || is_punct(toks, j, '*') ||
           is_id(toks, j, "const")) {
      ++j;
    }
    if (j < toks.size() && toks[j].kind == TokKind::kIdentifier) {
      names.push_back(toks[j].text);
    }
  }
  return names;
}

/// Calls with externally visible effects: message sends, event scheduling,
/// trace emission. Iterating a hash container to produce any of these makes
/// the schedule depend on hash order.
static constexpr std::array<std::string_view, 16> kEffectCalls = {
    "send",     "send_to",   "send_raw",       "broadcast",
    "multicast", "schedule", "schedule_at",    "schedule_after",
    "schedule_in", "emit",   "deliver",        "post",
    "enqueue",  "publish",   "trace",          "record"};

void rule_unordered_iteration(const std::string& path, const Toks& toks,
                              std::vector<Finding>& out) {
  const std::vector<std::string> unordered = unordered_decl_names(toks);
  auto is_unordered_name = [&](const Token& t) {
    if (t.kind != TokKind::kIdentifier) return false;
    return std::find(unordered.begin(), unordered.end(), t.text) !=
           unordered.end();
  };

  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!is_id(toks, i, "for") || !is_punct(toks, i + 1, '(')) continue;
    const std::size_t header_end = skip_balanced(toks, i + 1, '(', ')');

    // Does the loop range over an unordered container? Two shapes:
    //  * range-for whose range expression names one (or spells the type);
    //  * classic for calling .begin()/.cbegin() on one.
    bool over_unordered = false;
    int depth = 0;
    for (std::size_t j = i + 1; j < header_end; ++j) {
      if (is_punct(toks, j, '(')) ++depth;
      if (is_punct(toks, j, ')')) --depth;
      const bool lone_colon = is_punct(toks, j, ':') &&
                              !is_punct(toks, j - 1, ':') &&
                              !is_punct(toks, j + 1, ':');
      if (lone_colon && depth == 1) {
        for (std::size_t k = j + 1; k + 1 < header_end; ++k) {
          if (is_unordered_name(toks[k]) || is_unordered_type(toks, k)) {
            over_unordered = true;
          }
        }
        break;
      }
      if (is_unordered_name(toks[j]) && is_punct(toks, j + 1, '.') &&
          (is_id(toks, j + 2, "begin") || is_id(toks, j + 2, "cbegin"))) {
        over_unordered = true;
      }
    }
    if (!over_unordered) continue;

    std::size_t body_end;
    if (is_punct(toks, header_end, '{')) {
      body_end = skip_balanced(toks, header_end, '{', '}');
    } else {
      body_end = header_end;
      while (body_end < toks.size() && !is_punct(toks, body_end, ';')) {
        ++body_end;
      }
    }
    for (std::size_t j = header_end; j < body_end; ++j) {
      if (toks[j].kind != TokKind::kIdentifier) continue;
      for (std::string_view e : kEffectCalls) {
        if (toks[j].text == e && is_punct(toks, j + 1, '(')) {
          out.push_back(
              {path, toks[i].line, "unordered-iteration",
               "loop over unordered container calls '" + toks[j].text +
                   "'; hash order is nondeterministic — iterate a std::map "
                   "or a sorted snapshot instead",
               false, ""});
          j = body_end;  // one finding per loop is enough
          break;
        }
      }
    }
  }
}

// --- protocol-hygiene rules -------------------------------------------------

void rule_include_guard(const std::string& path, const Toks& toks,
                        std::vector<Finding>& out) {
  if (!ends_with(path, ".hpp")) return;
  if (toks.empty()) {
    out.push_back({path, 1, "include-guard",
                   "empty header; expected '#pragma once'", false, ""});
    return;
  }
  const Token& first = toks.front();
  const bool pragma_once =
      first.kind == TokKind::kPreprocessor &&
      first.text.find("pragma") != std::string::npos &&
      first.text.find("once") != std::string::npos;
  if (!pragma_once) {
    const bool old_guard = first.kind == TokKind::kPreprocessor &&
                           first.text.find("ifndef") != std::string::npos;
    out.push_back({path, first.line, "include-guard",
                   old_guard
                       ? "uses an #ifndef include guard; this repo's single "
                         "style is '#pragma once' as the first directive"
                       : "header must start with '#pragma once'",
                   false, ""});
  }
}

void rule_wire_init(const std::string& path, const Toks& toks,
                    std::vector<Finding>& out) {
  static constexpr std::array<std::string_view, 12> kSkipLeaders = {
      "friend", "static",   "using",     "typedef", "template", "operator",
      "enum",   "struct",   "class",     "union",   "public",   "private"};

  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!is_id(toks, i, "struct") && !is_id(toks, i, "class")) continue;
    // Find the opening brace of the definition; a ';' first means a forward
    // declaration (or the end of a nested-type member we will skip anyway).
    std::size_t open = i + 1;
    bool has_body = false;
    while (open < toks.size()) {
      if (is_punct(toks, open, '{')) {
        has_body = true;
        break;
      }
      if (is_punct(toks, open, ';')) break;
      ++open;
    }
    if (!has_body) continue;

    std::size_t pos = open + 1;
    const std::size_t end = skip_balanced(toks, open, '{', '}');
    while (pos + 1 < end) {
      // Access label: `public:` / `protected:` / `private:`.
      if ((is_id(toks, pos, "public") || is_id(toks, pos, "private") ||
           is_id(toks, pos, "protected")) &&
          is_punct(toks, pos + 1, ':')) {
        pos += 2;
        continue;
      }
      // Statements led by non-data keywords: consume to ';' (balancing any
      // braces, e.g. nested enum/struct bodies or defaulted functions).
      bool skip_stmt = false;
      for (std::string_view kw : kSkipLeaders) {
        if (is_id(toks, pos, kw)) skip_stmt = true;
      }
      if (is_id(toks, pos, "protected")) skip_stmt = true;
      if (skip_stmt) {
        while (pos < end && !is_punct(toks, pos, ';')) {
          if (is_punct(toks, pos, '{')) {
            pos = skip_balanced(toks, pos, '{', '}');
            continue;
          }
          ++pos;
        }
        ++pos;  // past ';'
        continue;
      }

      // Otherwise: a data member, a member function, or a constructor.
      // Classify by what appears first: '(' => function; '='/'{' =>
      // initialized member; ';' => uninitialized member (the finding).
      std::size_t j = pos;
      std::size_t last_ident = 0;
      bool found = false;
      enum class Stmt { kFunction, kInitialized, kUninitialized } verdict =
          Stmt::kUninitialized;
      int angle = 0;
      while (j < end) {
        const Token& t = toks[j];
        if (t.kind == TokKind::kIdentifier) {
          if (angle == 0) {
            last_ident = j;
            found = true;
          }
          ++j;
          continue;
        }
        if (t.kind == TokKind::kPunct) {
          const char c = t.text[0];
          if (c == '<') ++angle;
          if (c == '>' && angle > 0) --angle;
          if (angle == 0) {
            if (c == '(') {
              verdict = Stmt::kFunction;
              break;
            }
            if (c == '=' || c == '{') {
              verdict = Stmt::kInitialized;
              break;
            }
            if (c == ';') break;
          }
        }
        ++j;
      }

      if (verdict == Stmt::kUninitialized) {
        if (found) {
          out.push_back(
              {path, toks[pos].line, "wire-init",
               "wire struct member '" + toks[last_ident].text +
                   "' has no in-class initializer; add '{}' (or a value) so "
                   "no wire field is ever indeterminate",
               false, ""});
        }
        while (j < end && !is_punct(toks, j, ';')) ++j;
        pos = j + 1;
        continue;
      }

      // Function or initialized member: consume the full statement,
      // balancing parens and braces; a function body needs no trailing ';'.
      bool saw_body = false;
      while (j < end) {
        if (is_punct(toks, j, '(')) {
          j = skip_balanced(toks, j, '(', ')');
          continue;
        }
        if (is_punct(toks, j, '{')) {
          j = skip_balanced(toks, j, '{', '}');
          saw_body = true;
          if (verdict == Stmt::kFunction) break;
          continue;
        }
        if (is_punct(toks, j, ';')) {
          ++j;
          break;
        }
        ++j;
      }
      if (saw_body && verdict == Stmt::kFunction && is_punct(toks, j, ';')) {
        ++j;
      }
      pos = j;
    }
    // Continue the outer loop from inside the struct so nested structs get
    // their own member scan when the outer `for` reaches their token.
  }
}

}  // namespace

// --- driver -----------------------------------------------------------------

void Linter::lint_source(const std::string& rel_path,
                         const std::string& text) {
  ++files_scanned_;
  LexResult lexed = lex(text);
  std::vector<Finding> file_findings;

  if (in_determinism_scope(rel_path)) {
    rule_banned_random(rel_path, lexed.tokens, file_findings);
    rule_banned_time(rel_path, lexed.tokens, file_findings);
    rule_pointer_order(rel_path, lexed.tokens, file_findings);
    rule_unordered_iteration(rel_path, lexed.tokens, file_findings);
  }
  if (!getenv_exempt(rel_path)) {
    rule_banned_getenv(rel_path, lexed.tokens, file_findings);
  }
  rule_include_guard(rel_path, lexed.tokens, file_findings);
  if (is_wire_header(rel_path)) {
    rule_wire_init(rel_path, lexed.tokens, file_findings);
    rule_codec_symmetry(rel_path, lexed.tokens, file_findings);
  }

  apply_suppressions(rel_path, file_findings, lexed.pragmas);
  findings_.insert(findings_.end(), file_findings.begin(),
                   file_findings.end());

  FileRecord rec;
  rec.pragmas = std::move(lexed.pragmas);
  if (starts_with(rel_path, "src/spec/")) rec.text = text;
  rec.includes = extract_includes(lexed.tokens);
  if (in_sim_purity_scope(rel_path)) {
    rec.sim_uses = find_sim_uses(lexed.tokens, rec.includes);
  }
  files_[rel_path] = std::move(rec);
}

void Linter::apply_suppressions(const std::string& rel_path,
                                std::vector<Finding>& file_findings,
                                std::vector<AllowPragma>& pragmas) {
  // Pragma health first: malformed / unknown-rule / justification-free
  // pragmas are findings themselves and never suppress anything.
  for (const AllowPragma& p : pragmas) {
    if (!p.parse_ok) {
      file_findings.push_back({rel_path, p.line, "bad-pragma",
                               "malformed vsgc-lint pragma: " + p.parse_error,
                               false, ""});
    } else if (!is_known_rule(p.rule)) {
      file_findings.push_back({rel_path, p.line, "bad-pragma",
                               "unknown rule '" + p.rule +
                                   "' in allow(...); see vsgc_lint "
                                   "--list-rules",
                               false, ""});
    } else if (p.justification.empty()) {
      file_findings.push_back(
          {rel_path, p.line, "bad-pragma",
           "allow(" + p.rule +
               ") carries no justification; say why the exception is safe",
           false, ""});
    }
  }
  for (Finding& f : file_findings) {
    if (f.rule == "bad-pragma") continue;
    if (f.suppressed) continue;  // e.g. already ledgered (sim-purity)
    for (AllowPragma& p : pragmas) {
      if (!p.parse_ok || p.rule != f.rule || p.justification.empty()) continue;
      // A pragma covers its own line and the line directly below it, so it
      // can sit at the end of the offending line or on its own line above.
      if (p.line == f.line || p.line + 1 == f.line) {
        f.suppressed = true;
        f.justification = p.justification;
        p.used = true;
      }
    }
  }
}

void Linter::check_event_coverage() {
  const auto events_it = files_.find("src/spec/events.hpp");
  const auto hub_it = files_.find("src/spec/all_checkers.hpp");
  if (events_it == files_.end() || hub_it == files_.end()) return;
  event_coverage_ran_ = true;

  LexResult events = lex(events_it->second.text);
  const Toks& toks = events.tokens;

  // Locate `using EventBody = std::variant<...>` and collect the alternative
  // names (last identifier of each comma-separated argument).
  std::vector<std::string> alternatives;
  int variant_line = 0;
  for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
    if (!is_id(toks, i, "using") || !is_id(toks, i + 1, "EventBody")) continue;
    std::size_t j = i + 2;
    while (j < toks.size() && !is_punct(toks, j, '<')) ++j;
    if (j == toks.size()) return;
    variant_line = toks[j].line;
    const std::size_t close = skip_balanced(toks, j, '<', '>');
    std::string last_ident;
    int depth = 1;
    for (std::size_t k = j + 1; k + 1 < close; ++k) {
      if (toks[k].kind == TokKind::kPunct) {
        const char c = toks[k].text[0];
        if (c == '<') ++depth;
        if (c == '>') --depth;
        if (c == ',' && depth == 1 && !last_ident.empty()) {
          alternatives.push_back(last_ident);
          last_ident.clear();
        }
        continue;
      }
      if (toks[k].kind == TokKind::kIdentifier && depth == 1) {
        last_ident = toks[k].text;
      }
    }
    if (!last_ident.empty()) alternatives.push_back(last_ident);
    break;
  }
  if (alternatives.empty()) return;

  // Checker set = every file included by all_checkers.hpp as "spec/...",
  // plus each one's .cpp twin (consumption may live out-of-line).
  std::string checker_text;
  {
    LexResult hub = lex(files_["src/spec/all_checkers.hpp"].text);
    for (const Token& t : hub.tokens) {
      if (t.kind != TokKind::kPreprocessor) continue;
      const std::size_t q1 = t.text.find('"');
      const std::size_t q2 =
          q1 == std::string::npos ? q1 : t.text.find('"', q1 + 1);
      if (q2 == std::string::npos) continue;
      const std::string inc = t.text.substr(q1 + 1, q2 - q1 - 1);
      if (!starts_with(inc, "spec/")) continue;
      const std::string hpp = "src/" + inc;
      if (auto it = files_.find(hpp); it != files_.end()) {
        checker_text += it->second.text;
      }
      if (ends_with(hpp, ".hpp")) {
        const std::string cpp = hpp.substr(0, hpp.size() - 4) + ".cpp";
        if (auto it = files_.find(cpp); it != files_.end()) {
          checker_text += it->second.text;
        }
      }
    }
  }
  LexResult checkers = lex(checker_text);

  std::vector<Finding> file_findings;
  for (const std::string& alt : alternatives) {
    bool consumed = false;
    for (const Token& t : checkers.tokens) {
      if (t.kind == TokKind::kIdentifier && t.text == alt) {
        consumed = true;
        break;
      }
    }
    if (consumed) continue;
    // Anchor the finding at the event struct's definition so a same-line
    // pragma can carry the justification next to the type.
    int line = variant_line;
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
      if (is_id(toks, i, "struct") && is_id(toks, i + 1, alt)) {
        line = toks[i].line;
        break;
      }
    }
    file_findings.push_back(
        {"src/spec/events.hpp", line, "event-coverage",
         "spec event '" + alt +
             "' is emitted on the TraceBus but consumed by no checker "
             "reachable from src/spec/all_checkers.hpp",
         false, ""});
  }
  apply_suppressions("src/spec/events.hpp", file_findings,
                     events_it->second.pragmas);
  findings_.insert(findings_.end(), file_findings.begin(),
                   file_findings.end());
}

void Linter::set_sim_ledger(const std::string& display_path,
                            const std::string& text) {
  ledger_ = parse_ledger(display_path, text);
  ledger_set_ = true;
}

void Linter::check_architecture() {
  std::map<std::string, std::vector<RawInclude>> includes_by_file;
  std::map<std::string, std::vector<SimUse>> uses_by_file;
  for (const auto& [path, rec] : files_) {
    includes_by_file[path] = rec.includes;
    if (!rec.sim_uses.empty()) uses_by_file[path] = rec.sim_uses;
  }
  if (ledger_.display_path.empty()) {
    ledger_.display_path = "tools/sim_purity_ledger.txt";
  }
  std::map<std::string, std::vector<Finding>> by_file;
  analyze_includes(includes_by_file, by_file, deps_);
  check_sim_purity(uses_by_file, ledger_, by_file, deps_);
  for (auto& [path, file_findings] : by_file) {
    if (auto it = files_.find(path); it != files_.end()) {
      apply_suppressions(path, file_findings, it->second.pragmas);
    }
    findings_.insert(findings_.end(), file_findings.begin(),
                     file_findings.end());
  }
}

void Linter::finalize() {
  if (finalized_) return;
  finalized_ = true;
  check_event_coverage();
  check_architecture();

  // Any well-formed pragma that suppressed nothing is itself a finding:
  // stale exceptions rot into blanket ones.
  for (const auto& [path, rec] : files_) {
    for (const AllowPragma& p : rec.pragmas) {
      // In a partial-file run the cross-file rule may not have executed;
      // its pragmas cannot be judged stale without the full tree.
      if (p.rule == "event-coverage" && !event_coverage_ran_) continue;
      if (p.parse_ok && is_known_rule(p.rule) && !p.justification.empty() &&
          !p.used) {
        findings_.push_back({path, p.line, "bad-pragma",
                             "allow(" + p.rule +
                                 ") suppresses nothing on its line or the "
                                 "next; remove the stale pragma",
                             false, ""});
      }
    }
  }

  std::stable_sort(findings_.begin(), findings_.end(),
                   [](const Finding& a, const Finding& b) {
                     if (a.file != b.file) return a.file < b.file;
                     if (a.line != b.line) return a.line < b.line;
                     return a.rule < b.rule;
                   });
}

int Linter::unsuppressed_count() const {
  int n = 0;
  for (const Finding& f : findings_) n += f.suppressed ? 0 : 1;
  return n;
}

int Linter::suppressed_count() const {
  return static_cast<int>(findings_.size()) - unsuppressed_count();
}

obs::JsonValue Linter::to_json(const std::string& root) const {
  obs::JsonValue doc = obs::JsonValue::object();
  doc["tool"] = "vsgc_lint";
  doc["schema_version"] = 1;
  doc["root"] = root;
  doc["files_scanned"] = files_scanned_;
  doc["unsuppressed"] = unsuppressed_count();
  doc["suppressed"] = suppressed_count();
  obs::JsonValue rows = obs::JsonValue::array();
  for (const Finding& f : findings_) {
    obs::JsonValue row = obs::JsonValue::object();
    row["file"] = f.file;
    row["line"] = f.line;
    row["rule"] = f.rule;
    row["message"] = f.message;
    row["suppressed"] = f.suppressed;
    if (f.suppressed) row["justification"] = f.justification;
    rows.push_back(std::move(row));
  }
  doc["findings"] = std::move(rows);
  return doc;
}

int lint_tree(Linter& linter, const std::string& root) {
  namespace fs = std::filesystem;
  static constexpr std::array<std::string_view, 4> kTopDirs = {
      "src", "tools", "bench", "tests"};
  std::vector<std::string> paths;
  for (std::string_view top : kTopDirs) {
    const fs::path dir = fs::path(root) / top;
    std::error_code ec;
    if (!fs::is_directory(dir, ec)) continue;
    for (fs::recursive_directory_iterator it(dir, ec), end;
         !ec && it != end; it.increment(ec)) {
      if (!it->is_regular_file()) continue;
      const std::string rel =
          it->path().lexically_relative(root).generic_string();
      if (ends_with(rel, ".hpp") || ends_with(rel, ".cpp")) {
        paths.push_back(rel);
      }
    }
  }
  // Sorted scan order => deterministic finding order => diffable artifacts.
  std::sort(paths.begin(), paths.end());
  for (const std::string& rel : paths) {
    std::ifstream in(fs::path(root) / rel, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    linter.lint_source(rel, buf.str());
  }
  if (!linter.has_sim_ledger()) {
    std::ifstream led(fs::path(root) / "tools" / "sim_purity_ledger.txt",
                      std::ios::binary);
    if (led) {
      std::ostringstream buf;
      buf << led.rdbuf();
      linter.set_sim_ledger("tools/sim_purity_ledger.txt", buf.str());
    }
  }
  linter.finalize();
  return static_cast<int>(paths.size());
}

}  // namespace vsgc::lint
