// Minimal binary codec used by all wire message types.
//
// The simulator passes messages as structured objects, but every wire type
// provides encode/decode so that (a) benches can account realistic byte
// sizes and (b) the codec round-trip is itself a tested invariant.
#pragma once

#include <cstdint>
#include <cstring>
#include <map>
#include <optional>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/ids.hpp"

namespace vsgc {

class Encoder {
 public:
  /// Pre-size the buffer when the encoded size is known (or estimable) up
  /// front, so a message encodes with at most one reallocation.
  void reserve(std::size_t bytes) { buf_.reserve(buf_.size() + bytes); }

  void put_u8(std::uint8_t v) { buf_.push_back(v); }

  void put_u32(std::uint32_t v) { put_le(v, 4); }

  void put_u64(std::uint64_t v) { put_le(v, 8); }

  void put_i64(std::int64_t v) { put_u64(static_cast<std::uint64_t>(v)); }

  void put_string(const std::string& s) {
    reserve(4 + s.size());
    put_u32(static_cast<std::uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  /// Length-prefixed raw byte blob (u32 length + bytes).
  void put_bytes(const std::vector<std::uint8_t>& b) {
    reserve(4 + b.size());
    put_u32(static_cast<std::uint32_t>(b.size()));
    buf_.insert(buf_.end(), b.begin(), b.end());
  }

  void put_process(ProcessId p) { put_u32(p.value); }
  void put_start_change_id(StartChangeId c) { put_u64(c.value); }

  void put_view_id(ViewId v) {
    put_u64(v.epoch);
    put_u32(v.origin);
  }

  void put_process_set(const std::set<ProcessId>& s) {
    reserve(4 + 4 * s.size());
    put_u32(static_cast<std::uint32_t>(s.size()));
    for (ProcessId p : s) put_process(p);
  }

  const std::vector<std::uint8_t>& bytes() const { return buf_; }
  std::size_t size() const { return buf_.size(); }

 private:
  /// Append `n` little-endian bytes of `v` in one bulk write (memcpy into a
  /// resized tail) instead of n push_backs.
  void put_le(std::uint64_t v, std::size_t n) {
    std::uint8_t le[8];
    for (std::size_t i = 0; i < n; ++i) {
      le[i] = static_cast<std::uint8_t>(v >> (8 * i));
    }
    const std::size_t old = buf_.size();
    buf_.resize(old + n);
    std::memcpy(buf_.data() + old, le, n);
  }

  std::vector<std::uint8_t> buf_;
};

class DecodeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Decoder {
 public:
  explicit Decoder(const std::vector<std::uint8_t>& buf) : buf_(buf) {}

  std::uint8_t get_u8() {
    need(1);
    return buf_[pos_++];
  }

  std::uint32_t get_u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(buf_[pos_++]) << (8 * i);
    return v;
  }

  std::uint64_t get_u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(buf_[pos_++]) << (8 * i);
    return v;
  }

  std::int64_t get_i64() { return static_cast<std::int64_t>(get_u64()); }

  std::string get_string() {
    const std::uint32_t n = get_u32();
    need(n);
    std::string s(reinterpret_cast<const char*>(buf_.data() + pos_), n);
    pos_ += n;
    return s;
  }

  /// Length-prefixed raw byte blob; the length is bounds-checked via need()
  /// before any read, so a forged length fails cleanly.
  std::vector<std::uint8_t> get_bytes() {
    const std::uint32_t n = get_u32();
    need(n);
    std::vector<std::uint8_t> b(buf_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                buf_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return b;
  }

  ProcessId get_process() { return ProcessId{get_u32()}; }
  StartChangeId get_start_change_id() { return StartChangeId{get_u64()}; }

  ViewId get_view_id() {
    ViewId v;
    v.epoch = get_u64();
    v.origin = get_u32();
    return v;
  }

  std::set<ProcessId> get_process_set() {
    const std::uint32_t n = get_u32();
    std::set<ProcessId> s;
    for (std::uint32_t i = 0; i < n; ++i) s.insert(get_process());
    return s;
  }

  bool done() const { return pos_ == buf_.size(); }
  std::size_t remaining() const { return buf_.size() - pos_; }

 private:
  void need(std::size_t n) {
    if (buf_.size() - pos_ < n) throw DecodeError("decoder underrun");
  }

  const std::vector<std::uint8_t>& buf_;
  std::size_t pos_ = 0;
};

}  // namespace vsgc
