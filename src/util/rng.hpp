// Deterministic pseudo-random number generation for simulations.
//
// All simulated randomness (latency jitter, drop decisions, failure
// schedules) flows through Rng so that an execution is a pure function of
// its seed — the property every randomized test and benchmark here relies on.
#pragma once

#include <cstdint>
#include <limits>

namespace vsgc {

/// splitmix64: tiny, fast, and statistically solid for simulation purposes.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) { return next_u64() % bound; }

  /// Uniform in [lo, hi] inclusive.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform real in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// True with probability p.
  bool chance(double p) { return next_double() < p; }

  /// Derive an independent child stream (e.g. one per link).
  Rng fork() { return Rng(next_u64() ^ 0xd6e8feb86659fd93ULL); }

 private:
  std::uint64_t state_;
};

}  // namespace vsgc
