// IntervalSet: run-length-encoded set of uint64 sequence numbers.
//
// CO_RFIFO ack and reorder bookkeeping (DESIGN.md §13) stores "which
// sequence numbers have I received / has my peer acked" as maximal inclusive
// runs [lo, hi] in an ordered map keyed by lo. Under FIFO traffic the whole
// window is one run, so membership tests, cumulative-ack trims, and
// selective-ack (SACK) encoding are O(log runs) with runs ≈ 1 — independent
// of window size — instead of O(window) per frame. The number of runs is
// bounded by the number of *loss gaps*, not by the number of messages.
//
// Runs are inclusive on both ends so a run can reach UINT64_MAX without
// overflow gymnastics. The class is pure data (no sim/net includes): it is
// shared by the transport hot path, the wire codec (SACK blocks), and the
// fuzz oracle tests.
#pragma once

#include <cstdint>
#include <map>

#include "util/assert.hpp"
#include "util/serialization.hpp"

namespace vsgc::util {

class IntervalSet {
 public:
  /// Runs keyed by lower bound; value is the inclusive upper bound.
  using RunMap = std::map<std::uint64_t, std::uint64_t>;

  /// Inserts one value. Returns true if it was newly added. Merges with
  /// adjacent runs so the representation stays maximal.
  bool insert(std::uint64_t v) { return insert_run(v, v) != 0; }

  /// Inserts the inclusive run [lo, hi], coalescing with any overlapping or
  /// adjacent runs. Returns how many values were newly added.
  std::uint64_t insert_run(std::uint64_t lo, std::uint64_t hi) {
    VSGC_REQUIRE(lo <= hi, "IntervalSet run inverted");
    std::uint64_t added = hi - lo + 1;
    // Absorb every run that overlaps or abuts [lo, hi]. Start from the run
    // at or before lo (it may swallow us or extend us leftward).
    auto it = runs_.upper_bound(lo);
    if (it != runs_.begin()) {
      auto prev = std::prev(it);
      if (prev->second >= lo - (lo > 0 ? 1 : 0)) {
        // Overlaps or abuts on the left: extend from prev.
        lo = prev->first;
        if (prev->second >= hi) return 0;  // fully contained already
        added = hi - prev->second;         // only the right extension is new
        it = runs_.erase(prev);
      }
    }
    while (it != runs_.end() && it->first <= (hi == UINT64_MAX ? hi : hi + 1)) {
      if (it->second > hi) {
        added -= hi - it->first + 1;
        hi = it->second;
      } else {
        added -= it->second - it->first + 1;
      }
      it = runs_.erase(it);
    }
    runs_.emplace(lo, hi);
    return added;
  }

  bool contains(std::uint64_t v) const {
    auto it = runs_.upper_bound(v);
    if (it == runs_.begin()) return false;
    return std::prev(it)->second >= v;
  }

  /// True iff every value in the inclusive run [lo, hi] is present.
  bool contains_run(std::uint64_t lo, std::uint64_t hi) const {
    VSGC_REQUIRE(lo <= hi, "IntervalSet run inverted");
    auto it = runs_.upper_bound(lo);
    if (it == runs_.begin()) return false;
    --it;
    return it->first <= lo && it->second >= hi;
  }

  /// Removes every value strictly below `v` (cumulative-ack trim).
  void erase_below(std::uint64_t v) {
    auto it = runs_.begin();
    while (it != runs_.end() && it->first < v) {
      if (it->second >= v) {
        runs_.emplace(v, it->second);
        runs_.erase(it);
        return;
      }
      it = runs_.erase(it);
    }
  }

  /// Smallest value >= `from` that is NOT in the set (next reorder gap).
  std::uint64_t next_missing(std::uint64_t from) const {
    auto it = runs_.upper_bound(from);
    if (it != runs_.begin()) {
      auto prev = std::prev(it);
      if (prev->second >= from) {
        VSGC_REQUIRE(prev->second != UINT64_MAX, "IntervalSet saturated");
        return prev->second + 1;
      }
    }
    return from;
  }

  /// The set of values in [lo, hi] that are absent here (the complement
  /// restricted to a window) — used by the fuzz oracle and loss accounting.
  IntervalSet complement(std::uint64_t lo, std::uint64_t hi) const {
    VSGC_REQUIRE(lo <= hi, "IntervalSet run inverted");
    IntervalSet out;
    std::uint64_t cursor = lo;
    for (auto it = runs_.upper_bound(lo) == runs_.begin()
                       ? runs_.begin()
                       : std::prev(runs_.upper_bound(lo));
         it != runs_.end() && it->first <= hi; ++it) {
      if (it->second < cursor) continue;
      if (it->first > cursor) out.insert_run(cursor, it->first - 1);
      if (it->second >= hi) return out;
      cursor = it->second + 1;
    }
    if (cursor <= hi) out.insert_run(cursor, hi);
    return out;
  }

  bool empty() const { return runs_.empty(); }
  std::size_t num_runs() const { return runs_.size(); }

  /// Total number of values across all runs.
  std::uint64_t count() const {
    std::uint64_t n = 0;
    for (const auto& [lo, hi] : runs_) n += hi - lo + 1;
    return n;
  }

  std::uint64_t min() const {
    VSGC_REQUIRE(!runs_.empty(), "min() of empty IntervalSet");
    return runs_.begin()->first;
  }

  std::uint64_t max() const {
    VSGC_REQUIRE(!runs_.empty(), "max() of empty IntervalSet");
    return runs_.rbegin()->second;
  }

  void clear() { runs_.clear(); }

  const RunMap& runs() const { return runs_; }

  /// Approximate resident heap footprint (per-member memory accounting in
  /// bench_scale): one red-black node per run.
  std::size_t resident_bytes() const {
    return runs_.size() * (sizeof(RunMap::value_type) + 4 * sizeof(void*));
  }

  /// Wire form: run count then (lo, hi) pairs in ascending order. SACK
  /// blocks in the frame header use this with a small `max_runs` cap.
  void encode(Encoder& enc) const {
    enc.put_u32(static_cast<std::uint32_t>(runs_.size()));
    for (const auto& [lo, hi] : runs_) {
      enc.put_u64(lo);
      enc.put_u64(hi);
    }
  }

  /// Decodes a run list, rejecting forged counts above `max_runs` and any
  /// non-ascending or inverted run (a well-formed encoder never emits one).
  static IntervalSet decode(Decoder& dec, std::uint32_t max_runs) {
    const std::uint32_t n = dec.get_u32();
    if (n > max_runs) throw DecodeError("IntervalSet run count exceeds cap");
    IntervalSet out;
    std::uint64_t prev_hi = 0;
    for (std::uint32_t i = 0; i < n; ++i) {
      const std::uint64_t lo = dec.get_u64();
      const std::uint64_t hi = dec.get_u64();
      if (lo > hi) throw DecodeError("IntervalSet run inverted");
      if (i > 0 && lo <= prev_hi + 1 && prev_hi != UINT64_MAX) {
        throw DecodeError("IntervalSet runs not maximal/ascending");
      }
      prev_hi = hi;
      out.runs_.emplace(lo, hi);
    }
    return out;
  }

  friend bool operator==(const IntervalSet&, const IntervalSet&) = default;

 private:
  RunMap runs_;
};

}  // namespace vsgc::util
