// Lightweight leveled logging, silent by default so tests and benches stay
// quiet; examples turn it on to narrate executions.
#pragma once

#include <iostream>
#include <sstream>
#include <string>

namespace vsgc {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kOff = 4 };

class Logger {
 public:
  static Logger& instance() {
    static Logger logger;
    return logger;
  }

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }
  bool enabled(LogLevel level) const { return level >= level_; }

  void write(LogLevel level, const std::string& component,
             const std::string& message) {
    if (!enabled(level)) return;
    std::clog << "[" << name(level) << "] " << component << ": " << message
              << '\n';
  }

 private:
  static const char* name(LogLevel level) {
    switch (level) {
      case LogLevel::kTrace: return "TRACE";
      case LogLevel::kDebug: return "DEBUG";
      case LogLevel::kInfo: return "INFO ";
      case LogLevel::kWarn: return "WARN ";
      case LogLevel::kOff: return "OFF  ";
    }
    return "?";
  }

  LogLevel level_ = LogLevel::kOff;
};

}  // namespace vsgc

#define VSGC_LOG(level, component, expr)                                  \
  do {                                                                    \
    if (::vsgc::Logger::instance().enabled(level)) {                      \
      std::ostringstream vsgc_log_os;                                     \
      vsgc_log_os << expr;                                                \
      ::vsgc::Logger::instance().write(level, component, vsgc_log_os.str()); \
    }                                                                     \
  } while (0)

#define VSGC_TRACE(component, expr) VSGC_LOG(::vsgc::LogLevel::kTrace, component, expr)
#define VSGC_DEBUG(component, expr) VSGC_LOG(::vsgc::LogLevel::kDebug, component, expr)
#define VSGC_INFO(component, expr) VSGC_LOG(::vsgc::LogLevel::kInfo, component, expr)
#define VSGC_WARN(component, expr) VSGC_LOG(::vsgc::LogLevel::kWarn, component, expr)
