// Lightweight leveled logging, silent by default so tests and benches stay
// quiet; examples turn it on to narrate executions.
//
// The default level can be overridden with the VSGC_LOG_LEVEL environment
// variable (trace|debug|info|warn|off). When a simulation harness installs a
// sim-clock hook (app::World and the bench worlds do), every line carries the
// simulated timestamp, so log output lines up with exported traces.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <functional>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>

namespace vsgc {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kOff = 4 };

/// Parse a VSGC_LOG_LEVEL-style name; nullopt for unrecognized input.
inline std::optional<LogLevel> parse_log_level(const std::string& name) {
  if (name == "trace" || name == "TRACE") return LogLevel::kTrace;
  if (name == "debug" || name == "DEBUG") return LogLevel::kDebug;
  if (name == "info" || name == "INFO") return LogLevel::kInfo;
  if (name == "warn" || name == "WARN") return LogLevel::kWarn;
  if (name == "off" || name == "OFF") return LogLevel::kOff;
  return std::nullopt;
}

class Logger {
 public:
  static Logger& instance() {
    static Logger logger;
    return logger;
  }

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }
  bool enabled(LogLevel level) const { return level >= level_; }

  /// Install a hook returning the current simulated time in microseconds.
  /// The installer must clear_sim_clock() before the clock's owner dies.
  /// The hook is thread-local: each batch-engine worker runs its own World
  /// with its own simulated clock, so installing one never races with (or
  /// leaks into) a World running on another thread.
  void set_sim_clock(std::function<std::int64_t()> clock) {
    clock_() = std::move(clock);
  }
  void clear_sim_clock() { clock_() = nullptr; }

  void write(LogLevel level, const std::string& component,
             const std::string& message) {
    if (!enabled(level)) return;
    std::clog << "[" << name(level) << "]";
    if (clock_()) {
      const std::int64_t us = clock_()();
      std::clog << "[t=" << us / 1000 << "." << (us % 1000) / 100 << "ms]";
    }
    std::clog << " " << component << ": " << message << '\n';
  }

 private:
  Logger() {
    if (const char* env = std::getenv("VSGC_LOG_LEVEL")) {
      if (const auto parsed = parse_log_level(env)) level_ = *parsed;
    }
  }

  static const char* name(LogLevel level) {
    switch (level) {
      case LogLevel::kTrace: return "TRACE";
      case LogLevel::kDebug: return "DEBUG";
      case LogLevel::kInfo: return "INFO ";
      case LogLevel::kWarn: return "WARN ";
      case LogLevel::kOff: return "OFF  ";
    }
    return "?";
  }

  static std::function<std::int64_t()>& clock_() {
    static thread_local std::function<std::int64_t()> clock;
    return clock;
  }

  LogLevel level_ = LogLevel::kOff;
};

/// RAII installer for the sim-clock hook: harnesses hold one so the hook can
/// never dangle past the simulator it reads.
class ScopedSimClock {
 public:
  explicit ScopedSimClock(std::function<std::int64_t()> clock) {
    Logger::instance().set_sim_clock(std::move(clock));
  }
  ~ScopedSimClock() { Logger::instance().clear_sim_clock(); }
  ScopedSimClock(const ScopedSimClock&) = delete;
  ScopedSimClock& operator=(const ScopedSimClock&) = delete;
};

}  // namespace vsgc

#define VSGC_LOG(level, component, expr)                                  \
  do {                                                                    \
    if (::vsgc::Logger::instance().enabled(level)) {                      \
      std::ostringstream vsgc_log_os;                                     \
      vsgc_log_os << expr;                                                \
      ::vsgc::Logger::instance().write(level, component, vsgc_log_os.str()); \
    }                                                                     \
  } while (0)

#define VSGC_TRACE(component, expr) VSGC_LOG(::vsgc::LogLevel::kTrace, component, expr)
#define VSGC_DEBUG(component, expr) VSGC_LOG(::vsgc::LogLevel::kDebug, component, expr)
#define VSGC_INFO(component, expr) VSGC_LOG(::vsgc::LogLevel::kInfo, component, expr)
#define VSGC_WARN(component, expr) VSGC_LOG(::vsgc::LogLevel::kWarn, component, expr)
