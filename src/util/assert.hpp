// Always-on invariant checks.
//
// Spec checkers and internal state machines use VSGC_REQUIRE to make any
// safety violation abort loudly with context, in every build type. These are
// the runtime analogue of the paper's invariant assertions (Section 6).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace vsgc {

class InvariantViolation : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

[[noreturn]] inline void fail_invariant(const char* expr, const char* file,
                                        int line, const std::string& msg) {
  std::ostringstream os;
  os << "invariant violated: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw InvariantViolation(os.str());
}

}  // namespace vsgc

#define VSGC_REQUIRE(expr, msg)                                    \
  do {                                                             \
    if (!(expr)) ::vsgc::fail_invariant(#expr, __FILE__, __LINE__, \
                                        (std::ostringstream{} << msg).str()); \
  } while (0)
