// Strong identifier types shared by every vsgc module.
//
// The paper (Section 3.1) requires:
//   * StartChangeId: a totally ordered set with smallest element cid0,
//     *locally* unique per process (we use a per-process monotone counter).
//   * ViewId: a partially ordered set with smallest element vid0. We use a
//     lexicographic (epoch, origin) pair; the epoch dominates, so comparisons
//     between ids produced by different membership servers stay meaningful.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>

namespace vsgc {

/// Identifier of a client process / GCS end-point.
struct ProcessId {
  std::uint32_t value = 0;

  friend auto operator<=>(const ProcessId&, const ProcessId&) = default;
};

/// Identifier of a dedicated membership server.
struct ServerId {
  std::uint32_t value = 0;

  friend auto operator<=>(const ServerId&, const ServerId&) = default;
};

/// Locally unique, per-process increasing start_change identifier (cid).
/// cid0 == StartChangeId{0} is the smallest element and is never carried by a
/// real start_change notification.
struct StartChangeId {
  std::uint64_t value = 0;

  static constexpr StartChangeId zero() { return StartChangeId{0}; }

  friend auto operator<=>(const StartChangeId&, const StartChangeId&) = default;
};

/// Increasing view identifier. `epoch` is the agreement round counter chosen
/// by the membership servers; `origin` breaks ties between servers that
/// concurrently form disjoint (partitioned) views in the same epoch.
struct ViewId {
  std::uint64_t epoch = 0;
  std::uint32_t origin = 0;

  static constexpr ViewId zero() { return ViewId{0, 0}; }

  friend auto operator<=>(const ViewId&, const ViewId&) = default;
};

std::string to_string(ProcessId id);
std::string to_string(ServerId id);
std::string to_string(StartChangeId id);
std::string to_string(ViewId id);

std::ostream& operator<<(std::ostream& os, ProcessId id);
std::ostream& operator<<(std::ostream& os, ServerId id);
std::ostream& operator<<(std::ostream& os, StartChangeId id);
std::ostream& operator<<(std::ostream& os, ViewId id);

}  // namespace vsgc

template <>
struct std::hash<vsgc::ProcessId> {
  std::size_t operator()(const vsgc::ProcessId& id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value);
  }
};

template <>
struct std::hash<vsgc::ServerId> {
  std::size_t operator()(const vsgc::ServerId& id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value);
  }
};

template <>
struct std::hash<vsgc::StartChangeId> {
  std::size_t operator()(const vsgc::StartChangeId& id) const noexcept {
    return std::hash<std::uint64_t>{}(id.value);
  }
};

template <>
struct std::hash<vsgc::ViewId> {
  std::size_t operator()(const vsgc::ViewId& id) const noexcept {
    const std::size_t h = std::hash<std::uint64_t>{}(id.epoch);
    return h ^ (std::hash<std::uint32_t>{}(id.origin) + 0x9e3779b97f4a7c15ULL +
                (h << 6) + (h >> 2));
  }
};
