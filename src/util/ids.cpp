#include "util/ids.hpp"

#include <ostream>

namespace vsgc {

std::string to_string(ProcessId id) { return "p" + std::to_string(id.value); }
std::string to_string(ServerId id) { return "s" + std::to_string(id.value); }

std::string to_string(StartChangeId id) {
  return "cid:" + std::to_string(id.value);
}

std::string to_string(ViewId id) {
  return "v" + std::to_string(id.epoch) + "." + std::to_string(id.origin);
}

std::ostream& operator<<(std::ostream& os, ProcessId id) {
  return os << to_string(id);
}
std::ostream& operator<<(std::ostream& os, ServerId id) {
  return os << to_string(id);
}
std::ostream& operator<<(std::ostream& os, StartChangeId id) {
  return os << to_string(id);
}
std::ostream& operator<<(std::ostream& os, ViewId id) {
  return os << to_string(id);
}

}  // namespace vsgc
