// Process: the deployable unit — one client process hosting a GCS end-point,
// its CO_RFIFO transport, and its membership-client proxy (Figure 1 / 8(a)).
//
// The Process wires the CO_RFIFO delivery stream to both consumers
// (membership wire messages go to the proxy; GCS wire messages go to the
// end-point) and implements whole-process crash/recovery (Section 8).
#pragma once

#include <memory>

#include "gcs/gcs_endpoint.hpp"
#include "membership/membership_client.hpp"
#include "net/network.hpp"
#include "sim/time.hpp"
#include "spec/events.hpp"

namespace vsgc::gcs {

enum class ForwardingKind { kSimple, kMinCopies };

inline std::unique_ptr<ForwardingStrategy> make_strategy(ForwardingKind kind) {
  switch (kind) {
    case ForwardingKind::kSimple:
      return std::make_unique<SimpleForwardingStrategy>();
    case ForwardingKind::kMinCopies:
      return std::make_unique<MinCopiesForwardingStrategy>();
  }
  return nullptr;
}

class Process {
 public:
  struct Config {
    transport::CoRfifoTransport::Config transport;
    membership::MembershipClient::Config membership;
    ForwardingKind forwarding = ForwardingKind::kMinCopies;
  };

  Process(sim::Simulator& sim, net::Network& network, ProcessId self,
          ServerId server, spec::TraceBus* trace, Config config)
      : self_(self) {
    transport_ = std::make_unique<transport::CoRfifoTransport>(
        sim, network, net::node_of(self), config.transport);
    endpoint_ = std::make_unique<GcsEndpoint>(
        sim, *transport_, self, make_strategy(config.forwarding), trace);
    membership_ = std::make_unique<membership::MembershipClient>(
        sim, *transport_, self, server, config.membership);
    membership_->add_listener(*endpoint_);
    // Span instrumentation shares the end-point's bus; all sites stay
    // zero-cost until TraceBus::set_lifecycle(true) (DESIGN.md §10).
    transport_->set_trace(trace);
    membership_->set_trace(trace);
    transport_->set_deliver_handler(
        [this](net::NodeId from, const std::any& payload) {
          if (membership_->handle(from, payload)) return;
          if (net::is_server_node(from)) return;  // unknown server traffic
          endpoint_->on_co_rfifo_deliver(net::process_of(from), payload);
        });
    // Defer the end-point's driver loop across a batched frame: one pump per
    // frame instead of one per message (DESIGN.md §11).
    transport_->set_batch_hooks(
        [this]() { endpoint_->begin_delivery_batch(); },
        [this]() { endpoint_->end_delivery_batch(); });
    transport_->set_raw_handler(
        [this](net::NodeId from, const std::any& payload) {
          membership_->handle(from, payload);
        });
    // Corruption recovery (DESIGN.md §12): when a transport guard detects
    // impossible ack/seq state it re-homes the stream, but entries a
    // corrupted cursor skipped are lost to the current view — the end-point's
    // per-sender delivery indexes only re-align at a view change. Force one
    // by re-attaching to the membership server under a fresh incarnation.
    transport_->set_reset_handler(
        [this](net::NodeId) { membership_->resync(); });
  }

  Process(sim::Simulator& sim, net::Network& network, ProcessId self,
          ServerId server, spec::TraceBus* trace = nullptr)
      : Process(sim, network, self, server, trace, Config()) {}

  /// Begin heartbeating to the membership server (attaches the process).
  void start() { membership_->start(); }

  /// Graceful departure: the group reconfigures without waiting for the
  /// failure detector; start() re-joins later.
  void leave() { membership_->leave(); }

  /// Section 8: full-process crash — GCS end-point, client proxy, and
  /// transport all stop; nothing is kept on stable storage.
  void crash() {
    endpoint_->crash();
    membership_->crash();
    transport_->crash();
  }

  void recover() {
    transport_->recover();
    endpoint_->recover();
    membership_->recover();
  }

  bool crashed() const { return endpoint_->crashed(); }

  GcsEndpoint& endpoint() { return *endpoint_; }
  const GcsEndpoint& endpoint() const { return *endpoint_; }
  transport::CoRfifoTransport& transport() { return *transport_; }
  membership::MembershipClient& membership() { return *membership_; }
  ProcessId id() const { return self_; }

 private:
  ProcessId self_;
  std::unique_ptr<transport::CoRfifoTransport> transport_;
  std::unique_ptr<GcsEndpoint> endpoint_;
  std::unique_ptr<membership::MembershipClient> membership_;
};

}  // namespace vsgc::gcs
