// Sparse 1-based FIFO buffer for per-(sender, view) application messages
// (the msgs[q][v] sequences of Figure 9).
//
// Entries can arrive out of order through forwarding (fwd_msg), so the buffer
// is sparse; longest_prefix() is the paper's LongestPrefixOf — the index of
// the last message in the gap-free prefix.
#pragma once

#include <cstdint>
#include <map>

#include "gcs/app_msg.hpp"

namespace vsgc::gcs {

class FifoBuffer {
 public:
  /// Insert message at 1-based index i (idempotent: re-inserting the same
  /// index is a no-op, which is what makes duplicate forwards harmless).
  void put(std::int64_t i, const AppMsg& msg) {
    if (!entries_.emplace(i, msg).second) return;
    while (entries_.contains(prefix_ + 1)) ++prefix_;
  }

  /// Append at the end of the contiguous prefix; returns the index used.
  std::int64_t append(const AppMsg& msg) {
    const std::int64_t i = prefix_ + 1;
    put(i, msg);
    return i;
  }

  const AppMsg* get(std::int64_t i) const {
    auto it = entries_.find(i);
    return it == entries_.end() ? nullptr : &it->second;
  }

  /// LongestPrefixOf: last index of the gap-free prefix (0 if empty).
  std::int64_t longest_prefix() const { return prefix_; }

  /// LastIndexOf: largest index present (0 if empty).
  std::int64_t last_index() const {
    return entries_.empty() ? 0 : entries_.rbegin()->first;
  }

  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }

 private:
  std::map<std::int64_t, AppMsg> entries_;
  std::int64_t prefix_ = 0;
};

}  // namespace vsgc::gcs
