// WV_RFIFO end-point automaton (paper Figure 9): within-view reliable FIFO
// multicast.
//
// Guarantees (proven in the paper by refinement to WV_RFIFO:SPEC, checked at
// runtime here by spec::WvRfifoChecker):
//   * views forwarded from MBRSHP preserve Self Inclusion and Local
//     Monotonicity;
//   * every application message is delivered in the view it was sent in;
//   * per-sender delivery is gap-free FIFO within a view.
//
// The automaton's locally controlled actions run in a driver loop (pump())
// fired after every input; each action's precondition/effect follows the
// paper's code. Children (VsRfifoTsEndpoint, GcsEndpoint) extend behaviour
// through the protected virtual hooks, mirroring the paper's inheritance
// construct [26]: children may add preconditions and prepend effects but
// never write parent state.
#pragma once

#include <any>
#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>

#include "gcs/client.hpp"
#include "gcs/fifo_buffer.hpp"
#include "gcs/messages.hpp"
#include "membership/interface.hpp"
#include "membership/view.hpp"
#include "sim/time.hpp"
#include "spec/events.hpp"
#include "transport/channel_mux.hpp"
#include "transport/co_rfifo.hpp"

namespace vsgc::gcs {

class WvRfifoEndpoint : public membership::Listener {
 public:
  struct Stats {
    std::uint64_t sent = 0;
    std::uint64_t delivered = 0;
    std::uint64_t views_delivered = 0;
    std::uint64_t view_msgs_sent = 0;
  };

  WvRfifoEndpoint(sim::Simulator& sim, transport::Channel transport,
                  ProcessId self, spec::TraceBus* trace = nullptr);
  ~WvRfifoEndpoint() override = default;

  WvRfifoEndpoint(const WvRfifoEndpoint&) = delete;
  WvRfifoEndpoint& operator=(const WvRfifoEndpoint&) = delete;

  void set_client(Client& client) { client_ = &client; }

  /// Input send_p(m): multicast `payload` to the current view members.
  /// Returns the message (with its assigned uid) for the caller's records.
  AppMsg send(std::string payload);

  /// Hook up to the process's CO_RFIFO delivery stream. Returns true if the
  /// payload was a GCS wire message (consumed).
  bool on_co_rfifo_deliver(ProcessId from, const std::any& payload);

  /// Batch-aware delivery (CoRfifoTransport::set_batch_hooks): between begin
  /// and end the driver loop is deferred, so a multi-entry frame is absorbed
  /// with one pump instead of one per message. Calls nest and must balance.
  void begin_delivery_batch() { ++batch_depth_; }
  void end_delivery_batch() {
    if (batch_depth_ > 0) --batch_depth_;
    if (batch_depth_ == 0 && pump_deferred_) {
      pump_deferred_ = false;
      pump();
    }
  }

  // membership::Listener
  void on_start_change(StartChangeId cid,
                       const std::set<ProcessId>& set) override;
  void on_view(const View& v) override;

  /// Section 8 crash/recovery: crash disables everything; recover resets all
  /// state to initial values (no stable storage).
  virtual void crash();
  virtual void recover();
  bool crashed() const { return crashed_; }

  /// State-corruption hook (sim::FaultOp::kBugCorruptWedge): overwrite the
  /// installed view's epoch. A huge epoch makes try_deliver_view's
  /// monotonicity gate reject every future membership view — a deliberately
  /// *unrecoverable* wedge the eventual-safety suite must flag after its
  /// tolerance window (no recovery path exists for corrupted installed-view
  /// state; contrast the recoverable kCorrupt* family).
  void corrupt_view_epoch(std::uint64_t epoch) {
    if (crashed_) return;
    current_view_.id.epoch = epoch;
  }

  // Introspection (tests, benches, forwarding strategies).
  const View& current_view() const { return current_view_; }
  const View& mbrshp_view() const { return mbrshp_view_; }
  ProcessId self() const { return self_; }
  const Stats& stats() const { return stats_; }
  std::int64_t last_dlvrd(ProcessId q) const {
    auto it = last_dlvrd_.find(q);
    return it == last_dlvrd_.end() ? 0 : it->second;
  }

 protected:
  // ---- Inheritance hooks (the paper's transition restrictions) ----

  /// Precondition the child adds to co_rfifo.reliable: which set to maintain.
  virtual std::set<ProcessId> desired_reliable_set() const {
    return current_view_.members;
  }

  /// Precondition the child adds to deliver_p(q, m) for the message at
  /// `next_index` (1-based). Parent allows everything.
  virtual bool deliver_allowed(ProcessId q, std::int64_t next_index) const {
    (void)q;
    (void)next_index;
    return true;
  }

  /// Precondition + transitional-set computation the child adds to
  /// view_p(v, T). Parent allows delivery with an empty transitional set.
  virtual bool view_gate(const View& v, std::set<ProcessId>& transitional) {
    (void)v;
    transitional.clear();
    return true;
  }

  /// Child effects on view delivery (performed before the parent's, per the
  /// inheritance construct of [26]).
  virtual void pre_view_effects(const View& v) { (void)v; }

  /// Child locally-controlled tasks (sync messages, forwarding, blocking).
  /// Returns true if any action fired (so the driver loop continues).
  virtual bool run_child_tasks() { return false; }

  /// Child wire messages (sync_msg). Returns true if consumed.
  virtual bool handle_child_message(ProcessId from, const std::any& payload) {
    (void)from;
    (void)payload;
    return false;
  }

  /// The view the end-point is currently trying to install. The paper's
  /// algorithms always target the latest membership view (and thereby never
  /// deliver obsolete views); the two-round baseline overrides this to work
  /// through its queue of pending views in order.
  virtual const View& next_view_candidate() const { return mbrshp_view_; }

  /// Child input effects for MBRSHP.start_change (the parent ignores it).
  virtual void handle_start_change(StartChangeId cid,
                                   const std::set<ProcessId>& set) {
    (void)cid;
    (void)set;
  }

  /// Child state reset on recovery.
  virtual void reset_child_state() {}

  // ---- Shared machinery for children ----

  /// Fire all enabled locally-controlled actions until quiescent.
  void pump();

  const FifoBuffer& buffer(ProcessId q, ViewId v) const;
  FifoBuffer& buffer_mut(ProcessId q, ViewId v);
  const View& view_msg_of(ProcessId q) const;
  std::set<net::NodeId> nodes_of(const std::set<ProcessId>& procs,
                                 bool exclude_self) const;
  void emit(spec::EventBody body);

  /// Gate for the high-volume causal span events (DESIGN.md §10): emission
  /// sites construct nothing unless a collector opted in via
  /// TraceBus::set_lifecycle(true).
  bool lifecycle_on() const {
    return trace_ != nullptr && trace_->lifecycle();
  }

  sim::Simulator& sim_;
  transport::Channel transport_;
  ProcessId self_;
  spec::TraceBus* trace_;
  Client* client_ = nullptr;
  Stats stats_;

  // ---- Figure 9 state (owned by the parent; children only read) ----
  View current_view_;
  View mbrshp_view_;
  std::map<ProcessId, View> view_msg_;  ///< latest view_msg from q
  std::map<ProcessId, std::map<ViewId, FifoBuffer>> msgs_;
  std::int64_t last_sent_ = 0;
  std::map<ProcessId, std::int64_t> last_rcvd_;
  std::map<ProcessId, std::int64_t> last_dlvrd_;
  std::set<ProcessId> reliable_set_;
  std::uint64_t uid_counter_ = 0;  ///< history variable: survives recovery
  bool crashed_ = false;

 private:
  bool try_set_reliable();
  bool try_send_view_msg();
  bool try_send_app_msgs();
  bool try_deliver_app_msgs();
  bool try_deliver_view();

  bool pumping_ = false;
  bool pump_again_ = false;
  int batch_depth_ = 0;
  bool pump_deferred_ = false;
};

}  // namespace vsgc::gcs
