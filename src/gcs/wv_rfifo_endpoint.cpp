#include "gcs/wv_rfifo_endpoint.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/logging.hpp"

namespace vsgc::gcs {

WvRfifoEndpoint::WvRfifoEndpoint(sim::Simulator& sim,
                                 transport::Channel transport,
                                 ProcessId self, spec::TraceBus* trace)
    : sim_(sim),
      transport_(transport),
      self_(self),
      trace_(trace),
      current_view_(View::initial(self)),
      mbrshp_view_(View::initial(self)) {
  reliable_set_ = {self};
}

void WvRfifoEndpoint::emit(spec::EventBody body) {
  if (trace_ != nullptr) trace_->emit(sim_.now(), std::move(body));
}

const FifoBuffer& WvRfifoEndpoint::buffer(ProcessId q, ViewId v) const {
  static const FifoBuffer kEmpty;
  auto itq = msgs_.find(q);
  if (itq == msgs_.end()) return kEmpty;
  auto itv = itq->second.find(v);
  return itv == itq->second.end() ? kEmpty : itv->second;
}

FifoBuffer& WvRfifoEndpoint::buffer_mut(ProcessId q, ViewId v) {
  return msgs_[q][v];
}

const View& WvRfifoEndpoint::view_msg_of(ProcessId q) const {
  auto it = view_msg_.find(q);
  if (it != view_msg_.end()) return it->second;
  // Initial value: every end-point starts in its own singleton view v_q.
  static thread_local std::map<ProcessId, View> initials;
  auto [init, inserted] = initials.try_emplace(q, View::initial(q));
  return init->second;
}

std::set<net::NodeId> WvRfifoEndpoint::nodes_of(
    const std::set<ProcessId>& procs, bool exclude_self) const {
  std::set<net::NodeId> out;
  for (ProcessId q : procs) {
    if (exclude_self && q == self_) continue;
    out.insert(net::node_of(q));
  }
  return out;
}

// --------------------------------------------------------------------------
// Inputs
// --------------------------------------------------------------------------

AppMsg WvRfifoEndpoint::send(std::string payload) {
  AppMsg m{self_, ++uid_counter_, std::move(payload)};
  if (crashed_) return m;
  buffer_mut(self_, current_view_.id).append(m);
  ++stats_.sent;
  emit(spec::GcsSend{self_, m});
  pump();
  return m;
}

void WvRfifoEndpoint::on_start_change(StartChangeId cid,
                                      const std::set<ProcessId>& set) {
  if (crashed_) return;
  emit(spec::MbrStartChange{self_, cid, set});
  // The WV_RFIFO parent ignores start_change notifications; VsRfifoTsEndpoint
  // overrides run_child_tasks()/state through handle_start_change().
  handle_start_change(cid, set);
  pump();
}

void WvRfifoEndpoint::on_view(const View& v) {
  if (crashed_) return;
  emit(spec::MbrView{self_, v});
  mbrshp_view_ = v;
  pump();
}

bool WvRfifoEndpoint::on_co_rfifo_deliver(ProcessId from,
                                          const std::any& payload) {
  if (crashed_) return false;

  if (const auto* vm = std::any_cast<wire::ViewMsg>(&payload)) {
    view_msg_[from] = vm->view;
    last_rcvd_[from] = 0;
    pump();
    return true;
  }

  if (const auto* am = std::any_cast<wire::AppMsgWire>(&payload)) {
    const std::int64_t index = last_rcvd_[from] + 1;
    buffer_mut(from, view_msg_of(from).id).put(index, am->msg);
    last_rcvd_[from] = index;
    if (lifecycle_on()) {
      emit(spec::MsgRecv{self_, from, am->msg.sender, am->msg.uid, false});
    }
    pump();
    return true;
  }

  if (const auto* fm = std::any_cast<wire::FwdMsg>(&payload)) {
    buffer_mut(fm->orig, fm->view.id).put(fm->index, fm->msg);
    if (lifecycle_on()) {
      emit(spec::MsgRecv{self_, from, fm->msg.sender, fm->msg.uid, true});
    }
    pump();
    return true;
  }

  if (handle_child_message(from, payload)) {
    pump();
    return true;
  }
  return false;
}

// --------------------------------------------------------------------------
// Driver loop over locally controlled actions
// --------------------------------------------------------------------------

void WvRfifoEndpoint::pump() {
  if (batch_depth_ > 0) {
    // Mid-frame: absorb the rest of the batch first; end_delivery_batch()
    // runs the deferred pump once.
    pump_deferred_ = true;
    return;
  }
  if (pumping_) {
    // Re-entrant call (a client callback sent a message mid-delivery): let
    // the outer loop pick up the new work.
    pump_again_ = true;
    return;
  }
  pumping_ = true;
  bool progress = true;
  while (progress && !crashed_) {
    progress = false;
    pump_again_ = false;
    progress |= try_set_reliable();
    progress |= try_send_view_msg();
    progress |= try_send_app_msgs();
    progress |= try_deliver_app_msgs();
    progress |= run_child_tasks();
    progress |= try_deliver_view();
    progress |= pump_again_;
  }
  pumping_ = false;
}

bool WvRfifoEndpoint::try_set_reliable() {
  // co_rfifo.reliable_p(set). Parent precondition: current_view.set ⊆ set;
  // the concrete set is chosen by the child hook (VS: ∪ start_change.set).
  std::set<ProcessId> desired = desired_reliable_set();
  desired.insert(self_);
  // Compare against the transport's set as well as our mirror: a corrupted
  // transport reliable_set (sim::FaultOp::kCorruptReliable) silently stops
  // retransmission toward the dropped peer, and only this re-assertion path
  // heals it (DESIGN.md §12). Honest runs never diverge — the extra check
  // costs one set comparison per pump and never fires.
  if (desired == reliable_set_ &&
      transport_.reliable_matches(nodes_of(desired, /*exclude_self=*/false))) {
    return false;
  }
  VSGC_REQUIRE(std::includes(desired.begin(), desired.end(),
                             current_view_.members.begin(),
                             current_view_.members.end()),
               "reliable set must cover the current view at "
                   << to_string(self_));
  reliable_set_ = desired;
  transport_.set_reliable(nodes_of(desired, /*exclude_self=*/false));
  return true;
}

bool WvRfifoEndpoint::try_send_view_msg() {
  // co_rfifo.send_p(set, tag=view_msg, v)
  if (view_msg_of(self_) == current_view_) return false;
  if (!std::includes(reliable_set_.begin(), reliable_set_.end(),
                     current_view_.members.begin(),
                     current_view_.members.end())) {
    return false;
  }
  wire::ViewMsg vm{current_view_};
  transport_.send(nodes_of(current_view_.members, /*exclude_self=*/true),
                  net::Payload(vm), vm.wire_size());
  view_msg_[self_] = current_view_;
  ++stats_.view_msgs_sent;
  return true;
}

bool WvRfifoEndpoint::try_send_app_msgs() {
  // co_rfifo.send_p(set, tag=app_msg, m)
  if (view_msg_of(self_) != current_view_) return false;
  bool progress = false;
  const FifoBuffer& own = buffer(self_, current_view_.id);
  while (const AppMsg* m = own.get(last_sent_ + 1)) {
    wire::AppMsgWire am{*m};
    transport_.send(nodes_of(current_view_.members, /*exclude_self=*/true),
                    net::Payload(am), am.wire_size());
    ++last_sent_;
    if (lifecycle_on()) emit(spec::MsgWireSend{self_, m->sender, m->uid});
    progress = true;
  }
  return progress;
}

bool WvRfifoEndpoint::try_deliver_app_msgs() {
  // deliver_p(q, m)
  bool progress = false;
  bool any = true;
  while (any && !crashed_) {
    any = false;
    for (ProcessId q : current_view_.members) {
      const std::int64_t next = last_dlvrd_[q] + 1;
      const AppMsg* m = buffer(q, current_view_.id).get(next);
      if (m == nullptr) continue;
      if (q == self_ && !(last_dlvrd_[q] < last_sent_)) continue;
      if (!deliver_allowed(q, next)) continue;
      last_dlvrd_[q] = next;
      ++stats_.delivered;
      emit(spec::GcsDeliver{self_, q, *m});
      if (client_ != nullptr) client_->deliver(q, *m);
      any = true;
      progress = true;
      if (crashed_) return progress;
    }
  }
  return progress;
}

bool WvRfifoEndpoint::try_deliver_view() {
  // view_p(v, T)
  const View v = next_view_candidate();
  if (!(current_view_.id < v.id)) return false;
  VSGC_REQUIRE(v.contains(self_),
               "MBRSHP violated Self Inclusion at " << to_string(self_));
  std::set<ProcessId> transitional;
  if (!view_gate(v, transitional)) return false;

  // Child effects first, then parent effects (one atomic step).
  pre_view_effects(v);

  current_view_ = v;
  last_sent_ = 0;
  last_dlvrd_.clear();
  // Garbage collection (Section 5.1 note): buffers of other views are dead —
  // delivery only ever reads the current view's buffers from here on.
  for (auto& [q, per_view] : msgs_) {
    std::erase_if(per_view,
                  [&](const auto& entry) { return entry.first != v.id; });
  }

  ++stats_.views_delivered;
  emit(spec::GcsView{self_, v, transitional});
  if (client_ != nullptr) client_->view(v, transitional);
  return true;
}

// --------------------------------------------------------------------------
// Crash / recovery (Section 8)
// --------------------------------------------------------------------------

void WvRfifoEndpoint::crash() {
  if (crashed_) return;
  crashed_ = true;
  emit(spec::Crash{self_});
}

void WvRfifoEndpoint::recover() {
  VSGC_REQUIRE(crashed_, "recover() without crash at " << to_string(self_));
  // Reset to initial values — no stable storage. uid_counter_ survives as a
  // history variable (proof artifact only; see DESIGN.md).
  current_view_ = View::initial(self_);
  mbrshp_view_ = View::initial(self_);
  view_msg_.clear();
  msgs_.clear();
  last_sent_ = 0;
  last_rcvd_.clear();
  last_dlvrd_.clear();
  reliable_set_ = {self_};
  reset_child_state();
  crashed_ = false;
  emit(spec::Recover{self_});
  pump();
}

}  // namespace vsgc::gcs
