// Application-facing interface of a GCS end-point.
//
// The service delivers messages, views (with transitional sets, Section
// 4.1.3), and block requests to its client through this interface; the client
// calls back into the end-point with send() and block_ok(). A well-behaved
// client must satisfy the CLIENT:SPEC automaton of Figure 12: it eventually
// answers every block() with block_ok() and refrains from sending until the
// next view. gcs::BlockingClient (src/app) provides that behaviour for free.
#pragma once

#include <set>

#include "gcs/app_msg.hpp"
#include "membership/view.hpp"

namespace vsgc::gcs {

class Client {
 public:
  virtual ~Client() = default;

  /// deliver_p(q, m): message `m` from process `q`, in the current view.
  virtual void deliver(ProcessId from, const AppMsg& msg) = 0;

  /// view_p(v, T): new view `v` with transitional set `T`.
  virtual void view(const View& v, const std::set<ProcessId>& transitional) = 0;

  /// block_p(): the service asks the client to stop sending; the client must
  /// eventually call GcsEndpoint::block_ok().
  virtual void block() = 0;
};

}  // namespace vsgc::gcs
