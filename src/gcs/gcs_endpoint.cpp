#include "gcs/gcs_endpoint.hpp"

namespace vsgc::gcs {

GcsEndpoint::GcsEndpoint(sim::Simulator& sim,
                         transport::Channel transport,
                         ProcessId self,
                         std::unique_ptr<ForwardingStrategy> strategy,
                         spec::TraceBus* trace)
    : VsRfifoTsEndpoint(sim, transport, self, std::move(strategy), trace) {}

void GcsEndpoint::block_ok() {
  if (crashed_) return;
  block_status_ = BlockStatus::kBlocked;
  emit(spec::GcsBlockOk{self_});
  pump();
}

bool GcsEndpoint::try_block() {
  // block_p(): pre start_change ≠ ⊥ ∧ block_status = unblocked.
  if (!start_change() || block_status_ != BlockStatus::kUnblocked) {
    return false;
  }
  block_status_ = BlockStatus::kRequested;
  emit(spec::GcsBlock{self_});
  if (client_ != nullptr) client_->block();  // may call block_ok() re-entrantly
  return true;
}

bool GcsEndpoint::run_child_tasks() {
  bool progress = try_block();
  progress |= VsRfifoTsEndpoint::run_child_tasks();
  return progress;
}

void GcsEndpoint::pre_view_effects(const View& v) {
  // Child effects precede the parent's (inheritance construct of [26]).
  block_status_ = BlockStatus::kUnblocked;
  VsRfifoTsEndpoint::pre_view_effects(v);
}

void GcsEndpoint::reset_child_state() {
  block_status_ = BlockStatus::kUnblocked;
  VsRfifoTsEndpoint::reset_child_state();
}

}  // namespace vsgc::gcs
