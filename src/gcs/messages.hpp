// Wire messages exchanged between GCS end-points over CO_RFIFO
// (the four message tags of Figures 9 and 10).
//
// Each type carries a full binary codec. The simulator hands structured
// objects across, but encode()/decode() define the real wire format: byte
// accounting in the benches uses it, and the codec round-trip is itself a
// tested invariant (tests/codec_test.cpp).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "gcs/app_msg.hpp"
#include "membership/view.hpp"
#include "util/ids.hpp"
#include "util/serialization.hpp"

namespace vsgc::gcs::wire {

enum class Tag : std::uint8_t {
  kViewMsg = 1,
  kAppMsg = 2,
  kFwdMsg = 3,
  kSyncMsg = 4,
  kAggregateSync = 5,
};

/// tag=view_msg: announces that subsequent application messages from the
/// sender belong to `view`.
struct ViewMsg {
  View view{};

  void encode(Encoder& enc) const {
    enc.put_u8(static_cast<std::uint8_t>(Tag::kViewMsg));
    view.encode(enc);
  }

  static ViewMsg decode(Decoder& dec) { return ViewMsg{View::decode(dec)}; }

  std::size_t wire_size() const { return 1 + view.wire_size(); }

  friend bool operator==(const ViewMsg&, const ViewMsg&) = default;
};

/// tag=app_msg: an original application message (sent in the sender's
/// current view; the receiver associates it with the sender's latest ViewMsg).
struct AppMsgWire {
  AppMsg msg{};

  void encode(Encoder& enc) const {
    enc.put_u8(static_cast<std::uint8_t>(Tag::kAppMsg));
    msg.encode(enc);
  }

  static AppMsgWire decode(Decoder& dec) {
    return AppMsgWire{AppMsg::decode(dec)};
  }

  std::size_t wire_size() const { return 1 + msg.wire_size(); }

  friend bool operator==(const AppMsgWire&, const AppMsgWire&) = default;
};

/// tag=fwd_msg: a message forwarded on behalf of `orig`, with the view it was
/// originally sent in and its index in the per-sender FIFO stream.
struct FwdMsg {
  ProcessId orig{};
  View view{};
  std::int64_t index = 0;  ///< 1-based FIFO index in msgs[orig][view]
  AppMsg msg{};

  void encode(Encoder& enc) const {
    enc.put_u8(static_cast<std::uint8_t>(Tag::kFwdMsg));
    enc.put_process(orig);
    view.encode(enc);
    enc.put_i64(index);
    msg.encode(enc);
  }

  static FwdMsg decode(Decoder& dec) {
    FwdMsg m;
    m.orig = dec.get_process();
    m.view = View::decode(dec);
    m.index = dec.get_i64();
    m.msg = AppMsg::decode(dec);
    return m;
  }

  std::size_t wire_size() const {
    return 1 + 4 + view.wire_size() + 8 + msg.wire_size();
  }

  friend bool operator==(const FwdMsg&, const FwdMsg&) = default;
};

/// tag=sync_msg: virtual synchrony synchronization message, tagged with the
/// sender's (locally unique) start_change id. `cut[q]` is the index of the
/// last message from q the sender commits to deliver before any view v' with
/// v'.startId(sender) == cid.
struct SyncMsg {
  StartChangeId cid{};
  View view{};  ///< sender's current view when the sync message was sent
  std::map<ProcessId, std::int64_t> cut{};

  void encode(Encoder& enc) const {
    enc.put_u8(static_cast<std::uint8_t>(Tag::kSyncMsg));
    enc.put_start_change_id(cid);
    view.encode(enc);
    enc.put_u32(static_cast<std::uint32_t>(cut.size()));
    for (const auto& [p, index] : cut) {
      enc.put_process(p);
      enc.put_i64(index);
    }
  }

  static SyncMsg decode(Decoder& dec) {
    SyncMsg m;
    m.cid = dec.get_start_change_id();
    m.view = View::decode(dec);
    const std::uint32_t n = dec.get_u32();
    for (std::uint32_t i = 0; i < n; ++i) {
      ProcessId p = dec.get_process();
      m.cut[p] = dec.get_i64();
    }
    return m;
  }

  std::size_t wire_size() const {
    return 1 + 8 + view.wire_size() + 4 + cut.size() * 12;
  }

  friend bool operator==(const SyncMsg&, const SyncMsg&) = default;
};

/// tag=aggregate_sync: two-tier hierarchy extension (paper Section 9, after
/// Guo et al. [22]): a leader relays the synchronization messages of the
/// processes it aggregates for, as one batched message. `hops` prevents
/// relay loops: 0 = sent by the originating leader (other leaders forward it
/// to their local members once), 1 = already forwarded.
struct AggregateSyncMsg {
  std::uint8_t hops = 0;
  std::vector<std::pair<ProcessId, SyncMsg>> entries{};

  void encode(Encoder& enc) const {
    enc.put_u8(static_cast<std::uint8_t>(Tag::kAggregateSync));
    enc.put_u8(hops);
    enc.put_u32(static_cast<std::uint32_t>(entries.size()));
    for (const auto& [p, sync] : entries) {
      enc.put_process(p);
      sync.encode(enc);
    }
  }

  static AggregateSyncMsg decode(Decoder& dec) {
    AggregateSyncMsg m;
    m.hops = dec.get_u8();
    const std::uint32_t n = dec.get_u32();
    for (std::uint32_t i = 0; i < n; ++i) {
      ProcessId p = dec.get_process();
      dec.get_u8();  // inner tag byte
      m.entries.emplace_back(p, SyncMsg::decode(dec));
    }
    return m;
  }

  std::size_t wire_size() const {
    std::size_t total = 2 + 4;
    for (const auto& [p, sync] : entries) total += 4 + sync.wire_size();
    return total;
  }

  friend bool operator==(const AggregateSyncMsg&,
                         const AggregateSyncMsg&) = default;
};

}  // namespace vsgc::gcs::wire
