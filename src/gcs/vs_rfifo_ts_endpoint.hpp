// VS_RFIFO+TS end-point automaton (paper Figure 10): extends WV_RFIFO with
// Virtual Synchrony (agreed cuts) and Transitional Sets.
//
// Protocol recap (Section 5.2): on MBRSHP.start_change(cid, set) the
// end-point reliably sends a synchronization message tagged with its locally
// unique cid, carrying its current view and a cut — the index of the last
// message from each sender it commits to deliver before any view v' with
// v'.startId(self) == cid. When MBRSHP.view(v') arrives, the v'.startId
// mapping identifies exactly which sync messages to use, so all end-points
// moving from v to v' compute the same transitional set T and the same
// agreed cut (max over T's cuts) — in ONE round, run in parallel with the
// membership round, with no pre-agreed global identifier.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <tuple>
#include <vector>

#include "gcs/wv_rfifo_endpoint.hpp"

namespace vsgc::gcs {

/// A received (or self-recorded) synchronization message.
struct SyncMsgData {
  View view;  ///< sender's view when it sent the sync message
  std::map<ProcessId, std::int64_t> cut;

  std::int64_t cut_of(ProcessId q) const {
    auto it = cut.find(q);
    return it == cut.end() ? 0 : it->second;
  }
};

/// One forwarding decision: send msgs[orig][view][index] to `dests`.
struct ForwardAction {
  std::set<ProcessId> dests;
  ProcessId orig;
  View view;
  std::int64_t index = 0;
};

class VsRfifoTsEndpoint;

/// How synchronization messages are disseminated.
///
/// * kDirect (the paper's Section 5.2 algorithm): every end-point multicasts
///   its sync message to start_change.set directly — one round, O(n^2)
///   messages per reconfiguration.
/// * kTwoTier (the paper's Section 9 future-work extension, after Guo et al.
///   [22]): each process sends its sync message to its statically designated
///   leader; the leader relays it, batched, to the other leaders and its own
///   local members, and leaders forward foreign aggregates to their locals —
///   O(n·L) messages at the cost of one extra hop. A process whose leader is
///   absent from the start_change set falls back to direct dissemination, so
///   liveness never depends on leader placement.
///
/// `compact_sync_to_strangers` enables the Section 5.2.4 optimization: a
/// sync message sent to a process outside the sender's current view carries
/// no cut (the recipient can never include the sender in its transitional
/// set, so the cut would never be read).
struct SyncRouting {
  enum class Mode { kDirect, kTwoTier };

  Mode mode = Mode::kDirect;
  std::map<ProcessId, ProcessId> leader_of;  ///< static leader assignment
  bool compact_sync_to_strangers = false;

  ProcessId leader(ProcessId p) const {
    auto it = leader_of.find(p);
    return it == leader_of.end() ? p : it->second;
  }
};

/// ForwardingStrategyPredicate (Section 5.2.2), as a pluggable policy.
class ForwardingStrategy {
 public:
  virtual ~ForwardingStrategy() = default;
  virtual const char* name() const = 0;
  /// Inspect the end-point state and propose forwards. The end-point itself
  /// deduplicates against its forwarded_set (one copy per destination).
  virtual std::vector<ForwardAction> select(const VsRfifoTsEndpoint& ep) = 0;
};

class VsRfifoTsEndpoint : public WvRfifoEndpoint {
 public:
  struct VsStats {
    std::uint64_t sync_msgs_sent = 0;      ///< per-destination sync copies
    std::uint64_t sync_msgs_received = 0;
    std::uint64_t sync_bytes_sent = 0;     ///< sync + aggregate wire bytes
    std::uint64_t aggregates_relayed = 0;  ///< two-tier leader relays
    std::uint64_t forwards_sent = 0;       ///< per-destination forwarded copies
  };

  VsRfifoTsEndpoint(sim::Simulator& sim,
                    transport::Channel transport, ProcessId self,
                    std::unique_ptr<ForwardingStrategy> strategy,
                    spec::TraceBus* trace = nullptr);

  // ---- Read access for forwarding strategies and tests ----

  const std::optional<std::pair<StartChangeId, std::set<ProcessId>>>&
  start_change() const {
    return start_change_;
  }

  /// sync_msg[q][cid], or nullptr.
  const SyncMsgData* sync_msg(ProcessId q, StartChangeId cid) const;

  /// The latest (highest-cid) sync message received from q, or nullptr.
  const SyncMsgData* latest_sync_msg(ProcessId q) const;
  const std::map<ProcessId, std::map<StartChangeId, SyncMsgData>>& sync_msgs()
      const {
    return sync_msgs_;
  }

  const FifoBuffer& peek_buffer(ProcessId q, ViewId v) const {
    return buffer(q, v);
  }

  const VsStats& vs_stats() const { return vs_stats_; }

  /// Configure sync-message dissemination (default: direct all-to-all).
  void set_sync_routing(SyncRouting routing) { routing_ = std::move(routing); }
  const SyncRouting& sync_routing() const { return routing_; }

  /// The transitional set this end-point would deliver with MBRSHP view v
  /// right now: {q in v.set ∩ current_view.set |
  ///             sync_msg[q][v.startId(q)].view == current_view}.
  std::set<ProcessId> compute_transitional(const View& v) const;

 protected:
  // Inheritance hooks from WvRfifoEndpoint (transition restrictions of
  // Figure 10).
  std::set<ProcessId> desired_reliable_set() const override;
  bool deliver_allowed(ProcessId q, std::int64_t next_index) const override;
  bool view_gate(const View& v, std::set<ProcessId>& transitional) override;
  void pre_view_effects(const View& v) override;
  bool run_child_tasks() override;
  bool handle_child_message(ProcessId from, const std::any& payload) override;
  void handle_start_change(StartChangeId cid,
                           const std::set<ProcessId>& set) override;
  void reset_child_state() override;

  /// Hook for the Self Delivery child (Figure 11): gate on block status.
  virtual bool sync_send_allowed() const { return true; }

 private:
  bool try_send_sync_msg();
  bool try_forward();
  void store_sync(ProcessId from, const wire::SyncMsg& sync);
  void relay_as_leader(ProcessId origin, const wire::SyncMsg& sync);
  /// Two-tier relay fan-out for a leader: other present leaders, own local
  /// members, and orphans (processes whose leader is absent).
  std::set<ProcessId> relay_dests(const std::set<ProcessId>& change_set) const;

  std::unique_ptr<ForwardingStrategy> strategy_;
  SyncRouting routing_;
  VsStats vs_stats_;

  // ---- Figure 10 state extension ----
  std::optional<std::pair<StartChangeId, std::set<ProcessId>>> start_change_;
  std::map<ProcessId, std::map<StartChangeId, SyncMsgData>> sync_msgs_;
  /// forwarded_set: (dest, orig, view, index) tuples already forwarded.
  std::set<std::tuple<ProcessId, ProcessId, ViewId, std::int64_t>>
      forwarded_set_;
};

/// Section 5.2.2, first strategy: forward every committed message a peer's
/// latest same-view sync message shows as missing. Simple; may send
/// multiple copies of the same message from different end-points.
class SimpleForwardingStrategy final : public ForwardingStrategy {
 public:
  const char* name() const override { return "simple"; }
  std::vector<ForwardAction> select(const VsRfifoTsEndpoint& ep) override;
};

/// Section 5.2.2, second strategy: once the membership view and all relevant
/// sync messages are known, the transitional-set member with the minimum id
/// among those holding a message forwards it — usually exactly one copy.
class MinCopiesForwardingStrategy final : public ForwardingStrategy {
 public:
  const char* name() const override { return "min-copies"; }
  std::vector<ForwardAction> select(const VsRfifoTsEndpoint& ep) override;
};

}  // namespace vsgc::gcs
