// GCS end-point automaton (paper Figure 11): VS_RFIFO+TS+SD.
//
// Adds Self Delivery to VsRfifoTsEndpoint by blocking the application during
// reconfiguration (proven necessary in [19]): after the first start_change in
// a view, the end-point issues block() to its client and withholds its
// synchronization message until the client answers block_ok(). The cut it
// then commits therefore covers every message the application sent in the
// current view, so all of them are delivered before the next view.
//
// Through inheritance this final automaton satisfies all four safety
// specifications (WV_RFIFO, VS_RFIFO, TRANS_SET, SELF) plus the conditional
// liveness Property 4.2.
#pragma once

#include "gcs/vs_rfifo_ts_endpoint.hpp"

namespace vsgc::gcs {

enum class BlockStatus { kUnblocked, kRequested, kBlocked };

class GcsEndpoint : public VsRfifoTsEndpoint {
 public:
  GcsEndpoint(sim::Simulator& sim, transport::Channel transport,
              ProcessId self, std::unique_ptr<ForwardingStrategy> strategy,
              spec::TraceBus* trace = nullptr);

  /// Input block_ok_p(): the client acknowledges the block request and will
  /// not send again until the next view is delivered.
  void block_ok();

  BlockStatus block_status() const { return block_status_; }

 protected:
  bool sync_send_allowed() const override {
    // Figure 11: co_rfifo.send(sync_msg) pre: block_status = blocked.
    return block_status_ == BlockStatus::kBlocked;
  }

  bool run_child_tasks() override;
  void pre_view_effects(const View& v) override;
  void reset_child_state() override;

 private:
  bool try_block();

  BlockStatus block_status_ = BlockStatus::kUnblocked;
};

}  // namespace vsgc::gcs
