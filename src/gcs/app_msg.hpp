// Application message as seen by the GCS service interface.
//
// `uid` is a per-sender monotone counter assigned at send_p(m) time. It gives
// every application message a global identity (sender, uid) so that the spec
// checkers can compare "the i'th message delivered from q in view v" against
// "the i'th message q sent in v" without relying on payload uniqueness.
#pragma once

#include <cstdint>
#include <string>

#include "util/ids.hpp"
#include "util/serialization.hpp"

namespace vsgc::gcs {

struct AppMsg {
  ProcessId sender;
  std::uint64_t uid = 0;
  std::string payload;

  friend bool operator==(const AppMsg&, const AppMsg&) = default;

  void encode(Encoder& enc) const {
    enc.put_process(sender);
    enc.put_u64(uid);
    enc.put_string(payload);
  }

  static AppMsg decode(Decoder& dec) {
    AppMsg m;
    m.sender = dec.get_process();
    m.uid = dec.get_u64();
    m.payload = dec.get_string();
    return m;
  }

  std::size_t wire_size() const { return 4 + 8 + 4 + payload.size(); }
};

}  // namespace vsgc::gcs
