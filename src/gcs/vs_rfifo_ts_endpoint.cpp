#include "gcs/vs_rfifo_ts_endpoint.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/logging.hpp"

namespace vsgc::gcs {

VsRfifoTsEndpoint::VsRfifoTsEndpoint(
    sim::Simulator& sim, transport::Channel transport,
    ProcessId self, std::unique_ptr<ForwardingStrategy> strategy,
    spec::TraceBus* trace)
    : WvRfifoEndpoint(sim, transport, self, trace),
      strategy_(std::move(strategy)) {
  VSGC_REQUIRE(strategy_ != nullptr, "a forwarding strategy is required");
}

const SyncMsgData* VsRfifoTsEndpoint::sync_msg(ProcessId q,
                                               StartChangeId cid) const {
  auto itq = sync_msgs_.find(q);
  if (itq == sync_msgs_.end()) return nullptr;
  auto itc = itq->second.find(cid);
  return itc == itq->second.end() ? nullptr : &itc->second;
}

const SyncMsgData* VsRfifoTsEndpoint::latest_sync_msg(ProcessId q) const {
  auto itq = sync_msgs_.find(q);
  if (itq == sync_msgs_.end() || itq->second.empty()) return nullptr;
  return &itq->second.rbegin()->second;  // cids are monotone per sender
}

std::set<ProcessId> VsRfifoTsEndpoint::compute_transitional(
    const View& v) const {
  std::set<ProcessId> t;
  for (ProcessId q : v.members) {
    if (!current_view_.contains(q)) continue;
    const SyncMsgData* sm = sync_msg(q, v.start_id_of(q));
    if (sm != nullptr && sm->view == current_view_) t.insert(q);
  }
  return t;
}

// --------------------------------------------------------------------------
// Transition restrictions (Figure 10)
// --------------------------------------------------------------------------

void VsRfifoTsEndpoint::handle_start_change(StartChangeId cid,
                                            const std::set<ProcessId>& set) {
  start_change_ = {cid, set};

  // Two-tier catch-up (Section 9 extension): sync messages may have reached
  // this leader before its own start_change notification (the rounds run in
  // parallel and notification order across processes is arbitrary). Re-relay
  // the latest known sync of every relevant process so no one deadlocks on a
  // missed relay: locals receive everything we know; other leaders and
  // orphans receive our locals' messages.
  if (routing_.mode != SyncRouting::Mode::kTwoTier ||
      routing_.leader(self_) != self_) {
    return;
  }
  wire::AggregateSyncMsg for_locals{1, {}};
  wire::AggregateSyncMsg for_peers{0, {}};
  for (const auto& [q, per_cid] : sync_msgs_) {
    if (q == self_ || per_cid.empty()) continue;
    const auto& [latest_cid, data] = *per_cid.rbegin();
    const wire::SyncMsg sync{latest_cid, data.view, data.cut};
    for_locals.entries.emplace_back(q, sync);
    if (routing_.leader(q) == self_) for_peers.entries.emplace_back(q, sync);
  }
  std::set<ProcessId> locals;
  std::set<ProcessId> peers;
  for (ProcessId q : set) {
    if (q == self_) continue;
    if (routing_.leader(q) == self_) {
      locals.insert(q);
    } else if (!set.contains(routing_.leader(q))) {
      peers.insert(q);  // orphan
    } else if (routing_.leader(q) == q) {
      peers.insert(q);  // another leader
    }
  }
  if (!for_locals.entries.empty() && !locals.empty()) {
    transport_.send(nodes_of(locals, /*exclude_self=*/true),
                    net::Payload(for_locals), for_locals.wire_size());
    vs_stats_.sync_bytes_sent += for_locals.wire_size();
    ++vs_stats_.aggregates_relayed;
  }
  if (!for_peers.entries.empty() && !peers.empty()) {
    transport_.send(nodes_of(peers, /*exclude_self=*/true),
                    net::Payload(for_peers), for_peers.wire_size());
    vs_stats_.sync_bytes_sent += for_peers.wire_size();
    ++vs_stats_.aggregates_relayed;
  }
}

std::set<ProcessId> VsRfifoTsEndpoint::desired_reliable_set() const {
  // start_change = ⊥  ⇒ set = current_view.set
  // start_change ≠ ⊥  ⇒ set = current_view.set ∪ start_change.set
  std::set<ProcessId> set = current_view_.members;
  if (start_change_) {
    set.insert(start_change_->second.begin(), start_change_->second.end());
  }
  return set;
}

std::set<ProcessId> VsRfifoTsEndpoint::relay_dests(
    const std::set<ProcessId>& change_set) const {
  std::set<ProcessId> dests;
  for (ProcessId q : change_set) {
    if (q == self_) continue;
    const ProcessId lq = routing_.leader(q);
    if (lq == self_) {
      dests.insert(q);  // our local member
    } else if (change_set.contains(lq)) {
      dests.insert(lq);  // the member's (present) leader relays to it
    } else {
      dests.insert(q);  // orphan: its leader is gone, reach it directly
    }
  }
  return dests;
}

bool VsRfifoTsEndpoint::try_send_sync_msg() {
  // co_rfifo.send_p(set, tag=sync_msg, cid, v, cut)
  if (!start_change_) return false;
  if (!sync_send_allowed()) return false;  // Figure 11: block_status = blocked
  const StartChangeId cid = start_change_->first;
  if (sync_msg(self_, cid) != nullptr) return false;  // already sent
  if (!std::includes(reliable_set_.begin(), reliable_set_.end(),
                     start_change_->second.begin(),
                     start_change_->second.end())) {
    return false;
  }

  SyncMsgData data;
  data.view = current_view_;
  for (ProcessId q : current_view_.members) {
    data.cut[q] = buffer(q, current_view_.id).longest_prefix();
  }
  const wire::SyncMsg full{cid, data.view, data.cut};
  const std::set<ProcessId>& change_set = start_change_->second;

  const ProcessId my_leader = routing_.leader(self_);
  const bool two_tier = routing_.mode == SyncRouting::Mode::kTwoTier &&
                        change_set.contains(my_leader);
  if (two_tier && my_leader != self_) {
    // Up-send to our designated leader only; it relays for us.
    transport_.send({net::node_of(my_leader)}, net::Payload(full),
                    full.wire_size());
    ++vs_stats_.sync_msgs_sent;
    vs_stats_.sync_bytes_sent += full.wire_size();
  } else if (two_tier) {
    // We are a leader: our own sync message starts as an aggregate.
    wire::AggregateSyncMsg agg{0, {{self_, full}}};
    const std::set<ProcessId> dests = relay_dests(change_set);
    if (!dests.empty()) {
      transport_.send(nodes_of(dests, /*exclude_self=*/true), net::Payload(agg),
                      agg.wire_size());
      vs_stats_.sync_msgs_sent += dests.size();
      vs_stats_.sync_bytes_sent += agg.wire_size();
    }
  } else {
    // Direct all-to-all (Section 5.2), with the optional Section 5.2.4
    // compaction: strangers (outside our view) never read our cut.
    std::set<ProcessId> members;
    std::set<ProcessId> strangers;
    for (ProcessId q : change_set) {
      if (q == self_) continue;
      (current_view_.contains(q) ? members : strangers).insert(q);
    }
    if (routing_.compact_sync_to_strangers && !strangers.empty()) {
      const wire::SyncMsg compact{cid, data.view, {}};
      transport_.send(nodes_of(members, /*exclude_self=*/true),
                      net::Payload(full), full.wire_size());
      transport_.send(nodes_of(strangers, /*exclude_self=*/true),
                      net::Payload(compact), compact.wire_size());
      vs_stats_.sync_bytes_sent +=
          full.wire_size() * members.size() +
          compact.wire_size() * strangers.size();
    } else {
      std::set<ProcessId> all = members;
      all.insert(strangers.begin(), strangers.end());
      transport_.send(nodes_of(all, /*exclude_self=*/true), net::Payload(full),
                      full.wire_size());
      vs_stats_.sync_bytes_sent += full.wire_size() * all.size();
    }
    vs_stats_.sync_msgs_sent += change_set.size() - 1;
  }

  sync_msgs_[self_][cid] = data;
  if (lifecycle_on()) emit(spec::SyncSent{self_, cid});
  return true;
}

void VsRfifoTsEndpoint::store_sync(ProcessId from, const wire::SyncMsg& sync) {
  sync_msgs_[from][sync.cid] = SyncMsgData{sync.view, sync.cut};
  ++vs_stats_.sync_msgs_received;
  if (lifecycle_on()) emit(spec::SyncRecv{self_, from, sync.cid});
}

void VsRfifoTsEndpoint::relay_as_leader(ProcessId origin,
                                        const wire::SyncMsg& sync) {
  if (routing_.mode != SyncRouting::Mode::kTwoTier) return;
  if (routing_.leader(self_) != self_) return;       // not a leader
  if (routing_.leader(origin) != self_) return;      // not our member
  // Relay scope: the pending change if one is in progress; otherwise the
  // latest membership view. The latter matters when this leader already
  // installed the view while slower members are still synchronizing — their
  // late up-sends must still be disseminated or those members starve.
  const std::set<ProcessId>& scope =
      start_change_ ? start_change_->second : mbrshp_view_.members;
  std::set<ProcessId> dests = relay_dests(scope);
  dests.erase(origin);
  if (dests.empty()) return;
  wire::AggregateSyncMsg agg{0, {{origin, sync}}};
  transport_.send(nodes_of(dests, /*exclude_self=*/true), net::Payload(agg),
                  agg.wire_size());
  vs_stats_.sync_bytes_sent += agg.wire_size();
  ++vs_stats_.aggregates_relayed;
}

bool VsRfifoTsEndpoint::handle_child_message(ProcessId from,
                                             const std::any& payload) {
  if (const auto* sm = std::any_cast<wire::SyncMsg>(&payload)) {
    store_sync(from, *sm);
    relay_as_leader(from, *sm);
    return true;
  }
  if (const auto* agg = std::any_cast<wire::AggregateSyncMsg>(&payload)) {
    for (const auto& [origin, sync] : agg->entries) {
      store_sync(origin, sync);
    }
    // A leader forwards a fresh foreign aggregate to its local members once
    // (scope falls back to the latest membership view after installation,
    // for the same reason as in relay_as_leader).
    if (agg->hops == 0 && routing_.mode == SyncRouting::Mode::kTwoTier &&
        routing_.leader(self_) == self_) {
      const std::set<ProcessId>& scope =
          start_change_ ? start_change_->second : mbrshp_view_.members;
      std::set<ProcessId> locals;
      for (ProcessId q : scope) {
        if (q != self_ && q != from && routing_.leader(q) == self_) {
          locals.insert(q);
        }
      }
      if (!locals.empty()) {
        wire::AggregateSyncMsg fwd{1, agg->entries};
        transport_.send(nodes_of(locals, /*exclude_self=*/true),
                        net::Payload(fwd), fwd.wire_size());
        vs_stats_.sync_bytes_sent += fwd.wire_size();
        ++vs_stats_.aggregates_relayed;
      }
    }
    return true;
  }
  return false;
}

bool VsRfifoTsEndpoint::deliver_allowed(ProcessId q,
                                        std::int64_t next_index) const {
  if (!start_change_) return true;
  const SyncMsgData* own = sync_msg(self_, start_change_->first);
  if (own == nullptr) return true;  // cut not yet committed

  const bool view_matches =
      current_view_.id < mbrshp_view_.id &&
      mbrshp_view_.contains(self_) &&
      start_change_->first == mbrshp_view_.start_id_of(self_);

  if (!view_matches) {
    // No membership view for this start_change yet: only deliver messages
    // covered by our own committed cut.
    return next_index <= own->cut_of(q);
  }

  // Membership view known: deliver up to the max cut over the (partially
  // known) transitional set S.
  std::int64_t limit = 0;
  for (ProcessId r : mbrshp_view_.members) {
    if (!current_view_.contains(r)) continue;
    const SyncMsgData* sm = sync_msg(r, mbrshp_view_.start_id_of(r));
    if (sm == nullptr || !(sm->view == current_view_)) continue;
    limit = std::max(limit, sm->cut_of(q));
  }
  return next_index <= limit;
}

bool VsRfifoTsEndpoint::view_gate(const View& v,
                                  std::set<ProcessId>& transitional) {
  // pre: v.startId(p) = start_change.id  (never deliver obsolete views)
  if (!start_change_ || v.start_id_of(self_) != start_change_->first) {
    return false;
  }
  // pre: sync messages present from all of v.set ∩ current_view.set
  for (ProcessId q : v.members) {
    if (!current_view_.contains(q)) continue;
    if (sync_msg(q, v.start_id_of(q)) == nullptr) return false;
  }
  transitional = compute_transitional(v);
  // pre: every sender's deliveries match the agreed cut (max over T).
  for (ProcessId q : current_view_.members) {
    std::int64_t agreed = 0;
    for (ProcessId r : transitional) {
      agreed = std::max(agreed,
                        sync_msg(r, v.start_id_of(r))->cut_of(q));
    }
    if (last_dlvrd(q) != agreed) return false;
  }
  return true;
}

void VsRfifoTsEndpoint::pre_view_effects(const View& v) {
  start_change_.reset();
  forwarded_set_.clear();
  // Garbage-collect sync messages that this transition consumed; keep only
  // entries with cids newer than the ones the view carries (they belong to
  // an already-announced next reconfiguration).
  for (auto& [q, per_cid] : sync_msgs_) {
    const StartChangeId used = v.start_id_of(q);
    std::erase_if(per_cid,
                  [&](const auto& e) { return !(used < e.first); });
  }
}

bool VsRfifoTsEndpoint::run_child_tasks() {
  bool progress = false;
  progress |= try_send_sync_msg();
  progress |= try_forward();
  return progress;
}

bool VsRfifoTsEndpoint::try_forward() {
  // co_rfifo.send_p(set, tag=fwd_msg, r, v, m, i), guarded by the strategy
  // predicate and the forwarded_set (never forward the same message to the
  // same destination twice).
  bool progress = false;
  for (ForwardAction& action : strategy_->select(*this)) {
    const AppMsg* m = buffer(action.orig, action.view.id).get(action.index);
    if (m == nullptr) continue;  // we do not hold the message
    std::set<ProcessId> fresh;
    for (ProcessId dest : action.dests) {
      if (dest == self_) continue;
      if (forwarded_set_.emplace(dest, action.orig, action.view.id,
                                 action.index)
              .second) {
        fresh.insert(dest);
      }
    }
    if (fresh.empty()) continue;
    wire::FwdMsg fm{action.orig, action.view, action.index, *m};
    transport_.send(nodes_of(fresh, /*exclude_self=*/true), net::Payload(fm),
                    fm.wire_size());
    vs_stats_.forwards_sent += fresh.size();
    if (lifecycle_on()) {
      emit(spec::MsgForward{self_, m->sender, m->uid, fresh.size()});
    }
    progress = true;
  }
  return progress;
}

void VsRfifoTsEndpoint::reset_child_state() {
  start_change_.reset();
  sync_msgs_.clear();
  forwarded_set_.clear();
}

// --------------------------------------------------------------------------
// Forwarding strategies (Section 5.2.2)
// --------------------------------------------------------------------------

std::vector<ForwardAction> SimpleForwardingStrategy::select(
    const VsRfifoTsEndpoint& ep) {
  std::vector<ForwardAction> actions;
  const auto& sc = ep.start_change();
  if (!sc) return actions;
  const SyncMsgData* own = ep.sync_msg(ep.self(), sc->first);
  if (own == nullptr) return actions;  // nothing committed yet
  const View& v = ep.current_view();

  for (const auto& [q, per_cid] : ep.sync_msgs()) {
    if (q == ep.self() || per_cid.empty()) continue;
    const SyncMsgData& latest = per_cid.rbegin()->second;
    // Forward to q only if we know of no later view of q than v.
    if (!(latest.view == v)) continue;
    for (ProcessId r : v.members) {
      const std::int64_t have = latest.cut_of(r);
      const std::int64_t committed = own->cut_of(r);
      for (std::int64_t i = have + 1; i <= committed; ++i) {
        actions.push_back(ForwardAction{{q}, r, v, i});
      }
    }
  }
  return actions;
}

std::vector<ForwardAction> MinCopiesForwardingStrategy::select(
    const VsRfifoTsEndpoint& ep) {
  std::vector<ForwardAction> actions;
  const View& mv = ep.mbrshp_view();
  const View& cv = ep.current_view();
  if (!(cv.id < mv.id) || !mv.contains(ep.self())) return actions;
  const SyncMsgData* own = ep.sync_msg(ep.self(), mv.start_id_of(ep.self()));
  if (own == nullptr) return actions;  // own sync for this view not sent yet

  // I = v.set ∩ own sync view's set; all of I must have the right sync msgs.
  std::set<ProcessId> interest;
  for (ProcessId q : mv.members) {
    if (own->view.contains(q)) interest.insert(q);
  }
  for (ProcessId q : interest) {
    if (ep.sync_msg(q, mv.start_id_of(q)) == nullptr) return actions;
  }
  std::set<ProcessId> t;
  for (ProcessId q : interest) {
    if (ep.sync_msg(q, mv.start_id_of(q))->view == own->view) t.insert(q);
  }

  // Only messages from senders OUTSIDE T need forwarding (members of T will
  // retransmit their own messages through live CO_RFIFO channels).
  for (ProcessId r : own->view.members) {
    if (t.contains(r)) continue;
    std::int64_t max_committed = 0;
    for (ProcessId u : t) {
      max_committed = std::max(
          max_committed, ep.sync_msg(u, mv.start_id_of(u))->cut_of(r));
    }
    for (std::int64_t i = 1; i <= max_committed; ++i) {
      std::set<ProcessId> missing;
      std::optional<ProcessId> forwarder;
      for (ProcessId u : t) {
        if (ep.sync_msg(u, mv.start_id_of(u))->cut_of(r) < i) {
          missing.insert(u);
        } else if (!forwarder) {
          forwarder = u;  // min id: t iterates in ascending order
        }
      }
      if (missing.empty() || forwarder != ep.self()) continue;
      actions.push_back(ForwardAction{missing, r, own->view, i});
    }
  }
  return actions;
}

}  // namespace vsgc::gcs
