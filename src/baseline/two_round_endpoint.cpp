#include "baseline/two_round_endpoint.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace vsgc::baseline {

TwoRoundEndpoint::TwoRoundEndpoint(sim::Simulator& sim,
                                   transport::CoRfifoTransport& transport,
                                   ProcessId self, spec::TraceBus* trace)
    : gcs::WvRfifoEndpoint(sim, transport, self, trace) {}

void TwoRoundEndpoint::block_ok() {
  if (crashed_) return;
  block_status_ = BlockStatus::kBlocked;
  emit(spec::GcsBlockOk{self_});
  pump();
}

void TwoRoundEndpoint::handle_start_change(StartChangeId cid,
                                           const std::set<ProcessId>& set) {
  (void)cid;
  (void)set;
  // The baseline cannot use the locally-unique cid for synchronization; the
  // notification only tells it to block the application.
  start_change_seen_ = true;
}

void TwoRoundEndpoint::on_view(const View& v) {
  if (crashed_) return;
  pending_.push_back(v);
  prune_pending();
  gcs::WvRfifoEndpoint::on_view(v);
}

void TwoRoundEndpoint::prune_pending() {
  // Classic behaviour the paper criticizes: once an invocation has started,
  // it runs to termination even when a newer view is already known — so
  // obsolete views reach the application. A queued view is abandoned only
  // when a later view excludes one of its participants (that participant is
  // gone; its agree/cut would never arrive and liveness would be lost).
  while (pending_.size() > 1) {
    const View& front = pending_.front();
    bool excluded_later = false;
    for (ProcessId q : participants(front)) {
      if (!pending_.back().contains(q)) {
        excluded_later = true;
        break;
      }
    }
    if (!excluded_later) break;  // run to termination
    agrees_.erase(front.id);
    syncs_.erase(front.id);
    agree_sent_.erase(front.id);
    sync_sent_.erase(front.id);
    ++baseline_stats_.views_abandoned;
    pending_.pop_front();
  }
  // Drop queued views the installed view already supersedes.
  while (!pending_.empty() && !(current_view_.id < pending_.front().id)) {
    pending_.pop_front();
  }
}

const View& TwoRoundEndpoint::next_view_candidate() const {
  return pending_.empty() ? current_view_ : pending_.front();
}

std::set<ProcessId> TwoRoundEndpoint::participants(const View& target) const {
  std::set<ProcessId> out;
  for (ProcessId q : target.members) {
    if (current_view_.contains(q)) out.insert(q);
  }
  out.insert(self_);
  return out;
}

bool TwoRoundEndpoint::agree_complete(const View& target) const {
  auto it = agrees_.find(target.id);
  if (it == agrees_.end()) return false;
  for (ProcessId q : participants(target)) {
    if (!it->second.contains(q)) return false;
  }
  return true;
}

const gcs::SyncMsgData* TwoRoundEndpoint::sync_of(ViewId target,
                                                  ProcessId q) const {
  auto it = syncs_.find(target);
  if (it == syncs_.end()) return nullptr;
  auto itq = it->second.find(q);
  return itq == it->second.end() ? nullptr : &itq->second;
}

std::set<ProcessId> TwoRoundEndpoint::transitional_for(
    const View& target) const {
  std::set<ProcessId> t;
  for (ProcessId q : target.members) {
    if (!current_view_.contains(q)) continue;
    const gcs::SyncMsgData* sm = sync_of(target.id, q);
    if (sm != nullptr && sm->view == current_view_) t.insert(q);
  }
  return t;
}

std::set<ProcessId> TwoRoundEndpoint::desired_reliable_set() const {
  std::set<ProcessId> set = current_view_.members;
  for (const View& v : pending_) {
    set.insert(v.members.begin(), v.members.end());
  }
  return set;
}

// --------------------------------------------------------------------------
// Locally controlled actions
// --------------------------------------------------------------------------

bool TwoRoundEndpoint::run_child_tasks() {
  bool progress = try_block();
  progress |= try_send_agree();
  progress |= try_send_sync();
  progress |= try_forward();
  return progress;
}

bool TwoRoundEndpoint::try_block() {
  if (block_status_ != BlockStatus::kUnblocked) return false;
  if (!start_change_seen_ && pending_.empty()) return false;
  block_status_ = BlockStatus::kRequested;
  emit(spec::GcsBlock{self_});
  if (client_ != nullptr) client_->block();
  return true;
}

bool TwoRoundEndpoint::try_send_agree() {
  // Round 1: confirm the globally unique identifier (the view id) with every
  // participant. This is the round the paper's algorithm eliminates.
  if (pending_.empty()) return false;
  const View& target = pending_.front();
  if (agree_sent_.contains(target.id)) return false;
  if (!std::includes(reliable_set_.begin(), reliable_set_.end(),
                     target.members.begin(), target.members.end())) {
    return false;
  }
  wire::AgreeMsg am{target.id};
  transport_.send(nodes_of(target.members, /*exclude_self=*/true),
                  net::Payload(am), am.wire_size());
  agree_sent_.insert(target.id);
  agrees_[target.id].insert(self_);
  baseline_stats_.agrees_sent += target.members.size() - 1;  // per-dest copies
  return true;
}

bool TwoRoundEndpoint::try_send_sync() {
  // Round 2: cut exchange, only after round 1 completed and the client is
  // blocked (Self Delivery).
  if (pending_.empty()) return false;
  const View& target = pending_.front();
  if (sync_sent_.contains(target.id)) return false;
  if (!agree_complete(target)) return false;
  if (block_status_ != BlockStatus::kBlocked) return false;

  gcs::SyncMsgData data;
  data.view = current_view_;
  for (ProcessId q : current_view_.members) {
    data.cut[q] = buffer(q, current_view_.id).longest_prefix();
  }
  wire::SyncMsg sm{target.id, data.view, data.cut};
  transport_.send(nodes_of(target.members, /*exclude_self=*/true),
                  net::Payload(sm), sm.wire_size());
  syncs_[target.id][self_] = data;
  sync_sent_.insert(target.id);
  baseline_stats_.sync_msgs_sent += target.members.size() - 1;  // per-dest
  return true;
}

bool TwoRoundEndpoint::handle_child_message(ProcessId from,
                                            const std::any& payload) {
  if (const auto* am = std::any_cast<wire::AgreeMsg>(&payload)) {
    agrees_[am->target].insert(from);
    return true;
  }
  if (const auto* sm = std::any_cast<wire::SyncMsg>(&payload)) {
    syncs_[sm->target][from] = gcs::SyncMsgData{sm->view, sm->cut};
    return true;
  }
  return false;
}

bool TwoRoundEndpoint::deliver_allowed(ProcessId q,
                                       std::int64_t next_index) const {
  if (pending_.empty()) return true;
  const View& target = pending_.front();
  const gcs::SyncMsgData* own = sync_of(target.id, self_);
  if (own == nullptr) return true;  // cut not committed yet

  // After committing, deliver up to the max cut over the (partially known)
  // transitional set; fall back to our own cut until peers' cuts arrive.
  std::int64_t limit = own->cut_of(q);
  for (ProcessId r : transitional_for(target)) {
    limit = std::max(limit, sync_of(target.id, r)->cut_of(q));
  }
  return next_index <= limit;
}

bool TwoRoundEndpoint::view_gate(const View& v,
                                 std::set<ProcessId>& transitional) {
  if (pending_.empty() || !(pending_.front() == v)) return false;
  for (ProcessId q : participants(v)) {
    if (sync_of(v.id, q) == nullptr) return false;
  }
  transitional = transitional_for(v);
  for (ProcessId q : current_view_.members) {
    std::int64_t agreed = 0;
    for (ProcessId r : transitional) {
      agreed = std::max(agreed, sync_of(v.id, r)->cut_of(q));
    }
    if (last_dlvrd(q) != agreed) return false;
  }
  return true;
}

bool TwoRoundEndpoint::try_forward() {
  // Min-copies style forwarding keyed on the agreed identifier: once every
  // participant's cut is known, the lowest-id holder of a missing message
  // from a non-transitional sender forwards it.
  if (pending_.empty()) return false;
  const View& target = pending_.front();
  for (ProcessId q : participants(target)) {
    if (sync_of(target.id, q) == nullptr) return false;
  }
  const std::set<ProcessId> t = transitional_for(target);
  if (!t.contains(self_)) return false;

  bool progress = false;
  for (ProcessId r : current_view_.members) {
    if (t.contains(r)) continue;
    std::int64_t max_committed = 0;
    for (ProcessId u : t) {
      max_committed =
          std::max(max_committed, sync_of(target.id, u)->cut_of(r));
    }
    for (std::int64_t i = 1; i <= max_committed; ++i) {
      std::set<ProcessId> missing;
      std::optional<ProcessId> forwarder;
      for (ProcessId u : t) {
        if (sync_of(target.id, u)->cut_of(r) < i) missing.insert(u);
        else if (!forwarder) forwarder = u;
      }
      if (missing.empty() || forwarder != self_) continue;
      const gcs::AppMsg* m = buffer(r, current_view_.id).get(i);
      if (m == nullptr) continue;
      std::set<ProcessId> fresh;
      for (ProcessId dest : missing) {
        if (forwarded_set_.emplace(dest, r, current_view_.id, i).second) {
          fresh.insert(dest);
        }
      }
      if (fresh.empty()) continue;
      gcs::wire::FwdMsg fm{r, current_view_, i, *m};
      transport_.send(nodes_of(fresh, /*exclude_self=*/true), net::Payload(fm),
                      fm.wire_size());
      baseline_stats_.forwards_sent += fresh.size();
      progress = true;
    }
  }
  return progress;
}

void TwoRoundEndpoint::pre_view_effects(const View& v) {
  if (pending_.size() > 1 || mbrshp_view_.id > v.id) {
    ++baseline_stats_.obsolete_views_delivered;
  }
  VSGC_REQUIRE(!pending_.empty() && pending_.front() == v,
               "baseline installed a view it was not processing");
  pending_.pop_front();
  agrees_.erase(v.id);
  syncs_.erase(v.id);
  agree_sent_.erase(v.id);
  sync_sent_.erase(v.id);
  forwarded_set_.clear();
  start_change_seen_ = false;
  block_status_ = BlockStatus::kUnblocked;
}

void TwoRoundEndpoint::reset_child_state() {
  pending_.clear();
  agrees_.clear();
  syncs_.clear();
  agree_sent_.clear();
  sync_sent_.clear();
  forwarded_set_.clear();
  start_change_seen_ = false;
  block_status_ = BlockStatus::kUnblocked;
}

}  // namespace vsgc::baseline
