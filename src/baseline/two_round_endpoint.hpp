// Baseline: classic TWO-round virtually synchronous multicast in the style
// the paper compares against ([7] Totem, [22] structured virtual synchrony).
//
// Differences from the paper's one-round GCS end-point:
//
//   1. It cannot start synchronizing on a start_change notification, because
//      its synchronization messages must be tagged with a globally agreed
//      identifier. It waits for the membership view, then runs an extra
//      agreement round ("agree" on the view identifier) before the cut
//      exchange — i.e. the virtual synchrony rounds run strictly AFTER the
//      membership round instead of in parallel.
//   2. It processes membership views in arrival order: an invocation that
//      has gathered full agreement runs to termination even when a newer
//      view is already known, so cascading reconfigurations make it deliver
//      obsolete views to the application (the paper's Section 1 critique).
//      A pending view is abandoned only when its agreement round is still
//      incomplete or a later view excludes one of its participants.
//
// The baseline still satisfies all the safety specs (it is a correct virtual
// synchrony algorithm — tests attach the same checkers); it is simply slower
// and noisier, which is exactly what benches E1/E3/E5 quantify.
#pragma once

#include <deque>
#include <map>
#include <optional>
#include <set>

#include "gcs/vs_rfifo_ts_endpoint.hpp"  // for SyncMsgData
#include "gcs/wv_rfifo_endpoint.hpp"

namespace vsgc::baseline {

namespace wire {

/// Round 1: confirm participation in the change to view `target`.
struct AgreeMsg {
  ViewId target;

  std::size_t wire_size() const { return 1 + 12; }
};

/// Round 2: cut exchange, tagged with the agreed view identifier.
struct SyncMsg {
  ViewId target;
  View view;  ///< sender's current view
  std::map<ProcessId, std::int64_t> cut;

  std::size_t wire_size() const {
    return 1 + 12 + view.wire_size() + 4 + cut.size() * 12;
  }
};

}  // namespace wire

class TwoRoundEndpoint : public gcs::WvRfifoEndpoint {
 public:
  struct BaselineStats {
    std::uint64_t agrees_sent = 0;
    std::uint64_t sync_msgs_sent = 0;
    std::uint64_t forwards_sent = 0;
    std::uint64_t obsolete_views_delivered = 0;
    std::uint64_t views_abandoned = 0;
  };

  TwoRoundEndpoint(sim::Simulator& sim,
                   transport::CoRfifoTransport& transport, ProcessId self,
                   spec::TraceBus* trace = nullptr);

  /// Input block_ok_p() from the client.
  void block_ok();

  void on_view(const View& v) override;

  const BaselineStats& baseline_stats() const { return baseline_stats_; }
  std::size_t pending_views() const { return pending_.size(); }

 protected:
  const View& next_view_candidate() const override;
  std::set<ProcessId> desired_reliable_set() const override;
  bool deliver_allowed(ProcessId q, std::int64_t next_index) const override;
  bool view_gate(const View& v, std::set<ProcessId>& transitional) override;
  void pre_view_effects(const View& v) override;
  bool run_child_tasks() override;
  bool handle_child_message(ProcessId from, const std::any& payload) override;
  void handle_start_change(StartChangeId cid,
                           const std::set<ProcessId>& set) override;
  void reset_child_state() override;

 private:
  enum class BlockStatus { kUnblocked, kRequested, kBlocked };

  bool try_block();
  bool try_send_agree();
  bool try_send_sync();
  bool try_forward();
  void prune_pending();
  /// Participants whose agreement/cuts the round for `target` needs.
  std::set<ProcessId> participants(const View& target) const;
  bool agree_complete(const View& target) const;
  const gcs::SyncMsgData* sync_of(ViewId target, ProcessId q) const;
  std::set<ProcessId> transitional_for(const View& target) const;

  BaselineStats baseline_stats_;
  std::deque<View> pending_;
  bool start_change_seen_ = false;
  BlockStatus block_status_ = BlockStatus::kUnblocked;
  std::map<ViewId, std::set<ProcessId>> agrees_;
  std::map<ViewId, std::map<ProcessId, gcs::SyncMsgData>> syncs_;
  std::set<ViewId> agree_sent_;
  std::set<ViewId> sync_sent_;
  std::set<std::tuple<ProcessId, ProcessId, ViewId, std::int64_t>>
      forwarded_set_;
};

}  // namespace vsgc::baseline
