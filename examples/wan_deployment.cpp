// WAN deployment example: the paper's target setting (Section 1 — scalable
// group communication in wide-area networks). Two "sites", each with its own
// membership server and a designated sync-aggregation leader (the Section 9
// two-tier extension), higher link latencies, and a causally ordered
// application stream on top.
//
//   $ ./examples/wan_deployment
#include <iostream>

#include "app/causal_order.hpp"
#include "app/world.hpp"

using namespace vsgc;

int main() {
  constexpr int kClients = 6;
  app::WorldConfig config;
  config.num_clients = kClients;
  config.num_servers = 2;
  config.net.base_latency = 20 * sim::kMillisecond;  // WAN-ish links
  config.net.jitter = 5 * sim::kMillisecond;
  // Site A: p1..p3 led by p1; site B: p4..p6 led by p4.
  config.sync_routing.mode = gcs::SyncRouting::Mode::kTwoTier;
  for (int i = 0; i < kClients; ++i) {
    config.sync_routing.leader_of[ProcessId{static_cast<std::uint32_t>(i + 1)}] =
        ProcessId{static_cast<std::uint32_t>(i < 3 ? 1 : 4)};
  }
  config.sync_routing.compact_sync_to_strangers = true;
  app::World world(config);

  std::vector<std::unique_ptr<app::CausalOrder>> stream;
  for (int i = 0; i < kClients; ++i) {
    stream.push_back(std::make_unique<app::CausalOrder>(
        world.client(i), world.process(i).id()));
    const int idx = i;
    stream.back()->on_deliver(
        [idx](ProcessId from, const std::string& payload) {
          if (idx == 2 || idx == 5) {  // one observer per site
            std::cout << "  [p" << idx + 1 << "] <- " << to_string(from)
                      << ": " << payload << "\n";
          }
        });
  }

  std::cout << "Bringing up 6 clients across 2 sites (20 ms WAN links)...\n";
  world.start();
  if (!world.run_until_converged(world.all_members(), 20 * sim::kSecond)) {
    std::cerr << "never converged\n";
    return 1;
  }
  std::cout << "Converged at t=" << world.sim().now() / sim::kMillisecond
            << " ms.\n\nCross-site causal conversation:\n";

  stream[0]->send("site A: release candidate ready");
  world.run_for(200 * sim::kMillisecond);
  stream[3]->send("site B: starting validation");
  world.run_for(200 * sim::kMillisecond);
  stream[4]->send("site B: validation passed");
  world.run_for(2 * sim::kSecond);

  std::cout << "\nSite B's leader (p4) departs; the group reconfigures and "
               "members fall back as needed...\n";
  world.process(3).crash();
  world.run_for(10 * sim::kSecond);
  stream[0]->send("site A: proceeding without p4");
  world.run_for(2 * sim::kSecond);

  std::uint64_t relays = 0;
  for (int i = 0; i < kClients; ++i) {
    relays += world.process(i).endpoint().vs_stats().aggregates_relayed;
  }
  std::cout << "\nLeader-aggregated sync relays performed: " << relays
            << "\nAll safety checkers stayed green.\n";
  world.checkers().finalize();
  return 0;
}
