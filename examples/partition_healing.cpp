// Partition-and-heal example: the partitionable semantics of the service.
// Two membership servers each serve two clients; a WAN partition splits the
// deployment into two live components that keep working independently, and
// the healed network merges them back into one view. Transitional sets tell
// each application exactly who it traveled with — the information it needs
// to reconcile state after the merge.
//
//   $ ./examples/partition_healing
#include <iostream>

#include "app/world.hpp"

using namespace vsgc;

namespace {

void print_view(int idx, const View& v, const std::set<ProcessId>& t) {
  std::cout << "  [p" << idx + 1 << "] view " << to_string(v.id) << " members={";
  for (ProcessId q : v.members) std::cout << " " << to_string(q);
  std::cout << " } transitional={";
  for (ProcessId q : t) std::cout << " " << to_string(q);
  std::cout << " }\n";
}

}  // namespace

int main() {
  app::WorldConfig config;
  config.num_clients = 4;
  config.num_servers = 2;
  app::World world(config);

  for (int i = 0; i < 4; ++i) {
    const int idx = i;
    world.client(i).on_view(
        [idx](const View& v, const std::set<ProcessId>& t) {
          print_view(idx, v, t);
        });
    world.client(i).on_deliver([idx](ProcessId from, const gcs::AppMsg& m) {
      std::cout << "  [p" << idx + 1 << "] <- " << to_string(from) << ": "
                << m.payload << "\n";
    });
  }

  std::cout << "Converging 4 clients across 2 membership servers...\n";
  world.start();
  if (!world.run_until_converged(world.all_members(), 8 * sim::kSecond)) {
    std::cerr << "never converged\n";
    return 1;
  }

  std::cout << "\n=== WAN partition: {s0, p1, p3} | {s1, p2, p4} ===\n";
  world.network().partition(
      {{net::node_of(ServerId{0}), net::node_of(ProcessId{1}),
        net::node_of(ProcessId{3})},
       {net::node_of(ServerId{1}), net::node_of(ProcessId{2}),
        net::node_of(ProcessId{4})}});
  world.run_for(10 * sim::kSecond);

  std::cout << "\nEach component keeps multicasting internally:\n";
  world.client(0).send("component A still alive");
  world.client(1).send("component B still alive");
  world.run_for(2 * sim::kSecond);

  std::cout << "\n=== Network heals; components merge ===\n";
  world.network().heal();
  if (!world.run_until_converged(world.all_members(), 20 * sim::kSecond)) {
    std::cerr << "merge never converged\n";
    return 1;
  }
  std::cout << "\nPost-merge multicast reaches everyone:\n";
  world.client(3).send("hello from the other side");
  world.run_for(2 * sim::kSecond);

  std::cout << "\nDone: disjoint views existed concurrently, transitional "
               "sets exposed each member's travel group, and the merge was "
               "virtually synchronous.\n";
  world.checkers().finalize();
  return 0;
}
