// Totally ordered group chat: concurrent messages from every member appear
// in the SAME order on every screen, across view changes — the total-order
// layer built on the paper's within-view FIFO service (per [13]).
//
//   $ ./examples/ordered_chat
#include <iomanip>
#include <iostream>
#include <vector>

#include "app/total_order.hpp"
#include "app/world.hpp"

using namespace vsgc;

int main() {
  constexpr int kMembers = 4;
  app::WorldConfig config;
  config.num_clients = kMembers;
  app::World world(config);

  std::vector<std::unique_ptr<app::TotalOrder>> chat;
  std::vector<std::vector<std::string>> screens(kMembers);
  for (int i = 0; i < kMembers; ++i) {
    chat.push_back(std::make_unique<app::TotalOrder>(world.client(i),
                                                     world.process(i).id()));
    chat.back()->on_deliver(
        [&screens, i](ProcessId from, const std::string& text) {
          screens[static_cast<std::size_t>(i)].push_back(to_string(from) +
                                                         ": " + text);
        });
  }

  world.start();
  if (!world.run_until_converged(world.all_members(), 8 * sim::kSecond)) {
    std::cerr << "never converged\n";
    return 1;
  }

  std::cout << "Everyone talks at once...\n";
  chat[0]->send("anyone up for lunch?");
  chat[1]->send("deploy is done");
  chat[2]->send("+1 lunch");
  chat[3]->send("reviewing the PR now");
  chat[1]->send("pizza?");
  world.run_for(2 * sim::kSecond);

  std::cout << "One member (p4) drops out mid-conversation...\n";
  world.process(3).crash();
  chat[0]->send("where did p4 go?");
  chat[2]->send("connection lost probably");
  world.run_for(8 * sim::kSecond);

  std::cout << "\nScreens (must be identical for live members):\n";
  for (int i = 0; i < 3; ++i) {
    std::cout << "--- p" << i + 1 << " ---\n";
    for (const auto& line : screens[static_cast<std::size_t>(i)]) {
      std::cout << "  " << line << "\n";
    }
  }

  const bool same =
      screens[0] == screens[1] && screens[1] == screens[2];
  std::cout << (same ? "\nAll live members saw the same conversation.\n"
                     : "\nORDER DIVERGED!\n");
  world.checkers().finalize();
  return same ? 0 : 1;
}
