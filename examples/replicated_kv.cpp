// Replicated key-value store example: the paper's motivating application —
// state machine replication over virtually synchronous total-order
// multicast, with transitional-set-driven state transfer when a newcomer
// joins (no state exchange when everyone moves together).
//
//   $ ./examples/replicated_kv
#include <iostream>

#include "app/replicated_kv.hpp"
#include "app/total_order.hpp"
#include "app/world.hpp"

using namespace vsgc;

namespace {

void dump(const char* label, const app::ReplicatedKvStore& kv) {
  std::cout << "  " << label << " (v" << kv.version() << "): {";
  for (const auto& [k, v] : kv.state()) std::cout << " " << k << "=" << v;
  std::cout << " }\n";
}

}  // namespace

int main() {
  app::WorldConfig config;
  config.num_clients = 3;
  app::World world(config);

  std::vector<std::unique_ptr<app::TotalOrder>> to;
  std::vector<std::unique_ptr<app::ReplicatedKvStore>> kv;
  for (int i = 0; i < 3; ++i) {
    to.push_back(std::make_unique<app::TotalOrder>(world.client(i),
                                                   world.process(i).id()));
    kv.push_back(std::make_unique<app::ReplicatedKvStore>(
        *to.back(), world.process(i).id()));
  }

  // p1 and p2 start; p3 joins later with no state.
  world.server(0).start();
  world.process(0).start();
  world.process(1).start();
  if (!world.run_until_converged({ProcessId{1}, ProcessId{2}},
                                 5 * sim::kSecond)) {
    std::cerr << "initial group never converged\n";
    return 1;
  }
  std::cout << "p1, p2 converged. Writing initial state...\n";
  kv[0]->set("user:alice", "admin");
  kv[1]->set("user:bob", "viewer");
  kv[0]->set("quota", "100");
  world.run_for(2 * sim::kSecond);
  dump("p1", *kv[0]);
  dump("p2", *kv[1]);

  std::cout << "p3 joins with empty state; the lowest-id transitional member "
               "runs the marker/snapshot transfer...\n";
  world.process(2).start();
  if (!world.run_until_converged(world.all_members(), 10 * sim::kSecond)) {
    std::cerr << "join never converged\n";
    return 1;
  }
  world.run_for(3 * sim::kSecond);
  dump("p3", *kv[2]);
  std::cout << "  p3 synced: " << (kv[2]->synced() ? "yes" : "no") << "\n";

  std::cout << "Concurrent writes from all three replicas...\n";
  kv[0]->set("quota", "150");
  kv[2]->set("user:carol", "editor");
  kv[1]->del("user:bob");
  world.run_for(3 * sim::kSecond);
  dump("p1", *kv[0]);
  dump("p2", *kv[1]);
  dump("p3", *kv[2]);

  const bool agree =
      kv[0]->state() == kv[1]->state() && kv[1]->state() == kv[2]->state();
  std::cout << (agree ? "All replicas agree.\n" : "DIVERGENCE!\n");
  world.checkers().finalize();
  return agree ? 0 : 1;
}
