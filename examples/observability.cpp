// Observability tour: run a full simulated deployment through a crash and a
// rejoin while the obs layer watches, then print the derived metrics and
// export the execution as JSONL plus a Chrome-trace timeline.
//
//   $ ./examples/observability
//   $ # then open observability_timeline.json at https://ui.perfetto.dev
//
// Try VSGC_LOG_LEVEL=trace to see sim-timestamped protocol narration too.
#include <fstream>
#include <iostream>
#include <set>

#include "app/world.hpp"
#include "obs/metrics.hpp"
#include "obs/metrics_collector.hpp"
#include "obs/trace_recorder.hpp"

using namespace vsgc;

int main() {
  app::WorldConfig config;
  config.num_clients = 4;
  config.num_servers = 2;
  app::World world(config);

  // The entire observability layer is two trace-bus subscribers: nothing in
  // the protocol stack knows it is being measured.
  obs::Registry registry;
  obs::MetricsCollector collector(registry);
  obs::TraceRecorder recorder;
  world.trace().subscribe(collector);
  world.trace().subscribe(recorder);

  world.start();
  if (!world.run_until_converged(world.all_members(), 10 * sim::kSecond)) {
    std::cerr << "group never converged\n";
    return 1;
  }
  for (int i = 0; i < world.num_clients(); ++i) {
    world.client(i).send("hello from p" + std::to_string(i + 1));
  }
  world.run_for(sim::kSecond);

  // A crash and a rejoin: two reconfigurations for the metrics to measure.
  world.process(3).crash();
  std::set<ProcessId> survivors = world.all_members();
  survivors.erase(ProcessId{4});
  world.run_until_converged(survivors, 30 * sim::kSecond);
  world.process(3).recover();
  world.run_until_converged(world.all_members(), 30 * sim::kSecond);

  std::cout << "Derived metrics after " << world.sim().now() / sim::kMillisecond
            << " simulated ms:\n"
            << registry.to_json().dump_pretty() << "\n";

  std::ofstream jsonl("observability_trace.jsonl", std::ios::binary);
  recorder.write_jsonl(jsonl);
  std::ofstream timeline("observability_timeline.json", std::ios::binary);
  recorder.write_chrome_trace(timeline);
  std::cout << "\nWrote observability_trace.jsonl (" << recorder.events().size()
            << " events) and observability_timeline.json — open the latter in "
               "https://ui.perfetto.dev to see membership and VS rounds "
               "overlap per process.\n";
  return 0;
}
