// Quickstart: bring up a simulated deployment (membership servers + GCS
// end-points), join three processes into one group, multicast messages, and
// watch views and deliveries arrive.
//
//   $ ./examples/quickstart
#include <iostream>

#include "app/world.hpp"

using namespace vsgc;

int main() {
  app::WorldConfig config;
  config.num_clients = 3;
  config.num_servers = 1;
  app::World world(config);

  for (int i = 0; i < 3; ++i) {
    const int idx = i;
    world.client(i).on_view([idx](const View& v,
                                  const std::set<ProcessId>& transitional) {
      std::cout << "  [p" << idx + 1 << "] view " << to_string(v)
                << "  transitional={";
      for (ProcessId q : transitional) std::cout << " " << to_string(q);
      std::cout << " }\n";
    });
    world.client(i).on_deliver([idx](ProcessId from, const gcs::AppMsg& m) {
      std::cout << "  [p" << idx + 1 << "] got \"" << m.payload << "\" from "
                << to_string(from) << "\n";
    });
  }

  std::cout << "Starting membership servers and GCS end-points...\n";
  world.start();
  if (!world.run_until_converged(world.all_members(), 5 * sim::kSecond)) {
    std::cerr << "group never converged\n";
    return 1;
  }
  std::cout << "Group converged in "
            << world.sim().now() / sim::kMillisecond << " simulated ms.\n";

  std::cout << "p1 multicasts 'hello group'...\n";
  world.client(0).send("hello group");
  std::cout << "p2 multicasts 'hi p1'...\n";
  world.client(1).send("hi p1");
  world.run_for(1 * sim::kSecond);

  std::cout << "Crashing p3; the group reconfigures around it...\n";
  world.process(2).crash();
  world.run_for(5 * sim::kSecond);

  std::cout << "p1 multicasts 'two of us now'...\n";
  world.client(0).send("two of us now");
  world.run_for(1 * sim::kSecond);

  std::cout << "Done. All safety checkers stayed green.\n";
  world.checkers().finalize();
  return 0;
}
