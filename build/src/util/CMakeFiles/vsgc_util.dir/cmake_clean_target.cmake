file(REMOVE_RECURSE
  "libvsgc_util.a"
)
