file(REMOVE_RECURSE
  "CMakeFiles/vsgc_util.dir/ids.cpp.o"
  "CMakeFiles/vsgc_util.dir/ids.cpp.o.d"
  "libvsgc_util.a"
  "libvsgc_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vsgc_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
