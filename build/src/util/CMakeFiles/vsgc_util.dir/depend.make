# Empty dependencies file for vsgc_util.
# This may be replaced when dependencies are built.
