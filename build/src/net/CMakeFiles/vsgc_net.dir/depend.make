# Empty dependencies file for vsgc_net.
# This may be replaced when dependencies are built.
