file(REMOVE_RECURSE
  "libvsgc_net.a"
)
