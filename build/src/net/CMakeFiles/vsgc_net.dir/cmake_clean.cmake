file(REMOVE_RECURSE
  "CMakeFiles/vsgc_net.dir/network.cpp.o"
  "CMakeFiles/vsgc_net.dir/network.cpp.o.d"
  "libvsgc_net.a"
  "libvsgc_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vsgc_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
