file(REMOVE_RECURSE
  "libvsgc_spec.a"
)
