# Empty compiler generated dependencies file for vsgc_spec.
# This may be replaced when dependencies are built.
