file(REMOVE_RECURSE
  "CMakeFiles/vsgc_spec.dir/liveness_checker.cpp.o"
  "CMakeFiles/vsgc_spec.dir/liveness_checker.cpp.o.d"
  "libvsgc_spec.a"
  "libvsgc_spec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vsgc_spec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
