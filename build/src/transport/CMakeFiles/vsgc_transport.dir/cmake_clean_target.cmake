file(REMOVE_RECURSE
  "libvsgc_transport.a"
)
