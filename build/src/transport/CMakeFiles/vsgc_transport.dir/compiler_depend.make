# Empty compiler generated dependencies file for vsgc_transport.
# This may be replaced when dependencies are built.
