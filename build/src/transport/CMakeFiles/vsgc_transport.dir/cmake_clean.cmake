file(REMOVE_RECURSE
  "CMakeFiles/vsgc_transport.dir/co_rfifo.cpp.o"
  "CMakeFiles/vsgc_transport.dir/co_rfifo.cpp.o.d"
  "libvsgc_transport.a"
  "libvsgc_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vsgc_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
