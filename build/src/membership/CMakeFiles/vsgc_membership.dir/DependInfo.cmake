
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/membership/membership_client.cpp" "src/membership/CMakeFiles/vsgc_membership.dir/membership_client.cpp.o" "gcc" "src/membership/CMakeFiles/vsgc_membership.dir/membership_client.cpp.o.d"
  "/root/repo/src/membership/membership_server.cpp" "src/membership/CMakeFiles/vsgc_membership.dir/membership_server.cpp.o" "gcc" "src/membership/CMakeFiles/vsgc_membership.dir/membership_server.cpp.o.d"
  "/root/repo/src/membership/view.cpp" "src/membership/CMakeFiles/vsgc_membership.dir/view.cpp.o" "gcc" "src/membership/CMakeFiles/vsgc_membership.dir/view.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/vsgc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/vsgc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/vsgc_transport.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
