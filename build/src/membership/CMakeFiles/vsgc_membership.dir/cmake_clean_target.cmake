file(REMOVE_RECURSE
  "libvsgc_membership.a"
)
