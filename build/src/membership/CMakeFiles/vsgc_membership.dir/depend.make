# Empty dependencies file for vsgc_membership.
# This may be replaced when dependencies are built.
