file(REMOVE_RECURSE
  "CMakeFiles/vsgc_membership.dir/membership_client.cpp.o"
  "CMakeFiles/vsgc_membership.dir/membership_client.cpp.o.d"
  "CMakeFiles/vsgc_membership.dir/membership_server.cpp.o"
  "CMakeFiles/vsgc_membership.dir/membership_server.cpp.o.d"
  "CMakeFiles/vsgc_membership.dir/view.cpp.o"
  "CMakeFiles/vsgc_membership.dir/view.cpp.o.d"
  "libvsgc_membership.a"
  "libvsgc_membership.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vsgc_membership.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
