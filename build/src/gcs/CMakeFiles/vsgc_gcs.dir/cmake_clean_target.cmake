file(REMOVE_RECURSE
  "libvsgc_gcs.a"
)
