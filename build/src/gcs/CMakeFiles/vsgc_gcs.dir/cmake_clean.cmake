file(REMOVE_RECURSE
  "CMakeFiles/vsgc_gcs.dir/gcs_endpoint.cpp.o"
  "CMakeFiles/vsgc_gcs.dir/gcs_endpoint.cpp.o.d"
  "CMakeFiles/vsgc_gcs.dir/vs_rfifo_ts_endpoint.cpp.o"
  "CMakeFiles/vsgc_gcs.dir/vs_rfifo_ts_endpoint.cpp.o.d"
  "CMakeFiles/vsgc_gcs.dir/wv_rfifo_endpoint.cpp.o"
  "CMakeFiles/vsgc_gcs.dir/wv_rfifo_endpoint.cpp.o.d"
  "libvsgc_gcs.a"
  "libvsgc_gcs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vsgc_gcs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
