# Empty dependencies file for vsgc_gcs.
# This may be replaced when dependencies are built.
