
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gcs/gcs_endpoint.cpp" "src/gcs/CMakeFiles/vsgc_gcs.dir/gcs_endpoint.cpp.o" "gcc" "src/gcs/CMakeFiles/vsgc_gcs.dir/gcs_endpoint.cpp.o.d"
  "/root/repo/src/gcs/vs_rfifo_ts_endpoint.cpp" "src/gcs/CMakeFiles/vsgc_gcs.dir/vs_rfifo_ts_endpoint.cpp.o" "gcc" "src/gcs/CMakeFiles/vsgc_gcs.dir/vs_rfifo_ts_endpoint.cpp.o.d"
  "/root/repo/src/gcs/wv_rfifo_endpoint.cpp" "src/gcs/CMakeFiles/vsgc_gcs.dir/wv_rfifo_endpoint.cpp.o" "gcc" "src/gcs/CMakeFiles/vsgc_gcs.dir/wv_rfifo_endpoint.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/vsgc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/vsgc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/vsgc_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/membership/CMakeFiles/vsgc_membership.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
