file(REMOVE_RECURSE
  "CMakeFiles/vsgc_baseline.dir/two_round_endpoint.cpp.o"
  "CMakeFiles/vsgc_baseline.dir/two_round_endpoint.cpp.o.d"
  "libvsgc_baseline.a"
  "libvsgc_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vsgc_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
