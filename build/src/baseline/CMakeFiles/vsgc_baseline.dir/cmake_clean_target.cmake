file(REMOVE_RECURSE
  "libvsgc_baseline.a"
)
