# Empty compiler generated dependencies file for vsgc_baseline.
# This may be replaced when dependencies are built.
