file(REMOVE_RECURSE
  "libvsgc_app.a"
)
