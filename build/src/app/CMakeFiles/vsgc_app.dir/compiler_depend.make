# Empty compiler generated dependencies file for vsgc_app.
# This may be replaced when dependencies are built.
