file(REMOVE_RECURSE
  "CMakeFiles/vsgc_app.dir/causal_order.cpp.o"
  "CMakeFiles/vsgc_app.dir/causal_order.cpp.o.d"
  "CMakeFiles/vsgc_app.dir/replicated_kv.cpp.o"
  "CMakeFiles/vsgc_app.dir/replicated_kv.cpp.o.d"
  "CMakeFiles/vsgc_app.dir/total_order.cpp.o"
  "CMakeFiles/vsgc_app.dir/total_order.cpp.o.d"
  "libvsgc_app.a"
  "libvsgc_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vsgc_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
