file(REMOVE_RECURSE
  "CMakeFiles/transport_reset_test.dir/transport_reset_test.cpp.o"
  "CMakeFiles/transport_reset_test.dir/transport_reset_test.cpp.o.d"
  "transport_reset_test"
  "transport_reset_test.pdb"
  "transport_reset_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transport_reset_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
