# Empty dependencies file for transport_reset_test.
# This may be replaced when dependencies are built.
