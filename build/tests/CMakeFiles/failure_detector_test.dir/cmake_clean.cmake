file(REMOVE_RECURSE
  "CMakeFiles/failure_detector_test.dir/failure_detector_test.cpp.o"
  "CMakeFiles/failure_detector_test.dir/failure_detector_test.cpp.o.d"
  "failure_detector_test"
  "failure_detector_test.pdb"
  "failure_detector_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/failure_detector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
