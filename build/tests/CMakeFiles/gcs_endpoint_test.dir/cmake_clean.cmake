file(REMOVE_RECURSE
  "CMakeFiles/gcs_endpoint_test.dir/gcs_endpoint_test.cpp.o"
  "CMakeFiles/gcs_endpoint_test.dir/gcs_endpoint_test.cpp.o.d"
  "gcs_endpoint_test"
  "gcs_endpoint_test.pdb"
  "gcs_endpoint_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gcs_endpoint_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
