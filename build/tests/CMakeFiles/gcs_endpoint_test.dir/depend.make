# Empty dependencies file for gcs_endpoint_test.
# This may be replaced when dependencies are built.
