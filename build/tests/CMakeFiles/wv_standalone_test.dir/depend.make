# Empty dependencies file for wv_standalone_test.
# This may be replaced when dependencies are built.
