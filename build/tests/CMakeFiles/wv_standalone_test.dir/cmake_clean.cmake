file(REMOVE_RECURSE
  "CMakeFiles/wv_standalone_test.dir/wv_standalone_test.cpp.o"
  "CMakeFiles/wv_standalone_test.dir/wv_standalone_test.cpp.o.d"
  "wv_standalone_test"
  "wv_standalone_test.pdb"
  "wv_standalone_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wv_standalone_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
