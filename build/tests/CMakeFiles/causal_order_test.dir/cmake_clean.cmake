file(REMOVE_RECURSE
  "CMakeFiles/causal_order_test.dir/causal_order_test.cpp.o"
  "CMakeFiles/causal_order_test.dir/causal_order_test.cpp.o.d"
  "causal_order_test"
  "causal_order_test.pdb"
  "causal_order_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/causal_order_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
