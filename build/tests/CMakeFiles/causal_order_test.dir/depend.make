# Empty dependencies file for causal_order_test.
# This may be replaced when dependencies are built.
