file(REMOVE_RECURSE
  "CMakeFiles/membership_protocol_test.dir/membership_protocol_test.cpp.o"
  "CMakeFiles/membership_protocol_test.dir/membership_protocol_test.cpp.o.d"
  "membership_protocol_test"
  "membership_protocol_test.pdb"
  "membership_protocol_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/membership_protocol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
