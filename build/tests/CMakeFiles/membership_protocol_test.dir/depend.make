# Empty dependencies file for membership_protocol_test.
# This may be replaced when dependencies are built.
