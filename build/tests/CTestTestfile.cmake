# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/smoke_test[1]_include.cmake")
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/transport_test[1]_include.cmake")
include("/root/repo/build/tests/membership_test[1]_include.cmake")
include("/root/repo/build/tests/gcs_endpoint_test[1]_include.cmake")
include("/root/repo/build/tests/forwarding_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/app_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_test[1]_include.cmake")
include("/root/repo/build/tests/crash_recovery_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/spec_checker_test[1]_include.cmake")
include("/root/repo/build/tests/view_test[1]_include.cmake")
include("/root/repo/build/tests/hierarchy_test[1]_include.cmake")
include("/root/repo/build/tests/codec_test[1]_include.cmake")
include("/root/repo/build/tests/failure_detector_test[1]_include.cmake")
include("/root/repo/build/tests/transport_reset_test[1]_include.cmake")
include("/root/repo/build/tests/membership_protocol_test[1]_include.cmake")
include("/root/repo/build/tests/world_test[1]_include.cmake")
include("/root/repo/build/tests/causal_order_test[1]_include.cmake")
include("/root/repo/build/tests/determinism_test[1]_include.cmake")
include("/root/repo/build/tests/wv_standalone_test[1]_include.cmake")
