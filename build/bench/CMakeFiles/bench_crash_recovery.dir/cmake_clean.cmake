file(REMOVE_RECURSE
  "CMakeFiles/bench_crash_recovery.dir/bench_crash_recovery.cpp.o"
  "CMakeFiles/bench_crash_recovery.dir/bench_crash_recovery.cpp.o.d"
  "bench_crash_recovery"
  "bench_crash_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_crash_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
