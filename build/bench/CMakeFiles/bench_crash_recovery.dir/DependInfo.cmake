
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_crash_recovery.cpp" "bench/CMakeFiles/bench_crash_recovery.dir/bench_crash_recovery.cpp.o" "gcc" "bench/CMakeFiles/bench_crash_recovery.dir/bench_crash_recovery.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/app/CMakeFiles/vsgc_app.dir/DependInfo.cmake"
  "/root/repo/build/src/gcs/CMakeFiles/vsgc_gcs.dir/DependInfo.cmake"
  "/root/repo/build/src/spec/CMakeFiles/vsgc_spec.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/vsgc_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/membership/CMakeFiles/vsgc_membership.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/vsgc_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/vsgc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/vsgc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
