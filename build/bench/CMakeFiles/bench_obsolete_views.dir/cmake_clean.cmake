file(REMOVE_RECURSE
  "CMakeFiles/bench_obsolete_views.dir/bench_obsolete_views.cpp.o"
  "CMakeFiles/bench_obsolete_views.dir/bench_obsolete_views.cpp.o.d"
  "bench_obsolete_views"
  "bench_obsolete_views.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_obsolete_views.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
