# Empty dependencies file for bench_obsolete_views.
# This may be replaced when dependencies are built.
