file(REMOVE_RECURSE
  "CMakeFiles/bench_total_order.dir/bench_total_order.cpp.o"
  "CMakeFiles/bench_total_order.dir/bench_total_order.cpp.o.d"
  "bench_total_order"
  "bench_total_order.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_total_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
