# Empty dependencies file for bench_total_order.
# This may be replaced when dependencies are built.
