file(REMOVE_RECURSE
  "CMakeFiles/ordered_chat.dir/ordered_chat.cpp.o"
  "CMakeFiles/ordered_chat.dir/ordered_chat.cpp.o.d"
  "ordered_chat"
  "ordered_chat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ordered_chat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
