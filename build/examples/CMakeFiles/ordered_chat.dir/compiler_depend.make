# Empty compiler generated dependencies file for ordered_chat.
# This may be replaced when dependencies are built.
