// E4 — Forwarding strategies (Section 5.2.2): Simple vs MinCopies.
//
// Scenario: sender p1's messages reach only half the group before p1 is
// excluded; the committed members must forward the missing messages to the
// rest before the new view installs. Claim: the Simple strategy may ship
// multiple copies per missing message (every committed member forwards);
// MinCopies deterministically picks one forwarder per message — near-minimal
// copies — at the price of waiting for the membership view and all sync
// messages.
#include "bench/helpers.hpp"
#include "bench/worlds.hpp"

using namespace vsgc;
using namespace vsgc::bench;

namespace {

struct Result {
  std::uint64_t forwarded_copies;
  double recovery_ms;  // reconfiguration start -> last member in new view
  bool complete;
};

Result run_case(int n, int missing_msgs, gcs::ForwardingKind kind,
                obs::BenchArtifact& art, obs::Registry& reg) {
  net::Network::Config cfg;
  GcsBenchWorld w(n, cfg, /*seed=*/7, kind);
  ViewTimeRecorder rec;
  w.trace.subscribe(rec);

  w.schedule_change(0, 10 * sim::kMillisecond, w.all());
  w.run_until(sim::kSecond);

  // Half the group (the "far" half) loses its links to p1.
  for (int i = n / 2; i < n; ++i) {
    w.network.set_link_up(net::node_of(w.pid(0)), net::node_of(w.pid(i)),
                          false);
  }
  for (int k = 0; k < missing_msgs; ++k) {
    w.endpoints[0]->send("lost" + std::to_string(k));
  }
  w.run_until(w.sim.now() + sim::kSecond);

  // p1 is excluded; the rest reconfigure.
  w.endpoints[0]->crash();
  w.transports[0]->crash();
  std::set<ProcessId> rest;
  for (int i = 1; i < n; ++i) rest.insert(w.pid(i));
  const sim::Time t0 = w.sim.now();
  for (ProcessId p : rest) w.oracle.start_change_to(p, rest);
  w.sim.schedule(10 * sim::kMillisecond, [&w, rest]() {
    const View v = w.oracle.make_view(rest);
    for (ProcessId p : rest) w.oracle.deliver_view_to(p, v);
  });
  w.run_until(t0 + 30 * sim::kSecond);

  Result r{};
  for (std::size_t i = 1; i < w.endpoints.size(); ++i) {
    r.forwarded_copies += w.endpoints[i]->vs_stats().forwards_sent;
    record_vs_stats(reg, w.pid(static_cast<int>(i)),
                    w.endpoints[i]->vs_stats());
  }
  record_network_stats(reg, w.network);
  art.tally(w.sim);
  sim::Time latest = -1;
  r.complete = true;
  for (ProcessId p : rest) {
    const auto it = rec.views.find(p);
    if (it == rec.views.end() || it->second.empty()) {
      r.complete = false;
      continue;
    }
    latest = std::max(latest, it->second.back().second);
  }
  r.recovery_ms = ms(latest - t0);
  return r;
}

}  // namespace

int main() {
  std::cout << "E4: forwarding strategies — copies shipped and recovery time\n";
  std::cout << "(half the group misses the excluded sender's messages)\n";
  obs::BenchArtifact art("forwarding");
  art.config("seed") = 7;
  obs::Registry reg;
  Table t({"group size", "missing msgs", "strategy", "fwd copies",
           "recovery (ms)", "ok"});
  for (int n : {4, 6, 10}) {
    for (int m : {1, 5, 20}) {
      for (auto kind :
           {gcs::ForwardingKind::kSimple, gcs::ForwardingKind::kMinCopies}) {
        const Result r = run_case(n, m, kind, art, reg);
        const char* strategy =
            kind == gcs::ForwardingKind::kSimple ? "simple" : "min-copies";
        t.row(n, m, strategy, r.forwarded_copies, r.recovery_ms,
              r.complete ? "yes" : "NO");
        obs::JsonValue& row = art.add_result();
        row["group_size"] = n;
        row["missing_msgs"] = m;
        row["strategy"] = strategy;
        row["forwarded_copies"] = r.forwarded_copies;
        row["recovery_ms"] = r.recovery_ms;
        row["complete"] = r.complete;
      }
    }
  }
  t.print("forwarded copies vs strategy");

  // N-sweep rows in the BENCH_scale.json sweep shape (case/n/view_change_ms):
  // recovery after an excluded sender IS the view-change latency here, so the
  // E12 scaling tables can line these up against the scale bench directly.
  Table sweep_t({"N", "view change (ms)", "fwd copies"});
  for (int n : {4, 8, 16}) {
    const Result r = run_case(n, 5, gcs::ForwardingKind::kMinCopies, art, reg);
    sweep_t.row(n, r.recovery_ms, r.forwarded_copies);
    obs::JsonValue& row = art.add_result();
    row["case"] = "scale_sweep";
    row["n"] = n;
    row["view_change_ms"] = r.recovery_ms;
    row["forwarded_copies"] = r.forwarded_copies;
    row["complete"] = r.complete;
  }
  sweep_t.print("min-copies N-sweep (scale schema rows)");
  art.set_metrics(reg);
  art.write_file();

  std::cout << "\nShape check: min-copies ships ~ (missing msgs x missing "
               "members) copies exactly once; simple ships more (every "
               "committed member may forward).\n";
  return 0;
}
