// Bench harnesses: oracle-driven worlds for the paper's algorithm and the
// two-round baseline, with a membership-round model.
//
// The oracle lets a bench control exactly when start_change and view
// notifications fire, so it can model a membership service whose server
// round takes `membership_round` of simulated time — and measure how long
// the CLIENT-side virtual synchrony layer adds on top (the paper's E1 claim:
// its round runs in parallel with the membership round; the classic design
// serializes behind it).
#pragma once

#include <any>
#include <memory>
#include <set>
#include <vector>

#include "app/blocking_client.hpp"
#include "baseline/two_round_endpoint.hpp"
#include "gcs/gcs_endpoint.hpp"
#include "gcs/process.hpp"
#include "membership/oracle.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "spec/events.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace vsgc::bench {

/// Client for the baseline end-point: immediately acknowledges block
/// requests (same contract as app::BlockingClient).
class AutoBlockClient : public gcs::Client {
 public:
  explicit AutoBlockClient(baseline::TwoRoundEndpoint& ep) : ep_(ep) {
    ep.set_client(*this);
  }
  void deliver(ProcessId, const gcs::AppMsg&) override { ++delivered; }
  void view(const View&, const std::set<ProcessId>&) override { ++views; }
  void block() override { ep_.block_ok(); }

  int delivered = 0;
  int views = 0;

 private:
  baseline::TwoRoundEndpoint& ep_;
};

template <typename EndpointT, typename ClientT>
struct OracleBenchWorldBase {
  OracleBenchWorldBase(int n, net::Network::Config net_cfg, std::uint64_t seed)
      : network(sim, Rng(seed), net_cfg) {
    trace.set_recording(false);
    for (int i = 0; i < n; ++i) {
      const ProcessId p{static_cast<std::uint32_t>(i + 1)};
      transports.push_back(std::make_unique<transport::CoRfifoTransport>(
          sim, network, net::node_of(p)));
    }
  }

  ProcessId pid(int i) const {
    return ProcessId{static_cast<std::uint32_t>(i + 1)};
  }

  std::set<ProcessId> all() const {
    std::set<ProcessId> out;
    for (std::size_t i = 0; i < endpoints.size(); ++i) {
      out.insert(ProcessId{static_cast<std::uint32_t>(i + 1)});
    }
    return out;
  }

  void wire(int i, EndpointT* ep) {
    transports[static_cast<std::size_t>(i)]->set_deliver_handler(
        [ep](net::NodeId from, const std::any& payload) {
          ep->on_co_rfifo_deliver(net::process_of(from), payload);
        });
    oracle.attach(pid(i), *ep);
  }

  /// Schedule a full reconfiguration: start_change at `at`, membership view
  /// formed one `membership_round` later.
  void schedule_change(sim::Time at, sim::Time membership_round,
                       const std::set<ProcessId>& members) {
    sim.schedule_at(at, [this, members]() { oracle.start_change(members); });
    sim.schedule_at(at + membership_round,
                    [this, members]() { oracle.deliver_view(members); });
  }

  void run_until(sim::Time t) { sim.run_until(t); }

  sim::Simulator sim;
  /// Log lines carry simulated timestamps while this world is alive.
  ScopedSimClock log_clock{[this] { return sim.now(); }};
  spec::TraceBus trace;
  net::Network network;
  membership::OracleMembership oracle;
  std::vector<std::unique_ptr<transport::CoRfifoTransport>> transports;
  std::vector<std::unique_ptr<EndpointT>> endpoints;
  std::vector<std::unique_ptr<ClientT>> clients;
};

struct GcsBenchWorld
    : OracleBenchWorldBase<gcs::GcsEndpoint, app::BlockingClient> {
  GcsBenchWorld(int n, net::Network::Config net_cfg, std::uint64_t seed = 1,
                gcs::ForwardingKind fwd = gcs::ForwardingKind::kMinCopies)
      : OracleBenchWorldBase(n, net_cfg, seed) {
    for (int i = 0; i < n; ++i) {
      endpoints.push_back(std::make_unique<gcs::GcsEndpoint>(
          sim, *transports[static_cast<std::size_t>(i)], pid(i),
          gcs::make_strategy(fwd), &trace));
      clients.push_back(
          std::make_unique<app::BlockingClient>(*endpoints.back()));
      wire(i, endpoints.back().get());
    }
  }
};

struct BaselineBenchWorld
    : OracleBenchWorldBase<baseline::TwoRoundEndpoint, AutoBlockClient> {
  BaselineBenchWorld(int n, net::Network::Config net_cfg,
                     std::uint64_t seed = 1)
      : OracleBenchWorldBase(n, net_cfg, seed) {
    for (int i = 0; i < n; ++i) {
      endpoints.push_back(std::make_unique<baseline::TwoRoundEndpoint>(
          sim, *transports[static_cast<std::size_t>(i)], pid(i), &trace));
      clients.push_back(std::make_unique<AutoBlockClient>(*endpoints.back()));
      wire(i, endpoints.back().get());
    }
  }
};

}  // namespace vsgc::bench
