// Shared benchmark utilities: table printing and trace-based instrumentation.
//
// The benches measure SIMULATED time and message/byte counts — the metrics
// the paper's claims are about (message rounds, notifications, overhead) —
// so results are exactly reproducible across machines.
#pragma once

#include <iomanip>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "gcs/vs_rfifo_ts_endpoint.hpp"
#include "net/network.hpp"
#include "obs/artifact.hpp"
#include "obs/metrics.hpp"
#include "obs/metrics_collector.hpp"
#include "obs/trace_recorder.hpp"
#include "sim/time.hpp"
#include "spec/events.hpp"

namespace vsgc::bench {

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  template <typename... Ts>
  void row(Ts&&... cells) {
    std::vector<std::string> r;
    (r.push_back(fmt(std::forward<Ts>(cells))), ...);
    rows_.push_back(std::move(r));
  }

  void print(const std::string& title) const {
    std::cout << "\n== " << title << " ==\n";
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      width[c] = headers_[c].size();
      for (const auto& r : rows_) {
        if (c < r.size()) width[c] = std::max(width[c], r[c].size());
      }
    }
    print_row(headers_, width);
    std::string sep;
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      sep += std::string(width[c] + 2, '-');
      if (c + 1 < headers_.size()) sep += "+";
    }
    std::cout << sep << "\n";
    for (const auto& r : rows_) print_row(r, width);
  }

 private:
  static std::string fmt(const std::string& s) { return s; }
  static std::string fmt(const char* s) { return s; }
  static std::string fmt(double v) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(2) << v;
    return os.str();
  }
  template <typename T>
  static std::string fmt(T v) {
    return std::to_string(v);
  }

  void print_row(const std::vector<std::string>& r,
                 const std::vector<std::size_t>& width) const {
    for (std::size_t c = 0; c < r.size(); ++c) {
      std::cout << " " << std::setw(static_cast<int>(width[c])) << r[c] << " ";
      if (c + 1 < r.size()) std::cout << "|";
    }
    std::cout << "\n";
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline double ms(sim::Time t) {
  return static_cast<double>(t) / sim::kMillisecond;
}

/// Records the simulated time of GCS view deliveries and block events.
class ViewTimeRecorder : public spec::TraceSink {
 public:
  void on_event(const spec::Event& ev) override {
    if (const auto* v = std::get_if<spec::GcsView>(&ev.body)) {
      views[v->p].push_back({v->view.id, ev.at});
    } else if (const auto* b = std::get_if<spec::GcsBlock>(&ev.body)) {
      block_at[b->p] = ev.at;
    } else if (const auto* bo = std::get_if<spec::GcsBlockOk>(&ev.body)) {
      (void)bo;
    } else if (std::get_if<spec::GcsDeliver>(&ev.body) != nullptr) {
      deliveries.push_back(ev.at);
    }
  }

  /// Latest install time of view `id` across the given members, or -1.
  sim::Time install_time(ViewId id) const {
    sim::Time latest = -1;
    for (const auto& [p, list] : views) {
      for (const auto& [vid, at] : list) {
        if (vid == id) latest = std::max(latest, at);
      }
    }
    return latest;
  }

  std::size_t views_delivered_to(ProcessId p) const {
    auto it = views.find(p);
    return it == views.end() ? 0 : it->second.size();
  }

  std::map<ProcessId, std::vector<std::pair<ViewId, sim::Time>>> views;
  std::map<ProcessId, sim::Time> block_at;
  std::vector<sim::Time> deliveries;
};

/// Fold a network's packet/byte stats into a registry (counters aggregate
/// across every world one bench runs).
inline void record_network_stats(obs::Registry& reg, const net::Network& net) {
  const net::Network::Stats& s = net.stats();
  reg.counter("net.packets_sent").inc(s.packets_sent);
  reg.counter("net.packets_delivered").inc(s.packets_delivered);
  reg.counter("net.packets_dropped").inc(s.packets_dropped);
  reg.counter("net.bytes_sent").inc(s.bytes_sent);
  reg.gauge("net.max_packet_bytes")
      .max_of(static_cast<std::int64_t>(s.max_packet_bytes));
}

/// Fold one end-point's VS-layer stats into a registry, labeled by process —
/// this is where forwarding fan-out and sync cost reach the artifact (they
/// are internal actions, invisible on the trace bus).
inline void record_vs_stats(obs::Registry& reg, ProcessId p,
                            const gcs::VsRfifoTsEndpoint::VsStats& s) {
  const obs::Labels labels = obs::process_labels(p.value);
  reg.counter("gcs.sync_msgs_sent", labels).inc(s.sync_msgs_sent);
  reg.counter("gcs.sync_msgs_received", labels).inc(s.sync_msgs_received);
  reg.counter("gcs.sync_bytes_sent", labels).inc(s.sync_bytes_sent);
  reg.counter("gcs.aggregates_relayed", labels).inc(s.aggregates_relayed);
  reg.counter("gcs.forwards_sent", labels).inc(s.forwards_sent);
}

}  // namespace vsgc::bench
