// E1 — View-change latency: one round, in parallel with the membership.
//
// Claim (paper Sections 1, 5, 9): the client-side virtual synchrony round is
// tagged with locally unique start_change ids and therefore starts at the
// start_change notification, running IN PARALLEL with the membership
// servers' round. Classic algorithms ([7, 22]) must first learn a globally
// agreed identifier (the membership view), then run an extra agreement round
// before exchanging cuts — strictly AFTER the membership round.
//
// Setup: oracle membership with a modeled server round of `Dm`; client links
// with latency L. Expect ours ≈ max(Dm, block+sync round) and baseline ≈
// Dm + agree round + sync round — roughly 2x at Dm ≈ 2L, growing with the
// latency share of the client rounds. Group size should barely matter (all
// rounds are parallel multicasts).
#include "bench/helpers.hpp"
#include "bench/worlds.hpp"
#include "obs/span.hpp"

using namespace vsgc;
using namespace vsgc::bench;

namespace {

constexpr sim::Time kLatency = 25 * sim::kMillisecond;
constexpr sim::Time kMembershipRound = 2 * kLatency;

/// When `timeline` is non-null, the run additionally records every trace
/// event (for the Chrome-trace/JSONL export) and derives metrics into `reg`.
template <typename WorldT>
double measure_view_change(int n, obs::BenchArtifact& art, obs::Registry* reg,
                           obs::TraceRecorder* timeline) {
  net::Network::Config net_cfg;
  net_cfg.base_latency = kLatency;
  net_cfg.jitter = 0;
  std::unique_ptr<obs::MetricsCollector> collector;
  std::unique_ptr<obs::SpanCollector> spans;
  WorldT w(n, net_cfg);
  ViewTimeRecorder rec;
  w.trace.subscribe(rec);
  if (timeline != nullptr) {
    // Fine-grained span milestones (sync-message send, wire legs) so the
    // recorded timeline decomposes into view-change phases (DESIGN.md §10).
    w.trace.set_lifecycle(true);
    w.trace.subscribe(*timeline);
  }
  if (reg != nullptr) {
    collector = std::make_unique<obs::MetricsCollector>(*reg);
    spans = std::make_unique<obs::SpanCollector>(*reg);
    w.trace.subscribe(*collector);
    w.trace.subscribe(*spans);
  }

  // Initial convergence.
  w.schedule_change(0, kMembershipRound, w.all());
  w.run_until(2 * sim::kSecond);

  // Some traffic so cuts are non-trivial.
  for (auto& ep : w.endpoints) ep->send("payload");
  w.run_until(3 * sim::kSecond);

  // Measured reconfiguration.
  const sim::Time t0 = w.sim.now();
  w.schedule_change(t0, kMembershipRound, w.all());
  w.run_until(t0 + 30 * sim::kSecond);

  if (reg != nullptr) record_network_stats(*reg, w.network);

  art.tally(w.sim);
  // Latency = last member's installation of the new view, relative to t0.
  sim::Time latest = -1;
  for (const auto& [p, list] : rec.views) {
    if (list.empty()) return -1.0;
    latest = std::max(latest, list.back().second);
  }
  return ms(latest - t0);
}

}  // namespace

int main() {
  std::cout << "E1: view-change latency — one-round (paper) vs two-round "
               "pre-agreement baseline\n";
  std::cout << "client link latency = " << ms(kLatency)
            << " ms, membership server round = " << ms(kMembershipRound)
            << " ms\n";

  obs::BenchArtifact art("view_change");
  art.config("client_latency_ms") = ms(kLatency);
  art.config("membership_round_ms") = ms(kMembershipRound);
  obs::Registry reg;
  obs::TraceRecorder timeline;

  Table t({"group size", "ours (ms)", "baseline (ms)", "speedup"});
  for (int n : {2, 3, 4, 6, 8, 12, 16, 24}) {
    // The n=4 run of the paper's algorithm doubles as the exported timeline:
    // its Chrome trace shows the VS round overlapping the membership round.
    const bool exported = n == 4;
    const double ours = measure_view_change<GcsBenchWorld>(
        n, art, exported ? &reg : nullptr, exported ? &timeline : nullptr);
    const double base =
        measure_view_change<BaselineBenchWorld>(n, art, nullptr, nullptr);
    t.row(n, ours, base, base / ours);
    obs::JsonValue& row = art.add_result();
    row["group_size"] = n;
    row["ours_ms"] = ours;
    row["baseline_ms"] = base;
    row["speedup"] = base / ours;
  }
  t.print("view-change latency vs group size");

  // Per-phase decomposition of the exported n=4 run's measured
  // reconfiguration (its final view): for every member, the four phases
  // telescope to installed - start_change EXACTLY (obs::view_phases), so
  // each row's phase sum IS that member's end-to-end view-change latency.
  const obs::TraceAnalysis analysis = obs::analyze(timeline.events());
  if (!analysis.views.empty()) {
    const ViewId last = analysis.views.back().view;
    Table bt({"member", "blocking (us)", "sync send (us)",
              "membership wait (us)", "install wait (us)", "e2e (us)"});
    for (const obs::ViewSpan& vs : analysis.views) {
      if (!(vs.view == last)) continue;
      const obs::ViewPhases ph = obs::view_phases(vs);
      bt.row(static_cast<std::int64_t>(vs.p.value), ph.blocking, ph.sync_send,
             ph.membership_wait, ph.install_wait, ph.total);
      obs::JsonValue& row = art.add_result();
      row["row"] = "phase_breakdown";
      row["member"] = static_cast<std::int64_t>(vs.p.value);
      row["phase_blocking_us"] = ph.blocking;
      row["phase_sync_send_us"] = ph.sync_send;
      row["phase_membership_wait_us"] = ph.membership_wait;
      row["phase_install_wait_us"] = ph.install_wait;
      row["e2e_us"] = ph.total;
    }
    bt.print("view-change phase breakdown (n=4, measured reconfiguration)");
  }

  art.set_metrics(reg);
  const std::string dir = obs::BenchArtifact::output_dir();
  if (timeline.write_chrome_trace_file(dir + "/TRACE_view_change.json") &&
      timeline.write_jsonl_file(dir + "/TRACE_view_change.jsonl")) {
    std::cout << "[artifact] wrote " << dir
              << "/TRACE_view_change.json (open in https://ui.perfetto.dev)\n";
  } else {
    std::cerr << "obs: cannot write " << dir << "/TRACE_view_change.*\n";
  }
  art.write_file();

  std::cout << "\nShape check: ours ~ max(membership round, one client "
               "round); baseline ~ membership + two client rounds.\n";
  return 0;
}
