// E1 — View-change latency: one round, in parallel with the membership.
//
// Claim (paper Sections 1, 5, 9): the client-side virtual synchrony round is
// tagged with locally unique start_change ids and therefore starts at the
// start_change notification, running IN PARALLEL with the membership
// servers' round. Classic algorithms ([7, 22]) must first learn a globally
// agreed identifier (the membership view), then run an extra agreement round
// before exchanging cuts — strictly AFTER the membership round.
//
// Setup: oracle membership with a modeled server round of `Dm`; client links
// with latency L. Expect ours ≈ max(Dm, block+sync round) and baseline ≈
// Dm + agree round + sync round — roughly 2x at Dm ≈ 2L, growing with the
// latency share of the client rounds. Group size should barely matter (all
// rounds are parallel multicasts).
#include "bench/helpers.hpp"
#include "bench/worlds.hpp"

using namespace vsgc;
using namespace vsgc::bench;

namespace {

constexpr sim::Time kLatency = 25 * sim::kMillisecond;
constexpr sim::Time kMembershipRound = 2 * kLatency;

template <typename WorldT>
double measure_view_change(int n) {
  net::Network::Config net_cfg;
  net_cfg.base_latency = kLatency;
  net_cfg.jitter = 0;
  WorldT w(n, net_cfg);
  ViewTimeRecorder rec;
  w.trace.subscribe(rec);

  // Initial convergence.
  w.schedule_change(0, kMembershipRound, w.all());
  w.run_until(2 * sim::kSecond);

  // Some traffic so cuts are non-trivial.
  for (auto& ep : w.endpoints) ep->send("payload");
  w.run_until(3 * sim::kSecond);

  // Measured reconfiguration.
  const sim::Time t0 = w.sim.now();
  w.schedule_change(t0, kMembershipRound, w.all());
  w.run_until(t0 + 30 * sim::kSecond);

  // Latency = last member's installation of the new view, relative to t0.
  sim::Time latest = -1;
  for (const auto& [p, list] : rec.views) {
    if (list.empty()) return -1.0;
    latest = std::max(latest, list.back().second);
  }
  return ms(latest - t0);
}

}  // namespace

int main() {
  std::cout << "E1: view-change latency — one-round (paper) vs two-round "
               "pre-agreement baseline\n";
  std::cout << "client link latency = " << ms(kLatency)
            << " ms, membership server round = " << ms(kMembershipRound)
            << " ms\n";

  Table t({"group size", "ours (ms)", "baseline (ms)", "speedup"});
  for (int n : {2, 3, 4, 6, 8, 12, 16, 24}) {
    const double ours = measure_view_change<GcsBenchWorld>(n);
    const double base = measure_view_change<BaselineBenchWorld>(n);
    t.row(n, ours, base, base / ours);
  }
  t.print("view-change latency vs group size");

  std::cout << "\nShape check: ours ~ max(membership round, one client "
               "round); baseline ~ membership + two client rounds.\n";
  return 0;
}
