// E12 — Sublinear-scale protocol state (DESIGN.md §13).
//
// Claim: with interval-set acks, shared-channel multiplexing, and fixed-size
// groups, per-member protocol state and view-change latency stay flat as the
// CLIENT POPULATION grows — K groups x N members shares one CO_RFIFO session
// per peer pair instead of K x N sessions, and ack/retransmit bookkeeping is
// O(log runs), not O(window).
//
// The workload: N clients spread across ~N/8 overlapping 16-member groups
// (128 groups at N=1024), Zipf-distributed multicast traffic (hot groups get
// most of the load), a flash-crowd join into the hottest groups mid-run, and
// correlated failure waves (FailureInjector kWave: a random 10% slice of the
// population isolated in one bulk call, lifted after a hold) — all under the
// eventual-safety checkers per group.
//
// --check-sublinear fits log(metric) ~ e*log(N) over the sweep and fails if
// view-change latency or per-member resident bytes grows with exponent
// >= 1.15. A same-seed determinism run (N=64 twice, byte-compared JSONL)
// guards the whole optimized data plane.
#include <cmath>
#include <cstring>
#include <sstream>

#include "app/blocking_client.hpp"
#include "bench/helpers.hpp"
#include "gcs/gcs_endpoint.hpp"
#include "gcs/process.hpp"
#include "membership/oracle.hpp"
#include "net/network.hpp"
#include "obs/artifact.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_recorder.hpp"
#include "sim/failure_injector.hpp"
#include "spec/eventually.hpp"
#include "transport/channel_mux.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

using namespace vsgc;
using namespace vsgc::bench;

namespace {

constexpr sim::Time kMembershipRound = 10 * sim::kMillisecond;
constexpr sim::Time kTrafficStart = 200 * sim::kMillisecond;
constexpr sim::Time kTrafficWindow = 2 * sim::kSecond;
constexpr sim::Time kFlashAt = 1200 * sim::kMillisecond;
constexpr sim::Time kEnd = 4 * sim::kSecond;
constexpr sim::Time kSampleEvery = 100 * sim::kMillisecond;
constexpr int kGroupSize = 16;
constexpr int kFlashGroups = 2;
constexpr int kFlashJoiners = 8;

struct ScaleParams {
  int n = 64;
  std::uint64_t seed = 1;
  bool record_traces = false;  ///< per-group TraceRecorders (determinism run)

  int groups() const { return std::max(2, n / 8); }
};

/// One group's protocol slice: its own oracle epoch space, trace bus, and
/// checkers; endpoints live in the world (indexed by (group, member)).
struct GroupState {
  std::set<ProcessId> base;     ///< initial members
  std::set<ProcessId> joiners;  ///< flash-crowd join set (hot groups only)
  spec::TraceBus bus;
  spec::AllEventualCheckers checkers{2 * sim::kSecond};
  ViewTimeRecorder times;
  obs::TraceRecorder recorder;
  membership::OracleMembership oracle;
  ViewId initial_view = ViewId::zero();
  sim::Time initial_sc_at = 0;
  ViewId flash_view = ViewId::zero();
  sim::Time flash_sc_at = -1;
};

/// N clients, one shared transport + ChannelMux each, ~N/8 groups of 16
/// multiplexed over them (group g uses channel tag g+1).
struct ScaleWorld {
  explicit ScaleWorld(const ScaleParams& params)
      : p(params), network(sim, Rng(params.seed), net_config()) {
    for (int i = 0; i < p.n; ++i) {
      transports.push_back(std::make_unique<transport::CoRfifoTransport>(
          sim, network, net::node_of(pid(i))));
      muxes.push_back(
          std::make_unique<transport::ChannelMux>(*transports.back()));
    }
    // GroupStates live behind unique_ptr: each embeds a TraceBus whose sinks
    // (checkers, recorders) are registered by pointer, so it must never move.
    const int spread = p.n / p.groups();
    for (int g = 0; g < p.groups(); ++g) {
      groups.push_back(std::make_unique<GroupState>());
      GroupState& gs = *groups.back();
      gs.bus.set_recording(false);
      gs.checkers.attach(gs.bus);
      gs.bus.subscribe(gs.times);
      if (p.record_traces) gs.bus.subscribe(gs.recorder);
      const int start = g * spread;
      for (int k = 0; k < kGroupSize; ++k) {
        gs.base.insert(pid((start + k) % p.n));
      }
      if (g < kFlashGroups) {
        for (int k = 0; k < kFlashJoiners; ++k) {
          gs.joiners.insert(pid((start + kGroupSize + k) % p.n));
        }
      }
      for (ProcessId member : gs.base) add_endpoint(g, member);
      for (ProcessId member : gs.joiners) add_endpoint(g, member);
    }
  }

  static net::Network::Config net_config() {
    net::Network::Config cfg;
    cfg.drop_probability = 0.0;
    return cfg;
  }

  ProcessId pid(int i) const {
    return ProcessId{static_cast<std::uint32_t>(i + 1)};
  }

  void add_endpoint(int g, ProcessId member) {
    GroupState& gs = *groups[static_cast<std::size_t>(g)];
    const std::uint32_t tag = static_cast<std::uint32_t>(g + 1);
    transport::ChannelMux& mux = *muxes[member.value - 1];
    const transport::Channel ch = mux.open(tag, nullptr);
    auto ep = std::make_unique<gcs::GcsEndpoint>(
        sim, ch, member, gcs::make_strategy(gcs::ForwardingKind::kMinCopies),
        &gs.bus);
    mux.open(tag, [raw = ep.get()](net::NodeId from, const std::any& payload) {
      raw->on_co_rfifo_deliver(net::process_of(from), payload);
    });
    gs.oracle.attach(member, *ep);
    clients[{g, member}] = std::make_unique<app::BlockingClient>(*ep);
    endpoints[{g, member}] = std::move(ep);
  }

  /// Schedule a full reconfiguration of group g at `at`.
  void schedule_change(int g, sim::Time at, const std::set<ProcessId>& members,
                       bool flash) {
    sim.schedule_at(at, [this, g, members, flash]() {
      GroupState& gs = *groups[static_cast<std::size_t>(g)];
      (flash ? gs.flash_sc_at : gs.initial_sc_at) = sim.now();
      gs.oracle.start_change(members);
    });
    sim.schedule_at(at + kMembershipRound, [this, g, members, flash]() {
      GroupState& gs = *groups[static_cast<std::size_t>(g)];
      const View v = gs.oracle.deliver_view(members);
      (flash ? gs.flash_view : gs.initial_view) = v.id;
    });
  }

  std::size_t resident_bytes() const {
    std::size_t total = 0;
    for (const auto& t : transports) total += t->resident_bytes();
    return total;
  }

  ScaleParams p;
  sim::Simulator sim;
  ScopedSimClock log_clock{[this] { return sim.now(); }};
  net::Network network;
  std::vector<std::unique_ptr<transport::CoRfifoTransport>> transports;
  std::vector<std::unique_ptr<transport::ChannelMux>> muxes;
  std::vector<std::unique_ptr<GroupState>> groups;
  std::map<std::pair<int, ProcessId>, std::unique_ptr<gcs::GcsEndpoint>>
      endpoints;
  std::map<std::pair<int, ProcessId>, std::unique_ptr<app::BlockingClient>>
      clients;
};

struct Row {
  int n = 0;
  int groups = 0;
  double view_change_ms = 0;
  double flash_join_ms = 0;
  double msgs_per_sec = 0;
  double bytes_per_msg = 0;
  double resident_per_member = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t tolerated = 0;
  std::uint64_t sack_runs = 0;
  std::uint64_t sack_suppressed = 0;
  int waves = 0;
  std::string trace;  ///< concatenated per-group JSONL (determinism runs)
};

/// Zipf(s=1) sampler over group ranks: group 0 is the hottest.
class ZipfGroups {
 public:
  explicit ZipfGroups(int groups) {
    double total = 0;
    for (int g = 0; g < groups; ++g) {
      total += 1.0 / static_cast<double>(g + 1);
      cumulative_.push_back(total);
    }
  }

  int sample(Rng& rng) const {
    const double u = static_cast<double>(rng.next_below(1u << 30)) /
                     static_cast<double>(1u << 30) * cumulative_.back();
    for (std::size_t g = 0; g < cumulative_.size(); ++g) {
      if (u < cumulative_[g]) return static_cast<int>(g);
    }
    return static_cast<int>(cumulative_.size()) - 1;
  }

 private:
  std::vector<double> cumulative_;
};

Row measure(const ScaleParams& params, obs::BenchArtifact& art,
            obs::Registry& reg) {
  ScaleWorld w(params);
  Rng traffic_rng(params.seed * 31 + 7);
  const ZipfGroups zipf(params.groups());

  // Initial views, staggered a little so oracle rounds don't all land on one
  // simulated instant.
  for (int g = 0; g < params.groups(); ++g) {
    const sim::Time at = 10 * sim::kMillisecond + (g % 8) * sim::kMillisecond;
    w.schedule_change(g, at, w.groups[static_cast<std::size_t>(g)]->base,
                      /*flash=*/false);
  }

  // Zipf traffic: 2N multicasts across the window, heavily skewed toward the
  // hot groups. Senders are drawn uniformly within the sampled group.
  const int msgs = 2 * params.n;
  for (int i = 0; i < msgs; ++i) {
    const sim::Time at =
        kTrafficStart + (kTrafficWindow * i) / std::max(1, msgs);
    const int g = zipf.sample(traffic_rng);
    const GroupState& gs = *w.groups[static_cast<std::size_t>(g)];
    auto it = gs.base.begin();
    std::advance(it, static_cast<std::ptrdiff_t>(
                         traffic_rng.next_below(gs.base.size())));
    const ProcessId sender = *it;
    w.sim.schedule_at(at, [&w, g, sender, i]() {
      w.clients.at({g, sender})->send("z" + std::to_string(i));
    });
  }

  // Flash crowd: the hottest groups double-step their membership mid-run.
  for (int g = 0; g < std::min(kFlashGroups, params.groups()); ++g) {
    GroupState& gs = *w.groups[static_cast<std::size_t>(g)];
    std::set<ProcessId> grown = gs.base;
    grown.insert(gs.joiners.begin(), gs.joiners.end());
    w.schedule_change(g, kFlashAt + g * sim::kMillisecond, grown,
                      /*flash=*/true);
  }

  // Peak resident-state sampling across the run.
  std::size_t peak_resident = 0;
  for (sim::Time at = 50 * sim::kMillisecond; at < kEnd; at += kSampleEvery) {
    w.sim.schedule_at(at, [&w, &peak_resident]() {
      peak_resident = std::max(peak_resident, w.resident_bytes());
    });
  }

  w.sim.run_until(100 * sim::kMillisecond);

  // Correlated failure waves: isolate a random 10% slice in one bulk call,
  // lift it after a hold. Only the wave action is enabled.
  sim::FaultTarget target;
  target.sim = &w.sim;
  target.num_processes = params.n;
  target.set_isolated = [&w](const std::vector<int>& nodes, bool isolated) {
    std::set<net::NodeId> slice;
    for (int v : nodes) slice.insert(net::node_of(w.pid(v)));
    if (isolated) w.network.isolate(slice);
    else w.network.deisolate(slice);
  };
  target.heal = [&w] { w.network.heal(); };
  sim::FailureInjector::Policy policy;
  policy.steps = 3;
  policy.min_gap = 600 * sim::kMillisecond;
  policy.max_gap = 800 * sim::kMillisecond;
  policy.w_traffic = 0;
  policy.w_crash = 0;
  policy.w_recover = 0;
  policy.w_leave = 0;
  policy.w_rejoin = 0;
  policy.w_partition = 0;
  policy.w_heal = 0;
  policy.w_link = 0;
  policy.w_drop_spike = 0;
  policy.w_delay_burst = 0;
  policy.w_server_outage = 0;
  policy.w_crash_in_delivery = 0;
  policy.w_partition_in_view_change = 0;
  policy.w_wave = 1;
  policy.wave_fraction = 0.1;
  policy.spike_len = 300 * sim::kMillisecond;
  sim::FailureInjector injector(target, policy, params.seed);
  injector.run_churn();
  injector.stabilize();
  w.sim.run_until(kEnd);

  Row r;
  r.n = params.n;
  r.groups = params.groups();
  int waves = 0;
  for (const sim::FaultOp& op : injector.script().ops) {
    if (op.kind == sim::FaultOp::Kind::kWave) ++waves;
  }
  r.waves = waves;

  double latency_sum = 0;
  int latency_rows = 0;
  double flash_sum = 0;
  int flash_rows = 0;
  std::ostringstream trace_cat;
  for (const auto& gp : w.groups) {
    GroupState& gs = *gp;
    gs.checkers.finalize();
    r.tolerated += gs.checkers.tolerated();
    r.deliveries += gs.times.deliveries.size();
    const sim::Time installed = gs.times.install_time(gs.initial_view);
    if (installed >= 0) {
      latency_sum += ms(installed - gs.initial_sc_at);
      ++latency_rows;
    }
    if (gs.flash_sc_at >= 0) {
      const sim::Time flashed = gs.times.install_time(gs.flash_view);
      if (flashed >= 0) {
        flash_sum += ms(flashed - gs.flash_sc_at);
        ++flash_rows;
      }
    }
    if (params.record_traces) {
      obs::write_jsonl(gs.recorder.events(), trace_cat);
    }
  }
  r.view_change_ms = latency_rows > 0 ? latency_sum / latency_rows : -1;
  r.flash_join_ms = flash_rows > 0 ? flash_sum / flash_rows : -1;
  r.msgs_per_sec = static_cast<double>(r.deliveries) /
                   (static_cast<double>(kEnd) / sim::kSecond);
  r.bytes_per_msg =
      static_cast<double>(w.network.stats().bytes_sent) /
      static_cast<double>(std::max<std::uint64_t>(1, r.deliveries));
  peak_resident = std::max(peak_resident, w.resident_bytes());
  r.resident_per_member =
      static_cast<double>(peak_resident) / static_cast<double>(params.n);
  for (const auto& t : w.transports) {
    r.sack_runs += t->stats().sack_runs_sent;
    r.sack_suppressed += t->stats().sack_suppressed;
  }
  r.trace = trace_cat.str();

  record_network_stats(reg, w.network);
  reg.counter("scale.sack_runs_sent").inc(r.sack_runs);
  reg.counter("scale.sack_suppressed").inc(r.sack_suppressed);
  reg.counter("scale.checker_tolerated").inc(r.tolerated);
  reg.gauge("scale.peak_resident_bytes")
      .max_of(static_cast<std::int64_t>(peak_resident));
  art.tally(w.sim);
  return r;
}

/// Least-squares slope of log(y) against log(n): the growth exponent.
double fit_exponent(const std::vector<std::pair<int, double>>& points) {
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  const double count = static_cast<double>(points.size());
  for (const auto& [n, y] : points) {
    const double x = std::log(static_cast<double>(n));
    const double ly = std::log(std::max(y, 1e-9));
    sx += x;
    sy += ly;
    sxx += x * x;
    sxy += x * ly;
  }
  const double denom = count * sxx - sx * sx;
  return denom == 0 ? 0 : (count * sxy - sx * sy) / denom;
}

}  // namespace

int main(int argc, char** argv) {
  bool check_sublinear = false;
  double max_exponent = 1.15;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check-sublinear") == 0) {
      check_sublinear = true;
    } else if (std::strcmp(argv[i], "--max-exponent") == 0 && i + 1 < argc) {
      max_exponent = std::atof(argv[++i]);
    } else {
      std::cerr << "usage: bench_scale [--check-sublinear] "
                   "[--max-exponent E]\n";
      return 2;
    }
  }

  std::cout << "E12: sublinear-scale protocol state — N-sweep with Zipf "
               "traffic, flash crowds, failure waves\n";
  obs::BenchArtifact art("scale");
  art.config("group_size") = kGroupSize;
  art.config("membership_round_ms") = ms(kMembershipRound);
  art.config("wave_fraction") = 0.1;
  art.config("zipf_s") = 1.0;
  obs::Registry reg;
  Table t({"N", "groups", "view change (ms)", "flash join (ms)", "msgs/s",
           "bytes/msg", "resident B/member", "waves", "tolerated"});

  std::vector<Row> rows;
  for (int n : {64, 256, 1024}) {
    ScaleParams params;
    params.n = n;
    rows.push_back(measure(params, art, reg));
    const Row& r = rows.back();
    t.row(r.n, r.groups, r.view_change_ms, r.flash_join_ms, r.msgs_per_sec,
          r.bytes_per_msg, r.resident_per_member, r.waves, r.tolerated);
    obs::JsonValue& row = art.add_result();
    row["case"] = "sweep";
    row["n"] = r.n;
    row["groups"] = r.groups;
    row["view_change_ms"] = r.view_change_ms;
    row["flash_join_ms"] = r.flash_join_ms;
    row["msgs_per_sec"] = r.msgs_per_sec;
    row["bytes_per_msg"] = r.bytes_per_msg;
    row["resident_bytes_per_member"] = r.resident_per_member;
    row["deliveries"] = r.deliveries;
    row["waves"] = r.waves;
    row["checker_tolerated"] = r.tolerated;
    row["sack_runs_sent"] = r.sack_runs;
    row["sack_suppressed"] = r.sack_suppressed;
  }
  t.print("scale sweep (fixed 16-member groups, ~N/8 groups)");

  std::vector<std::pair<int, double>> latency_points, resident_points;
  for (const Row& r : rows) {
    latency_points.push_back({r.n, r.view_change_ms});
    resident_points.push_back({r.n, r.resident_per_member});
  }
  const double latency_exp = fit_exponent(latency_points);
  const double resident_exp = fit_exponent(resident_points);
  bool gates_ok = true;
  for (const auto& [metric, exponent] :
       {std::pair<const char*, double>{"view_change_ms", latency_exp},
        std::pair<const char*, double>{"resident_bytes_per_member",
                                       resident_exp}}) {
    const bool sublinear = exponent < max_exponent;
    gates_ok = gates_ok && sublinear;
    std::cout << "fit " << metric << ": exponent "
              << obs::format_double(exponent) << " (gate < " << max_exponent
              << ") " << (sublinear ? "OK" : "FAIL") << "\n";
    obs::JsonValue& row = art.add_result();
    row["case"] = "fit";
    row["metric"] = metric;
    row["exponent"] = exponent;
    row["sublinear"] = sublinear;
  }

  // Same-seed determinism: the whole optimized data plane (interval acks,
  // SACK retransmits, multiplexed channels) must replay byte-identically.
  ScaleParams det;
  det.n = 64;
  det.record_traces = true;
  obs::BenchArtifact scratch("scale_scratch");  // never written
  obs::Registry scratch_reg;
  const Row first = measure(det, scratch, scratch_reg);
  const Row second = measure(det, scratch, scratch_reg);
  const bool identical =
      !first.trace.empty() && first.trace == second.trace;
  std::cout << "determinism (N=64, same seed twice): "
            << (identical ? "byte-identical" : "DIVERGED") << " ("
            << first.trace.size() << " JSONL bytes)\n";
  obs::JsonValue& det_row = art.add_result();
  det_row["case"] = "determinism";
  det_row["n"] = det.n;
  det_row["identical"] = identical;
  det_row["trace_bytes"] = first.trace.size();

  art.set_metrics(reg);
  art.write_file();

  if (!identical) return 1;
  if (check_sublinear && !gates_ok) return 1;
  return 0;
}
