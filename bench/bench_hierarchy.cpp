// E10 (ablation) — Two-tier sync dissemination (paper Section 9 extension,
// after Guo et al. [22]) and the Section 5.2.4 compact-sync optimization.
//
// Claim: direct all-to-all sync dissemination costs O(n^2) messages per
// reconfiguration; the two-tier hierarchy cuts this toward O(n·L) (one
// up-send per member plus leader relays) at the price of an extra hop in
// view-change latency. Compact syncs shave bytes on merges.
#include "bench/helpers.hpp"
#include "bench/worlds.hpp"

using namespace vsgc;
using namespace vsgc::bench;

namespace {

constexpr sim::Time kMembershipRound = 10 * sim::kMillisecond;

gcs::SyncRouting two_tier(int n, int groups) {
  gcs::SyncRouting routing;
  routing.mode = gcs::SyncRouting::Mode::kTwoTier;
  const int per_group = (n + groups - 1) / groups;
  for (int i = 0; i < n; ++i) {
    routing.leader_of[ProcessId{static_cast<std::uint32_t>(i + 1)}] =
        ProcessId{static_cast<std::uint32_t>((i / per_group) * per_group + 1)};
  }
  return routing;
}

struct Result {
  std::uint64_t sync_msgs;  ///< sync copies + leader relays, per change
  std::uint64_t sync_bytes;
  double change_ms;
};

Result measure(int n, int groups /* 0 = direct */, obs::BenchArtifact& art,
               obs::Registry& reg) {
  net::Network::Config cfg;
  GcsBenchWorld w(n, cfg);
  if (groups > 0) {
    for (auto& ep : w.endpoints) ep->set_sync_routing(two_tier(n, groups));
  }
  ViewTimeRecorder rec;
  w.trace.subscribe(rec);
  w.schedule_change(0, kMembershipRound, w.all());
  w.run_until(2 * sim::kSecond);
  for (auto& ep : w.endpoints) ep->send("x");
  w.run_until(3 * sim::kSecond);

  std::uint64_t msgs_before = 0;
  std::uint64_t bytes_before = 0;
  for (auto& ep : w.endpoints) {
    msgs_before +=
        ep->vs_stats().sync_msgs_sent + ep->vs_stats().aggregates_relayed;
    bytes_before += ep->vs_stats().sync_bytes_sent;
  }
  const sim::Time t0 = w.sim.now();
  w.schedule_change(t0, kMembershipRound, w.all());
  w.run_until(t0 + 10 * sim::kSecond);

  Result r{};
  std::uint64_t msgs_after = 0;
  std::uint64_t bytes_after = 0;
  for (auto& ep : w.endpoints) {
    msgs_after +=
        ep->vs_stats().sync_msgs_sent + ep->vs_stats().aggregates_relayed;
    bytes_after += ep->vs_stats().sync_bytes_sent;
  }
  r.sync_msgs = msgs_after - msgs_before;
  r.sync_bytes = bytes_after - bytes_before;
  for (std::size_t i = 0; i < w.endpoints.size(); ++i) {
    record_vs_stats(reg, w.pid(static_cast<int>(i)),
                    w.endpoints[i]->vs_stats());
  }
  record_network_stats(reg, w.network);
  art.tally(w.sim);
  sim::Time latest = -1;
  for (const auto& [p, list] : rec.views) {
    if (!list.empty()) latest = std::max(latest, list.back().second);
  }
  r.change_ms = ms(latest - t0);
  return r;
}

}  // namespace

int main() {
  std::cout << "E10 (ablation): sync dissemination — direct vs two-tier\n";
  obs::BenchArtifact art("hierarchy");
  art.config("membership_round_ms") = ms(kMembershipRound);
  obs::Registry reg;
  Table t({"group size", "topology", "sync msgs/change", "sync bytes",
           "view change (ms)"});
  auto add_row = [&art](int n, const std::string& topology, const Result& r) {
    obs::JsonValue& row = art.add_result();
    row["group_size"] = n;
    row["topology"] = topology;
    row["sync_msgs_per_change"] = r.sync_msgs;
    row["sync_bytes"] = r.sync_bytes;
    row["view_change_ms"] = r.change_ms;
  };
  for (int n : {8, 16, 32}) {
    const Result direct = measure(n, 0, art, reg);
    t.row(n, "direct", direct.sync_msgs, direct.sync_bytes, direct.change_ms);
    add_row(n, "direct", direct);
    for (int groups : {2, 4}) {
      const Result tiered = measure(n, groups, art, reg);
      const std::string topology = std::to_string(groups) + " leaders";
      t.row(n, topology, tiered.sync_msgs, tiered.sync_bytes,
            tiered.change_ms);
      add_row(n, topology, tiered);
    }
  }
  t.print("sync dissemination cost per reconfiguration");

  // N-sweep rows in the BENCH_scale.json sweep shape (case/n/view_change_ms),
  // so the E12 scaling tables can cross-read sync-dissemination cost against
  // the scale bench without schema translation.
  Table sweep_t({"N", "topology", "view change (ms)", "sync msgs"});
  for (int n : {8, 16, 32, 64}) {
    const int leaders = n >= 16 ? 4 : 2;
    const Result r = measure(n, leaders, art, reg);
    sweep_t.row(n, std::to_string(leaders) + " leaders", r.change_ms,
                r.sync_msgs);
    obs::JsonValue& row = art.add_result();
    row["case"] = "scale_sweep";
    row["n"] = n;
    row["leaders"] = leaders;
    row["view_change_ms"] = r.change_ms;
    row["sync_msgs_per_change"] = r.sync_msgs;
    row["sync_bytes"] = r.sync_bytes;
  }
  sweep_t.print("two-tier N-sweep (scale schema rows)");
  art.set_metrics(reg);
  art.write_file();

  std::cout << "\nShape check: direct grows ~n^2; two-tier grows ~n·L with a "
               "modest latency penalty (extra relay hop).\n";
  return 0;
}
