// E7 — Crash and recovery without stable storage (Section 8), full stack.
//
// Measures (a) how long survivors take to exclude a crashed member (failure
// detection + membership round + one client round), and (b) how long a
// recovered member takes to rejoin under its original identity. Both scale
// with the failure detector's timeout, not with group size — the claim of a
// client-server membership design.
#include "app/world.hpp"
#include "bench/helpers.hpp"

using namespace vsgc;
using namespace vsgc::bench;

namespace {

struct Result {
  double exclude_ms;  // crash -> survivors install the smaller view
  double rejoin_ms;   // recover -> everyone installs the full view
};

Result run_case(int n, sim::Time fd_timeout, obs::BenchArtifact& art,
                obs::Registry& reg) {
  app::WorldConfig cfg;
  cfg.num_clients = n;
  cfg.attach_checkers = false;
  cfg.record_trace = false;
  cfg.server.fd.timeout = fd_timeout;
  cfg.server.fd.check_interval = fd_timeout / 5;
  app::World w(cfg);
  struct Tally {
    obs::BenchArtifact& art;
    obs::Registry& reg;
    app::World& w;
    ~Tally() {
      art.tally(w.sim());
      record_network_stats(reg, w.network());
    }
  } tally{art, reg, w};
  w.start();
  if (!w.run_until_converged(w.all_members(), 20 * sim::kSecond)) {
    return {-1, -1};
  }

  std::set<ProcessId> survivors = w.all_members();
  survivors.erase(ProcessId{static_cast<std::uint32_t>(n)});

  const sim::Time crash_at = w.sim().now();
  w.process(n - 1).crash();
  if (!w.run_until_converged(survivors, 60 * sim::kSecond)) return {-1, -1};
  const double exclude = ms(w.sim().now() - crash_at);

  const sim::Time recover_at = w.sim().now();
  w.process(n - 1).recover();
  if (!w.run_until_converged(w.all_members(), 60 * sim::kSecond)) {
    return {exclude, -1};
  }
  return {exclude, ms(w.sim().now() - recover_at)};
}

}  // namespace

int main() {
  std::cout << "E7: crash exclusion and recovery rejoin latency, full stack\n";
  obs::BenchArtifact art("crash_recovery");
  obs::Registry reg;
  Table t({"group size", "FD timeout (ms)", "exclude (ms)", "rejoin (ms)"});
  for (int n : {3, 6, 12}) {
    for (sim::Time fd :
         {100 * sim::kMillisecond, 250 * sim::kMillisecond,
          1000 * sim::kMillisecond}) {
      const Result r = run_case(n, fd, art, reg);
      t.row(n, ms(fd), r.exclude_ms, r.rejoin_ms);
      obs::JsonValue& row = art.add_result();
      row["group_size"] = n;
      row["fd_timeout_ms"] = ms(fd);
      row["exclude_ms"] = r.exclude_ms;
      row["rejoin_ms"] = r.rejoin_ms;
    }
  }
  t.print("fault handling latency");
  art.set_metrics(reg);
  art.write_file();

  std::cout << "\nShape check: exclusion ~ FD timeout + one membership round "
               "+ one client round, roughly flat in group size; rejoin needs "
               "no FD timeout, only rounds.\n";
  return 0;
}
