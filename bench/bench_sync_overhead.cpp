// E3 — Reconfiguration control-message overhead.
//
// Claim: the paper's design needs exactly ONE synchronization message per
// member per view change (tagged with the locally unique start_change id);
// the classic design sends an agree message AND a sync message per member —
// twice the control messages, plus the identifier pre-agreement the paper
// eliminates. Sync message size grows with the cut (one entry per member).
#include "bench/helpers.hpp"
#include "bench/worlds.hpp"

using namespace vsgc;
using namespace vsgc::bench;

namespace {

constexpr sim::Time kMembershipRound = 10 * sim::kMillisecond;

struct Overhead {
  std::uint64_t control_msgs;  // per view change, whole group
  std::uint64_t bytes;         // transport bytes during the change
};

Overhead measure_ours(int n, obs::BenchArtifact& art, obs::Registry& reg) {
  net::Network::Config cfg;
  GcsBenchWorld w(n, cfg);
  w.schedule_change(0, kMembershipRound, w.all());
  w.run_until(2 * sim::kSecond);
  for (auto& ep : w.endpoints) ep->send("x");
  w.run_until(3 * sim::kSecond);

  std::uint64_t bytes_before = 0;
  for (auto& tr : w.transports) bytes_before += tr->stats().bytes_sent;
  std::uint64_t sync_before = 0;
  for (auto& ep : w.endpoints) sync_before += ep->vs_stats().sync_msgs_sent;

  w.schedule_change(w.sim.now(), kMembershipRound, w.all());
  w.run_until(w.sim.now() + 5 * sim::kSecond);

  std::uint64_t bytes_after = 0;
  for (auto& tr : w.transports) bytes_after += tr->stats().bytes_sent;
  std::uint64_t sync_after = 0;
  for (auto& ep : w.endpoints) sync_after += ep->vs_stats().sync_msgs_sent;
  for (std::size_t i = 0; i < w.endpoints.size(); ++i) {
    record_vs_stats(reg, w.pid(static_cast<int>(i)), w.endpoints[i]->vs_stats());
  }
  record_network_stats(reg, w.network);
  art.tally(w.sim);
  return {sync_after - sync_before, bytes_after - bytes_before};
}

Overhead measure_baseline(int n, obs::BenchArtifact& art) {
  net::Network::Config cfg;
  BaselineBenchWorld w(n, cfg);
  w.schedule_change(0, kMembershipRound, w.all());
  w.run_until(2 * sim::kSecond);
  for (auto& ep : w.endpoints) ep->send("x");
  w.run_until(3 * sim::kSecond);

  std::uint64_t bytes_before = 0;
  for (auto& tr : w.transports) bytes_before += tr->stats().bytes_sent;
  std::uint64_t ctrl_before = 0;
  for (auto& ep : w.endpoints) {
    ctrl_before += ep->baseline_stats().agrees_sent +
                   ep->baseline_stats().sync_msgs_sent;
  }

  w.schedule_change(w.sim.now(), kMembershipRound, w.all());
  w.run_until(w.sim.now() + 5 * sim::kSecond);

  std::uint64_t bytes_after = 0;
  for (auto& tr : w.transports) bytes_after += tr->stats().bytes_sent;
  std::uint64_t ctrl_after = 0;
  for (auto& ep : w.endpoints) {
    ctrl_after += ep->baseline_stats().agrees_sent +
                  ep->baseline_stats().sync_msgs_sent;
  }
  art.tally(w.sim);
  return {ctrl_after - ctrl_before, bytes_after - bytes_before};
}

}  // namespace

int main() {
  std::cout << "E3: control overhead per view change (whole group)\n";
  obs::BenchArtifact art("sync_overhead");
  art.config("membership_round_ms") = ms(kMembershipRound);
  obs::Registry reg;
  Table t({"group size", "ours ctrl msgs", "baseline ctrl msgs",
           "ours bytes", "baseline bytes"});
  for (int n : {2, 4, 8, 16, 32}) {
    const Overhead ours = measure_ours(n, art, reg);
    const Overhead base = measure_baseline(n, art);
    t.row(n, ours.control_msgs, base.control_msgs, ours.bytes, base.bytes);
    obs::JsonValue& row = art.add_result();
    row["group_size"] = n;
    row["ours_ctrl_msgs"] = ours.control_msgs;
    row["baseline_ctrl_msgs"] = base.control_msgs;
    row["ours_bytes"] = ours.bytes;
    row["baseline_bytes"] = base.bytes;
  }
  t.print("control messages and bytes per reconfiguration");
  art.set_metrics(reg);
  art.write_file();

  std::cout << "\nShape check: ours sends exactly one sync per member; the "
               "baseline sends an agree AND a sync per member (2x), and its "
               "bytes include the extra round.\n";
  return 0;
}
