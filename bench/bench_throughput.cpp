// E2 — Steady-state within-view multicast throughput and delivery latency
// (Section 4.1.1's service, full stack: GCS over CO_RFIFO over the datagram
// network, real membership servers).
//
// Expect: latency ~ one network hop regardless of group size (parallel
// multicast); aggregate deliveries scale with group size; per-message wire
// cost grows linearly in fan-out.
#include "app/world.hpp"
#include "bench/helpers.hpp"
#include "obs/span.hpp"

using namespace vsgc;
using namespace vsgc::bench;

namespace {

struct Result {
  double msgs_per_sec = 0;
  double avg_latency_ms = 0;
  double bytes_per_msg = 0;
  // Per-phase p95s from the causal span layer (DESIGN.md §10); log2-bucket
  // resolution — wire is the transport leg, gate the delivery-condition wait.
  std::uint64_t wire_p95_us = 0;
  std::uint64_t gate_p95_us = 0;
  std::uint64_t e2e_p95_us = 0;
};

Result run_case(int n, int payload_bytes, int messages,
                obs::BenchArtifact& art, obs::Registry& reg) {
  app::WorldConfig cfg;
  cfg.num_clients = n;
  cfg.attach_checkers = false;   // measuring, not verifying
  cfg.record_trace = false;      // nothing buffers the event stream
  cfg.lifecycle_spans = true;    // span histograms ride the trace bus
  app::World w(cfg);
  // Two span collectors: a per-case registry feeds this row's p95 columns,
  // the shared one accumulates the artifact's span.* histograms.
  obs::Registry case_reg;
  obs::SpanCollector case_spans(case_reg);
  obs::SpanCollector all_spans(reg);
  w.trace().subscribe(case_spans);
  w.trace().subscribe(all_spans);

  std::uint64_t delivered = 0;
  std::map<std::uint64_t, sim::Time> sent_at;
  double latency_sum = 0;
  std::uint64_t latency_n = 0;
  for (int i = 0; i < n; ++i) {
    w.client(i).on_deliver(
        [&](ProcessId, const gcs::AppMsg& m) {
          ++delivered;
          auto it = sent_at.find(m.uid);
          if (it != sent_at.end()) {
            latency_sum += ms(w.sim().now() - it->second);
            ++latency_n;
          }
        });
  }
  // Post-mortem accounting only (counters read after the run; nothing
  // subscribes to the trace bus while the measured traffic flows).
  struct Tally {
    obs::BenchArtifact& art;
    obs::Registry& reg;
    app::World& w;
    ~Tally() {
      art.tally(w.sim());
      record_network_stats(reg, w.network());
    }
  } tally{art, reg, w};

  w.start();
  if (!w.run_until_converged(w.all_members(), 10 * sim::kSecond)) {
    return {};
  }

  const std::uint64_t bytes_before =
      w.process(0).transport().stats().bytes_sent;
  const sim::Time start = w.sim().now();
  const std::string payload(static_cast<std::size_t>(payload_bytes), 'x');
  // Sender p1 streams `messages` messages, paced 100us apart.
  for (int k = 0; k < messages; ++k) {
    w.sim().schedule_at(start + k * 100, [&w, &sent_at, payload]() {
      const gcs::AppMsg m = w.process(0).endpoint().send(payload);
      sent_at[m.uid] = w.sim().now();
    });
  }
  w.run_for(20 * sim::kSecond);
  const std::uint64_t expected =
      static_cast<std::uint64_t>(messages) * static_cast<std::uint64_t>(n);
  if (delivered < expected) return {};

  // Time until the last delivery.
  const double span_s =
      static_cast<double>(latency_n ? (messages - 1) * 100 : 1) / sim::kSecond +
      latency_sum / latency_n / 1000.0;
  const std::uint64_t bytes_after =
      w.process(0).transport().stats().bytes_sent;
  return {static_cast<double>(messages) / span_s,
          latency_sum / static_cast<double>(latency_n),
          static_cast<double>(bytes_after - bytes_before) / messages,
          case_reg.histogram("span.msg.wire_us").quantile(0.95),
          case_reg.histogram("span.msg.gate_us").quantile(0.95),
          case_reg.histogram("span.msg.e2e_us").quantile(0.95)};
}

}  // namespace

int main() {
  std::cout << "E2: within-view reliable FIFO multicast, full stack\n";
  std::cout << "(1 sender streaming 500 messages at 10k msg/s offered load; "
               "1 ms link latency)\n";

  obs::BenchArtifact art("throughput");
  art.config("messages") = 500;
  art.config("offered_load_msgs_per_s") = 10000;
  art.config("link_latency_ms") = 1.0;
  obs::Registry reg;

  Table t({"group size", "payload (B)", "msgs/s", "avg delivery latency (ms)",
           "sender bytes/msg", "wire p95 (us)", "e2e p95 (us)"});
  for (int n : {2, 4, 8, 12}) {
    for (int payload : {32, 256, 1024}) {
      const Result r = run_case(n, payload, 500, art, reg);
      t.row(n, payload, r.msgs_per_sec, r.avg_latency_ms, r.bytes_per_msg,
            r.wire_p95_us, r.e2e_p95_us);
      obs::JsonValue& row = art.add_result();
      row["group_size"] = n;
      row["payload_bytes"] = payload;
      row["msgs_per_sec"] = r.msgs_per_sec;
      row["avg_latency_ms"] = r.avg_latency_ms;
      row["sender_bytes_per_msg"] = r.bytes_per_msg;
      row["wire_p95_us"] = static_cast<std::int64_t>(r.wire_p95_us);
      row["gate_p95_us"] = static_cast<std::int64_t>(r.gate_p95_us);
      row["e2e_p95_us"] = static_cast<std::int64_t>(r.e2e_p95_us);
    }
  }
  t.print("throughput / latency vs group size and payload");
  art.set_metrics(reg);
  art.write_file();

  std::cout << "\nShape check: delivery latency ~ one hop (~1 ms) flat in "
               "group size; sender bytes/msg grow linearly with fan-out.\n";
  return 0;
}
