// E2 — Steady-state within-view multicast throughput and delivery latency
// (Section 4.1.1's service, full stack: GCS over CO_RFIFO over the datagram
// network, real membership servers), plus the raw-transport fan-in case that
// gates the batched data plane (DESIGN.md §11).
//
// Expect: latency ~ one network hop regardless of group size (parallel
// multicast); aggregate deliveries scale with group size; per-message wire
// cost grows linearly in fan-out; batching + delayed/piggybacked acks cut
// simulator events per message enough for a >= 3x wall-clock msgs/sec win on
// the fan-in case (the sim network has no bandwidth model, so the batching
// dividend shows up as wall-clock event economy, like bench_simperf's kernel
// gate — wall-clock here is a host-dependent measurement, not sim state).
#include <chrono>
#include <cstdlib>
#include <cstring>

#include "app/world.hpp"
#include "bench/helpers.hpp"
#include "obs/span.hpp"
#include "obs/xport_metrics.hpp"

using namespace vsgc;
using namespace vsgc::bench;

namespace {

struct Result {
  double msgs_per_sec = 0;
  double avg_latency_ms = 0;
  double bytes_per_msg = 0;
  double overhead_bytes_per_msg = 0;  ///< honest header cost: frame + entry
  // Per-phase p95s from the causal span layer (DESIGN.md §10); log2-bucket
  // resolution — wire is the transport leg, gate the delivery-condition wait.
  std::uint64_t wire_p95_us = 0;
  std::uint64_t gate_p95_us = 0;
  std::uint64_t e2e_p95_us = 0;
};

Result run_case(int n, int payload_bytes, int messages,
                obs::BenchArtifact& art, obs::Registry& reg) {
  app::WorldConfig cfg;
  cfg.num_clients = n;
  cfg.attach_checkers = false;   // measuring, not verifying
  cfg.record_trace = false;      // nothing buffers the event stream
  cfg.lifecycle_spans = true;    // span histograms ride the trace bus
  app::World w(cfg);
  // Two span collectors: a per-case registry feeds this row's p95 columns,
  // the shared one accumulates the artifact's span.* histograms.
  obs::Registry case_reg;
  obs::SpanCollector case_spans(case_reg);
  obs::SpanCollector all_spans(reg);
  w.trace().subscribe(case_spans);
  w.trace().subscribe(all_spans);

  std::uint64_t delivered = 0;
  std::map<std::uint64_t, sim::Time> sent_at;
  double latency_sum = 0;
  std::uint64_t latency_n = 0;
  for (int i = 0; i < n; ++i) {
    w.client(i).on_deliver(
        [&](ProcessId, const gcs::AppMsg& m) {
          ++delivered;
          auto it = sent_at.find(m.uid);
          if (it != sent_at.end()) {
            latency_sum += ms(w.sim().now() - it->second);
            ++latency_n;
          }
        });
  }
  // Post-mortem accounting only (counters read after the run; nothing
  // subscribes to the trace bus while the measured traffic flows).
  struct Tally {
    obs::BenchArtifact& art;
    obs::Registry& reg;
    app::World& w;
    ~Tally() {
      art.tally(w.sim());
      record_network_stats(reg, w.network());
    }
  } tally{art, reg, w};

  w.start();
  if (!w.run_until_converged(w.all_members(), 10 * sim::kSecond)) {
    return {};
  }

  const transport::CoRfifoTransport::Stats before =
      w.process(0).transport().stats();
  const sim::Time start = w.sim().now();
  const std::string payload(static_cast<std::size_t>(payload_bytes), 'x');
  // Sender p1 streams `messages` messages, paced 100us apart.
  for (int k = 0; k < messages; ++k) {
    w.sim().schedule_at(start + k * 100, [&w, &sent_at, payload]() {
      const gcs::AppMsg m = w.process(0).endpoint().send(payload);
      sent_at[m.uid] = w.sim().now();
    });
  }
  w.run_for(20 * sim::kSecond);
  const std::uint64_t expected =
      static_cast<std::uint64_t>(messages) * static_cast<std::uint64_t>(n);
  if (delivered < expected) return {};

  // Time until the last delivery.
  const double span_s =
      static_cast<double>(latency_n ? (messages - 1) * 100 : 1) / sim::kSecond +
      latency_sum / latency_n / 1000.0;
  const transport::CoRfifoTransport::Stats after =
      w.process(0).transport().stats();
  const std::uint64_t frames = after.frames_sent - before.frames_sent;
  const std::uint64_t entries = after.entries_sent - before.entries_sent;
  // Honest header overhead per application message: every frame pays a frame
  // header, every entry an entry header; standalone acks ride in the frame
  // count with zero entries, so their cost lands here too.
  const double overhead =
      entries == 0 ? 0.0
                   : static_cast<double>(
                         frames * transport::wire::kFrameHeaderBytes +
                         entries * transport::wire::kFrameEntryBytes) /
                         static_cast<double>(entries);
  return {static_cast<double>(messages) / span_s,
          latency_sum / static_cast<double>(latency_n),
          static_cast<double>(after.bytes_sent - before.bytes_sent) / messages,
          overhead,
          case_reg.histogram("span.msg.wire_us").quantile(0.95),
          case_reg.histogram("span.msg.gate_us").quantile(0.95),
          case_reg.histogram("span.msg.e2e_us").quantile(0.95)};
}

/// The batching gate's workload: raw CO_RFIFO transports, many senders
/// converging on one receiver in same-instant bursts — the shape where
/// sender-side packing and delayed acks pay the most. Same simulated traffic
/// with batching on and off; the ratio of wall-clock msgs/sec is the gate.
struct FaninResult {
  bool ok = false;
  double wall_seconds = 0;
  double msgs_per_sec = 0;        ///< wall-clock, like bench_simperf
  std::uint64_t frames_sent = 0;  ///< across all senders
  double entries_per_frame = 0;
  double bytes_per_msg = 0;
  double overhead_bytes_per_msg = 0;
  std::uint64_t acks_standalone = 0;   ///< receiver's standalone ack frames
  std::uint64_t acks_piggybacked = 0;  ///< receiver's piggybacked acks
  std::uint64_t ooo_dropped = 0;
  std::uint64_t sim_events = 0;
};

constexpr int kFaninSenders = 8;
constexpr int kFaninBurst = 32;    ///< same-instant sends per sender per burst
constexpr int kFaninBursts = 250;  ///< one burst per simulated millisecond
constexpr int kFaninPayload = 8;
constexpr std::uint64_t kFaninMessages = static_cast<std::uint64_t>(
    kFaninSenders * kFaninBurst * kFaninBursts);

FaninResult run_fanin(bool batching, obs::BenchArtifact& art,
                      obs::Registry& reg) {
  sim::Simulator sim;
  net::Network network(sim, Rng(1), {});
  const net::NodeId receiver{1};
  std::vector<std::unique_ptr<transport::CoRfifoTransport>> xports;
  transport::CoRfifoTransport::Config tcfg;
  tcfg.batching = batching;
  if (batching) tcfg.ack_delay = 200;  // coalesce acks across a burst's frames
  for (int i = 0; i <= kFaninSenders; ++i) {
    xports.push_back(std::make_unique<transport::CoRfifoTransport>(
        sim, network, net::NodeId{static_cast<std::uint32_t>(i + 1)}, tcfg));
  }
  std::uint64_t delivered = 0;
  xports[0]->set_deliver_handler(
      [&delivered](net::NodeId, const std::any&) { ++delivered; });
  for (int s = 1; s <= kFaninSenders; ++s) {
    xports[static_cast<std::size_t>(s)]->set_reliable({receiver});
  }
  for (int b = 0; b < kFaninBursts; ++b) {
    sim.schedule_at(b * sim::kMillisecond, [&xports]() {
      for (int s = 1; s <= kFaninSenders; ++s) {
        for (int k = 0; k < kFaninBurst; ++k) {
          xports[static_cast<std::size_t>(s)]->send(
              {net::NodeId{1}}, std::uint64_t{1}, kFaninPayload);
        }
      }
    });
  }
  const auto wall_start = std::chrono::steady_clock::now();
  sim.run_to_quiescence();
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  art.tally(sim);

  FaninResult r;
  r.ok = delivered == kFaninMessages;
  r.wall_seconds = wall_seconds;
  r.msgs_per_sec = static_cast<double>(kFaninMessages) / wall_seconds;
  std::uint64_t entries = 0, bytes = 0;
  const obs::Labels labels{
      {"case", batching ? "fanin_batching_on" : "fanin_batching_off"}};
  for (int s = 1; s <= kFaninSenders; ++s) {
    const auto& st = xports[static_cast<std::size_t>(s)]->stats();
    r.frames_sent += st.frames_sent;
    entries += st.entries_sent;
    bytes += st.bytes_sent;
    obs::record_xport_stats(reg, labels, st);
  }
  obs::record_xport_stats(reg, labels, xports[0]->stats());
  r.entries_per_frame =
      r.frames_sent == 0
          ? 0
          : static_cast<double>(entries) / static_cast<double>(r.frames_sent);
  r.bytes_per_msg =
      static_cast<double>(bytes) / static_cast<double>(kFaninMessages);
  r.overhead_bytes_per_msg =
      entries == 0
          ? 0
          : static_cast<double>(
                r.frames_sent * transport::wire::kFrameHeaderBytes +
                entries * transport::wire::kFrameEntryBytes) /
                static_cast<double>(entries);
  r.acks_standalone = xports[0]->stats().acks_sent;
  r.acks_piggybacked = xports[0]->stats().acks_piggybacked;
  r.ooo_dropped = xports[0]->stats().ooo_dropped;
  r.sim_events = sim.stats().events_executed;
  return r;
}

void fanin_row(obs::JsonValue& row, const char* name, const FaninResult& r) {
  row["case"] = name;
  row["wall_seconds"] = r.wall_seconds;
  row["msgs_per_sec"] = r.msgs_per_sec;
  row["frames_sent"] = static_cast<std::int64_t>(r.frames_sent);
  row["entries_per_frame"] = r.entries_per_frame;
  row["bytes_per_msg"] = r.bytes_per_msg;
  row["overhead_bytes_per_msg"] = r.overhead_bytes_per_msg;
  row["acks_standalone"] = static_cast<std::int64_t>(r.acks_standalone);
  row["acks_piggybacked"] = static_cast<std::int64_t>(r.acks_piggybacked);
  row["ooo_dropped"] = static_cast<std::int64_t>(r.ooo_dropped);
  row["sim_events"] = static_cast<std::int64_t>(r.sim_events);
}

}  // namespace

int main(int argc, char** argv) {
  double min_speedup = 0;  // 0 = report only, no gate
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check-batching-speedup") == 0 &&
        i + 1 < argc) {
      min_speedup = std::atof(argv[++i]);
    } else {
      std::cerr << "usage: bench_throughput [--check-batching-speedup X]\n";
      return 2;
    }
  }

  std::cout << "E2: within-view reliable FIFO multicast, full stack\n";
  std::cout << "(1 sender streaming 500 messages at 10k msg/s offered load; "
               "1 ms link latency)\n";

  obs::BenchArtifact art("throughput");
  art.config("messages") = 500;
  art.config("offered_load_msgs_per_s") = 10000;
  art.config("link_latency_ms") = 1.0;
  art.config("fanin_senders") = kFaninSenders;
  art.config("fanin_burst") = kFaninBurst;
  art.config("fanin_bursts") = kFaninBursts;
  art.config("fanin_messages") = static_cast<std::int64_t>(kFaninMessages);
  obs::Registry reg;

  Table t({"group size", "payload (B)", "msgs/s", "avg delivery latency (ms)",
           "sender bytes/msg", "hdr bytes/msg", "wire p95 (us)",
           "e2e p95 (us)"});
  for (int n : {2, 4, 8, 12}) {
    for (int payload : {32, 256, 1024}) {
      const Result r = run_case(n, payload, 500, art, reg);
      t.row(n, payload, r.msgs_per_sec, r.avg_latency_ms, r.bytes_per_msg,
            r.overhead_bytes_per_msg, r.wire_p95_us, r.e2e_p95_us);
      obs::JsonValue& row = art.add_result();
      row["group_size"] = n;
      row["payload_bytes"] = payload;
      row["msgs_per_sec"] = r.msgs_per_sec;
      row["avg_latency_ms"] = r.avg_latency_ms;
      row["sender_bytes_per_msg"] = r.bytes_per_msg;
      row["overhead_bytes_per_msg"] = r.overhead_bytes_per_msg;
      row["wire_p95_us"] = static_cast<std::int64_t>(r.wire_p95_us);
      row["gate_p95_us"] = static_cast<std::int64_t>(r.gate_p95_us);
      row["e2e_p95_us"] = static_cast<std::int64_t>(r.e2e_p95_us);
    }
  }
  t.print("throughput / latency vs group size and payload");

  std::cout << "\nFan-in: " << kFaninSenders << " raw-transport senders x "
            << kFaninBurst << "-message bursts x " << kFaninBursts
            << " bursts -> 1 receiver (" << kFaninMessages
            << " messages, wall-clock timed)\n";
  const FaninResult off = run_fanin(false, art, reg);
  const FaninResult on = run_fanin(true, art, reg);
  const double speedup =
      off.msgs_per_sec > 0 ? on.msgs_per_sec / off.msgs_per_sec : 0;

  Table ft({"case", "wall (s)", "msgs/s (wall)", "frames", "entries/frame",
            "bytes/msg", "hdr bytes/msg", "acks", "piggybacked"});
  ft.row("batching off", off.wall_seconds, off.msgs_per_sec, off.frames_sent,
         off.entries_per_frame, off.bytes_per_msg, off.overhead_bytes_per_msg,
         off.acks_standalone, off.acks_piggybacked);
  ft.row("batching on", on.wall_seconds, on.msgs_per_sec, on.frames_sent,
         on.entries_per_frame, on.bytes_per_msg, on.overhead_bytes_per_msg,
         on.acks_standalone, on.acks_piggybacked);
  ft.print("fan-in data plane: batching + delayed acks vs off");
  std::cout << "batching speedup: " << std::fixed << std::setprecision(2)
            << speedup << "x wall-clock msgs/sec\n";

  obs::JsonValue& off_row = art.add_result();
  fanin_row(off_row, "fanin_batching_off", off);
  obs::JsonValue& on_row = art.add_result();
  fanin_row(on_row, "fanin_batching_on", on);
  on_row["batching_speedup"] = speedup;

  art.set_metrics(reg);
  art.write_file();

  std::cout << "\nShape check: delivery latency ~ one hop (~1 ms) flat in "
               "group size; sender bytes/msg grow linearly with fan-out.\n";

  if (!off.ok || !on.ok) {
    std::cerr << "FAIL: fan-in case lost messages (off="
              << (off.ok ? "ok" : "lost") << ", on="
              << (on.ok ? "ok" : "lost") << ")\n";
    return 1;
  }
  if (min_speedup > 0 && speedup < min_speedup) {
    std::cerr << "FAIL: batching speedup " << speedup << "x < required "
              << min_speedup << "x\n";
    return 1;
  }
  if (min_speedup > 0) {
    std::cout << "PASS: batching speedup " << speedup << "x >= "
              << min_speedup << "x\n";
  }
  return 0;
}
