// E6 — Application blocking window during reconfiguration (Section 5.3).
//
// Implementing Self Delivery together with Virtual Synchrony requires
// blocking the application while a view change is in progress (proven in
// [19]). The window runs from block() until the new view is delivered. The
// one-round design keeps this window ~ one client round overlapped with the
// membership round; in-flight traffic lengthens it only by the time needed
// to drain the agreed cut.
#include "bench/helpers.hpp"
#include "bench/worlds.hpp"

using namespace vsgc;
using namespace vsgc::bench;

namespace {

constexpr sim::Time kMembershipRound = 20 * sim::kMillisecond;

struct BlockWindowRecorder : spec::TraceSink {
  void on_event(const spec::Event& ev) override {
    if (const auto* b = std::get_if<spec::GcsBlock>(&ev.body)) {
      block_at[b->p] = ev.at;
    } else if (const auto* v = std::get_if<spec::GcsView>(&ev.body)) {
      auto it = block_at.find(v->p);
      if (it != block_at.end()) {
        windows.push_back(ev.at - it->second);
        block_at.erase(it);
      }
    }
  }
  std::map<ProcessId, sim::Time> block_at;
  std::vector<sim::Time> windows;
};

double measure_block_window(int n, int inflight_msgs, double drop,
                            obs::BenchArtifact& art, obs::Registry& reg) {
  net::Network::Config cfg;
  cfg.base_latency = 5 * sim::kMillisecond;
  cfg.jitter = 0;
  cfg.drop_probability = drop;
  GcsBenchWorld w(n, cfg);
  BlockWindowRecorder rec;
  w.trace.subscribe(rec);
  obs::MetricsCollector collector(reg);  // gcs.blocking_window_us histogram
  w.trace.subscribe(collector);

  w.schedule_change(0, kMembershipRound, w.all());
  w.run_until(sim::kSecond);
  rec.windows.clear();

  // Load the group with in-flight traffic, then reconfigure immediately.
  for (int k = 0; k < inflight_msgs; ++k) {
    for (auto& ep : w.endpoints) ep->send("traffic");
  }
  w.schedule_change(w.sim.now(), kMembershipRound, w.all());
  w.run_until(w.sim.now() + 30 * sim::kSecond);

  record_network_stats(reg, w.network);
  art.tally(w.sim);
  if (rec.windows.empty()) return -1;
  sim::Time sum = 0;
  for (sim::Time t : rec.windows) sum += t;
  return ms(sum / static_cast<sim::Time>(rec.windows.size()));
}

}  // namespace

int main() {
  std::cout << "E6: application send-blocking window during a view change\n";
  std::cout << "(5 ms links, 20 ms membership round)\n";
  obs::BenchArtifact art("blocking");
  art.config("link_latency_ms") = 5.0;
  art.config("membership_round_ms") = ms(kMembershipRound);
  obs::Registry reg;
  Table t({"group size", "in-flight msgs/member", "loss", "avg block window (ms)"});
  for (int n : {3, 6, 10}) {
    for (int load : {0, 100}) {
      for (double drop : {0.0, 0.3}) {
        const double window = measure_block_window(n, load, drop, art, reg);
        t.row(n, load, drop, window);
        obs::JsonValue& row = art.add_result();
        row["group_size"] = n;
        row["inflight_msgs_per_member"] = load;
        row["drop_probability"] = drop;
        row["avg_block_window_ms"] = window;
      }
    }
  }
  t.print("blocking window vs group size, in-flight load, and loss");
  art.set_metrics(reg);
  art.write_file();

  std::cout << "\nShape check: ~ membership round when the agreed cut drains "
               "inside it (idle or clean network); grows when loss forces "
               "retransmissions to fill the cut before the view installs.\n";
  return 0;
}
