// E8 — Client-server membership scalability (the architectural claim of
// Section 1: dedicated membership servers keep per-client costs low and the
// service scalable in the number of clients).
//
// Measures convergence time and SERVER-side message load for growing client
// populations and server counts. Server load per view change should scale
// with its local clients + number of servers, not with the total client
// population squared.
#include "app/world.hpp"
#include "bench/helpers.hpp"

using namespace vsgc;
using namespace vsgc::bench;

namespace {

struct Result {
  double converge_ms;
  double change_msgs_per_client;  ///< server msgs for ONE steady-state change
  std::uint64_t rounds;
};

Result run_case(int clients, int servers, obs::BenchArtifact& art,
                obs::Registry& reg) {
  app::WorldConfig cfg;
  cfg.num_clients = clients;
  cfg.num_servers = servers;
  cfg.attach_checkers = false;
  cfg.record_trace = false;
  app::World w(cfg);
  struct Tally {
    obs::BenchArtifact& art;
    obs::Registry& reg;
    app::World& w;
    ~Tally() {
      art.tally(w.sim());
      record_network_stats(reg, w.network());
    }
  } tally{art, reg, w};
  w.start();
  if (!w.run_until_converged(w.all_members(), 60 * sim::kSecond)) {
    return {-1, -1, 0};
  }
  const double converge = ms(w.sim().now());

  // Steady-state reconfiguration: one client leaves; measure the membership
  // servers' message cost for that single view change.
  std::uint64_t before = 0;
  for (int s = 0; s < servers; ++s) {
    before += w.server(s).transport().stats().messages_sent;
  }
  std::set<ProcessId> survivors = w.all_members();
  survivors.erase(ProcessId{static_cast<std::uint32_t>(clients)});
  w.process(clients - 1).crash();
  if (!w.run_until_converged(survivors, 60 * sim::kSecond)) return {-1, -1, 0};
  std::uint64_t after = 0;
  std::uint64_t rounds = 0;
  for (int s = 0; s < servers; ++s) {
    after += w.server(s).transport().stats().messages_sent;
    rounds += w.server(s).stats().rounds_started;
  }
  return {converge, static_cast<double>(after - before) / clients, rounds};
}

}  // namespace

int main() {
  std::cout << "E8: membership service scalability (client-server design)\n";
  obs::BenchArtifact art("membership");
  obs::Registry reg;
  Table t({"clients", "servers", "converge (ms)",
           "change msgs/client", "total rounds"});
  for (int servers : {1, 2, 4}) {
    for (int clients : {4, 8, 16, 32}) {
      const Result r = run_case(clients, servers, art, reg);
      t.row(clients, servers, r.converge_ms, r.change_msgs_per_client,
            r.rounds);
      obs::JsonValue& row = art.add_result();
      row["clients"] = clients;
      row["servers"] = servers;
      row["converge_ms"] = r.converge_ms;
      row["change_msgs_per_client"] = r.change_msgs_per_client;
      row["total_rounds"] = r.rounds;
    }
  }
  t.print("membership convergence and server load");
  art.set_metrics(reg);
  art.write_file();

  std::cout << "\nShape check: per-change server messages per client stay "
               "roughly flat (~2-3: one start_change + one view per client, "
               "plus O(servers) proposals) as the population grows — clients "
               "never talk to each other to maintain membership.\n";
  return 0;
}
