// E9 — Totally ordered multicast layered on the service (the [13]-style
// layering of Section 4.1.1: FIFO is the base service; stronger orders are
// built on top).
//
// Measures end-to-end totally ordered delivery latency and throughput vs
// group size. Ordering adds ~one extra hop through the sequencer for
// non-sequencer senders.
#include "app/total_order.hpp"
#include "app/world.hpp"
#include "bench/helpers.hpp"

using namespace vsgc;
using namespace vsgc::bench;

namespace {

struct Result {
  double avg_latency_ms;
  double msgs_per_sec;
  bool agreed;
};

Result run_case(int n, int messages, obs::BenchArtifact& art,
                obs::Registry& reg) {
  app::WorldConfig cfg;
  cfg.num_clients = n;
  cfg.attach_checkers = false;
  cfg.record_trace = false;
  app::World w(cfg);
  struct Tally {
    obs::BenchArtifact& art;
    obs::Registry& reg;
    app::World& w;
    ~Tally() {
      art.tally(w.sim());
      record_network_stats(reg, w.network());
    }
  } tally{art, reg, w};

  std::vector<std::unique_ptr<app::TotalOrder>> to;
  std::vector<std::vector<std::string>> orders(static_cast<std::size_t>(n));
  std::map<std::string, sim::Time> sent_at;
  double latency_sum = 0;
  std::uint64_t latency_count = 0;
  sim::Time last_delivery = 0;
  for (int i = 0; i < n; ++i) {
    to.push_back(std::make_unique<app::TotalOrder>(w.client(i),
                                                   w.process(i).id()));
    to.back()->on_deliver([&, i](ProcessId from, const std::string& payload) {
      orders[static_cast<std::size_t>(i)].push_back(to_string(from) + ":" +
                                                    payload);
      auto it = sent_at.find(payload);
      if (it != sent_at.end()) {
        latency_sum += ms(w.sim().now() - it->second);
        ++latency_count;
        last_delivery = std::max(last_delivery, w.sim().now());
      }
    });
  }
  w.start();
  if (!w.run_until_converged(w.all_members(), 20 * sim::kSecond)) {
    return {-1, -1, false};
  }

  const sim::Time start = w.sim().now();
  for (int k = 0; k < messages; ++k) {
    const int sender = k % n;
    w.sim().schedule_at(start + k * 200, [&, sender, k]() {
      const std::string payload = "m" + std::to_string(k);
      sent_at[payload] = w.sim().now();
      to[static_cast<std::size_t>(sender)]->send(payload);
    });
  }
  w.run_for(30 * sim::kSecond);

  bool agreed = true;
  for (int i = 1; i < n; ++i) {
    if (orders[static_cast<std::size_t>(i)] != orders[0]) agreed = false;
  }
  const double span_s = ms(last_delivery - start) / 1000.0;
  return {latency_sum / static_cast<double>(latency_count * n),
          span_s > 0 ? messages / span_s : 0, agreed};
}

}  // namespace

int main() {
  std::cout << "E9: totally ordered multicast on top of the GCS\n";
  std::cout << "(all members sending round-robin, 5k msg/s offered)\n";
  obs::BenchArtifact art("total_order");
  art.config("messages") = 300;
  obs::Registry reg;
  Table t({"group size", "avg TO latency (ms)", "msgs/s", "orders agree"});
  for (int n : {2, 4, 8, 12}) {
    const Result r = run_case(n, 300, art, reg);
    t.row(n, r.avg_latency_ms, r.msgs_per_sec, r.agreed ? "yes" : "NO");
    obs::JsonValue& row = art.add_result();
    row["group_size"] = n;
    row["avg_to_latency_ms"] = r.avg_latency_ms;
    row["msgs_per_sec"] = r.msgs_per_sec;
    row["orders_agree"] = r.agreed;
  }
  t.print("total order throughput / latency");
  art.set_metrics(reg);
  art.write_file();

  std::cout << "\nShape check: TO latency ~ 2 hops (data + sequencer order "
               "message), flat-ish in group size; every member sees the "
               "identical order.\n";
  return 0;
}
