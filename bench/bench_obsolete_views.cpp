// E5 — "Never delivers obsolete views" (paper Section 1).
//
// Under cascading reconfigurations (membership changing its mind R times in
// quick succession), the paper's algorithm delivers only views whose
// startId matches the latest start_change — a view superseded by a new
// start_change before the client can install it is skipped. The classic
// design runs each invocation to termination once started, so the
// application pays a view handler (blocking, state exchange, ...) for every
// obsolete view.
//
// Setup: client links at 25 ms (so installing a view takes one client round
// after its start_change), membership server round 10 ms. Each membership
// change r is a spec-legal (start_change_r, view_r) pair; the next
// start_change follows the previous view after `gap`. With gap shorter than
// the client round, intermediate views are already stale when they become
// installable.
#include "bench/helpers.hpp"
#include "bench/worlds.hpp"

using namespace vsgc;
using namespace vsgc::bench;

namespace {

constexpr sim::Time kClientLatency = 25 * sim::kMillisecond;
constexpr sim::Time kMembershipRound = 10 * sim::kMillisecond;

template <typename WorldT>
double views_per_member_under_cascade(int n, int cascade, sim::Time gap,
                                      obs::BenchArtifact& art,
                                      obs::Registry* reg) {
  net::Network::Config cfg;
  cfg.base_latency = kClientLatency;
  cfg.jitter = 0;
  WorldT w(n, cfg);
  ViewTimeRecorder rec;
  w.trace.subscribe(rec);
  std::unique_ptr<obs::MetricsCollector> collector;
  if (reg != nullptr) {
    // The derived gcs.obsolete_views counter is exactly this bench's claim.
    collector = std::make_unique<obs::MetricsCollector>(*reg);
    w.trace.subscribe(*collector);
  }
  w.schedule_change(0, kMembershipRound, w.all());
  w.run_until(2 * sim::kSecond);

  // R spec-legal (start_change, view) pairs; pair r+1's start_change fires
  // `gap` after pair r's view.
  const sim::Time t0 = w.sim.now();
  sim::Time at = t0;
  for (int r = 0; r < cascade; ++r) {
    w.schedule_change(at, kMembershipRound, w.all());
    at += kMembershipRound + gap;
  }
  w.run_until(at + 60 * sim::kSecond);

  std::uint64_t total = 0;
  for (const auto& [p, list] : rec.views) {
    for (const auto& [vid, when] : list) {
      if (when > t0) ++total;  // views from the cascade only
    }
  }
  art.tally(w.sim);
  return static_cast<double>(total) / n;
}

}  // namespace

int main() {
  std::cout << "E5: application-visible views under cascading membership "
               "changes (group of 4)\n";
  std::cout << "client link latency = " << ms(kClientLatency)
            << " ms, membership round = " << ms(kMembershipRound) << " ms\n";
  constexpr int kN = 4;
  obs::BenchArtifact art("obsolete_views");
  art.config("group_size") = kN;
  art.config("client_latency_ms") = ms(kClientLatency);
  art.config("membership_round_ms") = ms(kMembershipRound);
  obs::Registry reg;
  Table t({"cascade len", "gap (ms)", "ours: views/member",
           "baseline: views/member"});
  for (int cascade : {2, 4, 8}) {
    for (sim::Time gap : {2 * sim::kMillisecond, 10 * sim::kMillisecond,
                          100 * sim::kMillisecond}) {
      const double ours = views_per_member_under_cascade<GcsBenchWorld>(
          kN, cascade, gap, art, &reg);
      const double base = views_per_member_under_cascade<BaselineBenchWorld>(
          kN, cascade, gap, art, nullptr);
      t.row(cascade, ms(gap), ours, base);
      obs::JsonValue& row = art.add_result();
      row["cascade_len"] = cascade;
      row["gap_ms"] = ms(gap);
      row["ours_views_per_member"] = ours;
      row["baseline_views_per_member"] = base;
    }
  }
  t.print("views delivered per member (cascade only)");
  art.set_metrics(reg);
  art.write_file();

  std::cout << "\nShape check: with gaps shorter than the client round "
               "(~25 ms), ours collapses the cascade to ~1 view while the "
               "baseline delivers every obsolete view; with long gaps both "
               "deliver all.\n";
  return 0;
}
