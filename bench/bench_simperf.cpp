// Simulator-kernel and seed-sweep wall-clock performance bench.
//
// Unlike every other bench in this directory (which measure SIMULATED time
// and are machine-independent), this one measures the host: it is the repo's
// wall-clock perf trajectory (BENCH_simperf.json), tracking
//
//   1. kernel events/sec — the slab-arena/4-ary-heap kernel vs an embedded
//      copy of the original queue (std::priority_queue of events carrying a
//      shared_ptr<bool> liveness flag and a std::function), run on the same
//      timer-churn workload in the same binary, so the speedup gate is
//      machine-independent even though the absolute numbers are not;
//   2. heap allocations per event for both kernels (global operator new
//      counter), the mechanism behind the speedup;
//   3. end-to-end stress-world sims/sec at --jobs 1 vs --jobs <hardware>,
//      the batch-engine scaling number.
//
// Gates (used by ci.sh): --check-kernel-speedup X and --check-sweep-speedup Y
// exit nonzero if the measured ratio falls below the bound. The sweep gate is
// only meaningful with > 1 hardware thread; ci.sh scales it to the runner.
#include <any>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <functional>
#include <limits>
#include <memory>
#include <new>
#include <queue>
#include <string>
#include <vector>

#include "app/world.hpp"
#include "bench/helpers.hpp"
#include "net/network.hpp"
#include "sim/batch.hpp"
#include "sim/failure_injector.hpp"
#include "sim/simulator.hpp"
#include "util/assert.hpp"

// ---------------------------------------------------------------------------
// Global allocation counter (report-only; not a gate — allocator internals
// may batch). Counts every operator new, including the simulator's own.
// ---------------------------------------------------------------------------

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { operator delete(p); }
void operator delete[](void* p, std::size_t) noexcept { operator delete[](p); }

namespace vsgc {
namespace {

using bench::Table;

// ---------------------------------------------------------------------------
// Legacy kernel: the pre-optimization event queue, embedded verbatim in
// spirit — two heap allocations per event (shared_ptr<bool> liveness flag +
// type-erased std::function), binary-heap std::priority_queue of fat events.
// The NondetSource seam is omitted: the workload never installs one, and the
// uncontrolled fast path is what the old kernel spent its time in.
// ---------------------------------------------------------------------------

class LegacyTimerHandle {
 public:
  LegacyTimerHandle() = default;
  explicit LegacyTimerHandle(std::weak_ptr<bool> alive)
      : alive_(std::move(alive)) {}

  void cancel() {
    if (auto alive = alive_.lock()) *alive = false;
  }
  bool pending() const {
    auto alive = alive_.lock();
    return alive && *alive;
  }

 private:
  std::weak_ptr<bool> alive_;
};

class LegacySimulator {
 public:
  struct Stats {
    std::uint64_t events_scheduled = 0;
    std::uint64_t events_executed = 0;
    std::uint64_t events_cancelled = 0;
  };

  sim::Time now() const { return now_; }
  const Stats& stats() const { return stats_; }

  LegacyTimerHandle schedule(sim::Time delay, std::function<void()> fn) {
    auto alive = std::make_shared<bool>(true);
    queue_.push(Event{now_ + delay, next_seq_++, alive, std::move(fn)});
    ++stats_.events_scheduled;
    return LegacyTimerHandle(alive);
  }

  std::size_t run_until(sim::Time deadline) {
    std::size_t executed = 0;
    while (!queue_.empty() && queue_.top().when <= deadline) {
      Event ev = queue_.top();
      queue_.pop();
      now_ = ev.when > now_ ? ev.when : now_;
      if (!*ev.alive) {
        ++stats_.events_cancelled;
        continue;
      }
      *ev.alive = false;
      ev.fn();
      ++stats_.events_executed;
      ++executed;
    }
    if (now_ < deadline) now_ = deadline;
    return executed;
  }

 private:
  struct Event {
    sim::Time when;
    std::uint64_t seq;
    std::shared_ptr<bool> alive;
    std::function<void()> fn;

    bool operator>(const Event& other) const {
      if (when != other.when) return when > other.when;
      return seq > other.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  sim::Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  Stats stats_;
};

// ---------------------------------------------------------------------------
// Kernel microbench: timer-churn workload shaped like the network layer's
// event mix — chains of self-rescheduling events (periodic timers / packet
// hops), each hop also arming a side delivery that is cancelled half the
// time before it fires (retransmit timers that an ack beats). Every
// scheduled event carries the chain's message payload, the way in-flight
// packets do; the payload type is the era-appropriate one, so each kernel
// pays its own scheduling path end to end:
//   legacy — std::any copied per scheduled delivery (one heap cell + message
//            copy each time, exactly what the old Network::send closure did
//            per recipient), inside a heap-allocated std::function, plus a
//            shared_ptr<bool> liveness cell;
//   new    — one refcounted net::Payload handle shared across deliveries
//            (a refcount tick per schedule), inline in the event slot.
// ---------------------------------------------------------------------------

struct KernelRun {
  std::uint64_t events_executed = 0;
  std::uint64_t events_cancelled = 0;
  double wall_seconds = 0.0;
  std::uint64_t allocations = 0;
};

/// Message body carried by every scheduled delivery: ~100 bytes, the size of
/// a small protocol message after serialization framing.
struct KernelMsg {
  std::uint64_t words[12] = {0};
};

template <typename SimT, typename HandleT, typename PayloadT>
struct KernelChain {
  SimT* sim = nullptr;
  std::uint32_t id = 0;
  std::uint32_t remaining = 0;
  HandleT side;
  PayloadT message;

  struct Hop {
    KernelChain* chain;
    PayloadT payload;         // copied per delivery (legacy) / handle (new)
    std::uint32_t kind;       // 0 = chain hop, 1 = side one-shot delivery

    void operator()() const {
      if (kind != 0) return;  // a side timer that an "ack" did not beat
      KernelChain& ch = *chain;
      if (ch.remaining == 0) return;
      --ch.remaining;
      if ((ch.remaining & 1U) == 0U) ch.side.cancel();
      ch.side = ch.sim->schedule(static_cast<sim::Time>(5 + ch.id % 7),
                                 Hop{chain, ch.message, 1});
      ch.sim->schedule(static_cast<sim::Time>(1 + ch.remaining % 3),
                       Hop{chain, ch.message, 0});
    }
  };
};

template <typename SimT, typename HandleT, typename PayloadT>
KernelRun run_kernel_workload(std::uint32_t chains,
                              std::uint32_t hops_per_chain) {
  using Chain = KernelChain<SimT, HandleT, PayloadT>;
  SimT sim;
  std::vector<Chain> state(chains);

  const std::uint64_t allocs_before = g_allocs.load(std::memory_order_relaxed);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint32_t c = 0; c < chains; ++c) {
    state[c].sim = &sim;
    state[c].id = c;
    state[c].remaining = hops_per_chain;
    state[c].message = PayloadT{KernelMsg{}};
    sim.schedule(static_cast<sim::Time>(c % 5),
                 typename Chain::Hop{&state[c], state[c].message, 0});
  }
  sim.run_until(std::numeric_limits<sim::Time>::max() / 2);
  const auto t1 = std::chrono::steady_clock::now();

  KernelRun out;
  out.events_executed = sim.stats().events_executed;
  out.events_cancelled = sim.stats().events_cancelled;
  out.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  out.allocations =
      g_allocs.load(std::memory_order_relaxed) - allocs_before;
  return out;
}

// ---------------------------------------------------------------------------
// End-to-end sweep: a standard stress scenario (4 clients, 1 server, a short
// fault-churn schedule, reconvergence epilogue) per seed, swept with the
// batch engine at --jobs 1 vs --jobs <hardware>.
// ---------------------------------------------------------------------------

struct SweepRun {
  std::uint64_t seeds = 0;
  std::uint64_t events_executed = 0;
  double wall_seconds = 0.0;
};

std::uint64_t run_stress_world(std::uint64_t seed) {
  app::WorldConfig wc;
  wc.num_clients = 4;
  wc.num_servers = 1;
  wc.seed = seed;
  app::World w(wc);
  sim::FailureInjector::Policy policy;
  policy.steps = 10;
  sim::FailureInjector injector(w.fault_target(), policy, seed);
  try {
    w.start();
    w.run_until_converged(w.all_members(), 10 * sim::kSecond);
    injector.run_churn();
    injector.stabilize();
    w.run_until_converged(w.all_members(), 60 * sim::kSecond);
    w.checkers().finalize();
  } catch (const InvariantViolation&) {
    // A violation would be a correctness bug, not a perf signal; the stress
    // tool owns reporting those. Keep the bench's timing meaningful.
  }
  return w.sim().stats().events_executed;
}

SweepRun run_sweep(std::size_t jobs, std::uint64_t seeds) {
  const sim::BatchRunner runner(jobs);
  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<std::uint64_t> events = runner.map<std::uint64_t>(
      static_cast<std::size_t>(seeds),
      [](std::size_t i) { return run_stress_world(1000 + i); });
  const auto t1 = std::chrono::steady_clock::now();
  SweepRun out;
  out.seeds = seeds;
  for (const std::uint64_t e : events) out.events_executed += e;
  out.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  return out;
}

double per_sec(std::uint64_t count, double seconds) {
  return seconds > 0.0 ? static_cast<double>(count) / seconds : 0.0;
}

}  // namespace
}  // namespace vsgc

int main(int argc, char** argv) {
  using namespace vsgc;

  double check_kernel_speedup = 0.0;
  double check_sweep_speedup = 0.0;
  std::uint32_t chains = 64;
  std::uint32_t hops = 8000;
  std::uint64_t sweep_seeds = 8;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--check-kernel-speedup") {
      check_kernel_speedup = std::atof(value().c_str());
    } else if (arg == "--check-sweep-speedup") {
      check_sweep_speedup = std::atof(value().c_str());
    } else if (arg == "--chains") {
      chains = static_cast<std::uint32_t>(std::atoi(value().c_str()));
    } else if (arg == "--hops") {
      hops = static_cast<std::uint32_t>(std::atoi(value().c_str()));
    } else if (arg == "--sweep-seeds") {
      sweep_seeds = std::strtoull(value().c_str(), nullptr, 10);
    } else {
      std::cerr << "usage: bench_simperf [--chains N] [--hops N]\n"
                   "                     [--sweep-seeds N]\n"
                   "                     [--check-kernel-speedup X]\n"
                   "                     [--check-sweep-speedup X]\n";
      return 2;
    }
  }

  std::cout << "simperf: kernel fast path + parallel seed sweep "
               "(wall-clock; host-dependent)\n";

  obs::BenchArtifact art("simperf");
  art.config("chains") = chains;
  art.config("hops_per_chain") = hops;
  art.config("sweep_seeds") = sweep_seeds;
  art.config("hardware_jobs") =
      static_cast<std::uint64_t>(sim::BatchRunner::hardware_jobs());

  // --- Kernel microbench: legacy queue vs slab-arena kernel. ---------------
  // Warm both allocators/caches once, then measure interleaved best-of-3:
  // each kernel keeps its fastest run, which cancels scheduler noise on
  // loaded CI runners without hiding systematic cost.
  run_kernel_workload<LegacySimulator, LegacyTimerHandle, std::any>(8, 200);
  run_kernel_workload<sim::Simulator, sim::TimerHandle, net::Payload>(8, 200);
  KernelRun legacy, fast;
  for (int rep = 0; rep < 3; ++rep) {
    const KernelRun l =
        run_kernel_workload<LegacySimulator, LegacyTimerHandle, std::any>(chains,
                                                                     hops);
    const KernelRun f =
        run_kernel_workload<sim::Simulator, sim::TimerHandle, net::Payload>(chains,
                                                                         hops);
    if (rep == 0 || l.wall_seconds < legacy.wall_seconds) legacy = l;
    if (rep == 0 || f.wall_seconds < fast.wall_seconds) fast = f;
  }
  VSGC_REQUIRE(legacy.events_executed == fast.events_executed,
               "kernel workload diverged: legacy executed "
                   << legacy.events_executed << ", new kernel "
                   << fast.events_executed);
  const double kernel_speedup =
      per_sec(fast.events_executed, fast.wall_seconds) /
      per_sec(legacy.events_executed, legacy.wall_seconds);

  Table kt({"kernel", "events", "wall (s)", "events/sec", "allocs/event"});
  const auto kernel_row = [&](const char* name, const KernelRun& run) {
    kt.row(name, run.events_executed, run.wall_seconds,
           per_sec(run.events_executed, run.wall_seconds),
           static_cast<double>(run.allocations) /
               static_cast<double>(run.events_executed));
    obs::JsonValue& row = art.add_result();
    row["case"] = std::string("kernel_") + name;
    row["events_executed"] = run.events_executed;
    row["events_cancelled"] = run.events_cancelled;
    row["wall_seconds"] = run.wall_seconds;
    row["events_per_sec"] = per_sec(run.events_executed, run.wall_seconds);
    row["allocations"] = run.allocations;
    return &row;
  };
  kernel_row("legacy", legacy);
  obs::JsonValue* fast_row = kernel_row("new", fast);
  (*fast_row)["speedup_vs_legacy"] = kernel_speedup;
  kt.print("kernel microbench (timer churn)");
  std::cout << "kernel speedup: " << kernel_speedup << "x\n";

  // --- End-to-end sweep: --jobs 1 vs --jobs <hardware>. --------------------
  const std::size_t hw = sim::BatchRunner::hardware_jobs();
  const SweepRun seq = run_sweep(1, sweep_seeds);
  const SweepRun par = hw > 1 ? run_sweep(hw, sweep_seeds) : seq;
  const double sweep_speedup =
      per_sec(par.seeds, par.wall_seconds) / per_sec(seq.seeds, seq.wall_seconds);

  Table st({"jobs", "seeds", "wall (s)", "seeds/sec", "events/sec (M)"});
  const auto sweep_row = [&](const char* name, std::size_t jobs,
                             const SweepRun& run) {
    st.row(jobs, run.seeds, run.wall_seconds,
           per_sec(run.seeds, run.wall_seconds),
           per_sec(run.events_executed, run.wall_seconds) / 1e6);
    obs::JsonValue& row = art.add_result();
    row["case"] = name;
    row["jobs"] = static_cast<std::uint64_t>(jobs);
    row["seeds"] = run.seeds;
    row["events_executed"] = run.events_executed;
    row["wall_seconds"] = run.wall_seconds;
    row["seeds_per_sec"] = per_sec(run.seeds, run.wall_seconds);
    row["events_per_sec"] = per_sec(run.events_executed, run.wall_seconds);
    return &row;
  };
  sweep_row("sweep_jobs1", 1, seq);
  obs::JsonValue* par_row = sweep_row("sweep_hw", hw, par);
  (*par_row)["speedup_vs_jobs1"] = sweep_speedup;
  st.print("end-to-end stress sweep");
  std::cout << "sweep speedup at jobs=" << hw << ": " << sweep_speedup
            << "x\n";

  art.write_file();

  // --- Gates. --------------------------------------------------------------
  int rc = 0;
  if (check_kernel_speedup > 0.0 && kernel_speedup < check_kernel_speedup) {
    std::cerr << "FAIL: kernel speedup " << kernel_speedup << "x < required "
              << check_kernel_speedup << "x\n";
    rc = 1;
  }
  if (check_sweep_speedup > 0.0 && sweep_speedup < check_sweep_speedup) {
    std::cerr << "FAIL: sweep speedup " << sweep_speedup << "x < required "
              << check_sweep_speedup << "x\n";
    rc = 1;
  }
  return rc;
}
