// Tests for the two-tier sync dissemination extension (paper Section 9,
// after Guo et al. [22]) and the Section 5.2.4 compact-sync optimization.
// The extension must preserve every safety property — the same checkers run —
// while cutting the sync message complexity from O(n^2) toward O(n).
#include <gtest/gtest.h>

#include "helpers/oracle_world.hpp"

namespace vsgc {
namespace {

using testing::OracleWorld;

/// Assign a two-tier topology: processes are split into `groups` consecutive
/// blocks; the first process of each block is its leader.
gcs::SyncRouting two_tier(int n, int groups) {
  gcs::SyncRouting routing;
  routing.mode = gcs::SyncRouting::Mode::kTwoTier;
  const int per_group = (n + groups - 1) / groups;
  for (int i = 0; i < n; ++i) {
    const int leader_index = (i / per_group) * per_group;
    routing.leader_of[ProcessId{static_cast<std::uint32_t>(i + 1)}] =
        ProcessId{static_cast<std::uint32_t>(leader_index + 1)};
  }
  return routing;
}

TEST(TwoTier, ViewChangeCompletesWithAggregation) {
  OracleWorld w(6);
  for (auto& ep : w.endpoints) ep->set_sync_routing(two_tier(6, 2));
  w.change_view(w.all());
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(w.ep(i).current_view().members, w.all()) << "endpoint " << i;
  }
  // Leaders must have relayed something; non-leaders up-send exactly once.
  EXPECT_GT(w.ep(0).vs_stats().aggregates_relayed, 0u);
  EXPECT_GT(w.ep(3).vs_stats().aggregates_relayed, 0u);
  w.checkers.finalize();
}

TEST(TwoTier, VirtualSynchronyPreservedUnderTraffic) {
  OracleWorld w(6);
  for (auto& ep : w.endpoints) ep->set_sync_routing(two_tier(6, 2));
  std::vector<int> rx(6, 0);
  for (int i = 0; i < 6; ++i) {
    w.client(i).on_deliver(
        [&rx, i](ProcessId, const gcs::AppMsg&) { ++rx[static_cast<std::size_t>(i)]; });
  }
  w.change_view(w.all());
  for (int i = 0; i < 6; ++i) {
    for (int k = 0; k < 5; ++k) w.client(i).send("m");
  }
  w.change_view(w.all());  // reconfigure with messages in flight
  w.settle();
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(rx[static_cast<std::size_t>(i)], 30) << "endpoint " << i;
  }
  w.checkers.finalize();  // VS/TRANS_SET/SELF checkers all enforced
}

TEST(TwoTier, FewerSyncCopiesThanDirect) {
  auto total_sync_msgs = [](OracleWorld& w) {
    std::uint64_t total = 0;
    for (auto& ep : w.endpoints) {
      total += ep->vs_stats().sync_msgs_sent +
               ep->vs_stats().aggregates_relayed;
    }
    return total;
  };
  const int n = 12;
  OracleWorld direct(n);
  direct.change_view(direct.all());
  direct.change_view(direct.all());

  OracleWorld tiered(n);
  for (auto& ep : tiered.endpoints) ep->set_sync_routing(two_tier(n, 3));
  tiered.change_view(tiered.all());
  tiered.change_view(tiered.all());

  EXPECT_LT(total_sync_msgs(tiered), total_sync_msgs(direct))
      << "two-tier dissemination must reduce sync traffic for n=" << n;
}

TEST(TwoTier, OrphanFallsBackToDirectWhenLeaderExcluded) {
  OracleWorld w(4);
  // p1 leads everyone.
  gcs::SyncRouting routing;
  routing.mode = gcs::SyncRouting::Mode::kTwoTier;
  for (int i = 0; i < 4; ++i) {
    routing.leader_of[w.pid(i)] = w.pid(0);
  }
  for (auto& ep : w.endpoints) ep->set_sync_routing(routing);
  w.change_view(w.all());

  // The leader dies; the others must still reconfigure (direct fallback).
  w.ep(0).crash();
  w.transport(0).crash();
  const auto rest = w.pids({1, 2, 3});
  for (ProcessId p : rest) w.oracle.start_change_to(p, rest);
  w.run();
  const View v = w.oracle.make_view(rest);
  for (ProcessId p : rest) w.oracle.deliver_view_to(p, v);
  w.run(2 * sim::kSecond);
  for (int i = 1; i < 4; ++i) {
    EXPECT_EQ(w.ep(i).current_view().members, rest) << "endpoint " << i;
  }
  w.checkers.finalize();
}

TEST(CompactSync, StrangersGetCutlessSyncs) {
  // Two disjoint singleton-ish groups merge: every peer is a stranger, so
  // compact syncs suffice, and the merge must still complete correctly.
  OracleWorld w(4);
  gcs::SyncRouting routing;
  routing.compact_sync_to_strangers = true;
  for (auto& ep : w.endpoints) ep->set_sync_routing(routing);
  w.change_view(w.pids({0, 1}));
  // Note: processes 2,3 stay in initial singleton views.
  w.oracle.start_change(w.all());
  w.run();
  w.oracle.deliver_view(w.all());
  w.settle();
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(w.ep(i).current_view().members, w.all()) << "endpoint " << i;
  }
  w.checkers.finalize();
}

TEST(CompactSync, SavesBytesOnMerges) {
  auto sync_bytes = [](OracleWorld& w) {
    std::uint64_t total = 0;
    for (auto& ep : w.endpoints) total += ep->vs_stats().sync_bytes_sent;
    return total;
  };
  auto run_merge = [](OracleWorld& w) {
    w.change_view(w.pids({0, 1, 2}));
    for (int i = 0; i < 3; ++i) {
      for (int k = 0; k < 10; ++k) w.client(i).send("m");
    }
    w.settle();
    w.oracle.start_change(w.all());  // merge with 3 strangers
    w.run();
    w.oracle.deliver_view(w.all());
    w.settle();
  };
  OracleWorld plain(6);
  run_merge(plain);
  OracleWorld compact(6);
  gcs::SyncRouting routing;
  routing.compact_sync_to_strangers = true;
  for (auto& ep : compact.endpoints) ep->set_sync_routing(routing);
  run_merge(compact);
  EXPECT_LT(sync_bytes(compact), sync_bytes(plain));
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(compact.ep(i).current_view().members, compact.all());
  }
  compact.checkers.finalize();
}

}  // namespace
}  // namespace vsgc
