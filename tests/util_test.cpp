// Unit tests: strong ids, deterministic RNG, binary codec, invariant macro.
#include <gtest/gtest.h>

#include <set>

#include "util/assert.hpp"
#include "util/ids.hpp"
#include "util/rng.hpp"
#include "util/serialization.hpp"

namespace vsgc {
namespace {

TEST(Ids, ProcessOrderingAndFormatting) {
  EXPECT_LT(ProcessId{1}, ProcessId{2});
  EXPECT_EQ(ProcessId{7}, ProcessId{7});
  EXPECT_EQ(to_string(ProcessId{3}), "p3");
  EXPECT_EQ(to_string(ServerId{0}), "s0");
}

TEST(Ids, StartChangeIdMonotone) {
  EXPECT_LT(StartChangeId::zero(), StartChangeId{1});
  EXPECT_EQ(to_string(StartChangeId{5}), "cid:5");
}

TEST(Ids, ViewIdLexicographic) {
  EXPECT_LT(ViewId::zero(), (ViewId{1, 0}));
  EXPECT_LT((ViewId{1, 5}), (ViewId{2, 0}));  // epoch dominates
  EXPECT_LT((ViewId{2, 0}), (ViewId{2, 1}));  // origin breaks ties
  EXPECT_EQ(to_string(ViewId{3, 1}), "v3.1");
}

TEST(Ids, HashDistinguishes) {
  const std::hash<ViewId> h;
  EXPECT_NE(h(ViewId{1, 0}), h(ViewId{0, 1}));
}

TEST(Rng, DeterministicPerSeed) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    const auto va = a.next_u64();
    EXPECT_EQ(va, b.next_u64());
  }
  EXPECT_NE(a.next_u64(), c.next_u64());
}

TEST(Rng, BoundsRespected) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.next_below(10), 10u);
    const auto v = r.next_in(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng r(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

TEST(Rng, ForkIndependentButDeterministic) {
  Rng a(11), b(11);
  Rng fa = a.fork(), fb = b.fork();
  EXPECT_EQ(fa.next_u64(), fb.next_u64());
}

TEST(Serialization, PrimitivesRoundTrip) {
  Encoder enc;
  enc.put_u8(0xab);
  enc.put_u32(0xdeadbeef);
  enc.put_u64(0x0123456789abcdefULL);
  enc.put_i64(-42);
  enc.put_string("hello world");
  Decoder dec(enc.bytes());
  EXPECT_EQ(dec.get_u8(), 0xab);
  EXPECT_EQ(dec.get_u32(), 0xdeadbeefu);
  EXPECT_EQ(dec.get_u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(dec.get_i64(), -42);
  EXPECT_EQ(dec.get_string(), "hello world");
  EXPECT_TRUE(dec.done());
}

TEST(Serialization, IdsAndSetsRoundTrip) {
  Encoder enc;
  enc.put_process(ProcessId{9});
  enc.put_start_change_id(StartChangeId{77});
  enc.put_view_id(ViewId{5, 2});
  enc.put_process_set({ProcessId{1}, ProcessId{3}, ProcessId{8}});
  Decoder dec(enc.bytes());
  EXPECT_EQ(dec.get_process(), ProcessId{9});
  EXPECT_EQ(dec.get_start_change_id(), StartChangeId{77});
  EXPECT_EQ(dec.get_view_id(), (ViewId{5, 2}));
  EXPECT_EQ(dec.get_process_set(),
            (std::set<ProcessId>{ProcessId{1}, ProcessId{3}, ProcessId{8}}));
  EXPECT_TRUE(dec.done());
}

TEST(Serialization, UnderrunThrows) {
  Encoder enc;
  enc.put_u8(1);
  Decoder dec(enc.bytes());
  dec.get_u8();
  EXPECT_THROW(dec.get_u32(), DecodeError);
}

TEST(Serialization, EmptyStringAndSet) {
  Encoder enc;
  enc.put_string("");
  enc.put_process_set({});
  Decoder dec(enc.bytes());
  EXPECT_EQ(dec.get_string(), "");
  EXPECT_TRUE(dec.get_process_set().empty());
}

TEST(Assert, RequireThrowsWithMessage) {
  try {
    VSGC_REQUIRE(1 == 2, "context " << 42);
    FAIL() << "expected throw";
  } catch (const InvariantViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("context 42"), std::string::npos);
  }
}

TEST(Assert, RequirePassesSilently) {
  EXPECT_NO_THROW(VSGC_REQUIRE(true, "never"));
}

}  // namespace
}  // namespace vsgc
