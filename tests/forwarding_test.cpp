// Tests for the Section 5.2.2 forwarding strategies: when a member of the
// transitional set committed to a message that another member lacks (because
// the original sender is gone), the message must be forwarded so both can
// move to the new view with the agreed cut.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "helpers/oracle_world.hpp"

namespace vsgc {
namespace {

using testing::OracleWorld;

/// Scenario: p1, p2, p3 share a view. p1 multicasts a message; p3's link to
/// p1 is down, so only p2 receives it. The membership then excludes p1.
/// p2 committed to the message in its cut, so p2 must forward it to p3 and
/// both must deliver it before installing the {p2, p3} view.
void run_forwarding_scenario(gcs::ForwardingKind kind,
                             std::uint64_t* forwarded_copies) {
  OracleWorld w(3, /*seed=*/1, {}, kind);
  std::vector<std::vector<std::string>> rx(3);
  for (int i = 0; i < 3; ++i) {
    w.client(i).on_deliver([&rx, i](ProcessId from, const gcs::AppMsg& m) {
      rx[static_cast<std::size_t>(i)].push_back(to_string(from) + ":" +
                                                m.payload);
    });
  }
  w.change_view(w.all());

  // p3 stops hearing p1 directly.
  w.network->set_link_up(net::node_of(w.pid(0)), net::node_of(w.pid(2)),
                         false);
  w.client(0).send("lost-msg");
  w.run();
  EXPECT_EQ(rx[1].size(), 1u) << "p2 must have the message";
  EXPECT_TRUE(rx[2].empty()) << "p3 must be missing the message";

  // p1 is gone for good (its endless retransmissions to the dead link would
  // otherwise keep the simulation busy); membership excludes it and p2, p3
  // reconfigure into {p2, p3}.
  w.ep(0).crash();
  w.transport(0).crash();
  w.oracle.start_change_to(w.pid(1), w.pids({1, 2}));
  w.oracle.start_change_to(w.pid(2), w.pids({1, 2}));
  w.run();
  const View v = w.oracle.make_view(w.pids({1, 2}));
  w.oracle.deliver_view_to(w.pid(1), v);
  w.oracle.deliver_view_to(w.pid(2), v);
  w.run(2 * sim::kSecond);

  EXPECT_EQ(w.ep(1).current_view().members, w.pids({1, 2}));
  EXPECT_EQ(w.ep(2).current_view().members, w.pids({1, 2}));
  ASSERT_EQ(rx[2].size(), 1u) << "the lost message must be forwarded to p3";
  EXPECT_EQ(rx[2][0], "p1:lost-msg");
  *forwarded_copies = w.ep(1).vs_stats().forwards_sent +
                      w.ep(2).vs_stats().forwards_sent;
  w.checkers.finalize();
}

TEST(Forwarding, SimpleStrategyRecoversMissingMessage) {
  std::uint64_t copies = 0;
  run_forwarding_scenario(gcs::ForwardingKind::kSimple, &copies);
  EXPECT_GE(copies, 1u);
}

TEST(Forwarding, MinCopiesStrategyRecoversMissingMessage) {
  std::uint64_t copies = 0;
  run_forwarding_scenario(gcs::ForwardingKind::kMinCopies, &copies);
  EXPECT_EQ(copies, 1u) << "min-copies must forward exactly one copy";
}

TEST(Forwarding, NoForwardingWhenNothingMissing) {
  for (auto kind :
       {gcs::ForwardingKind::kSimple, gcs::ForwardingKind::kMinCopies}) {
    OracleWorld w(3, 1, {}, kind);
    w.change_view(w.all());
    w.client(0).send("m");
    w.settle();
    w.change_view(w.all());
    std::uint64_t copies = 0;
    for (int i = 0; i < 3; ++i) copies += w.ep(i).vs_stats().forwards_sent;
    EXPECT_EQ(copies, 0u);
    w.checkers.finalize();
  }
}

TEST(Forwarding, MultipleMissingMessagesAllRecovered) {
  OracleWorld w(3, 1, {}, gcs::ForwardingKind::kMinCopies);
  std::vector<std::string> rx3;
  w.client(2).on_deliver(
      [&rx3](ProcessId, const gcs::AppMsg& m) { rx3.push_back(m.payload); });
  w.change_view(w.all());
  w.network->set_link_up(net::node_of(w.pid(0)), net::node_of(w.pid(2)),
                         false);
  for (int i = 0; i < 7; ++i) w.client(0).send("x" + std::to_string(i));
  w.run();
  EXPECT_TRUE(rx3.empty());
  w.ep(0).crash();
  w.transport(0).crash();
  w.oracle.start_change_to(w.pid(1), w.pids({1, 2}));
  w.oracle.start_change_to(w.pid(2), w.pids({1, 2}));
  w.run();
  const View v = w.oracle.make_view(w.pids({1, 2}));
  w.oracle.deliver_view_to(w.pid(1), v);
  w.oracle.deliver_view_to(w.pid(2), v);
  w.run(2 * sim::kSecond);
  ASSERT_EQ(rx3.size(), 7u);
  for (int i = 0; i < 7; ++i) {
    EXPECT_EQ(rx3[static_cast<std::size_t>(i)], "x" + std::to_string(i))
        << "forwarded messages must respect FIFO order";
  }
  w.checkers.finalize();
}

TEST(Forwarding, DuplicateForwardsSuppressed) {
  // Same scenario, but with message loss forcing retransmission pressure;
  // forwarded_set must still prevent duplicate copies per destination.
  std::uint64_t copies = 0;
  run_forwarding_scenario(gcs::ForwardingKind::kMinCopies, &copies);
  EXPECT_EQ(copies, 1u);
}

}  // namespace
}  // namespace vsgc
