// The simulation contract every property sweep relies on: an execution is a
// pure function of its seed. Same seed => identical event trace; different
// seed => (almost surely) different schedule.
#include <gtest/gtest.h>

#include <sstream>
#include <string_view>

#include "app/world.hpp"
#include "obs/trace_recorder.hpp"
#include "sim/failure_injector.hpp"

namespace vsgc {
namespace {

std::string run_and_fingerprint(std::uint64_t seed) {
  app::WorldConfig cfg;
  cfg.num_clients = 4;
  cfg.num_servers = 2;
  cfg.seed = seed;
  cfg.net.jitter = 500;
  cfg.net.drop_probability = 0.1;
  app::World w(cfg);
  w.start();
  w.run_until_converged(w.all_members(), 10 * sim::kSecond);
  for (int i = 0; i < 4; ++i) {
    w.client(i).send("m" + std::to_string(i));
  }
  w.process(3).crash();
  w.run_for(5 * sim::kSecond);
  w.process(3).recover();
  w.run_for(10 * sim::kSecond);

  std::ostringstream os;
  for (const auto& ev : w.trace().recorded()) {
    os << ev.at << ":" << ev.body.index() << ";";
    if (const auto* d = std::get_if<spec::GcsDeliver>(&ev.body)) {
      os << to_string(d->p) << to_string(d->q) << d->msg.uid << ";";
    } else if (const auto* v = std::get_if<spec::GcsView>(&ev.body)) {
      os << to_string(v->p) << to_string(v->view) << ";";
    }
  }
  return os.str();
}

TEST(Determinism, SameSeedSameTrace) {
  const std::string a = run_and_fingerprint(42);
  const std::string b = run_and_fingerprint(42);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b) << "executions must be pure functions of the seed";
}

TEST(Determinism, DifferentSeedDifferentSchedule) {
  EXPECT_NE(run_and_fingerprint(42), run_and_fingerprint(43));
}

std::string run_batched_jsonl(std::uint64_t seed) {
  // Non-default data-plane settings: a real flush window, delayed acks, and
  // small windows, so batching, piggybacking, credit stalls, and backoff all
  // engage — the recorded JSONL (with lifecycle spans) must still be a pure
  // function of the seed.
  app::WorldConfig cfg;
  cfg.num_clients = 3;
  cfg.seed = seed;
  cfg.net.jitter = 300;
  cfg.net.drop_probability = 0.05;
  cfg.transport.flush_window = 200;  // 200us coalescing window
  cfg.transport.ack_delay = 200;
  cfg.transport.send_window = 16;
  cfg.transport.recv_window = 16;
  cfg.lifecycle_spans = true;
  app::World w(cfg);
  w.start();
  w.run_until_converged(w.all_members(), 10 * sim::kSecond);
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 3; ++i) {
      w.client(i).send("b" + std::to_string(round * 3 + i));
    }
    w.run_for(50 * sim::kMillisecond);
  }
  w.run_for(2 * sim::kSecond);
  w.check_transport_bounded();
  std::ostringstream os;
  obs::write_jsonl(w.trace().recorded(), os);
  return os.str();
}

TEST(Determinism, BatchedDataPlaneTraceIsByteIdentical) {
  const std::string a = run_batched_jsonl(7);
  const std::string b = run_batched_jsonl(7);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b) << "batching must not leak nondeterminism into the trace";
}

// A corruption churn run (state mutators + the traffic that exposes them +
// the recovery machinery they trigger) is still a pure function of the seed,
// and replaying its recorded script reproduces the run byte for byte — the
// contract vsgc_stress's corruption bundles and their minimizer rely on.
std::string corruption_churn_jsonl(std::uint64_t injector_seed,
                                   sim::FaultScript* out_script,
                                   const sim::FaultScript* replay) {
  app::WorldConfig cfg;
  cfg.num_clients = 4;
  cfg.num_servers = 2;
  cfg.seed = 11;
  cfg.eventual_checkers = true;
  app::World w(cfg);
  w.start();
  w.run_until_converged(w.all_members(), 10 * sim::kSecond);

  sim::FailureInjector::Policy policy;
  policy.steps = 12;
  policy.w_traffic = 6;
  policy.w_crash = 0;
  policy.w_recover = 0;
  policy.w_leave = 0;
  policy.w_rejoin = 0;
  policy.w_partition = 0;
  policy.w_heal = 0;
  policy.w_link = 0;
  policy.w_drop_spike = 0;
  policy.w_delay_burst = 0;
  policy.w_server_outage = 0;
  policy.w_crash_in_delivery = 0;
  policy.w_partition_in_view_change = 0;
  policy.w_corrupt = 10;
  sim::FailureInjector injector(w.fault_target(), policy, injector_seed);
  if (replay != nullptr) {
    injector.replay(*replay);
  } else {
    injector.run_churn();
  }
  if (out_script != nullptr) *out_script = injector.script();
  injector.stabilize();
  w.run_for(10 * sim::kSecond);

  std::ostringstream os;
  obs::write_jsonl(w.trace().recorded(), os);
  return os.str();
}

TEST(Determinism, CorruptionChurnTraceIsByteIdentical) {
  const std::string a = corruption_churn_jsonl(13, nullptr, nullptr);
  const std::string b = corruption_churn_jsonl(13, nullptr, nullptr);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b)
      << "state corruption must not leak nondeterminism into the trace";
}

TEST(Determinism, CorruptionScriptReplayReproducesTheTrace) {
  sim::FaultScript script;
  const std::string generated = corruption_churn_jsonl(13, &script, nullptr);
  bool saw_corrupt = false;
  for (const sim::FaultOp& op : script.ops) {
    if (std::string_view(op.name()).starts_with("corrupt_")) {
      saw_corrupt = true;
    }
  }
  EXPECT_TRUE(saw_corrupt) << "the policy must have drawn corruption ops";
  const std::string replayed = corruption_churn_jsonl(13, nullptr, &script);
  EXPECT_EQ(generated, replayed)
      << "replaying the recorded corruption script must reproduce the run";
}

}  // namespace
}  // namespace vsgc
