// The simulation contract every property sweep relies on: an execution is a
// pure function of its seed. Same seed => identical event trace; different
// seed => (almost surely) different schedule.
#include <gtest/gtest.h>

#include <sstream>

#include "app/world.hpp"
#include "obs/trace_recorder.hpp"

namespace vsgc {
namespace {

std::string run_and_fingerprint(std::uint64_t seed) {
  app::WorldConfig cfg;
  cfg.num_clients = 4;
  cfg.num_servers = 2;
  cfg.seed = seed;
  cfg.net.jitter = 500;
  cfg.net.drop_probability = 0.1;
  app::World w(cfg);
  w.start();
  w.run_until_converged(w.all_members(), 10 * sim::kSecond);
  for (int i = 0; i < 4; ++i) {
    w.client(i).send("m" + std::to_string(i));
  }
  w.process(3).crash();
  w.run_for(5 * sim::kSecond);
  w.process(3).recover();
  w.run_for(10 * sim::kSecond);

  std::ostringstream os;
  for (const auto& ev : w.trace().recorded()) {
    os << ev.at << ":" << ev.body.index() << ";";
    if (const auto* d = std::get_if<spec::GcsDeliver>(&ev.body)) {
      os << to_string(d->p) << to_string(d->q) << d->msg.uid << ";";
    } else if (const auto* v = std::get_if<spec::GcsView>(&ev.body)) {
      os << to_string(v->p) << to_string(v->view) << ";";
    }
  }
  return os.str();
}

TEST(Determinism, SameSeedSameTrace) {
  const std::string a = run_and_fingerprint(42);
  const std::string b = run_and_fingerprint(42);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b) << "executions must be pure functions of the seed";
}

TEST(Determinism, DifferentSeedDifferentSchedule) {
  EXPECT_NE(run_and_fingerprint(42), run_and_fingerprint(43));
}

std::string run_batched_jsonl(std::uint64_t seed) {
  // Non-default data-plane settings: a real flush window, delayed acks, and
  // small windows, so batching, piggybacking, credit stalls, and backoff all
  // engage — the recorded JSONL (with lifecycle spans) must still be a pure
  // function of the seed.
  app::WorldConfig cfg;
  cfg.num_clients = 3;
  cfg.seed = seed;
  cfg.net.jitter = 300;
  cfg.net.drop_probability = 0.05;
  cfg.transport.flush_window = 200;  // 200us coalescing window
  cfg.transport.ack_delay = 200;
  cfg.transport.send_window = 16;
  cfg.transport.recv_window = 16;
  cfg.lifecycle_spans = true;
  app::World w(cfg);
  w.start();
  w.run_until_converged(w.all_members(), 10 * sim::kSecond);
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 3; ++i) {
      w.client(i).send("b" + std::to_string(round * 3 + i));
    }
    w.run_for(50 * sim::kMillisecond);
  }
  w.run_for(2 * sim::kSecond);
  w.check_transport_bounded();
  std::ostringstream os;
  obs::write_jsonl(w.trace().recorded(), os);
  return os.str();
}

TEST(Determinism, BatchedDataPlaneTraceIsByteIdentical) {
  const std::string a = run_batched_jsonl(7);
  const std::string b = run_batched_jsonl(7);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b) << "batching must not leak nondeterminism into the trace";
}

}  // namespace
}  // namespace vsgc
