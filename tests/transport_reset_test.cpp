// Tests for the CO_RFIFO stream-reset handshake: recovery of a RECEIVER that
// lost its state must never wedge a connection whose acked prefix is gone
// (the Section 8 scenario the churn sweeps uncovered — see EXPERIMENTS.md).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/network.hpp"
#include "spec/co_rfifo_checker.hpp"
#include "transport/co_rfifo.hpp"

namespace vsgc::transport {
namespace {

struct Pair {
  explicit Pair(net::Network::Config cfg = {}, std::uint64_t seed = 1,
                CoRfifoTransport::Config tcfg = {})
      : network(sim, Rng(seed), cfg),
        a(sim, network, net::NodeId{1}, tcfg),
        b(sim, network, net::NodeId{2}, tcfg) {
    a.set_reliable({net::NodeId{2}});
    checker.note_reliable(net::NodeId{1}, {net::NodeId{1}, net::NodeId{2}});
    b.set_deliver_handler([this](net::NodeId from, const std::any& payload) {
      const auto uid = std::any_cast<std::uint64_t>(payload);
      checker.note_deliver(from, net::NodeId{2}, uid);
      received.push_back(uid);
    });
  }

  void send(std::uint64_t uid) {
    checker.note_send(net::NodeId{1}, {net::NodeId{2}}, uid);
    a.send({net::NodeId{2}}, uid, 8);
  }

  sim::Simulator sim;
  net::Network network;
  CoRfifoTransport a;
  CoRfifoTransport b;
  /// Every delivery is checked against the CO_RFIFO spec automaton.
  spec::CoRfifoChecker checker;
  std::vector<std::uint64_t> received;
};

TEST(CoRfifoReset, ReceiverRecoveryUnwedgesOngoingStream) {
  Pair h;
  // Establish a stream with an acked prefix.
  for (std::uint64_t i = 1; i <= 5; ++i) h.send(i);
  h.sim.run_to_quiescence();
  ASSERT_EQ(h.received.size(), 5u);

  // Receiver crashes and recovers: its incoming state (and the delivered
  // prefix) is gone. The sender does not notice and keeps streaming.
  h.b.crash();
  h.sim.run_until(h.sim.now() + sim::kMillisecond);
  h.b.recover();
  h.received.clear();

  for (std::uint64_t i = 6; i <= 8; ++i) h.send(i);
  h.sim.run_until(h.sim.now() + 2 * sim::kSecond);

  // Without the reset handshake the receiver would buffer seq 6.. forever
  // waiting for the unrecoverable seq 1..5. With it, the suffix arrives as a
  // fresh stream, in order.
  EXPECT_EQ(h.received, (std::vector<std::uint64_t>{6, 7, 8}));
}

TEST(CoRfifoReset, UnackedSuffixSurvivesTheReset) {
  Pair h;
  h.send(1);
  h.sim.run_to_quiescence();
  // Crash the receiver, then send while it is down: these stay unacked.
  h.b.crash();
  h.send(2);
  h.send(3);
  h.sim.run_until(h.sim.now() + 50 * sim::kMillisecond);
  h.b.recover();
  h.received.clear();
  h.sim.run_until(h.sim.now() + 2 * sim::kSecond);
  // The unacked suffix is re-homed onto the fresh incarnation and delivered.
  EXPECT_EQ(h.received, (std::vector<std::uint64_t>{2, 3}));
}

TEST(CoRfifoReset, NoResetWhenPrefixStillRetransmittable) {
  // If nothing was acked yet, a recovered receiver simply gets the stream
  // from seq 1 via retransmission — no reset, no loss.
  net::Network::Config cfg;
  Pair h(cfg);
  h.network.set_node_up(net::NodeId{2}, false);  // receiver unreachable
  h.send(1);
  h.send(2);
  h.sim.run_until(h.sim.now() + 50 * sim::kMillisecond);
  h.network.set_node_up(net::NodeId{2}, true);
  h.sim.run_until(h.sim.now() + 2 * sim::kSecond);
  EXPECT_EQ(h.received, (std::vector<std::uint64_t>{1, 2}));
}

TEST(CoRfifoReset, RepeatedRecoveryCyclesStayLive) {
  Pair h;
  std::uint64_t uid = 0;
  for (int cycle = 0; cycle < 4; ++cycle) {
    h.send(++uid);
    h.sim.run_to_quiescence();
    h.b.crash();
    h.sim.run_until(h.sim.now() + sim::kMillisecond);
    h.b.recover();
  }
  h.received.clear();
  h.send(++uid);
  h.sim.run_until(h.sim.now() + 2 * sim::kSecond);
  ASSERT_EQ(h.received.size(), 1u);
  EXPECT_EQ(h.received[0], uid);
}

TEST(CoRfifoReset, LossDuringHandshakeStillConverges) {
  net::Network::Config cfg;
  cfg.drop_probability = 0.3;
  Pair h(cfg, 77);
  for (std::uint64_t i = 1; i <= 10; ++i) h.send(i);
  h.sim.run_to_quiescence();
  h.b.crash();
  h.sim.run_until(h.sim.now() + sim::kMillisecond);
  h.b.recover();
  h.received.clear();
  for (std::uint64_t i = 11; i <= 30; ++i) h.send(i);
  h.sim.run_to_quiescence();
  ASSERT_EQ(h.received.size(), 20u) << "reset + retransmission must deliver "
                                       "the whole post-recovery stream";
  for (std::uint64_t i = 0; i < 20; ++i) EXPECT_EQ(h.received[i], 11 + i);
}

TEST(CoRfifoReset, RehomedPacketsCountAsRetransmissions) {
  // Regression: the reset re-home loop used to bypass stats_.retransmissions,
  // so a recovery storm looked free in the retransmission tables. With the
  // retransmit timer pushed out of reach, the one re-homed packet is the only
  // possible retransmission.
  CoRfifoTransport::Config tcfg;
  tcfg.retransmit_timeout = 3600 * sim::kSecond;
  Pair h({}, 1, tcfg);
  h.send(1);
  h.sim.run_until(h.sim.now() + sim::kSecond);
  ASSERT_EQ(h.received.size(), 1u);
  ASSERT_EQ(h.a.stats().retransmissions, 0u);

  h.b.crash();
  h.sim.run_until(h.sim.now() + sim::kMillisecond);
  h.b.recover();
  h.received.clear();
  h.send(2);
  h.sim.run_until(h.sim.now() + 2 * sim::kSecond);

  EXPECT_EQ(h.received, (std::vector<std::uint64_t>{2}));
  EXPECT_EQ(h.a.stats().retransmissions, 1u)
      << "re-homing the unacked suffix onto the fresh incarnation is a "
         "retransmission and must be counted as one";
}

TEST(CoRfifoReset, IncarnationResetUnderSustainedLossStaysWithinSpec) {
  // The reset handshake itself runs under sustained packet loss AND a link
  // outage that strands the first reset exchanges: the receiver crashes and
  // recovers while the partition holds, so every handshake packet sent up to
  // then is lost. Pair's CoRfifoChecker asserts FIFO/no-gap/no-duplicate on
  // every delivery throughout.
  net::Network::Config cfg;
  cfg.drop_probability = 0.25;
  Pair h(cfg, 4242);
  for (std::uint64_t i = 1; i <= 5; ++i) h.send(i);
  h.sim.run_to_quiescence();
  ASSERT_EQ(h.received.size(), 5u);

  h.network.set_link_up(net::NodeId{1}, net::NodeId{2}, false);
  for (std::uint64_t i = 6; i <= 8; ++i) h.send(i);
  h.sim.run_until(h.sim.now() + 100 * sim::kMillisecond);
  h.b.crash();
  h.sim.run_until(h.sim.now() + 50 * sim::kMillisecond);
  h.b.recover();
  // Recovery completed behind the partition: any reset traffic is stranded.
  h.sim.run_until(h.sim.now() + 100 * sim::kMillisecond);
  EXPECT_EQ(h.received.size(), 5u) << "nothing crosses a downed link";

  h.network.set_link_up(net::NodeId{1}, net::NodeId{2}, true);
  h.sim.run_to_quiescence();
  h.send(9);
  h.send(10);
  h.sim.run_to_quiescence();

  const std::vector<std::uint64_t> tail(h.received.begin() + 5,
                                        h.received.end());
  EXPECT_EQ(tail, (std::vector<std::uint64_t>{6, 7, 8, 9, 10}))
      << "the unacked suffix and fresh traffic arrive exactly once, in order";
  EXPECT_GE(h.a.stats().retransmissions, 3u)
      << "the stranded suffix had to be retransmitted";
}

TEST(CoRfifoReset, StaleResetAckIgnored) {
  Pair h;
  h.send(1);
  h.sim.run_to_quiescence();
  // Forge a stale reset for an old incarnation: must be ignored.
  Frame stale;
  stale.header.flags = wire::kFlagReset;
  stale.header.ack_incarnation = 1;  // definitely not the current incarnation
  h.network.send(net::NodeId{2}, net::NodeId{1}, std::any(stale),
                 wire::kFrameHeaderBytes);
  h.sim.run_to_quiescence();
  h.send(2);
  h.sim.run_to_quiescence();
  EXPECT_EQ(h.received, (std::vector<std::uint64_t>{1, 2}));
}

TEST(CoRfifoFlowControl, ReceiveWindowBoundsOutOfOrderBuffer) {
  // Regression for the unbounded reorder buffer: the receiver used to emplace
  // every out-of-window packet into `out_of_order` forever. With recv_window
  // = 4, a gap at seq 1 plus a burst of later frames may buffer at most 4
  // entries; the rest are dropped and recovered by retransmission.
  CoRfifoTransport::Config tcfg;
  tcfg.max_batch = 1;  // one entry per frame, so individual frames can race
  tcfg.recv_window = 4;
  tcfg.retransmit_timeout = 50 * sim::kMillisecond;
  Pair h({}, 1, tcfg);

  h.network.set_link_up(net::NodeId{1}, net::NodeId{2}, false);
  h.send(1);  // frame for seq 1 is lost on the downed link
  h.sim.run_until(h.sim.now() + sim::kMillisecond);
  h.network.set_link_up(net::NodeId{1}, net::NodeId{2}, true);
  for (std::uint64_t i = 2; i <= 10; ++i) h.send(i);
  h.sim.run_to_quiescence();

  const auto& rx_stats = h.b.stats();
  EXPECT_GE(rx_stats.ooo_dropped, 1u)
      << "seqs beyond next_expected + recv_window must be dropped";
  EXPECT_LE(rx_stats.peak_out_of_order, 4u)
      << "the reorder buffer must never exceed the receive window";
  EXPECT_EQ(h.received,
            (std::vector<std::uint64_t>{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}))
      << "retransmission must recover everything the window dropped";
  spec::CoRfifoChecker::check_bounded(
      net::NodeId{2}, h.b.stats().peak_unacked, tcfg.send_window,
      rx_stats.peak_out_of_order, tcfg.recv_window);
}

TEST(CoRfifoFlowControl, CreditWindowBoundsUnackedQueue) {
  CoRfifoTransport::Config tcfg;
  tcfg.send_window = 8;
  Pair h({}, 1, tcfg);
  h.network.set_node_up(net::NodeId{2}, false);  // no acks will come back
  for (std::uint64_t i = 1; i <= 50; ++i) h.send(i);
  h.sim.run_until(h.sim.now() + 500 * sim::kMillisecond);

  const auto& tx = h.a.stats();
  EXPECT_LE(tx.peak_unacked, 8u)
      << "sends past the credit window must queue, not enter unacked";
  EXPECT_GE(tx.window_stalls, 1u);
  EXPECT_GE(tx.peak_pending, 42u) << "the overflow waits in pending";

  h.network.set_node_up(net::NodeId{2}, true);
  h.sim.run_to_quiescence();
  ASSERT_EQ(h.received.size(), 50u) << "credits from acks drain the queue";
  for (std::uint64_t i = 1; i <= 50; ++i) EXPECT_EQ(h.received[i - 1], i);
  EXPECT_LE(h.a.stats().peak_unacked, 8u);
}

TEST(CoRfifoFlowControl, ExponentialBackoffShrinksDuplicateStorms) {
  // Acks from b to a are severed (one-way outage), so a retransmits the same
  // message into b forever. With a fixed interval that is a duplicate storm;
  // with capped exponential backoff the duplicate count shrinks by the
  // backoff factor. Same topology, same duration — only the policy differs.
  const auto run = [](std::uint32_t backoff_limit) {
    CoRfifoTransport::Config tcfg;
    tcfg.backoff_limit = backoff_limit;
    Pair h({}, 1, tcfg);
    h.network.set_oneway_link_up(net::NodeId{2}, net::NodeId{1}, false);
    h.send(1);
    h.sim.run_until(h.sim.now() + 4 * sim::kSecond);
    return std::pair<std::uint64_t, std::uint64_t>{
        h.a.stats().retransmissions, h.b.stats().duplicates_dropped};
  };
  const auto [fixed_retrans, fixed_dups] = run(1);
  const auto [backoff_retrans, backoff_dups] = run(8);

  EXPECT_GT(fixed_retrans, 100u) << "fixed interval keeps hammering";
  EXPECT_LT(backoff_retrans * 3, fixed_retrans)
      << "backoff must cut retransmissions by at least 3x over the outage";
  EXPECT_LT(backoff_dups * 3, fixed_dups)
      << "duplicate deliveries at the receiver must shrink accordingly";
}

TEST(CoRfifoFlowControl, BackoffResetsOnAckProgress) {
  CoRfifoTransport::Config tcfg;
  tcfg.backoff_limit = 8;
  Pair h({}, 1, tcfg);
  // Phase 1: outage long enough to reach the backoff cap.
  h.network.set_oneway_link_up(net::NodeId{2}, net::NodeId{1}, false);
  h.send(1);
  h.sim.run_until(h.sim.now() + 2 * sim::kSecond);
  h.network.set_oneway_link_up(net::NodeId{2}, net::NodeId{1}, true);
  h.sim.run_to_quiescence();
  const std::uint64_t after_heal = h.a.stats().retransmissions;

  // Phase 2: healthy traffic retransmits promptly again after a single loss —
  // the first retransmit fires one base interval (not 8x) after the send.
  h.network.set_link_up(net::NodeId{1}, net::NodeId{2}, false);
  h.send(2);
  h.sim.run_until(h.sim.now() + sim::kMillisecond);
  h.network.set_link_up(net::NodeId{1}, net::NodeId{2}, true);
  const sim::Time healed_at = h.sim.now();
  h.sim.run_until(healed_at + tcfg.retransmit_timeout +
                  10 * sim::kMillisecond);
  EXPECT_GT(h.a.stats().retransmissions, after_heal)
      << "after ack progress the timer runs at the base interval again";
  EXPECT_EQ(h.received, (std::vector<std::uint64_t>{1, 2}));
}

}  // namespace
}  // namespace vsgc::transport
