// Tests for the CO_RFIFO stream-reset handshake: recovery of a RECEIVER that
// lost its state must never wedge a connection whose acked prefix is gone
// (the Section 8 scenario the churn sweeps uncovered — see EXPERIMENTS.md).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/network.hpp"
#include "transport/co_rfifo.hpp"

namespace vsgc::transport {
namespace {

struct Pair {
  explicit Pair(net::Network::Config cfg = {}, std::uint64_t seed = 1)
      : network(sim, Rng(seed), cfg),
        a(sim, network, net::NodeId{1}),
        b(sim, network, net::NodeId{2}) {
    a.set_reliable({net::NodeId{2}});
    b.set_deliver_handler([this](net::NodeId, const std::any& payload) {
      received.push_back(std::any_cast<std::uint64_t>(payload));
    });
  }

  void send(std::uint64_t uid) { a.send({net::NodeId{2}}, uid, 8); }

  sim::Simulator sim;
  net::Network network;
  CoRfifoTransport a;
  CoRfifoTransport b;
  std::vector<std::uint64_t> received;
};

TEST(CoRfifoReset, ReceiverRecoveryUnwedgesOngoingStream) {
  Pair h;
  // Establish a stream with an acked prefix.
  for (std::uint64_t i = 1; i <= 5; ++i) h.send(i);
  h.sim.run_to_quiescence();
  ASSERT_EQ(h.received.size(), 5u);

  // Receiver crashes and recovers: its incoming state (and the delivered
  // prefix) is gone. The sender does not notice and keeps streaming.
  h.b.crash();
  h.sim.run_until(h.sim.now() + sim::kMillisecond);
  h.b.recover();
  h.received.clear();

  for (std::uint64_t i = 6; i <= 8; ++i) h.send(i);
  h.sim.run_until(h.sim.now() + 2 * sim::kSecond);

  // Without the reset handshake the receiver would buffer seq 6.. forever
  // waiting for the unrecoverable seq 1..5. With it, the suffix arrives as a
  // fresh stream, in order.
  EXPECT_EQ(h.received, (std::vector<std::uint64_t>{6, 7, 8}));
}

TEST(CoRfifoReset, UnackedSuffixSurvivesTheReset) {
  Pair h;
  h.send(1);
  h.sim.run_to_quiescence();
  // Crash the receiver, then send while it is down: these stay unacked.
  h.b.crash();
  h.send(2);
  h.send(3);
  h.sim.run_until(h.sim.now() + 50 * sim::kMillisecond);
  h.b.recover();
  h.received.clear();
  h.sim.run_until(h.sim.now() + 2 * sim::kSecond);
  // The unacked suffix is re-homed onto the fresh incarnation and delivered.
  EXPECT_EQ(h.received, (std::vector<std::uint64_t>{2, 3}));
}

TEST(CoRfifoReset, NoResetWhenPrefixStillRetransmittable) {
  // If nothing was acked yet, a recovered receiver simply gets the stream
  // from seq 1 via retransmission — no reset, no loss.
  net::Network::Config cfg;
  Pair h(cfg);
  h.network.set_node_up(net::NodeId{2}, false);  // receiver unreachable
  h.send(1);
  h.send(2);
  h.sim.run_until(h.sim.now() + 50 * sim::kMillisecond);
  h.network.set_node_up(net::NodeId{2}, true);
  h.sim.run_until(h.sim.now() + 2 * sim::kSecond);
  EXPECT_EQ(h.received, (std::vector<std::uint64_t>{1, 2}));
}

TEST(CoRfifoReset, RepeatedRecoveryCyclesStayLive) {
  Pair h;
  std::uint64_t uid = 0;
  for (int cycle = 0; cycle < 4; ++cycle) {
    h.send(++uid);
    h.sim.run_to_quiescence();
    h.b.crash();
    h.sim.run_until(h.sim.now() + sim::kMillisecond);
    h.b.recover();
  }
  h.received.clear();
  h.send(++uid);
  h.sim.run_until(h.sim.now() + 2 * sim::kSecond);
  ASSERT_EQ(h.received.size(), 1u);
  EXPECT_EQ(h.received[0], uid);
}

TEST(CoRfifoReset, LossDuringHandshakeStillConverges) {
  net::Network::Config cfg;
  cfg.drop_probability = 0.3;
  Pair h(cfg, 77);
  for (std::uint64_t i = 1; i <= 10; ++i) h.send(i);
  h.sim.run_to_quiescence();
  h.b.crash();
  h.sim.run_until(h.sim.now() + sim::kMillisecond);
  h.b.recover();
  h.received.clear();
  for (std::uint64_t i = 11; i <= 30; ++i) h.send(i);
  h.sim.run_to_quiescence();
  ASSERT_EQ(h.received.size(), 20u) << "reset + retransmission must deliver "
                                       "the whole post-recovery stream";
  for (std::uint64_t i = 0; i < 20; ++i) EXPECT_EQ(h.received[i], 11 + i);
}

TEST(CoRfifoReset, StaleResetAckIgnored) {
  Pair h;
  h.send(1);
  h.sim.run_to_quiescence();
  // Forge a stale reset for an old incarnation: must be ignored.
  Packet stale;
  stale.incarnation = 1;  // definitely not the current incarnation
  stale.is_ack = true;
  stale.is_reset = true;
  h.network.send(net::NodeId{2}, net::NodeId{1}, std::any(stale), 24);
  h.sim.run_to_quiescence();
  h.send(2);
  h.sim.run_to_quiescence();
  EXPECT_EQ(h.received, (std::vector<std::uint64_t>{1, 2}));
}

}  // namespace
}  // namespace vsgc::transport
