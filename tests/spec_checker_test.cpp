// Self-tests for the executable specification automata: each checker must
// accept legal traces and reject traces that violate its property. (If the
// checkers were vacuous, every integration test would be meaningless.)
#include <gtest/gtest.h>

#include "spec/all_checkers.hpp"
#include "util/assert.hpp"

namespace vsgc::spec {
namespace {

const ProcessId kP1{1};
const ProcessId kP2{2};

View make_view(std::uint64_t epoch, std::set<ProcessId> members,
               std::uint64_t cid = 1) {
  View v;
  v.id = ViewId{epoch, 0};
  v.members = members;
  for (ProcessId p : members) v.start_id[p] = StartChangeId{cid};
  return v;
}

gcs::AppMsg msg(ProcessId sender, std::uint64_t uid) {
  return gcs::AppMsg{sender, uid, "m" + std::to_string(uid)};
}

template <typename Checker, typename... Events>
void feed(Checker& c, Events&&... events) {
  sim::Time t = 0;
  (c.on_event(Event{++t, std::forward<Events>(events)}), ...);
}

// ---------------------------------------------------------------------------
// MBRSHP checker (Figure 2)
// ---------------------------------------------------------------------------

TEST(MbrshpCheckerSpec, AcceptsLegalSequence) {
  MbrshpChecker c;
  const View v = make_view(1, {kP1, kP2});
  EXPECT_NO_THROW(feed(c, MbrStartChange{kP1, StartChangeId{1}, {kP1, kP2}},
                       MbrView{kP1, v}));
}

TEST(MbrshpCheckerSpec, RejectsViewWithoutStartChange) {
  MbrshpChecker c;
  EXPECT_THROW(feed(c, MbrView{kP1, make_view(1, {kP1})}), InvariantViolation);
}

TEST(MbrshpCheckerSpec, RejectsNonIncreasingCid) {
  MbrshpChecker c;
  EXPECT_THROW(feed(c, MbrStartChange{kP1, StartChangeId{2}, {kP1}},
                    MbrStartChange{kP1, StartChangeId{2}, {kP1}}),
               InvariantViolation);
}

TEST(MbrshpCheckerSpec, RejectsSelfExclusion) {
  MbrshpChecker c;
  EXPECT_THROW(feed(c, MbrStartChange{kP1, StartChangeId{1}, {kP2}}),
               InvariantViolation);
}

TEST(MbrshpCheckerSpec, RejectsNonMonotonicViews) {
  MbrshpChecker c;
  EXPECT_THROW(
      feed(c, MbrStartChange{kP1, StartChangeId{1}, {kP1}},
           MbrView{kP1, make_view(5, {kP1})},
           MbrStartChange{kP1, StartChangeId{2}, {kP1}},
           MbrView{kP1, make_view(3, {kP1}, 2)}),
      InvariantViolation);
}

TEST(MbrshpCheckerSpec, RejectsStaleStartId) {
  MbrshpChecker c;
  // View carries cid 1 although cid 2 was the last start_change.
  EXPECT_THROW(feed(c, MbrStartChange{kP1, StartChangeId{1}, {kP1}},
                    MbrStartChange{kP1, StartChangeId{2}, {kP1}},
                    MbrView{kP1, make_view(1, {kP1}, 1)}),
               InvariantViolation);
}

TEST(MbrshpCheckerSpec, RejectsMemberOutsideAnnouncedSet) {
  MbrshpChecker c;
  EXPECT_THROW(feed(c, MbrStartChange{kP1, StartChangeId{1}, {kP1}},
                    MbrView{kP1, make_view(1, {kP1, kP2})}),
               InvariantViolation);
}

// ---------------------------------------------------------------------------
// WV_RFIFO checker (Figure 4)
// ---------------------------------------------------------------------------

TEST(WvRfifoCheckerSpec, AcceptsFifoDeliveryInView) {
  WvRfifoChecker c;
  const View v = make_view(1, {kP1, kP2});
  EXPECT_NO_THROW(feed(c, GcsView{kP1, v, {kP1}}, GcsView{kP2, v, {kP2}},
                       GcsSend{kP1, msg(kP1, 1)}, GcsSend{kP1, msg(kP1, 2)},
                       GcsDeliver{kP2, kP1, msg(kP1, 1)},
                       GcsDeliver{kP2, kP1, msg(kP1, 2)}));
}

TEST(WvRfifoCheckerSpec, RejectsDeliveryNeverSent) {
  WvRfifoChecker c;
  const View v = make_view(1, {kP1, kP2});
  EXPECT_THROW(feed(c, GcsView{kP1, v, {}}, GcsView{kP2, v, {}},
                    GcsDeliver{kP2, kP1, msg(kP1, 9)}),
               InvariantViolation);
}

TEST(WvRfifoCheckerSpec, RejectsOutOfOrderDelivery) {
  WvRfifoChecker c;
  const View v = make_view(1, {kP1, kP2});
  EXPECT_THROW(feed(c, GcsView{kP1, v, {}}, GcsView{kP2, v, {}},
                    GcsSend{kP1, msg(kP1, 1)}, GcsSend{kP1, msg(kP1, 2)},
                    GcsDeliver{kP2, kP1, msg(kP1, 2)}),
               InvariantViolation);
}

TEST(WvRfifoCheckerSpec, RejectsCrossViewDelivery) {
  WvRfifoChecker c;
  const View v1 = make_view(1, {kP1, kP2});
  const View v2 = make_view(2, {kP1, kP2}, 2);
  // p1 sends in v1; p2 moves to v2 and then "delivers" the v1 message.
  EXPECT_THROW(feed(c, GcsView{kP1, v1, {}}, GcsView{kP2, v1, {}},
                    GcsSend{kP1, msg(kP1, 1)}, GcsView{kP2, v2, {}},
                    GcsDeliver{kP2, kP1, msg(kP1, 1)}),
               InvariantViolation);
}

TEST(WvRfifoCheckerSpec, RejectsViewRegression) {
  WvRfifoChecker c;
  EXPECT_THROW(feed(c, GcsView{kP1, make_view(5, {kP1}), {}},
                    GcsView{kP1, make_view(4, {kP1}), {}}),
               InvariantViolation);
}

TEST(WvRfifoCheckerSpec, RejectsViewRegressionAcrossRecovery) {
  WvRfifoChecker c;
  EXPECT_THROW(feed(c, GcsView{kP1, make_view(5, {kP1}), {}}, Crash{kP1},
                    Recover{kP1}, GcsView{kP1, make_view(4, {kP1}), {}}),
               InvariantViolation);
}

TEST(WvRfifoCheckerSpec, AcceptsFreshStreamAfterRecovery) {
  WvRfifoChecker c;
  EXPECT_NO_THROW(feed(c, GcsSend{kP1, msg(kP1, 1)},
                       GcsDeliver{kP1, kP1, msg(kP1, 1)}, Crash{kP1},
                       Recover{kP1}, GcsSend{kP1, msg(kP1, 2)},
                       GcsDeliver{kP1, kP1, msg(kP1, 2)}));
}

// ---------------------------------------------------------------------------
// VS_RFIFO checker (Figure 5)
// ---------------------------------------------------------------------------

TEST(VsRfifoCheckerSpec, RejectsMismatchedCuts) {
  VsRfifoChecker c;
  const View v1 = make_view(1, {kP1, kP2});
  const View v2 = make_view(2, {kP1, kP2}, 2);
  EXPECT_THROW(
      feed(c, GcsView{kP1, v1, {}}, GcsView{kP2, v1, {}},
           GcsSend{kP1, msg(kP1, 1)},
           // p2 delivers the message, p1 does not; both move v1 -> v2.
           GcsDeliver{kP2, kP1, msg(kP1, 1)}, GcsView{kP2, v2, {}},
           GcsView{kP1, v2, {}}),
      InvariantViolation);
}

TEST(VsRfifoCheckerSpec, AcceptsAgreedCuts) {
  VsRfifoChecker c;
  const View v1 = make_view(1, {kP1, kP2});
  const View v2 = make_view(2, {kP1, kP2}, 2);
  EXPECT_NO_THROW(feed(c, GcsView{kP1, v1, {}}, GcsView{kP2, v1, {}},
                       GcsSend{kP1, msg(kP1, 1)},
                       GcsDeliver{kP2, kP1, msg(kP1, 1)},
                       GcsDeliver{kP1, kP1, msg(kP1, 1)},
                       GcsView{kP2, v2, {}}, GcsView{kP1, v2, {}}));
  EXPECT_EQ(c.cuts_fixed(), 3u);  // initial singleton moves + v1->v2
}

// ---------------------------------------------------------------------------
// TRANS_SET checker (Figure 6 / Property 4.1)
// ---------------------------------------------------------------------------

TEST(TransSetCheckerSpec, RejectsSelfExclusion) {
  TransSetChecker c;
  EXPECT_THROW(feed(c, GcsView{kP1, make_view(1, {kP1, kP2}), {}}),
               InvariantViolation);
}

TEST(TransSetCheckerSpec, RejectsOutsiderInTransitionalSet) {
  TransSetChecker c;
  // kP2 is not in p1's previous (initial singleton) view.
  EXPECT_THROW(feed(c, GcsView{kP1, make_view(1, {kP1, kP2}), {kP1, kP2}}),
               InvariantViolation);
}

TEST(TransSetCheckerSpec, FinalizeRejectsInconsistentSets) {
  TransSetChecker c;
  const View v1 = make_view(1, {kP1, kP2});
  const View v2 = make_view(2, {kP1, kP2}, 2);
  // Both move v1 -> v2 together, but p1 claims T={p1} (excludes p2).
  feed(c, GcsView{kP1, v1, {kP1}}, GcsView{kP2, v1, {kP2}},
       GcsView{kP1, v2, {kP1}}, GcsView{kP2, v2, {kP1, kP2}});
  EXPECT_THROW(c.finalize(), InvariantViolation);
}

TEST(TransSetCheckerSpec, FinalizeAcceptsConsistentSets) {
  TransSetChecker c;
  const View v1 = make_view(1, {kP1, kP2});
  const View v2 = make_view(2, {kP1, kP2}, 2);
  feed(c, GcsView{kP1, v1, {kP1}}, GcsView{kP2, v1, {kP2}},
       GcsView{kP1, v2, {kP1, kP2}}, GcsView{kP2, v2, {kP1, kP2}});
  EXPECT_NO_THROW(c.finalize());
  EXPECT_EQ(c.transitions_recorded(), 4u);
}

// ---------------------------------------------------------------------------
// SELF checker (Figure 7)
// ---------------------------------------------------------------------------

TEST(SelfCheckerSpec, RejectsViewBeforeOwnMessagesDelivered) {
  SelfChecker c;
  const View v1 = make_view(1, {kP1});
  const View v2 = make_view(2, {kP1}, 2);
  EXPECT_THROW(feed(c, GcsView{kP1, v1, {}}, GcsSend{kP1, msg(kP1, 1)},
                    GcsView{kP1, v2, {}}),
               InvariantViolation);
}

TEST(SelfCheckerSpec, AcceptsViewAfterSelfDelivery) {
  SelfChecker c;
  const View v1 = make_view(1, {kP1});
  const View v2 = make_view(2, {kP1}, 2);
  EXPECT_NO_THROW(feed(c, GcsView{kP1, v1, {}}, GcsSend{kP1, msg(kP1, 1)},
                       GcsDeliver{kP1, kP1, msg(kP1, 1)},
                       GcsView{kP1, v2, {}}));
}

// ---------------------------------------------------------------------------
// CLIENT checker (Figure 12)
// ---------------------------------------------------------------------------

TEST(ClientCheckerSpec, RejectsSendWhileBlocked) {
  ClientChecker c;
  EXPECT_THROW(feed(c, GcsBlock{kP1}, GcsBlockOk{kP1},
                    GcsSend{kP1, msg(kP1, 1)}),
               InvariantViolation);
}

TEST(ClientCheckerSpec, RejectsUnsolicitedBlockOk) {
  ClientChecker c;
  EXPECT_THROW(feed(c, GcsBlockOk{kP1}), InvariantViolation);
}

TEST(ClientCheckerSpec, ViewUnblocksSending) {
  ClientChecker c;
  EXPECT_NO_THROW(feed(c, GcsBlock{kP1}, GcsBlockOk{kP1},
                       GcsView{kP1, make_view(1, {kP1}), {kP1}},
                       GcsSend{kP1, msg(kP1, 1)}));
}

// ---------------------------------------------------------------------------
// Liveness checker (Property 4.2)
// ---------------------------------------------------------------------------

TEST(LivenessCheckerSpec, DetectsStableView) {
  const View v = make_view(1, {kP1, kP2});
  std::vector<Event> trace{
      {1, MbrStartChange{kP1, StartChangeId{1}, {kP1, kP2}}},
      {1, MbrStartChange{kP2, StartChangeId{1}, {kP1, kP2}}},
      {2, MbrView{kP1, v}},
      {2, MbrView{kP2, v}},
      {3, GcsView{kP1, v, {kP1}}},
      {3, GcsView{kP2, v, {kP2}}},
  };
  ASSERT_TRUE(LivenessChecker::stable_view(trace).has_value());
  EXPECT_TRUE(LivenessChecker::check(trace));
}

TEST(LivenessCheckerSpec, NoPremiseWhenMembershipKeepsChanging) {
  const View v = make_view(1, {kP1});
  std::vector<Event> trace{
      {1, MbrView{kP1, v}},
      {2, MbrStartChange{kP1, StartChangeId{2}, {kP1}}},
  };
  EXPECT_FALSE(LivenessChecker::stable_view(trace).has_value());
  EXPECT_FALSE(LivenessChecker::check(trace));
}

TEST(LivenessCheckerSpec, RejectsMissingGcsView) {
  const View v = make_view(1, {kP1, kP2});
  std::vector<Event> trace{
      {2, MbrView{kP1, v}},
      {2, MbrView{kP2, v}},
      {3, GcsView{kP1, v, {kP1}}},
      // kP2 never delivers the view.
  };
  EXPECT_THROW(LivenessChecker::check(trace), InvariantViolation);
}

TEST(LivenessCheckerSpec, RejectsUndeliveredMessageInStableView) {
  const View v = make_view(1, {kP1, kP2});
  std::vector<Event> trace{
      {2, MbrView{kP1, v}},
      {2, MbrView{kP2, v}},
      {3, GcsView{kP1, v, {kP1}}},
      {3, GcsView{kP2, v, {kP2}}},
      {4, GcsSend{kP1, msg(kP1, 7)}},
      {5, GcsDeliver{kP1, kP1, msg(kP1, 7)}},
      // kP2 never delivers uid 7.
  };
  EXPECT_THROW(LivenessChecker::check(trace), InvariantViolation);
}

}  // namespace
}  // namespace vsgc::spec
