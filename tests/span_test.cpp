// Tests for the causal span layer (src/obs/span.*, DESIGN.md §10): the
// streaming SpanCollector, post-mortem analyze() accounting and orphan
// classification under crashes/churn, the planted-loss negative case (a
// deleted delivery must surface as "unexplained"), byte-determinism of the
// vsgc_trace report, JSONL round-trip of the span event variants, and the
// Chrome-trace message-lifecycle lane.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <vector>

#include "app/world.hpp"
#include "obs/span.hpp"
#include "obs/trace_recorder.hpp"
#include "sim/failure_injector.hpp"

namespace vsgc {
namespace {

/// Fault-free seeded run: converge, pace `messages` app messages across the
/// clients, quiesce, and return the recorded lifecycle trace.
std::vector<spec::Event> record_fault_free(std::uint64_t seed, int clients,
                                           int messages) {
  app::WorldConfig wc;
  wc.num_clients = clients;
  wc.seed = seed;
  wc.record_trace = true;
  wc.lifecycle_spans = true;
  app::World w(wc);
  w.start();
  EXPECT_TRUE(w.run_until_converged(w.all_members(), 10 * sim::kSecond));
  for (int m = 0; m < messages; ++m) {
    w.client(m % clients).send("span-msg-" + std::to_string(m));
    w.run_for(2 * sim::kMillisecond);
  }
  w.run_for(1 * sim::kSecond);
  return w.trace().recorded();
}

// ------------------------------------------------------------ SpanCollector

TEST(SpanCollector, DerivesPhaseHistogramsDuringARun) {
  app::WorldConfig wc;
  wc.num_clients = 4;
  wc.lifecycle_spans = true;
  wc.record_trace = false;
  app::World w(wc);
  obs::Registry reg;
  obs::SpanCollector spans(reg);
  w.trace().subscribe(spans);

  w.start();
  ASSERT_TRUE(w.run_until_converged(w.all_members(), 10 * sim::kSecond));
  for (int m = 0; m < 10; ++m) {
    w.client(m % 4).send("x");
    w.run_for(2 * sim::kMillisecond);
  }
  w.run_for(1 * sim::kSecond);

  // 10 messages, 4 members each: 40 end-to-end legs, 30 remote wire legs.
  EXPECT_EQ(reg.histogram("span.msg.e2e_us").count(), 40u);
  EXPECT_EQ(reg.histogram("span.msg.wire_us").count(), 30u);
  EXPECT_EQ(reg.histogram("span.msg.sender_queue_us").count(), 10u);
  // Every process installed at least the converged view through a full
  // start_change -> install window.
  EXPECT_GE(reg.histogram("span.view.e2e_us").count(), 4u);
  EXPECT_EQ(reg.histogram("span.view.e2e_us").count(),
            reg.histogram("span.view.membership_wait_us").count());
}

TEST(SpanCollector, LifecycleOffEmitsNoSpanEvents) {
  app::WorldConfig wc;
  wc.num_clients = 3;
  wc.lifecycle_spans = false;  // default: spans cost one branch, no events
  wc.record_trace = false;
  app::World w(wc);
  obs::Registry reg;
  obs::SpanCollector spans(reg);
  w.trace().subscribe(spans);
  w.start();
  ASSERT_TRUE(w.run_until_converged(w.all_members(), 10 * sim::kSecond));
  w.client(0).send("x");
  w.run_for(100 * sim::kMillisecond);
  EXPECT_EQ(reg.histogram("span.msg.wire_us").count(), 0u);
  // GcsSend/GcsDeliver still flow (they are protocol events), so e2e legs
  // are observable even without the fine-grained lifecycle.
  EXPECT_EQ(reg.histogram("span.msg.e2e_us").count(), 3u);
}

// ---------------------------------------------------------------- analyze()

TEST(SpanAnalyze, FaultFreeRunAccountsForEveryDelivery) {
  const std::vector<spec::Event> events = record_fault_free(7, 4, 12);
  const obs::TraceAnalysis a = obs::analyze(events);
  EXPECT_EQ(a.messages.size(), 12u);
  EXPECT_EQ(a.legs_expected, 48u);  // 12 messages x 4 members
  EXPECT_EQ(a.legs_delivered, a.legs_expected);
  EXPECT_EQ(a.orphans, 0u);
  EXPECT_EQ(a.unexplained(), 0u);
  // Phase milestones reconstructed: every remote leg has a wire-send and a
  // receive timestamp bracketing its delivery.
  for (const obs::MsgSpan& m : a.messages) {
    EXPECT_GE(m.submit_at, 0);
    EXPECT_GE(m.wire_send_at, m.submit_at);
    for (const obs::DeliveryLeg& leg : m.legs) {
      ASSERT_GE(leg.deliver_at, 0);
      if (leg.receiver != m.id.sender) {
        EXPECT_GE(leg.recv_at, m.wire_send_at);
        EXPECT_GE(leg.deliver_at, leg.recv_at);
      }
    }
  }
}

TEST(SpanAnalyze, CrashedReceiverLegsAreClassifiedNotUnexplained) {
  app::WorldConfig wc;
  wc.num_clients = 4;
  wc.seed = 3;
  wc.record_trace = true;
  wc.lifecycle_spans = true;
  app::World w(wc);
  w.start();
  ASSERT_TRUE(w.run_until_converged(w.all_members(), 10 * sim::kSecond));

  // A message enters the pipe; one receiver dies before it can deliver.
  w.client(0).send("doomed-for-p3");
  w.process(2).crash();
  w.run_for(30 * sim::kSecond);  // survivors reconfigure and deliver

  const obs::TraceAnalysis a = obs::analyze(w.trace().recorded());
  EXPECT_GT(a.orphans, 0u);
  EXPECT_EQ(a.unexplained(), 0u)
      << "crash-attributable losses must not read as VS violations";
  EXPECT_GT(
      a.orphans_by_kind[static_cast<int>(obs::OrphanKind::kReceiverCrashed)],
      0u);
}

TEST(SpanAnalyze, InjectorChurnNeverProducesUnexplainedOrphans) {
  app::WorldConfig wc;
  wc.num_clients = 4;
  wc.num_servers = 2;
  wc.seed = 11;
  wc.record_trace = true;
  wc.lifecycle_spans = true;
  app::World w(wc);
  w.start();
  ASSERT_TRUE(w.run_until_converged(w.all_members(), 10 * sim::kSecond));

  sim::FailureInjector::Policy policy;
  policy.steps = 25;
  sim::FailureInjector injector(w.fault_target(), policy, wc.seed);
  injector.run_churn();
  injector.stabilize();
  w.run_for(30 * sim::kSecond);

  const obs::TraceAnalysis a = obs::analyze(w.trace().recorded());
  EXPECT_GT(a.events, 0u);
  EXPECT_EQ(a.unexplained(), 0u)
      << "every churn orphan must be attributable to a fault or the cut";
}

TEST(SpanAnalyze, PlantedLostDeliveryIsFlaggedUnexplained) {
  std::vector<spec::Event> events = record_fault_free(9, 3, 6);
  // Plant a virtual-synchrony violation: erase one remote delivery (the
  // receiver keeps its MsgRecv, so the loss is provably not wire-level).
  const auto victim =
      std::find_if(events.begin(), events.end(), [](const spec::Event& ev) {
        const auto* d = std::get_if<spec::GcsDeliver>(&ev.body);
        return d != nullptr && d->p != d->q;
      });
  ASSERT_NE(victim, events.end());
  events.erase(victim);

  const obs::TraceAnalysis a = obs::analyze(events);
  EXPECT_EQ(a.orphans, 1u);
  EXPECT_EQ(a.unexplained(), 1u)
      << "a deleted delivery in a fault-free run is exactly a VS loss";
}

// ------------------------------------------------------------- determinism

TEST(SpanReport, SameSeedRunsProduceByteIdenticalReports) {
  const std::vector<spec::Event> run1 = record_fault_free(21, 4, 10);
  const std::vector<spec::Event> run2 = record_fault_free(21, 4, 10);
  std::ostringstream r1, r2;
  obs::write_trace_report(obs::analyze(run1), r1);
  obs::write_trace_report(obs::analyze(run2), r2);
  EXPECT_FALSE(r1.str().empty());
  EXPECT_EQ(r1.str(), r2.str());

  std::ostringstream other;
  obs::write_trace_report(obs::analyze(record_fault_free(22, 4, 10)), other);
  EXPECT_NE(r1.str(), other.str()) << "the report must reflect the run";
}

// ------------------------------------------------- serialization round-trip

TEST(SpanEvents, JsonlRoundTripsEverySpanVariant) {
  std::vector<spec::Event> events;
  events.push_back({10, spec::MsgWireSend{ProcessId{1}, ProcessId{1}, 7}});
  events.push_back(
      {20, spec::MsgRecv{ProcessId{2}, ProcessId{3}, ProcessId{1}, 7, true}});
  events.push_back({30, spec::MsgForward{ProcessId{3}, ProcessId{1}, 7, 2}});
  events.push_back({40, spec::SyncSent{ProcessId{1}, StartChangeId{5}}});
  events.push_back(
      {50, spec::SyncRecv{ProcessId{2}, ProcessId{1}, StartChangeId{5}}});
  events.push_back({60, spec::XportRetransmit{1, net::kServerBase, 4}});
  events.push_back({70, spec::MbrPhase{net::kServerBase, "round_start", 3}});

  std::stringstream buf;
  obs::write_jsonl(events, buf);
  std::vector<spec::Event> parsed;
  ASSERT_TRUE(obs::read_jsonl(buf, &parsed));
  ASSERT_EQ(parsed.size(), events.size());
  std::ostringstream a, b;
  obs::write_jsonl(events, a);
  obs::write_jsonl(parsed, b);
  EXPECT_EQ(a.str(), b.str());

  const auto* recv = std::get_if<spec::MsgRecv>(&parsed[1].body);
  ASSERT_NE(recv, nullptr);
  EXPECT_EQ(recv->from, ProcessId{3});
  EXPECT_EQ(recv->sender, ProcessId{1});
  EXPECT_TRUE(recv->forwarded);
  const auto* mp = std::get_if<spec::MbrPhase>(&parsed[6].body);
  ASSERT_NE(mp, nullptr);
  EXPECT_EQ(mp->phase, "round_start");
  EXPECT_EQ(mp->round, 3u);
}

TEST(SpanEvents, ChromeTraceCarriesMessageLifecycleLane) {
  const std::vector<spec::Event> events = record_fault_free(5, 3, 4);
  std::ostringstream t1, t2;
  obs::write_chrome_trace(events, t1);
  obs::write_chrome_trace(events, t2);
  EXPECT_EQ(t1.str(), t2.str()) << "exporter ordering must be stable";
  EXPECT_NE(t1.str().find("message lifecycle"), std::string::npos);
  EXPECT_NE(t1.str().find("\"ph\": \"X\""), std::string::npos);
}

// ----------------------------------------------------------- phase algebra

TEST(SpanPhases, TelescopeExactlyEvenWithMissingMilestones) {
  obs::ViewSpan vs;
  vs.p = ProcessId{1};
  vs.start_change_at = 100;
  vs.block_ok_at = 150;
  vs.sync_sent_at = -1;  // never observed: zero-width, absorbed by successor
  vs.mbr_view_at = 400;
  vs.installed_at = 1000;
  const obs::ViewPhases ph = obs::view_phases(vs);
  EXPECT_EQ(ph.blocking, 50);
  EXPECT_EQ(ph.sync_send, 0);
  EXPECT_EQ(ph.membership_wait, 250);
  EXPECT_EQ(ph.install_wait, 600);
  EXPECT_EQ(ph.total, 900);
  EXPECT_EQ(ph.blocking + ph.sync_send + ph.membership_wait + ph.install_wait,
            ph.total);

  // A milestone recorded outside the window clamps rather than going
  // negative (e.g. block_ok from a previous overlapping change).
  vs.block_ok_at = 50;
  vs.mbr_view_at = 5000;
  const obs::ViewPhases clamped = obs::view_phases(vs);
  EXPECT_EQ(clamped.blocking, 0);
  EXPECT_EQ(clamped.membership_wait, 900);
  EXPECT_EQ(clamped.install_wait, 0);
  EXPECT_EQ(clamped.total, 900);
}

TEST(SpanPhases, NearestRankPercentilesAreExact) {
  std::vector<sim::Time> samples = {5, 1, 3, 2, 4};
  const obs::PhaseStats st = obs::phase_stats(samples);
  EXPECT_EQ(st.count, 5u);
  EXPECT_EQ(st.p50, 3);
  EXPECT_EQ(st.p95, 5);
  EXPECT_EQ(st.p99, 5);
  EXPECT_EQ(st.max, 5);

  std::vector<sim::Time> hundred;
  for (int i = 100; i >= 1; --i) hundred.push_back(i);
  const obs::PhaseStats h = obs::phase_stats(hundred);
  EXPECT_EQ(h.p50, 50);
  EXPECT_EQ(h.p95, 95);
  EXPECT_EQ(h.p99, 99);
  EXPECT_EQ(h.max, 100);
}

}  // namespace
}  // namespace vsgc
