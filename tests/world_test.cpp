// Tests for the application harness pieces: BlockingClient (Figure 12
// contract), World convergence helpers, and Process lifecycle.
#include <gtest/gtest.h>

#include "app/world.hpp"
#include "helpers/oracle_world.hpp"

namespace vsgc {
namespace {

using testing::OracleWorld;

TEST(BlockingClient, AnswersBlockImmediately) {
  OracleWorld w(2);
  w.change_view(w.all());
  w.oracle.start_change(w.all());
  // BlockingClient answered block_ok synchronously inside the notification.
  EXPECT_EQ(w.ep(0).block_status(), gcs::BlockStatus::kBlocked);
  EXPECT_TRUE(w.client(0).blocked());
}

TEST(BlockingClient, QueuedSendsPreserveOrderAcrossViewChange) {
  OracleWorld w(2);
  std::vector<std::string> rx;
  w.client(1).on_deliver(
      [&rx](ProcessId, const gcs::AppMsg& m) { rx.push_back(m.payload); });
  w.change_view(w.all());
  w.client(0).send("before");
  w.oracle.start_change(w.all());
  // These are queued while blocked and flushed, in order, on the new view.
  w.client(0).send("q1");
  w.client(0).send("q2");
  w.client(0).send("q3");
  EXPECT_EQ(w.client(0).pending(), 3u);
  w.run();
  w.oracle.deliver_view(w.all());
  w.settle();
  ASSERT_EQ(rx.size(), 4u);
  EXPECT_EQ(rx, (std::vector<std::string>{"before", "q1", "q2", "q3"}));
  w.checkers.finalize();
}

TEST(BlockingClient, ViewCallbackSeesTransitionalSet) {
  OracleWorld w(3);
  std::set<ProcessId> seen;
  w.client(0).on_view(
      [&seen](const View&, const std::set<ProcessId>& t) { seen = t; });
  w.change_view(w.all());
  w.change_view(w.all());
  EXPECT_EQ(seen, w.all());
}

TEST(World, ConvergedRequiresIdenticalViews) {
  app::WorldConfig cfg;
  cfg.num_clients = 2;
  app::World w(cfg);
  EXPECT_FALSE(w.converged(w.all_members())) << "nothing started yet";
  w.start();
  ASSERT_TRUE(w.run_until_converged(w.all_members(), 5 * sim::kSecond));
  EXPECT_TRUE(w.converged(w.all_members()));
  EXPECT_FALSE(w.converged({ProcessId{1}}))
      << "converged() must match the exact member set";
}

TEST(World, CrashedProcessBreaksConvergence) {
  app::WorldConfig cfg;
  cfg.num_clients = 2;
  app::World w(cfg);
  w.start();
  ASSERT_TRUE(w.run_until_converged(w.all_members(), 5 * sim::kSecond));
  w.process(1).crash();
  EXPECT_FALSE(w.converged(w.all_members()));
  EXPECT_TRUE(w.process(1).crashed());
}

TEST(World, TraceRecordingCanBeDisabled) {
  app::WorldConfig cfg;
  cfg.num_clients = 2;
  cfg.record_trace = false;
  cfg.attach_checkers = false;
  app::World w(cfg);
  w.start();
  ASSERT_TRUE(w.run_until_converged(w.all_members(), 5 * sim::kSecond));
  EXPECT_TRUE(w.trace().recorded().empty());
}

TEST(Process, SendReturnsAssignedUid) {
  app::WorldConfig cfg;
  cfg.num_clients = 2;
  app::World w(cfg);
  w.start();
  ASSERT_TRUE(w.run_until_converged(w.all_members(), 5 * sim::kSecond));
  const gcs::AppMsg m1 = w.process(0).endpoint().send("a");
  const gcs::AppMsg m2 = w.process(0).endpoint().send("b");
  EXPECT_EQ(m1.sender, ProcessId{1});
  EXPECT_LT(m1.uid, m2.uid);
}

}  // namespace
}  // namespace vsgc
