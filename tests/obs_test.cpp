// Tests for the vsgc::obs observability subsystem: metric primitive
// semantics, JSONL round-trip of recorded traces, metrics derived from a
// scripted view change, Chrome-trace export, and the determinism guarantee
// that same-seed executions produce byte-identical trace files.
#include <gtest/gtest.h>

#include <sstream>

#include "app/world.hpp"
#include "obs/artifact.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/metrics_collector.hpp"
#include "obs/trace_recorder.hpp"
#include "obs/xport_metrics.hpp"

namespace vsgc {
namespace {

// ---------------------------------------------------------------- JSON model

TEST(Json, ScalarRoundTrip) {
  EXPECT_EQ(obs::JsonValue(42).dump(), "42");
  EXPECT_EQ(obs::JsonValue(-7).dump(), "-7");
  EXPECT_EQ(obs::JsonValue(true).dump(), "true");
  EXPECT_EQ(obs::JsonValue(false).dump(), "false");
  EXPECT_EQ(obs::JsonValue().dump(), "null");
  EXPECT_EQ(obs::JsonValue("hi").dump(), "\"hi\"");
  EXPECT_EQ(obs::JsonValue(0.3).dump(), "0.3");
  EXPECT_EQ(obs::JsonValue(2.0).dump(), "2.0");
}

TEST(Json, StringEscaping) {
  EXPECT_EQ(obs::JsonValue("a\"b\\c\nd").dump(), "\"a\\\"b\\\\c\\nd\"");
  // Non-ASCII bytes escape to \u00XX and decode back to the same byte.
  const std::string payload = "x\x01\xffy";
  const std::string text = obs::JsonValue(payload).dump();
  std::string error;
  const obs::JsonValue parsed = obs::JsonValue::parse(text, &error);
  ASSERT_TRUE(parsed.is_string()) << error;
  EXPECT_EQ(parsed.as_string(), payload);
}

TEST(Json, ParseDocument) {
  std::string error;
  const obs::JsonValue v = obs::JsonValue::parse(
      R"({"a": [1, 2.5, "x"], "b": {"c": true, "d": null}})", &error);
  ASSERT_TRUE(v.is_object()) << error;
  ASSERT_NE(v.find("a"), nullptr);
  EXPECT_EQ(v.find("a")->at(0).as_int(), 1);
  EXPECT_DOUBLE_EQ(v.find("a")->at(1).as_double(), 2.5);
  EXPECT_EQ(v.find("a")->at(2).as_string(), "x");
  EXPECT_TRUE(v.find("b")->find("c")->as_bool());
  EXPECT_TRUE(v.find("b")->find("d")->is_null());
}

TEST(Json, ParseErrors) {
  std::string error;
  EXPECT_TRUE(obs::JsonValue::parse("{", &error).is_null());
  EXPECT_FALSE(error.empty());
  EXPECT_TRUE(obs::JsonValue::parse("[1,]", &error).is_null());
  EXPECT_TRUE(obs::JsonValue::parse("{\"a\":1} trailing", &error).is_null());
}

TEST(Json, ObjectsPreserveInsertionOrder) {
  obs::JsonValue v = obs::JsonValue::object();
  v["zebra"] = 1;
  v["alpha"] = 2;
  EXPECT_EQ(v.dump(), "{\"zebra\":1,\"alpha\":2}");
}

// ----------------------------------------------------------- metric primitives

TEST(Metrics, CounterSemantics) {
  obs::Registry reg;
  obs::Counter& c = reg.counter("test.counter");
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(9);
  EXPECT_EQ(c.value(), 10u);
  // Same (name, labels) key => same instance; different labels => distinct.
  EXPECT_EQ(&reg.counter("test.counter"), &c);
  obs::Counter& labeled = reg.counter("test.counter", obs::process_labels(1));
  EXPECT_NE(&labeled, &c);
  labeled.inc(5);
  EXPECT_EQ(reg.counter_total("test.counter"), 15u);
}

TEST(Metrics, HistogramLogBuckets) {
  EXPECT_EQ(obs::Histogram::bucket_of(0), 0);
  EXPECT_EQ(obs::Histogram::bucket_of(1), 1);
  EXPECT_EQ(obs::Histogram::bucket_of(2), 2);
  EXPECT_EQ(obs::Histogram::bucket_of(3), 2);
  EXPECT_EQ(obs::Histogram::bucket_of(4), 3);
  EXPECT_EQ(obs::Histogram::bucket_of(1023), 10);
  EXPECT_EQ(obs::Histogram::bucket_of(1024), 11);

  obs::Histogram h;
  for (int v : {1, 2, 3, 100, 1000}) h.observe(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 1106u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_DOUBLE_EQ(h.mean(), 1106.0 / 5.0);
  // Quantiles report the containing bucket's upper bound, clamped to max.
  EXPECT_LE(h.quantile(0.5), 3u);
  EXPECT_EQ(h.quantile(1.0), 1000u);
  // Negative samples clamp to zero rather than corrupting buckets.
  obs::Histogram neg;
  neg.observe(-5);
  EXPECT_EQ(neg.min(), 0u);
  EXPECT_EQ(neg.count(), 1u);
}

TEST(Metrics, RegistryJsonIsDeterministicAndSorted) {
  obs::Registry reg;
  reg.counter("b.metric").inc(2);
  reg.counter("a.metric", obs::process_labels(2)).inc(1);
  reg.counter("a.metric", obs::process_labels(1)).inc(1);
  reg.histogram("h").observe(7);
  const std::string dump = reg.to_json().dump();
  // Export iterates in (name, labels) order regardless of creation order.
  EXPECT_LT(dump.find("a.metric"), dump.find("b.metric"));
  EXPECT_LT(dump.find("\"p1\""), dump.find("\"p2\""));

  obs::Registry reg2;
  reg2.histogram("h").observe(7);
  reg2.counter("a.metric", obs::process_labels(1)).inc(1);
  reg2.counter("a.metric", obs::process_labels(2)).inc(1);
  reg2.counter("b.metric").inc(2);
  EXPECT_EQ(dump, reg2.to_json().dump());
}

// ------------------------------------------------------- scripted view change

/// Script of a reconfiguration at p1, with one view that became obsolete
/// before installation (timestamps in microseconds).
std::vector<spec::Event> scripted_view_change() {
  const ProcessId p1{1};
  const ProcessId p2{2};
  View v1;
  v1.id = ViewId{1, 0};
  v1.members = {p1, p2};
  v1.start_id = {{p1, StartChangeId{1}}, {p2, StartChangeId{1}}};
  View v2 = v1;
  v2.id = ViewId{2, 0};
  v2.start_id = {{p1, StartChangeId{2}}, {p2, StartChangeId{2}}};

  std::vector<spec::Event> events;
  events.push_back({0, spec::MbrStartChange{p1, StartChangeId{1}, {p1, p2}}});
  events.push_back({500, spec::GcsBlock{p1}});
  events.push_back({600, spec::GcsBlockOk{p1}});
  events.push_back({1000, spec::MbrView{p1, v1}});  // mbr round: 1000us
  // v1 is superseded before p1 can install it:
  events.push_back({1500, spec::MbrStartChange{p1, StartChangeId{2}, {p1, p2}}});
  events.push_back({2500, spec::MbrView{p1, v2}});
  events.push_back({3000, spec::GcsView{p1, v2, {p1, p2}}});
  events.push_back(
      {3200, spec::GcsSend{p1, gcs::AppMsg{p1, 1, "payload"}}});
  events.push_back(
      {3400, spec::GcsDeliver{p1, p1, gcs::AppMsg{p1, 1, "payload"}}});
  return events;
}

TEST(MetricsCollector, DerivesHeadlineMetricsFromScriptedChange) {
  obs::Registry reg;
  obs::MetricsCollector collector(reg);
  spec::TraceBus bus;
  bus.subscribe(collector);
  for (const spec::Event& ev : scripted_view_change()) {
    bus.emit(ev.at, ev.body);
  }

  EXPECT_EQ(reg.counter_total("mbr.start_changes"), 2u);
  EXPECT_EQ(reg.counter_total("mbr.views"), 2u);
  EXPECT_EQ(reg.counter_total("gcs.views_installed"), 1u);
  EXPECT_EQ(reg.counter_total("gcs.blocks"), 1u);
  EXPECT_EQ(reg.counter_total("gcs.block_oks"), 1u);
  // v1 was announced but never installed => exactly one obsolete view.
  EXPECT_EQ(reg.counter_total("gcs.obsolete_views"), 1u);
  EXPECT_EQ(reg.counter_total("gcs.msgs_sent"), 1u);
  EXPECT_EQ(reg.counter_total("gcs.msgs_delivered"), 1u);
  EXPECT_EQ(reg.counter_total("gcs.payload_bytes_sent"), 7u);

  // View-change latency: first start_change (t=0) -> install (t=3000).
  const obs::Histogram& vc = reg.histogram("gcs.view_change_latency_us");
  EXPECT_EQ(vc.count(), 1u);
  EXPECT_EQ(vc.sum(), 3000u);
  // Blocking window: block (t=500) -> install (t=3000).
  EXPECT_EQ(reg.histogram("gcs.blocking_window_us").sum(), 2500u);
  // Membership rounds: 0->1000 and 1500->2500.
  const obs::Histogram& mr = reg.histogram("mbr.round_us");
  EXPECT_EQ(mr.count(), 2u);
  EXPECT_EQ(mr.sum(), 2000u);
  // Two start_changes were collapsed into the single installed view.
  EXPECT_EQ(reg.histogram("gcs.sync_rounds_per_view").sum(), 2u);
}

TEST(MetricsCollector, CrashResetsOpenIntervals) {
  obs::Registry reg;
  obs::MetricsCollector collector(reg);
  spec::TraceBus bus;
  bus.subscribe(collector);
  const ProcessId p1{1};
  bus.emit(0, spec::MbrStartChange{p1, StartChangeId{1}, {p1}});
  bus.emit(100, spec::GcsBlock{p1});
  bus.emit(200, spec::Crash{p1});
  bus.emit(300, spec::Recover{p1});
  View v = View::initial(p1);
  v.id = ViewId{1, 0};
  v.start_id = {{p1, StartChangeId{1}}};
  bus.emit(5000, spec::GcsView{p1, v, {p1}});
  // The pre-crash block/start_change must not pair with the post-recovery
  // view: no bogus 4900us windows.
  EXPECT_EQ(reg.histogram("gcs.blocking_window_us").count(), 0u);
  EXPECT_EQ(reg.histogram("gcs.view_change_latency_us").count(), 0u);
  EXPECT_EQ(reg.counter_total("crashes"), 1u);
  EXPECT_EQ(reg.counter_total("recoveries"), 1u);
}

// ------------------------------------------------------------ trace recorder

TEST(TraceRecorder, JsonlRoundTripOfScriptedTrace) {
  obs::TraceRecorder rec;
  spec::TraceBus bus;
  bus.subscribe(rec);
  for (const spec::Event& ev : scripted_view_change()) {
    bus.emit(ev.at, ev.body);
  }

  std::ostringstream first;
  rec.write_jsonl(first);
  ASSERT_FALSE(first.str().empty());

  std::istringstream is(first.str());
  std::vector<spec::Event> parsed;
  ASSERT_TRUE(obs::read_jsonl(is, &parsed));
  ASSERT_EQ(parsed.size(), rec.events().size());

  // Round-trip fidelity: re-serializing the parsed events is byte-identical.
  std::ostringstream second;
  obs::write_jsonl(parsed, second);
  EXPECT_EQ(first.str(), second.str());

  // Spot-check a structured field survived: the installed view.
  const auto* view = std::get_if<spec::GcsView>(&parsed[6].body);
  ASSERT_NE(view, nullptr);
  EXPECT_EQ(view->view.id, (ViewId{2, 0}));
  EXPECT_EQ(view->view.start_id.at(ProcessId{1}), StartChangeId{2});
  EXPECT_EQ(view->transitional, (std::set<ProcessId>{{1}, {2}}));
}

TEST(TraceRecorder, FaultEventsRoundTripThroughJsonl) {
  // FaultInjected records carry no "p" tag — a dedicated parse path.
  obs::TraceRecorder rec;
  spec::TraceBus bus;
  bus.subscribe(rec);
  bus.emit(10, spec::FaultInjected{"partition", "groups=[p1 p2 | p3 s0]"});
  bus.emit(20, spec::Crash{ProcessId{1}});
  bus.emit(30, spec::FaultInjected{"stabilize", ""});

  std::ostringstream first;
  rec.write_jsonl(first);
  std::istringstream is(first.str());
  std::vector<spec::Event> parsed;
  ASSERT_TRUE(obs::read_jsonl(is, &parsed));
  ASSERT_EQ(parsed.size(), 3u);

  const auto* fault = std::get_if<spec::FaultInjected>(&parsed[0].body);
  ASSERT_NE(fault, nullptr);
  EXPECT_EQ(parsed[0].at, 10);
  EXPECT_EQ(fault->kind, "partition");
  EXPECT_EQ(fault->detail, "groups=[p1 p2 | p3 s0]");

  std::ostringstream second;
  obs::write_jsonl(parsed, second);
  EXPECT_EQ(first.str(), second.str());
}

TEST(TraceRecorder, RejectsMalformedJsonl) {
  std::istringstream is("{\"at\":1,\"type\":\"nonsense\",\"p\":1}\n");
  std::vector<spec::Event> parsed;
  EXPECT_FALSE(obs::read_jsonl(is, &parsed));
  std::istringstream garbage("not json at all\n");
  parsed.clear();
  EXPECT_FALSE(obs::read_jsonl(garbage, &parsed));
}

TEST(TraceRecorder, ChromeTraceShowsOverlappingRounds) {
  obs::TraceRecorder rec;
  spec::TraceBus bus;
  bus.subscribe(rec);
  for (const spec::Event& ev : scripted_view_change()) {
    bus.emit(ev.at, ev.body);
  }
  std::ostringstream os;
  rec.write_chrome_trace(os);

  std::string error;
  const obs::JsonValue doc = obs::JsonValue::parse(os.str(), &error);
  ASSERT_TRUE(doc.is_object()) << error;
  const obs::JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  bool saw_mbr_round = false;
  bool saw_view_change = false;
  bool saw_blocked = false;
  for (const obs::JsonValue& ev : events->items()) {
    const obs::JsonValue* name = ev.find("name");
    const obs::JsonValue* ph = ev.find("ph");
    if (name == nullptr || ph == nullptr) continue;
    if (ph->as_string() != "X") continue;
    const std::string& n = name->as_string();
    const std::int64_t ts = ev.find("ts")->as_int();
    const std::int64_t dur = ev.find("dur")->as_int();
    if (n.starts_with("mbrshp round cid:1")) {
      saw_mbr_round = true;
      EXPECT_EQ(ts, 0);
    }
    if (n.starts_with("view change")) {
      saw_view_change = true;
      // The VS round span covers the membership round: the overlap the
      // paper's E1 claim is about, visible as parallel tracks in Perfetto.
      EXPECT_EQ(ts, 0);
      EXPECT_EQ(ts + dur, 3000);
    }
    if (n == "blocked") {
      saw_blocked = true;
      EXPECT_EQ(ts, 500);
      EXPECT_EQ(ts + dur, 3000);
    }
  }
  EXPECT_TRUE(saw_mbr_round);
  EXPECT_TRUE(saw_view_change);
  EXPECT_TRUE(saw_blocked);
}

// ----------------------------------------------------- determinism & artifact

std::string jsonl_of_seeded_run(std::uint64_t seed) {
  app::WorldConfig cfg;
  cfg.num_clients = 3;
  cfg.num_servers = 1;
  cfg.seed = seed;
  cfg.net.jitter = 300;
  cfg.attach_checkers = false;
  cfg.record_trace = false;
  app::World w(cfg);
  obs::TraceRecorder rec;
  w.trace().subscribe(rec);
  w.start();
  w.run_until_converged(w.all_members(), 10 * sim::kSecond);
  w.client(0).send("hello");
  w.process(2).crash();
  w.run_for(5 * sim::kSecond);
  std::ostringstream os;
  rec.write_jsonl(os);
  return os.str();
}

TEST(TraceRecorder, SameSeedProducesByteIdenticalJsonl) {
  const std::string a = jsonl_of_seeded_run(11);
  const std::string b = jsonl_of_seeded_run(11);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b) << "trace files must be a pure function of the seed";
  EXPECT_NE(a, jsonl_of_seeded_run(12));
}

TEST(BenchArtifact, SchemaAndSimSection) {
  obs::BenchArtifact art("unit_test");
  art.config("alpha") = 0.5;
  obs::JsonValue& row = art.add_result();
  row["x"] = 1;
  sim::Simulator sim;
  sim.schedule(1, [] {});
  sim.run_to_quiescence();
  art.tally(sim);
  obs::Registry reg;
  reg.counter("c").inc(3);
  art.set_metrics(reg);

  const obs::JsonValue& root = art.root();
  EXPECT_EQ(root.find("bench")->as_string(), "unit_test");
  EXPECT_EQ(root.find("schema_version")->as_int(), 1);
  EXPECT_DOUBLE_EQ(root.find("config")->find("alpha")->as_double(), 0.5);
  EXPECT_EQ(root.find("results")->at(0).find("x")->as_int(), 1);
  EXPECT_EQ(root.find("metrics")
                ->find("counters")
                ->at(0)
                .find("value")
                ->as_int(),
            3);
}

TEST(XportMetrics, RecordsFrameAndWindowStats) {
  transport::CoRfifoTransport::Stats s;
  s.frames_sent = 10;
  s.entries_sent = 64;
  s.acks_sent = 3;
  s.acks_piggybacked = 7;
  s.retransmissions = 2;
  s.bytes_sent = 4096;
  s.window_stalls = 1;
  s.ooo_dropped = 5;
  s.peak_unacked = 12;
  s.peak_out_of_order = 4;
  s.peak_pending = 30;

  obs::Registry reg;
  const obs::Labels labels = obs::process_labels(1);
  obs::record_xport_stats(reg, labels, s);
  EXPECT_EQ(reg.counter("xport.frame.frames_sent", labels).value(), 10u);
  EXPECT_EQ(reg.counter("xport.frame.entries_sent", labels).value(), 64u);
  EXPECT_EQ(reg.counter("xport.frame.acks_sent", labels).value(), 3u);
  EXPECT_EQ(reg.counter("xport.frame.acks_piggybacked", labels).value(), 7u);
  EXPECT_EQ(reg.counter("xport.window.stalls", labels).value(), 1u);
  EXPECT_EQ(reg.counter("xport.window.ooo_dropped", labels).value(), 5u);
  EXPECT_EQ(reg.gauge("xport.window.peak_unacked", labels).value(), 12);
  EXPECT_EQ(reg.gauge("xport.window.peak_out_of_order", labels).value(), 4);
  EXPECT_EQ(reg.gauge("xport.window.peak_pending", labels).value(), 30);

  // Gauges fold with max_of: a second, quieter transport cannot shrink them.
  transport::CoRfifoTransport::Stats quiet;
  quiet.peak_unacked = 2;
  obs::record_xport_stats(reg, labels, quiet);
  EXPECT_EQ(reg.gauge("xport.window.peak_unacked", labels).value(), 12);
  EXPECT_EQ(reg.counter("xport.frame.frames_sent", labels).value(), 10u);
}

}  // namespace
}  // namespace vsgc
