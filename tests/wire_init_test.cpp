// Regression tests for the wire-init lint rule's code fixes: every struct in
// src/gcs/messages.hpp and src/membership/wire.hpp now carries in-class
// member initializers, so a default-constructed message is fully determinate
// and must survive an encode/decode round trip unchanged. codec_test.cpp
// sweeps randomized *populated* messages; this file pins down the
// default/empty corner those sweeps rarely hit (empty sets, zero ids,
// zero-entry aggregate batches).
#include <gtest/gtest.h>

#include "gcs/messages.hpp"
#include "membership/wire.hpp"

namespace vsgc {
namespace {

template <typename T>
void round_trip_default() {
  const T value{};
  Encoder enc;
  value.encode(enc);
  Decoder dec(enc.bytes());
  (void)dec.get_u8();  // tag byte, validated by codec_test
  const T back = T::decode(dec);
  EXPECT_EQ(value, back);
  EXPECT_TRUE(dec.done());
}

TEST(WireInit, GcsMessagesDefaultRoundTrip) {
  round_trip_default<gcs::wire::ViewMsg>();
  round_trip_default<gcs::wire::AppMsgWire>();
  round_trip_default<gcs::wire::FwdMsg>();
  round_trip_default<gcs::wire::SyncMsg>();
  round_trip_default<gcs::wire::AggregateSyncMsg>();
}

TEST(WireInit, MembershipMessagesDefaultRoundTrip) {
  round_trip_default<membership::wire::StartChange>();
  round_trip_default<membership::wire::ViewDelivery>();
  round_trip_default<membership::wire::Proposal>();
  round_trip_default<membership::wire::Heartbeat>();
  round_trip_default<membership::wire::Leave>();
}

// ViewDelta's decode invariant (base < id) excludes the default value by
// design: a default-constructed delta still encodes deterministically (its
// fields are value-initialized), but decoding it must fail cleanly rather
// than admit a self-referential chain link.
TEST(WireInit, DefaultViewDeltaIsDeterminateButUndecodable) {
  const membership::wire::ViewDelta a{}, b{};
  EXPECT_EQ(a, b);
  Encoder ea, eb;
  a.encode(ea);
  b.encode(eb);
  EXPECT_EQ(ea.bytes(), eb.bytes());
  Decoder dec(ea.bytes());
  (void)dec.get_u8();
  EXPECT_THROW(membership::wire::ViewDelta::decode(dec), DecodeError);
}

// The initializers must produce *value*-initialized fields: two separately
// default-constructed messages are equal and encode to identical bytes.
TEST(WireInit, DefaultConstructionIsDeterminate) {
  const gcs::wire::SyncMsg a{}, b{};
  EXPECT_EQ(a, b);
  Encoder ea, eb;
  a.encode(ea);
  b.encode(eb);
  EXPECT_EQ(ea.bytes(), eb.bytes());

  const membership::wire::Proposal pa{}, pb{};
  EXPECT_EQ(pa, pb);
  EXPECT_EQ(pa.round, 0u);
  EXPECT_EQ(pa.from.value, 0u);
}

}  // namespace
}  // namespace vsgc
