// End-to-end smoke test: the full stack (network → CO_RFIFO → membership
// servers → GCS end-points → blocking clients) with every spec checker
// attached, on the happy path.
#include <gtest/gtest.h>

#include "app/world.hpp"
#include "spec/liveness_checker.hpp"

namespace vsgc {
namespace {

TEST(Smoke, ThreeProcessesConvergeAndMulticast) {
  app::WorldConfig config;
  config.num_clients = 3;
  config.num_servers = 1;
  app::World world(config);

  std::vector<std::vector<std::string>> received(4);
  for (int i = 0; i < 3; ++i) {
    world.client(i).on_deliver([&received, i](ProcessId from,
                                              const gcs::AppMsg& m) {
      received[static_cast<std::size_t>(i)].push_back(
          to_string(from) + ":" + m.payload);
    });
  }

  world.start();
  ASSERT_TRUE(world.run_until_converged(world.all_members(),
                                        5 * sim::kSecond))
      << "GCS never delivered the initial 3-member view";

  world.client(0).send("hello");
  world.client(1).send("world");
  world.run_for(1 * sim::kSecond);

  for (int i = 0; i < 3; ++i) {
    const auto& r = received[static_cast<std::size_t>(i)];
    EXPECT_EQ(r.size(), 2u) << "process " << i;
  }

  world.checkers().finalize();
  EXPECT_TRUE(spec::LivenessChecker::check(world.trace().recorded()));
}

}  // namespace
}  // namespace vsgc
