// IntervalSet unit + fuzz coverage (DESIGN.md §13).
//
// The fuzz tests drive the run-length structure and a naive std::set oracle
// through the same randomized operation stream and require identical
// observable behaviour after every step: membership, count, run maximality,
// complement, cumulative trim, and wire round-trip. Any divergence between
// the O(log runs) structure and the O(n) oracle is a transport-ack bug
// waiting to happen.
#include "util/interval_set.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <set>

#include "util/serialization.hpp"

namespace vsgc::util {
namespace {

TEST(IntervalSet, InsertMergesAdjacentRuns) {
  IntervalSet s;
  EXPECT_TRUE(s.insert(5));
  EXPECT_TRUE(s.insert(7));
  EXPECT_EQ(s.num_runs(), 2u);
  EXPECT_TRUE(s.insert(6));  // bridges [5,5] and [7,7]
  EXPECT_EQ(s.num_runs(), 1u);
  EXPECT_TRUE(s.contains_run(5, 7));
  EXPECT_FALSE(s.insert(6));  // duplicate
  EXPECT_EQ(s.count(), 3u);
}

TEST(IntervalSet, InsertRunCoalescesOverlaps) {
  IntervalSet s;
  EXPECT_EQ(s.insert_run(10, 20), 11u);
  EXPECT_EQ(s.insert_run(15, 25), 5u);   // right overlap
  EXPECT_EQ(s.insert_run(5, 9), 5u);     // left abut
  EXPECT_EQ(s.insert_run(5, 25), 0u);    // fully contained
  EXPECT_EQ(s.num_runs(), 1u);
  EXPECT_EQ(s.min(), 5u);
  EXPECT_EQ(s.max(), 25u);
  EXPECT_EQ(s.insert_run(1, 30), 9u);    // swallows everything
  EXPECT_EQ(s.num_runs(), 1u);
}

TEST(IntervalSet, NextMissingSkipsRuns) {
  IntervalSet s;
  s.insert_run(1, 4);
  s.insert_run(6, 9);
  EXPECT_EQ(s.next_missing(1), 5u);
  EXPECT_EQ(s.next_missing(5), 5u);
  EXPECT_EQ(s.next_missing(6), 10u);
  EXPECT_EQ(s.next_missing(11), 11u);
}

TEST(IntervalSet, EraseBelowSplitsRun) {
  IntervalSet s;
  s.insert_run(1, 10);
  s.insert_run(20, 30);
  s.erase_below(5);
  EXPECT_FALSE(s.contains(4));
  EXPECT_TRUE(s.contains_run(5, 10));
  s.erase_below(25);
  EXPECT_EQ(s.num_runs(), 1u);
  EXPECT_EQ(s.min(), 25u);
  s.erase_below(100);
  EXPECT_TRUE(s.empty());
}

TEST(IntervalSet, ComplementOfWindow) {
  IntervalSet s;
  s.insert_run(3, 5);
  s.insert_run(8, 8);
  const IntervalSet gaps = s.complement(1, 10);
  EXPECT_TRUE(gaps.contains_run(1, 2));
  EXPECT_TRUE(gaps.contains_run(6, 7));
  EXPECT_TRUE(gaps.contains_run(9, 10));
  EXPECT_EQ(gaps.count(), 6u);
  // Complement of the complement restores the interior.
  const IntervalSet back = gaps.complement(1, 10);
  EXPECT_EQ(back.count(), 4u);
  EXPECT_TRUE(back.contains_run(3, 5));
  EXPECT_TRUE(back.contains(8));
}

TEST(IntervalSet, DecodeRejectsForgedRuns) {
  // Inverted run.
  {
    Encoder enc;
    enc.put_u32(1);
    enc.put_u64(9);
    enc.put_u64(3);
    Decoder dec(enc.bytes());
    EXPECT_THROW(IntervalSet::decode(dec, 16), DecodeError);
  }
  // Non-maximal (adjacent) runs — an honest encoder always coalesces.
  {
    Encoder enc;
    enc.put_u32(2);
    enc.put_u64(1);
    enc.put_u64(4);
    enc.put_u64(5);
    enc.put_u64(9);
    Decoder dec(enc.bytes());
    EXPECT_THROW(IntervalSet::decode(dec, 16), DecodeError);
  }
  // Count above the cap.
  {
    Encoder enc;
    enc.put_u32(17);
    Decoder dec(enc.bytes());
    EXPECT_THROW(IntervalSet::decode(dec, 16), DecodeError);
  }
  // Truncated payload.
  {
    Encoder enc;
    enc.put_u32(2);
    enc.put_u64(1);
    enc.put_u64(4);
    Decoder dec(enc.bytes());
    EXPECT_THROW(IntervalSet::decode(dec, 16), DecodeError);
  }
}

/// Oracle: the same value set held in a plain std::set.
void expect_matches_oracle(const IntervalSet& s,
                           const std::set<std::uint64_t>& oracle,
                           std::uint64_t lo, std::uint64_t hi) {
  ASSERT_EQ(s.count(), oracle.size());
  // Runs must be maximal, ascending, and disjoint.
  std::uint64_t prev_hi = 0;
  bool first = true;
  for (const auto& [run_lo, run_hi] : s.runs()) {
    ASSERT_LE(run_lo, run_hi);
    if (!first) ASSERT_GT(run_lo, prev_hi + 1) << "runs not maximal";
    prev_hi = run_hi;
    first = false;
  }
  for (std::uint64_t v = lo; v <= hi; ++v) {
    ASSERT_EQ(s.contains(v), oracle.contains(v)) << "value " << v;
  }
}

TEST(IntervalSetFuzz, MatchesNaiveOracle) {
  std::mt19937_64 rng(20260807ull);
  constexpr std::uint64_t kLo = 0, kHi = 160;
  for (int round = 0; round < 40; ++round) {
    IntervalSet s;
    std::set<std::uint64_t> oracle;
    for (int step = 0; step < 300; ++step) {
      const auto op = rng() % 6;
      if (op <= 1) {  // single insert
        const std::uint64_t v = kLo + rng() % (kHi - kLo + 1);
        const bool added = s.insert(v);
        EXPECT_EQ(added, oracle.insert(v).second);
      } else if (op == 2) {  // run insert
        std::uint64_t a = kLo + rng() % (kHi - kLo + 1);
        std::uint64_t b = kLo + rng() % (kHi - kLo + 1);
        if (a > b) std::swap(a, b);
        std::uint64_t fresh = 0;
        for (std::uint64_t v = a; v <= b; ++v) fresh += oracle.insert(v).second;
        EXPECT_EQ(s.insert_run(a, b), fresh);
      } else if (op == 3) {  // cumulative trim
        const std::uint64_t v = kLo + rng() % (kHi - kLo + 1);
        s.erase_below(v);
        oracle.erase(oracle.begin(), oracle.lower_bound(v));
      } else if (op == 4) {  // next_missing probe
        const std::uint64_t from = kLo + rng() % (kHi - kLo + 1);
        std::uint64_t expect = from;
        while (oracle.contains(expect)) ++expect;
        EXPECT_EQ(s.next_missing(from), expect);
      } else {  // contains_run probe
        std::uint64_t a = kLo + rng() % (kHi - kLo + 1);
        std::uint64_t b = kLo + rng() % (kHi - kLo + 1);
        if (a > b) std::swap(a, b);
        bool all = true;
        for (std::uint64_t v = a; v <= b && all; ++v) all = oracle.contains(v);
        EXPECT_EQ(s.contains_run(a, b), all);
      }
    }
    expect_matches_oracle(s, oracle, kLo, kHi);

    // Complement agrees with the oracle's complement over the window.
    const IntervalSet gaps = s.complement(kLo, kHi);
    for (std::uint64_t v = kLo; v <= kHi; ++v) {
      ASSERT_EQ(gaps.contains(v), !oracle.contains(v)) << "value " << v;
    }

    // Wire round-trip is lossless and re-validates run shape.
    Encoder enc;
    s.encode(enc);
    Decoder dec(enc.bytes());
    const IntervalSet back =
        IntervalSet::decode(dec, static_cast<std::uint32_t>(s.num_runs()));
    EXPECT_TRUE(dec.done());
    EXPECT_EQ(back, s);
  }
}

}  // namespace
}  // namespace vsgc::util
