// Tests for the causal-order multicast layer: potential causality (Lamport's
// happened-before) must be respected even when retransmission delays invert
// cross-sender arrival order — and without the layer, raw FIFO delivery does
// exhibit such inversions, which the control test demonstrates.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "app/causal_order.hpp"
#include "app/world.hpp"

namespace vsgc {
namespace {

/// Scenario: p1 multicasts "ask"; p2 multicasts "reply" the moment it sees
/// the ask. Observers at p3 record arrival order. Under loss, the ask
/// p1->p3 may be retransmitted and arrive after p2's reply (a causality
/// inversion at the raw FIFO layer).
struct CausalRig {
  explicit CausalRig(std::uint64_t seed, double drop, bool use_causal) {
    app::WorldConfig cfg;
    cfg.num_clients = 3;
    cfg.seed = seed;
    cfg.net.drop_probability = drop;
    world = std::make_unique<app::World>(cfg);
    if (use_causal) {
      for (int i = 0; i < 3; ++i) {
        causal.push_back(std::make_unique<app::CausalOrder>(
            world->client(i), world->process(i).id()));
      }
      causal[1]->on_deliver([this](ProcessId, const std::string& payload) {
        if (payload.starts_with("ask")) causal[1]->send("reply-to-" + payload);
      });
      causal[2]->on_deliver([this](ProcessId, const std::string& payload) {
        order.push_back(payload);
      });
    } else {
      world->client(1).on_deliver([this](ProcessId, const gcs::AppMsg& m) {
        if (m.payload.starts_with("ask")) {
          world->client(1).send("reply-to-" + m.payload);
        }
      });
      world->client(2).on_deliver([this](ProcessId, const gcs::AppMsg& m) {
        order.push_back(m.payload);
      });
    }
  }

  void run_rounds(int rounds) {
    world->start();
    ASSERT_TRUE(world->run_until_converged(world->all_members(),
                                           10 * sim::kSecond));
    for (int k = 0; k < rounds; ++k) {
      const std::string ask = "ask" + std::to_string(k);
      if (!causal.empty()) causal[0]->send(ask);
      else world->client(0).send(ask);
      world->run_for(300 * sim::kMillisecond);
    }
    world->run_for(5 * sim::kSecond);
  }

  /// Number of replies observed before their own ask.
  int inversions() const {
    int count = 0;
    std::set<std::string> seen;
    for (const std::string& payload : order) {
      if (payload.starts_with("reply-to-")) {
        if (!seen.contains(payload.substr(9))) ++count;
      } else {
        seen.insert(payload);
      }
    }
    return count;
  }

  std::unique_ptr<app::World> world;
  std::vector<std::unique_ptr<app::CausalOrder>> causal;
  std::vector<std::string> order;
};

TEST(CausalOrder, RawFifoExhibitsInversionsUnderLoss) {
  // Control: find a seed where per-sender FIFO alone inverts causality.
  int total_inversions = 0;
  for (std::uint64_t seed = 1; seed <= 8 && total_inversions == 0; ++seed) {
    CausalRig rig(seed, /*drop=*/0.35, /*use_causal=*/false);
    rig.run_rounds(20);
    total_inversions += rig.inversions();
  }
  EXPECT_GT(total_inversions, 0)
      << "expected at least one causality inversion at the raw FIFO layer "
         "across these seeds; if the network model changed, tune the seeds";
}

TEST(CausalOrder, LayerRestoresCausalDelivery) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    CausalRig rig(seed, /*drop=*/0.35, /*use_causal=*/true);
    rig.run_rounds(20);
    EXPECT_EQ(rig.inversions(), 0) << "seed " << seed;
    EXPECT_GE(rig.order.size(), 30u) << "liveness: asks and replies flowed";
  }
}

TEST(CausalOrder, CleanNetworkPassesThrough) {
  CausalRig rig(3, /*drop=*/0.0, /*use_causal=*/true);
  rig.run_rounds(10);
  EXPECT_EQ(rig.inversions(), 0);
  EXPECT_EQ(rig.order.size(), 20u);  // 10 asks + 10 replies
}

TEST(CausalOrder, SurvivesViewChange) {
  CausalRig rig(5, /*drop=*/0.0, /*use_causal=*/true);
  rig.world->start();
  ASSERT_TRUE(rig.world->run_until_converged(rig.world->all_members(),
                                             10 * sim::kSecond));
  rig.causal[0]->send("ask-pre");
  rig.world->run_for(sim::kSecond);
  // p2 (a passive observer here) leaves; the remaining pair keeps flowing.
  rig.world->process(1).crash();
  rig.world->run_for(8 * sim::kSecond);
  rig.causal[0]->send("ask-post");
  rig.world->run_for(2 * sim::kSecond);
  std::vector<std::string> expect{"ask-pre", "reply-to-ask-pre", "ask-post"};
  EXPECT_EQ(rig.order, expect);
  EXPECT_EQ(rig.causal[2]->buffered(), 0u);
}

TEST(CausalOrder, ConcurrentSendersAllDelivered) {
  app::WorldConfig cfg;
  cfg.num_clients = 4;
  cfg.net.drop_probability = 0.2;
  cfg.seed = 11;
  app::World w(cfg);
  std::vector<std::unique_ptr<app::CausalOrder>> co;
  std::vector<int> rx(4, 0);
  for (int i = 0; i < 4; ++i) {
    co.push_back(std::make_unique<app::CausalOrder>(w.client(i),
                                                    w.process(i).id()));
    co.back()->on_deliver(
        [&rx, i](ProcessId, const std::string&) { ++rx[static_cast<std::size_t>(i)]; });
  }
  w.start();
  ASSERT_TRUE(w.run_until_converged(w.all_members(), 10 * sim::kSecond));
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 4; ++i) co[static_cast<std::size_t>(i)]->send("m");
    w.run_for(500 * sim::kMillisecond);
  }
  w.run_for(5 * sim::kSecond);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(rx[static_cast<std::size_t>(i)], 20) << "endpoint " << i;
    EXPECT_EQ(co[static_cast<std::size_t>(i)]->buffered(), 0u);
  }
  w.checkers().finalize();
}

}  // namespace
}  // namespace vsgc
