// Unit tests: View type, FifoBuffer, wire message sizing, oracle membership.
#include <gtest/gtest.h>

#include "gcs/fifo_buffer.hpp"
#include "gcs/messages.hpp"
#include "membership/oracle.hpp"
#include "membership/view.hpp"
#include "util/assert.hpp"

namespace vsgc {
namespace {

TEST(View, InitialViewIsSingleton) {
  const View v = View::initial(ProcessId{7});
  EXPECT_EQ(v.id, ViewId::zero());
  EXPECT_EQ(v.members, std::set<ProcessId>{ProcessId{7}});
  EXPECT_EQ(v.start_id_of(ProcessId{7}), StartChangeId::zero());
  EXPECT_TRUE(v.contains(ProcessId{7}));
  EXPECT_FALSE(v.contains(ProcessId{8}));
}

TEST(View, EqualityComparesAllThreeComponents) {
  View a = View::initial(ProcessId{1});
  View b = a;
  EXPECT_EQ(a, b);
  b.start_id[ProcessId{1}] = StartChangeId{5};
  EXPECT_NE(a, b) << "same id+members but different startId => different view";
}

TEST(View, EncodeDecodeRoundTrip) {
  View v;
  v.id = ViewId{42, 3};
  v.members = {ProcessId{1}, ProcessId{2}, ProcessId{9}};
  v.start_id = {{ProcessId{1}, StartChangeId{10}},
                {ProcessId{2}, StartChangeId{20}},
                {ProcessId{9}, StartChangeId{90}}};
  Encoder enc;
  v.encode(enc);
  Decoder dec(enc.bytes());
  const View round = View::decode(dec);
  EXPECT_EQ(v, round);
  EXPECT_TRUE(dec.done());
  EXPECT_EQ(v.wire_size(), enc.size());
}

TEST(View, ToStringMentionsMembersAndCids) {
  View v = View::initial(ProcessId{3});
  const std::string s = to_string(v);
  EXPECT_NE(s.find("p3"), std::string::npos);
}

TEST(FifoBuffer, AppendAndPrefix) {
  gcs::FifoBuffer buf;
  EXPECT_EQ(buf.longest_prefix(), 0);
  EXPECT_EQ(buf.append(gcs::AppMsg{ProcessId{1}, 1, "a"}), 1);
  EXPECT_EQ(buf.append(gcs::AppMsg{ProcessId{1}, 2, "b"}), 2);
  EXPECT_EQ(buf.longest_prefix(), 2);
  EXPECT_EQ(buf.last_index(), 2);
  ASSERT_NE(buf.get(1), nullptr);
  EXPECT_EQ(buf.get(1)->payload, "a");
  EXPECT_EQ(buf.get(3), nullptr);
}

TEST(FifoBuffer, OutOfOrderInsertsLeaveGap) {
  gcs::FifoBuffer buf;
  buf.put(3, gcs::AppMsg{ProcessId{1}, 3, "c"});
  EXPECT_EQ(buf.longest_prefix(), 0) << "gap at 1..2";
  EXPECT_EQ(buf.last_index(), 3);
  buf.put(1, gcs::AppMsg{ProcessId{1}, 1, "a"});
  EXPECT_EQ(buf.longest_prefix(), 1);
  buf.put(2, gcs::AppMsg{ProcessId{1}, 2, "b"});
  EXPECT_EQ(buf.longest_prefix(), 3) << "gap closed, prefix jumps";
}

TEST(FifoBuffer, DuplicatePutIsIdempotent) {
  gcs::FifoBuffer buf;
  buf.put(1, gcs::AppMsg{ProcessId{1}, 1, "a"});
  buf.put(1, gcs::AppMsg{ProcessId{1}, 99, "other"});
  EXPECT_EQ(buf.get(1)->uid, 1u) << "first write wins";
  EXPECT_EQ(buf.size(), 1u);
}

TEST(WireMessages, SizesTrackPayloads) {
  gcs::AppMsg small{ProcessId{1}, 1, "x"};
  gcs::AppMsg big{ProcessId{1}, 2, std::string(1000, 'y')};
  EXPECT_GT(gcs::wire::AppMsgWire{big}.wire_size(),
            gcs::wire::AppMsgWire{small}.wire_size() + 900);
  gcs::wire::SyncMsg sync{StartChangeId{1}, View::initial(ProcessId{1}), {}};
  sync.cut[ProcessId{1}] = 5;
  sync.cut[ProcessId{2}] = 7;
  EXPECT_GT(sync.wire_size(), 20u) << "cut entries must be accounted";
}

TEST(Oracle, EnforcesStartChangeBeforeView) {
  membership::OracleMembership oracle;
  class Nop : public membership::Listener {
    void on_start_change(StartChangeId, const std::set<ProcessId>&) override {}
    void on_view(const View&) override {}
  } nop;
  oracle.attach(ProcessId{1}, nop);
  EXPECT_THROW(oracle.deliver_view({ProcessId{1}}), InvariantViolation);
  oracle.start_change({ProcessId{1}});
  EXPECT_NO_THROW(oracle.deliver_view({ProcessId{1}}));
  // Second view without a new start_change is illegal.
  EXPECT_THROW(oracle.deliver_view({ProcessId{1}}), InvariantViolation);
}

TEST(Oracle, CidsIncreasePerProcess) {
  membership::OracleMembership oracle;
  class Nop : public membership::Listener {
    void on_start_change(StartChangeId, const std::set<ProcessId>&) override {}
    void on_view(const View&) override {}
  } nop;
  oracle.attach(ProcessId{1}, nop);
  const auto c1 = oracle.start_change_to(ProcessId{1}, {ProcessId{1}});
  const auto c2 = oracle.start_change_to(ProcessId{1}, {ProcessId{1}});
  EXPECT_LT(c1, c2);
}

TEST(Oracle, ViewCarriesLatestCids) {
  membership::OracleMembership oracle;
  class Nop : public membership::Listener {
    void on_start_change(StartChangeId, const std::set<ProcessId>&) override {}
    void on_view(const View&) override {}
  } nop;
  oracle.attach(ProcessId{1}, nop);
  oracle.attach(ProcessId{2}, nop);
  oracle.start_change({ProcessId{1}, ProcessId{2}});
  oracle.start_change({ProcessId{1}, ProcessId{2}});
  const View v = oracle.deliver_view({ProcessId{1}, ProcessId{2}});
  EXPECT_EQ(v.start_id_of(ProcessId{1}), oracle.last_cid(ProcessId{1}));
  EXPECT_EQ(v.start_id_of(ProcessId{1}).value, 2u);
}

}  // namespace
}  // namespace vsgc
