// Self-checks for vsgc-lint, mirroring the planted-bug style of vsgc_stress
// and vsgc_mc: for every rule there is a fixture with a planted violation
// (the lint must flag it), a clean fixture (must pass), and a
// pragma-suppressed fixture (must pass with the finding recorded as
// suppressed). Fixture sources are string literals, so scanning this test
// file itself stays clean — the tokenizer never reads pragmas or banned
// names out of string literals.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "lint/linter.hpp"
#include "obs/json.hpp"

namespace vsgc::lint {
namespace {

std::vector<Finding> run_one(const std::string& path,
                             const std::string& text) {
  Linter linter;
  linter.lint_source(path, text);
  linter.finalize();
  return linter.findings();
}

int count_rule(const std::vector<Finding>& fs, const std::string& rule,
               bool suppressed = false) {
  int n = 0;
  for (const Finding& f : fs) {
    if (f.rule == rule && f.suppressed == suppressed) ++n;
  }
  return n;
}

// --- banned-random ----------------------------------------------------------

TEST(LintBannedRandom, PlantedViolationIsFlagged) {
  const auto fs = run_one("src/sim/fixture.cpp",
                          "int f() { return std::rand(); }\n");
  EXPECT_EQ(count_rule(fs, "banned-random"), 1);
  EXPECT_EQ(fs[0].line, 1);
}

TEST(LintBannedRandom, Mt19937AndRandomDeviceAreFlagged) {
  const auto fs = run_one("src/mc/fixture.cpp",
                          "std::mt19937 gen{std::random_device{}()};\n");
  EXPECT_EQ(count_rule(fs, "banned-random"), 2);
}

TEST(LintBannedRandom, CleanRngUsePasses) {
  const auto fs = run_one("src/sim/fixture.cpp",
                          "#include \"util/rng.hpp\"\n"
                          "std::uint64_t f(vsgc::Rng& rng) {"
                          " return rng.next_u64(); }\n");
  EXPECT_TRUE(fs.empty());
}

TEST(LintBannedRandom, PragmaSuppresses) {
  const auto fs = run_one(
      "src/sim/fixture.cpp",
      "// vsgc-lint: allow(banned-random) fixture exercising suppression\n"
      "int f() { return std::rand(); }\n");
  EXPECT_EQ(count_rule(fs, "banned-random", /*suppressed=*/true), 1);
  EXPECT_EQ(count_rule(fs, "banned-random", /*suppressed=*/false), 0);
}

TEST(LintBannedRandom, OutsideDeterminismScopeNotFlagged) {
  const auto fs =
      run_one("tests/fixture.cpp", "int f() { return std::rand(); }\n");
  EXPECT_TRUE(fs.empty());
}

// --- banned-time ------------------------------------------------------------

TEST(LintBannedTime, TimeCallAndChronoClocksAreFlagged) {
  const auto fs = run_one(
      "src/net/fixture.cpp",
      "long f() { return time(nullptr); }\n"
      "auto g() { return std::chrono::steady_clock::now(); }\n");
  EXPECT_EQ(count_rule(fs, "banned-time"), 2);
}

TEST(LintBannedTime, MemberNamedTimeIsNotFlagged) {
  // `.time(...)` is a member call on a simulated object, not ::time().
  const auto fs = run_one("src/gcs/fixture.cpp",
                          "long f(Sim& s) { return s.time(); }\n");
  EXPECT_TRUE(fs.empty());
}

TEST(LintBannedTime, PragmaSuppresses) {
  const auto fs = run_one(
      "src/sim/fixture.cpp",
      "long f() { return time(nullptr); }  "
      "// vsgc-lint: allow(banned-time) same-line suppression fixture\n");
  EXPECT_EQ(count_rule(fs, "banned-time", /*suppressed=*/true), 1);
  EXPECT_EQ(count_rule(fs, "banned-time", /*suppressed=*/false), 0);
}

// --- banned-getenv ----------------------------------------------------------

TEST(LintBannedGetenv, FlaggedEverywhereOutsideObs) {
  EXPECT_EQ(count_rule(run_one("src/gcs/fixture.cpp",
                               "const char* e = std::getenv(\"X\");\n"),
                       "banned-getenv"),
            1);
  EXPECT_EQ(count_rule(run_one("tools/fixture.cpp",
                               "const char* e = getenv(\"X\");\n"),
                       "banned-getenv"),
            1);
}

TEST(LintBannedGetenv, ObsAndLoggingAreExempt) {
  EXPECT_TRUE(run_one("src/obs/fixture.cpp",
                      "const char* e = std::getenv(\"X\");\n")
                  .empty());
  const auto fs = run_one("src/util/logging.hpp",
                          "#pragma once\n"
                          "inline const char* e() { return getenv(\"X\"); }\n");
  EXPECT_EQ(count_rule(fs, "banned-getenv"), 0);
}

TEST(LintBannedGetenv, PragmaSuppresses) {
  const auto fs = run_one(
      "src/membership/fixture.cpp",
      "// vsgc-lint: allow(banned-getenv) fixture justification\n"
      "const char* e = getenv(\"X\");\n");
  EXPECT_EQ(count_rule(fs, "banned-getenv", /*suppressed=*/true), 1);
  EXPECT_EQ(count_rule(fs, "banned-getenv", /*suppressed=*/false), 0);
}

// --- unordered-iteration ----------------------------------------------------

constexpr const char* kUnorderedSendLoop = R"lint(
#include <unordered_map>
void f(Net& net) {
  std::unordered_map<int, int> peers;
  for (auto& [id, st] : peers) {
    net.send(id, st);
  }
}
)lint";

TEST(LintUnorderedIteration, RangeForFeedingSendIsFlagged) {
  const auto fs = run_one("src/net/fixture.cpp", kUnorderedSendLoop);
  EXPECT_EQ(count_rule(fs, "unordered-iteration"), 1);
}

TEST(LintUnorderedIteration, IteratorLoopFeedingScheduleIsFlagged) {
  const auto fs = run_one("src/sim/fixture.cpp", R"lint(
void f(Sim& sim) {
  std::unordered_set<int> ready;
  for (auto it = ready.begin(); it != ready.end(); ++it) {
    sim.schedule_at(*it, 0);
  }
}
)lint");
  EXPECT_EQ(count_rule(fs, "unordered-iteration"), 1);
}

TEST(LintUnorderedIteration, PureAccumulationPasses) {
  const auto fs = run_one("src/net/fixture.cpp", R"lint(
int f() {
  std::unordered_map<int, int> peers;
  int sum = 0;
  for (auto& [id, st] : peers) {
    sum += st;
  }
  return sum;
}
)lint");
  EXPECT_TRUE(fs.empty());
}

TEST(LintUnorderedIteration, OrderedMapFeedingSendPasses) {
  const auto fs = run_one("src/net/fixture.cpp", R"lint(
void f(Net& net) {
  std::map<int, int> peers;
  for (auto& [id, st] : peers) {
    net.send(id, st);
  }
}
)lint");
  EXPECT_TRUE(fs.empty());
}

TEST(LintUnorderedIteration, PragmaSuppresses) {
  const auto fs = run_one("src/net/fixture.cpp", R"lint(
void f(Net& net) {
  std::unordered_map<int, int> peers;
  // vsgc-lint: allow(unordered-iteration) fixture: send is order-insensitive here
  for (auto& [id, st] : peers) {
    net.send(id, st);
  }
}
)lint");
  EXPECT_EQ(count_rule(fs, "unordered-iteration", /*suppressed=*/true), 1);
  EXPECT_EQ(count_rule(fs, "unordered-iteration", /*suppressed=*/false), 0);
}

// --- pointer-order ----------------------------------------------------------

TEST(LintPointerOrder, PointerKeyedMapAndSetAreFlagged) {
  const auto fs = run_one("src/membership/fixture.cpp",
                          "std::map<Node*, int> owners;\n"
                          "std::set<Conn*> conns;\n");
  EXPECT_EQ(count_rule(fs, "pointer-order"), 2);
}

TEST(LintPointerOrder, PointerValuesAndComparisonsPass) {
  const auto fs = run_one("src/membership/fixture.cpp",
                          "std::map<int, Node*> by_id;\n"
                          "bool f(int set, int x) { return set < x; }\n"
                          "std::priority_queue<E, std::vector<E>, "
                          "std::greater<>> q;\n");
  EXPECT_TRUE(fs.empty());
}

TEST(LintPointerOrder, PragmaSuppresses) {
  const auto fs = run_one(
      "src/app/fixture.cpp",
      "// vsgc-lint: allow(pointer-order) fixture: map is per-run scratch\n"
      "std::map<Node*, int> owners;\n");
  EXPECT_EQ(count_rule(fs, "pointer-order", /*suppressed=*/true), 1);
  EXPECT_EQ(count_rule(fs, "pointer-order", /*suppressed=*/false), 0);
}

// --- wire-init --------------------------------------------------------------

TEST(LintWireInit, UninitializedMemberIsFlagged) {
  const auto fs = run_one("src/gcs/messages.hpp",
                          "#pragma once\n"
                          "struct Ping {\n"
                          "  std::uint32_t seq;\n"
                          "};\n");
  ASSERT_EQ(count_rule(fs, "wire-init"), 1);
  EXPECT_EQ(fs[0].line, 3);
  EXPECT_NE(fs[0].message.find("'seq'"), std::string::npos);
}

TEST(LintWireInit, InitializedMembersAndFunctionsPass) {
  const auto fs = run_one("src/membership/wire.hpp", R"lint(
#pragma once
struct Ping {
  std::uint32_t seq = 0;
  View view{};
  std::map<ProcessId, std::int64_t> cut{};
  static constexpr std::size_t kWireSize = 5;
  void encode(Encoder& enc) const { enc.put_u32(seq); }
  static Ping decode(Decoder& dec);
  friend bool operator==(const Ping&, const Ping&) = default;
};
)lint");
  EXPECT_EQ(count_rule(fs, "wire-init"), 0);
}

TEST(LintWireInit, TransportFrameHeaderIsInScope) {
  // The frame structs (DESIGN.md §11) are wire types: every member needs an
  // in-class initializer, exactly like messages.hpp and wire.hpp.
  const auto fs = run_one("src/transport/frame.hpp",
                          "#pragma once\n"
                          "struct FrameHeader {\n"
                          "  std::uint64_t base_seq;\n"
                          "};\n");
  ASSERT_EQ(count_rule(fs, "wire-init"), 1);
  EXPECT_NE(fs[0].message.find("'base_seq'"), std::string::npos);
}

TEST(LintWireInit, OnlyWireHeadersAreInScope) {
  const auto fs = run_one("src/gcs/other.hpp",
                          "#pragma once\n"
                          "struct Scratch { int x; };\n");
  EXPECT_EQ(count_rule(fs, "wire-init"), 0);
}

TEST(LintWireInit, PragmaSuppresses) {
  const auto fs = run_one(
      "src/gcs/messages.hpp",
      "#pragma once\n"
      "struct Ping {\n"
      "  std::uint32_t seq;  "
      "// vsgc-lint: allow(wire-init) fixture: seq is set by every ctor\n"
      "};\n");
  EXPECT_EQ(count_rule(fs, "wire-init", /*suppressed=*/true), 1);
  EXPECT_EQ(count_rule(fs, "wire-init", /*suppressed=*/false), 0);
}

// --- event-coverage ---------------------------------------------------------

constexpr const char* kEventsTwo =
    "#pragma once\n"
    "struct EvA { int p; };\n"
    "struct EvB { int p; };\n"
    "using EventBody = std::variant<EvA, EvB>;\n";

std::vector<Finding> run_spec_trio(const std::string& events,
                                   const std::string& checker) {
  Linter linter;
  linter.lint_source("src/spec/events.hpp", events);
  linter.lint_source("src/spec/all_checkers.hpp",
                     "#pragma once\n#include \"spec/foo_checker.hpp\"\n");
  linter.lint_source("src/spec/foo_checker.hpp", checker);
  linter.finalize();
  return linter.findings();
}

TEST(LintEventCoverage, UnconsumedEventIsFlagged) {
  const auto fs = run_spec_trio(
      kEventsTwo, "#pragma once\nvoid on_a(const EvA& e);\n");
  ASSERT_EQ(count_rule(fs, "event-coverage"), 1);
  EXPECT_EQ(fs[0].file, "src/spec/events.hpp");
  EXPECT_EQ(fs[0].line, 3);  // anchored at `struct EvB`
  EXPECT_NE(fs[0].message.find("EvB"), std::string::npos);
}

TEST(LintEventCoverage, FullyConsumedVariantPasses) {
  const auto fs = run_spec_trio(
      kEventsTwo,
      "#pragma once\nvoid on_a(const EvA& e);\nvoid on_b(const EvB& e);\n");
  EXPECT_EQ(count_rule(fs, "event-coverage"), 0);
}

TEST(LintEventCoverage, PragmaSuppresses) {
  const auto fs = run_spec_trio(
      "#pragma once\n"
      "struct EvA { int p; };\n"
      "// vsgc-lint: allow(event-coverage) fixture: metadata-only event\n"
      "struct EvB { int p; };\n"
      "using EventBody = std::variant<EvA, EvB>;\n",
      "#pragma once\nvoid on_a(const EvA& e);\n");
  EXPECT_EQ(count_rule(fs, "event-coverage", /*suppressed=*/true), 1);
  EXPECT_EQ(count_rule(fs, "event-coverage", /*suppressed=*/false), 0);
}

// Span-marker variants (MsgWireSend and friends) are consumed by
// obs::SpanCollector, not by a spec checker — the rule must still flag them
// (obs is outside the all_checkers reachability set), and the repo's
// span-marker pragma idiom must suppress them with its justification intact.
TEST(LintEventCoverage, SpanMarkerConsumedOnlyByObsStillNeedsPragma) {
  Linter linter;
  linter.lint_source("src/spec/events.hpp",
                     "#pragma once\n"
                     "struct EvA { int p; };\n"
                     "struct MsgWireSend { int p; };\n"
                     "using EventBody = std::variant<EvA, MsgWireSend>;\n");
  linter.lint_source("src/spec/all_checkers.hpp",
                     "#pragma once\n#include \"spec/foo_checker.hpp\"\n");
  linter.lint_source("src/spec/foo_checker.hpp",
                     "#pragma once\nvoid on_a(const EvA& e);\n");
  linter.lint_source(
      "src/obs/span.cpp",
      "#include \"spec/events.hpp\"\n"
      "void on_event(const MsgWireSend& e);\n");  // obs-side consumer
  linter.finalize();
  const auto fs = linter.findings();
  ASSERT_EQ(count_rule(fs, "event-coverage"), 1);
  EXPECT_NE(fs[0].message.find("MsgWireSend"), std::string::npos);
}

TEST(LintEventCoverage, SpanMarkerPragmaIdiomSuppresses) {
  const auto fs = run_spec_trio(
      "#pragma once\n"
      "struct EvA { int p; };\n"
      "// vsgc-lint: allow(event-coverage) causal span marker, consumed by "
      "obs::SpanCollector / tools/vsgc_trace rather than by a spec checker\n"
      "struct MsgWireSend { int p; };\n"
      "using EventBody = std::variant<EvA, MsgWireSend>;\n",
      "#pragma once\nvoid on_a(const EvA& e);\n");
  EXPECT_EQ(count_rule(fs, "event-coverage", /*suppressed=*/true), 1);
  EXPECT_EQ(count_rule(fs, "event-coverage", /*suppressed=*/false), 0);
  const auto it = std::find_if(fs.begin(), fs.end(), [](const Finding& f) {
    return f.rule == "event-coverage";
  });
  ASSERT_NE(it, fs.end());
  EXPECT_NE(it->justification.find("SpanCollector"), std::string::npos);
}

// --- include-guard ----------------------------------------------------------

TEST(LintIncludeGuard, MissingPragmaOnceIsFlagged) {
  const auto fs =
      run_one("src/util/fixture.hpp", "struct X { int a = 0; };\n");
  EXPECT_EQ(count_rule(fs, "include-guard"), 1);
}

TEST(LintIncludeGuard, IfndefStyleIsFlagged) {
  const auto fs = run_one("src/util/fixture.hpp",
                          "#ifndef VSGC_FIXTURE_HPP\n"
                          "#define VSGC_FIXTURE_HPP\n"
                          "#endif\n");
  ASSERT_EQ(count_rule(fs, "include-guard"), 1);
  EXPECT_NE(fs[0].message.find("#ifndef"), std::string::npos);
}

TEST(LintIncludeGuard, PragmaOnceAfterCommentsPasses) {
  const auto fs = run_one("src/util/fixture.hpp",
                          "// file comment\n"
                          "#pragma once\n"
                          "struct X { int a = 0; };\n");
  EXPECT_TRUE(fs.empty());
}

TEST(LintIncludeGuard, CppFilesAreNotHeaders) {
  EXPECT_TRUE(run_one("src/util/fixture.cpp", "int x = 0;\n").empty());
}

// --- bad-pragma -------------------------------------------------------------

TEST(LintBadPragma, MissingJustificationDoesNotSuppress) {
  const auto fs = run_one("src/sim/fixture.cpp",
                          "// vsgc-lint: allow(banned-random)\n"
                          "int f() { return std::rand(); }\n");
  EXPECT_EQ(count_rule(fs, "bad-pragma"), 1);
  EXPECT_EQ(count_rule(fs, "banned-random", /*suppressed=*/false), 1);
}

TEST(LintBadPragma, UnknownRuleIsFlagged) {
  const auto fs = run_one(
      "src/sim/fixture.cpp",
      "// vsgc-lint: allow(no-such-rule) justified at length\nint x = 0;\n");
  EXPECT_EQ(count_rule(fs, "bad-pragma"), 1);
}

TEST(LintBadPragma, MalformedPragmaIsFlagged) {
  const auto fs = run_one("src/sim/fixture.cpp",
                          "// vsgc-lint: disable everything please\n"
                          "int x = 0;\n");
  EXPECT_EQ(count_rule(fs, "bad-pragma"), 1);
}

TEST(LintBadPragma, StalePragmaIsFlagged) {
  const auto fs = run_one(
      "src/sim/fixture.cpp",
      "// vsgc-lint: allow(banned-random) nothing to suppress below\n"
      "int x = 0;\n");
  ASSERT_EQ(count_rule(fs, "bad-pragma"), 1);
  EXPECT_NE(fs[0].message.find("suppresses nothing"), std::string::npos);
}

// --- layer-violation --------------------------------------------------------

std::vector<Finding> run_two(const std::string& path_a,
                             const std::string& text_a,
                             const std::string& path_b,
                             const std::string& text_b) {
  Linter linter;
  linter.lint_source(path_a, text_a);
  linter.lint_source(path_b, text_b);
  linter.finalize();
  return linter.findings();
}

TEST(LintLayerViolation, UpwardIncludeIsFlagged) {
  const auto fs = run_two("src/transport/fixture.hpp",
                          "#pragma once\n#include \"gcs/view.hpp\"\n",
                          "src/gcs/view.hpp", "#pragma once\n");
  ASSERT_EQ(count_rule(fs, "layer-violation"), 1);
  const auto it = std::find_if(fs.begin(), fs.end(), [](const Finding& f) {
    return f.rule == "layer-violation";
  });
  ASSERT_NE(it, fs.end());
  EXPECT_EQ(it->file, "src/transport/fixture.hpp");
  EXPECT_EQ(it->line, 2);
  EXPECT_NE(it->message.find("strictly downward"), std::string::npos);
}

TEST(LintLayerViolation, DownwardIncludePasses) {
  const auto fs = run_two("src/gcs/fixture.hpp",
                          "#pragma once\n#include \"transport/frames.hpp\"\n",
                          "src/transport/frames.hpp", "#pragma once\n");
  EXPECT_TRUE(fs.empty());
}

TEST(LintLayerViolation, SrcMustNotIncludeHarness) {
  const auto fs = run_two("src/util/fixture.hpp",
                          "#pragma once\n#include \"tools/helper.hpp\"\n",
                          "tools/helper.hpp", "#pragma once\n");
  ASSERT_EQ(count_rule(fs, "layer-violation"), 1);
}

TEST(LintLayerViolation, PragmaSuppresses) {
  const auto fs = run_two(
      "src/transport/fixture.hpp",
      "#pragma once\n"
      "// vsgc-lint: allow(layer-violation) fixture: transitional edge\n"
      "#include \"gcs/view.hpp\"\n",
      "src/gcs/view.hpp", "#pragma once\n");
  EXPECT_EQ(count_rule(fs, "layer-violation", /*suppressed=*/true), 1);
  EXPECT_EQ(count_rule(fs, "layer-violation", /*suppressed=*/false), 0);
}

// --- include-cycle ----------------------------------------------------------

TEST(LintIncludeCycle, MutualIncludeIsFlagged) {
  const auto fs = run_two("src/util/a.hpp",
                          "#pragma once\n#include \"util/b.hpp\"\n",
                          "src/util/b.hpp",
                          "#pragma once\n#include \"util/a.hpp\"\n");
  ASSERT_EQ(count_rule(fs, "include-cycle"), 1);
  const auto it = std::find_if(fs.begin(), fs.end(), [](const Finding& f) {
    return f.rule == "include-cycle";
  });
  ASSERT_NE(it, fs.end());
  EXPECT_EQ(it->file, "src/util/a.hpp");
  EXPECT_NE(
      it->message.find(
          "src/util/a.hpp -> src/util/b.hpp -> src/util/a.hpp"),
      std::string::npos);
}

TEST(LintIncludeCycle, AcyclicChainPasses) {
  Linter linter;
  linter.lint_source("src/util/a.hpp",
                     "#pragma once\n#include \"util/b.hpp\"\n");
  linter.lint_source("src/util/b.hpp",
                     "#pragma once\n#include \"util/c.hpp\"\n");
  linter.lint_source("src/util/c.hpp", "#pragma once\n");
  linter.finalize();
  EXPECT_TRUE(linter.findings().empty());
}

TEST(LintIncludeCycle, PragmaSuppresses) {
  const auto fs = run_two(
      "src/util/a.hpp",
      "#pragma once\n"
      "// vsgc-lint: allow(include-cycle) fixture: being untangled\n"
      "#include \"util/b.hpp\"\n",
      "src/util/b.hpp", "#pragma once\n#include \"util/a.hpp\"\n");
  EXPECT_EQ(count_rule(fs, "include-cycle", /*suppressed=*/true), 1);
  EXPECT_EQ(count_rule(fs, "include-cycle", /*suppressed=*/false), 0);
}

// --- sim-purity -------------------------------------------------------------

TEST(LintSimPurity, UnledgeredSimIncludeIsFlagged) {
  const auto fs = run_one("src/gcs/fixture.hpp",
                          "#pragma once\n#include \"sim/simulator.hpp\"\n");
  ASSERT_EQ(count_rule(fs, "sim-purity"), 1);
  const auto it = std::find_if(fs.begin(), fs.end(), [](const Finding& f) {
    return f.rule == "sim-purity";
  });
  ASSERT_NE(it, fs.end());
  EXPECT_EQ(it->line, 2);
  EXPECT_NE(it->message.find("tools/sim_purity_ledger.txt"),
            std::string::npos);
}

TEST(LintSimPurity, UnledgeredSimSymbolIsFlagged) {
  const auto fs = run_one("src/transport/fixture.hpp",
                          "#pragma once\nTimerHandle retransmit_timer{};\n");
  ASSERT_EQ(count_rule(fs, "sim-purity"), 1);
}

TEST(LintSimPurity, TimeSurfaceIsExempt) {
  // sim/time.hpp is the sanctioned sim surface (Time/Duration/TimerHandle
  // value types): including it from protocol code is the *goal* of the
  // ratchet, never a finding.
  const auto fs = run_one("src/gcs/fixture.hpp",
                          "#pragma once\n#include \"sim/time.hpp\"\n");
  EXPECT_TRUE(fs.empty());
}

TEST(LintSimPurity, OnlyCallShapedScheduleIsFlagged) {
  const auto fs = run_one("src/membership/fixture.cpp",
                          "int schedule = 3;\nint x = schedule + 1;\n");
  EXPECT_EQ(count_rule(fs, "sim-purity"), 0);
  const auto fs2 =
      run_one("src/membership/fixture.cpp", "void f() { schedule(0); }\n");
  EXPECT_EQ(count_rule(fs2, "sim-purity"), 1);
}

TEST(LintSimPurity, OutsideScopePasses) {
  const auto fs = run_one("src/app/fixture.hpp",
                          "#pragma once\n#include \"sim/simulator.hpp\"\n");
  EXPECT_EQ(count_rule(fs, "sim-purity"), 0);
}

TEST(LintSimPurity, LedgeredEntrySuppressesWithRatchetJustification) {
  Linter linter;
  linter.set_sim_ledger("tools/sim_purity_ledger.txt",
                        "# comment line\n"
                        "src/gcs/fixture.hpp include sim/simulator.hpp\n");
  linter.lint_source("src/gcs/fixture.hpp",
                     "#pragma once\n#include \"sim/simulator.hpp\"\n");
  linter.finalize();
  const auto fs = linter.findings();
  EXPECT_EQ(count_rule(fs, "sim-purity", /*suppressed=*/true), 1);
  EXPECT_EQ(count_rule(fs, "sim-purity", /*suppressed=*/false), 0);
  const auto it = std::find_if(fs.begin(), fs.end(), [](const Finding& f) {
    return f.rule == "sim-purity";
  });
  ASSERT_NE(it, fs.end());
  EXPECT_NE(it->justification.find("ratchet"), std::string::npos);
}

TEST(LintSimPurity, StaleLedgerEntryIsFlaggedAtTheLedger) {
  Linter linter;
  linter.set_sim_ledger("tools/sim_purity_ledger.txt",
                        "src/gcs/gone.hpp symbol Simulator\n");
  linter.lint_source("src/gcs/fixture.hpp", "#pragma once\n");
  linter.finalize();
  const auto fs = linter.findings();
  ASSERT_EQ(count_rule(fs, "sim-purity", /*suppressed=*/false), 1);
  const auto it = std::find_if(fs.begin(), fs.end(), [](const Finding& f) {
    return f.rule == "sim-purity";
  });
  ASSERT_NE(it, fs.end());
  EXPECT_EQ(it->file, "tools/sim_purity_ledger.txt");
  EXPECT_EQ(it->line, 1);
  EXPECT_NE(it->message.find("stale"), std::string::npos);
}

TEST(LintSimPurity, MalformedLedgerLineIsFlagged) {
  Linter linter;
  linter.set_sim_ledger("tools/sim_purity_ledger.txt",
                        "src/gcs/fixture.hpp frobnicate\n");
  linter.lint_source("src/gcs/fixture.hpp", "#pragma once\n");
  linter.finalize();
  const auto fs = linter.findings();
  ASSERT_EQ(count_rule(fs, "sim-purity", /*suppressed=*/false), 1);
  EXPECT_NE(fs[0].message.find("malformed"), std::string::npos);
}

// --- codec-symmetry ---------------------------------------------------------

TEST(LintCodecSymmetry, UnencodedFieldIsFlagged) {
  const auto fs = run_one("src/gcs/messages.hpp", R"lint(
#pragma once
struct Ping {
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  void encode(Encoder& enc) const { enc.put_u32(a); }
  static Ping decode(Decoder& dec) {
    Ping p;
    p.a = dec.get_u32();
    p.b = dec.get_u32();
    return p;
  }
};
)lint");
  ASSERT_EQ(count_rule(fs, "codec-symmetry"), 1);
  const auto it = std::find_if(fs.begin(), fs.end(), [](const Finding& f) {
    return f.rule == "codec-symmetry";
  });
  ASSERT_NE(it, fs.end());
  EXPECT_EQ(it->line, 5);  // anchored at the declaration of 'b'
  EXPECT_NE(it->message.find("'b'"), std::string::npos);
  EXPECT_NE(it->message.find("never encoded"), std::string::npos);
}

TEST(LintCodecSymmetry, DecodeOrderSwapIsFlagged) {
  const auto fs = run_one("src/membership/wire.hpp", R"lint(
#pragma once
struct Ping {
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  void encode(Encoder& enc) const { enc.put_u32(a); enc.put_u32(b); }
  static Ping decode(Decoder& dec) {
    Ping p;
    p.b = dec.get_u32();
    p.a = dec.get_u32();
    return p;
  }
};
)lint");
  ASSERT_EQ(count_rule(fs, "codec-symmetry"), 1);
  const auto it = std::find_if(fs.begin(), fs.end(), [](const Finding& f) {
    return f.rule == "codec-symmetry";
  });
  ASSERT_NE(it, fs.end());
  EXPECT_NE(it->message.find("decode order differs"), std::string::npos);
}

TEST(LintCodecSymmetry, OneSidedCodecIsFlagged) {
  const auto fs = run_one("src/gcs/messages.hpp", R"lint(
#pragma once
struct Ping {
  std::uint32_t a = 0;
  void encode(Encoder& enc) const { enc.put_u32(a); }
};
)lint");
  ASSERT_EQ(count_rule(fs, "codec-symmetry"), 1);
  EXPECT_NE(fs[0].message.find("encode() but no decode()"),
            std::string::npos);
}

TEST(LintCodecSymmetry, SymmetricCodecPasses) {
  const auto fs = run_one("src/gcs/messages.hpp", R"lint(
#pragma once
struct Ping {
  std::uint32_t a = 0;
  std::map<int, int> cut{};
  void encode(Encoder& enc) const {
    enc.put_u32(a);
    enc.put_u32(cut.size());
    for (const auto& [k, v] : cut) enc.put_u32(v);
  }
  static Ping decode(Decoder& dec) {
    Ping p;
    p.a = dec.get_u32();
    const std::uint32_t n = dec.get_u32();
    for (std::uint32_t i = 0; i < n; ++i) p.cut[i] = dec.get_u32();
    return p;
  }
};
)lint");
  EXPECT_EQ(count_rule(fs, "codec-symmetry"), 0);
}

TEST(LintCodecSymmetry, PositionalAggregateReturnDecodePasses) {
  const auto fs = run_one("src/gcs/messages.hpp", R"lint(
#pragma once
struct Ping {
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  void encode(Encoder& enc) const { enc.put_u32(a); enc.put_u32(b); }
  static Ping decode(Decoder& dec) {
    return Ping{dec.get_u32(), dec.get_u32()};
  }
};
)lint");
  EXPECT_EQ(count_rule(fs, "codec-symmetry"), 0);
}

TEST(LintCodecSymmetry, NonWireHeadersAreOutOfScope) {
  const auto fs = run_one("src/gcs/other.hpp", R"lint(
#pragma once
struct Scratch {
  int a = 0;
  void encode(Encoder& enc) const {}
};
)lint");
  EXPECT_EQ(count_rule(fs, "codec-symmetry"), 0);
}

TEST(LintCodecSymmetry, PragmaSuppresses) {
  const auto fs = run_one("src/gcs/messages.hpp", R"lint(
#pragma once
struct Ping {
  std::uint32_t a = 0;
  // vsgc-lint: allow(codec-symmetry) fixture: b is derived at decode time
  std::uint32_t b = 0;
  void encode(Encoder& enc) const { enc.put_u32(a); }
  static Ping decode(Decoder& dec) {
    Ping p;
    p.a = dec.get_u32();
    p.b = dec.get_u32();
    return p;
  }
};
)lint");
  EXPECT_EQ(count_rule(fs, "codec-symmetry", /*suppressed=*/true), 1);
  EXPECT_EQ(count_rule(fs, "codec-symmetry", /*suppressed=*/false), 0);
}

// --- deps artifact ----------------------------------------------------------

TEST(LintDeps, ArtifactHasSchemaFieldsAndDotHeader) {
  Linter linter;
  linter.lint_source("src/gcs/fixture.hpp",
                     "#pragma once\n#include \"transport/frames.hpp\"\n");
  linter.lint_source("src/transport/frames.hpp", "#pragma once\n");
  linter.finalize();

  std::string error;
  const obs::JsonValue doc =
      obs::JsonValue::parse(linter.deps_json(".").dump_pretty(), &error);
  ASSERT_TRUE(error.empty()) << error;
  EXPECT_EQ(doc.find("tool")->as_string(), "vsgc_deps");
  EXPECT_EQ(doc.find("schema_version")->as_int(), 1);
  EXPECT_EQ(doc.find("files")->as_int(), 2);
  EXPECT_EQ(doc.find("internal_edges")->as_int(), 1);
  EXPECT_EQ(doc.find("cycles")->as_int(), 0);
  EXPECT_EQ(doc.find("layer_violations")->as_int(), 0);
  const obs::JsonValue* modules = doc.find("modules");
  ASSERT_TRUE(modules != nullptr && modules->is_array());
  EXPECT_EQ(modules->size(), 2u);

  const std::string dot = linter.deps_dot();
  EXPECT_NE(dot.find("digraph vsgc_modules"), std::string::npos);
  EXPECT_NE(dot.find("\"gcs\" -> \"transport\""), std::string::npos);
}

// --- artifact schema --------------------------------------------------------

TEST(LintJson, ArtifactHasSchemaFieldsAndRoundTrips) {
  Linter linter;
  linter.lint_source("src/sim/fixture.cpp",
                     "int f() { return std::rand(); }\n");
  linter.finalize();
  const std::string text = linter.to_json(".").dump_pretty();

  std::string error;
  const obs::JsonValue doc = obs::JsonValue::parse(text, &error);
  ASSERT_TRUE(error.empty()) << error;
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.find("tool")->as_string(), "vsgc_lint");
  EXPECT_EQ(doc.find("schema_version")->as_int(), 1);
  EXPECT_EQ(doc.find("files_scanned")->as_int(), 1);
  EXPECT_EQ(doc.find("unsuppressed")->as_int(), 1);
  EXPECT_EQ(doc.find("suppressed")->as_int(), 0);
  const obs::JsonValue* findings = doc.find("findings");
  ASSERT_TRUE(findings != nullptr && findings->is_array());
  ASSERT_EQ(findings->size(), 1u);
  const obs::JsonValue& row = findings->at(0);
  EXPECT_EQ(row.find("file")->as_string(), "src/sim/fixture.cpp");
  EXPECT_EQ(row.find("line")->as_int(), 1);
  EXPECT_EQ(row.find("rule")->as_string(), "banned-random");
  EXPECT_FALSE(row.find("suppressed")->as_bool());
}

// Deterministic output: two identical runs produce byte-identical artifacts
// (the property the CI JSON diff gate relies on).
TEST(LintJson, ArtifactIsByteDeterministic) {
  auto render = [] {
    Linter linter;
    linter.lint_source("src/sim/fixture.cpp",
                       "int a = std::rand();\nint b = time(nullptr);\n");
    linter.finalize();
    return linter.to_json(".").dump_pretty();
  };
  EXPECT_EQ(render(), render());
}

}  // namespace
}  // namespace vsgc::lint
