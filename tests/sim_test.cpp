// Unit tests for the discrete-event simulation kernel.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <vector>

#include "sim/simulator.hpp"

namespace vsgc::sim {
namespace {

TEST(Simulator, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(30, [&] { order.push_back(3); });
  sim.schedule(10, [&] { order.push_back(1); });
  sim.schedule(20, [&] { order.push_back(2); });
  sim.run_to_quiescence();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
}

TEST(Simulator, EqualTimestampsFireInInsertionOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule(5, [&order, i] { order.push_back(i); });
  }
  sim.run_to_quiescence();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.schedule(10, [&] { ++fired; });
  sim.schedule(100, [&] { ++fired; });
  sim.run_until(50);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 50);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run_until(100);
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  int fired = 0;
  TimerHandle h = sim.schedule(10, [&] { ++fired; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  sim.run_to_quiescence();
  EXPECT_EQ(fired, 0);
}

TEST(Simulator, CancelAfterFireIsNoop) {
  Simulator sim;
  int fired = 0;
  TimerHandle h = sim.schedule(1, [&] { ++fired; });
  sim.run_to_quiescence();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(h.pending());
  h.cancel();  // must not crash
  // A fired event is gone, not cancelled: re-running changes nothing and the
  // cancel after the fact must not show up in the kernel stats.
  sim.run_to_quiescence();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.stats().events_cancelled, 0u);
}

TEST(Simulator, DoubleCancelCountsOnce) {
  Simulator sim;
  int fired = 0;
  TimerHandle h = sim.schedule(10, [&] { ++fired; });
  h.cancel();
  EXPECT_FALSE(h.pending());
  h.cancel();  // idempotent: safe and no double accounting
  EXPECT_FALSE(h.pending());
  sim.run_to_quiescence();
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(sim.stats().events_cancelled, 1u);
}

TEST(Simulator, PendingSurvivesCapTrips) {
  Simulator sim;
  int fired = 0;
  for (int i = 0; i < 3; ++i) sim.schedule(i + 1, [&] { ++fired; });
  TimerHandle h = sim.schedule(100, [&] { ++fired; });
  // The cap cuts execution off before h's event: it must stay pending and
  // still be cancellable across the trip.
  const QuiescenceResult capped = sim.run_to_quiescence(/*max_events=*/3);
  EXPECT_TRUE(capped.capped);
  EXPECT_EQ(fired, 3);
  EXPECT_TRUE(h.pending()) << "unexecuted events survive a cap trip";
  h.cancel();
  EXPECT_FALSE(h.pending());
  sim.run_to_quiescence();
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(sim.stats().events_cancelled, 1u);
}

TEST(Simulator, NestedSchedulingFromHandlers) {
  Simulator sim;
  std::vector<Time> at;
  sim.schedule(10, [&] {
    at.push_back(sim.now());
    sim.schedule(5, [&] { at.push_back(sim.now()); });
  });
  sim.run_to_quiescence();
  EXPECT_EQ(at, (std::vector<Time>{10, 15}));
}

TEST(Simulator, ZeroDelayRunsImmediatelyButAsync) {
  Simulator sim;
  bool fired = false;
  sim.schedule(0, [&] { fired = true; });
  EXPECT_FALSE(fired);
  sim.run_to_quiescence();
  EXPECT_TRUE(fired);
}

TEST(Simulator, QuiescenceDetection) {
  Simulator sim;
  EXPECT_TRUE(sim.quiescent());
  sim.schedule(1, [] {});
  EXPECT_FALSE(sim.quiescent());
  sim.run_to_quiescence();
  EXPECT_TRUE(sim.quiescent());
}

TEST(Simulator, RunawayCapBoundsExecution) {
  Simulator sim;
  std::function<void()> loop = [&] { sim.schedule(1, loop); };
  sim.schedule(1, loop);
  const QuiescenceResult result = sim.run_to_quiescence(/*max_events=*/1000);
  EXPECT_EQ(result.executed, 1000u) << "the cap is exact";
  EXPECT_TRUE(result.capped) << "a cap trip must be distinguishable";
  EXPECT_FALSE(sim.quiescent());
  // Implicit conversion keeps count-style call sites working.
  const std::size_t as_count = sim.run_to_quiescence(/*max_events=*/1000);
  EXPECT_GT(as_count, 0u);
}

TEST(Simulator, CapBoundaryIsExact) {
  // Exactly max_events live events: drains clean, no cap trip.
  {
    Simulator sim;
    int fired = 0;
    for (int i = 0; i < 5; ++i) sim.schedule(i + 1, [&] { ++fired; });
    const QuiescenceResult result = sim.run_to_quiescence(/*max_events=*/5);
    EXPECT_EQ(result.executed, 5u);
    EXPECT_FALSE(result.capped) << "hitting the cap exactly is not a trip";
    EXPECT_EQ(fired, 5);
    EXPECT_TRUE(sim.quiescent());
  }
  // One event over: exactly max_events execute and the cap trips.
  {
    Simulator sim;
    int fired = 0;
    for (int i = 0; i < 6; ++i) sim.schedule(i + 1, [&] { ++fired; });
    const QuiescenceResult result = sim.run_to_quiescence(/*max_events=*/5);
    EXPECT_EQ(result.executed, 5u) << "never executes past the cap";
    EXPECT_TRUE(result.capped);
    EXPECT_EQ(fired, 5);
    EXPECT_EQ(sim.pending_events(), 1u) << "the extra event stays queued";
  }
}

TEST(Simulator, CancelledEventsDoNotConsumeTheCap) {
  Simulator sim;
  int fired = 0;
  std::vector<TimerHandle> cancelled;
  for (int i = 0; i < 10; ++i) {
    cancelled.push_back(sim.schedule(i + 1, [&] { ++fired; }));
  }
  for (TimerHandle& h : cancelled) h.cancel();
  for (int i = 0; i < 3; ++i) sim.schedule(100 + i, [&] { ++fired; });
  const QuiescenceResult result = sim.run_to_quiescence(/*max_events=*/3);
  EXPECT_EQ(result.executed, 3u);
  EXPECT_FALSE(result.capped)
      << "discarding cancelled events must not trip the cap";
  EXPECT_EQ(fired, 3);
}

TEST(Simulator, CleanDrainIsNotCapped) {
  Simulator sim;
  int fired = 0;
  sim.schedule(1, [&] { ++fired; });
  sim.schedule(2, [&] { ++fired; });
  const QuiescenceResult result = sim.run_to_quiescence();
  EXPECT_EQ(result.executed, 2u);
  EXPECT_FALSE(result.capped);
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, StatsCountSchedulingAndExecution) {
  Simulator sim;
  sim.schedule(1, [] {});
  sim.schedule(2, [] {});
  TimerHandle h = sim.schedule(3, [] {});
  h.cancel();
  EXPECT_EQ(sim.stats().events_scheduled, 3u);
  EXPECT_EQ(sim.stats().peak_queue_depth, 3u);
  sim.run_to_quiescence();
  EXPECT_EQ(sim.stats().events_executed, 2u);
  EXPECT_EQ(sim.stats().events_cancelled, 1u);
}

TEST(Simulator, DeadlineAdvancesTimeWithoutEvents) {
  Simulator sim;
  sim.run_until(12345);
  EXPECT_EQ(sim.now(), 12345);
}

// --- TimerHandle generation-reuse edges (slab arena) -----------------------
// The arena reuses event slots aggressively; a handle names (slot,
// generation), so a handle from a fired/cancelled event must stay inert even
// after its slot has been recycled for an unrelated event.

TEST(Simulator, StaleHandleDoesNotCancelSlotReuse) {
  Simulator sim;
  int first = 0, second = 0;
  TimerHandle stale = sim.schedule(1, [&] { ++first; });
  sim.run_to_quiescence();  // fires; the slot returns to the free list
  TimerHandle fresh = sim.schedule(1, [&] { ++second; });
  stale.cancel();  // stale generation: must not touch the reused slot
  EXPECT_FALSE(stale.pending());
  EXPECT_TRUE(fresh.pending());
  sim.run_to_quiescence();
  EXPECT_EQ(first, 1);
  EXPECT_EQ(second, 1);
}

TEST(Simulator, StaleHandleStaysInertAcrossManyReuses) {
  Simulator sim;
  int fired = 0;
  TimerHandle stale = sim.schedule(1, [&] { ++fired; });
  sim.run_to_quiescence();
  for (int i = 0; i < 100; ++i) {
    TimerHandle h = sim.schedule(1, [&] { ++fired; });
    stale.cancel();
    EXPECT_FALSE(stale.pending());
    EXPECT_TRUE(h.pending());
    sim.run_to_quiescence();
    stale = h;  // last-fired handle becomes the next round's stale handle
  }
  EXPECT_EQ(fired, 101);
}

TEST(Simulator, CancelOwnHandleInsideHandlerIsNoop) {
  Simulator sim;
  int fired = 0;
  TimerHandle h;
  h = sim.schedule(1, [&] {
    ++fired;
    EXPECT_FALSE(h.pending());  // already executing: no longer pending
    h.cancel();                 // self-cancel mid-execution must be inert
  });
  sim.run_to_quiescence();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.stats().events_cancelled, 0u);
}

TEST(Simulator, RearmInsideHandlerYieldsFreshHandle) {
  Simulator sim;
  int fired = 0;
  TimerHandle h;
  h = sim.schedule(1, [&] {
    ++fired;
    h = sim.schedule(1, [&] { ++fired; });
    EXPECT_TRUE(h.pending());
  });
  sim.run_to_quiescence();
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(h.pending());
}

TEST(Simulator, OversizedClosuresExecuteAndCancelCleanly) {
  // Captures larger than the 64-byte inline slot take the heap-cell
  // fallback; both the execute and the cancel path must release it.
  Simulator sim;
  std::array<std::uint64_t, 16> big{};  // 128-byte capture
  big[15] = 7;
  int sum = 0;
  sim.schedule(1, [big, &sum] { sum += static_cast<int>(big[15]); });
  TimerHandle h = sim.schedule(2, [big, &sum] { sum += 100; });
  h.cancel();
  sim.run_to_quiescence();
  EXPECT_EQ(sum, 7);
  EXPECT_EQ(sim.stats().events_cancelled, 1u);
}

TEST(Simulator, ManyDistinctTimestampsDrainInOrder) {
  // Exercises timestamp-bucket creation/retirement and the open-addressed
  // time map's growth and deletion under a permuted insertion order.
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 1000; ++i) {
    const int t = (i * 787) % 1000;  // 787 coprime to 1000: a permutation
    sim.schedule(t + 1, [&order, t] { order.push_back(t); });
  }
  sim.run_to_quiescence();
  ASSERT_EQ(order.size(), 1000u);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

}  // namespace
}  // namespace vsgc::sim
