// Oracle-driven tests of the GCS end-point stack (Figures 9-11): within-view
// FIFO delivery, virtual synchrony cuts, transitional sets, self delivery,
// blocking, and message forwarding — all with the full checker suite attached.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "helpers/oracle_world.hpp"
#include "spec/liveness_checker.hpp"

namespace vsgc {
namespace {

using testing::OracleWorld;

TEST(WvRfifo, MessagesDeliveredInSendingView) {
  OracleWorld w(3);
  std::vector<std::vector<std::string>> rx(3);
  for (int i = 0; i < 3; ++i) {
    w.client(i).on_deliver([&rx, i](ProcessId from, const gcs::AppMsg& m) {
      rx[static_cast<std::size_t>(i)].push_back(to_string(from) + ":" +
                                                m.payload);
    });
  }
  w.change_view(w.all());
  w.client(0).send("a1");
  w.client(1).send("b1");
  w.client(0).send("a2");
  w.settle();
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(rx[static_cast<std::size_t>(i)].size(), 3u) << "endpoint " << i;
  }
  w.checkers.finalize();
}

TEST(WvRfifo, PerSenderFifoOrder) {
  OracleWorld w(2);
  std::vector<std::string> rx;
  w.client(1).on_deliver(
      [&rx](ProcessId, const gcs::AppMsg& m) { rx.push_back(m.payload); });
  w.change_view(w.all());
  for (int i = 0; i < 20; ++i) w.client(0).send("m" + std::to_string(i));
  w.settle();
  ASSERT_EQ(rx.size(), 20u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(rx[static_cast<std::size_t>(i)], "m" + std::to_string(i));
  }
}

TEST(WvRfifo, SenderSelfDeliversOwnMessages) {
  OracleWorld w(2);
  int self_rx = 0;
  w.client(0).on_deliver([&](ProcessId from, const gcs::AppMsg&) {
    if (from == w.pid(0)) ++self_rx;
  });
  w.change_view(w.all());
  w.client(0).send("x");
  w.client(0).send("y");
  w.settle();
  EXPECT_EQ(self_rx, 2);
}

TEST(WvRfifo, InitialSingletonViewAllowsLocalSends) {
  OracleWorld w(1);
  std::vector<std::string> rx;
  w.client(0).on_deliver(
      [&rx](ProcessId, const gcs::AppMsg& m) { rx.push_back(m.payload); });
  // No oracle activity at all: the end-point lives in its initial view v_p.
  w.client(0).send("solo");
  w.settle();
  ASSERT_EQ(rx.size(), 1u);
  EXPECT_EQ(rx[0], "solo");
  w.checkers.finalize();
}

TEST(VirtualSynchrony, ViewDeliveredWithFullTransitionalSet) {
  OracleWorld w(3);
  std::map<int, std::set<ProcessId>> t_seen;
  for (int i = 0; i < 3; ++i) {
    w.client(i).on_view([&t_seen, i](const View&,
                                     const std::set<ProcessId>& t) {
      t_seen[i] = t;
    });
  }
  const View v1 = w.change_view(w.all());
  // First view: everyone moves from different (initial singleton) views, so
  // each transitional set is just the process itself.
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(t_seen[i], std::set<ProcessId>{w.pid(i)}) << "endpoint " << i;
  }
  // Second view: all three move together.
  w.change_view(w.all());
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(t_seen[i], w.all()) << "endpoint " << i;
  }
  w.checkers.finalize();
}

TEST(VirtualSynchrony, AgreedCutUnderMessagesInFlight) {
  OracleWorld w(3);
  std::vector<int> count(3, 0);
  for (int i = 0; i < 3; ++i) {
    w.client(i).on_view([&w, i](const View&, const std::set<ProcessId>&) {});
    w.client(i).on_deliver(
        [&count, i](ProcessId, const gcs::AppMsg&) { ++count[static_cast<std::size_t>(i)]; });
  }
  w.change_view(w.all());
  // Send a burst and immediately reconfigure while messages are in flight.
  for (int i = 0; i < 10; ++i) {
    w.client(0).send("a" + std::to_string(i));
    w.client(1).send("b" + std::to_string(i));
  }
  w.oracle.start_change(w.all());
  w.run();
  w.oracle.deliver_view(w.all());
  w.settle();
  // VS checker verified the cut; Self Delivery + liveness mean everyone got
  // everything here (all processes moved together).
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(count[static_cast<std::size_t>(i)], 20) << "endpoint " << i;
  }
  w.checkers.finalize();
}

TEST(VirtualSynchrony, PartitionYieldsDisjointViewsAndCuts) {
  OracleWorld w(4);
  w.change_view(w.all());
  for (int i = 0; i < 4; ++i) w.client(i).send("pre" + std::to_string(i));
  w.run();
  // The oracle partitions the group: {p1,p2} and {p3,p4}.
  w.network->partition(
      {{net::node_of(w.pid(0)), net::node_of(w.pid(1))},
       {net::node_of(w.pid(2)), net::node_of(w.pid(3))}});
  w.oracle.start_change_to(w.pid(0), w.pids({0, 1}));
  w.oracle.start_change_to(w.pid(1), w.pids({0, 1}));
  w.oracle.start_change_to(w.pid(2), w.pids({2, 3}));
  w.oracle.start_change_to(w.pid(3), w.pids({2, 3}));
  w.run();
  const View va = w.oracle.make_view(w.pids({0, 1}));
  w.oracle.deliver_view_to(w.pid(0), va);
  w.oracle.deliver_view_to(w.pid(1), va);
  const View vb = w.oracle.make_view(w.pids({2, 3}));
  w.oracle.deliver_view_to(w.pid(2), vb);
  w.oracle.deliver_view_to(w.pid(3), vb);
  w.run();
  EXPECT_EQ(w.ep(0).current_view().members, w.pids({0, 1}));
  EXPECT_EQ(w.ep(2).current_view().members, w.pids({2, 3}));
  w.checkers.finalize();
}

TEST(SelfDelivery, OwnMessagesDeliveredBeforeViewChange) {
  OracleWorld w(3);
  std::vector<int> own(3, 0);
  std::vector<bool> viewed(3, false);
  for (int i = 0; i < 3; ++i) {
    w.client(i).on_deliver([&own, &w, i](ProcessId from, const gcs::AppMsg&) {
      if (from == w.pid(i)) ++own[static_cast<std::size_t>(i)];
    });
  }
  w.change_view(w.all());
  for (int i = 0; i < 3; ++i) {
    for (int k = 0; k < 5; ++k) {
      w.client(i).send("m" + std::to_string(k));
    }
  }
  // Reconfigure immediately; SELF checker enforces the property, this just
  // confirms the counts.
  w.change_view(w.all());
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(own[static_cast<std::size_t>(i)], 5) << "endpoint " << i;
  }
  w.checkers.finalize();
}

TEST(Blocking, ClientBlockedDuringReconfiguration) {
  OracleWorld w(2);
  w.change_view(w.all());
  EXPECT_FALSE(w.client(0).blocked());
  w.oracle.start_change(w.all());
  // BlockingClient answers block_ok immediately, then reports blocked.
  EXPECT_TRUE(w.client(0).blocked());
  EXPECT_EQ(w.ep(0).block_status(), gcs::BlockStatus::kBlocked);
  // Sends while blocked are queued, not lost.
  w.client(0).send("queued");
  EXPECT_EQ(w.client(0).pending(), 1u);
  w.run();
  w.oracle.deliver_view(w.all());
  w.settle();
  EXPECT_FALSE(w.client(0).blocked());
  EXPECT_EQ(w.client(0).pending(), 0u);
  w.checkers.finalize();
}

TEST(Blocking, SyncMessageWithheldUntilBlockOk) {
  OracleWorld w(2);
  w.change_view(w.all());
  // Replace the client with one that delays block_ok.
  class SlowClient : public gcs::Client {
   public:
    explicit SlowClient(gcs::GcsEndpoint& ep) : ep_(ep) { ep.set_client(*this); }
    void deliver(ProcessId, const gcs::AppMsg&) override {}
    void view(const View&, const std::set<ProcessId>&) override {}
    void block() override { block_requested = true; }
    void ok() { ep_.block_ok(); }
    bool block_requested = false;

   private:
    gcs::GcsEndpoint& ep_;
  } slow(w.ep(0));

  const auto baseline = w.ep(0).vs_stats().sync_msgs_sent;
  w.oracle.start_change(w.all());
  w.run();
  EXPECT_TRUE(slow.block_requested);
  EXPECT_EQ(w.ep(0).vs_stats().sync_msgs_sent, baseline)
      << "sync message must wait for block_ok";
  slow.ok();
  w.run();
  EXPECT_EQ(w.ep(0).vs_stats().sync_msgs_sent, baseline + 1);
}

TEST(ObsoleteViews, SupersededViewNeverDelivered) {
  OracleWorld w(2);
  w.change_view(w.all());
  const auto views_before = w.ep(0).stats().views_delivered;

  // View v1 arrives while its synchronization messages are still in flight,
  // and a NEW start_change supersedes it before the end-point can install
  // it. The paper's algorithm (precondition v.startId(p) = start_change.id)
  // must skip v1 entirely and deliver only the fresh view v2 — the Section 1
  // claim that no view reflecting out-of-date membership reaches the app.
  w.oracle.start_change(w.all());          // change 1 (no run: syncs in flight)
  w.oracle.deliver_view(w.all());          // v1, tagged with change-1 cids
  w.oracle.start_change(w.all());          // change 2 makes v1 obsolete
  w.run();
  EXPECT_EQ(w.ep(0).stats().views_delivered, views_before)
      << "obsolete view v1 must not be installed";
  w.oracle.deliver_view(w.all());          // v2, tagged with change-2 cids
  w.settle();
  EXPECT_EQ(w.ep(0).stats().views_delivered, views_before + 1)
      << "exactly one view (v2) delivered; v1 skipped";
  EXPECT_EQ(w.ep(0).current_view().members, w.all());
  w.checkers.finalize();
}

}  // namespace
}  // namespace vsgc
