// Tests for the client-server membership service against the MBRSHP spec
// (Figure 2): view formation, failure detection, partitions, merges, and the
// start_change protocol. A MbrshpChecker validates every notification each
// client receives.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "membership/interface.hpp"
#include "membership/membership_client.hpp"
#include "membership/membership_server.hpp"
#include "net/network.hpp"
#include "spec/events.hpp"
#include "spec/mbrshp_checker.hpp"
#include "util/rng.hpp"

namespace vsgc::membership {
namespace {

/// Minimal listener recording what the membership service tells a client,
/// and forwarding to the spec checker via a trace bus.
class RecordingListener : public Listener {
 public:
  RecordingListener(ProcessId self, spec::TraceBus& bus, sim::Simulator& sim)
      : self_(self), bus_(bus), sim_(sim) {}

  void on_start_change(StartChangeId cid,
                       const std::set<ProcessId>& set) override {
    start_changes.push_back({cid, set});
    bus_.emit(sim_.now(), spec::MbrStartChange{self_, cid, set});
  }

  void on_view(const View& v) override {
    views.push_back(v);
    bus_.emit(sim_.now(), spec::MbrView{self_, v});
  }

  std::vector<std::pair<StartChangeId, std::set<ProcessId>>> start_changes;
  std::vector<View> views;

 private:
  ProcessId self_;
  spec::TraceBus& bus_;
  sim::Simulator& sim_;
};

struct Harness {
  Harness(int num_servers, int num_clients, std::uint64_t seed = 1)
      : network(sim, Rng(seed)) {
    bus.subscribe(checker);
    std::set<ServerId> server_ids;
    for (int s = 0; s < num_servers; ++s) {
      server_ids.insert(ServerId{static_cast<std::uint32_t>(s)});
    }
    for (ServerId s : server_ids) {
      servers.push_back(
          std::make_unique<MembershipServer>(sim, network, s, server_ids));
    }
    for (int i = 0; i < num_clients; ++i) {
      const ProcessId p{static_cast<std::uint32_t>(i + 1)};
      const ServerId s{static_cast<std::uint32_t>(i % num_servers)};
      transports.push_back(std::make_unique<transport::CoRfifoTransport>(
          sim, network, net::node_of(p)));
      clients.push_back(
          std::make_unique<MembershipClient>(sim, *transports.back(), p, s));
      listeners.push_back(std::make_unique<RecordingListener>(p, bus, sim));
      clients.back()->add_listener(*listeners.back());
      auto* mc = clients.back().get();
      transports.back()->set_deliver_handler(
          [mc](net::NodeId from, const std::any& payload) {
            mc->handle(from, payload);
          });
      servers[s.value]->add_client(p, /*initially_alive=*/true);
    }
  }

  void start() {
    for (auto& s : servers) s->start();
    for (auto& c : clients) c->start();
  }

  void run(sim::Time d) { sim.run_until(sim.now() + d); }

  const View* last_view(int i) const {
    const auto& v = listeners[static_cast<std::size_t>(i)]->views;
    return v.empty() ? nullptr : &v.back();
  }

  sim::Simulator sim;
  net::Network network;
  spec::TraceBus bus;
  spec::MbrshpChecker checker;
  std::vector<std::unique_ptr<MembershipServer>> servers;
  std::vector<std::unique_ptr<transport::CoRfifoTransport>> transports;
  std::vector<std::unique_ptr<MembershipClient>> clients;
  std::vector<std::unique_ptr<RecordingListener>> listeners;
};

TEST(Membership, SingleServerFormsFullView) {
  Harness h(1, 3);
  h.start();
  h.run(2 * sim::kSecond);
  for (int i = 0; i < 3; ++i) {
    ASSERT_NE(h.last_view(i), nullptr) << "client " << i;
    EXPECT_EQ(h.last_view(i)->members.size(), 3u);
  }
  // All clients must receive the *identical* view (same startId map).
  EXPECT_EQ(*h.last_view(0), *h.last_view(1));
  EXPECT_EQ(*h.last_view(1), *h.last_view(2));
}

TEST(Membership, StartChangePrecedesEveryView) {
  Harness h(1, 2);
  h.start();
  h.run(2 * sim::kSecond);
  for (int i = 0; i < 2; ++i) {
    EXPECT_FALSE(h.listeners[static_cast<std::size_t>(i)]->start_changes.empty());
    // Checker already enforced ordering; sanity: cids in view match notices.
    const View* v = h.last_view(i);
    ASSERT_NE(v, nullptr);
    const auto& scs = h.listeners[static_cast<std::size_t>(i)]->start_changes;
    EXPECT_EQ(v->start_id_of(h.clients[static_cast<std::size_t>(i)]->self()),
              scs.back().first);
  }
}

TEST(Membership, TwoServersAgreeOnOneView) {
  Harness h(2, 4);
  h.start();
  h.run(3 * sim::kSecond);
  for (int i = 0; i < 4; ++i) {
    ASSERT_NE(h.last_view(i), nullptr) << "client " << i;
    EXPECT_EQ(h.last_view(i)->members.size(), 4u) << "client " << i;
  }
  EXPECT_EQ(*h.last_view(0), *h.last_view(1));
  EXPECT_EQ(*h.last_view(0), *h.last_view(2));
  EXPECT_EQ(*h.last_view(0), *h.last_view(3));
}

TEST(Membership, CrashedClientIsExcluded) {
  Harness h(1, 3);
  h.start();
  h.run(2 * sim::kSecond);
  // Client 2 dies: its heartbeats stop; the FD excludes it.
  h.clients[2]->crash();
  h.transports[2]->crash();
  h.run(3 * sim::kSecond);
  for (int i = 0; i < 2; ++i) {
    ASSERT_NE(h.last_view(i), nullptr);
    EXPECT_EQ(h.last_view(i)->members.size(), 2u) << "client " << i;
    EXPECT_FALSE(h.last_view(i)->contains(ProcessId{3}));
  }
}

TEST(Membership, RecoveredClientRejoins) {
  Harness h(1, 3);
  h.start();
  h.run(2 * sim::kSecond);
  h.clients[2]->crash();
  h.transports[2]->crash();
  h.run(3 * sim::kSecond);
  h.transports[2]->recover();
  h.clients[2]->recover();
  h.run(3 * sim::kSecond);
  for (int i = 0; i < 3; ++i) {
    ASSERT_NE(h.last_view(i), nullptr);
    EXPECT_EQ(h.last_view(i)->members.size(), 3u) << "client " << i;
  }
}

TEST(Membership, ServerPartitionFormsDisjointViews) {
  Harness h(2, 4);
  h.start();
  h.run(3 * sim::kSecond);
  // Partition: server 0 + its clients (1, 3) vs server 1 + its (2, 4).
  h.network.partition({{net::node_of(ServerId{0}), net::node_of(ProcessId{1}),
                        net::node_of(ProcessId{3})},
                       {net::node_of(ServerId{1}), net::node_of(ProcessId{2}),
                        net::node_of(ProcessId{4})}});
  h.run(4 * sim::kSecond);
  ASSERT_NE(h.last_view(0), nullptr);
  ASSERT_NE(h.last_view(1), nullptr);
  EXPECT_EQ(h.last_view(0)->members,
            (std::set<ProcessId>{ProcessId{1}, ProcessId{3}}));
  EXPECT_EQ(h.last_view(1)->members,
            (std::set<ProcessId>{ProcessId{2}, ProcessId{4}}));
  // Disjoint concurrent views must carry distinct identifiers.
  EXPECT_NE(h.last_view(0)->id, h.last_view(1)->id);
}

TEST(Membership, HealedPartitionMergesViews) {
  Harness h(2, 4);
  h.start();
  h.run(3 * sim::kSecond);
  h.network.partition({{net::node_of(ServerId{0}), net::node_of(ProcessId{1}),
                        net::node_of(ProcessId{3})},
                       {net::node_of(ServerId{1}), net::node_of(ProcessId{2}),
                        net::node_of(ProcessId{4})}});
  h.run(4 * sim::kSecond);
  h.network.heal();
  h.run(4 * sim::kSecond);
  for (int i = 0; i < 4; ++i) {
    ASSERT_NE(h.last_view(i), nullptr);
    EXPECT_EQ(h.last_view(i)->members.size(), 4u) << "client " << i;
  }
  EXPECT_EQ(*h.last_view(0), *h.last_view(1));
  EXPECT_EQ(*h.last_view(0), *h.last_view(3));
}

TEST(Membership, LateJoinerIsAdmitted) {
  Harness h(1, 3);
  // Client 3 (index 2) starts late.
  h.servers[0]->start();
  h.clients[0]->start();
  h.clients[1]->start();
  h.run(2 * sim::kSecond);
  ASSERT_NE(h.last_view(0), nullptr);
  EXPECT_EQ(h.last_view(0)->members.size(), 2u);
  h.clients[2]->start();
  h.run(3 * sim::kSecond);
  for (int i = 0; i < 3; ++i) {
    ASSERT_NE(h.last_view(i), nullptr);
    EXPECT_EQ(h.last_view(i)->members.size(), 3u) << "client " << i;
  }
}

TEST(Membership, ViewIdsStrictlyIncreasePerClient) {
  Harness h(1, 3);
  h.start();
  h.run(2 * sim::kSecond);
  h.clients[2]->crash();
  h.transports[2]->crash();
  h.run(3 * sim::kSecond);
  h.transports[2]->recover();
  h.clients[2]->recover();
  h.run(3 * sim::kSecond);
  for (int i = 0; i < 3; ++i) {
    const auto& views = h.listeners[static_cast<std::size_t>(i)]->views;
    for (std::size_t k = 1; k < views.size(); ++k) {
      EXPECT_LT(views[k - 1].id, views[k].id) << "client " << i;
    }
  }
}

}  // namespace
}  // namespace vsgc::membership
