// Tests for the two-round pre-agreement baseline: it must be a CORRECT
// virtual synchrony implementation (same checkers as the paper's algorithm),
// while exhibiting the behaviours the paper criticizes — an extra agreement
// round and delivery of obsolete views under cascading reconfigurations.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "app/blocking_client.hpp"
#include "baseline/two_round_endpoint.hpp"
#include "membership/oracle.hpp"
#include "net/network.hpp"
#include "spec/all_checkers.hpp"
#include "util/rng.hpp"

namespace vsgc {
namespace {

/// BlockingClient equivalent for the baseline end-point.
class BaselineClient : public gcs::Client {
 public:
  explicit BaselineClient(baseline::TwoRoundEndpoint& ep) : ep_(ep) {
    ep.set_client(*this);
  }

  void deliver(ProcessId from, const gcs::AppMsg& m) override {
    if (deliver_) deliver_(from, m);
  }
  void view(const View& v, const std::set<ProcessId>& t) override {
    views.push_back(v);
    if (view_) view_(v, t);
  }
  void block() override { ep_.block_ok(); }

  void on_deliver(std::function<void(ProcessId, const gcs::AppMsg&)> fn) {
    deliver_ = std::move(fn);
  }
  void on_view(
      std::function<void(const View&, const std::set<ProcessId>&)> fn) {
    view_ = std::move(fn);
  }

  std::vector<View> views;

 private:
  baseline::TwoRoundEndpoint& ep_;
  std::function<void(ProcessId, const gcs::AppMsg&)> deliver_;
  std::function<void(const View&, const std::set<ProcessId>&)> view_;
};

struct BaselineWorld {
  explicit BaselineWorld(int n, std::uint64_t seed = 1) {
    network = std::make_unique<net::Network>(sim, Rng(seed));
    trace.set_recording(true);
    checkers.attach(trace);
    for (int i = 0; i < n; ++i) {
      const ProcessId p{static_cast<std::uint32_t>(i + 1)};
      transports.push_back(std::make_unique<transport::CoRfifoTransport>(
          sim, *network, net::node_of(p)));
      endpoints.push_back(std::make_unique<baseline::TwoRoundEndpoint>(
          sim, *transports.back(), p, &trace));
      clients.push_back(std::make_unique<BaselineClient>(*endpoints.back()));
      auto* ep = endpoints.back().get();
      transports.back()->set_deliver_handler(
          [ep](net::NodeId from, const std::any& payload) {
            ep->on_co_rfifo_deliver(net::process_of(from), payload);
          });
      oracle.attach(p, *ep);
    }
  }

  ProcessId pid(int i) const {
    return ProcessId{static_cast<std::uint32_t>(i + 1)};
  }

  std::set<ProcessId> all() const {
    std::set<ProcessId> out;
    for (std::size_t i = 0; i < endpoints.size(); ++i) {
      out.insert(ProcessId{static_cast<std::uint32_t>(i + 1)});
    }
    return out;
  }

  void run(sim::Time d = 500 * sim::kMillisecond) {
    sim.run_until(sim.now() + d);
  }

  sim::Simulator sim;
  spec::TraceBus trace;
  spec::AllCheckers checkers;
  std::unique_ptr<net::Network> network;
  membership::OracleMembership oracle;
  std::vector<std::unique_ptr<transport::CoRfifoTransport>> transports;
  std::vector<std::unique_ptr<baseline::TwoRoundEndpoint>> endpoints;
  std::vector<std::unique_ptr<BaselineClient>> clients;
};

TEST(Baseline, InstallsViewsAndDeliversMessages) {
  BaselineWorld w(3);
  std::vector<int> rx(3, 0);
  for (int i = 0; i < 3; ++i) {
    w.clients[static_cast<std::size_t>(i)]->on_deliver(
        [&rx, i](ProcessId, const gcs::AppMsg&) { ++rx[static_cast<std::size_t>(i)]; });
  }
  w.oracle.start_change(w.all());
  w.run();
  w.oracle.deliver_view(w.all());
  w.run(2 * sim::kSecond);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(w.endpoints[static_cast<std::size_t>(i)]->current_view().members,
              w.all());
  }
  w.endpoints[0]->send("hello");
  w.run(2 * sim::kSecond);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(rx[static_cast<std::size_t>(i)], 1);
  w.checkers.finalize();
}

TEST(Baseline, SatisfiesVirtualSynchronyUnderChurn) {
  BaselineWorld w(3);
  w.oracle.start_change(w.all());
  w.run();
  w.oracle.deliver_view(w.all());
  w.run(2 * sim::kSecond);
  // Messages in flight across a reconfiguration; VS/SELF checkers validate.
  for (int k = 0; k < 10; ++k) {
    w.endpoints[0]->send("a");
    w.endpoints[1]->send("b");
  }
  w.oracle.start_change(w.all());
  w.run();
  w.oracle.deliver_view(w.all());
  w.run(2 * sim::kSecond);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(w.endpoints[static_cast<std::size_t>(i)]->stats().views_delivered,
              2u);
  }
  w.checkers.finalize();
}

TEST(Baseline, DeliversObsoleteViewsUnderCascadingChanges) {
  // Two membership views in quick succession: the baseline completes the
  // first round and delivers BOTH views; the paper's algorithm would skip
  // straight to the second (see ObsoleteViews.SupersededViewNeverDelivered).
  BaselineWorld w(3);
  w.oracle.start_change(w.all());
  w.run();
  w.oracle.deliver_view(w.all());
  w.run(2 * sim::kSecond);  // settle into the first view

  w.oracle.start_change(w.all());
  w.oracle.deliver_view(w.all());   // view A
  w.oracle.start_change(w.all());   // change known BEFORE A installs
  w.oracle.deliver_view(w.all());   // view B supersedes A immediately
  w.run(3 * sim::kSecond);

  for (int i = 0; i < 3; ++i) {
    // initial + A + B = 3 views delivered to the application; the paper's
    // algorithm under the identical schedule delivers only 2 (see
    // ObsoleteViews.SupersededViewNeverDelivered).
    EXPECT_EQ(w.clients[static_cast<std::size_t>(i)]->views.size(), 3u)
        << "baseline should deliver the obsolete view A as well";
    EXPECT_GE(w.endpoints[static_cast<std::size_t>(i)]
                  ->baseline_stats()
                  .obsolete_views_delivered,
              1u);
  }
  w.checkers.finalize();
}

TEST(Baseline, AbandonsViewWhoseParticipantVanished) {
  BaselineWorld w(3);
  w.oracle.start_change(w.all());
  w.run();
  w.oracle.deliver_view(w.all());
  w.run(2 * sim::kSecond);

  // p3 crashes; a view including it can never complete, and the next view
  // excludes it — the baseline must abandon the first and install the next.
  w.endpoints[2]->crash();
  w.transports[2]->crash();
  w.oracle.start_change_to(w.pid(0), w.all());
  w.oracle.start_change_to(w.pid(1), w.all());
  const View dead = w.oracle.make_view(w.all());
  w.oracle.deliver_view_to(w.pid(0), dead);
  w.oracle.deliver_view_to(w.pid(1), dead);
  w.run(2 * sim::kSecond);
  w.oracle.start_change_to(w.pid(0), {w.pid(0), w.pid(1)});
  w.oracle.start_change_to(w.pid(1), {w.pid(0), w.pid(1)});
  const View survivors = w.oracle.make_view({w.pid(0), w.pid(1)});
  w.oracle.deliver_view_to(w.pid(0), survivors);
  w.oracle.deliver_view_to(w.pid(1), survivors);
  w.run(3 * sim::kSecond);

  EXPECT_EQ(w.endpoints[0]->current_view().members,
            (std::set<ProcessId>{w.pid(0), w.pid(1)}));
  EXPECT_EQ(w.endpoints[1]->current_view().members,
            (std::set<ProcessId>{w.pid(0), w.pid(1)}));
  EXPECT_GE(w.endpoints[0]->baseline_stats().views_abandoned, 1u);
  w.checkers.finalize();
}

TEST(Baseline, TwoRoundsMeansMoreControlMessages) {
  BaselineWorld w(4);
  w.oracle.start_change(w.all());
  w.run();
  w.oracle.deliver_view(w.all());
  w.run(2 * sim::kSecond);
  // Every member sent one agree AND one sync per view change; the paper's
  // algorithm sends only the sync.
  for (int i = 0; i < 4; ++i) {
    const auto& st = w.endpoints[static_cast<std::size_t>(i)]->baseline_stats();
    EXPECT_GE(st.agrees_sent, 1u);
    EXPECT_GE(st.sync_msgs_sent, 1u);
  }
  w.checkers.finalize();
}

}  // namespace
}  // namespace vsgc
